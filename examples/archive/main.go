// Archive: crawl slow-moving edu/gov sites into a disk-backed repository
// with a periodic batch + shadowing crawler — the configuration Section 4
// recommends when the target corpus is static ("if one is building a
// batch crawler, shadowing is a good option since it is simpler to
// implement, and in-place updates are not a significant win").
//
// The example runs both a batch+shadow crawler and a steady+in-place
// crawler on the same static web and prints the freshness gap (small, per
// Table 2) alongside the peak-bandwidth gap (large), then demonstrates
// crash recovery of the log-structured store.
//
// Run with:
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"webevolve/internal/core"
	"webevolve/internal/fetch"
	"webevolve/internal/simweb"
	"webevolve/internal/store"
)

func main() {
	mkWeb := func() *simweb.Web {
		web, err := simweb.New(simweb.Config{
			Seed: 11,
			SitesPerDomain: map[simweb.Domain]int{
				simweb.Edu: 6, simweb.Gov: 6,
			},
			PagesPerSite: 80,
		})
		if err != nil {
			log.Fatal(err)
		}
		return web
	}

	const (
		collection = 500
		cycleDays  = 30.0
		batchDays  = 3.0
		horizon    = 180.0
	)

	fmt.Println("archival crawl of edu/gov sites: monthly refresh, 500 pages")
	fmt.Println()
	type result struct {
		name         string
		freshness    float64
		peakPagesDay float64
	}
	var results []result
	for _, shadow := range []bool{true, false} {
		web := mkWeb()
		cfg := core.Config{
			Seeds:          web.RootURLs(),
			CollectionSize: collection,
			PagesPerDay:    collection / cycleDays,
			CycleDays:      cycleDays,
			BatchDays:      batchDays,
			RankEveryDays:  cycleDays,
			Estimator:      core.EstimatorEB,
		}
		name := "steady + in-place"
		if shadow {
			cfg.Mode, cfg.Update = core.Batch, core.Shadow
			name = "batch + shadowing"
		}
		crawler, err := core.New(cfg, fetch.NewSimFetcher(web))
		if err != nil {
			log.Fatal(err)
		}
		ev := &core.Evaluator{Web: web}
		avg, _, err := ev.TimeAveragedFreshness(crawler, horizon, 2*cycleDays, 24, collection)
		if err != nil {
			log.Fatal(err)
		}
		peak := cfg.PagesPerDay
		if shadow {
			peak = float64(collection) / batchDays
		}
		results = append(results, result{name, avg, peak})
	}
	for _, r := range results {
		fmt.Printf("  %-18s freshness %.3f   peak load %5.1f pages/day\n",
			r.name, r.freshness, r.peakPagesDay)
	}
	fmt.Println()
	fmt.Println("on a static corpus the freshness gap is small — the batch+shadow")
	fmt.Println("crawler trades a little freshness for a much simpler pipeline, at")
	fmt.Println("the cost of a", fmt.Sprintf("%.0fx", cycleDays/batchDays), "higher peak load (the paper's trade-off).")

	fmt.Println()
	demoDiskRecovery()
}

// demoDiskRecovery crawls into the log-structured disk store, then
// reopens it cold — the incremental crawler must survive restarts, since
// it never rebuilds from scratch.
func demoDiskRecovery() {
	dir, err := os.MkdirTemp("", "webevolve-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	web, err := simweb.New(simweb.SmallConfig(3))
	if err != nil {
		log.Fatal(err)
	}
	gen := 0
	sh, err := store.NewShadowed(nil, func() (store.Collection, error) {
		gen++
		return store.OpenDisk(filepath.Join(dir, fmt.Sprintf("gen-%03d", gen)))
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Seeds:          web.RootURLs(),
		CollectionSize: 150,
		PagesPerDay:    100,
		CycleDays:      7,
	}
	crawler, err := core.NewWithStore(cfg, fetch.NewSimFetcher(web), sh)
	if err != nil {
		log.Fatal(err)
	}
	if err := crawler.RunUntil(10); err != nil {
		log.Fatal(err)
	}
	stored := crawler.Collection().Len()

	// Simulate a restart: reopen the same segment directory cold.
	liveDir := filepath.Join(dir, fmt.Sprintf("gen-%03d", 1))
	reopened, err := store.OpenDisk(liveDir)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("disk store: %d pages crawled; %d recovered after reopen\n",
		stored, reopened.Len())
	if reopened.Len() != stored {
		log.Fatalf("recovery lost pages: %d != %d", reopened.Len(), stored)
	}
}
