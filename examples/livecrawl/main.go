// Livecrawl: the same incremental crawler over real HTTP. The example
// starts a local test web server (so it runs offline), then drives the
// polite HTTPFetcher — robots.txt, per-host request spacing — through a
// short crawl, printing what was fetched and which pages changed between
// passes.
//
// Point -seed at a real site to crawl the live web instead (be polite:
// the defaults keep the paper's 10-second per-host spacing).
//
// Run with:
//
//	go run ./examples/livecrawl
//	go run ./examples/livecrawl -seed https://example.com/ -pages 5
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"webevolve/internal/fetch"
	"webevolve/internal/robots"
)

func main() {
	seed := flag.String("seed", "", "seed URL; empty starts a built-in local test server")
	pages := flag.Int("pages", 10, "maximum pages to fetch per pass")
	delay := flag.Duration("delay", 10*time.Second, "per-host politeness delay for real sites")
	flag.Parse()

	f := &fetch.HTTPFetcher{
		Politeness: robots.Politeness{MinDelay: *delay},
	}
	seedURL := *seed
	if seedURL == "" {
		srv := newTestSite()
		defer srv.Close()
		seedURL = srv.URL + "/"
		f.Politeness = robots.Politeness{MinDelay: 10 * time.Millisecond}
		fmt.Println("crawling built-in test site at", seedURL)
	}

	// Two BFS passes; compare checksums to detect changed pages, exactly
	// as the UpdateModule does.
	first := crawlPass(f, seedURL, *pages)
	fmt.Printf("pass 1: fetched %d pages\n", len(first))
	second := crawlPass(f, seedURL, *pages)
	changed, vanished := 0, 0
	for url, sum := range first {
		now, ok := second[url]
		switch {
		case !ok:
			vanished++
		case now != sum:
			changed++
		}
	}
	fmt.Printf("pass 2: fetched %d pages; %d changed, %d vanished since pass 1\n",
		len(second), changed, vanished)
}

// crawlPass BFS-crawls up to max pages from the seed, returning
// url -> checksum.
func crawlPass(f *fetch.HTTPFetcher, seed string, max int) map[string]uint64 {
	sums := make(map[string]uint64)
	queue := []string{seed}
	seen := map[string]bool{seed: true}
	for len(queue) > 0 && len(sums) < max {
		url := queue[0]
		queue = queue[1:]
		res, err := f.Fetch(url, 0)
		if err != nil {
			log.Printf("fetch %s: %v", url, err)
			continue
		}
		if res.NotFound {
			continue
		}
		sums[url] = res.Checksum
		for _, l := range res.Links {
			if !seen[l] {
				seen[l] = true
				queue = append(queue, l)
			}
		}
	}
	return sums
}

// newTestSite serves a tiny site with a changing "news" page, a static
// page, and a robots-blocked section.
func newTestSite() *httptest.Server {
	var revision atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/robots.txt", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "User-agent: *\nDisallow: /private")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `<html><body><h1>test site</h1>
			<a href="/news">news</a>
			<a href="/about">about</a>
			<a href="/private/secret">secret</a>
		</body></html>`)
	})
	mux.HandleFunc("/news", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "<html><body>breaking story #%d <a href=\"/\">home</a></body></html>",
			revision.Add(1))
	})
	mux.HandleFunc("/about", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>static page <a href="/">home</a></body></html>`)
	})
	mux.HandleFunc("/private/secret", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "you should never see this")
	})
	return httptest.NewServer(mux)
}
