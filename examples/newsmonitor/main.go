// Newsmonitor: keep a collection of fast-changing commercial pages fresh
// with a tight bandwidth budget — the workload the paper's introduction
// motivates (CNN-style pages changing about once a day, at random times).
//
// The example contrasts three revisit policies at identical bandwidth:
// fixed frequency, naive proportional, and the paper's optimal variable
// frequency, and prints per-domain freshness so the com-vs-gov gap is
// visible. It also shows the change-frequency estimators at work: for a
// handful of pages, the EP estimate and EB class posterior after 60 days
// of monitoring, against the true rate the simulator knows.
//
// Run with:
//
//	go run ./examples/newsmonitor
package main

import (
	"fmt"
	"log"
	"sort"

	"webevolve/internal/changefreq"
	"webevolve/internal/core"
	"webevolve/internal/fetch"
	"webevolve/internal/simweb"
)

func main() {
	// A com-heavy web: mostly news-like sites.
	mkWeb := func() *simweb.Web {
		web, err := simweb.New(simweb.Config{
			Seed: 7,
			SitesPerDomain: map[simweb.Domain]int{
				simweb.Com: 8, simweb.NetOrg: 2, simweb.Gov: 2,
			},
			PagesPerSite: 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		return web
	}

	const (
		collection = 600
		cycleDays  = 15.0
		horizon    = 90.0
	)

	fmt.Println("news monitoring: 600-page collection, one full pass per 15 days")
	fmt.Println()
	for _, policy := range []core.FreqPolicy{core.FixedFreq, core.ProportionalFreq, core.VariableFreq} {
		web := mkWeb()
		cfg := core.Config{
			Seeds:          web.RootURLs(),
			CollectionSize: collection,
			PagesPerDay:    collection / cycleDays,
			CycleDays:      cycleDays,
			RankEveryDays:  5,
			Mode:           core.Steady,
			Update:         core.InPlace,
			Freq:           policy,
			Estimator:      core.EstimatorEP,
		}
		crawler, err := core.New(cfg, fetch.NewSimFetcher(web))
		if err != nil {
			log.Fatal(err)
		}
		ev := &core.Evaluator{Web: web}
		avg, _, err := ev.TimeAveragedFreshness(crawler, horizon, 2*cycleDays, 20, collection)
		if err != nil {
			log.Fatal(err)
		}
		byDom, err := ev.FreshnessByDomain(crawler.Collection(), crawler.Day())
		if err != nil {
			log.Fatal(err)
		}
		doms := make([]string, 0, len(byDom))
		for d := range byDom {
			doms = append(doms, d)
		}
		sort.Strings(doms)
		fmt.Printf("%-14s avg freshness %.3f  (", policy, avg)
		for i, d := range doms {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %.2f", d, byDom[d])
		}
		fmt.Println(")")
	}

	fmt.Println()
	fmt.Println("estimators after 60 days of daily visits (EP vs EB vs truth):")
	estimatorDemo(mkWeb())
}

// estimatorDemo monitors a few pages daily and reports the estimates.
func estimatorDemo(web *simweb.Web) {
	f := fetch.NewSimFetcher(web)
	// Pick pages across rate classes from the first com site.
	site := web.Sites()[0]
	pages := site.AlivePages(0)
	byClass := map[string]string{}
	for _, p := range pages {
		if _, ok := byClass[p.RateClass()]; !ok && p.DeathDay() > 60 {
			byClass[p.RateClass()] = p.URL()
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		url := byClass[class]
		hist := &changefreq.History{}
		bayes, err := changefreq.NewBayes(changefreq.DefaultClasses)
		if err != nil {
			log.Fatal(err)
		}
		var prev uint64
		for day := 0.0; day <= 60; day++ {
			res, err := f.Fetch(url, day)
			if err != nil || res.NotFound {
				break
			}
			changed := day > 0 && res.Checksum != prev
			prev = res.Checksum
			obs := changefreq.Observation{Time: day, Changed: changed}
			if err := hist.Record(obs); err != nil {
				log.Fatal(err)
			}
			if err := bayes.Record(obs); err != nil {
				log.Fatal(err)
			}
		}
		trueRate, _, err := web.PageOracle(url, 60)
		if err != nil {
			log.Fatal(err)
		}
		ep, err := changefreq.EP(hist)
		epStr := "n/a"
		if err == nil {
			epStr = fmt.Sprintf("%.3f [%.3f, %.3f]", ep.Rate, ep.Lo, ep.Hi)
		}
		fmt.Printf("  %-9s true %-8.3f EP %-24s EB MAP %-9s %s\n",
			class, trueRate, epStr, bayes.MAP().Name, bayes.String())
	}
}
