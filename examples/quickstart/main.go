// Quickstart: build a small synthetic web, run the incremental crawler
// on it for 30 virtual days, and print freshness/quality metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"webevolve/internal/core"
	"webevolve/internal/fetch"
	"webevolve/internal/simweb"
)

func main() {
	// A small evolving web: 8 sites with the paper's calibrated change
	// behaviour (com changes fast, gov barely at all).
	web, err := simweb.New(simweb.SmallConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// The incremental crawler of the paper's Section 5: steady crawling,
	// in-place updates, variable revisit frequency driven by the EP
	// change-frequency estimator, PageRank-based collection refinement.
	cfg := core.Config{
		Seeds:          web.RootURLs(),
		CollectionSize: 200,
		PagesPerDay:    100, // crawl bandwidth
		CycleDays:      7,
		Mode:           core.Steady,
		Update:         core.InPlace,
		Freq:           core.VariableFreq,
		Estimator:      core.EstimatorEP,
	}
	crawler, err := core.New(cfg, fetch.NewSimFetcher(web))
	if err != nil {
		log.Fatal(err)
	}

	// Run 30 virtual days (finishes in milliseconds of real time).
	if err := crawler.RunUntil(30); err != nil {
		log.Fatal(err)
	}

	m := crawler.Metrics()
	fmt.Printf("crawled %d pages over %.0f virtual days\n", m.Fetches, crawler.Day())
	fmt.Printf("  changes detected: %d\n", m.ChangesDetected)
	fmt.Printf("  new pages found:  %d\n", m.NewPages)
	fmt.Printf("  pages vanished:   %d\n", m.NotFound)
	fmt.Printf("  collection size:  %d (target %d)\n", crawler.Collection().Len(), cfg.CollectionSize)
	fmt.Printf("  URLs discovered:  %d\n", crawler.AllUrls().Len())

	// The oracle evaluator grades the collection against the live web.
	ev := &core.Evaluator{Web: web}
	fresh, err := ev.Freshness(crawler.Collection(), crawler.Day(), cfg.CollectionSize)
	if err != nil {
		log.Fatal(err)
	}
	qual, err := ev.Quality(crawler.Collection(), crawler.Day())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("freshness: %.3f   quality (overlap with true top pages): %.3f\n", fresh, qual)
}
