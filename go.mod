module webevolve

go 1.24
