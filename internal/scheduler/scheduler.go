// Package scheduler implements the revisit-frequency policies of
// Section 4, design question 3: fixed frequency (every page revisited at
// the same interval — the batch crawler's natural policy), naive
// proportional (revisit faster-changing pages proportionally more often —
// the intuition the paper shows is wrong), and the optimal
// variable-frequency policy of Figure 9, which allocates a global revisit
// budget across pages to maximize expected freshness.
//
// Policies consume change-rate estimates (from package changefreq) and
// produce per-page revisit intervals; the crawler's UpdateModule turns
// those into CollUrls due-times.
package scheduler

import (
	"errors"
	"math"
	"sort"
	"sync"

	"webevolve/internal/freshness"
)

// Policy maps a page's estimated change rate (and importance) to a
// revisit interval in days. Implementations are safe for concurrent use.
type Policy interface {
	// Interval returns the revisit interval for a page. rate is the
	// estimated change rate in changes/day (0 when unknown or immutable);
	// importance is the ranking module's score (0 when unknown).
	Interval(url string, rate, importance float64) float64
	// Name identifies the policy in reports.
	Name() string
}

// Clamp bounds an interval to [min, max]; non-positive or NaN intervals
// become max.
func Clamp(interval, min, max float64) float64 {
	if math.IsNaN(interval) || interval <= 0 {
		return max
	}
	if interval < min {
		return min
	}
	if interval > max {
		return max
	}
	return interval
}

// Fixed revisits every page at the same interval.
type Fixed struct {
	// Every is the revisit interval in days.
	Every float64
}

// Interval implements Policy.
func (f Fixed) Interval(string, float64, float64) float64 { return f.Every }

// Name implements Policy.
func (Fixed) Name() string { return "fixed" }

// Proportional revisits a page at k visits per change: interval =
// 1/(K*rate), clamped to [MinDays, MaxDays]. This is the intuitive policy
// Section 4 warns about: it over-spends budget on pages that change too
// fast to keep fresh.
type Proportional struct {
	// K is visits per change (default 1 when zero).
	K float64
	// MinDays and MaxDays clamp the interval.
	MinDays, MaxDays float64
}

// Interval implements Policy.
func (p Proportional) Interval(_ string, rate, _ float64) float64 {
	k := p.K
	if k == 0 {
		k = 1
	}
	if rate <= 0 {
		return p.MaxDays
	}
	return Clamp(1/(k*rate), p.MinDays, p.MaxDays)
}

// Name implements Policy.
func (Proportional) Name() string { return "proportional" }

// Optimal allocates a global budget of visits/day across the collection
// with the Figure 9 optimization, then serves per-page intervals from the
// resulting plan. Rebuild must be called (typically by the ranking/
// planning cadence of the crawler) whenever rate estimates have moved
// materially; between rebuilds, unknown pages fall back to DefaultDays.
type Optimal struct {
	// BudgetPerDay is the total revisit frequency to allocate.
	BudgetPerDay float64
	// MinDays, MaxDays clamp per-page intervals; pages the optimizer
	// would never visit get MaxDays rather than infinity, so the crawler
	// still notices deletions (a practical deviation from the pure
	// optimum, noted in DESIGN.md).
	MinDays, MaxDays float64
	// DefaultDays is used for pages absent from the current plan.
	DefaultDays float64

	mu   sync.RWMutex
	plan map[string]float64 // url -> interval (days)
}

// NewOptimal builds an Optimal policy.
func NewOptimal(budgetPerDay, minDays, maxDays, defaultDays float64) (*Optimal, error) {
	if budgetPerDay <= 0 {
		return nil, errors.New("scheduler: budget must be positive")
	}
	if minDays <= 0 || maxDays < minDays || defaultDays <= 0 {
		return nil, errors.New("scheduler: bad interval bounds")
	}
	return &Optimal{
		BudgetPerDay: budgetPerDay,
		MinDays:      minDays,
		MaxDays:      maxDays,
		DefaultDays:  defaultDays,
		plan:         make(map[string]float64),
	}, nil
}

// Rebuild recomputes the allocation for the given per-page rate
// estimates. URLs map to estimated change rates in changes/day.
func (o *Optimal) Rebuild(rates map[string]float64) error {
	if len(rates) == 0 {
		o.mu.Lock()
		o.plan = make(map[string]float64)
		o.mu.Unlock()
		return nil
	}
	urls := make([]string, 0, len(rates))
	for u := range rates {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	rs := make([]float64, len(urls))
	for i, u := range urls {
		r := rates[u]
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			r = 0
		}
		rs[i] = r
	}
	fs, err := freshness.OptimalAllocation(rs, o.BudgetPerDay)
	if err != nil {
		return err
	}
	plan := make(map[string]float64, len(urls))
	for i, u := range urls {
		f := fs[i]
		var iv float64
		if f <= 0 {
			iv = o.MaxDays
		} else {
			iv = Clamp(1/f, o.MinDays, o.MaxDays)
		}
		plan[u] = iv
	}
	o.mu.Lock()
	o.plan = plan
	o.mu.Unlock()
	return nil
}

// Interval implements Policy.
func (o *Optimal) Interval(url string, rate, _ float64) float64 {
	o.mu.RLock()
	iv, ok := o.plan[url]
	o.mu.RUnlock()
	if ok {
		return iv
	}
	if rate > 0 {
		return Clamp(1/rate, o.MinDays, o.MaxDays)
	}
	return o.DefaultDays
}

// Name implements Policy.
func (*Optimal) Name() string { return "optimal" }

// PlanSize returns the number of pages in the current plan.
func (o *Optimal) PlanSize() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.plan)
}

// ImportanceBoosted wraps a policy and shortens intervals for highly
// important pages (Section 5.3: "if a certain page is highly important
// ... the UpdateModule may revisit the page much more often"). The
// interval is divided by (1 + Weight*importance), then clamped.
type ImportanceBoosted struct {
	Base             Policy
	Weight           float64
	MinDays, MaxDays float64
}

// Interval implements Policy.
func (b ImportanceBoosted) Interval(url string, rate, importance float64) float64 {
	iv := b.Base.Interval(url, rate, importance)
	if importance > 0 && b.Weight > 0 {
		iv /= 1 + b.Weight*importance
	}
	return Clamp(iv, b.MinDays, b.MaxDays)
}

// Name implements Policy.
func (b ImportanceBoosted) Name() string { return b.Base.Name() + "+importance" }
