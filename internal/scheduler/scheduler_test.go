package scheduler

import (
	"fmt"
	"math"
	"testing"
)

func TestClamp(t *testing.T) {
	cases := []struct{ in, min, max, want float64 }{
		{5, 1, 10, 5},
		{0.5, 1, 10, 1},
		{20, 1, 10, 10},
		{-3, 1, 10, 10},         // non-positive -> max
		{math.NaN(), 1, 10, 10}, // NaN -> max
		{0, 1, 10, 10},          // zero -> max
	}
	for _, c := range cases {
		if got := Clamp(c.in, c.min, c.max); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFixed(t *testing.T) {
	p := Fixed{Every: 30}
	if p.Interval("u", 99, 99) != 30 {
		t.Fatal("fixed interval not fixed")
	}
	if p.Name() != "fixed" {
		t.Fatal(p.Name())
	}
}

func TestProportional(t *testing.T) {
	p := Proportional{K: 2, MinDays: 0.5, MaxDays: 100}
	// rate 0.1/day, 2 visits per change -> 5 days.
	if got := p.Interval("u", 0.1, 0); got != 5 {
		t.Fatalf("interval %v", got)
	}
	// Unknown rate -> max.
	if got := p.Interval("u", 0, 0); got != 100 {
		t.Fatalf("zero-rate interval %v", got)
	}
	// Very fast -> clamped to min.
	if got := p.Interval("u", 1000, 0); got != 0.5 {
		t.Fatalf("fast interval %v", got)
	}
	// K defaults to 1.
	p0 := Proportional{MinDays: 0.1, MaxDays: 100}
	if got := p0.Interval("u", 0.5, 0); got != 2 {
		t.Fatalf("default-K interval %v", got)
	}
	if p.Name() != "proportional" {
		t.Fatal(p.Name())
	}
}

func TestNewOptimalValidation(t *testing.T) {
	if _, err := NewOptimal(0, 1, 10, 5); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewOptimal(1, 0, 10, 5); err == nil {
		t.Fatal("zero min accepted")
	}
	if _, err := NewOptimal(1, 10, 5, 5); err == nil {
		t.Fatal("max < min accepted")
	}
	if _, err := NewOptimal(1, 1, 10, 0); err == nil {
		t.Fatal("zero default accepted")
	}
}

func TestOptimalRebuildAndInterval(t *testing.T) {
	o, err := NewOptimal(10, 0.1, 1000, 30)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for i := 0; i < 20; i++ {
		rates[fmt.Sprintf("http://s.com/p%02d", i)] = 0.05 * float64(i+1)
	}
	if err := o.Rebuild(rates); err != nil {
		t.Fatal(err)
	}
	if o.PlanSize() != 20 {
		t.Fatalf("plan size %d", o.PlanSize())
	}
	// Planned intervals must be within clamps.
	for u := range rates {
		iv := o.Interval(u, rates[u], 0)
		if iv < 0.1 || iv > 1000 {
			t.Fatalf("interval %v out of bounds", iv)
		}
	}
	// Unknown page with a rate estimate: 1/rate clamped.
	if got := o.Interval("http://unknown.com/", 0.5, 0); got != 2 {
		t.Fatalf("unknown-page interval %v", got)
	}
	// Unknown page without rate: default.
	if got := o.Interval("http://unknown2.com/", 0, 0); got != 30 {
		t.Fatalf("default interval %v", got)
	}
	if o.Name() != "optimal" {
		t.Fatal(o.Name())
	}
}

func TestOptimalRebuildEmpty(t *testing.T) {
	o, err := NewOptimal(10, 0.1, 1000, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	if o.PlanSize() != 0 {
		t.Fatal("empty rebuild left a plan")
	}
}

func TestOptimalSanitizesBadRates(t *testing.T) {
	o, err := NewOptimal(5, 0.1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Rebuild(map[string]float64{
		"http://a.com/": math.NaN(),
		"http://b.com/": math.Inf(1),
		"http://c.com/": -3,
		"http://d.com/": 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	if o.PlanSize() != 4 {
		t.Fatalf("plan size %d", o.PlanSize())
	}
}

func TestOptimalBudgetReflectedInIntervals(t *testing.T) {
	// With equal rates, the optimal plan must revisit everyone at about
	// n/budget days.
	o, err := NewOptimal(10, 0.01, 10000, 30)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for i := 0; i < 100; i++ {
		rates[fmt.Sprintf("http://e.com/p%03d", i)] = 0.1
	}
	if err := o.Rebuild(rates); err != nil {
		t.Fatal(err)
	}
	for u := range rates {
		iv := o.Interval(u, 0.1, 0)
		if math.Abs(iv-10) > 0.5 { // 100 pages / 10 visits/day
			t.Fatalf("interval %v, want ~10", iv)
		}
	}
}

func TestImportanceBoosted(t *testing.T) {
	b := ImportanceBoosted{
		Base:    Fixed{Every: 30},
		Weight:  1,
		MinDays: 1, MaxDays: 100,
	}
	// importance 2 -> interval / 3.
	if got := b.Interval("u", 0, 2); got != 10 {
		t.Fatalf("boosted interval %v", got)
	}
	// Zero importance: unchanged.
	if got := b.Interval("u", 0, 0); got != 30 {
		t.Fatalf("unboosted interval %v", got)
	}
	// Clamped below.
	b.Weight = 1000
	if got := b.Interval("u", 0, 10); got != 1 {
		t.Fatalf("clamped interval %v", got)
	}
	if b.Name() != "fixed+importance" {
		t.Fatal(b.Name())
	}
}
