package experiment

import (
	"errors"
	"sort"

	"webevolve/internal/pagerank"
	"webevolve/internal/simweb"
	"webevolve/internal/webgraph"
)

// Site selection (Section 2.2, Table 1): from a snapshot of the web,
// compute the modified (site-level) PageRank over the hypergraph whose
// nodes are sites, take the top candidateCount sites as candidates, and
// keep those whose webmasters consent — the paper contacted 400 and kept
// 270.

// SelectionConfig parameterizes site selection.
type SelectionConfig struct {
	// CandidateCount is how many top-ranked sites to shortlist (400 in
	// the paper).
	CandidateCount int
	// KeepCount is how many sites remain after the consent step (270 in
	// the paper). Consent is simulated deterministically from Seed.
	KeepCount int
	// Seed drives the consent lottery.
	Seed int64
	// Damping is the PageRank damping factor (the paper used 0.9).
	Damping float64
	// SnapshotDay is when the link snapshot is taken.
	SnapshotDay float64
}

// SelectionResult is the outcome of the site-selection pipeline.
type SelectionResult struct {
	// Candidates are the shortlisted sites, most popular first.
	Candidates []pagerank.Ranked
	// Selected are the consenting sites, most popular first.
	Selected []pagerank.Ranked
	// Table1 counts selected sites per domain group, and SubCounts per
	// concrete TLD (org/net within netorg; gov/mil within gov).
	Table1    map[simweb.Domain]int
	SubCounts map[string]int
}

// SelectSites runs the pipeline on a simulated web snapshot.
func SelectSites(w *simweb.Web, cfg SelectionConfig) (*SelectionResult, error) {
	if cfg.CandidateCount <= 0 || cfg.KeepCount <= 0 || cfg.KeepCount > cfg.CandidateCount {
		return nil, errors.New("experiment: bad selection counts")
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.9
	}
	sg := w.SiteGraph(cfg.SnapshotDay)
	scores, _, err := pagerank.Sites(sg, pagerank.Options{Damping: cfg.Damping})
	if err != nil {
		return nil, err
	}
	candidates := pagerank.TopK(scores, cfg.CandidateCount)

	// Consent lottery: deterministic per-site coin with acceptance
	// probability KeepCount/CandidateCount; a second pass tops up from
	// the decliners (in rank order) if the lottery undershoots, so the
	// final count is exact.
	accept := float64(cfg.KeepCount) / float64(cfg.CandidateCount)
	rnd := consentRNGFrom(cfg.Seed)
	var selected, declined []pagerank.Ranked
	for _, c := range candidates {
		if rnd.float64() <= accept && len(selected) < cfg.KeepCount {
			selected = append(selected, c)
		} else {
			declined = append(declined, c)
		}
	}
	for _, c := range declined {
		if len(selected) >= cfg.KeepCount {
			break
		}
		selected = append(selected, c)
	}
	sort.Slice(selected, func(i, j int) bool {
		if selected[i].Score != selected[j].Score {
			return selected[i].Score > selected[j].Score
		}
		return selected[i].ID < selected[j].ID
	})

	res := &SelectionResult{
		Candidates: candidates,
		Selected:   selected,
		Table1:     make(map[simweb.Domain]int),
		SubCounts:  make(map[string]int),
	}
	for _, s := range selected {
		host := s.ID
		switch dom := webgraph.DomainOf(host); dom {
		case "com":
			res.Table1[simweb.Com]++
			res.SubCounts["com"]++
		case "edu":
			res.Table1[simweb.Edu]++
			res.SubCounts["edu"]++
		case "netorg":
			res.Table1[simweb.NetOrg]++
			res.SubCounts[tld(host)]++
		case "gov":
			res.Table1[simweb.Gov]++
			res.SubCounts[tld(host)]++
		}
	}
	return res, nil
}

func tld(host string) string {
	for i := len(host) - 1; i >= 0; i-- {
		if host[i] == '.' {
			return host[i+1:]
		}
	}
	return host
}

// consentRNG is a tiny deterministic generator for the consent lottery.
type consentRNG struct{ state uint64 }

func newConsentRNG(seed int64) consentRNG {
	return consentRNG{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func consentRNGFrom(seed int64) *consentRNG { r := newConsentRNG(seed); return &r }

func (r *consentRNG) float64() float64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
