// Package experiment replays the paper's web-evolution experiment
// (Sections 2 and 3) against the synthetic web: visit a window of pages
// at each monitored site once a day for the experiment length (the paper
// ran 1999-02-17 to 1999-06-24, 128 days), detect changes by checksum
// comparison, and derive the paper's statistics —
//
//   - Figure 2: fraction of pages per average change interval,
//   - Figure 4: visible page lifespan (estimation Methods 1 and 2),
//   - Figure 5: fraction of pages unchanged (and present) by day,
//   - Figure 6: change-interval distributions vs the Poisson prediction,
//
// all overall and broken down by domain group, plus Table 1's site
// selection (in selection.go).
//
// The granularity caveats of Figure 1 are inherent here exactly as in the
// paper: at most one change per page per day is detectable, and a page
// changing several times between visits registers a single change.
package experiment

import (
	"errors"
	"fmt"

	"webevolve/internal/simweb"
)

// MonitorConfig parameterizes the daily monitoring crawl.
type MonitorConfig struct {
	// Days is the experiment length; the paper's run spans 128 days.
	Days int
	// StartDay offsets the start (useful to skip the simulated web's
	// day-0 transient, which has none — pages start in steady state —
	// but ablations use it).
	StartDay float64
}

// PaperDays is the paper's experiment length in days (Feb 17 - Jun 24,
// 1999).
const PaperDays = 128

// pageTrack accumulates one page's observation history.
type pageTrack struct {
	domain simweb.Domain

	firstSeen int // day index of first observation
	lastSeen  int // day index of most recent observation
	// missedSince notes the day index after which the page stopped being
	// observed (for lifespan: a page absent one day is considered gone,
	// as users following links would conclude, Section 3.2).
	gone bool

	prevSum     uint64
	changes     int   // detected changes
	firstChange int   // day index of first detected change (-1 none)
	lastChange  int   // day index of last detected change (-1 none)
	changeGaps  []int // days between successive detected changes
	firstIsFull bool  // observed from day 0 (left-censored lifespan)

	// unchangedUntil is the last day index (relative to firstSeen) before
	// which the page had neither changed nor disappeared; used for the
	// Figure 5 curves. -1 once invalidated.
	changedEver bool
}

// Monitor runs the daily crawl over all sites of the web and returns the
// accumulated observations.
func Monitor(w *simweb.Web, cfg MonitorConfig) (*Observations, error) {
	if cfg.Days < 2 {
		return nil, errors.New("experiment: need at least 2 days")
	}
	obs := &Observations{
		Days:   cfg.Days,
		tracks: make(map[string]*pageTrack),
	}
	for d := 0; d < cfg.Days; d++ {
		day := cfg.StartDay + float64(d)
		seenToday := make(map[string]struct{}, 4096)
		w.ScanAll(day, func(site *simweb.Site, url string, sum uint64) {
			seenToday[url] = struct{}{}
			t, ok := obs.tracks[url]
			if !ok {
				t = &pageTrack{
					domain:      site.Domain(),
					firstSeen:   d,
					lastSeen:    d,
					prevSum:     sum,
					firstChange: -1,
					lastChange:  -1,
					firstIsFull: d == 0,
				}
				obs.tracks[url] = t
				return
			}
			if t.gone {
				// Reappeared (moved back into the window). Treat as a
				// fresh observation run for lifespan purposes but keep
				// change history; rare with death-only churn.
				t.gone = false
			}
			t.lastSeen = d
			if sum != t.prevSum {
				t.prevSum = sum
				t.changes++
				t.changedEver = true
				if t.firstChange < 0 {
					t.firstChange = d
				}
				if t.lastChange >= 0 {
					t.changeGaps = append(t.changeGaps, d-t.lastChange)
				} else {
					t.changeGaps = append(t.changeGaps, d-t.firstSeen)
				}
				t.lastChange = d
			}
		})
		// Mark disappearances.
		for url, t := range obs.tracks {
			if t.gone {
				continue
			}
			if _, ok := seenToday[url]; !ok {
				t.gone = true
			}
		}
	}
	return obs, nil
}

// Observations holds the raw tracking state after a monitoring run.
type Observations struct {
	Days   int
	tracks map[string]*pageTrack
}

// NumPages returns how many distinct pages were ever observed.
func (o *Observations) NumPages() int { return len(o.tracks) }

// track lookup helper for tests.
func (o *Observations) trackFor(url string) (*pageTrack, error) {
	t, ok := o.tracks[url]
	if !ok {
		return nil, fmt.Errorf("experiment: no track for %s", url)
	}
	return t, nil
}

// visibleDays returns the observed in-window span of a page in days
// (inclusive of both endpoints: a page seen only once has lifespan 1).
func (t *pageTrack) visibleDays() int { return t.lastSeen - t.firstSeen + 1 }

// censored reports whether the page's lifespan estimate is truncated by
// the experiment boundaries: present at the start (case (a) of Figure 3),
// still present at the end (case (c)), or both (case (d)).
func (t *pageTrack) censored(days int) bool {
	return t.firstIsFull || t.lastSeen == days-1
}

// avgChangeIntervalDays is the Section 3.1 estimate: observed span
// divided by detected changes ("existed within our window for 50 days,
// changed 5 times: interval 10 days"). The span counts inter-visit
// intervals (lastSeen-firstSeen), so a page that changed on every one of
// its daily visits gets exactly 1 day — the paper's first bucket.
// Pages with no detected change (or a single observation) report ok=false.
func (t *pageTrack) avgChangeIntervalDays() (float64, bool) {
	span := t.lastSeen - t.firstSeen
	if t.changes == 0 || span < 1 {
		return 0, false
	}
	return float64(span) / float64(t.changes), true
}
