package experiment

import (
	"errors"
	"math"
	"sort"

	"webevolve/internal/simweb"
	"webevolve/internal/stats"
)

// Figure2Result is the change-interval distribution of Figure 2: the
// fraction of pages whose average change interval falls in each paper
// bucket, overall and per domain. Pages with no detected change over the
// whole experiment land in the ">4months" bucket, as in the paper.
type Figure2Result struct {
	Overall  *stats.Histogram
	ByDomain map[simweb.Domain]*stats.Histogram
	// MeanIntervalDays is the crude overall mean of Section 3.1: pages in
	// the first bucket counted as changing daily, pages in the last as
	// changing yearly. The paper reports ~4 months.
	MeanIntervalDays float64
}

// Figure2 computes the change-interval distributions.
func (o *Observations) Figure2() *Figure2Result {
	res := &Figure2Result{
		Overall:  stats.NewPaperIntervalHistogram(),
		ByDomain: make(map[simweb.Domain]*stats.Histogram),
	}
	for _, d := range simweb.Domains {
		res.ByDomain[d] = stats.NewPaperIntervalHistogram()
	}
	bigInterval := float64(o.Days) * 10 // lands in the overflow bucket
	for _, t := range o.tracks {
		iv, ok := t.avgChangeIntervalDays()
		if !ok {
			iv = bigInterval
		}
		res.Overall.Add(iv)
		if h, ok2 := res.ByDomain[t.domain]; ok2 {
			h.Add(iv)
		}
	}
	// Crude overall mean, Section 3.1's approximation: first bucket =
	// 1 day, middle buckets = midpoints, overflow = 1 year.
	fr := res.Overall.Fractions()
	assumed := []float64{1, (1 + 7) / 2.0, (7 + 30) / 2.0, (30 + 120) / 2.0, 365}
	for i, f := range fr {
		res.MeanIntervalDays += f * assumed[i]
	}
	return res
}

// Figure4Result is the visible-lifespan distribution of Figure 4 under
// both censoring corrections of Section 3.2.
type Figure4Result struct {
	Method1 *stats.Histogram
	Method2 *stats.Histogram
	// ByDomainM1 gives the Method 1 histogram per domain (the paper's
	// Figure 4(b) shows Method 1 only).
	ByDomainM1 map[simweb.Domain]*stats.Histogram
}

// Figure4 computes lifespan histograms. Method 1 uses the observed
// in-window span s directly; Method 2 doubles s for pages censored by
// the experiment boundary (cases (a), (c), (d) of Figure 3).
func (o *Observations) Figure4() *Figure4Result {
	res := &Figure4Result{
		Method1:    stats.NewPaperLifespanHistogram(),
		Method2:    stats.NewPaperLifespanHistogram(),
		ByDomainM1: make(map[simweb.Domain]*stats.Histogram),
	}
	for _, d := range simweb.Domains {
		res.ByDomainM1[d] = stats.NewPaperLifespanHistogram()
	}
	for _, t := range o.tracks {
		s := float64(t.visibleDays())
		res.Method1.Add(s)
		if h, ok := res.ByDomainM1[t.domain]; ok {
			h.Add(s)
		}
		if t.censored(o.Days) {
			res.Method2.Add(2 * s)
		} else {
			res.Method2.Add(s)
		}
	}
	return res
}

// Figure5Result is the "fraction unchanged by day" study of Figure 5,
// over the cohort of pages present on day 0: for each day, the fraction
// of cohort pages that had neither changed nor disappeared.
type Figure5Result struct {
	// Unchanged[t] is the overall fraction at day t (index 0..Days-1).
	Unchanged []float64
	ByDomain  map[simweb.Domain][]float64
	// CohortSize is the number of day-0 pages.
	CohortSize int
}

// Figure5 computes the unchanged-fraction curves.
func (o *Observations) Figure5() *Figure5Result {
	res := &Figure5Result{
		Unchanged: make([]float64, o.Days),
		ByDomain:  make(map[simweb.Domain][]float64),
	}
	counts := make([]int, o.Days)
	domCounts := make(map[simweb.Domain][]int)
	domTotal := make(map[simweb.Domain]int)
	for _, d := range simweb.Domains {
		domCounts[d] = make([]int, o.Days)
		res.ByDomain[d] = make([]float64, o.Days)
	}
	for _, t := range o.tracks {
		if !t.firstIsFull {
			continue // not in the day-0 cohort
		}
		res.CohortSize++
		domTotal[t.domain]++
		// Day the page stopped being pristine: first change or first
		// absence, whichever came first; o.Days when neither happened.
		event := o.Days
		if t.firstChange >= 0 {
			event = t.firstChange
		}
		if t.lastSeen < o.Days-1 && t.lastSeen+1 < event {
			event = t.lastSeen + 1
		}
		for day := 0; day < event && day < o.Days; day++ {
			counts[day]++
			if dc, ok := domCounts[t.domain]; ok {
				dc[day]++
			}
		}
	}
	for day := 0; day < o.Days; day++ {
		if res.CohortSize > 0 {
			res.Unchanged[day] = float64(counts[day]) / float64(res.CohortSize)
		}
		for _, d := range simweb.Domains {
			if domTotal[d] > 0 {
				res.ByDomain[d][day] = float64(domCounts[d][day]) / float64(domTotal[d])
			}
		}
	}
	return res
}

// HalfLifeDays returns the first day at which the given unchanged-curve
// falls to 0.5 or below, with linear interpolation between days; ok is
// false when the curve never reaches 0.5 within the experiment (the
// paper's gov domain barely does in 4 months).
func HalfLifeDays(curve []float64) (float64, bool) {
	for i, f := range curve {
		if f <= 0.5 {
			if i == 0 {
				return 0, true
			}
			prev := curve[i-1]
			if prev == f {
				return float64(i), true
			}
			// Interpolate between day i-1 (prev > 0.5) and day i (f).
			frac := (prev - 0.5) / (prev - f)
			return float64(i-1) + frac, true
		}
	}
	return 0, false
}

// Figure6Result compares the observed change-interval distribution of
// pages with a given average change interval against the Poisson
// prediction (Figure 6's semilog plots).
type Figure6Result struct {
	// TargetIntervalDays is the selected page class (10 or 20 in the
	// paper).
	TargetIntervalDays float64
	// GapDays[i] / ObservedFrac[i] is the observed fraction of detected
	// change gaps equal to GapDays[i].
	GapDays      []float64
	ObservedFrac []float64
	// PredictedFrac is the Poisson-process prediction for the same gaps,
	// accounting for the daily sampling granularity: gaps are geometric
	// with p = 1 - exp(-lambda), the discretized exponential.
	PredictedFrac []float64
	// FittedRate is the exponential decay rate fitted to the observed
	// fractions on the semilog scale; under the Poisson hypothesis it
	// should be close to 1/TargetIntervalDays.
	FittedRate float64
	// FitR2 is the goodness of the log-linear fit (straight line on the
	// semilog plot).
	FitR2 float64
	// KSStat / KSPValue report a Kolmogorov-Smirnov test of the pooled
	// gaps against the exponential distribution with rate 1/target; a
	// large p-value means the Poisson hypothesis survives. The daily
	// sampling granularity discretizes the gaps, so KS is conservative
	// here (it sees step functions); the paper's Figure 6 makes the same
	// comparison visually.
	KSStat   float64
	KSPValue float64
	// SampleGaps is the number of change gaps pooled.
	SampleGaps int
}

// Figure6 pools change gaps from pages whose estimated average change
// interval lies within tolerance of target (relative), and compares their
// distribution with the Poisson prediction.
func (o *Observations) Figure6(targetIntervalDays, tolerance float64) (*Figure6Result, error) {
	if targetIntervalDays <= 0 || tolerance <= 0 {
		return nil, errors.New("experiment: bad figure 6 parameters")
	}
	lo := targetIntervalDays * (1 - tolerance)
	hi := targetIntervalDays * (1 + tolerance)
	gapCount := make(map[int]int)
	total := 0
	for _, t := range o.tracks {
		iv, ok := t.avgChangeIntervalDays()
		if !ok || iv < lo || iv > hi {
			continue
		}
		for _, g := range t.changeGaps {
			if g >= 1 {
				gapCount[g]++
				total++
			}
		}
	}
	if total == 0 {
		return nil, errors.New("experiment: no pages in the target interval class")
	}
	gaps := make([]int, 0, len(gapCount))
	for g := range gapCount {
		gaps = append(gaps, g)
	}
	sort.Ints(gaps)
	res := &Figure6Result{TargetIntervalDays: targetIntervalDays, SampleGaps: total}
	lambda := 1 / targetIntervalDays
	p := 1 - math.Exp(-lambda)
	for _, g := range gaps {
		res.GapDays = append(res.GapDays, float64(g))
		res.ObservedFrac = append(res.ObservedFrac, float64(gapCount[g])/float64(total))
		res.PredictedFrac = append(res.PredictedFrac, math.Pow(1-p, float64(g-1))*p)
	}
	fit, err := stats.FitExponential(res.GapDays, res.ObservedFrac)
	if err == nil {
		res.FittedRate = fit.Rate
		res.FitR2 = fit.R2
	}
	var pooled []float64
	for g, n := range gapCount {
		for i := 0; i < n; i++ {
			// Jitter integer gaps to the interval midpoint: a detected
			// gap of g days corresponds to a true gap in (g-1, g].
			pooled = append(pooled, float64(g)-0.5)
		}
	}
	if d, pv, kerr := stats.KSExponential(pooled, lambda); kerr == nil {
		res.KSStat = d
		res.KSPValue = pv
	}
	return res, nil
}
