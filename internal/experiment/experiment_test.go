package experiment

import (
	"math"
	"testing"

	"webevolve/internal/simweb"
)

func testWeb(t *testing.T, seed int64, pages int) *simweb.Web {
	t.Helper()
	w, err := simweb.New(simweb.Config{
		Seed: seed,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 6, simweb.Edu: 4, simweb.NetOrg: 2, simweb.Gov: 2,
		},
		PagesPerSite: pages,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMonitorValidation(t *testing.T) {
	w := testWeb(t, 1, 10)
	if _, err := Monitor(w, MonitorConfig{Days: 1}); err == nil {
		t.Fatal("1-day experiment accepted")
	}
}

func TestMonitorObservesAllPages(t *testing.T) {
	w := testWeb(t, 2, 20)
	obs, err := Monitor(w, MonitorConfig{Days: 30})
	if err != nil {
		t.Fatal(err)
	}
	// At least the initial window population must have been observed.
	if obs.NumPages() < 14*20 {
		t.Fatalf("observed %d pages, want >= %d", obs.NumPages(), 14*20)
	}
	// Root pages exist and span the whole experiment.
	root := w.Sites()[0].RootURL()
	tr, err := obs.trackFor(root)
	if err != nil {
		t.Fatal(err)
	}
	if tr.firstSeen != 0 || tr.lastSeen != 29 {
		t.Fatalf("root track %d..%d", tr.firstSeen, tr.lastSeen)
	}
	if tr.visibleDays() != 30 || tr.censored(30) != true {
		t.Fatalf("root lifespan %d censored=%v", tr.visibleDays(), tr.censored(30))
	}
}

func TestMonitorDeterministic(t *testing.T) {
	run := func() (int, []float64) {
		w := testWeb(t, 3, 15)
		obs, err := Monitor(w, MonitorConfig{Days: 40})
		if err != nil {
			t.Fatal(err)
		}
		return obs.NumPages(), obs.Figure2().Overall.Fractions()
	}
	n1, f1 := run()
	n2, f2 := run()
	if n1 != n2 {
		t.Fatalf("page counts differ: %d vs %d", n1, n2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("figure 2 fractions differ at %d", i)
		}
	}
}

func TestFigure2FractionsSumToOne(t *testing.T) {
	w := testWeb(t, 4, 25)
	obs, err := Monitor(w, MonitorConfig{Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.Figure2()
	sum := 0.0
	for _, f := range r.Overall.Fractions() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum %v", sum)
	}
	if r.MeanIntervalDays <= 0 {
		t.Fatalf("mean interval %v", r.MeanIntervalDays)
	}
	for _, d := range simweb.Domains {
		if r.ByDomain[d].Total() == 0 {
			t.Fatalf("domain %s unpopulated", d)
		}
	}
}

func TestFigure2ComFasterThanGov(t *testing.T) {
	w := testWeb(t, 5, 40)
	obs, err := Monitor(w, MonitorConfig{Days: 100})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.Figure2()
	comDaily := r.ByDomain[simweb.Com].Fractions()[0]
	govDaily := r.ByDomain[simweb.Gov].Fractions()[0]
	if comDaily <= govDaily {
		t.Fatalf("com daily %v not above gov %v", comDaily, govDaily)
	}
	comStatic := r.ByDomain[simweb.Com].Fractions()[4]
	govStatic := r.ByDomain[simweb.Gov].Fractions()[4]
	if govStatic <= comStatic {
		t.Fatalf("gov static %v not above com %v", govStatic, comStatic)
	}
}

func TestFigure4MethodsDiffer(t *testing.T) {
	w := testWeb(t, 6, 30)
	obs, err := Monitor(w, MonitorConfig{Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.Figure4()
	if r.Method1.Total() != r.Method2.Total() {
		t.Fatal("methods saw different page counts")
	}
	// Method 2 doubles censored spans, so its top bucket (>4 months)
	// must hold at least as many pages as Method 1's.
	m1Top := r.Method1.Fractions()[3]
	m2Top := r.Method2.Fractions()[3]
	if m2Top < m1Top {
		t.Fatalf("method2 top bucket %v below method1 %v", m2Top, m1Top)
	}
}

func TestFigure4DomainOrdering(t *testing.T) {
	w := testWeb(t, 7, 40)
	obs, err := Monitor(w, MonitorConfig{Days: 128})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.Figure4()
	// Paper: com pages shortest lived, edu/gov longest (Figure 4(b)).
	comTop := r.ByDomainM1[simweb.Com].Fractions()[3]
	eduTop := r.ByDomainM1[simweb.Edu].Fractions()[3]
	if eduTop <= comTop {
		t.Fatalf("edu long-lived fraction %v not above com %v", eduTop, comTop)
	}
}

func TestFigure5MonotoneAndAnchored(t *testing.T) {
	w := testWeb(t, 8, 30)
	obs, err := Monitor(w, MonitorConfig{Days: 80})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.Figure5()
	if r.CohortSize == 0 {
		t.Fatal("empty cohort")
	}
	if r.Unchanged[0] != 1 {
		t.Fatalf("day-0 fraction %v, want 1", r.Unchanged[0])
	}
	for i := 1; i < len(r.Unchanged); i++ {
		if r.Unchanged[i] > r.Unchanged[i-1]+1e-12 {
			t.Fatalf("curve increased at day %d", i)
		}
	}
	for _, d := range simweb.Domains {
		curve := r.ByDomain[d]
		if curve[0] != 1 {
			t.Fatalf("domain %s day-0 %v", d, curve[0])
		}
	}
}

func TestFigure5DomainOrdering(t *testing.T) {
	w := testWeb(t, 9, 40)
	obs, err := Monitor(w, MonitorConfig{Days: 100})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.Figure5()
	day := 30
	com := r.ByDomain[simweb.Com][day]
	gov := r.ByDomain[simweb.Gov][day]
	if com >= gov {
		t.Fatalf("day %d: com unchanged %v not below gov %v", day, com, gov)
	}
}

func TestHalfLifeDays(t *testing.T) {
	curve := []float64{1, 0.9, 0.7, 0.5, 0.3}
	hl, ok := HalfLifeDays(curve)
	if !ok || math.Abs(hl-3) > 1e-9 {
		t.Fatalf("half-life %v ok=%v", hl, ok)
	}
	// Interpolated crossing.
	curve = []float64{1, 0.6, 0.4}
	hl, ok = HalfLifeDays(curve)
	if !ok || math.Abs(hl-1.5) > 1e-9 {
		t.Fatalf("interpolated half-life %v", hl)
	}
	if _, ok := HalfLifeDays([]float64{1, 0.9, 0.8}); ok {
		t.Fatal("uncrossed curve reported a half-life")
	}
	if hl, ok := HalfLifeDays([]float64{0.4, 0.3}); !ok || hl != 0 {
		t.Fatalf("immediate crossing %v ok=%v", hl, ok)
	}
}

func TestFigure6PoissonFit(t *testing.T) {
	w := testWeb(t, 10, 60)
	obs, err := Monitor(w, MonitorConfig{Days: 128})
	if err != nil {
		t.Fatal(err)
	}
	r, err := obs.Figure6(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if r.SampleGaps < 50 {
		t.Fatalf("too few gaps pooled: %d", r.SampleGaps)
	}
	// Semilog fit must be a good straight line with a decay rate in the
	// right ballpark (selection bias and truncation push it high).
	if r.FitR2 < 0.85 {
		t.Fatalf("semilog fit R2 %v", r.FitR2)
	}
	if r.FittedRate < 0.05 || r.FittedRate > 0.25 {
		t.Fatalf("fitted rate %v for 10-day class", r.FittedRate)
	}
	// Observed fractions sum to ~1 and prediction is a proper pmf head.
	sum := 0.0
	for _, f := range r.ObservedFrac {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("observed fractions sum %v", sum)
	}
}

func TestFigure6Validation(t *testing.T) {
	w := testWeb(t, 11, 10)
	obs, err := Monitor(w, MonitorConfig{Days: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.Figure6(0, 0.2); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := obs.Figure6(10, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	// A target class with no pages must error cleanly.
	if _, err := obs.Figure6(100000, 0.001); err == nil {
		t.Fatal("empty class accepted")
	}
}

func TestSelectSites(t *testing.T) {
	w, err := simweb.New(simweb.Config{
		Seed: 12,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 40, simweb.Edu: 24, simweb.NetOrg: 10, simweb.Gov: 10,
		},
		PagesPerSite: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectSites(w, SelectionConfig{CandidateCount: 60, KeepCount: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Candidates) != 60 || len(sel.Selected) != 40 {
		t.Fatalf("candidates %d selected %d", len(sel.Candidates), len(sel.Selected))
	}
	total := 0
	for _, n := range sel.Table1 {
		total += n
	}
	if total != 40 {
		t.Fatalf("table1 total %d", total)
	}
	// Selected sites must be ranked descending.
	for i := 1; i < len(sel.Selected); i++ {
		if sel.Selected[i].Score > sel.Selected[i-1].Score {
			t.Fatal("selected not sorted by rank")
		}
	}
	// Candidates must be the top of the universe: their minimum score
	// should be >= any non-candidate's score. Spot-check determinism too.
	sel2, err := SelectSites(w, SelectionConfig{CandidateCount: 60, KeepCount: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sel.Selected {
		if sel.Selected[i].ID != sel2.Selected[i].ID {
			t.Fatal("consent lottery not deterministic")
		}
	}
}

func TestSelectSitesPopularityCorrelates(t *testing.T) {
	// Sites selected by PageRank should skew toward intrinsically
	// popular sites (low popularity rank in the generator).
	w, err := simweb.New(simweb.Config{
		Seed: 13,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 60, simweb.Edu: 30, simweb.NetOrg: 15, simweb.Gov: 15,
		},
		PagesPerSite:   15,
		PopularitySkew: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectSites(w, SelectionConfig{CandidateCount: 30, KeepCount: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sumRank float64
	for _, s := range sel.Selected {
		site, ok := w.SiteByHost(s.ID)
		if !ok {
			t.Fatalf("selected unknown site %s", s.ID)
		}
		sumRank += float64(site.PopularityRank())
	}
	meanRank := sumRank / float64(len(sel.Selected))
	// Random selection would average (120-1)/2 = 59.5; PageRank selection
	// must do much better.
	if meanRank > 45 {
		t.Fatalf("mean popularity rank of selected sites %v — selection is not popularity-driven", meanRank)
	}
}

func TestSelectSitesValidation(t *testing.T) {
	w := testWeb(t, 14, 10)
	if _, err := SelectSites(w, SelectionConfig{CandidateCount: 0, KeepCount: 0}); err == nil {
		t.Fatal("zero counts accepted")
	}
	if _, err := SelectSites(w, SelectionConfig{CandidateCount: 5, KeepCount: 10}); err == nil {
		t.Fatal("keep > candidates accepted")
	}
}

func TestAvgChangeIntervalEstimate(t *testing.T) {
	tr := &pageTrack{firstSeen: 0, lastSeen: 50, changes: 5}
	iv, ok := tr.avgChangeIntervalDays()
	if !ok || iv != 10 {
		t.Fatalf("interval %v ok=%v, want the paper's 50/5=10", iv, ok)
	}
	// No changes: no estimate.
	tr = &pageTrack{firstSeen: 0, lastSeen: 50}
	if _, ok := tr.avgChangeIntervalDays(); ok {
		t.Fatal("changeless page produced an estimate")
	}
	// Single observation: no estimate.
	tr = &pageTrack{firstSeen: 3, lastSeen: 3, changes: 1}
	if _, ok := tr.avgChangeIntervalDays(); ok {
		t.Fatal("single-day page produced an estimate")
	}
}
