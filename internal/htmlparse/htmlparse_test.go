package htmlparse

import (
	"fmt"
	"net/url"
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractHrefsBasic(t *testing.T) {
	html := `<html><body>
		<a href="http://a.com/1">one</a>
		<a href='http://a.com/2'>two</a>
		<a href=http://a.com/3>three</a>
	</body></html>`
	got := ExtractHrefs(html)
	want := []string{"http://a.com/1", "http://a.com/2", "http://a.com/3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExtractHrefsCaseInsensitive(t *testing.T) {
	got := ExtractHrefs(`<A HREF="http://x.com/">x</A>`)
	if len(got) != 1 || got[0] != "http://x.com/" {
		t.Fatalf("got %v", got)
	}
}

func TestExtractHrefsSkipsComments(t *testing.T) {
	html := `<!-- <a href="http://hidden.com/">no</a> --><a href="http://ok.com/">yes</a>`
	got := ExtractHrefs(html)
	if len(got) != 1 || got[0] != "http://ok.com/" {
		t.Fatalf("got %v", got)
	}
}

func TestExtractHrefsSkipsScriptAndStyle(t *testing.T) {
	html := `<script>var s = '<a href="http://js.com/">x</a>';</script>
		<style>a[href="http://css.com/"] {}</style>
		<a href="http://real.com/">r</a>`
	got := ExtractHrefs(html)
	if len(got) != 1 || got[0] != "http://real.com/" {
		t.Fatalf("got %v", got)
	}
}

func TestExtractHrefsAreaTag(t *testing.T) {
	got := ExtractHrefs(`<area href="http://map.com/x">`)
	if len(got) != 1 || got[0] != "http://map.com/x" {
		t.Fatalf("got %v", got)
	}
}

func TestExtractHrefsOtherAttributesIgnored(t *testing.T) {
	got := ExtractHrefs(`<a class="href" title="href=nope" href="http://y.com/">y</a>`)
	if len(got) != 1 || got[0] != "http://y.com/" {
		t.Fatalf("got %v", got)
	}
}

func TestExtractHrefsMalformed(t *testing.T) {
	// Unclosed tags and stray brackets must not panic or loop.
	for _, html := range []string{
		"<a href=", "<", "<a href='unterminated", "<!-- unterminated",
		"<script>never closed", `<a href="x.com/1"`, "",
	} {
		_ = ExtractHrefs(html) // must terminate
	}
}

func TestLinksResolvesRelative(t *testing.T) {
	base := "http://site.com/dir/page.html"
	html := `<a href="other.html">1</a>
		<a href="/root.html">2</a>
		<a href="../up.html">3</a>
		<a href="http://abs.com/x">4</a>`
	got := Links(base, html)
	want := []string{
		"http://site.com/dir/other.html",
		"http://site.com/root.html",
		"http://site.com/up.html",
		"http://abs.com/x",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLinksSkipsNonCrawlable(t *testing.T) {
	html := `<a href="#frag">f</a>
		<a href="mailto:x@y.com">m</a>
		<a href="javascript:void(0)">j</a>
		<a href="ftp://files.com/x">ftp</a>
		<a href="">empty</a>
		<a href="http://ok.com/">ok</a>`
	got := Links("http://base.com/", html)
	if len(got) != 1 || got[0] != "http://ok.com/" {
		t.Fatalf("got %v", got)
	}
}

func TestLinksDeduplicates(t *testing.T) {
	html := `<a href="http://a.com/x">1</a><a href="http://a.com/x">2</a>`
	got := Links("http://base.com/", html)
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestLinksStripsFragments(t *testing.T) {
	got := Links("http://b.com/", `<a href="http://a.com/page#sec2">x</a>`)
	if len(got) != 1 || got[0] != "http://a.com/page" {
		t.Fatalf("got %v", got)
	}
}

func TestResolve(t *testing.T) {
	base, _ := url.Parse("http://h.com/a/")
	cases := []struct {
		href string
		want string
		ok   bool
	}{
		{"b.html", "http://h.com/a/b.html", true},
		{"#x", "", false},
		{"  ", "", false},
		{"https://s.com/", "https://s.com/", true},
		{"//proto.com/x", "http://proto.com/x", true},
	}
	for _, c := range cases {
		got, ok := Resolve(base, c.href)
		if ok != c.ok || got != c.want {
			t.Errorf("Resolve(%q) = %q,%v want %q,%v", c.href, got, ok, c.want, c.ok)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"HTTP://Example.COM/Path", "http://example.com/Path"},
		{"http://h.com:80/x", "http://h.com/x"},
		{"https://h.com:443/x", "https://h.com/x"},
		{"http://h.com", "http://h.com/"},
		{"http://h.com/x#frag", "http://h.com/x"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSameSite(t *testing.T) {
	if !SameSite("http://a.com/1", "http://A.COM/2") {
		t.Fatal("case-insensitive host match failed")
	}
	if SameSite("http://a.com/", "http://b.com/") {
		t.Fatal("different hosts matched")
	}
}

func TestSortedUnique(t *testing.T) {
	got := SortedUnique([]string{"b", "a", "b", "c", "a"})
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("got %v", got)
	}
	if got := SortedUnique(nil); len(got) != 0 {
		t.Fatalf("nil input yields %v", got)
	}
}

func TestExtractNeverPanicsProperty(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		_ = ExtractHrefs(s)
		_ = Links("http://base.com/", s)
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripWithGeneratedPage(t *testing.T) {
	// A page built from links should parse back to exactly those links.
	links := []string{"http://x.com/a", "http://y.edu/b", "http://z.gov/"}
	var b strings.Builder
	b.WriteString("<html><body><ul>")
	for _, l := range links {
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`, l, l)
	}
	b.WriteString("</ul></body></html>")
	got := Links("http://x.com/", b.String())
	if fmt.Sprint(got) != fmt.Sprint(links) {
		t.Fatalf("round trip got %v want %v", got, links)
	}
}
