// Package htmlparse extracts links from HTML, the CrawlModule step that
// feeds AllUrls ("the CrawlModule extracts all links/URLs in the crawled
// page and forwards the URLs to AllUrls", Section 5.3).
//
// The extractor is a small hand-rolled tokenizer sufficient for anchor
// hrefs in real-world HTML: case-insensitive tags and attributes, single/
// double/unquoted attribute values, comments, and script/style skipping.
// Relative URLs are resolved against a base URL with net/url.
package htmlparse

import (
	"net/url"
	"sort"
	"strings"
)

// Links returns the absolute, deduplicated URLs of all <a href=...>
// anchors in the document, resolved against base. Fragment-only links,
// javascript:/mailto: schemes and unparsable URLs are skipped. Order is
// the order of first appearance.
func Links(baseURL, html string) []string {
	base, err := url.Parse(baseURL)
	if err != nil {
		base = nil
	}
	raw := ExtractHrefs(html)
	var out []string
	seen := make(map[string]struct{})
	for _, h := range raw {
		abs, ok := Resolve(base, h)
		if !ok {
			continue
		}
		if _, dup := seen[abs]; dup {
			continue
		}
		seen[abs] = struct{}{}
		out = append(out, abs)
	}
	return out
}

// Resolve makes href absolute against base, returning ok=false for
// links a crawler should not follow.
func Resolve(base *url.URL, href string) (string, bool) {
	href = strings.TrimSpace(href)
	if href == "" || strings.HasPrefix(href, "#") {
		return "", false
	}
	u, err := url.Parse(href)
	if err != nil {
		return "", false
	}
	if base != nil {
		u = base.ResolveReference(u)
	}
	switch u.Scheme {
	case "http", "https":
	default:
		return "", false
	}
	if u.Host == "" {
		return "", false
	}
	u.Fragment = ""
	return u.String(), true
}

// ExtractHrefs returns the raw href attribute values of all anchor tags,
// in document order. It is tolerant of malformed markup: unknown tags are
// skipped, attributes may be unquoted, and comments plus script/style
// bodies are ignored.
func ExtractHrefs(html string) []string {
	var out []string
	i := 0
	n := len(html)
	for i < n {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			break
		}
		i += lt
		// Comment?
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		gt := strings.IndexByte(html[i:], '>')
		if gt < 0 {
			break
		}
		tag := html[i+1 : i+gt]
		i += gt + 1
		name := tagName(tag)
		switch name {
		case "a", "area":
			if href, ok := attrValue(tag, "href"); ok {
				out = append(out, href)
			}
		case "base", "link":
			// Not followed as links; handled by callers if desired.
		case "script", "style":
			// Skip until the matching close tag, case-insensitively.
			close := "</" + name
			rest := strings.ToLower(html[i:])
			idx := strings.Index(rest, close)
			if idx < 0 {
				i = n
				continue
			}
			i += idx
		}
	}
	return out
}

// tagName extracts the lowercase tag name from tag content (text between
// '<' and '>'), or "" for closing/declaration tags.
func tagName(tag string) string {
	tag = strings.TrimSpace(tag)
	if tag == "" || tag[0] == '/' || tag[0] == '!' || tag[0] == '?' {
		return ""
	}
	end := 0
	for end < len(tag) {
		c := tag[end]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '/' {
			break
		}
		end++
	}
	return strings.ToLower(tag[:end])
}

// attrValue tokenizes the tag content's attributes and returns the value
// of the named attribute, handling double-quoted, single-quoted and
// unquoted forms. Tokenizing (rather than substring search) avoids
// matching attribute names that appear inside other attributes' values.
func attrValue(tag, name string) (string, bool) {
	i := 0
	n := len(tag)
	isSpace := func(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
	// Skip the tag name.
	for i < n && !isSpace(tag[i]) && tag[i] != '/' {
		i++
	}
	for i < n {
		for i < n && (isSpace(tag[i]) || tag[i] == '/') {
			i++
		}
		if i >= n {
			break
		}
		// Attribute name.
		start := i
		for i < n && !isSpace(tag[i]) && tag[i] != '=' && tag[i] != '/' {
			i++
		}
		attr := strings.ToLower(tag[start:i])
		for i < n && isSpace(tag[i]) {
			i++
		}
		var val string
		hasVal := false
		if i < n && tag[i] == '=' {
			i++
			for i < n && isSpace(tag[i]) {
				i++
			}
			if i < n {
				switch tag[i] {
				case '"', '\'':
					q := tag[i]
					i++
					vs := i
					for i < n && tag[i] != q {
						i++
					}
					val, hasVal = tag[vs:i], true
					if i < n {
						i++ // closing quote
					}
				default:
					vs := i
					for i < n && !isSpace(tag[i]) {
						i++
					}
					val, hasVal = tag[vs:i], true
				}
			}
		}
		if attr == name && hasVal {
			return val, true
		}
	}
	return "", false
}

// SameSite reports whether two absolute URLs share a host.
func SameSite(a, b string) bool {
	ua, err1 := url.Parse(a)
	ub, err2 := url.Parse(b)
	if err1 != nil || err2 != nil {
		return false
	}
	return strings.EqualFold(ua.Host, ub.Host)
}

// Normalize canonicalizes a URL for frontier deduplication: lowercases
// scheme and host, strips fragments and default ports, and resolves dot
// segments. Unparsable URLs are returned unchanged.
func Normalize(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return raw
	}
	u.Scheme = strings.ToLower(u.Scheme)
	u.Host = strings.ToLower(u.Host)
	u.Fragment = ""
	if (u.Scheme == "http" && strings.HasSuffix(u.Host, ":80")) ||
		(u.Scheme == "https" && strings.HasSuffix(u.Host, ":443")) {
		u.Host = u.Host[:strings.LastIndexByte(u.Host, ':')]
	}
	if u.Path == "" {
		u.Path = "/"
	}
	return u.String()
}

// SortedUnique returns a sorted, deduplicated copy of urls; a convenience
// for deterministic frontier insertion.
func SortedUnique(urls []string) []string {
	cp := append([]string(nil), urls...)
	sort.Strings(cp)
	out := cp[:0]
	var prev string
	for i, u := range cp {
		if i == 0 || u != prev {
			out = append(out, u)
		}
		prev = u
	}
	return out
}
