// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so `make bench` can write
// BENCH_engine.json and CI can archive the perf trajectory run over
// run.
//
//	go test -bench BenchmarkEngine -benchmem ./internal/core/ | go run ./internal/tools/benchjson
//
// Standard fields (ns/op, B/op, allocs/op) and custom ReportMetric
// units (pages/s, fetches/run, trips/batch, ...) are all captured;
// custom units are mapped to JSON keys by replacing '/' with '_per_'.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line, flattened for JSON.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// report is the whole run.
type report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Package string   `json:"pkg,omitempty"`
	Results []result `json:"results"`
}

func metricKey(unit string) string {
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}

func main() {
	rep := report{Results: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[metricKey(fields[i+1])] = v
		}
		if len(r.Metrics) > 0 {
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
