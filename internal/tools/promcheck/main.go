// Command promcheck validates Prometheus text exposition read from
// stdin — the `make ci` gate behind the smoke scripts' /metrics
// scrapes. It fails (exit 1) on malformed exposition: bad metric
// names, unparsable sample values, samples typed before their # TYPE
// line, duplicate or unknown TYPE declarations.
//
// With -require name1,name2,... it additionally asserts each named
// family is present with a non-zero sample sum — how the smoke
// scripts pin "the crawl actually moved these counters" rather than
// just "the endpoint returned something". A histogram family is
// satisfied by its _count series.
//
// Usage:
//
//	curl -s http://$addr/metrics | promcheck -require webevolve_cluster_server_ops_total,webevolve_wal_appends_total
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

var sampleTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present with a non-zero sum")
	flag.Parse()

	sums := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineno := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "promcheck: line %d: %s\n", lineno, fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				continue // free-form comment
			}
			if !nameRe.MatchString(f[2]) {
				fail("bad metric name %q in %s line", f[2], f[1])
			}
			if f[1] == "TYPE" {
				if len(f) < 4 || !sampleTypes[f[3]] {
					fail("bad or missing type for family %s", f[2])
				}
				if typed[f[2]] {
					fail("duplicate TYPE for family %s", f[2])
				}
				typed[f[2]] = true
			}
			continue
		}
		// A sample: name{labels} value [timestamp] or name value.
		rest := line
		name := rest
		if i := strings.IndexAny(rest, "{ "); i >= 0 {
			name = rest[:i]
			if rest[i] == '{' {
				j := strings.LastIndex(rest, "}")
				if j < i {
					fail("unclosed label braces")
				}
				rest = rest[j+1:]
			} else {
				rest = rest[i:]
			}
		} else {
			fail("sample with no value: %q", line)
		}
		if !nameRe.MatchString(name) {
			fail("bad sample name %q", name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			fail("sample %s: want value [timestamp], got %q", name, rest)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			fail("sample %s: unparsable value %q", name, fields[0])
		}
		// The family behind a histogram/summary series keeps its base
		// name for the TYPE check.
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] {
			fail("sample %s before its # TYPE line", name)
		}
		sums[name] += v
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: read:", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: empty exposition")
		os.Exit(1)
	}

	ok := true
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sum, present := sums[name]
			if !present {
				// A histogram family is observed through its _count.
				sum, present = sums[name+"_count"]
			}
			switch {
			case !present:
				fmt.Fprintf(os.Stderr, "promcheck: required family %s absent\n", name)
				ok = false
			case sum == 0:
				fmt.Fprintf(os.Stderr, "promcheck: required family %s present but zero\n", name)
				ok = false
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d series ok\n", len(sums))
}
