// Package profiles wires -cpuprofile/-memprofile flags into the crawl
// binaries, so perf regressions can be diagnosed with pprof without
// recompiling (crawlsim and webcrawl both expose the flags).
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges
// a heap profile at memPath (when non-empty). The returned stop
// function finishes both; it is safe to call exactly once, and must be
// called on the normal exit path (os.Exit skips deferred calls).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
