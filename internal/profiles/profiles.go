// Package profiles is the one profiling setup path for every webevolve
// binary, covering both delivery modes of the same runtime/pprof data:
//
//   - File profiles (-cpuprofile/-memprofile, via Start): whole-run
//     captures for batch binaries — crawlsim and webcrawl runs whose
//     interesting window is the entire process lifetime. The profile
//     covers start to stop and lands in a file for offline `go tool
//     pprof`.
//   - Live endpoints (Register, mounted on the -metrics-listen debug
//     listener by internal/daemon): on-demand captures from a running
//     daemon — profile shardd/storerd/webservd (or a long webcrawl)
//     while it misbehaves, without restarting it or waiting for exit:
//     `go tool pprof http://addr/debug/pprof/profile?seconds=10`.
//
// Both modes go through Setup, so a binary can combine them (a daemon
// with -cpuprofile for the full run and live heap inspection on top).
package profiles

import (
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config selects which profiling modes Setup wires up. The zero value
// wires nothing.
type Config struct {
	// CPUFile, when non-empty, receives a CPU profile covering Setup to
	// stop.
	CPUFile string
	// MemFile, when non-empty, receives a heap profile written at stop.
	MemFile string
	// Mux, when non-nil, gets the live pprof endpoints mounted under
	// /debug/pprof/.
	Mux *http.ServeMux
}

// Setup wires the requested profiling modes. The returned stop
// finishes the file profiles (live endpoints need no teardown); it is
// safe to call exactly once, and must be called on the normal exit
// path (os.Exit skips deferred calls).
func Setup(cfg Config) (stop func(), err error) {
	if cfg.Mux != nil {
		Register(cfg.Mux)
	}
	var cpuFile *os.File
	if cfg.CPUFile != "" {
		cpuFile, err = os.Create(cfg.CPUFile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if cfg.MemFile != "" {
			f, err := os.Create(cfg.MemFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}

// Start begins CPU profiling to cpuPath (when non-empty) and arranges
// a heap profile at memPath (when non-empty) — the file half of Setup,
// kept as the short call the -cpuprofile/-memprofile flag sites use.
func Start(cpuPath, memPath string) (stop func(), err error) {
	return Setup(Config{CPUFile: cpuPath, MemFile: memPath})
}

// Register mounts the live pprof endpoints on mux under /debug/pprof/
// (index, cmdline, profile, symbol, trace, and the named runtime
// profiles via the index). Mounting on an explicit mux — rather than
// relying on net/http/pprof's DefaultServeMux side effect — means the
// endpoints are served only by the debug listener that asked for them,
// never by a daemon's public serving port.
func Register(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}
