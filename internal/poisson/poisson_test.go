package poisson

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewProcessRejectsBadRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range []float64{-1, math.Inf(1), math.NaN()} {
		if _, err := NewProcess(r, rng); err == nil {
			t.Errorf("NewProcess(%v) accepted", r)
		}
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	p, err := NewProcess(0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n := p.CountIn(0, 1e6); n != 0 {
		t.Fatalf("zero-rate process fired %d times", n)
	}
	if ev := p.EventsIn(0, 1e6); ev != nil {
		t.Fatalf("zero-rate process produced events %v", ev)
	}
}

func TestCountMatchesRate(t *testing.T) {
	// Over a long horizon the event count concentrates near rate*T.
	rng := rand.New(rand.NewSource(42))
	for _, rate := range []float64{0.1, 1, 5} {
		p, err := NewProcess(rate, rng)
		if err != nil {
			t.Fatal(err)
		}
		const horizon = 20000.0
		n := float64(p.CountIn(0, horizon))
		mean := rate * horizon
		sd := math.Sqrt(mean)
		if math.Abs(n-mean) > 6*sd {
			t.Errorf("rate %v: count %v, want %v +- %v", rate, n, mean, 6*sd)
		}
	}
}

func TestEventsAreOrderedAndInRange(t *testing.T) {
	p, err := NewProcess(2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ev := p.EventsIn(10, 50)
	prev := 10.0
	for _, e := range ev {
		if e < prev || e >= 50 {
			t.Fatalf("event %v out of order/range (prev %v)", e, prev)
		}
		prev = e
	}
}

func TestEventsInSuccessiveWindowsDisjoint(t *testing.T) {
	p, err := NewProcess(3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	a := p.EventsIn(0, 10)
	b := p.EventsIn(10, 20)
	for _, e := range a {
		if e >= 10 {
			t.Fatalf("first window leaked event %v", e)
		}
	}
	for _, e := range b {
		if e < 10 || e >= 20 {
			t.Fatalf("second window has event %v", e)
		}
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	// Trapezoid integral of the Theorem 1 density should be ~1.
	const rate = 0.5
	sum := 0.0
	dt := 0.001
	for x := 0.0; x < 40; x += dt {
		sum += Density(rate, x+dt/2) * dt
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("density integrates to %v", sum)
	}
}

func TestDensityCDFDerivativeRelation(t *testing.T) {
	const rate, x, h = 1.3, 0.7, 1e-6
	dCDF := (CDF(rate, x+h) - CDF(rate, x-h)) / (2 * h)
	if math.Abs(dCDF-Density(rate, x)) > 1e-5 {
		t.Fatalf("dCDF/dx = %v, density = %v", dCDF, Density(rate, x))
	}
}

func TestSurvivalPlusCDFIsOne(t *testing.T) {
	if err := quick.Check(func(rate, x float64) bool {
		rate = math.Abs(math.Mod(rate, 10)) + 0.01
		x = math.Abs(math.Mod(x, 100))
		s := Survival(rate, x) + CDF(rate, x)
		return math.Abs(s-1) < 1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSurvivalEdgeCases(t *testing.T) {
	if Survival(1, 0) != 1 || Survival(1, -5) != 1 {
		t.Fatal("survival at t<=0 must be 1")
	}
	if Survival(0, 100) != 1 {
		t.Fatal("zero-rate survival must be 1")
	}
}

func TestPMFSumsToOne(t *testing.T) {
	const rate, horizon = 2.0, 3.0
	sum := 0.0
	for k := 0; k < 200; k++ {
		sum += PMF(rate, horizon, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
}

func TestPMFZeroCases(t *testing.T) {
	if PMF(1, 1, -1) != 0 {
		t.Fatal("negative k must have zero probability")
	}
	if PMF(0, 5, 0) != 1 {
		t.Fatal("zero rate: P(N=0) must be 1")
	}
	if PMF(0, 5, 3) != 0 {
		t.Fatal("zero rate: P(N=3) must be 0")
	}
}

func TestPMFMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rate, horizon, trials = 1.5, 2.0, 20000
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		p, err := NewProcess(rate, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[p.CountIn(0, horizon)]++
	}
	for k := 0; k <= 6; k++ {
		want := PMF(rate, horizon, k)
		got := float64(counts[k]) / trials
		if math.Abs(got-want) > 0.015 {
			t.Errorf("P(N=%d): simulated %.4f, theoretical %.4f", k, got, want)
		}
	}
}

func TestFitRateFromIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const rate = 0.25
	var intervals []float64
	for i := 0; i < 50000; i++ {
		intervals = append(intervals, Exp(rng, rate))
	}
	got, err := FitRateFromIntervals(intervals)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-rate)/rate > 0.03 {
		t.Fatalf("fitted rate %v, want ~%v", got, rate)
	}
}

func TestFitRateErrors(t *testing.T) {
	if _, err := FitRateFromIntervals(nil); err == nil {
		t.Fatal("empty intervals accepted")
	}
	if _, err := FitRateFromIntervals([]float64{1, -2}); err == nil {
		t.Fatal("negative interval accepted")
	}
}

func TestQuantile(t *testing.T) {
	// Median of Exp(rate) is ln2/rate.
	const rate = 2.0
	want := math.Ln2 / rate
	if got := Quantile(rate, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("median %v, want %v", got, want)
	}
	if !math.IsNaN(Quantile(0, 0.5)) || !math.IsNaN(Quantile(1, 0)) || !math.IsNaN(Quantile(1, 1)) {
		t.Fatal("invalid quantile arguments must return NaN")
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	if err := quick.Check(func(r, q float64) bool {
		r = math.Abs(math.Mod(r, 5)) + 0.1
		q = math.Mod(math.Abs(q), 0.98) + 0.01
		x := Quantile(r, q)
		return math.Abs(CDF(r, x)-q) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rate = 4.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += Exp(rng, rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean %v, want %v", mean, 1/rate)
	}
}

func TestSuperpositionIsPoisson(t *testing.T) {
	// Merging two independent streams yields a process whose count over a
	// horizon matches the summed rate.
	rng := rand.New(rand.NewSource(13))
	p1, _ := NewProcess(1, rng)
	p2, _ := NewProcess(2, rng)
	const horizon = 5000.0
	merged := MergedEventTimes(p1.EventsIn(0, horizon), p2.EventsIn(0, horizon))
	mean := 3 * horizon
	if math.Abs(float64(len(merged))-mean) > 6*math.Sqrt(mean) {
		t.Fatalf("merged count %d, want ~%v", len(merged), mean)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i] < merged[i-1] {
			t.Fatal("merged events not sorted")
		}
	}
}

func TestNextEventMonotone(t *testing.T) {
	p, _ := NewProcess(1, rand.New(rand.NewSource(17)))
	prev := 0.0
	for tt := 0.0; tt < 100; tt += 7 {
		next := p.NextEvent(tt)
		if next < tt {
			t.Fatalf("NextEvent(%v) = %v in the past", tt, next)
		}
		if next < prev && prev <= tt {
			t.Fatalf("NextEvent went backwards: %v after %v", next, prev)
		}
		prev = next
	}
}
