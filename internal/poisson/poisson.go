// Package poisson implements the Poisson-process machinery the paper relies
// on throughout: exponential interarrival sampling for the synthetic web,
// the density of Theorem 1 (Section 3.4), and rate estimation helpers.
//
// A Poisson process with rate lambda generates events whose interarrival
// times T are exponentially distributed with density
//
//	f(t) = lambda * exp(-lambda*t), t > 0.
//
// The paper verifies empirically (Figure 6) that web-page changes follow
// this model, and all of Section 4's freshness analytics assume it.
package poisson

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrBadRate reports a non-positive or non-finite rate parameter.
var ErrBadRate = errors.New("poisson: rate must be positive and finite")

// Process is a homogeneous Poisson process with a fixed rate, measured in
// events per unit time (the unit is the caller's choice; experiments use
// days).
type Process struct {
	rate float64
	rng  *rand.Rand
	// next is the absolute time of the next event, maintained so that a
	// Process can be queried incrementally by a simulator.
	next float64
}

// NewProcess returns a Poisson process with the given rate, drawing
// randomness from rng. A rate of zero is permitted and yields a process
// that never fires (used for pages that never change).
func NewProcess(rate float64, rng *rand.Rand) (*Process, error) {
	if rate < 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return nil, ErrBadRate
	}
	p := &Process{rate: rate, rng: rng}
	p.next = p.sampleNext(0)
	return p, nil
}

// Rate returns the process rate.
func (p *Process) Rate() float64 { return p.rate }

// sampleNext draws the next event time strictly after from.
func (p *Process) sampleNext(from float64) float64 {
	if p.rate == 0 {
		return math.Inf(1)
	}
	return from + Exp(p.rng, p.rate)
}

// NextEvent returns the absolute time of the next event at or after t,
// advancing the internal state past any events that occur before t.
// Successive calls with non-decreasing t enumerate the event stream.
func (p *Process) NextEvent(t float64) float64 {
	for p.next < t {
		p.next = p.sampleNext(p.next)
	}
	return p.next
}

// EventsIn returns the times of all events in the half-open interval
// [from, to), advancing internal state past them.
func (p *Process) EventsIn(from, to float64) []float64 {
	if p.rate == 0 || to <= from {
		return nil
	}
	var out []float64
	t := p.NextEvent(from)
	for t < to {
		out = append(out, t)
		p.next = p.sampleNext(t)
		t = p.next
	}
	return out
}

// CountIn returns the number of events in [from, to), advancing state.
func (p *Process) CountIn(from, to float64) int {
	n := 0
	if p.rate == 0 || to <= from {
		return 0
	}
	t := p.NextEvent(from)
	for t < to {
		n++
		p.next = p.sampleNext(t)
		t = p.next
	}
	return n
}

// Exp draws an exponential variate with the given rate from rng.
func Exp(rng *rand.Rand, rate float64) float64 {
	// rand.ExpFloat64 has mean 1; scale by 1/rate.
	return rng.ExpFloat64() / rate
}

// Density is the interarrival density of Theorem 1:
// f(t) = rate*exp(-rate*t) for t > 0, else 0.
func Density(rate, t float64) float64 {
	if t <= 0 || rate <= 0 {
		return 0
	}
	return rate * math.Exp(-rate*t)
}

// CDF is the interarrival distribution function
// P(T <= t) = 1 - exp(-rate*t).
func CDF(rate, t float64) float64 {
	if t <= 0 || rate <= 0 {
		return 0
	}
	return 1 - math.Exp(-rate*t)
}

// Survival is P(T > t) = exp(-rate*t), the probability that a page is
// still unchanged t time units after a sync. Section 4's freshness curves
// decay exponentially for exactly this reason.
func Survival(rate, t float64) float64 {
	if t <= 0 {
		return 1
	}
	if rate <= 0 {
		return 1
	}
	return math.Exp(-rate * t)
}

// PMF is the Poisson counting probability P(N(t) = k) for a process of the
// given rate observed for duration t.
func PMF(rate, t float64, k int) float64 {
	if k < 0 || t < 0 || rate < 0 {
		return 0
	}
	mu := rate * t
	if mu == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	// Compute in log space to avoid overflow for large k.
	lp := float64(k)*math.Log(mu) - mu - logFactorial(k)
	return math.Exp(lp)
}

func logFactorial(k int) float64 {
	lg, _ := math.Lgamma(float64(k) + 1)
	return lg
}

// FitRateFromIntervals returns the maximum-likelihood rate estimate for a
// set of observed complete interarrival intervals: rate = n / sum(T_i).
func FitRateFromIntervals(intervals []float64) (float64, error) {
	if len(intervals) == 0 {
		return 0, errors.New("poisson: no intervals")
	}
	var sum float64
	for _, iv := range intervals {
		if iv <= 0 {
			return 0, errors.New("poisson: non-positive interval")
		}
		sum += iv
	}
	return float64(len(intervals)) / sum, nil
}

// Quantile returns the q-quantile of the exponential interarrival
// distribution: t such that CDF(rate, t) = q.
func Quantile(rate, q float64) float64 {
	if rate <= 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	return -math.Log(1-q) / rate
}

// MergedEventTimes merges several event streams into one sorted slice.
// The superposition of independent Poisson processes is itself Poisson
// with the summed rate; tests use this property.
func MergedEventTimes(streams ...[]float64) []float64 {
	var all []float64
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.Float64s(all)
	return all
}
