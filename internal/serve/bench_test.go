package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webevolve/internal/cluster"
	"webevolve/internal/store"
)

// benchPages is the repository size the serving benchmarks run over.
const benchPages = 512

// benchReaders is the concurrent-reader count for the QPS benchmarks —
// the serving plane's load target is ≥1k simultaneous readers.
const benchReaders = 1000

func benchRecord(i, gen int) store.PageRecord {
	return store.PageRecord{
		URL:       fmt.Sprintf("http://bench.site/page-%04d", i),
		Checksum:  uint64(gen)<<32 | uint64(i),
		FetchedAt: float64(gen) + float64(i)/benchPages,
		Content:   []byte(fmt.Sprintf("generation %d page %04d: the quick brown fox jumps over the lazy dog", gen, i)),
		Links:     []string{"http://bench.site/", fmt.Sprintf("http://bench.site/page-%04d", (i+1)%benchPages)},
	}
}

func fillBench(b *testing.B, coll store.Collection) {
	b.Helper()
	recs := make([]store.PageRecord, benchPages)
	for i := range recs {
		recs[i] = benchRecord(i, 0)
	}
	if err := coll.PutBatch(recs); err != nil {
		b.Fatal(err)
	}
}

// benchServeQPS drives benchReaders concurrent HTTP readers against a
// live server while crawl (if non-nil) keeps mutating the repository in
// the background — the serving plane under its actual load shape, not a
// sequential microbenchmark. Each b.N iteration sends one request from
// every reader; the metric that matters is the reported req/s.
func benchServeQPS(b *testing.B, src Source, crawl func(stop <-chan struct{})) {
	ts := httptest.NewServer(New(Config{Source: src}))
	defer ts.Close()
	// One shared transport with a bounded connection pool: 1000 readers
	// multiplex over ~256 sockets instead of exhausting fds.
	tr := &http.Transport{MaxIdleConnsPerHost: 256, MaxConnsPerHost: 256}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	stop := make(chan struct{})
	var crawlWG sync.WaitGroup
	if crawl != nil {
		crawlWG.Add(1)
		go func() {
			defer crawlWG.Done()
			crawl(stop)
		}()
	}

	// Readers pull one token per request from a shared queue; each b.N
	// iteration feeds one token per reader.
	var (
		readyWG sync.WaitGroup
		doneWG  sync.WaitGroup
		tick    = make(chan struct{}, benchReaders)
		readerE atomic.Int64
	)
	for r := 0; r < benchReaders; r++ {
		readyWG.Add(1)
		doneWG.Add(1)
		go func(r int) {
			readyWG.Done()
			defer doneWG.Done()
			url := ts.URL + "/v1/pages/" + fmt.Sprintf("http://bench.site/page-%04d", r%benchPages)
			for range tick {
				resp, err := client.Get(url)
				if err != nil {
					readerE.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					readerE.Add(1)
				}
			}
		}(r)
	}
	readyWG.Wait()

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for r := 0; r < benchReaders; r++ {
			tick <- struct{}{}
		}
	}
	close(tick)
	doneWG.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	crawlWG.Wait()
	if n := readerE.Load(); n > 0 {
		b.Fatalf("%d reader errors", n)
	}
	b.ReportMetric(float64(b.N*benchReaders)/elapsed.Seconds(), "req/s")
}

// shadowCrawl is the background mutator for the QPS benchmarks: write a
// fresh generation into the shadow, swap, repeat — readers live through
// repeated atomic republications while they serve.
func shadowCrawl(b *testing.B, sh *store.Shadowed) func(stop <-chan struct{}) {
	return func(stop <-chan struct{}) {
		for gen := 1; ; gen++ {
			for i := 0; i < benchPages; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := sh.Shadow().Put(benchRecord(i, gen)); err != nil {
					b.Errorf("shadow put: %v", err)
					return
				}
			}
			if _, err := sh.Swap(); err != nil {
				b.Errorf("swap: %v", err)
				return
			}
		}
	}
}

// BenchmarkServeQPSMem: 1000 concurrent readers over an in-memory
// shadowed repository with a live crawl swapping generations under
// them.
func BenchmarkServeQPSMem(b *testing.B) {
	sh := store.NewShadowedMem()
	defer sh.Close()
	fillBench(b, sh.Current())
	benchServeQPS(b, sh, shadowCrawl(b, sh))
}

// BenchmarkServeQPSDisk: the same load over log-structured disk
// collections.
func BenchmarkServeQPSDisk(b *testing.B) {
	dir := b.TempDir()
	gen := 0
	var mu sync.Mutex
	newShadow := func() (store.Collection, error) {
		mu.Lock()
		gen++
		g := gen
		mu.Unlock()
		return store.OpenDisk(filepath.Join(dir, fmt.Sprintf("gen%d", g)))
	}
	sh, err := store.NewShadowed(nil, newShadow)
	if err != nil {
		b.Fatal(err)
	}
	defer sh.Close()
	fillBench(b, sh.Current())
	benchServeQPS(b, sh, shadowCrawl(b, sh))
}

// BenchmarkServeQPSRemote: the repository lives behind a store server
// (loopback wire protocol); the HTTP server's every cache miss is a
// wire round trip, and a concurrent client keeps rewriting the
// collection through the same server.
func BenchmarkServeQPSRemote(b *testing.B) {
	srv := cluster.NewMemStoreServer()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	reads, err := cluster.DialStoreTCP(srv.Addr().String(), cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer reads.Close()
	writes, err := cluster.DialStoreTCP(srv.Addr().String(), cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer writes.Close()

	fillBench(b, writes.Collection("pages"))
	writeColl := writes.Collection("pages")
	benchServeQPS(b, Static(reads.Collection("pages")), func(stop <-chan struct{}) {
		for gen := 1; ; gen++ {
			for i := 0; i < benchPages; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := writeColl.Put(benchRecord(i, gen)); err != nil {
					b.Errorf("remote put: %v", err)
					return
				}
			}
		}
	})
}

// benchHotGet measures the single-page hot path without client or
// socket noise: the handler invoked directly, every request the same
// URL. The cached variant must win on both ns/op and allocs/op — that
// delta is what the hot-set cache buys.
func benchHotGet(b *testing.B, cacheEntries int) {
	dir := b.TempDir()
	disk, err := store.OpenDisk(filepath.Join(dir, "pages"))
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	fillBench(b, disk)
	srv := New(Config{Source: Static(disk), CacheEntries: cacheEntries})
	url := "/v1/pages/http://bench.site/page-0001"

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		for pb.Next() {
			rw := httptest.NewRecorder()
			rw.Body.Reset()
			srv.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				b.Errorf("status %d", rw.Code)
				return
			}
		}
	})
}

// BenchmarkServeHotGetCached / BenchmarkServeHotGetUncached: the same
// hot GET with and without the hot-set cache, over the disk backend
// (an uncached hit pays the segment read every time).
func BenchmarkServeHotGetCached(b *testing.B)   { benchHotGet(b, 0) }
func BenchmarkServeHotGetUncached(b *testing.B) { benchHotGet(b, -1) }
