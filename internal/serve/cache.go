package serve

import (
	"container/list"
	"sync"

	"webevolve/internal/store"
)

// pageCache is the serving plane's bounded hot-set cache: an LRU keyed
// by URL, bounded both by entry count and by resident bytes (page
// bodies dominate), and stamped with the source generation it was
// filled under. A lookup presenting a newer generation — the shadow
// swap just published a fresh collection — flushes the whole cache
// before proceeding, so no reader is ever served a record from a
// retired generation.
//
// Misses are not cached: a negative entry would pin "absent" across
// writes on backends that never swap (in-place crawls), and the
// absent-page path is already a single index probe.
type pageCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	gen     uint64
	bytes   int64
	entries map[string]*list.Element
	ll      *list.List // front = most recently used

	// Counters live on the owning Server's registry; residency gauges
	// (entries, bytes) are GaugeFuncs reading the fields above.
	m *serveMetrics
}

// cacheEntry is one resident record.
type cacheEntry struct {
	url  string
	rec  store.PageRecord
	size int64
}

// newPageCache builds a cache; non-positive bounds fall back to the
// defaults (4096 entries, 64 MiB).
func newPageCache(maxEntries int, maxBytes int64, m *serveMetrics) *pageCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &pageCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[string]*list.Element),
		ll:         list.New(),
		m:          m,
	}
}

// recordSize approximates a record's resident footprint.
func recordSize(rec store.PageRecord) int64 {
	n := 96 + len(rec.URL) + len(rec.Content)
	for _, l := range rec.Links {
		n += 16 + len(l)
	}
	return int64(n)
}

// syncGenLocked flushes the cache when the source generation moved.
func (c *pageCache) syncGenLocked(gen uint64) {
	if gen == c.gen {
		return
	}
	c.gen = gen
	if c.ll.Len() > 0 {
		c.m.cacheInvalidations.Inc()
		c.entries = make(map[string]*list.Element)
		c.ll.Init()
		c.bytes = 0
	}
}

// get returns the cached record for url under the given generation.
func (c *pageCache) get(gen uint64, url string) (store.PageRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGenLocked(gen)
	el, ok := c.entries[url]
	if !ok {
		c.m.cacheMisses.Inc()
		return store.PageRecord{}, false
	}
	c.m.cacheHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rec, true
}

// put inserts a record under the given generation, evicting from the
// cold end until both bounds hold. A record bigger than a quarter of
// the byte budget is not cached at all: one megapage must not evict the
// whole hot set.
func (c *pageCache) put(gen uint64, url string, rec store.PageRecord) {
	size := recordSize(rec)
	if size > c.maxBytes/4 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGenLocked(gen)
	if el, ok := c.entries[url]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.rec, ent.size = rec, size
		c.ll.MoveToFront(el)
	} else {
		c.entries[url] = c.ll.PushFront(&cacheEntry{url: url, rec: rec, size: size})
		c.bytes += size
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, ent.url)
		c.bytes -= ent.size
		c.m.cacheEvictions.Inc()
	}
}

// CacheStats is a point-in-time snapshot of the hot-set cache, reported
// by /v1/stats.
type CacheStats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxEntries    int   `json:"maxEntries"`
	MaxBytes      int64 `json:"maxBytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// stats snapshots the counters.
func (c *pageCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		MaxEntries:    c.maxEntries,
		MaxBytes:      c.maxBytes,
		Hits:          c.m.cacheHits.Value(),
		Misses:        c.m.cacheMisses.Value(),
		Evictions:     c.m.cacheEvictions.Value(),
		Invalidations: c.m.cacheInvalidations.Value(),
	}
}

// residentEntries and residentBytes back the cache residency
// GaugeFuncs, sampled at scrape time.
func (c *pageCache) residentEntries() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.ll.Len())
}

func (c *pageCache) residentBytes() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.bytes)
}
