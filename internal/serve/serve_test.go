package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"webevolve/internal/freshness"
	"webevolve/internal/obs"
	"webevolve/internal/store"
)

// Shadowed-implements-Source is a compile-time fact the swap-safety
// story rests on; asserted here (not in serve.go) so the non-test
// package references nothing of the store but its read-only plane.
var _ Source = (*store.Shadowed)(nil)

// testRecords is the fixture collection: URLs with schemes and double
// slashes, exactly the shapes that break path-cleaning routers.
var testRecords = []store.PageRecord{
	{URL: "http://a.com/", Checksum: 0xa0, FetchedAt: 1.5, Content: []byte("<html><body>home</body></html>"), Links: []string{"http://a.com/p1"}},
	{URL: "http://a.com/p1", Checksum: 0xa1, FetchedAt: 2.0, Content: []byte("page one")},
	{URL: "http://a.com/p2", Checksum: 0xa2, FetchedAt: 2.5, Content: []byte("page two")},
	{URL: "http://b.org/x", Checksum: 0xb0, FetchedAt: 3.0, Content: []byte("bee")},
}

func newTestShadowed(t *testing.T) *store.Shadowed {
	t.Helper()
	s := store.NewShadowedMem()
	for _, rec := range testRecords {
		if err := s.Current().Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { s.Close() })
	return s
}

type fakeEstimates map[string]Estimate

func (f fakeEstimates) Estimate(url string) (Estimate, bool) {
	e, ok := f[url]
	return e, ok
}

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *store.Shadowed) {
	t.Helper()
	sh := newTestShadowed(t)
	if cfg.Source == nil {
		cfg.Source = sh
	}
	if cfg.Metrics == nil {
		// A private registry per test server: counters assert exact
		// per-server values, which the shared obs.Default would blur
		// across tests.
		cfg.Metrics = obs.NewRegistry()
	}
	ts := httptest.NewServer(New(cfg))
	t.Cleanup(ts.Close)
	return ts, sh
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestGetPage(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ts, _ := newTestServer(t, Config{Epoch: epoch})

	cases := []struct {
		name    string
		path    string
		hdr     map[string]string
		status  int
		body    string // exact body, when non-empty
		errPart string // substring of the JSON error, when non-empty
	}{
		{name: "hit raw URL in path", path: "/v1/pages/http://a.com/p1", status: 200, body: "page one"},
		{name: "hit percent-encoded", path: "/v1/pages/http%3A%2F%2Fa.com%2Fp2", status: 200, body: "page two"},
		{name: "hit via query param", path: "/v1/pages/x?url=http://b.org/x", status: 200, body: "bee"},
		{name: "trailing-slash URL survives routing", path: "/v1/pages/http://a.com/", status: 200, body: "<html><body>home</body></html>"},
		{name: "miss", path: "/v1/pages/http://a.com/nope", status: 404, errPart: "not in collection"},
		{name: "empty page URL", path: "/v1/pages/", status: 400, errPart: "empty"},
		{name: "unknown endpoint", path: "/v2/pages/http://a.com/", status: 404, errPart: "no such endpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts.URL+tc.path, tc.hdr)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %q)", resp.StatusCode, tc.status, body)
			}
			if tc.body != "" && string(body) != tc.body {
				t.Fatalf("body %q, want %q", body, tc.body)
			}
			if tc.errPart != "" {
				var e map[string]string
				if err := json.Unmarshal(body, &e); err != nil {
					t.Fatalf("error body is not JSON: %q", body)
				}
				if !strings.Contains(e["error"], tc.errPart) {
					t.Fatalf("error %q missing %q", e["error"], tc.errPart)
				}
			}
		})
	}

	t.Run("metadata headers", func(t *testing.T) {
		resp, _ := get(t, ts.URL+"/v1/pages/http://a.com/p1", nil)
		if et := resp.Header.Get("ETag"); et != `"a1"` {
			t.Fatalf("ETag %q, want %q", et, `"a1"`)
		}
		if cs := resp.Header.Get("X-Webevolve-Checksum"); cs != "a1" {
			t.Fatalf("checksum header %q", cs)
		}
		// FetchedAt 2.0 days after the epoch.
		want := epoch.Add(48 * time.Hour).Format(http.TimeFormat)
		if lm := resp.Header.Get("Last-Modified"); lm != want {
			t.Fatalf("Last-Modified %q, want %q", lm, want)
		}
	})

	t.Run("meta JSON", func(t *testing.T) {
		resp, body := get(t, ts.URL+"/v1/pages/http://a.com/?meta=1", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var m PageMeta
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
		if m.URL != "http://a.com/" || m.Checksum != "a0" || m.ContentBytes != len(testRecords[0].Content) || m.Links != 1 {
			t.Fatalf("meta %+v", m)
		}
	})

	t.Run("malformed escape rejected", func(t *testing.T) {
		// The Go client refuses to send an invalid escape, so speak raw
		// HTTP: the server must answer 400, not serve or crash.
		conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "GET /v1/pages/http%%zz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
		reply, err := io.ReadAll(conn)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(reply), "HTTP/1.1 400") {
			t.Fatalf("reply %q, want 400", string(reply)[:min(len(reply), 40)])
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/pages/http://a.com/", "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST status %d, want 405", resp.StatusCode)
		}
	})
}

func TestConditionalRequests(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ts, _ := newTestServer(t, Config{Epoch: epoch})
	page := ts.URL + "/v1/pages/http://a.com/p1" // checksum a1, day 2.0
	modified := epoch.Add(48 * time.Hour)

	cases := []struct {
		name   string
		hdr    map[string]string
		status int
	}{
		{"no conditions", nil, 200},
		{"etag match", map[string]string{"If-None-Match": `"a1"`}, 304},
		{"etag mismatch", map[string]string{"If-None-Match": `"dead"`}, 200},
		{"etag star", map[string]string{"If-None-Match": "*"}, 304},
		{"weak etag match", map[string]string{"If-None-Match": `W/"a1"`}, 304},
		{"etag list match", map[string]string{"If-None-Match": `"x", "a1"`}, 304},
		{"ims not modified", map[string]string{"If-Modified-Since": modified.Format(http.TimeFormat)}, 304},
		{"ims modified since", map[string]string{"If-Modified-Since": modified.Add(-time.Hour).Format(http.TimeFormat)}, 200},
		// If-None-Match takes precedence: a mismatching tag forces 200
		// even with a satisfied If-Modified-Since.
		{"inm precedence", map[string]string{
			"If-None-Match":     `"dead"`,
			"If-Modified-Since": modified.Format(http.TimeFormat),
		}, 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, page, tc.hdr)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if tc.status == 304 {
				if len(body) != 0 {
					t.Fatalf("304 carried a body: %q", body)
				}
				if et := resp.Header.Get("ETag"); et != `"a1"` {
					t.Fatalf("304 ETag %q", et)
				}
			}
		})
	}
}

func listPage(t *testing.T, base, query string) PageList {
	t.Helper()
	resp, body := get(t, base+"/v1/pages"+query, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("list %q: status %d (%s)", query, resp.StatusCode, body)
	}
	var pl PageList
	if err := json.Unmarshal(body, &pl); err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestListPages(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	t.Run("all", func(t *testing.T) {
		pl := listPage(t, ts.URL, "")
		if pl.Count != 4 || pl.Next != "" {
			t.Fatalf("count %d next %q", pl.Count, pl.Next)
		}
		for i := 1; i < len(pl.Pages); i++ {
			if pl.Pages[i-1].URL >= pl.Pages[i].URL {
				t.Fatalf("listing out of order: %q >= %q", pl.Pages[i-1].URL, pl.Pages[i].URL)
			}
		}
	})

	t.Run("pagination resume", func(t *testing.T) {
		var got []string
		query := "?limit=2"
		for {
			pl := listPage(t, ts.URL, query)
			for _, p := range pl.Pages {
				got = append(got, p.URL)
			}
			if pl.Next == "" {
				break
			}
			query = "?limit=2&after=" + pl.Next
		}
		if len(got) != 4 {
			t.Fatalf("paged walk returned %d pages: %v", len(got), got)
		}
		for i, rec := range []string{"http://a.com/", "http://a.com/p1", "http://a.com/p2", "http://b.org/x"} {
			if got[i] != rec {
				t.Fatalf("page %d = %q, want %q", i, got[i], rec)
			}
		}
	})

	t.Run("prefix", func(t *testing.T) {
		pl := listPage(t, ts.URL, "?prefix="+"http://a.com/")
		if pl.Count != 3 {
			t.Fatalf("prefix count %d, want 3 (%v)", pl.Count, pl.Pages)
		}
		// The prefix-equal URL itself must be included (ScanFrom alone
		// is strictly-after and would drop it).
		if pl.Pages[0].URL != "http://a.com/" {
			t.Fatalf("first page %q, want the prefix-equal URL", pl.Pages[0].URL)
		}
	})

	t.Run("prefix with resume", func(t *testing.T) {
		pl := listPage(t, ts.URL, "?limit=1&prefix=http://a.com/&after=http://a.com/")
		if pl.Count != 1 || pl.Pages[0].URL != "http://a.com/p1" {
			t.Fatalf("resumed prefix page %+v", pl.Pages)
		}
	})

	t.Run("bad limit", func(t *testing.T) {
		for _, q := range []string{"?limit=0", "?limit=-1", "?limit=x"} {
			resp, _ := get(t, ts.URL+"/v1/pages"+q, nil)
			if resp.StatusCode != 400 {
				t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
			}
		}
	})
}

func TestEstimates(t *testing.T) {
	t.Run("no source", func(t *testing.T) {
		ts, _ := newTestServer(t, Config{})
		resp, _ := get(t, ts.URL+"/v1/estimates/http://a.com/", nil)
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("status %d, want 501", resp.StatusCode)
		}
	})

	ts, _ := newTestServer(t, Config{Estimates: fakeEstimates{
		"http://a.com/": {URL: "http://a.com/", Estimator: "ep-irregular", RatePerDay: 0.25, Samples: 8, Changes: 2},
	}})
	t.Run("hit", func(t *testing.T) {
		resp, body := get(t, ts.URL+"/v1/estimates/http://a.com/", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var e Estimate
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.RatePerDay != 0.25 || e.Estimator != "ep-irregular" || e.Samples != 8 {
			t.Fatalf("estimate %+v", e)
		}
	})
	t.Run("miss", func(t *testing.T) {
		resp, _ := get(t, ts.URL+"/v1/estimates/http://a.com/unknown", nil)
		if resp.StatusCode != 404 {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
}

func TestFreshness(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	t.Run("values match the freshness package", func(t *testing.T) {
		lambda, cycle := 0.5, 2.0
		resp, body := get(t, ts.URL+fmt.Sprintf("/v1/freshness?lambda=%g&cycle=%g&samples=5", lambda, cycle), nil)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d (%s)", resp.StatusCode, body)
		}
		var rep FreshnessReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.SteadyInPlace-freshness.SteadyInPlace(lambda, cycle)) > 1e-12 ||
			math.Abs(rep.BatchShadow-freshness.BatchShadow(lambda, cycle, cycle)) > 1e-12 ||
			math.Abs(rep.AvgAgeDays-freshness.AvgAge(lambda, cycle)) > 1e-12 {
			t.Fatalf("report disagrees with the freshness package: %+v", rep)
		}
		if len(rep.BatchInPlaceCurve) != 5 {
			t.Fatalf("curve has %d samples, want 5", len(rep.BatchInPlaceCurve))
		}
		if last := rep.BatchInPlaceCurve[4]; last.T != cycle {
			t.Fatalf("curve ends at t=%g, want %g", last.T, cycle)
		}
	})

	t.Run("validation", func(t *testing.T) {
		for _, q := range []string{
			"", "?lambda=0.5", "?cycle=1", "?lambda=-1&cycle=1", "?lambda=x&cycle=1",
			"?lambda=0.5&cycle=0", "?lambda=0.5&cycle=1&crawl=2", "?lambda=0.5&cycle=1&samples=1",
		} {
			resp, _ := get(t, ts.URL+"/v1/freshness"+q, nil)
			if resp.StatusCode != 400 {
				t.Fatalf("%q: status %d, want 400", q, resp.StatusCode)
			}
		}
	})
}

func TestStatsAndHealthz(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	get(t, ts.URL+"/v1/pages/http://a.com/p1", nil) // one page hit
	resp, body = get(t, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Pages != 4 || st.PagesServed != 1 || st.Cache == nil {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheInvalidationOnSwap is the swap-coherence test: a page served
// (and cached) before a shadow swap must be served from the *new*
// collection afterwards — never a stale cache hit from the retired
// generation.
func TestCacheInvalidationOnSwap(t *testing.T) {
	ts, sh := newTestServer(t, Config{})
	page := ts.URL + "/v1/pages/http://a.com/p1"

	// Prime the cache: second read is a hit.
	get(t, page, nil)
	resp, body := get(t, page, nil)
	if resp.StatusCode != 200 || string(body) != "page one" {
		t.Fatalf("pre-swap: %d %q", resp.StatusCode, body)
	}

	// New generation with different content for the same URL.
	if err := sh.Shadow().Put(store.PageRecord{
		URL: "http://a.com/p1", Checksum: 0xff, FetchedAt: 9.0, Content: []byte("page one, revised"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Swap(); err != nil {
		t.Fatal(err)
	}

	resp, body = get(t, page, nil)
	if resp.StatusCode != 200 || string(body) != "page one, revised" {
		t.Fatalf("post-swap read not from new generation: %d %q", resp.StatusCode, body)
	}
	if et := resp.Header.Get("ETag"); et != `"ff"` {
		t.Fatalf("post-swap ETag %q, want new checksum", et)
	}
	// A pre-swap URL absent from the new generation is now a miss.
	resp, _ = get(t, ts.URL+"/v1/pages/http://a.com/p2", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("retired page served after swap: %d", resp.StatusCode)
	}

	// The flush shows up in the stats.
	_, body = get(t, ts.URL+"/v1/stats", nil)
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Invalidations < 1 {
		t.Fatalf("cache invalidations %d, want >= 1", st.Cache.Invalidations)
	}
	if st.Generation != 1 {
		t.Fatalf("generation %d, want 1", st.Generation)
	}
}

// TestServeAcrossLiveCrawl is the serving-plane stress test (run under
// -race by make ci): concurrent readers hammer every endpoint while a
// writer crawls into the shadow and swaps repeatedly. No request may
// ever observe a closed-collection error (500) — the op-refcount guard
// plus generation-keyed cache must make swaps invisible to readers.
func TestServeAcrossLiveCrawl(t *testing.T) {
	sh := store.NewShadowedMem()
	defer sh.Close()
	for _, rec := range testRecords {
		if err := sh.Current().Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(Config{Source: sh, CacheEntries: 64, Metrics: obs.NewRegistry()}))
	defer ts.Close()

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The crawler: write a fresh generation into the shadow, swap,
	// repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 0; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < len(testRecords); i++ {
				rec := testRecords[i]
				rec.Checksum = uint64(gen)<<8 | uint64(i)
				rec.Content = []byte(fmt.Sprintf("gen %d page %d", gen, i))
				if err := sh.Shadow().Put(rec); err != nil {
					t.Errorf("shadow put: %v", err)
					return
				}
			}
			if _, err := sh.Swap(); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	paths := []string{
		"/v1/pages/http://a.com/p1",
		"/v1/pages/http://a.com/p1?meta=1",
		"/v1/pages?limit=2",
		"/v1/pages?prefix=http://a.com/",
		"/v1/stats",
		"/healthz",
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(r+i)%len(paths)]
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// 404 is legal (a read can land between swap and the next
				// generation containing the page — not here, every
				// generation has all pages, but keep the invariant tight):
				// what must never happen is a 5xx.
				if resp.StatusCode >= 500 {
					t.Errorf("reader %d: %s -> %d", r, p, resp.StatusCode)
					return
				}
			}
		}(r)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestStatsMatchesRegistry is the regression test for the /v1/stats
// migration onto the metrics registry: every counter the JSON endpoint
// reports must equal what a Prometheus scrape of the same registry
// shows — the two views are one set of counters, not parallel
// bookkeeping that can drift.
func TestStatsMatchesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _ := newTestServer(t, Config{Metrics: reg})

	page := ts.URL + "/v1/pages/http://a.com/p1"
	get(t, page, nil)                                        // miss + fill
	get(t, page, nil)                                        // cache hit
	get(t, page, map[string]string{"If-None-Match": `"a1"`}) // 304
	get(t, ts.URL+"/v1/pages/http://nowhere/", nil)          // 404

	_, body := get(t, ts.URL+"/v1/stats", nil)
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{
		fmt.Sprintf("webevolve_serve_requests_total %d", st.Requests),
		fmt.Sprintf("webevolve_serve_pages_served_total %d", st.PagesServed),
		fmt.Sprintf("webevolve_serve_not_modified_total %d", st.NotModified),
		fmt.Sprintf("webevolve_serve_cache_hits_total %d", st.Cache.Hits),
		fmt.Sprintf("webevolve_serve_cache_misses_total %d", st.Cache.Misses),
		fmt.Sprintf("webevolve_serve_cache_entries %d", st.Cache.Entries),
		`webevolve_serve_responses_total{status="200"}`,
		`webevolve_serve_responses_total{status="304"} 1`,
		`webevolve_serve_responses_total{status="404"} 1`,
	} {
		if !strings.Contains(expo, want+"\n") && !strings.Contains(expo, want+" ") {
			t.Errorf("exposition missing %q\n%s", want, expo)
		}
	}
	if st.Requests != 5 || st.PagesServed != 2 || st.NotModified != 1 {
		t.Errorf("stats counters %+v", st)
	}
	// Hits: the second p1 read and the conditional read (the 304 still
	// resolves the record); misses: first p1 read and the 404 probe.
	if st.Cache.Hits != 2 || st.Cache.Misses != 2 {
		t.Errorf("cache counters %+v", *st.Cache)
	}
}
