// Package serve is the serving plane: an HTTP read API over the
// crawled repository, built so the collection the crawler maintains
// (the write half of a WebBase-style system) is actually served to
// many concurrent readers — the paper's reason for keeping the
// collection fresh in the first place.
//
// The package depends only on store.Reader, the read-only half of the
// storage interface: the compiler proves the serving plane cannot
// write, delete, or close the repository it fronts. Swap-safety
// against a live shadow crawl comes from the Source abstraction — each
// request resolves the current reader and its generation, the bundled
// hot-set cache drops its entries whenever the generation moves, and a
// read in flight across a swap completes against the collection it
// started on (store.Shadowed's op-refcount guard).
//
// Endpoints:
//
//	GET /v1/pages/{url}      page content + metadata headers; ?meta=1 for JSON metadata
//	GET /v1/pages            paged listing: ?prefix= &after= &limit=
//	GET /v1/estimates/{url}  change-frequency estimate (EP/EB), when a source is configured
//	GET /v1/freshness        Section-4 freshness/age curves: ?lambda= &cycle= [&crawl= &samples=]
//	GET /v1/stats            repository, cache and request counters
//	GET /healthz             liveness probe
//
// Page URLs ride in the request path verbatim (GET
// /v1/pages/http://host/a.html) or percent-encoded; a ?url= query
// parameter is also accepted. Responses carry an ETag derived from the
// stored content checksum, honoured by If-None-Match (and
// If-Modified-Since when the server knows the crawl epoch), so an
// unchanged page costs a 304 header exchange — the serving-side mirror
// of the crawler's own change detection.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"webevolve/internal/clock"
	"webevolve/internal/freshness"
	"webevolve/internal/obs"
	"webevolve/internal/store"
)

// Source yields the reader a request is served from, plus the
// generation it belongs to. The generation must change whenever the
// underlying collection is atomically replaced (a shadow swap): it
// keys the hot-set cache and invalidates conditional-request state.
// *store.Shadowed implements Source directly (its View method); fixed
// collections wrap in Static.
type Source interface {
	View() (store.Reader, uint64)
}

// SourceFunc adapts a function to a Source.
type SourceFunc func() (store.Reader, uint64)

// View implements Source.
func (f SourceFunc) View() (store.Reader, uint64) { return f() }

// Static wraps a fixed reader as a Source with a constant generation —
// a finished crawl directory, or a storerd collection that is only
// ever appended to in place.
func Static(r store.Reader) Source {
	return SourceFunc(func() (store.Reader, uint64) { return r, 0 })
}

// Estimate is one page's change-frequency report, the serving-side
// face of the paper's Section 5.3 estimators.
type Estimate struct {
	URL string `json:"url"`
	// Estimator names the estimator that produced the rate (EP, EB,
	// naive).
	Estimator string `json:"estimator"`
	// RatePerDay is the estimated change rate lambda in changes/day.
	RatePerDay float64 `json:"ratePerDay"`
	// IntervalDays is the revisit interval the crawler derives from the
	// rate, when known.
	IntervalDays float64 `json:"intervalDays,omitempty"`
	// Samples and Changes summarize the observation history behind the
	// estimate.
	Samples int `json:"samples"`
	Changes int `json:"changes"`
	// LastVisitDay and NextDueDay are crawl-epoch days, when known.
	LastVisitDay float64 `json:"lastVisitDay,omitempty"`
	NextDueDay   float64 `json:"nextDueDay,omitempty"`
}

// EstimateSource resolves a page's change-frequency estimate; ok is
// false for unknown URLs.
type EstimateSource interface {
	Estimate(url string) (Estimate, bool)
}

// Config parameterizes a Server.
type Config struct {
	// Source resolves the reader per request (required).
	Source Source
	// Estimates backs /v1/estimates; nil serves 501 there.
	Estimates EstimateSource
	// Epoch anchors the repository's fractional-day timestamps to wall
	// time; when set, page responses carry Last-Modified and honour
	// If-Modified-Since. Zero disables both.
	Epoch time.Time
	// CacheEntries / CacheBytes bound the hot-set cache (defaults 4096
	// entries, 64 MiB). CacheEntries < 0 disables caching entirely.
	CacheEntries int
	CacheBytes   int64
	// Metrics receives the serving-plane metric families; nil uses the
	// process-wide obs.Default, so /v1/stats and the daemon's /metrics
	// endpoint report the same counters.
	Metrics *obs.Registry
}

// Server is the HTTP read API. It implements http.Handler itself —
// deliberately not via http.ServeMux, whose path cleaning would
// redirect the double slash in /v1/pages/http://host/… before the
// handler ever saw it.
type Server struct {
	src   Source
	est   EstimateSource
	epoch time.Time
	cache *pageCache // nil: caching disabled

	start time.Time
	m     *serveMetrics
}

// New builds a Server. It panics on a nil Source: every endpoint needs
// one, and the zero Config is a programming error, not a runtime
// condition.
func New(cfg Config) *Server {
	if cfg.Source == nil {
		panic("serve: Config.Source is required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	s := &Server{
		src:   cfg.Source,
		est:   cfg.Estimates,
		epoch: cfg.Epoch,
		start: time.Now(),
		m:     newServeMetrics(reg),
	}
	if cfg.CacheEntries >= 0 {
		s.cache = newPageCache(cfg.CacheEntries, cfg.CacheBytes, s.m)
		// Residency gauges read the live cache at scrape time. Building
		// a second Server on the same registry rebinds them to the new
		// cache — the daemon runs one Server per process.
		reg.GaugeFunc("webevolve_serve_cache_entries",
			"resident hot-set cache entries", s.cache.residentEntries)
		reg.GaugeFunc("webevolve_serve_cache_bytes",
			"resident hot-set cache bytes", s.cache.residentBytes)
	}
	return s
}

// Handler returns the server as an http.Handler (it is one; the method
// reads better at call sites building an http.Server).
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler: count the request, route it, then
// record the status and wall time of the response that went out.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.route(sw, r)
	status := sw.status
	if status == 0 {
		status = http.StatusOK // implicit 200: body written with no WriteHeader
	}
	s.m.responses.With(strconv.Itoa(status)).Inc()
	s.m.seconds.Observe(time.Since(start).Seconds())
}

// route dispatches one request to its endpoint handler.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		s.error(w, http.StatusMethodNotAllowed, "only GET and HEAD are served")
		return
	}
	// Route on the escaped path: page URLs contain "//" and must not be
	// path-cleaned.
	p := r.URL.EscapedPath()
	switch {
	case p == "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case p == "/v1/stats":
		s.stats(w)
	case p == "/v1/pages":
		s.listPages(w, r)
	case strings.HasPrefix(p, "/v1/pages/"):
		s.getPage(w, r, strings.TrimPrefix(p, "/v1/pages/"))
	case p == "/v1/estimates" || strings.HasPrefix(p, "/v1/estimates/"):
		s.getEstimate(w, r, strings.TrimPrefix(strings.TrimPrefix(p, "/v1/estimates"), "/"))
	case p == "/v1/freshness":
		s.freshness(w, r)
	default:
		s.error(w, http.StatusNotFound, "no such endpoint")
	}
}

// error writes a JSON error body with the given status.
func (s *Server) error(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeJSON writes a 200 JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// pageURL resolves the page URL of a request: the ?url= query
// parameter when present, else the escaped path remainder,
// percent-decoded. An empty or undecodable URL is a client error.
func pageURL(r *http.Request, pathRest string) (string, error) {
	if q := r.URL.Query().Get("url"); q != "" {
		return q, nil
	}
	u, err := url.PathUnescape(pathRest)
	if err != nil {
		return "", fmt.Errorf("undecodable page URL %q: %v", pathRest, err)
	}
	if u == "" {
		return "", fmt.Errorf("empty page URL")
	}
	return u, nil
}

// etagFor derives the entity tag from the stored checksum — content-
// addressed, so the same bytes keep the same tag across swaps and even
// across backends.
func etagFor(rec store.PageRecord) string {
	return fmt.Sprintf("%q", strconv.FormatUint(rec.Checksum, 16))
}

// etagMatches reports whether an If-None-Match header value matches.
func etagMatches(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// lookup resolves one record through the cache.
func (s *Server) lookup(reader store.Reader, gen uint64, u string) (store.PageRecord, bool, error) {
	if s.cache != nil {
		if rec, ok := s.cache.get(gen, u); ok {
			return rec, true, nil
		}
	}
	rec, ok, err := reader.Get(u)
	if err != nil || !ok {
		return store.PageRecord{}, false, err
	}
	if s.cache != nil {
		s.cache.put(gen, u, rec)
	}
	return rec, true, nil
}

// getPage serves GET /v1/pages/{url}: the stored body with metadata in
// headers, or JSON metadata with ?meta=1. Conditional requests
// (If-None-Match on the checksum ETag; If-Modified-Since when the
// epoch is known) short-circuit to 304.
func (s *Server) getPage(w http.ResponseWriter, r *http.Request, pathRest string) {
	u, err := pageURL(r, pathRest)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	reader, gen := s.src.View()
	rec, ok, err := s.lookup(reader, gen, u)
	if err != nil {
		s.error(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		s.error(w, http.StatusNotFound, "page not in collection")
		return
	}

	etag := etagFor(rec)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("X-Webevolve-Checksum", strconv.FormatUint(rec.Checksum, 16))
	h.Set("X-Webevolve-Fetched-Day", strconv.FormatFloat(rec.FetchedAt, 'g', -1, 64))
	h.Set("X-Webevolve-Links", strconv.Itoa(len(rec.Links)))
	h.Set("X-Webevolve-Generation", strconv.FormatUint(gen, 10))
	if rec.Importance != 0 {
		h.Set("X-Webevolve-Importance", strconv.FormatFloat(rec.Importance, 'g', -1, 64))
	}
	var lastMod time.Time
	if !s.epoch.IsZero() {
		lastMod = s.epoch.Add(clock.FromDays(rec.FetchedAt)).UTC().Truncate(time.Second)
		h.Set("Last-Modified", lastMod.Format(http.TimeFormat))
	}

	// If-None-Match wins over If-Modified-Since (RFC 9110 §13.1.3).
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if etagMatches(inm, etag) {
			s.m.notModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
	} else if ims := r.Header.Get("If-Modified-Since"); ims != "" && !lastMod.IsZero() {
		if t, terr := http.ParseTime(ims); terr == nil && !lastMod.After(t) {
			s.m.notModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}

	s.m.pagesServed.Inc()
	if r.URL.Query().Get("meta") != "" {
		s.writeJSON(w, s.meta(rec, gen))
		return
	}
	ct := "application/octet-stream"
	if len(rec.Content) > 0 {
		ct = http.DetectContentType(rec.Content)
	}
	h.Set("Content-Type", ct)
	h.Set("Content-Length", strconv.Itoa(len(rec.Content)))
	_, _ = w.Write(rec.Content)
}

// PageMeta is the JSON metadata shape shared by the single-page
// (?meta=1) and listing endpoints.
type PageMeta struct {
	URL          string  `json:"url"`
	ETag         string  `json:"etag"`
	Checksum     string  `json:"checksum"`
	FetchedAtDay float64 `json:"fetchedAtDay"`
	FetchedAt    string  `json:"fetchedAt,omitempty"`
	Version      int     `json:"version,omitempty"`
	Importance   float64 `json:"importance,omitempty"`
	ContentBytes int     `json:"contentBytes"`
	Links        int     `json:"links"`
	Generation   uint64  `json:"generation"`
}

// meta projects a record to its metadata.
func (s *Server) meta(rec store.PageRecord, gen uint64) PageMeta {
	m := PageMeta{
		URL:          rec.URL,
		ETag:         etagFor(rec),
		Checksum:     strconv.FormatUint(rec.Checksum, 16),
		FetchedAtDay: rec.FetchedAt,
		Version:      rec.Version,
		Importance:   rec.Importance,
		ContentBytes: len(rec.Content),
		Links:        len(rec.Links),
		Generation:   gen,
	}
	if !s.epoch.IsZero() {
		m.FetchedAt = s.epoch.Add(clock.FromDays(rec.FetchedAt)).UTC().Format(time.RFC3339)
	}
	return m
}

// listLimits bound the paged listing.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// PageList is the paged-listing response. Next, when set, is the
// ?after= cursor resuming strictly after the last returned page.
type PageList struct {
	Pages      []PageMeta `json:"pages"`
	Count      int        `json:"count"`
	Next       string     `json:"next,omitempty"`
	Generation uint64     `json:"generation"`
}

// listPages serves GET /v1/pages?prefix=&after=&limit=: a page of the
// sorted URL space, resumable with the returned cursor. The scan rides
// ScanFrom, so each page costs one lazy suffix visit — the unconsumed
// tail is never sorted, read, or decoded.
func (s *Server) listPages(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	prefix, after := q.Get("prefix"), q.Get("after")
	limit := defaultListLimit
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			s.error(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = min(n, maxListLimit)
	}

	reader, gen := s.src.View()
	out := PageList{Pages: make([]PageMeta, 0, min(limit, 64)), Generation: gen}
	more := false
	add := func(rec store.PageRecord) bool {
		if prefix != "" && !strings.HasPrefix(rec.URL, prefix) {
			// Sorted order: once past the prefix range nothing later
			// matches.
			return false
		}
		if len(out.Pages) == limit {
			more = true
			return false
		}
		out.Pages = append(out.Pages, s.meta(rec, gen))
		return true
	}

	start := after
	if prefix != "" && after < prefix {
		// ScanFrom is strictly-after, which would skip an exact
		// prefix-equal URL; probe it directly, then resume after it.
		if rec, ok, err := reader.Get(prefix); err != nil {
			s.error(w, http.StatusInternalServerError, err.Error())
			return
		} else if ok {
			add(rec)
		}
		start = prefix
	}
	if !more {
		if err := reader.ScanFrom(start, add); err != nil {
			s.error(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	out.Count = len(out.Pages)
	if more && out.Count > 0 {
		out.Next = out.Pages[out.Count-1].URL
	}
	s.writeJSON(w, out)
}

// getEstimate serves GET /v1/estimates/{url}.
func (s *Server) getEstimate(w http.ResponseWriter, r *http.Request, pathRest string) {
	if s.est == nil {
		s.error(w, http.StatusNotImplemented, "no estimate source configured (serve a crawl directory with change histories)")
		return
	}
	u, err := pageURL(r, pathRest)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	est, ok := s.est.Estimate(u)
	if !ok {
		s.error(w, http.StatusNotFound, "no change history for page")
		return
	}
	s.writeJSON(w, est)
}

// CurvePoint is one sample of a freshness curve: expected freshness F
// at cycle phase T (days).
type CurvePoint struct {
	T float64 `json:"t"`
	F float64 `json:"f"`
}

// FreshnessReport is the /v1/freshness response: the Section-4
// time-average freshness of the four design points for the given
// change rate, plus the within-cycle evolution curves of Figures 7-8
// and the expected age.
type FreshnessReport struct {
	Lambda  float64 `json:"lambda"`
	Cycle   float64 `json:"cycle"`
	Crawl   float64 `json:"crawl"`
	Samples int     `json:"samples"`

	// Time-average freshness per design point (Table 2 row/column).
	SteadyInPlace float64 `json:"steadyInPlace"`
	BatchInPlace  float64 `json:"batchInPlace"`
	SteadyShadow  float64 `json:"steadyShadow"`
	BatchShadow   float64 `json:"batchShadow"`
	// AvgAgeDays is the time-average age of a page revisited once per
	// cycle.
	AvgAgeDays float64 `json:"avgAgeDays"`

	// Evolution curves over one cycle.
	BatchInPlaceCurve  []CurvePoint `json:"batchInPlaceCurve"`
	SteadyShadowerCur  []CurvePoint `json:"steadyShadowCrawlerCurve"`
	SteadyShadowCurve  []CurvePoint `json:"steadyShadowCurrentCurve"`
	BatchShadowerCurve []CurvePoint `json:"batchShadowCrawlerCurve"`
	BatchShadowCurve   []CurvePoint `json:"batchShadowCurrentCurve"`
}

// freshness serves GET /v1/freshness?lambda=&cycle=[&crawl=&samples=]:
// the analytic freshness/age machinery of Section 4, exposed so a
// consumer of the collection can see what freshness the crawl policy
// buys at a given change rate.
func (s *Server) freshness(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	parse := func(name string) (float64, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false, fmt.Errorf("%s must be a number", name)
		}
		return f, true, nil
	}
	lambda, ok, err := parse("lambda")
	if err != nil || !ok || lambda < 0 {
		s.error(w, http.StatusBadRequest, "lambda (changes/day, >= 0) is required")
		return
	}
	cycle, ok, err := parse("cycle")
	if err != nil || !ok || cycle <= 0 {
		s.error(w, http.StatusBadRequest, "cycle (days, > 0) is required")
		return
	}
	crawl, ok, err := parse("crawl")
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	if !ok {
		crawl = cycle
	}
	if crawl <= 0 || crawl > cycle {
		s.error(w, http.StatusBadRequest, "crawl must be in (0, cycle]")
		return
	}
	samples := 65
	if v, ok, err := parse("samples"); err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	} else if ok {
		if v < 2 || v > 4096 {
			s.error(w, http.StatusBadRequest, "samples must be in [2, 4096]")
			return
		}
		samples = int(v)
	}

	curve := func(f func(t float64) float64) []CurvePoint {
		pts := make([]CurvePoint, samples)
		for i := range pts {
			t := cycle * float64(i) / float64(samples-1)
			pts[i] = CurvePoint{T: t, F: f(t)}
		}
		return pts
	}
	rep := FreshnessReport{
		Lambda:  lambda,
		Cycle:   cycle,
		Crawl:   crawl,
		Samples: samples,

		SteadyInPlace: freshness.SteadyInPlace(lambda, cycle),
		BatchInPlace:  freshness.BatchInPlace(lambda, cycle),
		SteadyShadow:  freshness.SteadyShadow(lambda, cycle),
		BatchShadow:   freshness.BatchShadow(lambda, cycle, crawl),
		AvgAgeDays:    freshness.AvgAge(lambda, cycle),

		BatchInPlaceCurve: curve(func(t float64) float64 {
			return freshness.CurveBatchInPlace(lambda, cycle, crawl, t)
		}),
		SteadyShadowerCur: curve(func(t float64) float64 {
			return freshness.CurveShadowCrawler(lambda, cycle, t)
		}),
		SteadyShadowCurve: curve(func(t float64) float64 {
			return freshness.CurveShadowCurrent(lambda, cycle, t)
		}),
		BatchShadowerCurve: curve(func(t float64) float64 {
			if t >= crawl {
				return 0
			}
			return freshness.CurveShadowCrawler(lambda, crawl, t)
		}),
		BatchShadowCurve: curve(func(t float64) float64 {
			if t >= crawl {
				return freshness.CurveShadowCurrent(lambda, crawl, t-crawl)
			}
			return freshness.CurveShadowCurrent(lambda, crawl, t+cycle-crawl)
		}),
	}
	s.writeJSON(w, rep)
}

// Stats is the /v1/stats response.
type Stats struct {
	Pages         int         `json:"pages"`
	Generation    uint64      `json:"generation"`
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Requests      int64       `json:"requests"`
	PagesServed   int64       `json:"pagesServed"`
	NotModified   int64       `json:"notModified"`
	Estimates     bool        `json:"estimates"`
	Cache         *CacheStats `json:"cache,omitempty"`
}

// stats serves GET /v1/stats.
func (s *Server) stats(w http.ResponseWriter) {
	reader, gen := s.src.View()
	st := Stats{
		Pages:         reader.Len(),
		Generation:    gen,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.m.requests.Value(),
		PagesServed:   s.m.pagesServed.Value(),
		NotModified:   s.m.notModified.Value(),
		Estimates:     s.est != nil,
	}
	if s.cache != nil {
		cs := s.cache.stats()
		st.Cache = &cs
	}
	s.writeJSON(w, st)
}
