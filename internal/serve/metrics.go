package serve

import (
	"net/http"

	"webevolve/internal/obs"
)

// serveMetrics is one Server's view of the serving-plane metric
// families. Servers built with a nil Config.Metrics share the
// process-wide registry (obs.Default) — the daemon case, where
// /v1/stats and /metrics must agree; tests pass a private registry per
// server so counters stay isolated.
type serveMetrics struct {
	requests    *obs.Counter
	pagesServed *obs.Counter
	notModified *obs.Counter
	responses   *obs.CounterVec // by status code
	seconds     *obs.Histogram

	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	cacheEvictions     *obs.Counter
	cacheInvalidations *obs.Counter
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{
		requests: reg.Counter("webevolve_serve_requests_total",
			"HTTP requests received"),
		pagesServed: reg.Counter("webevolve_serve_pages_served_total",
			"page bodies or metadata served with a 200"),
		notModified: reg.Counter("webevolve_serve_not_modified_total",
			"conditional requests answered 304"),
		responses: reg.CounterVec("webevolve_serve_responses_total",
			"responses by HTTP status code", "status"),
		seconds: reg.Histogram("webevolve_serve_request_seconds",
			"request handling wall time", obs.LatencyBuckets),

		cacheHits: reg.Counter("webevolve_serve_cache_hits_total",
			"hot-set cache hits"),
		cacheMisses: reg.Counter("webevolve_serve_cache_misses_total",
			"hot-set cache misses"),
		cacheEvictions: reg.Counter("webevolve_serve_cache_evictions_total",
			"hot-set cache entries evicted at the bounds"),
		cacheInvalidations: reg.Counter("webevolve_serve_cache_invalidations_total",
			"whole-cache flushes on a generation change (shadow swap)"),
	}
}

// statusWriter records the response status so ServeHTTP can count
// responses by code after the handler runs. An implicit 200 (first
// Write without WriteHeader) is resolved by ServeHTTP.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}
