package pagerank

import (
	"math"
	"testing"

	"webevolve/internal/webgraph"
)

func TestTwoNodeClosedForm(t *testing.T) {
	// a <-> b with damping d: symmetric, so PR(a) = PR(b); the fixed
	// point of v = d + (1-d)*v is v = 1 for any d.
	g := webgraph.New()
	g.AddLink("a", "b")
	g.AddLink("b", "a")
	ranks, res, err := Pages(g.Snapshot(), Options{Damping: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(ranks["a"]-1) > 1e-6 || math.Abs(ranks["b"]-1) > 1e-6 {
		t.Fatalf("ranks %v, want 1", ranks)
	}
}

func TestPaperFormulaFixedPoint(t *testing.T) {
	// Star graph: hub pointed to by n leaves, each leaf with out-degree 1.
	// Leaves get PR = d (nothing points at them); hub gets
	// d + (1-d)*n*d. Verify against the iterative solve.
	g := webgraph.New()
	leaves := []string{"l1", "l2", "l3", "l4"}
	for _, l := range leaves {
		g.AddLink(l, "hub")
	}
	const d = 0.9
	ranks, _, err := Pages(g.Snapshot(), Options{Damping: d})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves {
		if math.Abs(ranks[l]-d) > 1e-6 {
			t.Fatalf("leaf rank %v, want %v", ranks[l], d)
		}
	}
	wantHub := d + (1-d)*4*d
	if math.Abs(ranks["hub"]-wantHub) > 1e-6 {
		t.Fatalf("hub rank %v, want %v", ranks["hub"], wantHub)
	}
}

func TestMorePopularRanksHigher(t *testing.T) {
	g := webgraph.New()
	// "popular" has 3 in-links, "niche" has 1.
	g.AddLink("x", "popular")
	g.AddLink("y", "popular")
	g.AddLink("z", "popular")
	g.AddLink("x", "niche")
	ranks, _, err := Pages(g.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ranks["popular"] <= ranks["niche"] {
		t.Fatalf("popular %v <= niche %v", ranks["popular"], ranks["niche"])
	}
}

func TestDanglingNodesHandled(t *testing.T) {
	g := webgraph.New()
	g.AddLink("a", "sink") // sink has no out-links
	ranks, res, err := Pages(g.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge with dangling node")
	}
	for n, r := range ranks {
		if math.IsNaN(r) || r <= 0 {
			t.Fatalf("node %s rank %v", n, r)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := webgraph.New()
	ranks, res, err := Pages(g.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 0 || !res.Converged {
		t.Fatalf("empty graph: ranks=%v res=%+v", ranks, res)
	}
}

func TestOptionsValidation(t *testing.T) {
	for _, o := range []Options{
		{Damping: -0.5},
		{Damping: 1.5},
		{Tolerance: -1},
		{MaxIter: -2},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestSitesRanking(t *testing.T) {
	g := webgraph.New()
	// Two sites pointing at one popular site.
	g.AddLink("http://a.com/1", "http://hub.com/")
	g.AddLink("http://b.edu/1", "http://hub.com/")
	g.AddLink("http://hub.com/1", "http://a.com/")
	sg := webgraph.ProjectSites(g)
	ranks, _, err := Sites(sg, Options{Damping: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if ranks["hub.com"] <= ranks["b.edu"] {
		t.Fatalf("hub %v <= b.edu %v", ranks["hub.com"], ranks["b.edu"])
	}
}

func TestTopK(t *testing.T) {
	scores := map[string]float64{"a": 1, "b": 3, "c": 2, "d": 3}
	top := TopK(scores, 3)
	if len(top) != 3 {
		t.Fatalf("len %d", len(top))
	}
	// Ties broken by ID: b before d.
	if top[0].ID != "b" || top[1].ID != "d" || top[2].ID != "c" {
		t.Fatalf("order %v", top)
	}
	if all := TopK(scores, 10); len(all) != 4 {
		t.Fatalf("overlong k yields %d", len(all))
	}
}

func TestEstimateNewPage(t *testing.T) {
	// One in-link of rank 2.0 with out-degree 4:
	// d + (1-d)*2/4 with d = 0.9 -> 0.95.
	got, err := EstimateNewPage(0.9, []float64{2}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("estimate %v", got)
	}
	if _, err := EstimateNewPage(0, nil, nil); err == nil {
		t.Fatal("bad damping accepted")
	}
	if _, err := EstimateNewPage(0.9, []float64{1}, []int{0}); err == nil {
		t.Fatal("zero out-degree accepted")
	}
	if _, err := EstimateNewPage(0.9, []float64{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEstimateMatchesSolvedRank(t *testing.T) {
	// The footnote-2 estimate for a node must equal the solver's value
	// for a node with no out-links, given converged in-link ranks.
	g := webgraph.New()
	g.AddLink("a", "b")
	g.AddLink("a", "new")
	g.AddLink("b", "a")
	ranks, _, err := Pages(g.Snapshot(), Options{Damping: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateNewPage(0.9, []float64{ranks["a"]}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-ranks["new"]) > 1e-6 {
		t.Fatalf("estimate %v, solver %v", est, ranks["new"])
	}
}

func TestConvergenceIterationsReported(t *testing.T) {
	g := webgraph.New()
	g.AddLink("a", "b")
	g.AddLink("a", "c")
	g.AddLink("b", "c")
	g.AddLink("c", "a")
	_, res, err := Pages(g.Snapshot(), Options{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("iterations %d", res.Iterations)
	}
}

func TestMaxIterStopsUnconverged(t *testing.T) {
	g := webgraph.New()
	g.AddLink("a", "b")
	g.AddLink("b", "a")
	g.AddLink("b", "c")
	g.AddLink("c", "a")
	_, res, err := Pages(g.Snapshot(), Options{MaxIter: 1, Tolerance: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("one iteration reported as converged")
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations %d", res.Iterations)
	}
}
