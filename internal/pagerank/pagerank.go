// Package pagerank implements the PageRank metric exactly as the paper
// defines it (Section 2.2):
//
//	PR(P) = d + (1-d) * [ PR(P1)/c1 + ... + PR(Pn)/cn ]
//
// where P1..Pn are the pages pointing to P, ci is the out-degree of Pi and
// d is a damping factor (0.9 in the paper's experiment). Iteration starts
// from all values equal to 1 and proceeds until convergence.
//
// Note the paper's formulation is the "non-normalized" PageRank of
// [PB98]: values converge to an average of roughly 1 rather than summing
// to 1. Ranking order is identical to the normalized variant; intuitively
// PR(P)/N is the random-surfer probability.
//
// The same solver ranks pages (for the RankingModule's refinement
// decision, Section 5.3) and sites (for experiment site selection, where
// the graph is the site hypergraph).
package pagerank

import (
	"errors"
	"math"
	"sort"

	"webevolve/internal/webgraph"
)

// Options configure the iterative solver.
type Options struct {
	// Damping is the paper's d; it defaults to 0.9 (the experiment's
	// value) when zero.
	Damping float64
	// Tolerance is the max absolute per-node delta at which iteration
	// stops; defaults to 1e-9.
	Tolerance float64
	// MaxIter bounds the iteration count; defaults to 200.
	MaxIter int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.9
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.Damping <= 0 || o.Damping >= 1 {
		return errors.New("pagerank: damping must be in (0,1)")
	}
	if o.Tolerance <= 0 {
		return errors.New("pagerank: tolerance must be positive")
	}
	if o.MaxIter <= 0 {
		return errors.New("pagerank: max iterations must be positive")
	}
	return nil
}

// Result carries the converged scores.
type Result struct {
	// Score maps node index (into the input snapshot's IDs) to PageRank.
	Score []float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// Converged reports whether Tolerance was reached within MaxIter.
	Converged bool
}

// solve runs the paper's iteration on a generic adjacency structure.
func solve(out [][]int32, n int, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()
	if n == 0 {
		return Result{Score: nil, Converged: true}, nil
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 // the paper starts all PR values at 1
	}
	res := Result{}
	for it := 0; it < opt.MaxIter; it++ {
		// Contribution push: next[to] accumulates cur[from]/outdeg(from).
		for i := range next {
			next[i] = 0
		}
		for from, tos := range out {
			if len(tos) == 0 {
				continue // dangling pages contribute only the damping term
			}
			share := cur[from] / float64(len(tos))
			for _, to := range tos {
				next[to] += share
			}
		}
		var maxDelta float64
		for i := range next {
			v := opt.Damping + (1-opt.Damping)*next[i]
			if d := math.Abs(v - cur[i]); d > maxDelta {
				maxDelta = d
			}
			next[i] = v
		}
		cur, next = next, cur
		res.Iterations = it + 1
		if maxDelta < opt.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Score = cur
	return res, nil
}

// Pages computes PageRank over a page-graph snapshot. The returned map
// keys are page IDs.
func Pages(snap *webgraph.Snapshot, opt Options) (map[string]float64, Result, error) {
	res, err := solve(snap.Out, len(snap.IDs), opt)
	if err != nil {
		return nil, Result{}, err
	}
	m := make(map[string]float64, len(snap.IDs))
	for i, id := range snap.IDs {
		m[id] = res.Score[i]
	}
	return m, res, nil
}

// Sites computes the site-level PageRank of Section 2.2 over the
// hypergraph projection. The returned map keys are site hosts.
func Sites(sg *webgraph.SiteGraph, opt Options) (map[string]float64, Result, error) {
	res, err := solve(sg.Out, len(sg.Sites), opt)
	if err != nil {
		return nil, Result{}, err
	}
	m := make(map[string]float64, len(sg.Sites))
	for i, s := range sg.Sites {
		m[s] = res.Score[i]
	}
	return m, res, nil
}

// Ranked is a node with its score.
type Ranked struct {
	ID    string
	Score float64
}

// TopK returns the k highest-scored entries of scores, ties broken by ID
// for determinism. If k exceeds the map size, all entries are returned.
func TopK(scores map[string]float64, k int) []Ranked {
	all := make([]Ranked, 0, len(scores))
	for id, s := range scores {
		all = append(all, Ranked{ID: id, Score: s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// EstimateNewPage approximates the PageRank of a page that is not yet in
// the collection, from the ranks and out-degrees of collection pages that
// link to it (footnote 2 of the paper): the damping term plus the
// weighted contributions of known in-links.
func EstimateNewPage(damping float64, inlinkRanks []float64, inlinkOutDegrees []int) (float64, error) {
	if damping <= 0 || damping >= 1 {
		return 0, errors.New("pagerank: damping must be in (0,1)")
	}
	if len(inlinkRanks) != len(inlinkOutDegrees) {
		return 0, errors.New("pagerank: rank/degree length mismatch")
	}
	sum := 0.0
	for i, r := range inlinkRanks {
		c := inlinkOutDegrees[i]
		if c <= 0 {
			return 0, errors.New("pagerank: in-link with non-positive out-degree")
		}
		sum += r / float64(c)
	}
	return damping + (1-damping)*sum, nil
}
