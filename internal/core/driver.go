package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"webevolve/internal/changefreq"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
)

// UpdatePipeline is the wall-clock, concurrent form of the UpdateModule +
// CrawlModule pair of Figure 12: a dispatcher claims due shards from the
// sharded frontier and hands their head URLs to a pool of CrawlModule
// workers ("multiple CrawlModules may run in parallel, depending on how
// fast we need to crawl pages", Section 5.3). A claimed shard is owned by
// one worker until it releases it, so no two workers ever fetch from the
// same site concurrently, and per-shard politeness deadlines are honored
// by the frontier itself. Store writes are batched per worker. The
// ranking decision is deliberately *absent* here — the paper's
// architectural point is that the UpdateModule must sustain high page
// throughput (their example: 100M pages/month needs ~40 pages/second)
// precisely because it never waits for importance recomputation.
// BenchmarkUpdateModuleThroughput measures this pipeline.
type UpdatePipeline struct {
	Fetcher fetch.Fetcher
	Coll    frontier.ShardSet
	Store   store.Collection
	Policy  scheduler.Policy
	// Workers is the number of parallel CrawlModules (default 4).
	Workers int
	// FlushEvery batches store writes: each worker accumulates this many
	// records before a PutBatch (default 16). Buffers always flush
	// before Run returns.
	FlushEvery int
	// MinIntervalDays / MaxIntervalDays clamp revisit intervals.
	MinIntervalDays, MaxIntervalDays float64

	mu      sync.Mutex
	est     map[string]*changefreq.History
	lastSum map[string]uint64

	processed atomic.Int64
	changed   atomic.Int64
}

// Run processes up to n due URLs (in virtual-day order) through the
// worker pool, then returns. now is the virtual fetch day stamped on all
// requests; the pipeline itself runs at wall speed.
func (u *UpdatePipeline) Run(now float64, n int) error {
	if u.Fetcher == nil || u.Coll == nil || u.Store == nil || u.Policy == nil {
		return errors.New("core: pipeline missing a component")
	}
	workers := u.Workers
	if workers <= 0 {
		workers = 4
	}
	flushEvery := u.FlushEvery
	if flushEvery <= 0 {
		flushEvery = 16
	}
	if u.est == nil {
		u.est = make(map[string]*changefreq.History)
		u.lastSum = make(map[string]uint64)
	}

	type job struct {
		url   string
		shard int
	}
	jobs := make(chan job, workers)
	var (
		inflight atomic.Int64
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]store.PageRecord, 0, flushEvery)
			flush := func() {
				if len(buf) == 0 {
					return
				}
				if err := u.Store.PutBatch(buf); err != nil {
					fail(err)
				}
				buf = buf[:0]
			}
			for j := range jobs {
				if !stop.Load() {
					rec, keep, err := u.processOne(j.url, now)
					switch {
					case err != nil:
						fail(err)
					case keep:
						buf = append(buf, rec)
						if len(buf) >= flushEvery {
							flush()
						}
					}
				}
				// Release before decrementing: once inflight hits zero the
				// dispatcher trusts the frontier to be fully visible.
				u.Coll.Release(j.shard, now)
				inflight.Add(-1)
			}
			flush()
		}()
	}

	dispatched := 0
	idleScans := 0
	for dispatched < n && !stop.Load() {
		e, sid, ok := u.Coll.ClaimDue(now)
		if !ok {
			if inflight.Load() == 0 {
				// All workers idle and their reschedules visible; one
				// last claim settles whether the frontier is drained.
				if e, sid, ok = u.Coll.ClaimDue(now); !ok {
					break
				}
			} else {
				// Workers are mid-fetch and hold the due shards. Yield
				// first (fetches against a simulator return in
				// microseconds); against slow real fetches, back off to
				// brief sleeps instead of spinning a core on shard
				// scans.
				if idleScans++; idleScans < 64 {
					runtime.Gosched()
				} else {
					time.Sleep(500 * time.Microsecond)
				}
				continue
			}
		}
		idleScans = 0
		inflight.Add(1)
		jobs <- job{url: e.URL, shard: sid}
		dispatched++
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return shardSetErr(u.Coll)
}

// processOne is one CrawlModule unit of work: fetch, checksum-compare,
// estimator update, reschedule. The store write is returned to the
// caller for batching; keep is false when there is nothing to store
// (vanished page).
func (u *UpdatePipeline) processOne(url string, now float64) (rec store.PageRecord, keep bool, err error) {
	res, err := u.Fetcher.Fetch(url, now)
	if err != nil {
		return store.PageRecord{}, false, fmt.Errorf("core: pipeline fetch %s: %w", url, err)
	}
	u.processed.Add(1)
	if res.NotFound {
		if err := u.Store.Delete(url); err != nil {
			return store.PageRecord{}, false, err
		}
		return store.PageRecord{}, false, nil
	}

	u.mu.Lock()
	prev, seen := u.lastSum[url]
	changed := seen && prev != res.Checksum
	u.lastSum[url] = res.Checksum
	h, ok := u.est[url]
	if !ok {
		h = &changefreq.History{}
		u.est[url] = h
	}
	err = h.Record(changefreq.Observation{Time: now, Changed: changed})
	var rate float64
	if est, eerr := changefreq.EP(h); eerr == nil {
		rate = est.Rate
	}
	u.mu.Unlock()
	if err != nil {
		return store.PageRecord{}, false, err
	}
	if changed {
		u.changed.Add(1)
	}

	interval := scheduler.Clamp(u.Policy.Interval(url, rate, 0),
		u.MinIntervalDays, u.MaxIntervalDays)
	u.Coll.Push(url, now+interval, 0)
	return store.PageRecord{
		URL:       url,
		Checksum:  res.Checksum,
		FetchedAt: now,
		Version:   res.Version,
		Links:     res.Links,
	}, true, nil
}

// Processed returns how many pages the pipeline has handled.
func (u *UpdatePipeline) Processed() int64 { return u.processed.Load() }

// Changed returns how many changes were detected.
func (u *UpdatePipeline) Changed() int64 { return u.changed.Load() }
