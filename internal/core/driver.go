package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"webevolve/internal/changefreq"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
)

// UpdatePipeline is the wall-clock, concurrent form of the UpdateModule +
// CrawlModule pair of Figure 12: one scheduler goroutine pops due URLs
// from CollUrls and hands them to a pool of CrawlModule workers ("multiple
// CrawlModules may run in parallel, depending on how fast we need to
// crawl pages", Section 5.3). The ranking decision is deliberately
// *absent* here — the paper's architectural point is that the
// UpdateModule must sustain high page throughput (their example: 100M
// pages/month needs ~40 pages/second) precisely because it never waits
// for importance recomputation. BenchmarkUpdateModuleThroughput measures
// this pipeline.
type UpdatePipeline struct {
	Fetcher fetch.Fetcher
	Coll    *frontier.CollUrls
	Store   store.Collection
	Policy  scheduler.Policy
	// Workers is the number of parallel CrawlModules (default 4).
	Workers int
	// MinIntervalDays / MaxIntervalDays clamp revisit intervals.
	MinIntervalDays, MaxIntervalDays float64

	mu      sync.Mutex
	est     map[string]*changefreq.History
	lastSum map[string]uint64

	processed atomic.Int64
	changed   atomic.Int64
}

// Run processes up to n due URLs (in virtual-day order) through the
// worker pool, then returns. now is the virtual fetch day stamped on all
// requests; the pipeline itself runs at wall speed.
func (u *UpdatePipeline) Run(now float64, n int) error {
	if u.Fetcher == nil || u.Coll == nil || u.Store == nil || u.Policy == nil {
		return errors.New("core: pipeline missing a component")
	}
	workers := u.Workers
	if workers <= 0 {
		workers = 4
	}
	if u.est == nil {
		u.est = make(map[string]*changefreq.History)
		u.lastSum = make(map[string]uint64)
	}
	type job struct{ url string }
	jobs := make(chan job, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := u.processOne(j.url, now); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	dispatched := 0
	for dispatched < n {
		e, ok := u.Coll.PopDue(now)
		if !ok {
			break
		}
		jobs <- job{url: e.URL}
		dispatched++
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// processOne is one CrawlModule unit of work: fetch, checksum-compare,
// estimator update, store, reschedule.
func (u *UpdatePipeline) processOne(url string, now float64) error {
	res, err := u.Fetcher.Fetch(url, now)
	if err != nil {
		return fmt.Errorf("core: pipeline fetch %s: %w", url, err)
	}
	u.processed.Add(1)
	if res.NotFound {
		_ = u.Store.Delete(url)
		return nil
	}

	u.mu.Lock()
	prev, seen := u.lastSum[url]
	changed := seen && prev != res.Checksum
	u.lastSum[url] = res.Checksum
	h, ok := u.est[url]
	if !ok {
		h = &changefreq.History{}
		u.est[url] = h
	}
	err = h.Record(changefreq.Observation{Time: now, Changed: changed})
	var rate float64
	if est, eerr := changefreq.EP(h); eerr == nil {
		rate = est.Rate
	}
	u.mu.Unlock()
	if err != nil {
		return err
	}
	if changed {
		u.changed.Add(1)
	}

	if err := u.Store.Put(store.PageRecord{
		URL:       url,
		Checksum:  res.Checksum,
		FetchedAt: now,
		Version:   res.Version,
		Links:     res.Links,
	}); err != nil {
		return err
	}
	interval := scheduler.Clamp(u.Policy.Interval(url, rate, 0),
		u.MinIntervalDays, u.MaxIntervalDays)
	u.Coll.Push(url, now+interval, 0)
	return nil
}

// Processed returns how many pages the pipeline has handled.
func (u *UpdatePipeline) Processed() int64 { return u.processed.Load() }

// Changed returns how many changes were detected.
func (u *UpdatePipeline) Changed() int64 { return u.changed.Load() }
