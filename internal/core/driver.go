package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"webevolve/internal/changefreq"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
)

// UpdatePipeline is the wall-clock, concurrent form of the UpdateModule +
// CrawlModule pair of Figure 12, built on the unified dispatcher
// (dispatch.go): the claim loop claims due shards from the sharded
// frontier and hands their head URLs to the worker pool ("multiple
// CrawlModules may run in parallel, depending on how fast we need to
// crawl pages", Section 5.3). A claimed shard is owned by one worker
// until it releases it, so no two workers ever fetch from the same site
// concurrently, and per-shard politeness deadlines are honored by the
// frontier itself. Store writes are batched per worker. The ranking
// decision is deliberately *absent* here — the paper's architectural
// point is that the UpdateModule must sustain high page throughput
// (their example: 100M pages/month needs ~40 pages/second) precisely
// because it never waits for importance recomputation.
// BenchmarkUpdateModuleThroughput measures this pipeline.
type UpdatePipeline struct {
	Fetcher fetch.Fetcher
	Coll    frontier.ShardSet
	Store   store.Collection
	Policy  scheduler.Policy
	// Workers is the number of parallel CrawlModules (default 4).
	Workers int
	// FlushEvery batches store writes: each worker accumulates this many
	// records before a PutBatch (default 16). Buffers always flush
	// before Run returns.
	FlushEvery int
	// MinIntervalDays / MaxIntervalDays clamp revisit intervals.
	MinIntervalDays, MaxIntervalDays float64

	mu      sync.Mutex
	est     map[string]*changefreq.History
	lastSum map[string]uint64

	processed atomic.Int64
	changed   atomic.Int64
}

// Run processes up to n due URLs (in virtual-day order) through the
// worker pool, then returns. now is the virtual fetch day stamped on all
// requests; the pipeline itself runs at wall speed.
func (u *UpdatePipeline) Run(now float64, n int) error {
	if u.Fetcher == nil || u.Coll == nil || u.Store == nil || u.Policy == nil {
		return errors.New("core: pipeline missing a component")
	}
	workers := u.Workers
	if workers <= 0 {
		workers = 4
	}
	flushEvery := u.FlushEvery
	if flushEvery <= 0 {
		flushEvery = 16
	}
	if u.est == nil {
		u.est = make(map[string]*changefreq.History)
		u.lastSum = make(map[string]uint64)
	}

	// Per-worker store write buffers, flushed when full and again by
	// the pool's worker-exit hook.
	bufs := make([][]store.PageRecord, workers)
	for w := range bufs {
		bufs[w] = make([]store.PageRecord, 0, flushEvery)
	}
	flush := func(w int) error {
		if len(bufs[w]) == 0 {
			return nil
		}
		if err := u.Store.PutBatch(bufs[w]); err != nil {
			return err
		}
		bufs[w] = bufs[w][:0]
		return nil
	}
	pool := newDispatchPool(workers,
		func(w int, j *crawlJob) error {
			rec, keep, err := u.processOne(j.url, now)
			if err != nil {
				return err
			}
			if keep {
				bufs[w] = append(bufs[w], rec)
				if len(bufs[w]) >= flushEvery {
					return flush(w)
				}
			}
			return nil
		},
		flush,
	)

	err := pool.dispatchClaims(claimSpec{
		coll:     u.Coll,
		now:      func() float64 { return now },
		maxQueue: int64(2 * workers), // claim just ahead of the workers
		release:  func(shard int) { u.Coll.Release(shard, now) },
		gate: func(dispatched, _ int64) gateDecision {
			if dispatched >= int64(n) {
				return gateDone
			}
			return gateDispatch
		},
		idle: func(inflight int64, scans int) bool {
			if inflight == 0 {
				return false // drained: the loop already settled it
			}
			// Workers are mid-fetch and hold the due shards. Yield
			// first (fetches against a simulator return in
			// microseconds); against slow real fetches, back off to
			// brief sleeps instead of spinning a core on shard scans.
			spinThenSleep(scans, 64, 500*time.Microsecond)
			return true
		},
	})
	if cerr := pool.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return shardSetErr(u.Coll)
}

// processOne is one CrawlModule unit of work: fetch, checksum-compare,
// estimator update, reschedule. The store write is returned to the
// caller for batching; keep is false when there is nothing to store
// (vanished page).
func (u *UpdatePipeline) processOne(url string, now float64) (rec store.PageRecord, keep bool, err error) {
	res, err := u.Fetcher.Fetch(url, now)
	if err != nil {
		return store.PageRecord{}, false, fmt.Errorf("core: pipeline fetch %s: %w", url, err)
	}
	u.processed.Add(1)
	if res.NotFound {
		if err := u.Store.Delete(url); err != nil {
			return store.PageRecord{}, false, err
		}
		return store.PageRecord{}, false, nil
	}

	u.mu.Lock()
	prev, seen := u.lastSum[url]
	changed := seen && prev != res.Checksum
	u.lastSum[url] = res.Checksum
	h, ok := u.est[url]
	if !ok {
		h = &changefreq.History{}
		u.est[url] = h
	}
	err = h.Record(changefreq.Observation{Time: now, Changed: changed})
	var rate float64
	if est, eerr := changefreq.EP(h); eerr == nil {
		rate = est.Rate
	}
	u.mu.Unlock()
	if err != nil {
		return store.PageRecord{}, false, err
	}
	if changed {
		u.changed.Add(1)
	}

	interval := scheduler.Clamp(u.Policy.Interval(url, rate, 0),
		u.MinIntervalDays, u.MaxIntervalDays)
	u.Coll.Push(url, now+interval, 0)
	return store.PageRecord{
		URL:       url,
		Checksum:  res.Checksum,
		FetchedAt: now,
		Version:   res.Version,
		Links:     res.Links,
	}, true, nil
}

// Processed returns how many pages the pipeline has handled.
func (u *UpdatePipeline) Processed() int64 { return u.processed.Load() }

// Changed returns how many changes were detected.
func (u *UpdatePipeline) Changed() int64 { return u.changed.Load() }
