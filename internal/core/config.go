// Package core implements the paper's primary contribution: the
// incremental crawler architecture of Section 5 (Figures 11 and 12).
//
// Three modules cooperate around three data structures:
//
//   - The UpdateModule keeps the Collection fresh: it pops the head of
//     CollUrls, asks a CrawlModule to fetch it, detects changes by
//     checksum comparison, feeds the page's change history to a
//     change-frequency estimator (EP or EB, package changefreq), and
//     pushes the URL back with a due-time chosen by the revisit policy
//     (package scheduler).
//
//   - The RankingModule improves the Collection's quality: it
//     periodically recomputes importance (PageRank) over the link
//     structure captured so far, admits newly discovered important pages
//     (placing them at the front of CollUrls so they are crawled
//     immediately), and discards the least important pages to make room —
//     the refinement decision.
//
//   - CrawlModules fetch pages and forward extracted links to AllUrls.
//     Multiple CrawlModules can run in parallel.
//
// The same engine also runs in batch mode and/or with a shadowed
// collection, so the four design points of Section 4 (and the periodic
// crawler baseline) are all configurations of one implementation.
package core

import (
	"errors"
	"fmt"

	"webevolve/internal/changefreq"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
)

// Mode selects steady vs batch crawling (Section 4, question 1).
type Mode int

const (
	// Steady runs continuously, spreading revisits over the whole cycle.
	Steady Mode = iota
	// Batch revisits the whole collection in a burst at the start of
	// each cycle, then idles until the next cycle.
	Batch
)

// String names the mode.
func (m Mode) String() string {
	if m == Batch {
		return "batch"
	}
	return "steady"
}

// UpdateStyle selects in-place updates vs shadowing (question 2).
type UpdateStyle int

const (
	// InPlace publishes each crawled page immediately.
	InPlace UpdateStyle = iota
	// Shadow collects pages into a shadow collection that replaces the
	// current collection at the end of each cycle's crawl.
	Shadow
)

// String names the update style.
func (u UpdateStyle) String() string {
	if u == Shadow {
		return "shadow"
	}
	return "in-place"
}

// FreqPolicy selects the revisit-frequency policy (question 3).
type FreqPolicy int

const (
	// FixedFreq revisits all pages once per cycle.
	FixedFreq FreqPolicy = iota
	// VariableFreq adjusts per-page revisit frequency using estimated
	// change rates and the Figure 9 optimal allocation.
	VariableFreq
	// ProportionalFreq is the naive policy: frequency proportional to
	// change rate (ablation baseline).
	ProportionalFreq
)

// String names the policy.
func (f FreqPolicy) String() string {
	switch f {
	case VariableFreq:
		return "variable"
	case ProportionalFreq:
		return "proportional"
	default:
		return "fixed"
	}
}

// EstimatorKind selects the change-frequency estimator (Section 5.3).
type EstimatorKind int

const (
	// EstimatorEP is the Poisson estimator with confidence interval.
	EstimatorEP EstimatorKind = iota
	// EstimatorEB is the Bayesian frequency-class estimator.
	EstimatorEB
	// EstimatorNaive is detected-changes/span (ablation baseline).
	EstimatorNaive
)

// String names the estimator.
func (e EstimatorKind) String() string {
	switch e {
	case EstimatorEB:
		return "EB"
	case EstimatorNaive:
		return "naive"
	default:
		return "EP"
	}
}

// Config parameterizes a crawler.
type Config struct {
	// Seeds are the starting URLs (typically site roots).
	Seeds []string
	// CollectionSize is the target number of pages maintained (the
	// paper's fixed-number assumption, Section 5.2).
	CollectionSize int
	// PagesPerDay is the average crawl bandwidth in pages/day. A steady
	// crawler fetches continuously at this rate; a batch crawler fetches
	// the same cycle total compressed into the batch window (higher peak
	// speed, as the paper discusses).
	PagesPerDay float64
	// CycleDays is the revisit cycle (the paper's examples use a month).
	CycleDays float64
	// BatchDays is the batch crawl window within each cycle (the paper's
	// examples use a week). Ignored in steady mode.
	BatchDays float64

	Mode      Mode
	Update    UpdateStyle
	Freq      FreqPolicy
	Estimator EstimatorKind
	// RankEveryDays is the ranking/refinement cadence. The paper argues
	// this must be decoupled from the update decision; it defaults to
	// the cycle length.
	RankEveryDays float64
	// MinIntervalDays / MaxIntervalDays clamp variable revisit intervals.
	MinIntervalDays float64
	MaxIntervalDays float64
	// HistoryWindowDays trims change histories (the paper keeps "say,
	// last 6 months"). Zero keeps everything.
	HistoryWindowDays float64
	// ImportanceWeight > 0 boosts revisit frequency of important pages
	// (Section 5.3's optional policy).
	ImportanceWeight float64
	// EvictionHysteresis is the relative margin a candidate's importance
	// must exceed the worst collection page's before a replacement is
	// scheduled; prevents thrashing on near-ties.
	EvictionHysteresis float64
	// MaxCandidates bounds how many replacement candidates one ranking
	// pass considers.
	MaxCandidates int
	// Workers is the number of concurrent CrawlModule workers the
	// engine dispatches fetch batches to (Section 5.3: "multiple
	// CrawlModules may run in parallel, depending on how fast we need
	// to crawl pages"). Jobs are grouped by frontier shard before
	// dispatch, so same-site fetches stay ordered; on the deterministic
	// simulator every worker count produces identical results. Default
	// 1.
	Workers int
	// Shards is the number of per-site frontier shards the revisit
	// queue is partitioned into (default 16). All pages of one host
	// hash to the same shard. Ignored when the frontier is remote
	// (ShardServers/Frontier): shard servers configure their own counts.
	Shards int
	// ShardServers lists frontier shard-server endpoints (host:port,
	// the cmd/shardd daemon). When non-empty, the revisit queue lives on
	// those servers behind cluster.RemoteShards instead of in-process,
	// and ShardPolitenessDays is applied cluster-wide at connect. Every
	// crawler of one cluster must list the servers in the same order
	// (the order is the URL routing).
	ShardServers []string
	// Registry is a cluster registry endpoint (host:port or http:// URL,
	// the cmd/registryd daemon). When non-empty, the shard and store
	// servers are discovered from the registry instead of listed
	// statically, and the crawler follows membership changes live:
	// at quiescent round boundaries it polls the registry and, when a
	// shard joins or leaves, drives the partition migration itself
	// before continuing (cluster.RemoteShards.Rebalance). Overrides
	// ShardServers; StoreServer still wins for the store side.
	Registry string
	// Frontier injects a prebuilt shard set — e.g. a cluster.RemoteShards
	// over an in-process loopback transport in tests. For the frontier
	// side it overrides Registry, ShardServers, and Shards; the caller
	// owns its lifecycle. Registry-based *store* discovery still applies.
	Frontier frontier.ShardSet
	// StoreServer is a repository store-server endpoint (host:port, the
	// cmd/storerd daemon). When non-empty, New builds the crawler's
	// collection pair on that server behind cluster.RemoteStore instead
	// of in memory: each shadow generation is a named server-side
	// collection, dropped once retired. One crawler owns a store server
	// at a time (concurrent writers would interleave generations).
	// Ignored by NewWithStore, whose caller supplies the collections.
	StoreServer string
	// DispatchBatch caps how many due URLs one dispatch round hands to
	// the worker pool; it also sizes the batched store writes and
	// change-frequency updates. Default 4*Workers (at least 8).
	DispatchBatch int
	// ShardPolitenessDays spaces consecutive fetches from one shard by
	// this many virtual days. Zero (the default) disables the gap:
	// per-page revisit intervals already space same-site revisits in
	// simulation; wall-clock crawls layer HTTP politeness on top.
	ShardPolitenessDays float64
	// BatchSync disables the engine's fetch/apply pipelining: each
	// dispatch round's results are fully applied before the next round
	// is popped (the pre-pipeline batch-synchronous behavior). Results
	// are bit-identical either way; the knob exists so benchmarks can
	// measure the overlap (BenchmarkEngineBatchSync vs
	// BenchmarkEngine).
	BatchSync bool
	// StoreContent keeps page bodies in the collection (off for large
	// simulations).
	StoreContent bool
	// SiteLevelStats pools change observations per site (Section 5.3)
	// and uses the pooled rate for pages with short histories.
	SiteLevelStats bool
	// SiteStatsMinSamples is the per-page history length at which the
	// page's own estimate takes over from the site aggregate
	// (default 5).
	SiteStatsMinSamples int
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.CollectionSize == 0 {
		c.CollectionSize = 1000
	}
	if c.PagesPerDay == 0 {
		c.PagesPerDay = float64(c.CollectionSize) // one full pass per day
	}
	if c.CycleDays == 0 {
		c.CycleDays = 30
	}
	if c.BatchDays == 0 {
		c.BatchDays = 7
	}
	if c.RankEveryDays == 0 {
		c.RankEveryDays = c.CycleDays
	}
	if c.MinIntervalDays == 0 {
		c.MinIntervalDays = 0.25
	}
	if c.MaxIntervalDays == 0 {
		c.MaxIntervalDays = 8 * c.CycleDays
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 4 * c.CollectionSize
	}
	if c.SiteStatsMinSamples == 0 {
		c.SiteStatsMinSamples = 5
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.DispatchBatch == 0 {
		c.DispatchBatch = 4 * c.Workers
		if c.DispatchBatch < 8 {
			c.DispatchBatch = 8
		}
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if len(c.Seeds) == 0 {
		return errors.New("core: no seed URLs")
	}
	if c.CollectionSize < 1 {
		return errors.New("core: collection size must be >= 1")
	}
	if c.PagesPerDay <= 0 {
		return errors.New("core: bandwidth must be positive")
	}
	if c.CycleDays <= 0 {
		return errors.New("core: cycle must be positive")
	}
	if c.Mode == Batch && (c.BatchDays <= 0 || c.BatchDays > c.CycleDays) {
		return fmt.Errorf("core: batch window %v must be in (0, cycle]", c.BatchDays)
	}
	if c.MinIntervalDays <= 0 || c.MaxIntervalDays < c.MinIntervalDays {
		return errors.New("core: bad interval clamps")
	}
	if c.EvictionHysteresis < 0 {
		return errors.New("core: negative hysteresis")
	}
	if c.Workers < 1 {
		return errors.New("core: workers must be >= 1")
	}
	if c.Shards < 1 {
		return errors.New("core: shards must be >= 1")
	}
	if c.DispatchBatch < 1 {
		return errors.New("core: dispatch batch must be >= 1")
	}
	if c.ShardPolitenessDays < 0 {
		return errors.New("core: negative shard politeness")
	}
	return nil
}

// policy builds the scheduler policy for the configuration.
func (c Config) policy() (scheduler.Policy, *scheduler.Optimal, error) {
	switch c.Freq {
	case FixedFreq:
		return scheduler.Fixed{Every: c.CycleDays}, nil, nil
	case ProportionalFreq:
		return scheduler.Proportional{
			K: 1, MinDays: c.MinIntervalDays, MaxDays: c.MaxIntervalDays,
		}, nil, nil
	case VariableFreq:
		opt, err := scheduler.NewOptimal(c.PagesPerDay, c.MinIntervalDays, c.MaxIntervalDays, c.CycleDays)
		if err != nil {
			return nil, nil, err
		}
		var p scheduler.Policy = opt
		if c.ImportanceWeight > 0 {
			p = scheduler.ImportanceBoosted{
				Base: p, Weight: c.ImportanceWeight,
				MinDays: c.MinIntervalDays, MaxDays: c.MaxIntervalDays,
			}
		}
		return p, opt, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown frequency policy %d", c.Freq)
	}
}

// estimator tracks one page's change history under the configured kind.
type estimator struct {
	kind  EstimatorKind
	hist  *changefreq.History
	bayes *changefreq.Bayes
}

func newEstimator(kind EstimatorKind) (*estimator, error) {
	e := &estimator{kind: kind, hist: &changefreq.History{}}
	if kind == EstimatorEB {
		b, err := changefreq.NewBayes(changefreq.DefaultClasses)
		if err != nil {
			return nil, err
		}
		e.bayes = b
	}
	return e, nil
}

// record adds an observation.
func (e *estimator) record(obs changefreq.Observation, trimWindow float64) error {
	if err := e.hist.Record(obs); err != nil {
		return err
	}
	if trimWindow > 0 {
		e.hist.Trim(trimWindow)
	}
	if e.bayes != nil {
		return e.bayes.Record(obs)
	}
	return nil
}

// rate returns the working change-rate estimate in changes/day, or 0
// when nothing is known yet.
func (e *estimator) rate() float64 {
	switch e.kind {
	case EstimatorEB:
		if e.bayes.Accesses() == 0 {
			return 0
		}
		return e.bayes.Rate()
	case EstimatorNaive:
		est, err := changefreq.Naive(e.hist)
		if err != nil {
			return 0
		}
		return est.Rate
	default:
		est, err := changefreq.EPIrregular(e.hist)
		if err != nil {
			return 0
		}
		return est.Rate
	}
}
