package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"webevolve/internal/frontier"
	"webevolve/internal/obs"
)

// This file is the one worker-pool dispatcher behind every concurrent
// crawl path in the repo. It replaces the three hand-rolled pools that
// used to live in Crawler.fetchBatch, UpdatePipeline.Run, and
// cmd/webcrawl's crawl loop with a single engine, parameterized over
// the per-URL work function, that runs in two modes:
//
//   - Round mode (startRound): the simulated engine's path. A dispatch
//     round is a set of job groups — all jobs of one site, in
//     virtual-day order — submitted together and completed as a unit.
//     Groups carry a site key, and the pool runs groups of one site
//     strictly in submission order (a per-site line), so two rounds
//     can be in flight at once without ever reordering or overlapping
//     one site's fetches. Groups are dispatched largest-first (LPT
//     scheduling), so a skewed round with one hot site starts its
//     long group immediately instead of letting it straggle behind
//     short ones. Rounds are what the engine pipelines: while round
//     N's results are applied, rounds N+1 and N+2 are already
//     fetching on the same workers (engine.go).
//
//   - Claim mode (dispatchClaims): the wall-clock path shared by
//     core.UpdatePipeline and cmd/webcrawl. The dispatcher claims due
//     shards from a frontier.ShardSet and feeds each claimed head to
//     the pool as a single-job group whose completion hook releases
//     the shard — so no two workers ever fetch from one site at once,
//     and per-shard politeness deadlines are honored by the frontier.
//
// Work functions receive their worker index so callers can keep
// per-worker state (e.g. store write buffers) without locking.

// dispatchGroup is one unit of pool scheduling: jobs that must run
// sequentially in order on a single worker (one site's fetches, or one
// claimed shard head).
type dispatchGroup struct {
	jobs []*crawlJob
	// site, when non-empty, serializes this group behind any earlier
	// unfinished group with the same key.
	site string
	// done, if non-nil, runs on the worker after the last job — even
	// when the pool is stopping — so claim releases never go missing.
	done func()
	// round, if non-nil, counts this group against a round's
	// completion (set by startRound; avoids a closure per group).
	round *roundHandle
}

// roundHandle tracks one submitted round's completion.
type roundHandle struct {
	left atomic.Int64
	done chan struct{}
}

// dispatchPool is a fixed set of worker goroutines draining groups of
// per-URL work. The first work-function error stops the pool: later
// jobs are skipped (their groups still complete, running their done
// hooks), and the error surfaces from wait/dispatchClaims/close.
type dispatchPool struct {
	fn func(worker int, j *crawlJob) error
	// workerExit, if non-nil, runs on each worker as it shuts down
	// (UpdatePipeline flushes its per-worker write buffer here).
	workerExit func(worker int) error

	mu    sync.Mutex
	cond  *sync.Cond
	ready []dispatchGroup // runnable now; FIFO from readyHead, compacted when drained
	// readyHead indexes the next runnable group; consuming by index
	// instead of reslicing lets the backing array be reused instead of
	// reallocated every few submissions.
	readyHead int
	lines     map[string][]dispatchGroup // per-site groups waiting behind a running one
	closed    bool

	wg       sync.WaitGroup
	stopFlag atomic.Bool
	errMu    sync.Mutex
	firstErr error
}

// newDispatchPool starts workers goroutines running fn.
func newDispatchPool(workers int, fn func(worker int, j *crawlJob) error, workerExit func(worker int) error) *dispatchPool {
	if workers < 1 {
		workers = 1
	}
	p := &dispatchPool{
		fn:         fn,
		workerExit: workerExit,
		lines:      make(map[string][]dispatchGroup),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// submit queues one group. Groups with a site key are held back while
// an earlier group of the same site is queued or running, preserving
// per-site job order across rounds. Never blocks.
func (p *dispatchPool) submit(g dispatchGroup) {
	p.mu.Lock()
	if g.site != "" {
		if line, busy := p.lines[g.site]; busy {
			p.lines[g.site] = append(line, g)
			p.mu.Unlock()
			return
		}
		p.lines[g.site] = nil // mark the site busy with this group
	}
	p.push(g)
	p.mu.Unlock()
	p.cond.Signal()
}

// push appends to the ready queue, reusing the backing array once the
// consumed prefix is the whole slice. Caller holds p.mu.
func (p *dispatchPool) push(g dispatchGroup) {
	if p.readyHead > 0 && p.readyHead == len(p.ready) {
		p.ready = p.ready[:0]
		p.readyHead = 0
	}
	p.ready = append(p.ready, g)
}

// next blocks for a runnable group; ok is false when the pool closed.
func (p *dispatchPool) next() (dispatchGroup, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.readyHead == len(p.ready) && !p.closed {
		p.cond.Wait()
	}
	if p.readyHead == len(p.ready) {
		return dispatchGroup{}, false
	}
	g := p.ready[p.readyHead]
	p.ready[p.readyHead] = dispatchGroup{} // release references
	p.readyHead++
	return g, true
}

// groupFinished releases the group's site line, promoting the next
// queued group of that site, then runs the group's completion hooks.
func (p *dispatchPool) groupFinished(g dispatchGroup) {
	if g.site != "" {
		p.mu.Lock()
		line := p.lines[g.site]
		if len(line) > 0 {
			nxt := line[0]
			p.lines[g.site] = line[1:]
			p.push(nxt)
			p.mu.Unlock()
			p.cond.Signal()
			dispatchLinePromotions.Inc()
		} else {
			delete(p.lines, g.site)
			p.mu.Unlock()
		}
	}
	if g.done != nil {
		g.done()
	}
	if g.round != nil {
		if g.round.left.Add(-1) == 0 {
			close(g.round.done)
		}
	}
}

func (p *dispatchPool) worker(w int) {
	defer p.wg.Done()
	for {
		g, ok := p.next()
		if !ok {
			break
		}
		dispatchBusyWorkers.Add(1)
		dispatchGroups.Inc()
		for _, j := range g.jobs {
			// A failed pool stops paying fetch latency immediately; the
			// group's done hook still runs so nothing deadlocks.
			if p.stopFlag.Load() {
				break
			}
			err := p.fn(w, j)
			dispatchJobs.Inc()
			if err != nil {
				p.fail(err)
				break
			}
		}
		p.groupFinished(g)
		dispatchBusyWorkers.Add(-1)
	}
	if p.workerExit != nil {
		if err := p.workerExit(w); err != nil {
			p.fail(err)
		}
	}
}

// fail records the first error and stops the pool.
func (p *dispatchPool) fail(err error) {
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
	p.stopFlag.Store(true)
}

// err returns the first recorded error, if any.
func (p *dispatchPool) err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

func (p *dispatchPool) stopped() bool { return p.stopFlag.Load() }

// startRound submits one dispatch round and returns its completion
// handle. Groups run in submission order subject to worker availability
// and site lines; callers submit largest groups first.
func (p *dispatchPool) startRound(groups []dispatchGroup) *roundHandle {
	h := &roundHandle{done: make(chan struct{})}
	if len(groups) == 0 {
		close(h.done)
		return h
	}
	h.left.Store(int64(len(groups)))
	for i := range groups {
		g := groups[i]
		g.round = h
		p.submit(g)
	}
	return h
}

// wait blocks until the round completes, then reports the pool's first
// error, if any.
func (p *dispatchPool) wait(h *roundHandle) error {
	<-h.done
	return p.err()
}

// abort stops the pool and drains the given in-flight rounds,
// discarding their results. Used on apply errors: the pipeline must
// not leak speculatively dispatched work.
func (p *dispatchPool) abort(inflight []*roundHandle) {
	p.stopFlag.Store(true)
	for _, h := range inflight {
		<-h.done
	}
}

// close shuts the pool down: no more submissions, workers drain and
// exit, worker-exit hooks run. Returns the pool's first error.
func (p *dispatchPool) close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	return p.err()
}

// gateDecision is claimSpec.gate's verdict before each claim.
type gateDecision int

const (
	gateDispatch gateDecision = iota // claim and dispatch another job
	gateWait                         // budget exhausted but jobs in flight: wait
	gateDone                         // stop dispatching
)

// claimSpec parameterizes the claim/dispatch/release loop shared by
// UpdatePipeline and webcrawl.
type claimSpec struct {
	coll frontier.ShardSet
	// now is the claim timestamp: a fixed virtual day for the pipeline,
	// the wall clock for webcrawl.
	now func() float64
	// release returns a claimed shard to the frontier with the caller's
	// politeness deadline. It runs on the worker that processed the
	// job, after the work function, before the job is counted done.
	release func(shard int)
	// gate is consulted before each claim with the counts of jobs
	// dispatched so far and in flight now (dispatch budget
	// enforcement).
	gate func(dispatched, inflight int64) gateDecision
	// gateWaitFor paces gateWait verdicts (default 10ms).
	gateWaitFor time.Duration
	// idle is consulted when nothing is claimable and jobs may still be
	// in flight; scans counts consecutive idle calls. Returning false
	// ends the loop. The loop has already settled the inflight==0
	// case: idle(0, ...) means the frontier is truly drained of
	// claimable work at now() — a politeness deadline or future due
	// time may remain.
	idle func(inflight int64, scans int) bool
	// maxQueue bounds how many claimed jobs may sit unstarted ahead of
	// the workers (default: no limit beyond gate's own accounting).
	maxQueue int64
}

// dispatchClaims runs the claim/dispatch/release loop: claim the due
// head of a shard, hand it to the pool, release the shard when the work
// function returns. A claimed shard is owned by one worker until
// released, so no two workers ever fetch from the same site
// concurrently. Returns the pool's first error, if any; the pool
// remains usable (callers close it separately).
func (p *dispatchPool) dispatchClaims(s claimSpec) error {
	var inflight atomic.Int64
	var dispatched int64
	gateWaitFor := s.gateWaitFor
	if gateWaitFor <= 0 {
		gateWaitFor = 10 * time.Millisecond
	}
	scans := 0
	queueScans := 0
	for !p.stopped() {
		switch s.gate(dispatched, inflight.Load()) {
		case gateDone:
			return p.err()
		case gateWait:
			if inflight.Load() == 0 {
				return p.err()
			}
			time.Sleep(gateWaitFor)
			continue
		}
		if s.maxQueue > 0 && inflight.Load() >= s.maxQueue {
			// Claim just ahead of the workers; yield rather than sleep,
			// since simulated fetches drain the queue in microseconds.
			queueScans++
			spinThenSleep(queueScans, 64, 100*time.Microsecond)
			continue
		}
		queueScans = 0
		e, sid, ok := s.coll.ClaimDue(s.now())
		if !ok && inflight.Load() == 0 {
			// All workers idle and their releases visible (release
			// happens before the inflight decrement); one more claim
			// settles whether the frontier is drained or a release
			// raced the first claim.
			e, sid, ok = s.coll.ClaimDue(s.now())
		}
		if !ok {
			if !s.idle(inflight.Load(), scans) {
				return p.err()
			}
			scans++
			continue
		}
		scans = 0
		inflight.Add(1)
		dispatched++
		j := &crawlJob{url: e.URL, day: s.now()}
		p.submit(dispatchGroup{
			jobs: []*crawlJob{j},
			done: func() {
				// Release before decrementing: once inflight hits zero
				// the dispatcher trusts the frontier to be fully
				// visible.
				if s.release != nil {
					s.release(sid)
				}
				inflight.Add(-1)
			},
		})
	}
	return p.err()
}

// spinThenSleep is the idle backoff used against fast (simulated)
// fetchers: yield the scheduler for the first spins, then back off to
// brief sleeps instead of burning a core on shard scans.
func spinThenSleep(scans, spins int, d time.Duration) {
	if scans < spins {
		runtime.Gosched()
	} else {
		time.Sleep(d)
	}
}

// ClaimDispatch configures DispatchClaims, the exported face of the
// claim/fetch/release dispatcher for wall-clock crawlers outside this
// package (cmd/webcrawl). Work receives each claimed head URL; a
// returned error stops the whole dispatch. Gate reports whether the
// fetch budget allows another claim (false pauses dispatch, and ends
// it once nothing is in flight). Idle follows claimSpec.idle.
type ClaimDispatch struct {
	Workers int
	Coll    frontier.ShardSet
	Now     func() float64
	Work    func(url string) error
	Release func(shard int)
	Gate    func(dispatched, inflight int64) bool
	Idle    func(inflight int64, scans int) bool
	// GateWait paces a closed gate (default 10ms).
	GateWait time.Duration
}

// DispatchClaims runs the claim loop over a private worker pool and
// returns the first work error, if any.
func DispatchClaims(cfg ClaimDispatch) error {
	pool := newDispatchPool(cfg.Workers,
		func(_ int, j *crawlJob) error {
			// Wall-clock crawls are slow enough (network-bound) that a
			// per-fetch trace span is cheap; the simulated engine sticks
			// to per-round spans (engine.go).
			start := time.Now()
			err := cfg.Work(j.url)
			obs.DefaultTrace.Span("fetch_url", 0, 1, start)
			return err
		}, nil)
	err := pool.dispatchClaims(claimSpec{
		coll:    cfg.Coll,
		now:     cfg.Now,
		release: cfg.Release,
		gate: func(dispatched, inflight int64) gateDecision {
			if cfg.Gate == nil || cfg.Gate(dispatched, inflight) {
				return gateDispatch
			}
			return gateWait
		},
		gateWaitFor: cfg.GateWait,
		idle:        cfg.Idle,
	})
	if cerr := pool.close(); err == nil {
		err = cerr
	}
	return err
}
