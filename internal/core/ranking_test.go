package core

import (
	"testing"
)

func TestHysteresisPreventsThrash(t *testing.T) {
	// With a huge hysteresis margin, replacements should be rare even
	// under a tiny collection; with zero hysteresis they happen freely.
	evictions := func(h float64) int64 {
		w, f := testWeb(t, 50)
		cfg := baseConfig(w)
		cfg.CollectionSize = 15
		cfg.EvictionHysteresis = h
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(30); err != nil {
			t.Fatal(err)
		}
		return c.Metrics().Evictions
	}
	loose := evictions(0)
	tight := evictions(10) // candidate must be 11x better
	if tight >= loose {
		t.Fatalf("hysteresis did not damp evictions: %d (tight) vs %d (loose)", tight, loose)
	}
}

func TestMaxCandidatesBoundsRankingWork(t *testing.T) {
	w, f := testWeb(t, 51)
	cfg := baseConfig(w)
	cfg.MaxCandidates = 5
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	// The crawl still makes progress despite the tiny candidate window.
	if c.Collection().Len() == 0 {
		t.Fatal("no pages collected with bounded candidates")
	}
}

func TestImportancePropagatesToAllUrls(t *testing.T) {
	w, f := testWeb(t, 52)
	c, err := New(baseConfig(w), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	// Crawled seeds must carry a PageRank-derived importance in AllUrls.
	seen := 0
	for _, s := range w.RootURLs() {
		info, ok := c.AllUrls().Get(s)
		if ok && info.Importance > 0 {
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no seed received an importance score")
	}
}

func TestAdmittedPagesCrawledImmediately(t *testing.T) {
	// "The URL for this new page is placed on the top of CollUrls, so
	// that the UpdateModule can crawl the page immediately": after a
	// ranking pass admits pages, their due time must be at or before the
	// current day.
	w, f := testWeb(t, 53)
	cfg := baseConfig(w)
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	// Run a hair past the first ranking pass (which happens at day 0).
	if err := c.RunUntil(0.01); err != nil {
		t.Fatal(err)
	}
	head, ok := c.CollUrls().Peek()
	if ok && head.Due > c.Day() {
		t.Fatalf("admitted page scheduled at %v, now %v", head.Due, c.Day())
	}
	if c.Metrics().Admissions == 0 {
		t.Fatal("first ranking pass admitted nothing")
	}
}

func TestPeriodicPartialCycleAtHorizon(t *testing.T) {
	// Stopping mid-cycle must not wedge or overshoot badly.
	w, f := testWeb(t, 54)
	cfg := baseConfig(w)
	p, err := NewPeriodic(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunUntil(0.5); err != nil { // far inside the first batch
		t.Fatal(err)
	}
	if p.Day() < 0.5 {
		t.Fatalf("day %v did not reach horizon", p.Day())
	}
	if p.Day() > cfg.CycleDays+cfg.BatchDays {
		t.Fatalf("day %v overshot a full cycle", p.Day())
	}
}

func TestRunUntilIdempotentAtHorizon(t *testing.T) {
	w, f := testWeb(t, 55)
	c, err := New(baseConfig(w), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	day := c.Day()
	fetches := c.Metrics().Fetches
	// Running to the same (or earlier) horizon is a no-op.
	if err := c.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if c.Day() != day || c.Metrics().Fetches != fetches {
		t.Fatal("re-running to a past horizon did work")
	}
}
