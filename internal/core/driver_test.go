package core

import (
	"testing"

	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
)

func newPipeline(t *testing.T, workers int) (*UpdatePipeline, *fetch.SimFetcher) {
	t.Helper()
	w, f := testWeb(t, 30)
	coll := frontier.NewSharded(8)
	for _, s := range w.Sites() {
		for _, u := range s.WindowURLs(0) {
			coll.Push(u, 0, 0)
		}
	}
	return &UpdatePipeline{
		Fetcher:         f,
		Coll:            coll,
		Store:           store.NewMem(),
		Policy:          scheduler.Fixed{Every: 1},
		Workers:         workers,
		MinIntervalDays: 0.1,
		MaxIntervalDays: 10,
	}, f
}

func TestPipelineProcessesAllDue(t *testing.T) {
	p, _ := newPipeline(t, 4)
	total := p.Coll.Len()
	if err := p.Run(0, total); err != nil {
		t.Fatal(err)
	}
	if got := p.Processed(); got != int64(total) {
		t.Fatalf("processed %d, want %d", got, total)
	}
	if p.Store.Len() != total {
		t.Fatalf("stored %d, want %d", p.Store.Len(), total)
	}
	// All pages rescheduled one day later.
	if p.Coll.Len() != total {
		t.Fatalf("queue %d after run", p.Coll.Len())
	}
	if _, ok := p.Coll.PopDue(0.5); ok {
		t.Fatal("rescheduled entry due too early")
	}
}

func TestPipelineDetectsChangesAcrossRounds(t *testing.T) {
	p, _ := newPipeline(t, 2)
	n := p.Coll.Len()
	if err := p.Run(0, n); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(5, n); err != nil { // 5 days later
		t.Fatal(err)
	}
	if p.Changed() == 0 {
		t.Fatal("no changes detected after 5 days on a changing web")
	}
}

func TestPipelineBoundsWork(t *testing.T) {
	p, _ := newPipeline(t, 3)
	if err := p.Run(0, 7); err != nil {
		t.Fatal(err)
	}
	if p.Processed() != 7 {
		t.Fatalf("processed %d, want 7", p.Processed())
	}
}

func TestPipelineValidation(t *testing.T) {
	p := &UpdatePipeline{}
	if err := p.Run(0, 1); err == nil {
		t.Fatal("empty pipeline accepted")
	}
}

func TestPipelineSingleWorkerDeterministic(t *testing.T) {
	run := func() int64 {
		p, _ := newPipeline(t, 1)
		n := p.Coll.Len()
		if err := p.Run(0, n); err != nil {
			t.Fatal(err)
		}
		if err := p.Run(3, n); err != nil {
			t.Fatal(err)
		}
		return p.Changed()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("single-worker runs diverge: %d vs %d", a, b)
	}
}

func TestPipelineConcurrencySafe(t *testing.T) {
	// Many workers over the same structures: the race detector (go test
	// -race) is the real assertion here.
	p, _ := newPipeline(t, 16)
	n := p.Coll.Len()
	for round := 0; round < 4; round++ {
		if err := p.Run(float64(round), n); err != nil {
			t.Fatal(err)
		}
	}
	if p.Processed() == 0 {
		t.Fatal("nothing processed")
	}
}
