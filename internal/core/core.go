package core
