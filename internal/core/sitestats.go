package core

import (
	"webevolve/internal/changefreq"
	"webevolve/internal/webgraph"
)

// Site-level change statistics (Section 5.3): "it is also possible to
// keep update statistics on larger units than a page, such as a web site
// or a directory ... the crawler may get a tighter confidence interval,
// because the frequency is estimated on a larger number of pages".
//
// When Config.SiteLevelStats is on, the crawler pools every page's change
// history into its site's aggregate and uses the pooled EP estimate as
// the working rate for pages whose own history is still too short
// (fewer than SiteStatsMinSamples intervals). Pages with enough history
// use their own estimate — the hybrid sidesteps the paper's caveat that
// a site average misleads when pages on the site change at very
// different rates, because the per-page signal takes over as soon as it
// is informative.

// siteStats maintains per-site pooled aggregates.
type siteStats struct {
	bySite map[string]*changefreq.SiteAggregate
	// contributed tracks how many intervals of each page's history have
	// already been pooled, so re-pooling after each visit is incremental.
	contributed map[string]int
}

func newSiteStats() *siteStats {
	return &siteStats{
		bySite:      make(map[string]*changefreq.SiteAggregate),
		contributed: make(map[string]int),
	}
}

// entry returns (creating if needed) the pooled aggregate for a site.
// Called on the engine goroutine at pop time, so workers receive a
// stable pointer and never touch the map (engine.go's fetchJob).
func (s *siteStats) entry(site string) *changefreq.SiteAggregate {
	agg, ok := s.bySite[site]
	if !ok {
		agg = &changefreq.SiteAggregate{}
		s.bySite[site] = agg
	}
	return agg
}

// poolSiteObservation pools one visit observation into a site
// aggregate. The SiteAggregate API pools whole histories; adding a
// single-interval history per observation keeps pooling incremental.
// Runs on the worker that fetched the page: per-site ordering is
// guaranteed by the dispatcher's site lines.
func poolSiteObservation(agg *changefreq.SiteAggregate, obsTime, gap float64, changed bool) {
	h := &changefreq.History{}
	_ = h.Record(changefreq.Observation{Time: obsTime - gap})
	_ = h.Record(changefreq.Observation{Time: obsTime, Changed: changed})
	agg.Add(h)
}

// noteContribution records that one more of a page's intervals has
// been pooled (engine-goroutine bookkeeping for the worker-side
// poolSiteObservation).
func (s *siteStats) noteContribution(url string) {
	s.contributed[url]++
}

// rate returns the pooled site-level rate estimate for a URL's site, or
// ok=false when the site has no pooled signal yet.
func (s *siteStats) rate(url string) (float64, bool) {
	agg, ok := s.bySite[webgraph.SiteOf(url)]
	if !ok {
		return 0, false
	}
	est, err := agg.Estimate()
	if err != nil {
		return 0, false
	}
	return est.Rate, true
}

// forget drops a page's contribution bookkeeping (the pooled counts are
// retained: past observations of a dead page still inform the site).
func (s *siteStats) forget(url string) {
	delete(s.contributed, url)
}

// workingRate combines page-level and site-level signals per the hybrid
// policy described above.
func (c *Crawler) workingRate(url string, est *estimator) float64 {
	pageRate := est.rate()
	if c.siteStats == nil {
		return pageRate
	}
	if est.hist.Accesses() >= c.cfg.SiteStatsMinSamples {
		return pageRate
	}
	if siteRate, ok := c.siteStats.rate(url); ok {
		return siteRate
	}
	return pageRate
}
