package core

import "webevolve/internal/frontier"

// The engine's frontier traffic is round-shaped: pop a round of due
// URLs, fetch, then commit that round's reschedules and drops before
// popping the next round. Against in-process shards each pop and push
// is a method call; against a remote cluster each used to be one or
// two round trips — which made the wire, not the fetches, the remote
// crawl's dominant cost.
//
// frontierRounds folds a whole round's frontier work into one
// operation. A frontier that implements roundApplier (today:
// cluster.RemoteShards, speaking the opRound wire op) applies the
// round's pops, drops and reschedules server-side and returns the
// next pop candidates — the ordered prefix of its queue — in the same
// exchange, one round trip per server per dispatch round. The engine
// then pops the next round locally from the merged candidate lists,
// with zero additional wire traffic.
//
// Determinism: the merged candidates are consumed with exactly the
// in-process comparator (frontier.EntryBefore), and the merge is an
// exact prefix of the global queue order — per-server lists are
// ordered, and entries a truncated server did not return all order
// after the last entry it did return (the bound below). A pop is
// served from the cache only while it orders at or before the bound;
// past it, the cache refreshes. The pop sequence is therefore
// bit-identical to in-process shards, which is what keeps
// TestDistributedWorkerCountInvariance green with the pipeline on.
//
// The fast path requires a zero politeness gap (the engine's steady
// rounds never claim shards, and candidate merging cannot see remote
// politeness deadlines): with a gap configured, every call falls
// through to the per-op ShardSet path, exactly as before.

// roundApplier is the optional frontier fast path. ApplyRound applies,
// in order: pops (entries the engine already consumed from candidate
// lists), removes (dropped pages; absent URLs are fine), then pushes —
// and returns the frontier's next peekMax pop candidates in queue
// order. ok is false when the implementation cannot serve the fast
// path (politeness gap configured, or transport already failed); the
// caller then uses the plain ShardSet ops.
//
// bound is the exactness limit of the returned candidates: entries not
// returned are guaranteed to order after it (boundOK false means the
// list is complete and cands is the entire queue). A pop must not be
// served from the cache once its head orders after the bound.
type roundApplier interface {
	ApplyRound(pops, removes []string, pushes []frontier.Entry, peekMax int) (cands []frontier.Entry, bound frontier.Entry, boundOK bool, ok bool)
}

// frontierRounds is the engine's view of its frontier: direct ShardSet
// calls, or the batched round protocol when available.
type frontierRounds struct {
	coll frontier.ShardSet
	ra   roundApplier // nil: direct mode
	max  int          // candidates requested per refresh

	active  bool // cands/bound hold a valid queue prefix
	cands   []frontier.Entry
	bound   frontier.Entry
	bounded bool     // a bound exists (some server truncated its list)
	pops    []string // candidates consumed since the last ApplyRound
}

// newFrontierRounds wires the engine's frontier access. The fast path
// engages only when the frontier offers it and the configuration keeps
// a zero politeness gap.
func newFrontierRounds(coll frontier.ShardSet, peekMax int, politeness float64) *frontierRounds {
	r := &frontierRounds{coll: coll, max: peekMax}
	if ra, ok := coll.(roundApplier); ok && politeness == 0 {
		r.ra = ra
	}
	return r
}

// popDue removes and returns the globally earliest entry due at or
// before now — the engine round pop.
func (r *frontierRounds) popDue(now float64) (frontier.Entry, bool) {
	if r.ra == nil {
		return r.coll.PopDue(now)
	}
	for attempt := 0; ; attempt++ {
		if !r.active {
			if !r.refresh() {
				return r.coll.PopDue(now) // fast path refused; fall through
			}
		}
		if len(r.cands) > 0 {
			head := r.cands[0]
			if !r.bounded || !frontier.EntryBefore(r.bound, head) {
				// head is within the exact prefix: trust it.
				if head.Due > now {
					return frontier.Entry{}, false
				}
				r.cands = r.cands[1:]
				r.pops = append(r.pops, head.URL)
				return head, true
			}
		} else if !r.bounded {
			return frontier.Entry{}, false // complete and empty: drained
		}
		// Consumed past the known prefix; refetch a fresh one. A fresh
		// refresh always yields a trustworthy head, so this cannot
		// loop: the global head is at or before every server's last
		// returned entry.
		r.active = false
		if attempt > 0 {
			// Defensive: a misbehaving implementation that keeps
			// truncating ahead of its bound must not hang the engine.
			return r.coll.PopDue(now)
		}
	}
}

// commitRound ships a round's frontier mutations: drops and
// reschedules, plus (fast path) the pops consumed from the candidate
// cache. wantCands keeps the candidate cache primed for an immediately
// following pop (the steady loop); URL-list driven loops (batch mode)
// pass false and skip the peek work.
func (r *frontierRounds) commitRound(removes []string, pushes []frontier.Entry, wantCands bool) {
	if r.ra == nil {
		for _, u := range removes {
			r.coll.Remove(u)
		}
		if len(pushes) > 0 {
			r.coll.PushBatch(pushes)
		}
		return
	}
	max := r.max
	if !wantCands {
		max = 0
	}
	cands, bound, bounded, ok := r.ra.ApplyRound(r.pops, removes, pushes, max)
	r.pops = r.pops[:0]
	if !ok {
		// Fast path refused (e.g. politeness configured server-side):
		// re-issue through the plain ops so nothing is lost, and stop
		// using the fast path.
		r.ra = nil
		r.active = false
		for _, u := range removes {
			r.coll.Remove(u)
		}
		if len(pushes) > 0 {
			r.coll.PushBatch(pushes)
		}
		return
	}
	r.cands, r.bound, r.bounded = cands, bound, bounded
	r.active = wantCands
}

// refresh reprimes the candidate cache (shipping any pending pops).
// It reports false when the fast path refused and has been disabled.
func (r *frontierRounds) refresh() bool {
	r.commitRound(nil, nil, true)
	return r.ra != nil
}

// flush ships pending pops and invalidates the candidate cache. It
// must run before any frontier access that bypasses this adapter — the
// ranking pass's Push/Remove/URLs/Len, the shadow swap, batch-mode
// URL snapshots — so the server state is caught up and later rounds
// re-peek fresh candidates.
func (r *frontierRounds) flush() {
	if r.ra == nil {
		return
	}
	if len(r.pops) > 0 {
		r.commitRound(nil, nil, false)
	}
	r.active = false
}

// nextEvent is NextEvent through the cache when possible: with a zero
// politeness gap the next poppable instant is the queue head's due
// time, which the cache knows without another fan-out.
func (r *frontierRounds) nextEvent() (float64, bool) {
	if r.ra != nil && r.active {
		if len(r.cands) > 0 {
			head := r.cands[0]
			if !r.bounded || !frontier.EntryBefore(r.bound, head) {
				return head.Due, true
			}
		} else if !r.bounded {
			return 0, false // complete and empty
		}
	}
	return r.coll.NextEvent()
}
