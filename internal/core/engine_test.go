package core

import (
	"testing"
	"time"

	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
)

// TestWorkerCountInvariance is the engine's core contract: because jobs
// are popped in global due-order, grouped per site shard, and applied in
// pop order, the crawl over the deterministic simulator must produce
// byte-identical state for any worker/shard/batch configuration.
func TestWorkerCountInvariance(t *testing.T) {
	type outcome struct {
		m    Metrics
		urls []string
		all  int
	}
	run := func(workers, shards, batch int) outcome {
		w, f := testWeb(t, 21)
		cfg := baseConfig(w)
		cfg.Workers = workers
		cfg.Shards = shards
		cfg.DispatchBatch = batch
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(15); err != nil {
			t.Fatal(err)
		}
		return outcome{m: c.Metrics(), urls: c.Collection().URLs(), all: c.AllUrls().Len()}
	}
	ref := run(1, 1, 1)
	for _, v := range []struct{ workers, shards, batch int }{
		{1, 16, 8},
		{4, 8, 16},
		{8, 32, 64},
	} {
		got := run(v.workers, v.shards, v.batch)
		if got.m != ref.m {
			t.Fatalf("workers=%d shards=%d batch=%d: metrics diverge\n%+v\n%+v",
				v.workers, v.shards, v.batch, got.m, ref.m)
		}
		if got.all != ref.all {
			t.Fatalf("workers=%d: AllUrls %d vs %d", v.workers, got.all, ref.all)
		}
		if len(got.urls) != len(ref.urls) {
			t.Fatalf("workers=%d: collection %d vs %d", v.workers, len(got.urls), len(ref.urls))
		}
		for i := range got.urls {
			if got.urls[i] != ref.urls[i] {
				t.Fatalf("workers=%d: collection diverges at %d: %s vs %s",
					v.workers, i, got.urls[i], ref.urls[i])
			}
		}
	}
}

// TestWorkerCountInvarianceDiskTier repeats the invariance check with a
// disk-backed frontier squeezed by a tiny resident budget: the spill
// tier must not perturb the crawl by a single byte.
func TestWorkerCountInvarianceDiskTier(t *testing.T) {
	run := func(fr frontier.ShardSet) (Metrics, []string) {
		w, f := testWeb(t, 21)
		cfg := baseConfig(w)
		cfg.Workers = 4
		cfg.Shards = 8
		cfg.DispatchBatch = 16
		cfg.Frontier = fr
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(15); err != nil {
			t.Fatal(err)
		}
		return c.Metrics(), c.Collection().URLs()
	}
	rm, ru := run(nil)
	fr, err := frontier.OpenSharded(frontier.StoreConfig{
		Shards: 8, SpillDir: t.TempDir(), ResidentBudget: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	dm, du := run(fr)
	if dm != rm {
		t.Fatalf("disk-tier metrics diverge:\n%+v\n%+v", dm, rm)
	}
	if len(du) != len(ru) {
		t.Fatalf("disk-tier collections diverge: %d vs %d", len(du), len(ru))
	}
	for i := range ru {
		if du[i] != ru[i] {
			t.Fatalf("disk-tier collection diverges at %d: %s vs %s", i, du[i], ru[i])
		}
	}
	if fr.Tier().SpillBytes == 0 {
		t.Fatal("disk tier never spilled — the test exercised nothing")
	}
}

// TestWorkerCountInvarianceBatchMode repeats the invariance check for
// the batch-mode loop (chunked drain of the cycle snapshot).
func TestWorkerCountInvarianceBatchMode(t *testing.T) {
	run := func(workers int) (Metrics, []string) {
		w, f := testWeb(t, 22)
		cfg := baseConfig(w)
		cfg.Mode = Batch
		cfg.Update = Shadow
		cfg.Workers = workers
		cfg.Shards = 8
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(14); err != nil {
			t.Fatal(err)
		}
		return c.Metrics(), c.Collection().URLs()
	}
	m1, u1 := run(1)
	m8, u8 := run(8)
	if m1 != m8 {
		t.Fatalf("batch-mode metrics diverge:\n%+v\n%+v", m1, m8)
	}
	if len(u1) != len(u8) {
		t.Fatalf("batch-mode collections diverge: %d vs %d", len(u1), len(u8))
	}
	for i := range u1 {
		if u1[i] != u8[i] {
			t.Fatalf("batch-mode collection diverges at %d", i)
		}
	}
}

// TestCrawlerConcurrentWorkersRace exists for the race detector: a
// multi-worker crawl with a latency fetcher keeps several CrawlModules
// genuinely in flight at once.
func TestCrawlerConcurrentWorkersRace(t *testing.T) {
	w, f := testWeb(t, 23)
	cfg := baseConfig(w)
	cfg.Workers = 8
	cfg.Shards = 8
	cfg.DispatchBatch = 32
	c, err := New(cfg, fetch.Delayed{Base: f, Delay: 20 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().Fetches == 0 {
		t.Fatal("no fetches")
	}
}

// TestShardPolitenessThrottlesCrawl checks the per-shard politeness gap
// reaches the engine: with a gap wider than the fetch spacing and all
// pages on few shards, the crawler must spend time idle waiting out
// politeness deadlines.
func TestShardPolitenessThrottlesCrawl(t *testing.T) {
	run := func(gap float64) Metrics {
		w, f := testWeb(t, 24)
		cfg := baseConfig(w)
		cfg.Shards = 2
		cfg.ShardPolitenessDays = gap
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(8); err != nil {
			t.Fatal(err)
		}
		return c.Metrics()
	}
	free := run(0)
	polite := run(0.05) // 3x the per-fetch spacing of 1/60 day
	if polite.Fetches >= free.Fetches {
		t.Fatalf("politeness did not throttle: %d fetches vs %d unthrottled",
			polite.Fetches, free.Fetches)
	}
	if polite.IdleDays <= free.IdleDays {
		t.Fatalf("politeness did not add idle time: %v vs %v",
			polite.IdleDays, free.IdleDays)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	w, _ := testWeb(t, 25)
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Workers = -1 },
		func(c *Config) { c.Shards = -2 },
		func(c *Config) { c.DispatchBatch = -1 },
		func(c *Config) { c.ShardPolitenessDays = -0.5 },
	} {
		cfg := baseConfig(w)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad engine config %d accepted", i)
		}
	}
}
