package core

import "webevolve/internal/obs"

// The engine's metric families. Instrumentation is observational only:
// nothing here may influence scheduling, and nothing prints — crawl
// output is diffed byte-for-byte by the smoke scripts.
//
// Phase timings carry the round's ID into the process trace
// (obs.DefaultTrace) too, one span per phase per round, so the
// pipeline's overlap — round N applying while N+1 and N+2 fetch — is
// reconstructable offline from the JSONL stream.
var (
	engineRounds = obs.Default.Counter("webevolve_engine_rounds_total",
		"dispatch rounds run")
	engineRoundJobs = obs.Default.Histogram("webevolve_engine_round_jobs",
		"jobs per dispatch round", obs.ExpBuckets(1, 2, 12))
	enginePhaseSeconds = obs.Default.HistogramVec("webevolve_engine_phase_seconds",
		"round phase wall time (pop, fetch, apply_schedule, apply_content)",
		obs.LatencyBuckets, "phase")
	engineInflightRounds = obs.Default.Gauge("webevolve_engine_inflight_rounds",
		"rounds currently dispatched and not yet applied")

	dispatchJobs = obs.Default.Counter("webevolve_dispatch_jobs_total",
		"jobs executed by the worker pool")
	dispatchGroups = obs.Default.Counter("webevolve_dispatch_groups_total",
		"job groups executed by the worker pool")
	dispatchBusyWorkers = obs.Default.Gauge("webevolve_dispatch_busy_workers",
		"pool workers currently running a group (utilization against the worker count)")
	dispatchLinePromotions = obs.Default.Counter("webevolve_dispatch_line_promotions_total",
		"groups promoted from a site line after the group ahead finished")

	phasePop           = enginePhaseSeconds.With("pop")
	phaseFetch         = enginePhaseSeconds.With("fetch")
	phaseApplySchedule = enginePhaseSeconds.With("apply_schedule")
	phaseApplyContent  = enginePhaseSeconds.With("apply_content")
	phasePush          = enginePhaseSeconds.With("push")
)
