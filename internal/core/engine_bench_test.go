package core

import (
	"fmt"
	"testing"
	"time"

	"webevolve/internal/cluster"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/simweb"
)

// benchWeb is the shared simulated web of the engine benchmarks.
func benchWeb(b *testing.B) *simweb.Web {
	b.Helper()
	w, err := simweb.New(simweb.Config{
		Seed: 42,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 12, simweb.Edu: 6, simweb.NetOrg: 3, simweb.Gov: 3,
		},
		PagesPerSite: 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// benchmarkEngine measures end-to-end crawl throughput of the engine
// against a simulated web served through a fixed per-fetch latency
// (the regime where parallel CrawlModules pay off — real crawls are
// network-bound). mutate tweaks the canonical config; newFrontier, if
// non-nil, builds a frontier per iteration (the remote variants).
func benchmarkEngine(b *testing.B, workers, shards int, delay time.Duration,
	mutate func(*Config), newFrontier func(b *testing.B) frontier.ShardSet) {
	b.Helper()
	var pages int64
	var wireBytes int64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		w := benchWeb(b)
		cfg := Config{
			Seeds:          w.RootURLs(),
			CollectionSize: 900,
			PagesPerDay:    900,
			CycleDays:      5,
			RankEveryDays:  2,
			Freq:           VariableFreq,
			Estimator:      EstimatorEP,
			Workers:        workers,
			Shards:         shards,
			DispatchBatch:  8 * workers,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		if newFrontier != nil {
			cfg.Frontier = newFrontier(b)
		}
		c, err := New(cfg, fetch.Delayed{Base: fetch.NewSimFetcher(w), Delay: delay})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if err := c.RunUntil(4); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		pages += c.Metrics().Fetches
		if wm, ok := cfg.Frontier.(wireMeter); ok {
			in, out := wm.WireBytes()
			wireBytes += in + out
		}
	}
	b.ReportMetric(float64(pages)/elapsed.Seconds(), "pages/s")
	b.ReportMetric(float64(pages)/float64(b.N), "fetches/run")
	if wireBytes > 0 {
		// Bytes per page crawled, both directions summed — the baseline
		// the ROADMAP's "shrink the wire" item moves against
		// (wireB_per_page in BENCH_engine.json).
		b.ReportMetric(float64(wireBytes)/float64(pages), "wireB/page")
	}
}

// wireMeter is the wire-byte accounting surface of the remote frontier
// and store clients (cluster.RemoteShards, cluster.RemoteStore).
type wireMeter interface {
	WireBytes() (in, out int64)
}

// BenchmarkEngine is the canonical engine benchmark: 8 workers at a
// 200µs simulated fetch latency, pipelined dispatch (the default).
// Compare against BenchmarkEngineBatchSync — the same configuration
// with the pre-pipelining batch-synchronous dispatch — for the win of
// overlapping fetch latency with apply CPU; `make bench` records both
// in BENCH_engine.json.
func BenchmarkEngine(b *testing.B) {
	benchmarkEngine(b, 8, 32, 200*time.Microsecond, nil, nil)
}

// BenchmarkEngineBatchSync runs BenchmarkEngine's exact configuration
// with Config.BatchSync set: one round in flight, fully applied before
// the next pop — the dispatch discipline the engine used before the
// pipelined dispatcher.
func BenchmarkEngineBatchSync(b *testing.B) {
	benchmarkEngine(b, 8, 32, 200*time.Microsecond,
		func(cfg *Config) { cfg.BatchSync = true }, nil)
}

// BenchmarkEngineRemote is BenchmarkEngine with the frontier behind
// loopback shard servers: the batched round protocol (one opRound trip
// per server per dispatch round) must keep remote throughput within 2x
// of local, where per-URL pops used to cost 2.2-3.2x.
func BenchmarkEngineRemote(b *testing.B) {
	for _, servers := range []int{1, 2} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			benchmarkEngine(b, 8, 32, 200*time.Microsecond, nil,
				func(b *testing.B) frontier.ShardSet {
					return loopbackShards(b, servers, 32/servers)
				})
		})
	}
}

// loopbackShards builds an in-process shard-server cluster over
// net.Pipe and returns its client.
func loopbackShards(b *testing.B, n, shardsEach int) frontier.ShardSet {
	b.Helper()
	servers := make([]*cluster.ShardServer, n)
	for i := range servers {
		servers[i] = cluster.NewShardServer(frontier.NewSharded(shardsEach))
	}
	rs, err := cluster.Loopback(servers, cluster.Options{PolitenessDays: 0})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := rs.Err(); err != nil {
			b.Fatal(err)
		}
		rs.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return rs
}

// BenchmarkCrawlEngineWorkers compares 1-worker vs N-worker crawls over
// the same simulated web at a 200µs simulated fetch latency.
func BenchmarkCrawlEngineWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkEngine(b, workers, 32, 200*time.Microsecond, nil, nil)
		})
	}
}

// BenchmarkCrawlEngineZeroLatency pins down the dispatch overhead: with
// a free fetcher there is nothing to hide, so multi-worker throughput
// should stay within a small factor of single-worker throughput.
func BenchmarkCrawlEngineZeroLatency(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkEngine(b, workers, 32, 0, nil, nil)
		})
	}
}

// BenchmarkEngineSkewedShards is the satellite skew case: only two
// frontier shards, so the pre-pipelining dispatcher (which grouped
// fetch batches by shard) could never keep more than two workers busy.
// The dispatcher now groups by site and chains per-site order across
// rounds, so 8 workers scale with the number of *sites*, not shards.
func BenchmarkEngineSkewedShards(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkEngine(b, workers, 2, 200*time.Microsecond, nil, nil)
		})
	}
}
