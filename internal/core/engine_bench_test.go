package core

import (
	"fmt"
	"testing"
	"time"

	"webevolve/internal/fetch"
	"webevolve/internal/simweb"
)

// benchmarkEngineWorkers measures end-to-end crawl throughput of the
// sharded engine at a given worker count, against a simulated web served
// through a fixed per-fetch latency (the regime where parallel
// CrawlModules pay off — real crawls are network-bound). Reported
// pages/s should scale with workers until the latency is fully hidden.
func benchmarkEngineWorkers(b *testing.B, workers int, delay time.Duration) {
	b.Helper()
	var pages int64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		w, err := simweb.New(simweb.Config{
			Seed: 42,
			SitesPerDomain: map[simweb.Domain]int{
				simweb.Com: 8, simweb.Edu: 4, simweb.NetOrg: 2, simweb.Gov: 2,
			},
			PagesPerSite: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := Config{
			Seeds:          w.RootURLs(),
			CollectionSize: 600,
			PagesPerDay:    600,
			CycleDays:      5,
			RankEveryDays:  1,
			Freq:           VariableFreq,
			Estimator:      EstimatorEP,
			Workers:        workers,
			Shards:         32,
			DispatchBatch:  8 * workers,
		}
		c, err := New(cfg, fetch.Delayed{Base: fetch.NewSimFetcher(w), Delay: delay})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if err := c.RunUntil(4); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		pages += c.Metrics().Fetches
	}
	b.ReportMetric(float64(pages)/elapsed.Seconds(), "pages/s")
	b.ReportMetric(float64(pages)/float64(b.N), "fetches/run")
}

// BenchmarkCrawlEngineWorkers compares 1-worker vs N-worker crawls over
// the same simulated web at a 200µs simulated fetch latency.
func BenchmarkCrawlEngineWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkEngineWorkers(b, workers, 200*time.Microsecond)
		})
	}
}

// BenchmarkCrawlEngineZeroLatency pins down the dispatch overhead: with
// a free fetcher there is nothing to hide, so multi-worker throughput
// should stay within a small factor of single-worker throughput.
func BenchmarkCrawlEngineZeroLatency(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkEngineWorkers(b, workers, 0)
		})
	}
}
