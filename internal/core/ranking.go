package core

import (
	"sort"

	"webevolve/internal/frontier"
	"webevolve/internal/pagerank"
)

// rankingPass is the RankingModule of Figure 12: recompute importance
// over the captured link structure, refresh AllUrls scores, rebuild the
// variable-frequency plan, and make the refinement decision — admit
// important new pages (at the front of CollUrls, so they are crawled
// immediately) and discard the least important pages to keep the
// collection at its target size.
//
// The paper stresses that this pass is expensive (PageRank scans the
// whole collection) and therefore must run on its own cadence, decoupled
// from the UpdateModule's per-page work; here that cadence is
// Config.RankEveryDays.
func (c *Crawler) rankingPass() error {
	// A still-running rebuild from the previous pass reads from the
	// same plan this pass snapshots and replaces; settle it first.
	if err := c.joinRebuild(); err != nil {
		return err
	}
	c.metrics.RankPasses++
	snap := c.graph.Snapshot()
	ranks, _, err := pagerank.Pages(snap, pagerank.Options{Damping: 0.9})
	if err != nil {
		return err
	}
	c.importance = ranks
	for url, r := range ranks {
		c.all.SetImportance(url, r)
	}

	if c.optimal != nil {
		rates := make(map[string]float64, c.coll.Len())
		prior := 1 / (4 * c.cfg.CycleDays) // the paper's ~4-month mean
		for _, u := range c.coll.URLs() {
			r := prior
			if e, ok := c.est[u]; ok {
				if er := c.workingRate(u, e); er > 0 {
					r = er
				}
			}
			rates[u] = r
		}
		if len(rates) > 0 {
			// The rebuild (a Lagrange-multiplier search, the most
			// expensive part of the pass) runs concurrently with the
			// post-rank rounds' fetches: nothing between here and the
			// next applySchedule reads the revisit plan — the paper's
			// point exactly, the UpdateModule never waits for the
			// RankingModule. joinRebuild synchronizes before the plan
			// is first consulted, and the result is a pure function of
			// the rates snapshot taken above, so timing cannot change
			// it.
			done := make(chan error, 1)
			c.rebuildDone = done
			go func() { done <- c.optimal.Rebuild(rates) }()
		}
	}

	return c.refine(ranks)
}

// joinRebuild waits out any in-flight revisit-plan rebuild. It must be
// called before anything reads the Optimal plan (policy.Interval in
// applySchedule, the next pass's workingRate snapshot) and before the
// crawler returns to its caller.
func (c *Crawler) joinRebuild() error {
	if c.rebuildDone == nil {
		return nil
	}
	err := <-c.rebuildDone
	c.rebuildDone = nil
	return err
}

// refine implements the refinement decision (Section 5.2): replace
// less-important collection pages with more-important discovered pages.
func (c *Crawler) refine(ranks map[string]float64) error {
	inColl := make(map[string]bool, c.coll.Len())
	for _, u := range c.coll.URLs() {
		inColl[u] = true
	}

	// Candidates: discovered URLs not in the collection, best first.
	// Importance for never-crawled pages comes from the same PageRank
	// solve — they are graph nodes via their in-links (footnote 2).
	type cand struct {
		url string
		imp float64
	}
	var cands []cand
	c.all.Scan(func(info frontier.URLInfo) bool {
		if inColl[info.URL] {
			return true
		}
		imp := ranks[info.URL]
		if imp == 0 {
			// Unranked discovery: score by in-link count so fresh URLs
			// can still enter a non-full collection.
			imp = 0.1 * float64(info.InLinks)
		}
		cands = append(cands, cand{url: info.URL, imp: imp})
		return len(cands) < c.cfg.MaxCandidates
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].imp != cands[j].imp {
			return cands[i].imp > cands[j].imp
		}
		return cands[i].url < cands[j].url
	})

	// Fill free slots first.
	free := c.cfg.CollectionSize - len(inColl)
	idx := 0
	for free > 0 && idx < len(cands) {
		c.admit(cands[idx].url, cands[idx].imp)
		idx++
		free--
	}
	if idx >= len(cands) {
		return nil
	}

	// Replacement: worst collection members vs best remaining candidates.
	type member struct {
		url string
		imp float64
	}
	members := make([]member, 0, len(inColl))
	for u := range inColl {
		members = append(members, member{url: u, imp: ranks[u]})
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].imp != members[j].imp {
			return members[i].imp < members[j].imp
		}
		return members[i].url < members[j].url
	})
	maxReplace := len(members)/20 + 1 // refine gradually; avoids thrash
	replaced := 0
	mi := 0
	for idx < len(cands) && mi < len(members) && replaced < maxReplace {
		cd, mb := cands[idx], members[mi]
		if isSeed(c.cfg.Seeds, mb.url) {
			mi++ // never evict seeds; they anchor discovery
			continue
		}
		if cd.imp <= mb.imp*(1+c.cfg.EvictionHysteresis) {
			break // best candidate cannot beat the worst member
		}
		c.evict(mb.url)
		c.admit(cd.url, cd.imp)
		idx++
		mi++
		replaced++
	}
	return nil
}

// admit schedules url for immediate crawling as a (future) collection
// member: "the URL for this new page is placed on the top of CollUrls, so
// that the UpdateModule can crawl the page immediately".
func (c *Crawler) admit(url string, imp float64) {
	c.metrics.Admissions++
	c.coll.Push(url, c.day, imp) // due now = front of the queue
	c.all.SetInCollection(url, true)
}

// evict discards a page from the collection (Figure 11 steps [7]-[8]).
func (c *Crawler) evict(url string) {
	c.metrics.Evictions++
	c.coll.Remove(url)
	_ = c.shadowed.Current().Delete(url)
	if c.cfg.Update == Shadow {
		_ = c.shadowed.Shadow().Delete(url)
	}
	c.all.SetInCollection(url, false)
	delete(c.est, url)
	delete(c.lastSum, url)
	// The page's link structure stays in the graph: AllUrls remembers
	// everything discovered, and the page may be re-admitted later.
}

func isSeed(seeds []string, url string) bool {
	for _, s := range seeds {
		if s == url {
			return true
		}
	}
	return false
}
