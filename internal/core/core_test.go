package core

import (
	"testing"

	"webevolve/internal/fetch"
	"webevolve/internal/simweb"
	"webevolve/internal/store"
)

// testWeb builds a small deterministic web and fetcher.
func testWeb(t *testing.T, seed int64) (*simweb.Web, *fetch.SimFetcher) {
	t.Helper()
	w, err := simweb.New(simweb.Config{
		Seed: seed,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 3, simweb.Edu: 2, simweb.NetOrg: 1, simweb.Gov: 1,
		},
		PagesPerSite: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, fetch.NewSimFetcher(w)
}

func baseConfig(w *simweb.Web) Config {
	return Config{
		Seeds:          w.RootURLs(),
		CollectionSize: 120,
		PagesPerDay:    60,
		CycleDays:      4,
		BatchDays:      1,
		RankEveryDays:  2,
		Estimator:      EstimatorEP,
	}
}

func TestConfigValidation(t *testing.T) {
	w, _ := testWeb(t, 1)
	good := baseConfig(w)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Seeds = nil },
		func(c *Config) { c.CollectionSize = -1 },
		func(c *Config) { c.PagesPerDay = -5 },
		func(c *Config) { c.CycleDays = -1 },
		func(c *Config) { c.Mode = Batch; c.BatchDays = 100 },
		func(c *Config) { c.MinIntervalDays = 10; c.MaxIntervalDays = 1 },
		func(c *Config) { c.EvictionHysteresis = -0.1 },
	}
	for i, mutate := range bad {
		c := baseConfig(w)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	cases := map[string]string{
		Steady.String():           "steady",
		Batch.String():            "batch",
		InPlace.String():          "in-place",
		Shadow.String():           "shadow",
		FixedFreq.String():        "fixed",
		VariableFreq.String():     "variable",
		ProportionalFreq.String(): "proportional",
		EstimatorEP.String():      "EP",
		EstimatorEB.String():      "EB",
		EstimatorNaive.String():   "naive",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("enum string %q, want %q", got, want)
		}
	}
}

func TestNewRejectsNils(t *testing.T) {
	w, f := testWeb(t, 2)
	if _, err := New(baseConfig(w), nil); err == nil {
		t.Fatal("nil fetcher accepted")
	}
	if _, err := NewWithStore(baseConfig(w), f, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestCrawlerDiscoversAndFills(t *testing.T) {
	w, f := testWeb(t, 3)
	c, err := New(baseConfig(w), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got := c.Collection().Len(); got != 120 {
		t.Fatalf("collection size %d, want 120", got)
	}
	if c.AllUrls().Len() <= 120 {
		t.Fatalf("AllUrls %d: discovery did not outrun the collection", c.AllUrls().Len())
	}
	m := c.Metrics()
	if m.Fetches == 0 || m.NewPages == 0 || m.RankPasses == 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestCrawlerDetectsChanges(t *testing.T) {
	w, f := testWeb(t, 4)
	cfg := baseConfig(w)
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().ChangesDetected == 0 {
		t.Fatal("no changes detected over 30 days on a changing web")
	}
}

func TestCollectionEntriesMatchWeb(t *testing.T) {
	w, f := testWeb(t, 5)
	c, err := New(baseConfig(w), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	day := c.Day()
	err = c.Collection().Scan(func(rec store.PageRecord) bool {
		if rec.FetchedAt > day {
			t.Fatalf("record %s fetched in the future", rec.URL)
		}
		// Stored checksum must equal the web's checksum at fetch time.
		snap, err := w.FetchMeta(rec.URL, rec.FetchedAt)
		if err == nil && snap.Checksum != rec.Checksum {
			t.Fatalf("record %s checksum mismatch at fetch time", rec.URL)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVanishedPagesDropped(t *testing.T) {
	w, f := testWeb(t, 6)
	cfg := baseConfig(w)
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().NotFound == 0 {
		t.Fatal("no 404s over 120 days despite page churn")
	}
	// No dead pages may linger in the collection beyond a revisit cycle.
	day := c.Day()
	stale := 0
	_ = c.Collection().Scan(func(rec store.PageRecord) bool {
		if _, err := w.FetchMeta(rec.URL, day); err != nil {
			if day-rec.FetchedAt > 2*cfg.MaxIntervalDays {
				stale++
			}
		}
		return true
	})
	if stale > 0 {
		t.Fatalf("%d long-dead pages still stored", stale)
	}
}

func TestSeedsNeverEvicted(t *testing.T) {
	w, f := testWeb(t, 7)
	cfg := baseConfig(w)
	cfg.CollectionSize = 10 // tiny: heavy eviction pressure
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	for _, s := range cfg.Seeds {
		if !c.CollUrls().Contains(s) {
			t.Fatalf("seed %s evicted", s)
		}
	}
}

func TestEvictionKeepsSizeBounded(t *testing.T) {
	w, f := testWeb(t, 8)
	cfg := baseConfig(w)
	cfg.CollectionSize = 50
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	for day := 4.0; day <= 40; day += 4 {
		if err := c.RunUntil(day); err != nil {
			t.Fatal(err)
		}
		if got := c.CollUrls().Len(); got > 50 {
			t.Fatalf("day %v: CollUrls %d exceeds target", day, got)
		}
		if got := c.Collection().Len(); got > 50 {
			t.Fatalf("day %v: collection %d exceeds target", day, got)
		}
	}
	if c.Metrics().Evictions == 0 {
		t.Fatal("no evictions despite pressure")
	}
}

func TestBatchModeIdlesBetweenCycles(t *testing.T) {
	w, f := testWeb(t, 9)
	cfg := baseConfig(w)
	cfg.Mode = Batch
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.IdleDays <= 0 {
		t.Fatal("batch crawler never idled")
	}
	if m.Fetches == 0 {
		t.Fatal("batch crawler never fetched")
	}
}

func TestShadowModeSwapsAndCarriesForward(t *testing.T) {
	w, f := testWeb(t, 10)
	cfg := baseConfig(w)
	cfg.Update = Shadow
	cfg.Freq = VariableFreq
	cfg.MaxIntervalDays = 100 // some pages will not be recrawled each cycle
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(3.9); err != nil { // just before first swap
		t.Fatal(err)
	}
	preSwap := c.Collection().Len()
	if err := c.RunUntil(12.5); err != nil { // past swaps at 4 and 8
		t.Fatal(err)
	}
	if c.Metrics().Swaps == 0 {
		t.Fatal("no swaps in shadow mode")
	}
	if got := c.Collection().Len(); got < preSwap {
		t.Fatalf("swap lost pages: %d -> %d", preSwap, got)
	}
}

func TestEstimatorKindsRun(t *testing.T) {
	for _, kind := range []EstimatorKind{EstimatorEP, EstimatorEB, EstimatorNaive} {
		w, f := testWeb(t, 11)
		cfg := baseConfig(w)
		cfg.Estimator = kind
		cfg.Freq = VariableFreq
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(12); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if c.Metrics().Fetches == 0 {
			t.Fatalf("%s: no fetches", kind)
		}
	}
}

func TestFrequencyPoliciesRun(t *testing.T) {
	for _, fr := range []FreqPolicy{FixedFreq, VariableFreq, ProportionalFreq} {
		w, f := testWeb(t, 12)
		cfg := baseConfig(w)
		cfg.Freq = fr
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(10); err != nil {
			t.Fatalf("%s: %v", fr, err)
		}
	}
}

func TestImportanceWeightRuns(t *testing.T) {
	w, f := testWeb(t, 13)
	cfg := baseConfig(w)
	cfg.Freq = VariableFreq
	cfg.ImportanceWeight = 0.5
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(10); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (Metrics, []string) {
		w, f := testWeb(t, 14)
		c, err := New(baseConfig(w), f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(15); err != nil {
			t.Fatal(err)
		}
		return c.Metrics(), c.Collection().URLs()
	}
	m1, u1 := run()
	m2, u2 := run()
	if m1 != m2 {
		t.Fatalf("metrics diverge:\n%+v\n%+v", m1, m2)
	}
	if len(u1) != len(u2) {
		t.Fatalf("collection sizes diverge: %d vs %d", len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("collections diverge at %d: %s vs %s", i, u1[i], u2[i])
		}
	}
}

func TestCrawlerWithDiskStore(t *testing.T) {
	w, f := testWeb(t, 15)
	dir := t.TempDir()
	gen := 0
	sh, err := store.NewShadowed(nil, func() (store.Collection, error) {
		gen++
		return store.OpenDisk(dir + "/gen" + string(rune('a'+gen)))
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(w)
	cfg.CollectionSize = 30
	c, err := NewWithStore(cfg, f, sh)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if c.Collection().Len() == 0 {
		t.Fatal("disk-backed collection empty")
	}
}
