package core

import (
	"testing"

	"webevolve/internal/fetch"
	"webevolve/internal/simweb"
)

func TestSiteLevelStatsRuns(t *testing.T) {
	w, f := testWeb(t, 40)
	cfg := baseConfig(w)
	cfg.Freq = VariableFreq
	cfg.SiteLevelStats = true
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if c.siteStats == nil {
		t.Fatal("site stats not enabled")
	}
	if len(c.siteStats.bySite) == 0 {
		t.Fatal("no site aggregates accumulated")
	}
	// Pooled rates must be retrievable for crawled sites.
	found := false
	for _, u := range c.coll.URLs() {
		if r, ok := c.siteStats.rate(u); ok && r >= 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no pooled site rate available")
	}
}

func TestWorkingRatePrefersSiteSignalEarly(t *testing.T) {
	// A homogeneous site: after the site has pooled evidence, a page with
	// a one-interval history should inherit the site rate rather than its
	// own noisy estimate.
	w, err := simweb.New(simweb.Config{
		Seed:           41,
		SitesPerDomain: map[simweb.Domain]int{simweb.Com: 1},
		PagesPerSite:   50,
		Mixtures: map[simweb.Domain]simweb.Mixture{
			simweb.Com: {{Name: "m", Weight: 1, MinIntervalDays: 5, MaxIntervalDays: 5.001}},
		},
		LifespanMeanDays: map[simweb.Domain]float64{simweb.Com: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seeds:               w.RootURLs(),
		CollectionSize:      50,
		PagesPerDay:         50,
		CycleDays:           1,
		SiteLevelStats:      true,
		SiteStatsMinSamples: 10,
	}
	c, err := New(cfg, fetch.NewSimFetcher(w))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	// Every page was visited ~8 times (< MinSamples 10), so workingRate
	// should be the pooled one — and the pool, fed by 50 homogeneous
	// pages, should sit near the true 0.2/day.
	url := c.coll.URLs()[1]
	est := c.est[url]
	if est == nil {
		t.Fatal("no estimator for collection page")
	}
	rate := c.workingRate(url, est)
	if rate < 0.1 || rate > 0.4 {
		t.Fatalf("pooled working rate %v, want near 0.2", rate)
	}
	siteRate, ok := c.siteStats.rate(url)
	if !ok {
		t.Fatal("site rate unavailable")
	}
	if rate != siteRate {
		t.Fatalf("working rate %v did not use site rate %v for short history", rate, siteRate)
	}
}

func TestWorkingRateUsesOwnHistoryWhenLong(t *testing.T) {
	w, f := testWeb(t, 42)
	cfg := baseConfig(w)
	cfg.SiteLevelStats = true
	cfg.SiteStatsMinSamples = 1 // own estimate takes over immediately
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	for _, u := range c.coll.URLs() {
		est, ok := c.est[u]
		if !ok || est.hist.Accesses() < 1 {
			continue
		}
		if got, want := c.workingRate(u, est), est.rate(); got != want {
			t.Fatalf("page with history used %v instead of own rate %v", got, want)
		}
		return
	}
	t.Skip("no page with history found")
}
