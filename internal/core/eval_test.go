package core

import (
	"testing"

	"webevolve/internal/store"
)

func TestEvaluatorFreshness(t *testing.T) {
	w, _ := testWeb(t, 20)
	ev := &Evaluator{Web: w}
	coll := store.NewMem()

	// A perfectly fresh collection: snapshot everything at day 5 and
	// evaluate at day 5.
	day := 5.0
	for _, s := range w.Sites() {
		for _, u := range s.WindowURLs(day) {
			snap, err := w.FetchMeta(u, day)
			if err != nil {
				t.Fatal(err)
			}
			if err := coll.Put(store.PageRecord{URL: u, Checksum: snap.Checksum, FetchedAt: day}); err != nil {
				t.Fatal(err)
			}
		}
	}
	f, err := ev.Freshness(coll, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("snapshot freshness %v, want 1", f)
	}
	// Much later the same collection must have decayed.
	f60, err := ev.Freshness(coll, day+60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f60 >= f {
		t.Fatalf("freshness did not decay: %v -> %v", f, f60)
	}
	// Age grows over time.
	a0, err := ev.AvgAge(coll, day)
	if err != nil {
		t.Fatal(err)
	}
	a60, err := ev.AvgAge(coll, day+60)
	if err != nil {
		t.Fatal(err)
	}
	if a0 != 0 || a60 <= 0 {
		t.Fatalf("ages %v -> %v", a0, a60)
	}
}

func TestEvaluatorTargetPenalizesSmallCollections(t *testing.T) {
	w, _ := testWeb(t, 21)
	ev := &Evaluator{Web: w}
	coll := store.NewMem()
	u := w.Sites()[0].RootURL()
	snap, err := w.FetchMeta(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Put(store.PageRecord{URL: u, Checksum: snap.Checksum, FetchedAt: 0}); err != nil {
		t.Fatal(err)
	}
	full, err := ev.Freshness(coll, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	penalized, err := ev.Freshness(coll, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 || penalized != 0.1 {
		t.Fatalf("freshness full=%v penalized=%v", full, penalized)
	}
}

func TestEvaluatorQuality(t *testing.T) {
	w, f := testWeb(t, 22)
	cfg := baseConfig(w)
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(16); err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{Web: w}
	q, err := ev.Quality(c.Collection(), c.Day())
	if err != nil {
		t.Fatal(err)
	}
	if q <= 0 || q > 1 {
		t.Fatalf("quality %v out of range", q)
	}
	// Empty collection scores 0.
	if q0, err := ev.Quality(store.NewMem(), 0); err != nil || q0 != 0 {
		t.Fatalf("empty quality %v err %v", q0, err)
	}
}

func TestEvaluatorFreshnessByDomain(t *testing.T) {
	w, f := testWeb(t, 23)
	c, err := New(baseConfig(w), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{Web: w}
	byDom, err := ev.FreshnessByDomain(c.Collection(), c.Day())
	if err != nil {
		t.Fatal(err)
	}
	if len(byDom) == 0 {
		t.Fatal("no domains measured")
	}
	for dom, f := range byDom {
		if f < 0 || f > 1 {
			t.Fatalf("domain %s freshness %v", dom, f)
		}
	}
}

func TestEvaluatorRequiresWeb(t *testing.T) {
	ev := &Evaluator{}
	if _, err := ev.Freshness(store.NewMem(), 0, 0); err == nil {
		t.Fatal("nil web accepted")
	}
	if _, err := ev.Quality(store.NewMem(), 0); err == nil {
		t.Fatal("nil web accepted for quality")
	}
	if _, err := ev.AvgAge(store.NewMem(), 0); err == nil {
		t.Fatal("nil web accepted for age")
	}
	if _, err := ev.FreshnessByDomain(store.NewMem(), 0); err == nil {
		t.Fatal("nil web accepted for by-domain")
	}
}

func TestTimeAveragedFreshness(t *testing.T) {
	w, f := testWeb(t, 24)
	c, err := New(baseConfig(w), f)
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{Web: w}
	avg, series, err := ev.TimeAveragedFreshness(c, 20, 4, 8, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 8 {
		t.Fatalf("series length %d", len(series))
	}
	if avg <= 0 || avg > 1 {
		t.Fatalf("avg freshness %v", avg)
	}
	var sum float64
	for i, s := range series {
		if i > 0 && s.Day <= series[i-1].Day {
			t.Fatal("series days not increasing")
		}
		sum += s.Value
	}
	if diff := sum/8 - avg; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("avg %v inconsistent with series mean %v", avg, sum/8)
	}
	// Validation.
	if _, _, err := ev.TimeAveragedFreshness(c, 1, 0, 0, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, _, err := ev.TimeAveragedFreshness(c, c.Day()-1, 0, 4, 0); err == nil {
		t.Fatal("end before start accepted")
	}
}

func TestPeriodicCrawler(t *testing.T) {
	w, f := testWeb(t, 25)
	cfg := baseConfig(w)
	p, err := NewPeriodic(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunUntil(9); err != nil { // two full cycles (4 days each)
		t.Fatal(err)
	}
	if p.Metrics().Swaps < 2 {
		t.Fatalf("swaps %d", p.Metrics().Swaps)
	}
	if p.Collection().Len() == 0 {
		t.Fatal("periodic collection empty after swaps")
	}
	if p.Collection().Len() > cfg.CollectionSize {
		t.Fatalf("periodic collection overgrew: %d", p.Collection().Len())
	}
	// Peak load arithmetic.
	if p.PeakLoadRatio() != cfg.CycleDays/cfg.BatchDays {
		t.Fatalf("peak ratio %v", p.PeakLoadRatio())
	}
	if p.PeakPagesPerDay() <= p.SteadyEquivalentPagesPerDay() {
		t.Fatal("batch peak not above steady rate")
	}
}

func TestPeriodicRejectsNilFetcher(t *testing.T) {
	w, _ := testWeb(t, 26)
	if _, err := NewPeriodic(baseConfig(w), nil); err == nil {
		t.Fatal("nil fetcher accepted")
	}
}

// TestIncrementalBeatsPeriodic is the headline end-to-end shape: at equal
// average bandwidth, the incremental crawler's time-averaged freshness
// must dominate the periodic crawler's (Figure 10 / Section 4).
func TestIncrementalBeatsPeriodic(t *testing.T) {
	results := make(map[string]float64)
	for _, mode := range []string{"incremental", "periodic"} {
		w, f := testWeb(t, 27)
		cfg := baseConfig(w)
		cfg.CollectionSize = 150
		cfg.PagesPerDay = 150.0 / cfg.CycleDays // one collection pass per cycle
		var r Runner
		var err error
		if mode == "incremental" {
			cfg.Mode, cfg.Update, cfg.Freq = Steady, InPlace, VariableFreq
			r, err = New(cfg, f)
		} else {
			r, err = NewPeriodic(cfg, f)
		}
		if err != nil {
			t.Fatal(err)
		}
		ev := &Evaluator{Web: w}
		avg, _, err := ev.TimeAveragedFreshness(r, 60, 8, 16, cfg.CollectionSize)
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = avg
	}
	if results["incremental"] <= results["periodic"] {
		t.Fatalf("incremental %.3f did not beat periodic %.3f",
			results["incremental"], results["periodic"])
	}
}

// TestShadowingCostOrdering verifies the Table 2 ordering end-to-end on
// the live simulator: steady in-place >= batch in-place >= steady shadow.
func TestShadowingCostOrdering(t *testing.T) {
	run := func(mode Mode, upd UpdateStyle) float64 {
		w, f := testWeb(t, 28)
		cfg := baseConfig(w)
		cfg.CollectionSize = 150
		cfg.PagesPerDay = 150.0 / cfg.CycleDays
		cfg.Mode, cfg.Update, cfg.Freq = mode, upd, FixedFreq
		c, err := New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		ev := &Evaluator{Web: w}
		avg, _, err := ev.TimeAveragedFreshness(c, 60, 12, 16, cfg.CollectionSize)
		if err != nil {
			t.Fatal(err)
		}
		return avg
	}
	steadyIn := run(Steady, InPlace)
	steadyShadow := run(Steady, Shadow)
	if steadyShadow >= steadyIn {
		t.Fatalf("steady shadow %.3f not below steady in-place %.3f", steadyShadow, steadyIn)
	}
}
