package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"webevolve/internal/changefreq"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
)

// This file is the concurrent dispatch core of the crawl engine: the
// UpdateModule pops *batches* of due URLs from the sharded frontier,
// hands them to a pool of CrawlModule workers over a channel, and then
// applies the results in pop order with batched store writes and batched
// change-frequency updates.
//
// Determinism is preserved by construction, so the simulated experiments
// are reproducible at any worker count:
//
//   - popBatch assigns each job its virtual fetch day while popping in
//     global (due, priority, URL) order — exactly the schedule the
//     sequential loop would have produced;
//
//   - fetchBatch groups jobs by frontier shard and dispatches whole
//     groups, so all fetches of one site run on one worker in virtual-day
//     order (the simulated web advances per site and requires monotone
//     fetch days within a site);
//
//   - applyBatch mutates crawler state sequentially in pop order, so
//     change detection, link discovery, and scheduling decisions are
//     independent of worker interleaving.

// crawlJob is one unit of CrawlModule work: a URL with its assigned
// virtual fetch day and its frontier shard.
type crawlJob struct {
	idx   int // batch position; applyBatch replays results in this order
	url   string
	day   float64
	shard int
}

// popSteadyBatch pops the next dispatch round of due URLs for the
// steady-mode loop, stamping each with the virtual day the sequential
// crawler would have fetched it at. No job is scheduled at or past
// horizon (the next rank/swap/stop event), and the batch never spans
// more than MinIntervalDays of virtual time, so a URL rescheduled by
// this batch can never have been due within it — which makes the pop
// sequence identical to the sequential loop's.
func (c *Crawler) popSteadyBatch(horizon, perFetch float64) []crawlJob {
	maxJobs := c.cfg.DispatchBatch
	if w := int(c.cfg.MinIntervalDays / perFetch); w < maxJobs {
		maxJobs = w
	}
	if maxJobs < 1 {
		maxJobs = 1
	}
	var jobs []crawlJob
	d := c.day
	for len(jobs) < maxJobs && d < horizon {
		e, ok := c.coll.PopDue(d)
		if !ok {
			break
		}
		jobs = append(jobs, crawlJob{idx: len(jobs), url: e.URL, day: d, shard: c.coll.ShardOf(e.URL)})
		d += perFetch
	}
	return jobs
}

// fetchBatch runs the jobs through the worker pool and returns their
// results indexed like jobs. Jobs are grouped by shard and each group is
// dispatched as a unit, preserving per-site fetch order.
func (c *Crawler) fetchBatch(jobs []crawlJob) ([]fetch.Result, error) {
	results := make([]fetch.Result, len(jobs))
	if c.cfg.Workers <= 1 || len(jobs) <= 1 {
		for _, j := range jobs {
			res, err := c.fetcher.Fetch(j.url, j.day)
			if err != nil {
				return nil, fmt.Errorf("core: fetching %s: %w", j.url, err)
			}
			results[j.idx] = res
		}
		return results, nil
	}

	// Group by shard, keeping each group's jobs in day order.
	order := make([]int, 0, len(jobs))
	groups := make(map[int][]crawlJob, len(jobs))
	for _, j := range jobs {
		if _, ok := groups[j.shard]; !ok {
			order = append(order, j.shard)
		}
		groups[j.shard] = append(groups[j.shard], j)
	}
	work := make(chan []crawlJob, len(order))
	for _, sid := range order {
		work <- groups[sid]
	}
	close(work)

	workers := c.cfg.Workers
	if workers > len(order) {
		workers = len(order)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range work {
				for _, j := range group {
					// The whole batch is discarded on error; stop paying
					// fetch latency for it as soon as any worker fails.
					if failed.Load() {
						return
					}
					res, err := c.fetcher.Fetch(j.url, j.day)
					if err != nil {
						err := fmt.Errorf("core: fetching %s: %w", j.url, err)
						errOnce.Do(func() { firstErr = err })
						failed.Store(true)
						return
					}
					results[j.idx] = res
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// applyBatch folds a dispatch round's results into the crawler, in pop
// order (Figure 11 steps [3]-[12], batched). Three passes:
//
//  1. change detection, metrics, link extraction and drops — everything
//     that feeds AllUrls and the web graph, in pop order;
//  2. one batched write of all crawled records to the collection;
//  3. batched change-frequency updates and rescheduling.
func (c *Crawler) applyBatch(jobs []crawlJob, results []fetch.Result) error {
	type outcome struct {
		job     crawlJob
		changed bool
	}
	live := make([]outcome, 0, len(jobs))
	recs := make([]store.PageRecord, 0, len(jobs))

	for i := range jobs {
		j := jobs[i]
		res := &results[i]
		c.metrics.Fetches++
		c.metrics.BytesFetched += int64(res.Size)
		if res.NotFound {
			c.metrics.NotFound++
			c.dropPage(j.url)
			continue
		}
		prevSum, seen := c.lastSum[j.url]
		changed := seen && prevSum != res.Checksum
		if changed {
			c.metrics.ChangesDetected++
		}
		if !seen {
			c.metrics.NewPages++
		}
		c.lastSum[j.url] = res.Checksum

		rec := store.PageRecord{
			URL:        j.url,
			Checksum:   res.Checksum,
			FetchedAt:  j.day,
			Version:    res.Version,
			Links:      res.Links,
			Importance: c.importance[j.url],
		}
		if c.cfg.StoreContent {
			rec.Content = res.Content
		}
		recs = append(recs, rec)
		c.all.SetInCollection(j.url, true)

		// Figure 11 steps [11]-[12]: extract URLs, extend AllUrls; also
		// feed the link structure the RankingModule scans.
		c.graph.SetLinks(j.url, res.Links)
		for _, l := range res.Links {
			c.all.AddLink(j.url, l, j.day)
		}
		live = append(live, outcome{job: j, changed: changed})
	}

	if len(recs) > 0 {
		if err := c.writeTarget().PutBatch(recs); err != nil {
			return fmt.Errorf("core: storing batch: %w", err)
		}
	}

	// Reschedules are accumulated and shipped as one PushBatch: the
	// final frontier state is push-order independent, and a remote
	// frontier pays one round trip per server per dispatch round
	// instead of one per URL.
	pushes := make([]frontier.Entry, 0, len(live))
	for _, o := range live {
		j := o.job
		est, ok := c.est[j.url]
		if !ok {
			var err error
			est, err = newEstimator(c.cfg.Estimator)
			if err != nil {
				return err
			}
			c.est[j.url] = est
		}
		prevVisit, hadVisit := est.hist.Last()
		if err := est.record(changefreq.Observation{Time: j.day, Changed: o.changed}, c.cfg.HistoryWindowDays); err != nil {
			return fmt.Errorf("core: %s: %w", j.url, err)
		}
		if c.siteStats != nil && hadVisit && j.day > prevVisit {
			c.siteStats.update(j.url, j.day, j.day-prevVisit, o.changed)
		}
		interval := c.policy.Interval(j.url, c.workingRate(j.url, est), c.importance[j.url])
		interval = scheduler.Clamp(interval, c.cfg.MinIntervalDays, c.cfg.MaxIntervalDays)
		pushes = append(pushes, frontier.Entry{URL: j.url, Due: j.day + interval, Priority: c.importance[j.url]})
	}
	if len(pushes) > 0 {
		c.coll.PushBatch(pushes)
	}
	return nil
}

// crawlRound pops, fetches, and applies one dispatch round of the
// steady loop, advancing virtual time past the last fetch. It reports
// whether any job was dispatched.
func (c *Crawler) crawlRound(horizon, perFetch float64) (bool, error) {
	jobs := c.popSteadyBatch(horizon, perFetch)
	if len(jobs) == 0 {
		return false, nil
	}
	results, err := c.fetchBatch(jobs)
	if err != nil {
		return true, err
	}
	if err := c.applyBatch(jobs, results); err != nil {
		return true, err
	}
	c.day = jobs[len(jobs)-1].day + perFetch
	return true, nil
}

// steadyHorizon is the virtual instant the steady loop must pause
// dispatching at: the run limit, the next ranking pass, or (under
// shadowing) the next swap.
func (c *Crawler) steadyHorizon(until float64) float64 {
	horizon := math.Min(until, c.nextRank)
	if c.cfg.Update == Shadow {
		horizon = math.Min(horizon, c.nextSwap)
	}
	return horizon
}
