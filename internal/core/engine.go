package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"webevolve/internal/changefreq"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/obs"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
	"webevolve/internal/webgraph"
)

// This file is the concurrent dispatch core of the crawl engine: a
// pipeline over the unified dispatcher (dispatch.go). The UpdateModule
// pops *rounds* of due URLs from the sharded frontier, hands them to
// the worker pool grouped per site, and folds the results back in pop
// order — and while round N's results are being folded in, rounds N+1
// and N+2 are already popped and fetching on the same workers, so
// fetch latency, per-URL estimator math, and apply CPU overlap instead
// of serializing.
//
// Determinism is preserved by construction, so the simulated
// experiments are reproducible at any worker count:
//
//   - popSteadyRound assigns each job its virtual fetch day while
//     popping in global (due, priority, URL) order — exactly the
//     schedule the sequential loop would have produced. Popping ahead
//     of unapplied rounds is safe inside the reschedule window: a
//     round rescheduling a URL pushes it at least MinIntervalDays of
//     virtual time past its fetch day, so as long as no job is popped
//     at or past oldestUnappliedRoundStart + MinIntervalDays, the
//     pending reschedules can neither be missed (they are not due yet)
//     nor double-taken (their URLs left the frontier when popped). The
//     pipelined pop sequence is therefore the sequential one.
//
//   - dispatchRound groups jobs by site, and the pool runs one site's
//     groups strictly in submission order (dispatch.go's site lines),
//     so all fetches of one site happen in virtual-day order even
//     across overlapping rounds (the simulated web advances per site
//     and requires monotone fetch days within a site). Groups go out
//     largest-first (LPT), so a skewed round with one hot site cannot
//     straggle behind the short groups.
//
//   - The per-URL scheduling math — change detection, change-history
//     recording, rate estimation — runs on the worker right after its
//     fetch, against state resolved on the engine goroutine at pop
//     time (the job carries its estimator and site-aggregate pointers,
//     so workers never touch shared maps). A round's URLs are unique,
//     overlapping rounds never share a URL (the reschedule window
//     again), and a site's jobs are worker-serial, so every estimator
//     and site aggregate still sees its observations strictly in pop
//     order.
//
//   - What remains of the apply runs on the engine goroutine, split in
//     two. applySchedule folds the round into everything the next pop
//     depends on — metrics, checksum table, drops, reschedule
//     commits — sequentially in pop order. applyContent (store
//     PutBatch, link extraction into AllUrls, web-graph updates) only
//     feeds the ranking pass, which never runs mid-round, so it is
//     deferred to overlap with the younger rounds' in-flight fetches.

// crawlJob is one unit of CrawlModule work: a URL with its assigned
// virtual fetch day, the scheduling state resolved at pop time, and
// the fetch/scheduling results the worker writes in place.
type crawlJob struct {
	idx  int // pop position; results are applied in this order
	url  string
	site string
	day  float64

	// Resolved on the engine goroutine at pop time, so workers never
	// read shared maps.
	prevSum uint64
	seen    bool
	est     *estimator
	agg     *changefreq.SiteAggregate // nil unless SiteLevelStats

	// Written by the worker.
	res     fetch.Result
	changed bool
	rate    float64 // working change-rate estimate (hybrid policy)
	pooled  bool    // an observation was added to agg
}

// outcome is applySchedule's per-job verdict, consumed by applyContent.
type outcome struct {
	job     *crawlJob
	dropped bool // vanished page: content phase finishes the drop
}

// roundState is one dispatch round's reusable storage: the jobs in pop
// order, their site grouping, and the pool completion handle.
// Depth+1 instances rotate on the Crawler: one round being applied
// while up to depth more fetch.
type roundState struct {
	jobs   []crawlJob
	ptrs   []*crawlJob
	groups []dispatchGroup
	handle *roundHandle
	err    error // pop-time failure (estimator construction)

	// id and dispatchedAt identify the round in the process trace and
	// time its fetch phase; observability only (see metrics.go).
	id           uint64
	dispatchedAt time.Time
}

// roundSeq issues process-unique round IDs for the trace; a global so
// concurrent engines in one process never collide in the shared sink.
var roundSeq atomic.Uint64

func (r *roundState) reset() {
	r.jobs = r.jobs[:0]
	r.ptrs = r.ptrs[:0]
	r.groups = r.groups[:0]
	r.handle = nil
	r.err = nil
}

// fetchJob is the dispatcher's work function: one CrawlModule fetch
// plus the per-URL scheduling math that only depends on this URL's own
// state — change detection against the checksum resolved at pop time,
// the change-history observation, the site-aggregate pooling, and the
// working-rate estimate. Everything it touches is either job-local or
// serialized by the pool's per-site lines.
func (c *Crawler) fetchJob(_ int, j *crawlJob) error {
	res, err := c.fetcher.Fetch(j.url, j.day)
	if err != nil {
		return fmt.Errorf("core: fetching %s: %w", j.url, err)
	}
	j.res = res
	if res.NotFound {
		return nil
	}
	j.changed = j.seen && j.prevSum != res.Checksum
	prevVisit, hadVisit := j.est.hist.Last()
	if err := j.est.record(changefreq.Observation{Time: j.day, Changed: j.changed}, c.cfg.HistoryWindowDays); err != nil {
		return fmt.Errorf("core: %s: %w", j.url, err)
	}
	if j.agg != nil && hadVisit && j.day > prevVisit {
		poolSiteObservation(j.agg, j.day, j.day-prevVisit, j.changed)
		j.pooled = true
	}
	j.rate = c.hybridRate(j)
	return nil
}

// hybridRate is the worker-side working-rate estimate: the page's own
// rate once its history is long enough, the pooled site rate before
// that (sitestats.go; mirrors Crawler.workingRate over pop-time
// resolved pointers).
func (c *Crawler) hybridRate(j *crawlJob) float64 {
	pageRate := j.est.rate()
	if j.agg == nil || j.est.hist.Accesses() >= c.cfg.SiteStatsMinSamples {
		return pageRate
	}
	if est, err := j.agg.Estimate(); err == nil {
		return est.Rate
	}
	return pageRate
}

// resolveJob fills a job's pop-time scheduling state.
func (c *Crawler) resolveJob(j *crawlJob) error {
	j.site = webgraph.SiteOf(j.url)
	j.prevSum, j.seen = c.lastSum[j.url]
	est, ok := c.est[j.url]
	if !ok {
		var err error
		est, err = newEstimator(c.cfg.Estimator)
		if err != nil {
			return err
		}
		c.est[j.url] = est
	}
	j.est = est
	if c.siteStats != nil {
		j.agg = c.siteStats.entry(j.site)
	}
	return nil
}

// steadyRoundCap returns the pipeline depth and per-round job cap for
// the steady loop. With BatchSync the engine reverts to the pre-
// pipelining shape: one round in flight, capped to the reschedule
// window, no gap jumping.
func (c *Crawler) steadyRoundCap(perFetch float64) (depth, maxJobs int) {
	maxJobs = c.cfg.DispatchBatch
	if c.cfg.BatchSync {
		if w := int(c.cfg.MinIntervalDays / perFetch); w < maxJobs {
			maxJobs = w
		}
		if maxJobs < 1 {
			maxJobs = 1
		}
		return 1, maxJobs
	}
	return 4, maxJobs
}

// popSteadyRound pops the next dispatch round of due URLs for the
// steady-mode loop, stamping each with the virtual day the sequential
// crawler would have fetched it at, and advances virtual time past the
// last fetch. Gaps in the due schedule are idled over inside the round
// (exactly the jumps the sequential loop's idle path would take, with
// the same IdleDays accounting), so sparse trickles of due URLs still
// fill whole rounds and fetch in parallel.
//
// No job is scheduled at or past horizon (the next rank/swap/stop
// event) or past the reschedule window: windowFloor is the first pop
// day of the oldest round whose reschedules have not yet committed
// (+Inf when everything is applied), and no pop may reach
// windowFloor + MinIntervalDays — nor stray more than MinIntervalDays
// past this round's own first job. Within those bounds the pipelined
// pop sequence is exactly the sequential loop's (see the file
// comment).
func (c *Crawler) popSteadyRound(r *roundState, horizon, perFetch float64, maxJobs int, windowFloor float64) {
	r.reset()
	d := c.day
	limit := horizon
	if !math.IsInf(windowFloor, 1) {
		limit = math.Min(limit, windowFloor+c.cfg.MinIntervalDays)
	}
	for len(r.jobs) < maxJobs && d < limit {
		e, ok := c.rounds.popDue(d)
		if !ok {
			if c.cfg.BatchSync {
				break // pre-pipelining rounds end at the first gap
			}
			// Nothing due at d: jump to the next poppable instant if it
			// is still inside this round's window; otherwise leave the
			// remaining idle time to the steady loop.
			ev, evOK := c.rounds.nextEvent()
			if !evOK || ev >= limit || ev <= d {
				break
			}
			c.metrics.IdleDays += ev - d
			d = ev
			continue
		}
		r.jobs = append(r.jobs, crawlJob{idx: len(r.jobs), url: e.URL, day: d})
		if err := c.resolveJob(&r.jobs[len(r.jobs)-1]); err != nil {
			// Drop the half-resolved job: dispatching it would hand the
			// workers a nil estimator. The error still ends the run via
			// roundState.err.
			r.jobs = r.jobs[:len(r.jobs)-1]
			r.err = err
			break
		}
		if len(r.jobs) == 1 {
			// This round's own reschedules bound how far it may span.
			limit = math.Min(limit, d+c.cfg.MinIntervalDays)
		}
		d += perFetch
	}
	if n := len(r.jobs); n > 0 {
		c.day = r.jobs[n-1].day + perFetch
	}
}

// dispatchRound groups the round's jobs by site and starts them on the
// worker pool. Jobs of one site form one group, kept in pop (and
// therefore day) order and keyed by site, so the pool's per-site lines
// keep a site's fetches ordered even across overlapping rounds; groups
// are dispatched largest-first so the longest site cannot become the
// round's straggler.
func (c *Crawler) dispatchRound(r *roundState) {
	for i := range r.jobs {
		r.ptrs = append(r.ptrs, &r.jobs[i])
	}
	if len(r.jobs) > 1 {
		// Group by site: stable-sort the job pointers by site, keeping
		// pop order within a site, then slice out the runs.
		sort.SliceStable(r.ptrs, func(i, j int) bool {
			return r.ptrs[i].site < r.ptrs[j].site
		})
		start := 0
		for i := 1; i <= len(r.ptrs); i++ {
			if i < len(r.ptrs) && r.ptrs[i].site == r.ptrs[start].site {
				continue
			}
			r.groups = append(r.groups, dispatchGroup{jobs: r.ptrs[start:i], site: r.ptrs[start].site})
			start = i
		}
		// Largest group first (LPT): the round finishes when its last
		// group does, so long groups must start early. Ties break by
		// first-job pop position to keep dispatch deterministic.
		sort.SliceStable(r.groups, func(i, j int) bool {
			if len(r.groups[i].jobs) != len(r.groups[j].jobs) {
				return len(r.groups[i].jobs) > len(r.groups[j].jobs)
			}
			return r.groups[i].jobs[0].idx < r.groups[j].jobs[0].idx
		})
	} else {
		r.groups = append(r.groups, dispatchGroup{jobs: r.ptrs, site: r.ptrs[0].site})
	}
	r.handle = c.pool.startRound(r.groups)
}

// pipelineRounds drives the pipeline: popNext fills the next round
// (empty = stop), receiving the first pop day of the oldest round
// whose reschedules are still uncommitted (+Inf when none are). Up to
// depth rounds fetch on the pool while the oldest completed round is
// applied; the frontier-facing schedule phase runs as soon as a
// round's fetches land, and the content phase overlaps the younger
// rounds' in-flight fetches. It reports whether any round was
// dispatched.
//
// With Config.BatchSync set (depth 1, content applied before the next
// pop), the loop degenerates to the pre-pipelining batch-synchronous
// behavior, kept for A/B benchmarking.
func (c *Crawler) pipelineRounds(depth int, popNext func(r *roundState, windowFloor float64)) (bool, error) {
	if depth < 1 {
		depth = 1
	}
	// depth rounds in flight plus the one being applied.
	for len(c.roundBufs) < depth+1 {
		c.roundBufs = append(c.roundBufs, &roundState{})
	}
	free := append([]*roundState(nil), c.roundBufs[:depth+1]...)
	var inflight []*roundState
	var popErr error
	dispatch := func() bool {
		if popErr != nil {
			return false
		}
		floor := math.Inf(1)
		if len(inflight) > 0 {
			floor = inflight[0].jobs[0].day
		}
		r := free[0]
		popStart := time.Now()
		popNext(r, floor)
		if r.err != nil {
			popErr = r.err
		}
		if len(r.jobs) == 0 {
			return false
		}
		r.id = roundSeq.Add(1)
		engineRounds.Inc()
		engineRoundJobs.Observe(float64(len(r.jobs)))
		phasePop.Observe(time.Since(popStart).Seconds())
		obs.DefaultTrace.Span("pop", r.id, len(r.jobs), popStart)
		free = free[1:]
		r.dispatchedAt = time.Now()
		c.dispatchRound(r)
		inflight = append(inflight, r)
		engineInflightRounds.Set(int64(len(inflight)))
		return true
	}
	abort := func() {
		handles := make([]*roundHandle, len(inflight))
		for i, r := range inflight {
			handles[i] = r.handle
		}
		c.pool.abort(handles)
	}
	// Prime the pipeline to its depth.
	for i := 0; i < depth && dispatch(); i++ {
	}
	if len(inflight) == 0 {
		return false, popErr
	}
	for len(inflight) > 0 {
		cur := inflight[0]
		err := c.pool.wait(cur.handle)
		phaseFetch.Observe(time.Since(cur.dispatchedAt).Seconds())
		obs.DefaultTrace.Span("fetch", cur.id, len(cur.jobs), cur.dispatchedAt)
		if err != nil {
			inflight = inflight[1:]
			abort()
			return true, err
		}
		inflight = inflight[1:]
		engineInflightRounds.Set(int64(len(inflight)))
		if err := c.applySchedule(cur); err != nil {
			abort()
			return true, err
		}
		if c.cfg.BatchSync {
			if err := c.applyContent(cur); err != nil {
				abort()
				return true, err
			}
		}
		// Top the pipeline back up, then fold in cur's content while
		// the younger rounds fetch.
		for len(inflight) < depth && dispatch() {
		}
		if !c.cfg.BatchSync {
			if err := c.applyContent(cur); err != nil {
				abort()
				return true, err
			}
		}
		free = append(free, cur)
	}
	return true, popErr
}

// applySchedule is the frontier phase of folding a round in (Figure 11
// steps [3]-[12], batched): sequentially in pop order, it counts
// metrics, folds the workers' change verdicts into the checksum table,
// turns their rate estimates into reschedule intervals, and commits
// all frontier mutations (drops and one PushBatch) — everything the
// next round's pop depends on. Results land in c.live for the content
// phase.
func (c *Crawler) applySchedule(r *roundState) error {
	start := time.Now()
	defer func() {
		phaseApplySchedule.Observe(time.Since(start).Seconds())
		obs.DefaultTrace.Span("apply_schedule", r.id, len(r.jobs), start)
	}()
	// First consumer of the revisit plan after a ranking pass: wait
	// out the plan rebuild that overlapped this round's fetches.
	if err := c.joinRebuild(); err != nil {
		return err
	}
	c.live = c.live[:0]
	c.pushes = c.pushes[:0]
	c.removes = c.removes[:0]

	for i := range r.jobs {
		j := &r.jobs[i]
		c.metrics.Fetches++
		c.metrics.BytesFetched += int64(j.res.Size)
		if j.res.NotFound {
			c.metrics.NotFound++
			c.dropSchedule(j.url)
			c.live = append(c.live, outcome{job: j, dropped: true})
			continue
		}
		if j.changed {
			c.metrics.ChangesDetected++
		}
		if !j.seen {
			c.metrics.NewPages++
		}
		c.lastSum[j.url] = j.res.Checksum
		if j.pooled {
			c.siteStats.noteContribution(j.url)
		}
		interval := c.policy.Interval(j.url, j.rate, c.importance[j.url])
		interval = scheduler.Clamp(interval, c.cfg.MinIntervalDays, c.cfg.MaxIntervalDays)
		c.pushes = append(c.pushes, frontier.Entry{URL: j.url, Due: j.day + interval, Priority: c.importance[j.url]})
		c.live = append(c.live, outcome{job: j})
	}

	// Reschedules ship as one batch: the final frontier state is
	// push-order independent, and a remote frontier pays one round trip
	// per server per dispatch round instead of one per URL (together
	// with the round's pops and drops — see rounds.go). Only the
	// steady loop pops from the frontier, so only it needs the commit
	// to return fresh pop candidates.
	pushStart := time.Now()
	c.rounds.commitRound(c.removes, c.pushes, c.cfg.Mode != Batch)
	phasePush.Observe(time.Since(pushStart).Seconds())
	obs.DefaultTrace.Span("push", r.id, len(c.pushes), pushStart)
	return nil
}

// dropSchedule is the frontier/estimator half of dropping a vanished
// page: everything the next pop or estimator update could observe. The
// store/graph half runs in applyContent.
func (c *Crawler) dropSchedule(url string) {
	c.removes = append(c.removes, url)
	delete(c.est, url)
	delete(c.lastSum, url)
	if c.siteStats != nil {
		c.siteStats.forget(url)
	}
}

// applyContent is the deferred heavy phase: store writes, link
// extraction into AllUrls, and web-graph updates for the round's
// outcomes, still in pop order. Nothing here is read by popping or
// scheduling, only by the ranking pass and by readers of the
// collection — which never run mid-round — so this phase overlaps the
// younger rounds' fetches.
func (c *Crawler) applyContent(r *roundState) error {
	start := time.Now()
	defer func() {
		phaseApplyContent.Observe(time.Since(start).Seconds())
		obs.DefaultTrace.Span("apply_content", r.id, len(r.jobs), start)
	}()
	c.recs = c.recs[:0]
	for _, o := range c.live {
		j := o.job
		if o.dropped {
			_ = c.shadowed.Current().Delete(j.url)
			if c.cfg.Update == Shadow {
				_ = c.shadowed.Shadow().Delete(j.url)
			}
			c.all.SetInCollection(j.url, false)
			c.graph.RemovePage(j.url)
			continue
		}
		rec := store.PageRecord{
			URL:        j.url,
			Checksum:   j.res.Checksum,
			FetchedAt:  j.day,
			Version:    j.res.Version,
			Links:      j.res.Links,
			Importance: c.importance[j.url],
		}
		if c.cfg.StoreContent {
			rec.Content = j.res.Content
		}
		c.recs = append(c.recs, rec)
		c.all.SetInCollection(j.url, true)

		// Figure 11 steps [11]-[12]: extract URLs, extend AllUrls; also
		// feed the link structure the RankingModule scans. A revisit
		// with an unchanged checksum has byte-identical content and
		// therefore identical links, all already in the graph and in
		// AllUrls from its last visit — skip the re-walk (and its
		// allocations) entirely.
		if j.changed || !j.seen {
			c.graph.SetLinks(j.url, j.res.Links)
			for _, l := range j.res.Links {
				c.all.AddLink(j.url, l, j.day)
			}
		}
	}
	if len(c.recs) > 0 {
		if err := c.writeTarget().PutBatch(c.recs); err != nil {
			return fmt.Errorf("core: storing batch: %w", err)
		}
	}
	return nil
}

// steadyHorizon is the virtual instant the steady loop must pause
// dispatching at: the run limit, the next ranking pass, or (under
// shadowing) the next swap.
func (c *Crawler) steadyHorizon(until float64) float64 {
	horizon := math.Min(until, c.nextRank)
	if c.cfg.Update == Shadow {
		horizon = math.Min(horizon, c.nextSwap)
	}
	return horizon
}
