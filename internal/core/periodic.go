package core

import (
	"errors"
	"fmt"
	"math"

	"webevolve/internal/fetch"
	"webevolve/internal/store"
)

// Periodic is the paper's periodic-crawler baseline (the right-hand side
// of Figure 10): batch-mode, shadowing, fixed frequency — and, unlike the
// incremental crawler refreshing a managed URL set, it rebuilds its
// collection *from scratch* each cycle: "the crawler builds a brand new
// collection ... and then replaces the old collection with this brand new
// one" (Section 1). New pages therefore become visible only at the end of
// the crawl in which they are first discovered.
type Periodic struct {
	cfg     Config
	fetcher fetch.Fetcher

	shadowed *store.Shadowed
	day      float64
	metrics  Metrics
}

// NewPeriodic builds the baseline crawler. Only Seeds, CollectionSize,
// CycleDays, BatchDays, PagesPerDay and StoreContent are honoured from
// cfg; the mode/update/frequency knobs are fixed by definition.
func NewPeriodic(cfg Config, f fetch.Fetcher) (*Periodic, error) {
	cfg.Mode = Batch
	cfg.Update = Shadow
	cfg.Freq = FixedFreq
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if f == nil {
		return nil, errors.New("core: nil fetcher")
	}
	return &Periodic{
		cfg:      cfg,
		fetcher:  f,
		shadowed: store.NewShadowedMem(),
	}, nil
}

// Day returns the current virtual day.
func (p *Periodic) Day() float64 { return p.day }

// Metrics returns a copy of the counters.
func (p *Periodic) Metrics() Metrics { return p.metrics }

// Collection returns the collection visible to users.
func (p *Periodic) Collection() store.Collection { return p.shadowed.Current() }

// RunUntil advances the crawl to the given virtual day.
func (p *Periodic) RunUntil(until float64) error {
	for p.day < until {
		cycleStart := p.day
		if err := p.crawlCycle(until); err != nil {
			return err
		}
		if _, err := p.shadowed.Swap(); err != nil {
			return err
		}
		p.metrics.Swaps++
		next := cycleStart + p.cfg.CycleDays
		if next > p.day {
			p.metrics.IdleDays += next - p.day
			p.day = next
		}
	}
	return nil
}

// crawlCycle performs one from-scratch BFS crawl of up to CollectionSize
// pages into the shadow collection, paced so the whole crawl spans
// BatchDays.
func (p *Periodic) crawlCycle(until float64) error {
	perFetch := p.cfg.BatchDays / float64(p.cfg.CollectionSize)
	shadow := p.shadowed.Shadow()
	queue := append([]string(nil), p.cfg.Seeds...)
	seen := make(map[string]struct{}, p.cfg.CollectionSize)
	for _, s := range p.cfg.Seeds {
		seen[s] = struct{}{}
	}
	stored := 0
	for len(queue) > 0 && stored < p.cfg.CollectionSize && p.day < until {
		url := queue[0]
		queue = queue[1:]
		res, err := p.fetcher.Fetch(url, p.day)
		if err != nil {
			return fmt.Errorf("core: periodic fetch %s: %w", url, err)
		}
		p.metrics.Fetches++
		p.metrics.BytesFetched += int64(res.Size)
		p.day += perFetch
		if res.NotFound {
			p.metrics.NotFound++
			continue
		}
		rec := store.PageRecord{
			URL:       url,
			Checksum:  res.Checksum,
			FetchedAt: res.Day,
			Version:   res.Version,
			Links:     res.Links,
		}
		if p.cfg.StoreContent {
			rec.Content = res.Content
		}
		if err := shadow.Put(rec); err != nil {
			return err
		}
		stored++
		for _, l := range res.Links {
			if _, ok := seen[l]; ok {
				continue
			}
			seen[l] = struct{}{}
			queue = append(queue, l)
		}
	}
	return nil
}

// PeakPagesPerDay reports the crawl-phase fetch rate, for the peak-load
// comparison of Section 4: a batch crawler doing a cycle's work in
// BatchDays runs at CycleDays/BatchDays times the steady rate.
func (p *Periodic) PeakPagesPerDay() float64 {
	return float64(p.cfg.CollectionSize) / p.cfg.BatchDays
}

// SteadyEquivalentPagesPerDay is the average rate over a full cycle.
func (p *Periodic) SteadyEquivalentPagesPerDay() float64 {
	return float64(p.cfg.CollectionSize) / p.cfg.CycleDays
}

// PeakLoadRatio is Peak/SteadyEquivalent (== CycleDays/BatchDays).
func (p *Periodic) PeakLoadRatio() float64 {
	return math.Max(1, p.cfg.CycleDays/p.cfg.BatchDays)
}
