package core

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webevolve/internal/fetch"
)

// failingFetcher errors on the nth fetch (1-based) and every fetch
// after it.
type failingFetcher struct {
	inner fetch.Fetcher
	n     atomic.Int64
	at    int64
}

func (f *failingFetcher) Fetch(url string, day float64) (fetch.Result, error) {
	if f.n.Add(1) >= f.at {
		return fetch.Result{}, errors.New("injected fetch failure")
	}
	return f.inner.Fetch(url, day)
}

// TestPipelineFetchErrorDrains is the pipeline's failure contract: a
// fetch error in the middle of overlapped rounds must surface from
// RunUntil, drain every in-flight round (no goroutine leak), and leave
// no partially applied round behind — the collection and frontier
// reflect only rounds that were folded in completely.
func TestPipelineFetchErrorDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	w, f := testWeb(t, 31)
	cfg := baseConfig(w)
	cfg.Workers = 8
	cfg.Shards = 16
	cfg.DispatchBatch = 32
	ff := &failingFetcher{inner: fetch.Delayed{Base: f, Delay: 50 * time.Microsecond}, at: 150}
	c, err := New(cfg, ff)
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunUntil(15)
	if err == nil || !strings.Contains(err.Error(), "injected fetch failure") {
		t.Fatalf("fetch failure not surfaced: %v", err)
	}
	// Metrics count only fully applied rounds: every counted fetch
	// succeeded strictly before the first failure.
	if got := c.Metrics().Fetches; got >= 150 {
		t.Fatalf("partial round applied: %d fetches counted, failure at 150", got)
	}
	// The collection only holds pages from applied rounds.
	if n := c.Collection().Len(); int64(n) > c.Metrics().Fetches {
		t.Fatalf("collection holds %d pages but only %d fetches applied", n, c.Metrics().Fetches)
	}
	// All pool workers and the plan rebuild must have exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak after pipeline error: %d > %d\n%s",
			got, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestPipelineErrorThenResume: after a failed RunUntil, a fresh
// RunUntil on the same crawler keeps working — the pool is rebuilt per
// run and no round state leaks across runs.
func TestPipelineErrorThenResume(t *testing.T) {
	w, f := testWeb(t, 32)
	cfg := baseConfig(w)
	cfg.Workers = 4
	ff := &failingFetcher{inner: f, at: 60}
	c, err := New(cfg, ff)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(15); err == nil {
		t.Fatal("expected fetch failure")
	}
	before := c.Metrics().Fetches
	ff.at = 1 << 60 // heal the fetcher
	if err := c.RunUntil(15); err != nil {
		t.Fatalf("resume after failure: %v", err)
	}
	if c.Metrics().Fetches <= before {
		t.Fatalf("no progress after resume: %d <= %d", c.Metrics().Fetches, before)
	}
}

// TestDispatchPoolSiteLines pins the pool's ordering contract: groups
// of one site run strictly in submission order even when submitted as
// separate rounds, while other sites proceed in parallel.
func TestDispatchPoolSiteLines(t *testing.T) {
	var mu struct {
		order []int
		ch    chan struct{}
	}
	mu.ch = make(chan struct{}, 64)
	var seq atomic.Int64
	pool := newDispatchPool(4, func(_ int, j *crawlJob) error {
		if j.site == "a" {
			mu.order = append(mu.order, j.idx) // site-serial: no race by contract
		}
		seq.Add(1)
		return nil
	}, nil)
	defer pool.close()

	mk := func(site string, idx int) dispatchGroup {
		return dispatchGroup{jobs: []*crawlJob{{idx: idx, site: site, url: site}}, site: site}
	}
	h1 := pool.startRound([]dispatchGroup{mk("a", 0), mk("b", 100), mk("a", 1)})
	// A second round's site-a group queues behind the first round's.
	h2 := pool.startRound([]dispatchGroup{mk("a", 2), mk("c", 200)})
	if err := pool.wait(h1); err != nil {
		t.Fatal(err)
	}
	if err := pool.wait(h2); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if len(mu.order) != len(want) {
		t.Fatalf("site-a ran %v, want %v", mu.order, want)
	}
	for i := range want {
		if mu.order[i] != want[i] {
			t.Fatalf("site-a order %v, want %v", mu.order, want)
		}
	}
}

// TestDispatchPoolErrorRunsDoneHooks: a stopping pool must still run
// every group's done hook, or round waits and claim releases would
// hang.
func TestDispatchPoolErrorRunsDoneHooks(t *testing.T) {
	var done atomic.Int64
	pool := newDispatchPool(2, func(_ int, j *crawlJob) error {
		return errors.New("boom")
	}, nil)
	groups := make([]dispatchGroup, 8)
	for i := range groups {
		groups[i] = dispatchGroup{
			jobs: []*crawlJob{{idx: i, url: "u"}},
			done: func() { done.Add(1) },
		}
	}
	h := pool.startRound(groups)
	if err := pool.wait(h); err == nil {
		t.Fatal("expected pool error")
	}
	if got := done.Load(); got != 8 {
		t.Fatalf("done hooks ran %d times, want 8", got)
	}
	if err := pool.close(); err == nil {
		t.Fatal("close should surface the first error")
	}
}
