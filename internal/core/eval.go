package core

import (
	"errors"
	"sort"

	"webevolve/internal/pagerank"
	"webevolve/internal/simweb"
	"webevolve/internal/store"
	"webevolve/internal/webgraph"
)

// Evaluator measures a collection against the simulated web's ground
// truth: the freshness metric of Section 4 and the quality goal of
// Section 5.1. Only experiments use it — a real crawler has no oracle.
type Evaluator struct {
	Web *simweb.Web
}

// Freshness returns the fraction of collection pages that are up-to-date
// at the given day: present in the live web with an unchanged checksum.
// Pages that have vanished from the web count as stale, and a collection
// smaller than target counts missing slots as stale when target > 0 —
// freshness is "the fraction of up-to-date pages in the local
// collection" of the intended size.
func (e *Evaluator) Freshness(coll store.Collection, day float64, target int) (float64, error) {
	if e.Web == nil {
		return 0, errors.New("core: evaluator needs a web")
	}
	n := 0
	fresh := 0
	err := coll.Scan(func(rec store.PageRecord) bool {
		n++
		snap, err := e.Web.FetchMeta(rec.URL, day)
		if err == nil && snap.Checksum == rec.Checksum {
			fresh++
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	den := n
	if target > n {
		den = target
	}
	if den == 0 {
		return 0, nil
	}
	return float64(fresh) / float64(den), nil
}

// AvgAge returns the mean age (days since the first unseen change, 0 for
// fresh copies) across collection pages at the given day — [CGM99b]'s
// second metric. Vanished pages contribute the time since their stored
// fetch.
func (e *Evaluator) AvgAge(coll store.Collection, day float64) (float64, error) {
	if e.Web == nil {
		return 0, errors.New("core: evaluator needs a web")
	}
	var total float64
	n := 0
	err := coll.Scan(func(rec store.PageRecord) bool {
		n++
		snap, ferr := e.Web.FetchMeta(rec.URL, day)
		switch {
		case ferr == nil && snap.Checksum == rec.Checksum:
			// fresh: age 0
		case ferr == nil:
			// Changed since fetch; approximate the age as half the time
			// since our copy (the first change is uniform-ish in the
			// interval under a Poisson process).
			total += (day - rec.FetchedAt) / 2
		default:
			total += day - rec.FetchedAt
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return total / float64(n), nil
}

// Quality measures the collection-quality goal of Section 5.1: the
// overlap between the collection's URL set and the true top-k pages by
// PageRank over the full live web at the given day (k = the collection's
// size). 1.0 means the collection holds exactly the most important pages.
func (e *Evaluator) Quality(coll store.Collection, day float64) (float64, error) {
	if e.Web == nil {
		return 0, errors.New("core: evaluator needs a web")
	}
	urls := coll.URLs()
	if len(urls) == 0 {
		return 0, nil
	}
	g := e.Web.BuildGraph(day)
	ranks, _, err := pagerank.Pages(g.Snapshot(), pagerank.Options{Damping: 0.9})
	if err != nil {
		return 0, err
	}
	top := pagerank.TopK(ranks, len(urls))
	ideal := make(map[string]struct{}, len(top))
	for _, r := range top {
		ideal[r.ID] = struct{}{}
	}
	hit := 0
	for _, u := range urls {
		if _, ok := ideal[u]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(urls)), nil
}

// FreshnessByDomain splits freshness by the paper's domain groups.
func (e *Evaluator) FreshnessByDomain(coll store.Collection, day float64) (map[string]float64, error) {
	if e.Web == nil {
		return nil, errors.New("core: evaluator needs a web")
	}
	fresh := make(map[string]int)
	total := make(map[string]int)
	err := coll.Scan(func(rec store.PageRecord) bool {
		dom := webgraph.DomainOf(webgraph.SiteOf(rec.URL))
		total[dom]++
		snap, ferr := e.Web.FetchMeta(rec.URL, day)
		if ferr == nil && snap.Checksum == rec.Checksum {
			fresh[dom]++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(total))
	for dom, t := range total {
		out[dom] = float64(fresh[dom]) / float64(t)
	}
	return out, nil
}

// TimeAverage runs a crawler-like runner between sample points and
// averages a metric over time: the standard way this repository computes
// "freshness averaged over time" for any crawler.
type Runner interface {
	RunUntil(day float64) error
	Day() float64
	Collection() store.Collection
}

// TimeAveragedFreshness advances r from its current day to endDay,
// sampling freshness at the given number of evenly spaced instants
// (after skipping warmupDays), and returns the mean and the sampled
// series.
func (e *Evaluator) TimeAveragedFreshness(r Runner, endDay, warmupDays float64, samples int, target int) (float64, []Sample, error) {
	if samples < 1 {
		return 0, nil, errors.New("core: need at least one sample")
	}
	start := r.Day() + warmupDays
	if endDay <= start {
		return 0, nil, errors.New("core: end day before warmup end")
	}
	if warmupDays > 0 {
		if err := r.RunUntil(start); err != nil {
			return 0, nil, err
		}
	}
	var series []Sample
	var sum float64
	for i := 1; i <= samples; i++ {
		day := start + (endDay-start)*float64(i)/float64(samples)
		if err := r.RunUntil(day); err != nil {
			return 0, nil, err
		}
		f, err := e.Freshness(r.Collection(), day, target)
		if err != nil {
			return 0, nil, err
		}
		series = append(series, Sample{Day: day, Value: f})
		sum += f
	}
	return sum / float64(samples), series, nil
}

// Sample is one point of a measured time series.
type Sample struct {
	Day   float64
	Value float64
}

// SortSamples orders samples by day (in place) and returns them.
func SortSamples(s []Sample) []Sample {
	sort.Slice(s, func(i, j int) bool { return s[i].Day < s[j].Day })
	return s
}
