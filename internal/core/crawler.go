package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"webevolve/internal/cluster"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/registry"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
	"webevolve/internal/webgraph"
)

// Metrics counts crawler activity.
type Metrics struct {
	Fetches         int64
	ChangesDetected int64
	NotFound        int64
	NewPages        int64
	Admissions      int64
	Evictions       int64
	Swaps           int64
	RankPasses      int64
	BytesFetched    int64
	IdleDays        float64
}

// Crawler is the incremental crawler engine (and, in batch+shadow+fixed
// configuration, the periodic-style refresher over a fixed URL set). It
// runs over virtual time: each fetch advances the virtual day by the
// configured bandwidth's reciprocal, which makes experiments
// deterministic. Fetches are dispatched in pipelined rounds to
// Config.Workers concurrent CrawlModule workers over the sharded
// frontier (engine.go, dispatch.go): while one round's results are
// folded in, the next rounds are already fetching. Results are applied
// in pop order, so any worker count produces the schedule — and, on
// the deterministic simulator, the results — of the sequential
// crawler. (The wall-clock pipeline lives in driver.go.)
type Crawler struct {
	cfg     Config
	fetcher fetch.Fetcher

	all      *frontier.AllUrls
	coll     frontier.ShardSet
	ownsColl bool // close coll with the crawler (dialed from ShardServers)
	rounds   *frontierRounds
	shadowed *store.Shadowed
	// storeClient is the remote-store connection dialed from
	// Config.StoreServer (nil for caller-provided or in-memory
	// collections); the crawler owns it and its shadowed pair.
	storeClient *cluster.RemoteStore
	graph       *webgraph.Graph

	policy  scheduler.Policy
	optimal *scheduler.Optimal

	est        map[string]*estimator
	lastSum    map[string]uint64 // last crawled checksum per URL
	importance map[string]float64
	siteStats  *siteStats // non-nil when Config.SiteLevelStats is on

	day      float64
	nextRank float64
	nextSwap float64

	// Batch-mode resumable state: the remaining crawl list of the
	// current cycle, its per-fetch virtual cost, and the next cycle
	// start.
	batchQueue    []string
	batchPerFetch float64
	nextCycle     float64

	// Dispatch-pipeline state: the worker pool (alive for the duration
	// of one RunUntil) and the reusable round/apply scratch buffers.
	pool      *dispatchPool
	roundBufs []*roundState
	live      []outcome
	pushes    []frontier.Entry
	removes   []string
	recs      []store.PageRecord
	// rebuildDone joins the revisit-plan rebuild a ranking pass left
	// running concurrently with the crawl (ranking.go).
	rebuildDone chan error

	metrics Metrics
}

// New builds a crawler over the given fetcher, with an in-memory
// collection — or, when Config.StoreServer is set, with its collection
// pair hosted on that storerd daemon: shadow generations become named
// server-side collections ("gen-1", "gen-2", ...), each dropped once
// retired, and the crawler owns (and Close closes) the connection.
func New(cfg Config, f fetch.Fetcher) (*Crawler, error) {
	var rs *cluster.RemoteStore
	var err error
	switch {
	case cfg.StoreServer != "":
		rs, err = cluster.DialStoreTCP(cfg.StoreServer, cluster.Options{})
	case cfg.Registry != "":
		// Discover store servers from the registry; a cluster without
		// any registered store members keeps the in-memory collection
		// (the shard plane is independent of the store plane).
		ms, merr := registry.NewClient(cfg.Registry).Membership()
		if merr != nil {
			return nil, fmt.Errorf("core: registry: %w", merr)
		}
		if len(ms.Store()) == 0 {
			return NewWithStore(cfg, f, store.NewShadowedMem())
		}
		rs, err = cluster.DialStoreRegistry(cfg.Registry, cluster.Options{})
	default:
		return NewWithStore(cfg, f, store.NewShadowedMem())
	}
	if err != nil {
		return nil, fmt.Errorf("core: dialing store server: %w", err)
	}
	c, err := newWithRemoteStore(cfg, f, rs)
	if err != nil {
		rs.Close()
		return nil, err
	}
	return c, nil
}

// newWithRemoteStore builds a crawler whose collection pair lives on
// the given store server; the crawler takes ownership of the client.
func newWithRemoteStore(cfg Config, f fetch.Fetcher, rs *cluster.RemoteStore) (*Crawler, error) {
	// A predecessor that died before Close may have left its shadow
	// generations on a durable server; reclaim them so the pair starts
	// genuinely fresh, without touching any other collection (e.g. a
	// webcrawl's "pages").
	names, err := rs.ListCollections()
	if err != nil {
		return nil, fmt.Errorf("core: store server: %w", err)
	}
	for _, n := range names {
		if isGenName(n) {
			if err := rs.DropCollection(n); err != nil {
				return nil, fmt.Errorf("core: store server: %w", err)
			}
		}
	}
	gen := 0
	sh, err := store.NewShadowed(nil, func() (store.Collection, error) {
		gen++
		return rs.EphemeralCollection(fmt.Sprintf("gen-%d", gen)), nil
	})
	if err != nil {
		return nil, err
	}
	c, err := NewWithStore(cfg, f, sh)
	if err != nil {
		sh.Close()
		return nil, err
	}
	c.storeClient = rs
	return c, nil
}

// isGenName reports whether a collection name is a crawler shadow
// generation ("gen-<number>").
func isGenName(name string) bool {
	rest, ok := strings.CutPrefix(name, "gen-")
	if !ok || rest == "" {
		return false
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return false
		}
	}
	return true
}

// NewWithStore builds a crawler with a caller-provided collection pair
// (e.g. disk-backed).
func NewWithStore(cfg Config, f fetch.Fetcher, sh *store.Shadowed) (*Crawler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if f == nil {
		return nil, errors.New("core: nil fetcher")
	}
	if sh == nil {
		return nil, errors.New("core: nil store")
	}
	policy, opt, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	coll, ownsColl, err := buildFrontier(cfg)
	if err != nil {
		return nil, err
	}
	c := &Crawler{
		cfg:        cfg,
		fetcher:    f,
		all:        frontier.NewAllUrls(),
		coll:       coll,
		ownsColl:   ownsColl,
		rounds:     newFrontierRounds(coll, cfg.DispatchBatch+8, cfg.ShardPolitenessDays),
		shadowed:   sh,
		graph:      webgraph.New(),
		policy:     policy,
		optimal:    opt,
		est:        make(map[string]*estimator),
		lastSum:    make(map[string]uint64),
		importance: make(map[string]float64),
		nextRank:   0, // first pass immediately, to seed admissions
		nextSwap:   cfg.CycleDays,
	}
	if cfg.SiteLevelStats {
		c.siteStats = newSiteStats()
	}
	for _, s := range cfg.Seeds {
		c.all.Add(s, 0)
		c.admit(s, 0)
	}
	return c, nil
}

// buildFrontier resolves the configured revisit queue: an injected
// shard set, a dialed remote cluster, or (the default) in-process
// shards. The second return reports whether the crawler owns it.
func buildFrontier(cfg Config) (frontier.ShardSet, bool, error) {
	if cfg.Frontier != nil {
		return cfg.Frontier, false, nil
	}
	if cfg.Registry != "" {
		rs, err := cluster.DialRegistry(cfg.Registry, cluster.Options{
			PolitenessDays: cfg.ShardPolitenessDays,
		})
		if err != nil {
			return nil, false, err
		}
		return rs, true, nil
	}
	if len(cfg.ShardServers) > 0 {
		rs, err := cluster.DialTCP(cfg.ShardServers, cluster.Options{
			PolitenessDays: cfg.ShardPolitenessDays,
		})
		if err != nil {
			return nil, false, err
		}
		return rs, true, nil
	}
	return frontier.NewShardedPolite(cfg.Shards, cfg.ShardPolitenessDays), false, nil
}

// Close releases resources the crawler owns: the connections of a
// frontier dialed from Config.ShardServers, and the collection pair
// plus store connection dialed from Config.StoreServer (the remaining
// server-side generations are dropped). Injected frontiers and
// caller-provided stores belong to the caller and are left open.
func (c *Crawler) Close() error {
	var err error
	if c.ownsColl {
		if cl, ok := c.coll.(io.Closer); ok {
			err = cl.Close()
		}
	}
	if c.storeClient != nil {
		if serr := c.shadowed.Close(); err == nil {
			err = serr
		}
		if serr := c.storeClient.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// maybeRebalance lets a registry-backed remote frontier adopt a new
// membership epoch — driving a live shard migration when one is
// pending — and is a no-op for every other frontier. It runs only at
// quiescent round boundaries: no dispatch rounds in flight and no pops
// buffered in the round adapter, so every frontier entry is either on
// a shard server (and migrates intact) or already consumed. The call
// is rate-limited inside the client, so the engines invoke it every
// loop iteration.
func (c *Crawler) maybeRebalance() error {
	rb, ok := c.coll.(interface{ Rebalance() error })
	if !ok {
		return nil
	}
	type epocher interface{ Epoch() uint64 }
	var before uint64
	if ep, ok := c.coll.(epocher); ok {
		before = ep.Epoch()
	}
	if err := rb.Rebalance(); err != nil {
		return fmt.Errorf("core: frontier: %w", err)
	}
	if ep, ok := c.coll.(epocher); ok && ep.Epoch() != before {
		// The topology moved: invalidate the candidate cache so the next
		// round re-peeks through the new routing. The entries themselves
		// migrated intact — this is only cache hygiene, and it costs one
		// extra fan-out per membership change.
		c.rounds.flush()
	}
	return nil
}

// shardSetErr surfaces a remote frontier's sticky transport error: the
// ShardSet interface is error-free, so a failed cluster looks like a
// drained queue until checked here. Every engine exit path calls it.
func shardSetErr(fr frontier.ShardSet) error {
	if fe, ok := fr.(interface{ Err() error }); ok {
		if err := fe.Err(); err != nil {
			return fmt.Errorf("core: frontier: %w", err)
		}
	}
	return nil
}

// Day returns the current virtual day.
func (c *Crawler) Day() float64 { return c.day }

// Metrics returns a copy of the activity counters.
func (c *Crawler) Metrics() Metrics { return c.metrics }

// Collection returns the collection currently visible to users (the
// "current collection" of Section 4).
func (c *Crawler) Collection() store.Collection { return c.shadowed.Current() }

// AllUrls exposes the discovered-URL table.
func (c *Crawler) AllUrls() *frontier.AllUrls { return c.all }

// CollUrls exposes the revisit queue: the sharded frontier the workers
// drain (in-process or remote, per Config).
func (c *Crawler) CollUrls() frontier.ShardSet { return c.coll }

// Graph exposes the link structure captured so far.
func (c *Crawler) Graph() *webgraph.Graph { return c.graph }

// writeTarget is where freshly crawled pages go.
func (c *Crawler) writeTarget() store.Collection {
	if c.cfg.Update == Shadow {
		return c.shadowed.Shadow()
	}
	return c.shadowed.Current()
}

// RunUntil advances the crawl to the given virtual day.
func (c *Crawler) RunUntil(until float64) error {
	c.pool = newDispatchPool(c.cfg.Workers, c.fetchJob, nil)
	var err error
	if c.cfg.Mode == Batch {
		err = c.runBatch(until)
	} else {
		err = c.runSteady(until)
	}
	if cerr := c.pool.close(); err == nil {
		err = cerr
	}
	c.pool = nil
	if jerr := c.joinRebuild(); err == nil {
		err = jerr
	}
	// Ship any pops still buffered in the round adapter, so a remote
	// frontier ends in the same state as in-process shards would —
	// including on the error path: in-process pops mutate the frontier
	// at pop time, so an errored run's popped-but-unapplied URLs (up to
	// depth rounds of them) are consumed without a reschedule either
	// way. An errored crawl is not resumable bit-identically; the
	// guarantee here is only local/remote consistency.
	c.rounds.flush()
	if err != nil {
		return err
	}
	if err := shardSetErr(c.coll); err != nil {
		return err
	}
	if c.storeClient != nil {
		// Len/URLs transport failures cannot surface from their calls;
		// the sticky record catches them here.
		if serr := c.storeClient.Err(); serr != nil {
			return fmt.Errorf("core: store: %w", serr)
		}
	}
	return nil
}

// runSteady is the steady-mode loop: pop a round of due URLs, crawl it
// through the worker pool, fold the results back in — continuously,
// with the next rounds' fetches overlapping the previous round's
// apply (engine.go).
func (c *Crawler) runSteady(until float64) error {
	perFetch := 1 / c.cfg.PagesPerDay
	for c.day < until {
		if err := c.maybeRebalance(); err != nil {
			return err
		}
		if c.day >= c.nextRank {
			c.rounds.flush()
			if err := c.rankingPass(); err != nil {
				return err
			}
			c.nextRank += c.cfg.RankEveryDays
			continue
		}
		if c.cfg.Update == Shadow && c.day >= c.nextSwap {
			c.rounds.flush()
			if err := c.swap(); err != nil {
				return err
			}
			c.nextSwap += c.cfg.CycleDays
			continue
		}
		horizon := c.steadyHorizon(until)
		depth, maxJobs := c.steadyRoundCap(perFetch)
		dispatched, err := c.pipelineRounds(depth, func(r *roundState, windowFloor float64) {
			c.popSteadyRound(r, horizon, perFetch, maxJobs, windowFloor)
		})
		if err != nil {
			return err
		}
		if !dispatched {
			// Idle until the next event: head due (politeness-adjusted),
			// rank, or swap.
			next := math.Min(c.nextRank, until)
			if c.cfg.Update == Shadow {
				next = math.Min(next, c.nextSwap)
			}
			if ev, ok := c.rounds.nextEvent(); ok {
				next = math.Min(next, ev)
			}
			if next <= c.day {
				next = c.day + perFetch
			}
			c.metrics.IdleDays += next - c.day
			c.day = next
		}
	}
	return nil
}

// runBatch is the batch-mode loop: at each cycle start, crawl the whole
// collection in a burst lasting BatchDays, then idle until the next
// cycle. The peak speed is pagesPerCycle/BatchDays — higher than the
// steady crawler's, the paper's peak-load argument.
//
// The loop is resumable at any virtual instant: RunUntil may stop it in
// the middle of a batch crawl (evaluators sample freshness mid-cycle)
// and the crawl continues exactly where it left off on the next call,
// with the shadow swap happening only when the crawl truly completes.
func (c *Crawler) runBatch(until float64) error {
	for c.day < until {
		if err := c.maybeRebalance(); err != nil {
			return err
		}
		if len(c.batchQueue) == 0 {
			if c.day < c.nextCycle {
				// Idle between the end of a crawl and the next cycle.
				next := math.Min(c.nextCycle, until)
				c.metrics.IdleDays += next - c.day
				c.day = next
				continue
			}
			// Start a new cycle: refine, then snapshot the crawl list.
			c.rounds.flush()
			if err := c.rankingPass(); err != nil {
				return err
			}
			c.nextCycle = c.day + c.cfg.CycleDays
			c.batchQueue = c.coll.URLs()
			if len(c.batchQueue) == 0 {
				c.day = math.Min(c.nextCycle, until)
				continue
			}
			c.batchPerFetch = c.cfg.BatchDays / float64(len(c.batchQueue))
			continue
		}
		// Drain the cycle's crawl list through the pipelined rounds.
		// The snapshot is a set, so no URL repeats within a cycle and
		// the chunked pop sequence matches the sequential one; unlike
		// the steady loop, pops draw from the snapshot rather than the
		// frontier, so overlapping rounds need no reschedule window.
		depth := 2
		if c.cfg.BatchSync {
			depth = 1
		}
		if _, err := c.pipelineRounds(depth, func(r *roundState, _ float64) {
			c.popBatchRound(r, until)
		}); err != nil {
			return err
		}
		if len(c.batchQueue) == 0 && c.cfg.Update == Shadow {
			c.rounds.flush()
			if err := c.swap(); err != nil {
				return err
			}
		}
	}
	return nil
}

// popBatchRound takes the next dispatch round off the batch-mode crawl
// list, removing the popped URLs from the frontier (push-back happens
// in applySchedule) and advancing virtual time past the last fetch.
func (c *Crawler) popBatchRound(r *roundState, until float64) {
	r.reset()
	d := c.day
	for len(r.jobs) < c.cfg.DispatchBatch && len(c.batchQueue) > 0 && d < until {
		u := c.batchQueue[0]
		c.batchQueue = c.batchQueue[1:]
		r.jobs = append(r.jobs, crawlJob{idx: len(r.jobs), url: u, day: d})
		if err := c.resolveJob(&r.jobs[len(r.jobs)-1]); err != nil {
			// Drop the half-resolved job: dispatching it would hand the
			// workers a nil estimator. The error still ends the run via
			// roundState.err.
			r.jobs = r.jobs[:len(r.jobs)-1]
			r.err = err
			break
		}
		d += c.batchPerFetch
	}
	if len(r.jobs) == 0 {
		return
	}
	// Pop to keep queue bookkeeping honest: one batched remove per
	// round (a single trip per remote server) instead of one per URL.
	c.removes = c.removes[:0]
	for i := range r.jobs {
		c.removes = append(c.removes, r.jobs[i].url)
	}
	c.rounds.commitRound(c.removes, nil, false)
	c.day = d
}

// swap publishes the shadow collection. Pages in the collection that were
// not re-crawled this cycle are carried forward from the old current
// collection, so slow-revisit pages do not vanish at swap time.
func (c *Crawler) swap() error {
	shadow := c.shadowed.Shadow()
	cur := c.shadowed.Current()
	// One URLs snapshot instead of a Contains per stored page: same
	// answer, and one fan-out rather than N round trips on a remote
	// frontier.
	inColl := make(map[string]bool, c.coll.Len())
	for _, u := range c.coll.URLs() {
		inColl[u] = true
	}
	err := cur.Scan(func(rec store.PageRecord) bool {
		if !inColl[rec.URL] {
			return true // evicted; let it go
		}
		if _, ok, gerr := shadow.Get(rec.URL); gerr == nil && !ok {
			_ = shadow.Put(rec)
		}
		return true
	})
	if err != nil {
		return err
	}
	if _, err := c.shadowed.Swap(); err != nil {
		return err
	}
	c.metrics.Swaps++
	return nil
}
