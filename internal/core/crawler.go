package core

import (
	"errors"
	"fmt"
	"math"

	"webevolve/internal/changefreq"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/store"
	"webevolve/internal/webgraph"
)

// Metrics counts crawler activity.
type Metrics struct {
	Fetches         int64
	ChangesDetected int64
	NotFound        int64
	NewPages        int64
	Admissions      int64
	Evictions       int64
	Swaps           int64
	RankPasses      int64
	BytesFetched    int64
	IdleDays        float64
}

// Crawler is the incremental crawler engine (and, in batch+shadow+fixed
// configuration, the periodic-style refresher over a fixed URL set). It
// is single-threaded over virtual time: each fetch advances the virtual
// day by the configured bandwidth's reciprocal, which makes experiments
// deterministic. (The concurrent wall-clock driver lives in driver.go.)
type Crawler struct {
	cfg     Config
	fetcher fetch.Fetcher

	all      *frontier.AllUrls
	coll     *frontier.CollUrls
	shadowed *store.Shadowed
	graph    *webgraph.Graph

	policy  scheduler.Policy
	optimal *scheduler.Optimal

	est        map[string]*estimator
	lastSum    map[string]uint64 // last crawled checksum per URL
	importance map[string]float64
	siteStats  *siteStats // non-nil when Config.SiteLevelStats is on

	day      float64
	nextRank float64
	nextSwap float64

	// Batch-mode resumable state: the remaining crawl list of the
	// current cycle, its per-fetch virtual cost, and the next cycle
	// start.
	batchQueue    []string
	batchPerFetch float64
	nextCycle     float64

	metrics Metrics
}

// New builds a crawler over the given fetcher, with an in-memory
// collection.
func New(cfg Config, f fetch.Fetcher) (*Crawler, error) {
	return NewWithStore(cfg, f, store.NewShadowedMem())
}

// NewWithStore builds a crawler with a caller-provided collection pair
// (e.g. disk-backed).
func NewWithStore(cfg Config, f fetch.Fetcher, sh *store.Shadowed) (*Crawler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if f == nil {
		return nil, errors.New("core: nil fetcher")
	}
	if sh == nil {
		return nil, errors.New("core: nil store")
	}
	policy, opt, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	c := &Crawler{
		cfg:        cfg,
		fetcher:    f,
		all:        frontier.NewAllUrls(),
		coll:       frontier.NewCollUrls(),
		shadowed:   sh,
		graph:      webgraph.New(),
		policy:     policy,
		optimal:    opt,
		est:        make(map[string]*estimator),
		lastSum:    make(map[string]uint64),
		importance: make(map[string]float64),
		nextRank:   0, // first pass immediately, to seed admissions
		nextSwap:   cfg.CycleDays,
	}
	if cfg.SiteLevelStats {
		c.siteStats = newSiteStats()
	}
	for _, s := range cfg.Seeds {
		c.all.Add(s, 0)
		c.admit(s, 0)
	}
	return c, nil
}

// Day returns the current virtual day.
func (c *Crawler) Day() float64 { return c.day }

// Metrics returns a copy of the activity counters.
func (c *Crawler) Metrics() Metrics { return c.metrics }

// Collection returns the collection currently visible to users (the
// "current collection" of Section 4).
func (c *Crawler) Collection() store.Collection { return c.shadowed.Current() }

// AllUrls exposes the discovered-URL table.
func (c *Crawler) AllUrls() *frontier.AllUrls { return c.all }

// CollUrls exposes the revisit queue.
func (c *Crawler) CollUrls() *frontier.CollUrls { return c.coll }

// Graph exposes the link structure captured so far.
func (c *Crawler) Graph() *webgraph.Graph { return c.graph }

// writeTarget is where freshly crawled pages go.
func (c *Crawler) writeTarget() store.Collection {
	if c.cfg.Update == Shadow {
		return c.shadowed.Shadow()
	}
	return c.shadowed.Current()
}

// RunUntil advances the crawl to the given virtual day.
func (c *Crawler) RunUntil(until float64) error {
	if c.cfg.Mode == Batch {
		return c.runBatch(until)
	}
	return c.runSteady(until)
}

// runSteady is the steady-mode loop: pop the most due URL, crawl it, push
// it back — continuously.
func (c *Crawler) runSteady(until float64) error {
	perFetch := 1 / c.cfg.PagesPerDay
	for c.day < until {
		if c.day >= c.nextRank {
			if err := c.rankingPass(); err != nil {
				return err
			}
			c.nextRank += c.cfg.RankEveryDays
			continue
		}
		if c.cfg.Update == Shadow && c.day >= c.nextSwap {
			if err := c.swap(); err != nil {
				return err
			}
			c.nextSwap += c.cfg.CycleDays
			continue
		}
		e, ok := c.coll.PopDue(c.day)
		if !ok {
			// Idle until the next event: head due, rank, or swap.
			next := math.Min(c.nextRank, until)
			if c.cfg.Update == Shadow {
				next = math.Min(next, c.nextSwap)
			}
			if head, hok := c.coll.Peek(); hok {
				next = math.Min(next, head.Due)
			}
			if next <= c.day {
				next = c.day + perFetch
			}
			c.metrics.IdleDays += next - c.day
			c.day = next
			continue
		}
		if err := c.fetchOne(e.URL); err != nil {
			return err
		}
		c.day += perFetch
	}
	return nil
}

// runBatch is the batch-mode loop: at each cycle start, crawl the whole
// collection in a burst lasting BatchDays, then idle until the next
// cycle. The peak speed is pagesPerCycle/BatchDays — higher than the
// steady crawler's, the paper's peak-load argument.
//
// The loop is resumable at any virtual instant: RunUntil may stop it in
// the middle of a batch crawl (evaluators sample freshness mid-cycle)
// and the crawl continues exactly where it left off on the next call,
// with the shadow swap happening only when the crawl truly completes.
func (c *Crawler) runBatch(until float64) error {
	for c.day < until {
		if len(c.batchQueue) == 0 {
			if c.day < c.nextCycle {
				// Idle between the end of a crawl and the next cycle.
				next := math.Min(c.nextCycle, until)
				c.metrics.IdleDays += next - c.day
				c.day = next
				continue
			}
			// Start a new cycle: refine, then snapshot the crawl list.
			if err := c.rankingPass(); err != nil {
				return err
			}
			c.nextCycle = c.day + c.cfg.CycleDays
			c.batchQueue = c.coll.URLs()
			if len(c.batchQueue) == 0 {
				c.day = math.Min(c.nextCycle, until)
				continue
			}
			c.batchPerFetch = c.cfg.BatchDays / float64(len(c.batchQueue))
			continue
		}
		u := c.batchQueue[0]
		c.batchQueue = c.batchQueue[1:]
		// Pop to keep queue bookkeeping honest; push-back happens in
		// fetchOne.
		c.coll.Remove(u)
		if err := c.fetchOne(u); err != nil {
			return err
		}
		c.day += c.batchPerFetch
		if len(c.batchQueue) == 0 && c.cfg.Update == Shadow {
			if err := c.swap(); err != nil {
				return err
			}
		}
	}
	return nil
}

// fetchOne crawls one URL (Figure 11 steps [3]-[12]) and reschedules it.
func (c *Crawler) fetchOne(url string) error {
	res, err := c.fetcher.Fetch(url, c.day)
	if err != nil {
		return fmt.Errorf("core: fetching %s: %w", url, err)
	}
	c.metrics.Fetches++
	c.metrics.BytesFetched += int64(res.Size)
	if res.NotFound {
		c.metrics.NotFound++
		c.dropPage(url)
		return nil
	}

	prevSum, seen := c.lastSum[url]
	changed := seen && prevSum != res.Checksum
	if changed {
		c.metrics.ChangesDetected++
	}
	if !seen {
		c.metrics.NewPages++
	}
	c.lastSum[url] = res.Checksum

	est, ok := c.est[url]
	if !ok {
		est, err = newEstimator(c.cfg.Estimator)
		if err != nil {
			return err
		}
		c.est[url] = est
	}
	prevVisit, hadVisit := est.hist.Last()
	if err := est.record(changefreq.Observation{Time: c.day, Changed: changed}, c.cfg.HistoryWindowDays); err != nil {
		return fmt.Errorf("core: %s: %w", url, err)
	}
	if c.siteStats != nil && hadVisit && c.day > prevVisit {
		c.siteStats.update(url, c.day, c.day-prevVisit, changed)
	}

	rec := store.PageRecord{
		URL:        url,
		Checksum:   res.Checksum,
		FetchedAt:  c.day,
		Version:    res.Version,
		Links:      res.Links,
		Importance: c.importance[url],
	}
	if c.cfg.StoreContent {
		rec.Content = res.Content
	}
	if err := c.writeTarget().Put(rec); err != nil {
		return fmt.Errorf("core: storing %s: %w", url, err)
	}
	c.all.SetInCollection(url, true)

	// Figure 11 steps [11]-[12]: extract URLs, extend AllUrls; also feed
	// the link structure the RankingModule scans.
	c.graph.SetLinks(url, res.Links)
	for _, l := range res.Links {
		c.all.AddLink(url, l, c.day)
	}

	interval := c.policy.Interval(url, c.workingRate(url, est), c.importance[url])
	interval = scheduler.Clamp(interval, c.cfg.MinIntervalDays, c.cfg.MaxIntervalDays)
	c.coll.Push(url, c.day+interval, c.importance[url])
	return nil
}

// dropPage removes a vanished page from the collection.
func (c *Crawler) dropPage(url string) {
	c.coll.Remove(url)
	_ = c.shadowed.Current().Delete(url)
	if c.cfg.Update == Shadow {
		_ = c.shadowed.Shadow().Delete(url)
	}
	c.all.SetInCollection(url, false)
	c.graph.RemovePage(url)
	delete(c.est, url)
	delete(c.lastSum, url)
	if c.siteStats != nil {
		c.siteStats.forget(url)
	}
}

// swap publishes the shadow collection. Pages in the collection that were
// not re-crawled this cycle are carried forward from the old current
// collection, so slow-revisit pages do not vanish at swap time.
func (c *Crawler) swap() error {
	shadow := c.shadowed.Shadow()
	cur := c.shadowed.Current()
	err := cur.Scan(func(rec store.PageRecord) bool {
		if !c.coll.Contains(rec.URL) {
			return true // evicted; let it go
		}
		if _, ok, gerr := shadow.Get(rec.URL); gerr == nil && !ok {
			_ = shadow.Put(rec)
		}
		return true
	})
	if err != nil {
		return err
	}
	if _, err := c.shadowed.Swap(); err != nil {
		return err
	}
	c.metrics.Swaps++
	return nil
}
