package robots

import (
	"testing"
	"time"
)

func TestParseEmptyAllowsAll(t *testing.T) {
	r := Parse("", "webevolve")
	if !r.Allowed("/anything") {
		t.Fatal("empty robots.txt disallowed a path")
	}
}

func TestParseStarGroup(t *testing.T) {
	r := Parse(`
User-agent: *
Disallow: /private
`, "webevolve")
	if r.Allowed("/private/x") {
		t.Fatal("disallowed path allowed")
	}
	if !r.Allowed("/public") {
		t.Fatal("public path disallowed")
	}
}

func TestParseSpecificAgentWins(t *testing.T) {
	content := `
User-agent: *
Disallow: /

User-agent: webevolve
Disallow: /secret
`
	r := Parse(content, "webevolve-crawler/1.0")
	if !r.Allowed("/open") {
		t.Fatal("specific group should allow /open")
	}
	if r.Allowed("/secret/page") {
		t.Fatal("specific group should block /secret")
	}
	other := Parse(content, "googlebot")
	if other.Allowed("/anything") {
		t.Fatal("star group should block everything for other agents")
	}
}

func TestAllowOverridesDisallowAtEqualOrLongerLength(t *testing.T) {
	r := Parse(`
User-agent: *
Disallow: /dir
Allow: /dir/ok
`, "x")
	if r.Allowed("/dir/no") {
		t.Fatal("/dir/no should be blocked")
	}
	if !r.Allowed("/dir/ok/page") {
		t.Fatal("/dir/ok should be allowed")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	r := Parse(`
# this is a comment
User-agent: * # trailing comment

Disallow: /x
`, "any")
	if r.Allowed("/x/1") {
		t.Fatal("comment handling broke parsing")
	}
}

func TestCrawlDelay(t *testing.T) {
	r := Parse(`
User-agent: *
Crawl-delay: 15
`, "any")
	if r.CrawlDelay != 15*time.Second {
		t.Fatalf("crawl delay %v", r.CrawlDelay)
	}
}

func TestEmptyDisallowMeansAllowAll(t *testing.T) {
	r := Parse(`
User-agent: *
Disallow:
`, "any")
	if !r.Allowed("/everything") {
		t.Fatal("empty Disallow must allow all")
	}
}

func TestMultipleAgentsOneGroup(t *testing.T) {
	r := Parse(`
User-agent: alpha
User-agent: beta
Disallow: /x
`, "beta-bot")
	if r.Allowed("/x/y") {
		t.Fatal("group with multiple agents not applied")
	}
}

func TestAllowedEmptyPathIsRoot(t *testing.T) {
	r := Parse("User-agent: *\nDisallow: /", "a")
	if r.Allowed("") {
		t.Fatal("empty path should normalize to / and be blocked")
	}
}

func TestPolitenessWindowWrapsMidnight(t *testing.T) {
	p := PaperPoliteness() // 21..6
	cases := []struct {
		hour int
		want bool
	}{
		{20, false}, {21, true}, {23, true}, {0, true}, {5, true}, {6, false}, {12, false},
	}
	for _, c := range cases {
		tt := time.Date(1999, 3, 1, c.hour, 0, 0, 0, time.UTC)
		if got := p.InWindow(tt); got != c.want {
			t.Errorf("hour %d: InWindow = %v, want %v", c.hour, got, c.want)
		}
	}
}

func TestPolitenessNonWrappedWindow(t *testing.T) {
	p := Politeness{NightOnly: true, NightStart: 9, NightEnd: 17}
	if !p.InWindow(time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC)) {
		t.Fatal("noon should be in 9-17 window")
	}
	if p.InWindow(time.Date(2000, 1, 1, 8, 0, 0, 0, time.UTC)) {
		t.Fatal("8am should be outside 9-17 window")
	}
}

func TestNextAllowedEnforcesMinDelay(t *testing.T) {
	p := Politeness{MinDelay: 10 * time.Second}
	base := time.Date(1999, 3, 1, 22, 0, 0, 0, time.UTC)
	got := p.NextAllowed(base, base.Add(-3*time.Second))
	want := base.Add(7 * time.Second)
	if !got.Equal(want) {
		t.Fatalf("NextAllowed = %v, want %v", got, want)
	}
	// No previous request: immediate.
	if got := p.NextAllowed(base, time.Time{}); !got.Equal(base) {
		t.Fatalf("first request delayed to %v", got)
	}
}

func TestNextAllowedDefersToNightWindow(t *testing.T) {
	p := PaperPoliteness()
	day := time.Date(1999, 3, 1, 12, 0, 0, 0, time.UTC) // noon
	got := p.NextAllowed(day, time.Time{})
	if got.Hour() != 21 || got.Day() != 1 {
		t.Fatalf("deferred to %v, want same-day 21:00", got)
	}
	lateNight := time.Date(1999, 3, 1, 23, 0, 0, 0, time.UTC)
	if got := p.NextAllowed(lateNight, time.Time{}); !got.Equal(lateNight) {
		t.Fatalf("in-window request deferred to %v", got)
	}
}

func TestMaxPagesPerNightMatchesPaperWindow(t *testing.T) {
	// 9 hours at >= 10s spacing: 3,240 requests — the arithmetic behind
	// the paper's 3,000-page site window.
	p := PaperPoliteness()
	got := p.MaxPagesPerNight()
	if got != 3240 {
		t.Fatalf("MaxPagesPerNight = %d, want 3240", got)
	}
	if got < 3000 {
		t.Fatal("paper window of 3000 pages would not fit a night")
	}
}

func TestMaxPagesPerNightUnlimited(t *testing.T) {
	p := Politeness{MinDelay: 0}
	if got := p.MaxPagesPerNight(); got <= 0 {
		t.Fatalf("unlimited policy returned %d", got)
	}
}
