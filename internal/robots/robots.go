// Package robots implements robots.txt parsing and the politeness rules
// the paper's experiment operated under (Section 2.3): a minimum delay
// between requests to one site (the paper waited at least 10 seconds) and
// an optional operating window (the paper crawled only 9PM–6AM PST so as
// not to load sites during the day).
package robots

import (
	"bufio"
	"strings"
	"time"
)

// Rules holds the directives applicable to one user agent.
type Rules struct {
	disallow []string
	allow    []string
	// CrawlDelay is the site-requested minimum delay; zero when absent.
	CrawlDelay time.Duration
}

// Parse extracts the rules for the given user agent (case-insensitive)
// from robots.txt content, falling back to the "*" group. An empty file
// allows everything.
func Parse(content, userAgent string) *Rules {
	ua := strings.ToLower(userAgent)
	star := &Rules{}
	specific := &Rules{}
	haveSpecific := false

	var currentAgents []string
	inGroup := false
	appliesTo := func() (toStar, toUA bool) {
		for _, a := range currentAgents {
			if a == "*" {
				toStar = true
			}
			if a != "*" && strings.Contains(ua, a) {
				toUA = true
			}
		}
		return
	}

	sc := bufio.NewScanner(strings.NewReader(content))
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		field := strings.ToLower(strings.TrimSpace(line[:colon]))
		value := strings.TrimSpace(line[colon+1:])
		switch field {
		case "user-agent":
			if inGroup {
				currentAgents = nil
				inGroup = false
			}
			currentAgents = append(currentAgents, strings.ToLower(value))
		case "disallow", "allow", "crawl-delay":
			inGroup = true
			toStar, toUA := appliesTo()
			apply := func(r *Rules) {
				switch field {
				case "disallow":
					if value != "" {
						r.disallow = append(r.disallow, value)
					}
				case "allow":
					if value != "" {
						r.allow = append(r.allow, value)
					}
				case "crawl-delay":
					if d, err := time.ParseDuration(value + "s"); err == nil && d > 0 {
						r.CrawlDelay = d
					}
				}
			}
			if toStar {
				apply(star)
			}
			if toUA {
				apply(specific)
				haveSpecific = true
			}
		}
	}
	if haveSpecific {
		return specific
	}
	return star
}

// Allowed reports whether the given URL path may be fetched. The longest
// matching rule wins; Allow beats Disallow at equal length, matching the
// de-facto standard.
func (r *Rules) Allowed(path string) bool {
	if path == "" {
		path = "/"
	}
	bestLen := -1
	allowed := true
	for _, p := range r.disallow {
		if strings.HasPrefix(path, p) && len(p) > bestLen {
			bestLen = len(p)
			allowed = false
		}
	}
	for _, p := range r.allow {
		if strings.HasPrefix(path, p) && len(p) >= bestLen {
			bestLen = len(p)
			allowed = true
		}
	}
	return allowed
}

// Politeness is the per-site access policy of Section 2.3.
type Politeness struct {
	// MinDelay is the minimum spacing between requests to one site.
	// The paper used 10 seconds.
	MinDelay time.Duration
	// NightOnly restricts crawling to the window [NightStart, NightEnd)
	// hours (local time of the clock in use). The paper used 21..6.
	NightOnly  bool
	NightStart int // hour 0-23
	NightEnd   int // hour 0-23
}

// PaperPoliteness returns the experiment's policy: 10 s between requests,
// crawling 9PM–6AM only.
func PaperPoliteness() Politeness {
	return Politeness{MinDelay: 10 * time.Second, NightOnly: true, NightStart: 21, NightEnd: 6}
}

// InWindow reports whether t falls inside the allowed operating window.
func (p Politeness) InWindow(t time.Time) bool {
	if !p.NightOnly {
		return true
	}
	h := t.Hour()
	if p.NightStart <= p.NightEnd {
		return h >= p.NightStart && h < p.NightEnd
	}
	// Window wraps midnight (e.g. 21..6).
	return h >= p.NightStart || h < p.NightEnd
}

// NextAllowed returns the earliest instant not before t at which a
// request is permitted, given the last request time to the same site.
func (p Politeness) NextAllowed(t, lastRequest time.Time) time.Time {
	earliest := t
	if !lastRequest.IsZero() {
		if next := lastRequest.Add(p.MinDelay); next.After(earliest) {
			earliest = next
		}
	}
	if p.InWindow(earliest) {
		return earliest
	}
	// Advance to the next window start.
	next := time.Date(earliest.Year(), earliest.Month(), earliest.Day(),
		p.NightStart, 0, 0, 0, earliest.Location())
	if !next.After(earliest) {
		next = next.Add(24 * time.Hour)
	}
	return next
}

// MaxPagesPerNight returns how many pages one site can yield per night
// under this policy — the arithmetic behind the paper's 3,000-page
// window: 9 hours at one request per 10 seconds is 3,240 pages.
func (p Politeness) MaxPagesPerNight() int {
	if p.MinDelay <= 0 {
		return int(^uint(0) >> 1)
	}
	hours := 24
	if p.NightOnly {
		if p.NightStart <= p.NightEnd {
			hours = p.NightEnd - p.NightStart
		} else {
			hours = 24 - p.NightStart + p.NightEnd
		}
	}
	return int(time.Duration(hours) * time.Hour / p.MinDelay)
}
