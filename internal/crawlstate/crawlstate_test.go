package crawlstate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLoadMissingIsFresh(t *testing.T) {
	st, err := Load(filepath.Join(t.TempDir(), "state.json"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch.IsZero() || st.Histories == nil || st.Due == nil {
		t.Fatalf("fresh state not initialized: %+v", st)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	st := &State{
		Epoch: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		Histories: map[string][]Obs{
			"http://a.com/": {{Day: 1, Changed: false}, {Day: 2, Changed: true}},
		},
		Due: map[string]float64{"http://a.com/": 3.5},
	}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}

	// The on-disk shape is webcrawl's state.json contract.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"epoch"`, `"histories"`, `"due"`, `"day"`, `"changed"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("state.json lost the %s field:\n%s", key, data)
		}
	}

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Epoch.Equal(st.Epoch) || got.Due["http://a.com/"] != 3.5 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	h := got.Histories["http://a.com/"]
	if len(h) != 2 || h[1].Day != 2 || !h[1].Changed {
		t.Fatalf("history round trip: %+v", h)
	}
}

func TestSaveTrimsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	st, _ := Load(path)
	for i := 0; i < maxHistory+50; i++ {
		st.Histories["u"] = append(st.Histories["u"], Obs{Day: float64(i)})
	}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	h := got.Histories["u"]
	if len(h) != maxHistory {
		t.Fatalf("persisted history has %d entries, want %d", len(h), maxHistory)
	}
	if h[0].Day != 50 {
		t.Fatalf("trim kept the wrong end: first day %g, want 50", h[0].Day)
	}
}

func TestEstimateRate(t *testing.T) {
	st, _ := Load(filepath.Join(t.TempDir(), "none"))
	if _, ok := st.EstimateRate("http://unknown/"); ok {
		t.Fatal("estimate for unknown URL")
	}

	// Regular daily visits, changed every other one: a usable EP signal.
	for i := 1; i <= 10; i++ {
		st.Histories["u"] = append(st.Histories["u"], Obs{Day: float64(i), Changed: i%2 == 0})
	}
	r, ok := st.EstimateRate("u")
	if !ok {
		t.Fatal("no estimate for known URL")
	}
	if r.Estimator != "ep-irregular" || r.RatePerDay <= 0 {
		t.Fatalf("estimate %+v", r)
	}
	if r.Samples != 10 || r.Changes != 5 || r.LastVisitDay != 10 {
		t.Fatalf("history summary %+v", r)
	}
	// The revisit interval derives from the same estimate, clamped.
	if iv := ReviseInterval(st.Histories["u"]); iv < 0.5 || iv > 60 {
		t.Fatalf("interval %g outside the clamp", iv)
	}

	// A single visit has no interval signal: the default estimator.
	st.Histories["single"] = []Obs{{Day: 1}}
	r, ok = st.EstimateRate("single")
	if !ok || r.Estimator != "default" || r.RatePerDay != 0 {
		t.Fatalf("single-visit estimate %+v ok=%v", r, ok)
	}
	if iv := ReviseInterval(st.Histories["single"]); iv != 7 {
		t.Fatalf("no-signal interval %g, want the 7-day default", iv)
	}
}
