// Package crawlstate is the persistent sidecar of a live crawl: the
// epoch anchoring fractional-day timestamps, the per-URL change
// histories feeding the Section 5.3 estimators, and the revisit
// schedule. webcrawl reads and writes it between runs (state.json next
// to the page store); webservd reads it to answer /v1/estimates —
// which is why it lives here rather than inside either command.
package crawlstate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"webevolve/internal/changefreq"
)

// State is the persisted frontier/estimator sidecar next to the page
// store. The JSON shape is webcrawl's state.json contract and must not
// change incompatibly: existing crawl directories reload across
// versions.
type State struct {
	// Epoch anchors fractional-day timestamps.
	Epoch time.Time `json:"epoch"`
	// Histories maps URL -> (visit day, changed?) pairs.
	Histories map[string][]Obs `json:"histories"`
	// Due maps URL -> next scheduled visit day.
	Due map[string]float64 `json:"due"`
}

// Obs is one visit observation: when, and whether the page had changed
// since the previous visit.
type Obs struct {
	Day     float64 `json:"day"`
	Changed bool    `json:"changed"`
}

// maxHistory bounds each page's persisted history; the estimators need
// tens of observations, not an unbounded log.
const maxHistory = 200

// Load reads the state at path; a missing file is a fresh state with
// the epoch at the current hour.
func Load(path string) (*State, error) {
	st := &State{
		Epoch:     time.Now().Truncate(time.Hour),
		Histories: make(map[string][]Obs),
		Due:       make(map[string]float64),
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("corrupt state file %s: %w", path, err)
	}
	if st.Histories == nil {
		st.Histories = make(map[string][]Obs)
	}
	if st.Due == nil {
		st.Due = make(map[string]float64)
	}
	return st, nil
}

// Save writes the state atomically (temp file + rename), trimming each
// history to its persisted bound.
func Save(path string, st *State) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	for u, h := range st.Histories {
		if len(h) > maxHistory {
			st.Histories[u] = h[len(h)-maxHistory:]
		}
	}
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Rate is a change-frequency readout for one page, derived from its
// history with the paper's irregular-interval EP estimator.
type Rate struct {
	// Estimator names what produced RatePerDay: "ep-irregular" when the
	// estimator converged, "default" when there was no usable signal.
	Estimator string
	// RatePerDay is the estimated change rate lambda (changes/day).
	RatePerDay float64
	// Samples and Changes summarize the history behind the estimate.
	Samples int
	Changes int
	// LastVisitDay is the most recent observation's day.
	LastVisitDay float64
}

// EstimateRate derives a page's change rate from its history. ok is
// false for an empty history; a history the estimator cannot use
// (e.g. a single visit) reports the "default" estimator with rate 0.
func (st *State) EstimateRate(url string) (Rate, bool) {
	history := st.Histories[url]
	if len(history) == 0 {
		return Rate{}, false
	}
	r := Rate{Estimator: "default", Samples: len(history), LastVisitDay: history[len(history)-1].Day}
	for _, o := range history {
		if o.Changed {
			r.Changes++
		}
	}
	h := &changefreq.History{}
	for _, o := range history {
		if err := h.Record(changefreq.Observation{Time: o.Day, Changed: o.Changed}); err != nil {
			return r, true
		}
	}
	if est, err := changefreq.EPIrregular(h); err == nil && est.Rate > 0 {
		r.Estimator = "ep-irregular"
		r.RatePerDay = est.Rate
	}
	return r, true
}

// ReviseInterval estimates a revisit interval (days) from a visit
// history using EP, defaulting to 7 days with no signal: revisit at
// twice the estimated change rate, clamped to [0.5, 60] days.
func ReviseInterval(history []Obs) float64 {
	h := &changefreq.History{}
	for _, o := range history {
		if err := h.Record(changefreq.Observation{Time: o.Day, Changed: o.Changed}); err != nil {
			return 7
		}
	}
	est, err := changefreq.EPIrregular(h)
	if err != nil || est.Rate <= 0 {
		return 7
	}
	iv := 0.5 / est.Rate
	if iv < 0.5 {
		iv = 0.5
	}
	if iv > 60 {
		iv = 60
	}
	return iv
}
