package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event is one trace span, serialized as a single JSONL line. The
// engine emits one event per round phase (pop, fetch, apply_schedule,
// apply_content, push), all carrying the round's ID, so sorting a
// trace by ts and grouping by round reconstructs how the pipeline
// overlapped rounds offline.
type Event struct {
	// TS is the span's start, in milliseconds since the trace epoch
	// (process start).
	TS float64 `json:"ts"`
	// Dur is the span's duration in milliseconds.
	Dur float64 `json:"dur"`
	// Name is the span name (pop, fetch, apply_schedule, ...).
	Name string `json:"name"`
	// Round is the engine round the span belongs to, when it has one.
	Round uint64 `json:"round,omitempty"`
	// N counts the units the span covered (jobs in a round, entries in
	// a push), when meaningful.
	N int `json:"n,omitempty"`
}

// Trace is a bounded in-memory ring of Events with an optional JSONL
// writer. Emitting is cheap (one mutex, no allocation beyond the ring
// slot); the ring keeps the most recent events for the /debug/trace
// tail even when no file sink is attached.
type Trace struct {
	epoch time.Time

	mu    sync.Mutex
	ring  []Event
	next  int // ring index of the next write
	total int // events ever emitted
	w     *json.Encoder
}

// NewTrace builds a trace keeping the last size events.
func NewTrace(size int) *Trace {
	if size < 1 {
		size = 1
	}
	return &Trace{epoch: time.Now(), ring: make([]Event, size)}
}

// DefaultTrace is the process-wide trace sink, mirroring Default.
var DefaultTrace = NewTrace(4096)

// SetWriter attaches a JSONL sink: every subsequent event is appended
// to w as one JSON line. Pass nil to detach. The caller owns w's
// lifetime (typically a file closed on shutdown).
func (t *Trace) SetWriter(w interface{ Write([]byte) (int, error) }) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w == nil {
		t.w = nil
		return
	}
	t.w = json.NewEncoder(w)
}

// Span records a span that started at start and just ended.
func (t *Trace) Span(name string, round uint64, n int, start time.Time) {
	t.Emit(Event{
		TS:    float64(start.Sub(t.epoch).Microseconds()) / 1e3,
		Dur:   float64(time.Since(start).Microseconds()) / 1e3,
		Name:  name,
		Round: round,
		N:     n,
	})
}

// Emit appends one event to the ring and the writer, if attached.
func (t *Trace) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	if t.w != nil {
		_ = t.w.Encode(e)
	}
}

// Tail returns the most recent n events, oldest first. n <= 0 returns
// everything the ring holds.
func (t *Trace) Tail(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	held := t.total
	if held > len(t.ring) {
		held = len(t.ring)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = t.ring[(t.next-n+i+len(t.ring))%len(t.ring)]
	}
	return out
}

// Total returns the number of events ever emitted.
func (t *Trace) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Handler serves the trace tail as JSONL (application/x-ndjson):
// GET /debug/trace[?n=200] returns the last n events (default: the
// whole ring), one JSON object per line, oldest first.
func (t *Trace) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range t.Tail(n) {
			_ = enc.Encode(e)
		}
	})
}
