package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact Prometheus text format: sorted
// families, HELP/TYPE headers, label escaping, cumulative histogram
// buckets with _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorted last").Add(7)
	r.Gauge("aa_depth", "sorted first").Set(-3)
	v := r.CounterVec("ops_total", "ops by kind", "op", "status")
	v.With("get", "ok").Add(2)
	v.With("put", `we"ird`).Inc()
	h := r.Histogram("latency_seconds", "op latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.01) // lands in the le="0.01" bucket (le is inclusive)
	h.Observe(5)
	r.GaugeFunc("fn_value", "from a callback", func() float64 { return 42.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_depth sorted first
# TYPE aa_depth gauge
aa_depth -3
# HELP fn_value from a callback
# TYPE fn_value gauge
fn_value 42.5
# HELP latency_seconds op latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.001"} 1
latency_seconds_bucket{le="0.01"} 2
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.0105
latency_seconds_count 3
# HELP ops_total ops by kind
# TYPE ops_total counter
ops_total{op="get",status="ok"} 2
ops_total{op="put",status="we\"ird"} 1
# HELP zz_last_total sorted last
# TYPE zz_last_total counter
zz_last_total 7
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryRace hammers counters, gauges, histograms and vec
// children from many goroutines while a scraper renders the registry —
// the -race run is the assertion.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", LatencyBuckets)
	v := r.CounterVec("v_total", "", "op")
	tr := NewTrace(64)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops := []string{"get", "put", "scan"}
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Add(int64(j%3 - 1))
				h.Observe(float64(j) * 1e-5)
				v.With(ops[j%len(ops)]).Inc()
				tr.Span("op", uint64(j), 1, time.Now())
			}
		}(i)
	}
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			r.Summary()
			tr.Tail(0)
		}
	}()
	wg.Wait()
	close(stop)
	<-scraperDone

	if got := c.Value(); got != 16000 {
		t.Errorf("counter = %d, want 16000", got)
	}
	if got := h.Count(); got != 16000 {
		t.Errorf("histogram count = %d, want 16000", got)
	}
	var total int64
	for _, op := range []string{"get", "put", "scan"} {
		total += v.With(op).Value()
	}
	if total != 16000 {
		t.Errorf("vec total = %d, want 16000", total)
	}
}

// TestHistogramBuckets pins the bucket search: values at a bound land
// in that bound's bucket (le is inclusive), values past the last bound
// land in +Inf.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11} {
		h.Observe(v)
	}
	got := []uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load()}
	want := []uint64{2, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Sum() != 24 {
		t.Errorf("sum = %g, want 24", h.Sum())
	}
}

// TestReRegistration checks get-or-create semantics and conflict
// panics.
func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Error("same-name counter did not return the existing child")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestTraceTailAndHandler covers the ring wrap, ordering, and the
// /debug/trace JSONL endpoint.
func TestTraceTailAndHandler(t *testing.T) {
	tr := NewTrace(4)
	for i := 1; i <= 6; i++ {
		tr.Emit(Event{Name: "e", Round: uint64(i)})
	}
	tail := tr.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("tail holds %d events, want 4", len(tail))
	}
	for i, e := range tail {
		if want := uint64(i + 3); e.Round != want {
			t.Errorf("tail[%d].Round = %d, want %d", i, e.Round, want)
		}
	}
	if got := tr.Tail(2); len(got) != 2 || got[1].Round != 6 {
		t.Errorf("Tail(2) = %+v, want last two events ending at round 6", got)
	}

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?n=3", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3:\n%s", len(lines), rec.Body.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"ts":`) {
			t.Errorf("line %q does not look like a trace event", l)
		}
	}
}

// TestSummary checks the one-line snapshot format: summed children,
// histogram counts, zero families skipped.
func TestSummary(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "", "op")
	v.With("a").Add(3)
	v.With("b").Add(4)
	r.Counter("zero_total", "") // stays zero: skipped
	r.Histogram("lat_seconds", "", LatencyBuckets).Observe(1)
	got := strings.Join(r.Summary(), " ")
	want := "lat_seconds_count=1 ops_total=7"
	if got != want {
		t.Errorf("Summary() = %q, want %q", got, want)
	}
}
