// Package obs is the observability plane shared by every webevolve
// binary: a dependency-free metrics registry (atomic counters, gauges,
// histograms with fixed log-scale buckets, labeled families), a
// Prometheus-text-format exposition handler, and a JSONL trace sink
// for the engine's round pipeline (trace.go).
//
// The package is deliberately stdlib-only and allocation-light on the
// hot path: a counter increment is one atomic add, a histogram
// observation is a binary search over a fixed bucket table plus two
// atomic adds. Instrumented packages declare their families as
// package-level variables against Default; binaries expose them
// through internal/daemon's -metrics-listen debug listener.
//
// Registering a family that already exists returns the existing one
// when the kind, help and label names match (so two subsystems — or
// two instances of one subsystem — can share a family), and panics
// when they conflict: a name collision across kinds is a programming
// error. Func-backed gauges are the exception: re-registering replaces
// the callback, so the most recently constructed instance is the one
// scraped.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Package-level instrumentation
// registers here; tests that need isolation build their own via
// NewRegistry.
var Default = NewRegistry()

// Registry holds metric families. All methods are safe for concurrent
// use, including exposition while writers are active.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// metric kinds
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric family: a kind, a help string, a label
// schema, and one child per label-value combination (one unlabeled
// child when the schema is empty).
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // Counter / Gauge / Histogram, keyed by joined label values
	fn       func() float64 // func-backed gauge; nil otherwise
}

// labelKey joins label values unambiguously (values cannot contain
// \xff in practice; ops/phases/status codes are short identifiers).
func labelKey(lvs []string) string { return strings.Join(lvs, "\xff") }

// lookup returns the family, creating it if absent, and panics on a
// conflicting re-registration.
func (r *Registry) lookup(name, help, kind string, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		buckets:  buckets,
		children: make(map[string]any),
	}
	r.fams[name] = f
	return f
}

// child returns the family's child for the given label values,
// creating it with make on first use.
func (f *family) child(lvs []string, make func() any) any {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	key := labelKey(lvs)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = make()
		f.children[key] = c
	}
	return c
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (cumulative at
// exposition time, per-bucket internally) and tracks their sum.
type Histogram struct {
	bounds []float64       // upper bounds; observations > last land in +Inf
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time — for values some other structure already tracks
// (queue lengths, open collections). Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (strictly increasing; see LatencyBuckets
// and BytesBuckets for the standard log-scale tables).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, kindHistogram, buckets, nil)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, kindCounter, nil, labels)}
}

// With returns the child counter for the given label values. Callers
// on hot paths should cache the child rather than calling With per
// event.
func (v *CounterVec) With(lvs ...string) *Counter {
	return v.f.child(lvs, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, kindGauge, nil, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(lvs ...string) *Gauge {
	return v.f.child(lvs, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, kindHistogram, buckets, labels)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(lvs ...string) *Histogram {
	return v.f.child(lvs, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// ExpBuckets returns n exponentially spaced bucket upper bounds
// starting at start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets is the standard log-scale table for durations in
// seconds: 25µs to ~105s in ×4 steps. Loopback wire ops sit in the
// bottom buckets, polite live fetches in the top.
var LatencyBuckets = ExpBuckets(25e-6, 4, 12)

// BytesBuckets is the standard log-scale table for sizes in bytes:
// 64 B to 256 MiB in ×4 steps (the wire's frame cap is 64 MiB).
var BytesBuckets = ExpBuckets(64, 4, 12)
