package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, then one
// sample line per child, histograms expanded into cumulative _bucket
// series plus _sum and _count. Families and children are sorted, so
// the output is deterministic — the golden test and the smoke scripts'
// parse check both rely on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, n := range names {
		writeFamily(bw, fams[n])
	}
	return bw.Flush()
}

// snapshotChildren copies a family's child map under its lock,
// capturing the func-gauge value at the same time.
func (f *family) snapshotChildren() (keys []string, children map[string]any, fnVal float64, hasFn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	children = make(map[string]any, len(f.children))
	for k, c := range f.children {
		keys = append(keys, k)
		children[k] = c
	}
	if f.fn != nil {
		fnVal, hasFn = f.fn(), true
	}
	sort.Strings(keys)
	return
}

func writeFamily(w *bufio.Writer, f *family) {
	keys, children, fnVal, hasFn := f.snapshotChildren()
	if len(keys) == 0 && !hasFn {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	if hasFn {
		fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(fnVal))
		return
	}
	for _, key := range keys {
		labels := labelPairs(f.labels, key)
		switch c := children[key].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, braced(labels), c.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, braced(labels), c.Value())
		case *Histogram:
			cum := uint64(0)
			for i, bound := range c.bounds {
				cum += c.counts[i].Load()
				le := append(labels, `le="`+fmtFloat(bound)+`"`)
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(le), cum)
			}
			cum += c.counts[len(c.bounds)].Load()
			le := append(labels, `le="+Inf"`)
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(le), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(labels), fmtFloat(c.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(labels), c.Count())
		}
	}
}

// labelPairs renders `name="value"` pairs for a child key. The slice
// has spare capacity so histogram exposition can append an le pair
// without sharing backing arrays across iterations.
func labelPairs(names []string, key string) []string {
	if len(names) == 0 {
		return make([]string, 0, 1)
	}
	values := strings.Split(key, "\xff")
	pairs := make([]string, 0, len(names)+1)
	for i, n := range names {
		pairs = append(pairs, n+`="`+escapeLabel(values[i])+`"`)
	}
	return pairs
}

func braced(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// fmtFloat renders a float the shortest way that round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry at /metrics in
// the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Summary returns one "name=value" pair per family, sorted by name —
// children summed for counters and gauges, observation count for
// histograms, so a -stats-every line stays one line. Zero-valued
// families are skipped.
func (r *Registry) Summary() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	out := make([]string, 0, len(names))
	for _, n := range names {
		f := fams[n]
		keys, children, fnVal, hasFn := f.snapshotChildren()
		if hasFn {
			out = append(out, n+"="+fmtFloat(fnVal))
			continue
		}
		var total int64
		var obsCount uint64
		for _, key := range keys {
			switch c := children[key].(type) {
			case *Counter:
				total += c.Value()
			case *Gauge:
				total += c.Value()
			case *Histogram:
				obsCount += c.Count()
			}
		}
		switch f.kind {
		case kindHistogram:
			if obsCount != 0 {
				out = append(out, n+"_count="+strconv.FormatUint(obsCount, 10))
			}
		default:
			if total != 0 {
				out = append(out, n+"="+strconv.FormatInt(total, 10))
			}
		}
	}
	return out
}
