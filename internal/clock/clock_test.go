package clock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtGivenTime(t *testing.T) {
	start := time.Date(2020, 5, 1, 12, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestExperimentClockEpoch(t *testing.T) {
	v := NewExperimentClock()
	want := time.Date(1999, time.February, 17, 0, 0, 0, 0, time.UTC)
	if !v.Now().Equal(want) {
		t.Fatalf("experiment clock starts at %v, want %v", v.Now(), want)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Advance(48 * time.Hour)
	if got := v.Now().Sub(Epoch); got != 48*time.Hour {
		t.Fatalf("advanced %v, want 48h", got)
	}
}

func TestVirtualAdvanceNegativeIgnored(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Advance(-time.Hour)
	if !v.Now().Equal(Epoch) {
		t.Fatal("negative advance moved the clock")
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual(Epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Hour) // must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("virtual Sleep blocked")
	}
	if v.Now().Sub(Epoch) != time.Hour {
		t.Fatalf("Sleep advanced %v, want 1h", v.Now().Sub(Epoch))
	}
}

func TestVirtualSetOnlyForward(t *testing.T) {
	v := NewVirtual(Epoch)
	later := Epoch.Add(3 * Day)
	v.Set(later)
	if !v.Now().Equal(later) {
		t.Fatalf("Set forward failed: %v", v.Now())
	}
	v.Set(Epoch) // backwards: ignored
	if !v.Now().Equal(later) {
		t.Fatal("Set moved the clock backwards")
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual(Epoch)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Advance(time.Minute)
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(Epoch); got != 50*time.Minute {
		t.Fatalf("concurrent advances yielded %v, want 50m", got)
	}
}

func TestDaysRoundTrip(t *testing.T) {
	cases := []float64{0, 0.5, 1, 2.25, 128}
	for _, d := range cases {
		if got := Days(FromDays(d)); got < d-1e-9 || got > d+1e-9 {
			t.Errorf("Days(FromDays(%v)) = %v", d, got)
		}
	}
}

func TestDayConstant(t *testing.T) {
	if Day != 24*time.Hour {
		t.Fatalf("Day = %v", Day)
	}
}

func TestSinceEpoch(t *testing.T) {
	start := Epoch
	tt := Epoch.Add(36 * time.Hour)
	if got := SinceEpoch(start, tt); got != 36*time.Hour {
		t.Fatalf("SinceEpoch = %v", got)
	}
}

func TestWallClockProgresses(t *testing.T) {
	w := Wall{}
	a := w.Now()
	w.Sleep(time.Millisecond)
	if !w.Now().After(a) {
		t.Fatal("wall clock did not progress")
	}
}
