// Package clock provides injectable time sources so that crawler logic,
// schedulers and experiments can run against either wall-clock time or a
// deterministic virtual clock.
//
// All time-dependent code in this repository accepts a Clock rather than
// calling time.Now directly. Experiments use Virtual so that a 4-month
// crawl (the paper monitors 270 sites for 128 days) replays in
// milliseconds and is perfectly reproducible.
package clock

import (
	"sync"
	"time"
)

// Day is the canonical experiment granularity: the paper visits every page
// once per day, so one day is the smallest change-detection interval
// (Section 3.1, Figure 1).
const Day = 24 * time.Hour

// Clock abstracts a time source.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks (or virtually advances) for d.
	Sleep(d time.Duration)
}

// Wall is the real-time clock backed by the time package.
type Wall struct{}

// Now returns time.Now().
func (Wall) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic, manually advanced clock. The zero value is
// not ready for use; call NewVirtual.
//
// Virtual is safe for concurrent use. Sleep advances the clock immediately
// rather than blocking, which makes single-goroutine simulations trivially
// fast; multi-goroutine simulations that need barrier semantics should use
// Advance from a coordinator instead.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the simulated start of the paper's experiment:
// February 17th, 1999 (Section 2).
var Epoch = time.Date(1999, time.February, 17, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock starting at t.
func NewVirtual(t time.Time) *Virtual { return &Virtual{now: t} }

// NewExperimentClock returns a virtual clock starting at the paper's
// experiment epoch (1999-02-17).
func NewExperimentClock() *Virtual { return NewVirtual(Epoch) }

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the virtual clock by d without blocking.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the clock forward by d. Negative d is ignored: a
// simulation clock never runs backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set jumps the clock to t if t is later than the current instant.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// SinceEpoch reports the duration elapsed since start for the instant t.
func SinceEpoch(start, t time.Time) time.Duration { return t.Sub(start) }

// Days converts a duration to fractional days.
func Days(d time.Duration) float64 { return d.Hours() / 24 }

// FromDays converts fractional days to a duration.
func FromDays(days float64) time.Duration {
	return time.Duration(days * float64(Day))
}
