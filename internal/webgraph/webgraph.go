// Package webgraph stores the directed link graph among pages and the
// site-level hypergraph projection the paper uses for site selection
// (Section 2.2): nodes are web sites and an edge exists between two sites
// when any page of one links to any page of the other.
package webgraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PageID identifies a page; callers use URLs.
type PageID = string

// Graph is a mutable directed graph over pages. It is safe for concurrent
// use: crawler modules add links while the ranking module scans.
type Graph struct {
	mu  sync.RWMutex
	out map[PageID]map[PageID]struct{}
	in  map[PageID]map[PageID]struct{}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out: make(map[PageID]map[PageID]struct{}),
		in:  make(map[PageID]map[PageID]struct{}),
	}
}

// AddPage ensures the page exists as a node.
func (g *Graph) AddPage(p PageID) {
	g.mu.Lock()
	g.ensure(p)
	g.mu.Unlock()
}

func (g *Graph) ensure(p PageID) {
	if _, ok := g.out[p]; !ok {
		g.out[p] = make(map[PageID]struct{})
	}
	if _, ok := g.in[p]; !ok {
		g.in[p] = make(map[PageID]struct{})
	}
}

// AddLink records a directed link from -> to, creating nodes as needed.
// Self-links are recorded but ignored by PageRank.
func (g *Graph) AddLink(from, to PageID) {
	g.mu.Lock()
	g.ensure(from)
	g.ensure(to)
	g.out[from][to] = struct{}{}
	g.in[to][from] = struct{}{}
	g.mu.Unlock()
}

// SetLinks replaces the out-links of a page with the given set. The
// crawler calls this when a page's new version is fetched: old links are
// dropped, new ones inserted.
func (g *Graph) SetLinks(from PageID, tos []PageID) {
	g.mu.Lock()
	g.ensure(from)
	for old := range g.out[from] {
		delete(g.in[old], from)
	}
	g.out[from] = make(map[PageID]struct{}, len(tos))
	for _, to := range tos {
		g.ensure(to)
		g.out[from][to] = struct{}{}
		g.in[to][from] = struct{}{}
	}
	g.mu.Unlock()
}

// RemovePage deletes a node and all incident edges.
func (g *Graph) RemovePage(p PageID) {
	g.mu.Lock()
	for to := range g.out[p] {
		delete(g.in[to], p)
	}
	for from := range g.in[p] {
		delete(g.out[from], p)
	}
	delete(g.out, p)
	delete(g.in, p)
	g.mu.Unlock()
}

// HasPage reports whether p is a node.
func (g *Graph) HasPage(p PageID) bool {
	g.mu.RLock()
	_, ok := g.out[p]
	g.mu.RUnlock()
	return ok
}

// NumPages returns the node count.
func (g *Graph) NumPages() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.out)
}

// NumLinks returns the edge count.
func (g *Graph) NumLinks() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, m := range g.out {
		n += len(m)
	}
	return n
}

// OutLinks returns a sorted copy of p's out-neighbours.
func (g *Graph) OutLinks(p PageID) []PageID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.out[p])
}

// InLinks returns a sorted copy of p's in-neighbours.
func (g *Graph) InLinks(p PageID) []PageID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.in[p])
}

// OutDegree returns the number of out-links of p.
func (g *Graph) OutDegree(p PageID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.out[p])
}

// InDegree returns the number of in-links of p.
func (g *Graph) InDegree(p PageID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.in[p])
}

// Pages returns all node IDs in sorted order.
func (g *Graph) Pages() []PageID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.out)
}

func sortedKeys[V any](m map[PageID]V) []PageID {
	out := make([]PageID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns an immutable adjacency view suitable for iterative
// algorithms (PageRank). Node order is deterministic.
type Snapshot struct {
	IDs   []PageID
	Index map[PageID]int
	Out   [][]int32
}

// Snapshot captures the current graph.
func (g *Graph) Snapshot() *Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := sortedKeys(g.out)
	idx := make(map[PageID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	out := make([][]int32, len(ids))
	for i, id := range ids {
		neigh := g.out[id]
		row := make([]int32, 0, len(neigh))
		for to := range neigh {
			if to == id {
				continue // self-links carry no rank
			}
			row = append(row, int32(idx[to]))
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		out[i] = row
	}
	return &Snapshot{IDs: ids, Index: idx, Out: out}
}

// BFSWindow returns up to limit pages reachable breadth-first from root,
// including root, in visit order. Neighbour order is deterministic
// (sorted), matching the paper's "window of pages" from a site root
// (Section 2.1): pages deeper than the window's reach are invisible.
func (g *Graph) BFSWindow(root PageID, limit int) []PageID {
	if limit <= 0 {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.out[root]; !ok {
		return nil
	}
	visited := map[PageID]struct{}{root: {}}
	order := []PageID{root}
	queue := []PageID{root}
	for len(queue) > 0 && len(order) < limit {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range sortedKeys(g.out[cur]) {
			if _, seen := visited[next]; seen {
				continue
			}
			visited[next] = struct{}{}
			order = append(order, next)
			if len(order) >= limit {
				break
			}
			queue = append(queue, next)
		}
	}
	return order
}

// SiteOf extracts the site (host) component of a URL-like page ID. It
// accepts "scheme://host/path", "host/path" and bare "host" forms.
func SiteOf(p PageID) string {
	s := p
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// DomainOf classifies a host into the paper's four domain groups
// (Table 1): "com", "edu", "netorg" (.net and .org) and "gov" (.gov and
// .mil). Anything else is reported as "other".
func DomainOf(host string) string {
	h := strings.ToLower(host)
	switch {
	case strings.HasSuffix(h, ".com") || h == "com":
		return "com"
	case strings.HasSuffix(h, ".edu") || h == "edu":
		return "edu"
	case strings.HasSuffix(h, ".net") || strings.HasSuffix(h, ".org"),
		h == "net", h == "org":
		return "netorg"
	case strings.HasSuffix(h, ".gov") || strings.HasSuffix(h, ".mil"),
		h == "gov", h == "mil":
		return "gov"
	default:
		return "other"
	}
}

// Domains lists the paper's domain groups in Table 1 order.
var Domains = []string{"com", "edu", "netorg", "gov"}

// SiteGraph is the hypergraph projection of Section 2.2: one node per
// site, one directed edge (u,v) when any page on site u links to any page
// on site v. Intra-site links are excluded, as they say nothing about
// cross-site popularity.
type SiteGraph struct {
	Sites []string
	Index map[string]int
	Out   [][]int32
}

// ProjectSites builds the site hypergraph from a page graph.
func ProjectSites(g *Graph) *SiteGraph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	siteSet := make(map[string]map[string]struct{})
	ensureSite := func(s string) map[string]struct{} {
		m, ok := siteSet[s]
		if !ok {
			m = make(map[string]struct{})
			siteSet[s] = m
		}
		return m
	}
	for from, tos := range g.out {
		fs := SiteOf(from)
		ensureSite(fs)
		for to := range tos {
			ts := SiteOf(to)
			ensureSite(ts)
			if fs != ts {
				siteSet[fs][ts] = struct{}{}
			}
		}
	}
	sites := make([]string, 0, len(siteSet))
	for s := range siteSet {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	idx := make(map[string]int, len(sites))
	for i, s := range sites {
		idx[s] = i
	}
	out := make([][]int32, len(sites))
	for i, s := range sites {
		row := make([]int32, 0, len(siteSet[s]))
		for t := range siteSet[s] {
			row = append(row, int32(idx[t]))
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		out[i] = row
	}
	return &SiteGraph{Sites: sites, Index: idx, Out: out}
}

// Validate checks internal consistency of the graph (every out-edge has a
// matching in-edge and vice versa). Tests and debugging use it.
func (g *Graph) Validate() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for from, tos := range g.out {
		for to := range tos {
			if _, ok := g.in[to][from]; !ok {
				return fmt.Errorf("webgraph: missing in-edge %s -> %s", from, to)
			}
		}
	}
	for to, froms := range g.in {
		for from := range froms {
			if _, ok := g.out[from][to]; !ok {
				return errors.New("webgraph: dangling in-edge " + from + " -> " + to)
			}
		}
	}
	return nil
}
