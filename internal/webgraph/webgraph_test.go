package webgraph

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAddLinkCreatesNodes(t *testing.T) {
	g := New()
	g.AddLink("a", "b")
	if !g.HasPage("a") || !g.HasPage("b") {
		t.Fatal("AddLink did not create nodes")
	}
	if g.NumPages() != 2 || g.NumLinks() != 1 {
		t.Fatalf("pages=%d links=%d", g.NumPages(), g.NumLinks())
	}
}

func TestOutInLinksConsistent(t *testing.T) {
	g := New()
	g.AddLink("a", "b")
	g.AddLink("a", "c")
	g.AddLink("b", "c")
	if got := g.OutLinks("a"); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("OutLinks(a) = %v", got)
	}
	if got := g.InLinks("c"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("InLinks(c) = %v", got)
	}
	if g.OutDegree("a") != 2 || g.InDegree("c") != 2 {
		t.Fatal("degree mismatch")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetLinksReplaces(t *testing.T) {
	g := New()
	g.AddLink("p", "old1")
	g.AddLink("p", "old2")
	g.SetLinks("p", []string{"new1", "old2"})
	out := g.OutLinks("p")
	if len(out) != 2 || out[0] != "new1" || out[1] != "old2" {
		t.Fatalf("OutLinks = %v", out)
	}
	if got := g.InLinks("old1"); len(got) != 0 {
		t.Fatalf("old1 still has in-links %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemovePage(t *testing.T) {
	g := New()
	g.AddLink("a", "b")
	g.AddLink("b", "c")
	g.AddLink("c", "a")
	g.RemovePage("b")
	if g.HasPage("b") {
		t.Fatal("b still present")
	}
	if got := g.OutLinks("a"); len(got) != 0 {
		t.Fatalf("a still links to %v", got)
	}
	if got := g.InLinks("c"); len(got) != 0 {
		t.Fatalf("c still linked from %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateLinksCountOnce(t *testing.T) {
	g := New()
	g.AddLink("a", "b")
	g.AddLink("a", "b")
	if g.NumLinks() != 1 {
		t.Fatalf("links = %d", g.NumLinks())
	}
}

func TestSnapshotSkipsSelfLinks(t *testing.T) {
	g := New()
	g.AddLink("a", "a")
	g.AddLink("a", "b")
	snap := g.Snapshot()
	ai := snap.Index["a"]
	if len(snap.Out[ai]) != 1 {
		t.Fatalf("snapshot out of a = %v", snap.Out[ai])
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Snapshot {
		g := New()
		g.AddLink("z", "a")
		g.AddLink("m", "z")
		g.AddLink("a", "m")
		return g.Snapshot()
	}
	a, b := build(), build()
	if fmt.Sprint(a.IDs) != fmt.Sprint(b.IDs) || fmt.Sprint(a.Out) != fmt.Sprint(b.Out) {
		t.Fatal("snapshots differ across identical builds")
	}
	if a.IDs[0] != "a" { // sorted order
		t.Fatalf("IDs not sorted: %v", a.IDs)
	}
}

func TestBFSWindowOrderAndLimit(t *testing.T) {
	g := New()
	// root -> b, c ; b -> d ; c -> e
	g.AddLink("root", "b")
	g.AddLink("root", "c")
	g.AddLink("b", "d")
	g.AddLink("c", "e")
	got := g.BFSWindow("root", 10)
	want := []string{"root", "b", "c", "d", "e"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("BFS order %v, want %v", got, want)
	}
	if got := g.BFSWindow("root", 3); len(got) != 3 {
		t.Fatalf("limited window %v", got)
	}
	if got := g.BFSWindow("missing", 3); got != nil {
		t.Fatalf("missing root yields %v", got)
	}
	if got := g.BFSWindow("root", 0); got != nil {
		t.Fatalf("zero limit yields %v", got)
	}
}

func TestBFSWindowHandlesCycles(t *testing.T) {
	g := New()
	g.AddLink("a", "b")
	g.AddLink("b", "a")
	got := g.BFSWindow("a", 10)
	if len(got) != 2 {
		t.Fatalf("cycle window %v", got)
	}
}

func TestSiteOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://example.com/page", "example.com"},
		{"https://a.edu/", "a.edu"},
		{"bare.org/path", "bare.org"},
		{"justhost.net", "justhost.net"},
	}
	for _, c := range cases {
		if got := SiteOf(c.in); got != c.want {
			t.Errorf("SiteOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDomainOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"yahoo.com", "com"},
		{"www.stanford.edu", "edu"},
		{"apache.org", "netorg"},
		{"isp.net", "netorg"},
		{"nasa.gov", "gov"},
		{"army.mil", "gov"},
		{"foo.io", "other"},
		{"COM", "com"}, // case-insensitive
	}
	for _, c := range cases {
		if got := DomainOf(c.in); got != c.want {
			t.Errorf("DomainOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestProjectSites(t *testing.T) {
	g := New()
	g.AddLink("http://a.com/1", "http://a.com/2") // intra: excluded
	g.AddLink("http://a.com/1", "http://b.edu/")
	g.AddLink("http://b.edu/x", "http://c.gov/")
	sg := ProjectSites(g)
	if len(sg.Sites) != 3 {
		t.Fatalf("sites = %v", sg.Sites)
	}
	ai := sg.Index["a.com"]
	bi := sg.Index["b.edu"]
	ci := sg.Index["c.gov"]
	if len(sg.Out[ai]) != 1 || sg.Out[ai][0] != int32(bi) {
		t.Fatalf("a.com out = %v", sg.Out[ai])
	}
	if len(sg.Out[bi]) != 1 || sg.Out[bi][0] != int32(ci) {
		t.Fatalf("b.edu out = %v", sg.Out[bi])
	}
	if len(sg.Out[ci]) != 0 {
		t.Fatalf("c.gov out = %v", sg.Out[ci])
	}
}

func TestGraphInvariantProperty(t *testing.T) {
	// Random link insertions/removals keep in/out edge sets mirror images.
	type op struct{ From, To uint8 }
	if err := quick.Check(func(ops []op) bool {
		g := New()
		name := func(b uint8) string { return fmt.Sprintf("n%d", b%16) }
		for i, o := range ops {
			switch i % 3 {
			case 0, 1:
				g.AddLink(name(o.From), name(o.To))
			case 2:
				g.RemovePage(name(o.From))
			}
		}
		return g.Validate() == nil
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPagesSorted(t *testing.T) {
	g := New()
	for _, p := range []string{"c", "a", "b"} {
		g.AddPage(p)
	}
	got := g.Pages()
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("Pages() = %v", got)
	}
}
