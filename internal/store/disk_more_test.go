package store

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestDiskSegmentRolling forces segment rotation by shrinking the
// segment cap and verifies reads span multiple segments and reopening
// replays them all.
func TestDiskSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.maxSegmentBytes = 2048 // force frequent rolls
	big := strings.Repeat("x", 512)
	const n = 40
	for i := 0; i < n; i++ {
		rec := PageRecord{
			URL:     fmt.Sprintf("http://s.com/p%03d", i),
			Content: []byte(big),
		}
		if err := d.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 3 {
		t.Fatalf("expected multiple segments, got %v", ids)
	}
	// Random access across segments.
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://s.com/p%03d", i)
		got, ok, err := d.Get(url)
		if err != nil || !ok || len(got.Content) != 512 {
			t.Fatalf("read %s across segments: ok=%v err=%v", url, ok, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != n {
		t.Fatalf("replayed %d records across segments, want %d", d2.Len(), n)
	}
}

// TestDiskCorruptMiddleFrameFailsLoudly flips a byte inside the first
// frame: reopening must NOT silently succeed with the corrupt record
// counted as live.
func TestDiskCorruptMiddleFrameFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(PageRecord{URL: "http://a.com/", Checksum: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(PageRecord{URL: "http://b.com/", Checksum: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of the first record (offset inside value).
	seg := segmentPath(dir, 1)
	data, err := readFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF
	if err := writeFile(seg, data); err != nil {
		t.Fatal(err)
	}
	// The CRC catches it; replay stops at the corrupt frame (treating the
	// rest as lost) rather than serving garbage.
	d2, err := OpenDisk(dir)
	if err != nil {
		// Also acceptable: a hard error. Either way, no garbage reads.
		return
	}
	defer d2.Close()
	if _, ok, _ := d2.Get("http://a.com/"); ok {
		rec, _, _ := d2.Get("http://a.com/")
		if rec.Checksum != 1 {
			t.Fatal("corrupt record served with wrong content")
		}
	}
}

// TestDiskTruncatedSegmentRecovery simulates a crash that tears the
// active segment mid-frame: for every record boundary and several
// mid-frame cuts, truncating the segment and reopening must rebuild
// the index to exactly the records whose frames are CRC-valid in the
// surviving prefix — and the store must keep accepting writes.
func TestDiskTruncatedSegmentRecovery(t *testing.T) {
	src := t.TempDir()
	d, err := OpenDisk(src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	urls := make([]string, n)
	// bounds[i] is the segment size after record i: the frame boundaries.
	bounds := make([]int64, n)
	for i := 0; i < n; i++ {
		urls[i] = fmt.Sprintf("http://s.com/p%03d", i)
		if err := d.Put(PageRecord{URL: urls[i], Checksum: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(segmentPath(src, 1))
		if err != nil {
			t.Fatal(err)
		}
		bounds[i] = st.Size()
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := readFile(segmentPath(src, 1))
	if err != nil {
		t.Fatal(err)
	}

	check := func(cut int64, survivors int) {
		t.Helper()
		dir := t.TempDir()
		if err := writeFile(segmentPath(dir, 1), full[:cut]); err != nil {
			t.Fatal(err)
		}
		d2, err := OpenDisk(dir)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		defer d2.Close()
		if d2.Len() != survivors {
			t.Fatalf("cut=%d: rebuilt %d records, want %d", cut, d2.Len(), survivors)
		}
		for i := 0; i < survivors; i++ {
			rec, ok, err := d2.Get(urls[i])
			if err != nil || !ok || rec.Checksum != uint64(i+1) {
				t.Fatalf("cut=%d: record %d: %+v ok=%v err=%v", cut, i, rec, ok, err)
			}
		}
		for i := survivors; i < n; i++ {
			if _, ok, _ := d2.Get(urls[i]); ok {
				t.Fatalf("cut=%d: torn record %d resurrected", cut, i)
			}
		}
		// Recovery must leave a writable store behind.
		if err := d2.Put(PageRecord{URL: "http://s.com/after", Checksum: 99}); err != nil {
			t.Fatalf("cut=%d: post-recovery write: %v", cut, err)
		}
		if got, ok, _ := d2.Get("http://s.com/after"); !ok || got.Checksum != 99 {
			t.Fatalf("cut=%d: post-recovery record lost", cut)
		}
	}

	prev := int64(0)
	for i, b := range bounds {
		check(b, i+1) // clean cut at the frame boundary
		if b-prev > 2 {
			check(prev+(b-prev)/2, i) // cut mid-frame: record i is torn
			check(b-1, i)             // one byte short of the full frame
		}
		if prev+4 < b {
			check(prev+4, i) // cut inside the 12-byte header
		}
		prev = b
	}
}

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
