package store

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestDiskSegmentRolling forces segment rotation by shrinking the
// segment cap and verifies reads span multiple segments and reopening
// replays them all.
func TestDiskSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.maxSegmentBytes = 2048 // force frequent rolls
	big := strings.Repeat("x", 512)
	const n = 40
	for i := 0; i < n; i++ {
		rec := PageRecord{
			URL:     fmt.Sprintf("http://s.com/p%03d", i),
			Content: []byte(big),
		}
		if err := d.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 3 {
		t.Fatalf("expected multiple segments, got %v", ids)
	}
	// Random access across segments.
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://s.com/p%03d", i)
		got, ok, err := d.Get(url)
		if err != nil || !ok || len(got.Content) != 512 {
			t.Fatalf("read %s across segments: ok=%v err=%v", url, ok, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != n {
		t.Fatalf("replayed %d records across segments, want %d", d2.Len(), n)
	}
}

// TestDiskCorruptMiddleFrameFailsLoudly flips a byte inside the first
// frame: reopening must NOT silently succeed with the corrupt record
// counted as live.
func TestDiskCorruptMiddleFrameFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(PageRecord{URL: "http://a.com/", Checksum: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(PageRecord{URL: "http://b.com/", Checksum: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of the first record (offset inside value).
	seg := segmentPath(dir, 1)
	data, err := readFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF
	if err := writeFile(seg, data); err != nil {
		t.Fatal(err)
	}
	// The CRC catches it; replay stops at the corrupt frame (treating the
	// rest as lost) rather than serving garbage.
	d2, err := OpenDisk(dir)
	if err != nil {
		// Also acceptable: a hard error. Either way, no garbage reads.
		return
	}
	defer d2.Close()
	if _, ok, _ := d2.Get("http://a.com/"); ok {
		rec, _, _ := d2.Get("http://a.com/")
		if rec.Checksum != 1 {
			t.Fatal("corrupt record served with wrong content")
		}
	}
}

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
