package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// backends returns each Collection implementation under a fresh state.
func backends(t *testing.T) map[string]Collection {
	t.Helper()
	disk, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Collection{
		"mem":  NewMem(),
		"disk": disk,
	}
}

func rec(url string, sum uint64) PageRecord {
	return PageRecord{
		URL: url, Checksum: sum, FetchedAt: 1.5,
		Links: []string{"http://x.com/a", "http://x.com/b"},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			want := rec("http://s.com/p1", 42)
			want.Content = []byte("<html>hi</html>")
			want.Version = 7
			want.Importance = 0.9
			if err := c.Put(want); err != nil {
				t.Fatal(err)
			}
			got, ok, err := c.Get(want.URL)
			if err != nil || !ok {
				t.Fatalf("get: %v ok=%v", err, ok)
			}
			if got.URL != want.URL || got.Checksum != want.Checksum ||
				got.Version != want.Version || got.Importance != want.Importance ||
				string(got.Content) != string(want.Content) ||
				fmt.Sprint(got.Links) != fmt.Sprint(want.Links) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			_, ok, err := c.Get("http://nope.com/")
			if err != nil || ok {
				t.Fatalf("missing get: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestPutOverwrites(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			url := "http://s.com/p"
			if err := c.Put(rec(url, 1)); err != nil {
				t.Fatal(err)
			}
			if err := c.Put(rec(url, 2)); err != nil {
				t.Fatal(err)
			}
			got, _, err := c.Get(url)
			if err != nil || got.Checksum != 2 {
				t.Fatalf("overwrite lost: %+v err=%v", got, err)
			}
			if c.Len() != 1 {
				t.Fatalf("len %d after overwrite", c.Len())
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			if err := c.Put(rec("http://s.com/p", 1)); err != nil {
				t.Fatal(err)
			}
			if err := c.Delete("http://s.com/p"); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := c.Get("http://s.com/p"); ok {
				t.Fatal("deleted record still readable")
			}
			if c.Len() != 0 {
				t.Fatalf("len %d", c.Len())
			}
			// Deleting absent keys is a no-op.
			if err := c.Delete("http://never.com/"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEmptyURLRejected(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			if err := c.Put(PageRecord{}); err == nil {
				t.Fatal("empty URL accepted")
			}
		})
	}
}

func TestURLsSortedAndScanOrder(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			for _, u := range []string{"http://c.com/", "http://a.com/", "http://b.com/"} {
				if err := c.Put(rec(u, 1)); err != nil {
					t.Fatal(err)
				}
			}
			urls := c.URLs()
			if fmt.Sprint(urls) != "[http://a.com/ http://b.com/ http://c.com/]" {
				t.Fatalf("URLs %v", urls)
			}
			var seen []string
			if err := c.Scan(func(r PageRecord) bool {
				seen = append(seen, r.URL)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(seen) != fmt.Sprint(urls) {
				t.Fatalf("scan order %v", seen)
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			for i := 0; i < 5; i++ {
				if err := c.Put(rec(fmt.Sprintf("http://s.com/p%d", i), 1)); err != nil {
					t.Fatal(err)
				}
			}
			n := 0
			if err := c.Scan(func(PageRecord) bool { n++; return n < 2 }); err != nil {
				t.Fatal(err)
			}
			if n != 2 {
				t.Fatalf("visited %d records", n)
			}
		})
	}
}

func TestClosedErrors(t *testing.T) {
	m := NewMem()
	m.Close()
	if err := m.Put(rec("http://a.com/", 1)); err != ErrClosed {
		t.Fatalf("put on closed: %v", err)
	}
	if _, _, err := m.Get("x"); err != ErrClosed {
		t.Fatalf("get on closed: %v", err)
	}
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if err := d.Put(rec("http://a.com/", 1)); err != ErrClosed {
		t.Fatalf("disk put on closed: %v", err)
	}
}

func TestDiskReopenReplays(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := d.Put(rec(fmt.Sprintf("http://s.com/p%02d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete("http://s.com/p05"); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(rec("http://s.com/p07", 777)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 19 {
		t.Fatalf("replayed len %d, want 19", d2.Len())
	}
	if _, ok, _ := d2.Get("http://s.com/p05"); ok {
		t.Fatal("tombstone not replayed")
	}
	got, ok, err := d2.Get("http://s.com/p07")
	if err != nil || !ok || got.Checksum != 777 {
		t.Fatalf("overwrite not replayed: %+v ok=%v err=%v", got, ok, err)
	}
}

func TestDiskTornFinalFrameIgnored(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(rec("http://s.com/good", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: add garbage half-frame bytes.
	seg := filepath.Join(dir, "segment-000001.log")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 1 {
		t.Fatalf("len %d after torn frame", d2.Len())
	}
	if _, ok, _ := d2.Get("http://s.com/good"); !ok {
		t.Fatal("good record lost")
	}
	// The store must still accept writes after recovery.
	if err := d2.Put(rec("http://s.com/new", 2)); err != nil {
		t.Fatal(err)
	}
}

func TestDiskCompaction(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Generate lots of garbage: repeated overwrites of few keys.
	for round := 0; round < 30; round++ {
		for i := 0; i < 5; i++ {
			if err := d.Put(rec(fmt.Sprintf("http://s.com/p%d", i), uint64(round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.GarbageRatio() != 0 {
		t.Fatalf("garbage ratio %v after compaction", d.GarbageRatio())
	}
	if d.Len() != 5 {
		t.Fatalf("len %d after compaction", d.Len())
	}
	for i := 0; i < 5; i++ {
		got, ok, err := d.Get(fmt.Sprintf("http://s.com/p%d", i))
		if err != nil || !ok || got.Checksum != 29 {
			t.Fatalf("post-compaction read p%d: %+v ok=%v err=%v", i, got, ok, err)
		}
	}
}

func TestDiskAutoCompactionTriggers(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for round := 0; round < 100; round++ {
		if err := d.Put(rec("http://s.com/only", uint64(round))); err != nil {
			t.Fatal(err)
		}
	}
	if d.GarbageRatio() > 10 {
		t.Fatalf("auto-compaction never ran: ratio %v", d.GarbageRatio())
	}
}

// TestDiskModelCheck drives the disk store with random operations and
// compares against a plain map after every step.
func TestDiskModelCheck(t *testing.T) {
	type op struct {
		Key    uint8
		Sum    uint64
		Delete bool
	}
	if err := quick.Check(func(ops []op) bool {
		d, err := OpenDisk(t.TempDir())
		if err != nil {
			return false
		}
		defer d.Close()
		model := make(map[string]uint64)
		for _, o := range ops {
			url := fmt.Sprintf("http://m.com/p%d", o.Key%8)
			if o.Delete {
				if err := d.Delete(url); err != nil {
					return false
				}
				delete(model, url)
			} else {
				if err := d.Put(rec(url, o.Sum)); err != nil {
					return false
				}
				model[url] = o.Sum
			}
		}
		if d.Len() != len(model) {
			return false
		}
		for u, sum := range model {
			got, ok, err := d.Get(u)
			if err != nil || !ok || got.Checksum != sum {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShadowedSwapPublishesShadow(t *testing.T) {
	s := NewShadowedMem()
	defer s.Close()
	if err := s.Shadow().Put(rec("http://a.com/", 1)); err != nil {
		t.Fatal(err)
	}
	// Invisible before swap.
	if _, ok, _ := s.Current().Get("http://a.com/"); ok {
		t.Fatal("shadow write visible before swap")
	}
	n, err := s.Swap()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("swap published %d pages", n)
	}
	if _, ok, _ := s.Current().Get("http://a.com/"); !ok {
		t.Fatal("swap did not publish")
	}
	// New shadow is empty.
	if s.Shadow().Len() != 0 {
		t.Fatal("fresh shadow not empty")
	}
	if s.Swaps() != 1 {
		t.Fatalf("swaps %d", s.Swaps())
	}
}

func TestShadowedOldCurrentClosedOnSwap(t *testing.T) {
	s := NewShadowedMem()
	old := s.Current()
	if _, err := s.Swap(); err != nil {
		t.Fatal(err)
	}
	if err := old.Put(rec("http://x.com/", 1)); err != ErrClosed {
		t.Fatalf("old current not closed: %v", err)
	}
}

func TestNewShadowedValidation(t *testing.T) {
	if _, err := NewShadowed(nil, nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	sh, err := NewShadowed(nil, func() (Collection, error) { return NewMem(), nil })
	if err != nil {
		t.Fatal(err)
	}
	if sh.Current() == nil || sh.Shadow() == nil {
		t.Fatal("nil collections")
	}
}

func TestShadowedWithDiskBackend(t *testing.T) {
	dir := t.TempDir()
	gen := 0
	newShadow := func() (Collection, error) {
		gen++
		return OpenDisk(filepath.Join(dir, fmt.Sprintf("gen%d", gen)))
	}
	s, err := NewShadowed(nil, newShadow)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Shadow().Put(rec("http://d.com/", 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Current().Get("http://d.com/")
	if err != nil || !ok || got.Checksum != 9 {
		t.Fatalf("disk shadow swap: %+v ok=%v err=%v", got, ok, err)
	}
}
