package store

import (
	"errors"
	"sync"
)

// Shadowed wraps two collections to implement the shadowing update
// discipline of Section 4 ([MJLF84]-style): the crawler writes into a
// separate shadow collection while readers see the current collection
// unchanged; Swap atomically publishes the shadow as the new current
// collection and provides a fresh, empty shadow.
//
// The wrapper makes the freshness trade-off of Figure 8 concrete in code:
// between swaps, newly crawled pages are invisible to readers.
type Shadowed struct {
	mu      sync.RWMutex
	current Collection
	shadow  Collection
	// newShadow constructs the next shadow after a swap.
	newShadow func() (Collection, error)
	swaps     int
}

// NewShadowed builds a shadowed collection pair. current may be nil, in
// which case an empty collection from newShadow serves as the initial
// current collection.
func NewShadowed(current Collection, newShadow func() (Collection, error)) (*Shadowed, error) {
	if newShadow == nil {
		return nil, errors.New("store: nil shadow constructor")
	}
	if current == nil {
		c, err := newShadow()
		if err != nil {
			return nil, err
		}
		current = c
	}
	sh, err := newShadow()
	if err != nil {
		return nil, err
	}
	return &Shadowed{current: current, shadow: sh, newShadow: newShadow}, nil
}

// NewShadowedMem returns a Shadowed pair backed by in-memory collections.
func NewShadowedMem() *Shadowed {
	s, err := NewShadowed(NewMem(), func() (Collection, error) { return NewMem(), nil })
	if err != nil {
		panic(err) // mem constructor cannot fail
	}
	return s
}

// Current returns the collection visible to readers.
func (s *Shadowed) Current() Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.current
}

// Shadow returns the crawler's collection: where writes go before the
// next swap.
func (s *Shadowed) Shadow() Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shadow
}

// Swap publishes the shadow as the current collection, closes the old
// current collection, and installs a fresh shadow. It returns the number
// of pages in the newly published collection.
func (s *Shadowed) Swap() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.current
	s.current = s.shadow
	fresh, err := s.newShadow()
	if err != nil {
		// Roll back: keep serving the old collection.
		s.current = old
		return 0, err
	}
	s.shadow = fresh
	s.swaps++
	if err := old.Close(); err != nil {
		return s.current.Len(), err
	}
	return s.current.Len(), nil
}

// Swaps returns how many swaps have occurred.
func (s *Shadowed) Swaps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.swaps
}

// Close closes both collections.
func (s *Shadowed) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err1 := s.current.Close()
	err2 := s.shadow.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
