package store

import (
	"errors"
	"sync"
)

// Shadowed wraps two collections to implement the shadowing update
// discipline of Section 4 ([MJLF84]-style): the crawler writes into a
// separate shadow collection while readers see the current collection
// unchanged; Swap atomically publishes the shadow as the new current
// collection and provides a fresh, empty shadow.
//
// The wrapper makes the freshness trade-off of Figure 8 concrete in code:
// between swaps, newly crawled pages are invisible to readers.
//
// Collections handed out by Current and Shadow are guarded: each call on
// them is tracked, and Swap retires the old current collection instead
// of closing it outright — the underlying Close happens only once the
// last in-flight call (a reader mid-Scan, say) has finished, so a swap
// never surfaces a spurious ErrClosed in a reader that obtained the
// collection moments earlier. Calls *started* after the swap fail with
// ErrClosed, as before.
type Shadowed struct {
	mu      sync.RWMutex
	current *guarded
	shadow  *guarded
	// newShadow constructs the next shadow after a swap.
	newShadow func() (Collection, error)
	swaps     int
}

// guarded wraps a Collection with an in-flight call count, so retirement
// (at swap or close time) can defer the underlying Close until the
// collection is quiescent.
type guarded struct {
	coll Collection

	mu      sync.Mutex
	ops     int
	retired bool // no new calls; close when ops drains to 0
	closed  bool // underlying Close has run
}

var _ Collection = (*guarded)(nil)

// enter admits one call; it fails once the collection is retired.
func (g *guarded) enter() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.retired {
		return ErrClosed
	}
	g.ops++
	return nil
}

// exit retires the underlying collection if this was the last in-flight
// call on a retired wrapper.
func (g *guarded) exit() {
	g.mu.Lock()
	g.ops--
	doClose := g.retired && g.ops == 0 && !g.closed
	if doClose {
		g.closed = true
	}
	g.mu.Unlock()
	if doClose {
		g.coll.Close()
	}
}

// retire blocks new calls and closes the underlying collection — now if
// it is quiescent, otherwise when the last in-flight call exits (that
// deferred Close's error is necessarily dropped; callers who need it
// must quiesce first).
func (g *guarded) retire() error {
	g.mu.Lock()
	if g.retired {
		g.mu.Unlock()
		return nil
	}
	g.retired = true
	idle := g.ops == 0
	if idle {
		g.closed = true
	}
	g.mu.Unlock()
	if idle {
		return g.coll.Close()
	}
	return nil
}

// Put implements Collection.
func (g *guarded) Put(rec PageRecord) error {
	if err := g.enter(); err != nil {
		return err
	}
	defer g.exit()
	return g.coll.Put(rec)
}

// PutBatch implements Collection.
func (g *guarded) PutBatch(recs []PageRecord) error {
	if err := g.enter(); err != nil {
		return err
	}
	defer g.exit()
	return g.coll.PutBatch(recs)
}

// Get implements Collection.
func (g *guarded) Get(url string) (PageRecord, bool, error) {
	if err := g.enter(); err != nil {
		return PageRecord{}, false, err
	}
	defer g.exit()
	return g.coll.Get(url)
}

// Delete implements Collection.
func (g *guarded) Delete(url string) error {
	if err := g.enter(); err != nil {
		return err
	}
	defer g.exit()
	return g.coll.Delete(url)
}

// Len implements Collection; a retired collection reports empty.
func (g *guarded) Len() int {
	if err := g.enter(); err != nil {
		return 0
	}
	defer g.exit()
	return g.coll.Len()
}

// URLs implements Collection; a retired collection reports empty.
func (g *guarded) URLs() []string {
	if err := g.enter(); err != nil {
		return nil
	}
	defer g.exit()
	return g.coll.URLs()
}

// Scan implements Collection. The whole scan is one tracked call: a
// Swap during it defers the underlying Close until the scan returns.
func (g *guarded) Scan(fn func(PageRecord) bool) error {
	if err := g.enter(); err != nil {
		return err
	}
	defer g.exit()
	return g.coll.Scan(fn)
}

// ScanFrom implements Collection with the same one-tracked-call
// contract as Scan: a Swap mid-scan defers the underlying Close until
// the resumed scan returns, so a paged reader never sees ErrClosed for
// a chunk it started before the swap.
func (g *guarded) ScanFrom(after string, fn func(PageRecord) bool) error {
	if err := g.enter(); err != nil {
		return err
	}
	defer g.exit()
	return g.coll.ScanFrom(after, fn)
}

// Close implements Collection (retire semantics: in-flight calls finish
// first).
func (g *guarded) Close() error {
	return g.retire()
}

// NewShadowed builds a shadowed collection pair. current may be nil, in
// which case an empty collection from newShadow serves as the initial
// current collection.
func NewShadowed(current Collection, newShadow func() (Collection, error)) (*Shadowed, error) {
	if newShadow == nil {
		return nil, errors.New("store: nil shadow constructor")
	}
	if current == nil {
		c, err := newShadow()
		if err != nil {
			return nil, err
		}
		current = c
	}
	sh, err := newShadow()
	if err != nil {
		return nil, err
	}
	return &Shadowed{
		current:   &guarded{coll: current},
		shadow:    &guarded{coll: sh},
		newShadow: newShadow,
	}, nil
}

// NewShadowedMem returns a Shadowed pair backed by in-memory collections.
func NewShadowedMem() *Shadowed {
	s, err := NewShadowed(NewMem(), func() (Collection, error) { return NewMem(), nil })
	if err != nil {
		panic(err) // mem constructor cannot fail
	}
	return s
}

// Current returns the collection visible to readers.
func (s *Shadowed) Current() Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.current
}

// Shadow returns the crawler's collection: where writes go before the
// next swap.
func (s *Shadowed) Shadow() Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shadow
}

// View returns the read-only face of the current collection together
// with the swap generation it belongs to. The generation increments at
// every Swap, so a caching reader (the serving plane's hot-set cache)
// keys its entries on it and drops them the moment a swap publishes new
// content. The returned Reader is the op-refcount guard: a read in
// flight across a Swap completes against the collection it started on
// instead of surfacing ErrClosed.
func (s *Shadowed) View() (Reader, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.current, uint64(s.swaps)
}

// Swap publishes the shadow as the current collection, retires the old
// current collection (its Close is deferred until in-flight readers
// finish), and installs a fresh shadow. It returns the number of pages
// in the newly published collection.
func (s *Shadowed) Swap() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.current
	s.current = s.shadow
	fresh, err := s.newShadow()
	if err != nil {
		// Roll back: keep serving the old collection.
		s.current = old
		return 0, err
	}
	s.shadow = &guarded{coll: fresh}
	s.swaps++
	if err := old.retire(); err != nil {
		return s.current.Len(), err
	}
	return s.current.Len(), nil
}

// Swaps returns how many swaps have occurred.
func (s *Shadowed) Swaps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.swaps
}

// Close closes both collections (in-flight calls finish first).
func (s *Shadowed) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err1 := s.current.retire()
	err2 := s.shadow.retire()
	if err1 != nil {
		return err1
	}
	return err2
}
