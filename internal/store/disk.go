package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Disk is a log-structured on-disk Collection: records are appended to
// segment files with CRC-protected framing, an in-memory index maps URL
// to (segment, offset), deletes append tombstones, and a compactor
// rewrites live records when the garbage ratio grows. Opening a directory
// replays the segments to rebuild the index, so a crawl survives a
// restart — a property the paper's in-place incremental crawler needs,
// since it never gets a "start from scratch" moment.
//
// Concurrency: every segment keeps one shared read handle, and reads go
// through positioned ReadAt calls (pread) on it, so they never touch the
// appender's file offset. A reader pins its segment with a reference
// count before leaving the lock; compaction retires old segments by
// marking them, and the file is closed and unlinked only when the last
// pinned reader releases it — a Get or Scan in flight across a Compact
// always completes against the bytes it indexed.
//
// Crash tolerance: replay stops at the first invalid frame — torn OR
// corrupt — and truncates the segment back to the last CRC-valid frame
// (the same sweep the cluster WAL performs), so a crash that leaves
// full-length garbage on the tail delays nothing more than the frames
// that were never acknowledged.
//
// Frame layout (little endian):
//
//	crc32(keyLen ++ valLen ++ key ++ val) uint32
//	keyLen uint32 | valLen uint32 (valLen == tombstoneLen means delete)
//	key bytes | val bytes (JSON-encoded PageRecord)
type Disk struct {
	mu      sync.Mutex
	dir     string
	segID   int   // active segment, append-only
	segOff  int64 // flushed+buffered size of the active segment
	w       *bufio.Writer
	segs    map[int]*segment // all live segments, the active one included
	index   map[string]diskPos
	live    int // live records
	garbage int // superseded/tombstone frames
	closed  bool
	openFDs int // segments currently holding an open handle

	// MaxSegmentBytes bounds a segment before rolling to a new one.
	maxSegmentBytes int64
	// maxOpenSegments caps the open read handles: cold segments beyond
	// it are closed and reopened on demand, so the store's descriptor
	// footprint stays O(cap) however large the collection grows.
	maxOpenSegments int
}

type diskPos struct {
	seg int
	off int64
}

// segment is one segment file and its shared read handle. refs counts
// readers using the handle outside d.mu; a retired segment (replaced by
// compaction, or swept at Close) is closed — and, after compaction,
// unlinked — by whoever drops refs to zero. A cold segment's handle
// may be evicted (f == nil) and is reopened on demand; eviction never
// touches the active segment or one pinned by readers.
type segment struct {
	id      int
	f       *os.File // nil: evicted; reopened by the next acquire
	refs    int
	retired bool
	remove  bool // unlink once released (compacted away)
}

const tombstoneLen = ^uint32(0)

// OpenDisk opens (or creates) a disk collection in dir. A torn or
// corrupt tail left by a crash is truncated back to the last CRC-valid
// frame; it never fails the open.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		dir:             dir,
		segs:            make(map[int]*segment),
		index:           make(map[string]diskPos),
		maxSegmentBytes: 64 << 20,
		maxOpenSegments: 256,
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := d.replay(id); err != nil {
			d.closeSegsLocked()
			return nil, err
		}
	}
	nextID := 1
	if len(ids) > 0 {
		nextID = ids[len(ids)-1] + 1
	}
	if err := d.openSegment(nextID); err != nil {
		d.closeSegsLocked()
		return nil, err
	}
	return d, nil
}

// closeSegsLocked drops every segment handle (open-failure cleanup).
func (d *Disk) closeSegsLocked() {
	for id, s := range d.segs {
		if s.f != nil {
			s.f.Close()
			s.f = nil
			d.openFDs--
		}
		delete(d.segs, id)
	}
}

func segmentPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("segment-%06d.log", id))
}

func segmentIDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if n, _ := fmt.Sscanf(e.Name(), "segment-%06d.log", &id); n == 1 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// openSegment opens the active append segment. The same handle doubles
// as the segment's shared read handle: ReadAt is positioned, so reads
// never disturb the append offset.
func (d *Disk) openSegment(id int) error {
	f, err := os.OpenFile(segmentPath(d.dir, id), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	d.segs[id] = &segment{id: id, f: f}
	d.openFDs++
	storeSegmentOpens.Inc()
	d.segID = id
	d.segOff = st.Size()
	d.w = bufio.NewWriter(f)
	d.evictColdLocked()
	return nil
}

// replay scans one segment, updating the index, and keeps the file open
// as the segment's read handle. The first invalid frame — a truncated
// final frame (torn write) or a full-length frame failing its CRC (a
// crash through garbage in the page cache) — ends the replay and the
// file is truncated back to the last valid frame, like the cluster WAL:
// in the crash case those frames were never acknowledged, so dropping
// them loses nothing a caller was promised. (Mid-file bit rot is
// indistinguishable from a crashed tail at read time and gets the same
// sweep — the WAL discipline trades the rest of that one segment for
// never refusing to open; later segments still replay.) A real read
// I/O error is different: the bytes may be fine, so the open fails
// loudly instead of truncating.
func (d *Disk) replay(id int) error {
	f, err := os.OpenFile(segmentPath(d.dir, id), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	r := bufio.NewReader(f)
	var off int64 // end of the last valid frame
	for {
		key, val, frameLen, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, errTornFrame) && !errors.Is(err, errCorruptFrame) {
				f.Close()
				return fmt.Errorf("store: segment %d offset %d: %w", id, off, err)
			}
			// Torn or corrupt tail: sweep back to the last valid frame.
			if terr := f.Truncate(off); terr != nil {
				f.Close()
				return fmt.Errorf("store: segment %d: sweeping corrupt tail: %w", id, terr)
			}
			storeTornTails.Inc()
			break
		}
		storeReplayedFrames.Inc()
		if val == nil { // tombstone
			if _, ok := d.index[key]; ok {
				delete(d.index, key)
				d.live--
				d.garbage++ // the superseded record
			}
			d.garbage++ // the tombstone itself
		} else {
			if _, ok := d.index[key]; ok {
				d.garbage++
			} else {
				d.live++
			}
			d.index[key] = diskPos{seg: id, off: off}
		}
		off += frameLen
	}
	d.segs[id] = &segment{id: id, f: f}
	d.openFDs++
	storeSegmentOpens.Inc()
	d.evictColdLocked()
	return nil
}

var (
	errTornFrame    = errors.New("store: torn frame")
	errCorruptFrame = errors.New("store: corrupt frame")
)

// readShort maps a short read during a frame: running out of bytes is
// a torn frame (sweepable), any other failure is a real I/O error that
// must fail the open rather than truncate data that may still be fine.
func readShort(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return errTornFrame
	}
	return fmt.Errorf("store: %w", err)
}

func readFrame(r *bufio.Reader) (key string, val []byte, frameLen int64, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, 0, io.EOF
		}
		return "", nil, 0, readShort(err)
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	keyLen := binary.LittleEndian.Uint32(hdr[4:8])
	valLen := binary.LittleEndian.Uint32(hdr[8:12])
	if keyLen > 1<<20 {
		return "", nil, 0, fmt.Errorf("%w: absurd key length", errCorruptFrame)
	}
	kb := make([]byte, keyLen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", nil, 0, readShort(err)
	}
	var vb []byte
	tomb := valLen == tombstoneLen
	if !tomb {
		if valLen > 1<<30 {
			return "", nil, 0, fmt.Errorf("%w: absurd value length", errCorruptFrame)
		}
		vb = make([]byte, valLen)
		if _, err := io.ReadFull(r, vb); err != nil {
			return "", nil, 0, readShort(err)
		}
	}
	h := crc32.NewIEEE()
	_, _ = h.Write(hdr[4:12])
	_, _ = h.Write(kb)
	_, _ = h.Write(vb)
	if h.Sum32() != crc {
		return "", nil, 0, fmt.Errorf("%w: checksum mismatch", errCorruptFrame)
	}
	fl := int64(12) + int64(keyLen)
	if !tomb {
		fl += int64(valLen)
	}
	return string(kb), vb, fl, nil
}

// readValueAt reads one record frame's value through the segment's
// shared handle with positioned reads, verifying the CRC. The offset
// must be a frame boundary the index produced, so a tombstone or a
// failed checksum here means corruption (or a reader outliving its
// pin — a bug).
func readValueAt(f *os.File, off int64) ([]byte, error) {
	var hdr [12]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	keyLen := binary.LittleEndian.Uint32(hdr[4:8])
	valLen := binary.LittleEndian.Uint32(hdr[8:12])
	if keyLen > 1<<20 || valLen == tombstoneLen || valLen > 1<<30 {
		return nil, errors.New("store: corrupt frame at indexed offset")
	}
	buf := make([]byte, int(keyLen)+int(valLen))
	if _, err := f.ReadAt(buf, off+12); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	h := crc32.NewIEEE()
	_, _ = h.Write(hdr[4:12])
	_, _ = h.Write(buf)
	if h.Sum32() != crc {
		return nil, errors.New("store: checksum mismatch (corrupt frame)")
	}
	return buf[keyLen:], nil
}

func appendFrame(w io.Writer, key string, val []byte, tomb bool) (int64, error) {
	var hdr [12]byte
	valLen := uint32(len(val))
	if tomb {
		valLen = tombstoneLen
	}
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:12], valLen)
	h := crc32.NewIEEE()
	_, _ = h.Write(hdr[4:12])
	_, _ = h.Write([]byte(key))
	if !tomb {
		_, _ = h.Write(val)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], h.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte(key)); err != nil {
		return 0, err
	}
	n := int64(12 + len(key))
	if !tomb {
		if _, err := w.Write(val); err != nil {
			return 0, err
		}
		n += int64(len(val))
	}
	return n, nil
}

// acquireLocked pins the segment against retirement, reopening an
// evicted handle on demand. Caller holds d.mu. A pinned segment's
// handle stays valid until release: eviction and retirement both skip
// segments with refs > 0.
func (d *Disk) acquireLocked(id int) (*segment, error) {
	s := d.segs[id]
	if s == nil {
		return nil, fmt.Errorf("store: index references missing segment %d", id)
	}
	if err := d.ensureOpenLocked(s); err != nil {
		return nil, err
	}
	// Pin before evicting: the pin protects the fresh handle from its
	// own eviction pass.
	s.refs++
	d.evictColdLocked()
	return s, nil
}

// ensureOpenLocked reopens an evicted segment handle. It never evicts
// — callers evict at points where the handle they need is protected
// (pinned, or the active segment).
func (d *Disk) ensureOpenLocked(s *segment) error {
	if s.f != nil {
		return nil
	}
	f, err := os.Open(segmentPath(d.dir, s.id))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.f = f
	d.openFDs++
	storeSegmentReopens.Inc()
	return nil
}

// evictColdLocked closes idle handles beyond the cap — never the
// active segment and never one a reader has pinned — so descriptor use
// stays bounded however many segments the collection spans. Map
// iteration order makes the eviction order arbitrary, which is fine: a
// wrongly evicted handle just reopens on its next acquire.
func (d *Disk) evictColdLocked() {
	if d.maxOpenSegments <= 0 {
		return
	}
	for id, s := range d.segs {
		if d.openFDs <= d.maxOpenSegments {
			return
		}
		if id == d.segID || s.f == nil || s.refs > 0 {
			continue
		}
		s.f.Close()
		s.f = nil
		d.openFDs--
		storeSegmentEvictions.Inc()
	}
}

// release drops a reader's pin; the last release of a retired segment
// closes the handle and, for compacted-away segments, unlinks the file.
func (d *Disk) release(s *segment) {
	d.mu.Lock()
	s.refs--
	var f *os.File
	remove := false
	if s.retired && s.refs == 0 && s.f != nil {
		f, s.f = s.f, nil
		d.openFDs--
		remove = s.remove
	}
	// A wide Scan can pin (and open) many segments at once; trim back
	// to the cap as the pins drop.
	d.evictColdLocked()
	d.mu.Unlock()
	if f != nil {
		f.Close()
		if remove {
			os.Remove(segmentPath(d.dir, s.id))
		}
	}
}

// retireLocked removes a segment from the live set. If no reader holds
// it, the handle is closed (and the file removed) immediately;
// otherwise the last reader's release finishes the job. Caller holds
// d.mu.
func (d *Disk) retireLocked(s *segment, remove bool) error {
	delete(d.segs, s.id)
	s.retired, s.remove = true, remove
	if s.refs > 0 {
		return nil
	}
	var err error
	if s.f != nil {
		err = s.f.Close()
		s.f = nil
		d.openFDs--
	}
	if remove {
		if rerr := os.Remove(segmentPath(d.dir, s.id)); err == nil {
			err = rerr
		}
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Put implements Collection.
func (d *Disk) Put(rec PageRecord) error {
	return d.PutBatch([]PageRecord{rec})
}

// PutBatch implements Collection: all records are framed under one lock
// acquisition and flushed to the segment once, so a crawl engine writing
// page batches pays one fsync-sized flush per batch instead of per page.
// Segment rolling and compaction are evaluated once after the batch, so
// the active segment may briefly overshoot its size bound by one batch.
func (d *Disk) PutBatch(recs []PageRecord) error {
	if len(recs) == 0 {
		return nil
	}
	vals := make([][]byte, len(recs))
	for i, rec := range recs {
		if rec.URL == "" {
			return errors.New("store: empty URL")
		}
		val, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		vals[i] = val
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for i, rec := range recs {
		off := d.segOff
		n, err := appendFrame(d.w, rec.URL, vals[i], false)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, ok := d.index[rec.URL]; ok {
			d.garbage++
		} else {
			d.live++
		}
		d.index[rec.URL] = diskPos{seg: d.segID, off: off}
		d.segOff += n
	}
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	storePuts.Add(int64(len(recs)))
	return d.maybeRollLocked()
}

// Get implements Collection. The read happens outside the lock against
// a pinned segment handle, so a concurrent Compact cannot pull the file
// out from under it.
func (d *Disk) Get(url string) (PageRecord, bool, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return PageRecord{}, false, ErrClosed
	}
	pos, ok := d.index[url]
	if !ok {
		d.mu.Unlock()
		return PageRecord{}, false, nil
	}
	s, err := d.acquireLocked(pos.seg)
	d.mu.Unlock()
	if err != nil {
		return PageRecord{}, false, err
	}
	defer d.release(s)
	storeGets.Inc()
	return decodeValueAt(s.f, pos.off)
}

func decodeValueAt(f *os.File, off int64) (PageRecord, bool, error) {
	val, err := readValueAt(f, off)
	if err != nil {
		return PageRecord{}, false, err
	}
	var rec PageRecord
	if err := json.Unmarshal(val, &rec); err != nil {
		return PageRecord{}, false, fmt.Errorf("store: %w", err)
	}
	return rec, true, nil
}

// Delete implements Collection.
func (d *Disk) Delete(url string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, ok := d.index[url]; !ok {
		return nil
	}
	n, err := appendFrame(d.w, url, nil, true)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	delete(d.index, url)
	d.live--
	d.garbage += 2 // superseded record + tombstone
	d.segOff += n
	storeDeletes.Inc()
	return d.maybeRollLocked()
}

// maybeRollLocked starts a new segment when the active one is large, and
// compacts when garbage dominates.
func (d *Disk) maybeRollLocked() error {
	if d.segOff >= d.maxSegmentBytes {
		if err := d.w.Flush(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		// The filled segment stays open as a read handle; only the
		// writer moves on.
		if err := d.openSegment(d.segID + 1); err != nil {
			return err
		}
		storeSegmentRolls.Inc()
	}
	if d.garbage > 4*(d.live+1) && d.live >= 0 {
		return d.compactLocked()
	}
	return nil
}

// compactLocked rewrites all live records into a fresh segment and
// retires the old ones. Raw value bytes are copied frame to frame — no
// decode/re-encode round trip. Old segments whose handles are pinned by
// in-flight readers stay readable until those readers release them;
// their files are unlinked at the last release.
func (d *Disk) compactLocked() error {
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	old := make([]*segment, 0, len(d.segs))
	for _, s := range d.segs {
		old = append(old, s)
	}
	if err := d.openSegment(d.segID + 1); err != nil {
		return err
	}
	newID := d.segID
	urls := make([]string, 0, len(d.index))
	for u := range d.index {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	newIndex := make(map[string]diskPos, len(urls))
	for _, u := range urls {
		pos := d.index[u]
		src := d.segs[pos.seg]
		if err := d.ensureOpenLocked(src); err != nil {
			return err
		}
		val, err := readValueAt(src.f, pos.off)
		if err != nil {
			return err
		}
		off := d.segOff
		n, err := appendFrame(d.w, u, val, false)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		d.segOff += n
		newIndex[u] = diskPos{seg: newID, off: off}
	}
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.index = newIndex
	d.live = len(newIndex)
	d.garbage = 0
	var firstErr error
	for _, s := range old {
		if err := d.retireLocked(s, true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	storeCompactions.Inc()
	return firstErr
}

// Len implements Collection.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.live
}

// URLs implements Collection.
func (d *Disk) URLs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.index))
	for u := range d.index {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// URLsFrom visits the stored URLs strictly after the given URL in
// ascending order — ScanFrom's key-only sibling: one index walk, no
// record reads, lazy ordering, so a chunked consumer (the store
// server's wire URL listing) never sorts the unconsumed tail. The
// index snapshot is taken outside the lock's critical reads.
func (d *Disk) URLsFrom(after string, fn func(string) bool) {
	d.mu.Lock()
	keys := make([]string, 0, len(d.index))
	for u := range d.index {
		if after != "" && u <= after {
			continue
		}
		keys = append(keys, u)
	}
	d.mu.Unlock()
	visitAscending(keys, func(a, b string) bool { return a < b }, fn)
}

// Scan implements Collection: one index snapshot under the lock, then
// positioned reads through pinned segment handles — no per-record file
// open, and a concurrent Compact cannot invalidate the snapshot. The
// scan sees exactly the records indexed at its start (frames are
// immutable once written).
func (d *Disk) Scan(fn func(PageRecord) bool) error {
	return d.ScanFrom("", fn)
}

// ScanFrom is Scan resuming strictly after the given URL (empty scans
// everything): records at or before it are excluded from the snapshot,
// and the suffix is visited lazily in sorted order (heap-select), so a
// chunked consumer (the store server's wire scan) pays one index walk
// plus O(k log n) per chunk — it decodes only the records it returns,
// never sorting or reading the unconsumed tail.
func (d *Disk) ScanFrom(after string, fn func(PageRecord) bool) error {
	type item struct {
		url string
		pos diskPos
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	items := make([]item, 0, len(d.index))
	pinned := make(map[int]*segment)
	for u, pos := range d.index {
		if u <= after && after != "" {
			continue
		}
		items = append(items, item{url: u, pos: pos})
		if pinned[pos.seg] == nil {
			s, err := d.acquireLocked(pos.seg)
			if err != nil {
				d.mu.Unlock()
				for _, p := range pinned {
					d.release(p)
				}
				return err
			}
			pinned[pos.seg] = s
		}
	}
	d.mu.Unlock()
	defer func() {
		for _, s := range pinned {
			d.release(s)
		}
	}()
	var err error
	visitAscending(items, func(a, b item) bool { return a.url < b.url }, func(it item) bool {
		rec, ok, derr := decodeValueAt(pinned[it.pos.seg].f, it.pos.off)
		if derr != nil {
			err = derr
			return false
		}
		if !ok {
			return true
		}
		return fn(rec)
	})
	return err
}

// Compact forces a compaction pass.
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.compactLocked()
}

// GarbageRatio reports garbage frames per live record, for tests.
func (d *Disk) GarbageRatio() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live == 0 {
		return float64(d.garbage)
	}
	return float64(d.garbage) / float64(d.live)
}

// Close implements Collection. Segments pinned by in-flight readers are
// closed by those readers' releases; everything else closes now.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.w.Flush()
	if err != nil {
		err = fmt.Errorf("store: %w", err)
	}
	for _, s := range d.segs {
		if rerr := d.retireLocked(s, false); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}
