package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Disk is a log-structured on-disk Collection: records are appended to
// segment files with CRC-protected framing, an in-memory index maps URL
// to (segment, offset), deletes append tombstones, and a compactor
// rewrites live records when the garbage ratio grows. Opening a directory
// replays the segments to rebuild the index, so a crawl survives a
// restart — a property the paper's in-place incremental crawler needs,
// since it never gets a "start from scratch" moment.
//
// Frame layout (little endian):
//
//	crc32(keyLen ++ valLen ++ key ++ val) uint32
//	keyLen uint32 | valLen uint32 (valLen == tombstoneLen means delete)
//	key bytes | val bytes (JSON-encoded PageRecord)
type Disk struct {
	mu      sync.Mutex
	dir     string
	seg     *os.File // active segment, append-only
	segID   int
	segOff  int64
	w       *bufio.Writer
	index   map[string]diskPos
	live    int   // live records
	garbage int   // superseded/tombstone frames
	written int64 // bytes in active segment
	closed  bool

	// MaxSegmentBytes bounds a segment before rolling to a new one.
	maxSegmentBytes int64
}

type diskPos struct {
	seg int
	off int64
}

const tombstoneLen = ^uint32(0)

// OpenDisk opens (or creates) a disk collection in dir.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		dir:             dir,
		index:           make(map[string]diskPos),
		maxSegmentBytes: 64 << 20,
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := d.replay(id); err != nil {
			return nil, err
		}
	}
	nextID := 1
	if len(ids) > 0 {
		nextID = ids[len(ids)-1] + 1
	}
	if err := d.openSegment(nextID); err != nil {
		return nil, err
	}
	return d, nil
}

func segmentPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("segment-%06d.log", id))
}

func segmentIDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if n, _ := fmt.Sscanf(e.Name(), "segment-%06d.log", &id); n == 1 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

func (d *Disk) openSegment(id int) error {
	f, err := os.OpenFile(segmentPath(d.dir, id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	d.seg = f
	d.segID = id
	d.segOff = st.Size()
	d.written = st.Size()
	d.w = bufio.NewWriter(f)
	return nil
}

// replay scans one segment, updating the index. A truncated final frame
// (torn write from a crash) stops the replay of that segment cleanly.
func (d *Disk) replay(id int) error {
	f, err := os.Open(segmentPath(d.dir, id))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for {
		key, val, frameLen, err := readFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, errTornFrame) {
				return nil // trailing partial write; ignore
			}
			return fmt.Errorf("store: segment %d offset %d: %w", id, off, err)
		}
		if val == nil { // tombstone
			if _, ok := d.index[key]; ok {
				delete(d.index, key)
				d.live--
				d.garbage++ // the superseded record
			}
			d.garbage++ // the tombstone itself
		} else {
			if _, ok := d.index[key]; ok {
				d.garbage++
			} else {
				d.live++
			}
			d.index[key] = diskPos{seg: id, off: off}
		}
		off += frameLen
	}
}

var errTornFrame = errors.New("store: torn frame")

func readFrame(r *bufio.Reader) (key string, val []byte, frameLen int64, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, 0, io.EOF
		}
		return "", nil, 0, errTornFrame
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	keyLen := binary.LittleEndian.Uint32(hdr[4:8])
	valLen := binary.LittleEndian.Uint32(hdr[8:12])
	if keyLen > 1<<20 {
		return "", nil, 0, errors.New("store: absurd key length (corrupt frame)")
	}
	kb := make([]byte, keyLen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", nil, 0, errTornFrame
	}
	var vb []byte
	tomb := valLen == tombstoneLen
	if !tomb {
		if valLen > 1<<30 {
			return "", nil, 0, errors.New("store: absurd value length (corrupt frame)")
		}
		vb = make([]byte, valLen)
		if _, err := io.ReadFull(r, vb); err != nil {
			return "", nil, 0, errTornFrame
		}
	}
	h := crc32.NewIEEE()
	_, _ = h.Write(hdr[4:12])
	_, _ = h.Write(kb)
	_, _ = h.Write(vb)
	if h.Sum32() != crc {
		return "", nil, 0, errors.New("store: checksum mismatch (corrupt frame)")
	}
	fl := int64(12) + int64(keyLen)
	if !tomb {
		fl += int64(valLen)
	}
	return string(kb), vb, fl, nil
}

func appendFrame(w io.Writer, key string, val []byte, tomb bool) (int64, error) {
	var hdr [12]byte
	valLen := uint32(len(val))
	if tomb {
		valLen = tombstoneLen
	}
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:12], valLen)
	h := crc32.NewIEEE()
	_, _ = h.Write(hdr[4:12])
	_, _ = h.Write([]byte(key))
	if !tomb {
		_, _ = h.Write(val)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], h.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte(key)); err != nil {
		return 0, err
	}
	n := int64(12 + len(key))
	if !tomb {
		if _, err := w.Write(val); err != nil {
			return 0, err
		}
		n += int64(len(val))
	}
	return n, nil
}

// Put implements Collection.
func (d *Disk) Put(rec PageRecord) error {
	return d.PutBatch([]PageRecord{rec})
}

// PutBatch implements Collection: all records are framed under one lock
// acquisition and flushed to the segment once, so a crawl engine writing
// page batches pays one fsync-sized flush per batch instead of per page.
// Segment rolling and compaction are evaluated once after the batch, so
// the active segment may briefly overshoot its size bound by one batch.
func (d *Disk) PutBatch(recs []PageRecord) error {
	if len(recs) == 0 {
		return nil
	}
	vals := make([][]byte, len(recs))
	for i, rec := range recs {
		if rec.URL == "" {
			return errors.New("store: empty URL")
		}
		val, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		vals[i] = val
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for i, rec := range recs {
		off := d.segOff
		n, err := appendFrame(d.w, rec.URL, vals[i], false)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, ok := d.index[rec.URL]; ok {
			d.garbage++
		} else {
			d.live++
		}
		d.index[rec.URL] = diskPos{seg: d.segID, off: off}
		d.segOff += n
		d.written += n
	}
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return d.maybeRollLocked()
}

// Get implements Collection.
func (d *Disk) Get(url string) (PageRecord, bool, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return PageRecord{}, false, ErrClosed
	}
	pos, ok := d.index[url]
	d.mu.Unlock()
	if !ok {
		return PageRecord{}, false, nil
	}
	return d.readAt(pos)
}

func (d *Disk) readAt(pos diskPos) (PageRecord, bool, error) {
	f, err := os.Open(segmentPath(d.dir, pos.seg))
	if err != nil {
		return PageRecord{}, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(pos.off, io.SeekStart); err != nil {
		return PageRecord{}, false, fmt.Errorf("store: %w", err)
	}
	_, val, _, err := readFrame(bufio.NewReader(f))
	if err != nil {
		return PageRecord{}, false, fmt.Errorf("store: %w", err)
	}
	var rec PageRecord
	if err := json.Unmarshal(val, &rec); err != nil {
		return PageRecord{}, false, fmt.Errorf("store: %w", err)
	}
	return rec, true, nil
}

// Delete implements Collection.
func (d *Disk) Delete(url string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, ok := d.index[url]; !ok {
		return nil
	}
	n, err := appendFrame(d.w, url, nil, true)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	delete(d.index, url)
	d.live--
	d.garbage += 2 // superseded record + tombstone
	d.segOff += n
	d.written += n
	return d.maybeRollLocked()
}

// maybeRollLocked starts a new segment when the active one is large, and
// compacts when garbage dominates.
func (d *Disk) maybeRollLocked() error {
	if d.segOff >= d.maxSegmentBytes {
		if err := d.w.Flush(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := d.seg.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := d.openSegment(d.segID + 1); err != nil {
			return err
		}
	}
	if d.garbage > 4*(d.live+1) && d.live >= 0 {
		return d.compactLocked()
	}
	return nil
}

// compactLocked rewrites all live records into a fresh segment and
// removes the old ones.
func (d *Disk) compactLocked() error {
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	oldIDs, err := segmentIDs(d.dir)
	if err != nil {
		return err
	}
	newID := d.segID + 1
	if err := d.seg.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := d.openSegment(newID); err != nil {
		return err
	}
	urls := make([]string, 0, len(d.index))
	for u := range d.index {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	newIndex := make(map[string]diskPos, len(urls))
	for _, u := range urls {
		rec, ok, err := d.readAt(d.index[u])
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		val, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		off := d.segOff
		n, err := appendFrame(d.w, u, val, false)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		d.segOff += n
		newIndex[u] = diskPos{seg: newID, off: off}
	}
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.index = newIndex
	d.live = len(newIndex)
	d.garbage = 0
	for _, id := range oldIDs {
		if id == newID {
			continue
		}
		if err := os.Remove(segmentPath(d.dir, id)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Len implements Collection.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.live
}

// URLs implements Collection.
func (d *Disk) URLs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.index))
	for u := range d.index {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Scan implements Collection.
func (d *Disk) Scan(fn func(PageRecord) bool) error {
	for _, u := range d.URLs() {
		rec, ok, err := d.Get(u)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// Compact forces a compaction pass.
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.compactLocked()
}

// GarbageRatio reports garbage frames per live record, for tests.
func (d *Disk) GarbageRatio() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live == 0 {
		return float64(d.garbage)
	}
	return float64(d.garbage) / float64(d.live)
}

// Close implements Collection.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.w.Flush(); err != nil {
		d.seg.Close()
		return fmt.Errorf("store: %w", err)
	}
	return d.seg.Close()
}
