package store

import "webevolve/internal/obs"

// The disk store's metric families, totaled across every Disk instance
// in the process (storerd serves many named collections; each one is a
// Disk). Segment-lifecycle counters make descriptor churn visible: a
// hot eviction/reopen ratio means maxOpenSegments is too small for the
// read pattern.
var (
	storePuts = obs.Default.Counter("webevolve_store_puts_total",
		"records appended (PutBatch items)")
	storeGets = obs.Default.Counter("webevolve_store_gets_total",
		"point reads served from segments")
	storeDeletes = obs.Default.Counter("webevolve_store_deletes_total",
		"tombstones appended")
	storeSegmentOpens = obs.Default.Counter("webevolve_store_segment_opens_total",
		"segment files opened (startup replay and fresh segments)")
	storeSegmentReopens = obs.Default.Counter("webevolve_store_segment_reopens_total",
		"evicted segment handles reopened for a read")
	storeSegmentEvictions = obs.Default.Counter("webevolve_store_segment_evictions_total",
		"idle segment handles closed to stay under the descriptor cap")
	storeSegmentRolls = obs.Default.Counter("webevolve_store_segment_rolls_total",
		"active segments rolled at the size bound")
	storeCompactions = obs.Default.Counter("webevolve_store_compactions_total",
		"live-set rewrites reclaiming garbage segments")
	storeReplayedFrames = obs.Default.Counter("webevolve_store_replayed_frames_total",
		"segment frames replayed at open")
	storeTornTails = obs.Default.Counter("webevolve_store_torn_tails_total",
		"corrupt or torn segment tails swept at open")
)
