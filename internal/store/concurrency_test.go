package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDiskGetCompactRace is the regression test for the Get/compaction
// race: Get used to drop the lock before opening the segment file, so a
// concurrent Compact could os.Remove the segment under the read and a
// live Get failed with file-not-found. With pinned segment handles every
// Get must succeed with a consistent record.
func TestDiskGetCompactRace(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const keys = 8
	url := func(i int) string { return fmt.Sprintf("http://race.com/p%d", i) }
	for i := 0; i < keys; i++ {
		if err := d.Put(rec(url(i), 1)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Value
	fail := func(err error) { failed.CompareAndSwap(nil, err) }

	// Writers generate garbage so compaction has work; compactor runs
	// continuously; getters read continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 2; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < keys; i++ {
				if err := d.Put(rec(url(i), uint64(round))); err != nil {
					fail(err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.Compact(); err != nil {
				fail(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				got, ok, err := d.Get(url(i % keys))
				if err != nil {
					fail(fmt.Errorf("get during compact: %w", err))
					return
				}
				if !ok {
					fail(fmt.Errorf("%s vanished during compact", url(i%keys)))
					return
				}
				if got.Checksum < 1 {
					fail(fmt.Errorf("%s read garbage checksum %d", got.URL, got.Checksum))
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := failed.Load(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskCorruptTailSwept is the regression test for fatal replay on a
// corrupt tail: a crash that leaves a full-length garbage frame (valid
// lengths, bad CRC) used to make OpenDisk fail permanently with
// "checksum mismatch". Replay must instead sweep the tail — truncate
// back to the last CRC-valid frame — keep the prior records, and leave
// a writable store.
func TestDiskCorruptTailSwept(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Put(rec(fmt.Sprintf("http://s.com/p%d", i), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a full-length garbage frame: plausible lengths, wrong CRC —
	// io.ReadFull succeeds, only the checksum catches it.
	seg := segmentPath(dir, 1)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	goodSize := st.Size()
	var frame []byte
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xdeadbeef) // bogus CRC
	binary.LittleEndian.PutUint32(hdr[4:8], 4)          // keyLen
	binary.LittleEndian.PutUint32(hdr[8:12], 8)         // valLen
	frame = append(frame, hdr[:]...)
	frame = append(frame, []byte("keyyvalvalval")[:12]...)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("reopen after corrupt tail must sweep, not fail: %v", err)
	}
	if d2.Len() != 5 {
		t.Fatalf("len %d after sweep, want 5", d2.Len())
	}
	for i := 0; i < 5; i++ {
		got, ok, err := d2.Get(fmt.Sprintf("http://s.com/p%d", i))
		if err != nil || !ok || got.Checksum != uint64(i+1) {
			t.Fatalf("record %d after sweep: %+v ok=%v err=%v", i, got, ok, err)
		}
	}
	if err := d2.Put(rec("http://s.com/after", 99)); err != nil {
		t.Fatalf("post-sweep write: %v", err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// The sweep must be durable: the garbage is physically truncated
	// away, so the next replay never re-reads it.
	st, err = os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != goodSize {
		t.Fatalf("segment size %d after sweep, want %d (garbage not truncated)", st.Size(), goodSize)
	}
}

// TestDiskScanDuringCompact pins the segments a Scan snapshot
// references: a Compact (and even a Close) racing the scan must not
// invalidate its reads mid-flight.
func TestDiskScanDuringCompact(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := d.Put(rec(fmt.Sprintf("http://s.com/p%03d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	started := make(chan struct{})
	compacted := make(chan error, 1)
	go func() {
		<-started
		// Overwrite everything so compaction rewrites into a new segment,
		// then compact twice to also exercise retire-while-pinned.
		for i := 0; i < n; i++ {
			if err := d.Put(rec(fmt.Sprintf("http://s.com/p%03d", i), uint64(i+1000))); err != nil {
				compacted <- err
				return
			}
		}
		err := d.Compact()
		if err == nil {
			err = d.Compact()
		}
		compacted <- err
	}()
	seen := 0
	err = d.Scan(func(PageRecord) bool {
		if seen == 0 {
			close(started)
			// Let the compactor retire every segment under the scan.
			if err := <-compacted; err != nil {
				t.Errorf("compact during scan: %v", err)
			}
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("scan during compact: %v", err)
	}
	if seen != n {
		t.Fatalf("scan saw %d records, want %d", seen, n)
	}
}

// TestDiskConcurrentStress hammers Get/PutBatch/Delete/Compact/Scan from
// many goroutines under -race, then model-checks the survivors.
func TestDiskConcurrentStress(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.maxSegmentBytes = 4096 // force frequent rolls

	const keys = 64
	url := func(i int) string { return fmt.Sprintf("http://stress.com/p%02d", i) }
	var failed atomic.Value
	fail := func(err error) { failed.CompareAndSwap(nil, err) }
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// latest[i] is the last checksum writer i committed per key — used
	// only for a weak sanity bound (reads can't see values from the
	// future); the authoritative check is the final sequential pass.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 1; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					batch := make([]PageRecord, 0, 8)
					for i := 0; i < 8; i++ {
						batch = append(batch, rec(url(rng.Intn(keys)), uint64(round)))
					}
					if err := d.PutBatch(batch); err != nil {
						fail(err)
						return
					}
				case 1:
					if err := d.Delete(url(rng.Intn(keys))); err != nil {
						fail(err)
						return
					}
				case 2:
					if err := d.Compact(); err != nil {
						fail(err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(10) == 0 {
					if err := d.Scan(func(PageRecord) bool { return true }); err != nil {
						fail(fmt.Errorf("scan: %w", err))
						return
					}
					continue
				}
				if _, _, err := d.Get(url(rng.Intn(keys))); err != nil {
					fail(fmt.Errorf("get: %w", err))
					return
				}
			}
		}(g)
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := failed.Load(); err != nil {
		t.Fatal(err)
	}
	// Quiesced: Len, URLs, Get and Scan must agree with each other.
	urls := d.URLs()
	if len(urls) != d.Len() {
		t.Fatalf("URLs %d vs Len %d", len(urls), d.Len())
	}
	scanned := 0
	if err := d.Scan(func(r PageRecord) bool {
		if r.URL != urls[scanned] {
			t.Fatalf("scan order: got %s want %s", r.URL, urls[scanned])
		}
		scanned++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if scanned != len(urls) {
		t.Fatalf("scan visited %d, URLs has %d", scanned, len(urls))
	}
	for _, u := range urls {
		if _, ok, err := d.Get(u); err != nil || !ok {
			t.Fatalf("final get %s: ok=%v err=%v", u, ok, err)
		}
	}
}

// TestDiskCrashReopen simulates a SIGKILL: records are written in
// batches (each batch is flushed before it is acknowledged), the
// segment files are byte-copied at several batch boundaries without
// closing the store, and each copy must reopen to exactly the
// acknowledged contents at that instant.
func TestDiskCrashReopen(t *testing.T) {
	src := t.TempDir()
	d, err := OpenDisk(src)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.maxSegmentBytes = 2048 // span several segments

	type snapshot struct {
		dir   string
		model map[string]uint64
	}
	var snaps []snapshot
	model := make(map[string]uint64)
	rng := rand.New(rand.NewSource(7))
	for batch := 1; batch <= 30; batch++ {
		recs := make([]PageRecord, 0, 10)
		for i := 0; i < 10; i++ {
			u := fmt.Sprintf("http://crash.com/p%02d", rng.Intn(40))
			recs = append(recs, rec(u, uint64(batch*100+i)))
		}
		if err := d.PutBatch(recs); err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			model[r.URL] = r.Checksum
		}
		if batch%7 == 0 {
			du := fmt.Sprintf("http://crash.com/p%02d", rng.Intn(40))
			if err := d.Delete(du); err != nil {
				t.Fatal(err)
			}
			delete(model, du)
		}
		if batch%10 == 0 {
			// "Kill" the process here: copy the directory image as the
			// filesystem holds it, store still open and never Closed.
			snap := snapshot{dir: t.TempDir(), model: make(map[string]uint64, len(model))}
			for k, v := range model {
				snap.model[k] = v
			}
			ids, err := segmentIDs(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				data, err := os.ReadFile(segmentPath(src, id))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(snap.dir, filepath.Base(segmentPath(src, id))), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			snaps = append(snaps, snap)
		}
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots taken")
	}
	for i, snap := range snaps {
		re, err := OpenDisk(snap.dir)
		if err != nil {
			t.Fatalf("snapshot %d: reopen: %v", i, err)
		}
		if re.Len() != len(snap.model) {
			t.Fatalf("snapshot %d: rebuilt %d records, want %d", i, re.Len(), len(snap.model))
		}
		for u, sum := range snap.model {
			got, ok, err := re.Get(u)
			if err != nil || !ok || got.Checksum != sum {
				t.Fatalf("snapshot %d: %s: %+v ok=%v err=%v want sum %d", i, u, got, ok, err, sum)
			}
		}
		// The rebuilt store must keep accepting writes.
		if err := re.Put(rec("http://crash.com/after", 1)); err != nil {
			t.Fatalf("snapshot %d: post-crash write: %v", i, err)
		}
		re.Close()
	}
}

// TestDiskColdSegmentReopen caps open handles far below the segment
// count: reads must transparently reopen evicted segments, the open-FD
// count must respect the cap at rest, and everything must still verify
// after reopen and under concurrent access.
func TestDiskColdSegmentReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.maxSegmentBytes = 1024 // many small segments
	d.maxOpenSegments = 2
	const n = 60
	for i := 0; i < n; i++ {
		r := rec(fmt.Sprintf("http://cold.com/p%03d", i), uint64(i))
		r.Content = []byte(fmt.Sprintf("%0200d", i))
		if err := d.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 8 {
		t.Fatalf("want many segments, got %d", len(ids))
	}
	checkAll := func(d *Disk) {
		t.Helper()
		for i := 0; i < n; i++ {
			got, ok, err := d.Get(fmt.Sprintf("http://cold.com/p%03d", i))
			if err != nil || !ok || got.Checksum != uint64(i) {
				t.Fatalf("cold get p%03d: %+v ok=%v err=%v", i, got, ok, err)
			}
		}
		seen := 0
		if err := d.Scan(func(PageRecord) bool { seen++; return true }); err != nil {
			t.Fatal(err)
		}
		if seen != n {
			t.Fatalf("scan over cold segments saw %d, want %d", seen, n)
		}
		d.mu.Lock()
		fds, cap := d.openFDs, d.maxOpenSegments
		d.mu.Unlock()
		if fds > cap+1 { // +1: the active segment is never evicted
			t.Fatalf("open FDs %d exceed cap %d at rest", fds, cap)
		}
	}
	checkAll(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	d2.maxOpenSegments = 2
	// Force eviction of the replay-opened handles via reads.
	checkAll(d2)
}

// TestScanFromResumes checks the chunked-scan resume point on both
// backends: ScanFrom(after) must yield exactly the records strictly
// after `after`, in order — including when `after` is not a stored URL.
func TestScanFromResumes(t *testing.T) {
	type scanFromer interface {
		ScanFrom(after string, fn func(PageRecord) bool) error
	}
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer c.Close()
			const n = 9
			for i := 0; i < n; i++ {
				if err := c.Put(rec(fmt.Sprintf("http://s.com/p%02d", i*2), uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			sf := c.(scanFromer)
			for _, tc := range []struct {
				after string
				want  int // surviving records
			}{
				{"", n},
				{"http://s.com/p04", n - 3}, // existing URL: strictly after
				{"http://s.com/p05", n - 3}, // between stored URLs
				{"http://s.com/p16", 0},     // last URL
				{"http://s.com/p99", 0},     // past the end
				{"http://a.com/", n},        // before the start
			} {
				var got []string
				if err := sf.ScanFrom(tc.after, func(r PageRecord) bool {
					got = append(got, r.URL)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(got) != tc.want {
					t.Fatalf("ScanFrom(%q) yielded %d records %v, want %d", tc.after, len(got), got, tc.want)
				}
				for i, u := range got {
					if u <= tc.after {
						t.Fatalf("ScanFrom(%q) yielded %s (not strictly after)", tc.after, u)
					}
					if i > 0 && got[i-1] >= u {
						t.Fatalf("ScanFrom(%q) out of order: %v", tc.after, got)
					}
				}
			}
		})
	}
}

// TestShadowedSwapDeferredClose is the regression test for Swap closing
// the current collection under a live reader: a Scan obtained via
// Current() before the swap must complete without ErrClosed, and the
// old collection must still be closed once the scan finishes.
func TestShadowedSwapDeferredClose(t *testing.T) {
	dir := t.TempDir()
	gen := 0
	var mu sync.Mutex
	newShadow := func() (Collection, error) {
		mu.Lock()
		gen++
		g := gen
		mu.Unlock()
		return OpenDisk(filepath.Join(dir, fmt.Sprintf("gen%d", g)))
	}
	s, err := NewShadowed(nil, newShadow)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Current().Put(rec(fmt.Sprintf("http://a.com/p%02d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}

	old := s.Current()
	swapped := make(chan error, 1)
	seen := 0
	err = old.Scan(func(PageRecord) bool {
		if seen == 0 {
			// Swap mid-scan: the old current is retired while we hold a
			// live call on it.
			go func() {
				_, err := s.Swap()
				swapped <- err
			}()
			if err := <-swapped; err != nil {
				t.Errorf("swap: %v", err)
			}
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("scan across swap must not fail: %v", err)
	}
	if seen != n {
		t.Fatalf("scan saw %d records, want %d", seen, n)
	}
	// With the scan finished the old collection must now be closed.
	if err := old.Put(rec("http://a.com/late", 1)); err != ErrClosed {
		t.Fatalf("old collection accepts writes after swap: %v", err)
	}
	if g, ok := old.(*guarded); !ok || !g.closed {
		t.Fatal("old collection's underlying Close never ran")
	}
}

// TestShadowedSwapDeferredCloseScanFrom is TestShadowedSwapDeferredClose
// for the paged read path: a ScanFrom resume obtained before the swap
// (the serving plane's listing endpoint mid-page) must complete against
// the collection it started on, never surfacing ErrClosed.
func TestShadowedSwapDeferredCloseScanFrom(t *testing.T) {
	dir := t.TempDir()
	gen := 0
	var mu sync.Mutex
	newShadow := func() (Collection, error) {
		mu.Lock()
		gen++
		g := gen
		mu.Unlock()
		return OpenDisk(filepath.Join(dir, fmt.Sprintf("gen%d", g)))
	}
	s, err := NewShadowed(nil, newShadow)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Current().Put(rec(fmt.Sprintf("http://a.com/p%02d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}

	view, genBefore := s.View()
	seen := 0
	err = view.ScanFrom("http://a.com/p04", func(PageRecord) bool {
		if seen == 0 {
			if _, err := s.Swap(); err != nil {
				t.Errorf("swap: %v", err)
			}
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("ScanFrom across swap must not fail: %v", err)
	}
	if seen != n-5 {
		t.Fatalf("ScanFrom saw %d records, want %d", seen, n-5)
	}
	if _, genAfter := s.View(); genAfter != genBefore+1 {
		t.Fatalf("View generation %d after swap, want %d", genAfter, genBefore+1)
	}
	// New reads start on the freshly published (empty) collection.
	if r, _ := s.View(); r.Len() != 0 {
		t.Fatalf("post-swap view holds %d records, want 0", r.Len())
	}
}

// TestShadowedCloseWaitsForReaders mirrors the swap test for Close.
func TestShadowedCloseWaitsForReaders(t *testing.T) {
	s := NewShadowedMem()
	for i := 0; i < 5; i++ {
		if err := s.Current().Put(rec(fmt.Sprintf("http://a.com/p%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	cur := s.Current()
	seen := 0
	err := cur.Scan(func(PageRecord) bool {
		if seen == 0 {
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("scan across close: %v", err)
	}
	if seen != 5 {
		t.Fatalf("scan saw %d records, want 5", seen)
	}
	if _, _, err := cur.Get("http://a.com/p0"); err != ErrClosed {
		t.Fatalf("get after close: %v", err)
	}
}
