// Package store implements the crawler's Collection (Figure 12): the
// repository of crawled pages. Two backends share one interface — an
// in-memory store for simulations and a log-structured disk store in the
// WebBase spirit ("a system designed to create and maintain large web
// repositories") — plus a Shadowed wrapper implementing the
// shadow-collection update discipline of Section 4: writes go to a
// separate crawler's collection which atomically replaces the current
// collection at swap time.
package store

import (
	"errors"
	"sort"
	"sync"
)

// PageRecord is one stored page.
type PageRecord struct {
	URL string
	// Checksum is the content checksum used for change detection
	// (Section 5.3: "the UpdateModule records the checksum of the page
	// from the last crawl and compares").
	Checksum uint64
	// FetchedAt is when the copy was crawled (days).
	FetchedAt float64
	// Version is the fetcher-reported content version when available
	// (simulated webs); 0 otherwise.
	Version int
	// Links are the out-links extracted from the content.
	Links []string
	// Content is the page body; may be nil when the crawler stores only
	// metadata.
	Content []byte
	// Importance is the score assigned by the ranking module at save
	// time.
	Importance float64
}

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// Reader is the read-only half of a Collection: everything a consumer
// of the repository needs and nothing that can mutate it. The serving
// plane (internal/serve) is written against this interface alone, so
// the compiler proves a read path can never write — a handler holding a
// Reader has no Put to call. All implementations are safe for
// concurrent use.
type Reader interface {
	// Get returns the record for url; ok is false when absent.
	Get(url string) (rec PageRecord, ok bool, err error)
	// Len returns the number of stored pages.
	Len() int
	// URLs returns all stored URLs in sorted order.
	URLs() []string
	// Scan calls fn for each record in sorted URL order until fn returns
	// false.
	Scan(fn func(PageRecord) bool) error
	// ScanFrom is Scan resuming strictly after the given URL (empty
	// scans everything) — the primitive under paged listings: a chunked
	// consumer re-enters with the last URL it saw and never pays for the
	// prefix again.
	ScanFrom(after string, fn func(PageRecord) bool) error
}

// Writer is the mutating half of a Collection.
type Writer interface {
	// Put inserts or replaces the record for rec.URL.
	Put(rec PageRecord) error
	// PutBatch inserts or replaces many records in one call, applying
	// them in slice order. Backends amortize per-call overhead (one
	// lock acquisition, one flush) across the batch.
	PutBatch(recs []PageRecord) error
	// Delete removes url; deleting an absent URL is a no-op.
	Delete(url string) error
}

// Collection is the full storage interface shared by all backends:
// the read view plus writes plus lifecycle. All implementations are
// safe for concurrent use.
type Collection interface {
	Reader
	Writer
	// Close releases resources. The collection is unusable afterwards.
	Close() error
}

// The built-in backends implement the full interface (cluster's
// RemoteStore collections assert the same in their own package).
var (
	_ Collection = (*Mem)(nil)
	_ Collection = (*Disk)(nil)
)

// Mem is the in-memory Collection.
type Mem struct {
	mu     sync.RWMutex
	m      map[string]PageRecord
	closed bool
}

// NewMem returns an empty in-memory collection.
func NewMem() *Mem { return &Mem{m: make(map[string]PageRecord)} }

// Put implements Collection.
func (s *Mem) Put(rec PageRecord) error {
	return s.PutBatch([]PageRecord{rec})
}

// PutBatch implements Collection.
func (s *Mem) PutBatch(recs []PageRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, rec := range recs {
		if rec.URL == "" {
			return errors.New("store: empty URL")
		}
	}
	for _, rec := range recs {
		s.m[rec.URL] = rec
	}
	return nil
}

// Get implements Collection.
func (s *Mem) Get(url string) (PageRecord, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return PageRecord{}, false, ErrClosed
	}
	rec, ok := s.m[url]
	return rec, ok, nil
}

// Delete implements Collection.
func (s *Mem) Delete(url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.m, url)
	return nil
}

// Len implements Collection.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// URLs implements Collection.
func (s *Mem) URLs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for u := range s.m {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// URLsFrom visits the stored URLs strictly after the given URL in
// ascending order, lazily (see Disk.URLsFrom).
func (s *Mem) URLsFrom(after string, fn func(string) bool) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for u := range s.m {
		if after != "" && u <= after {
			continue
		}
		keys = append(keys, u)
	}
	s.mu.RUnlock()
	visitAscending(keys, func(a, b string) bool { return a < b }, fn)
}

// Scan implements Collection.
func (s *Mem) Scan(fn func(PageRecord) bool) error {
	return s.ScanFrom("", fn)
}

// ScanFrom is Scan resuming strictly after the given URL (empty scans
// everything). The suffix is visited lazily in sorted order, so a
// chunked consumer stopping after k records pays O(n + k log n), not a
// full sort per chunk.
func (s *Mem) ScanFrom(after string, fn func(PageRecord) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.m))
	for u := range s.m {
		if after != "" && u <= after {
			continue
		}
		keys = append(keys, u)
	}
	s.mu.RUnlock()
	var err error
	visitAscending(keys, func(a, b string) bool { return a < b }, func(u string) bool {
		rec, ok, gerr := s.Get(u)
		if gerr != nil {
			err = gerr
			return false
		}
		if !ok {
			return true // deleted between snapshot and visit
		}
		return fn(rec)
	})
	return err
}

// visitAscending visits items in ascending order, lazily: the slice is
// heapified in linear time and each visited item costs one sift, so a
// consumer stopping after k of n items pays O(n + k log n) instead of
// a full O(n log n) sort. The slice is reordered in place.
func visitAscending[T any](items []T, less func(a, b T) bool, visit func(T) bool) {
	n := len(items)
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= n {
				return
			}
			if r := l + 1; r < n && less(items[r], items[l]) {
				l = r
			}
			if !less(items[l], items[i]) {
				return
			}
			items[i], items[l] = items[l], items[i]
			i = l
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for n > 0 {
		if !visit(items[0]) {
			return
		}
		n--
		items[0], items[n] = items[n], items[0]
		siftDown(0)
	}
}

// Close implements Collection.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.m = nil
	return nil
}
