package store

import (
	"fmt"
	"testing"
)

func batchOf(n, version int) []PageRecord {
	recs := make([]PageRecord, n)
	for i := range recs {
		recs[i] = PageRecord{
			URL:      fmt.Sprintf("http://site%02d.com/p%03d", i%5, i),
			Checksum: uint64(version*1000 + i),
			Version:  version,
		}
	}
	return recs
}

func testPutBatch(t *testing.T, c Collection) {
	t.Helper()
	if err := c.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	recs := batchOf(40, 1)
	if err := c.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 40 {
		t.Fatalf("len %d after batch, want 40", got)
	}
	for _, want := range recs {
		got, ok, err := c.Get(want.URL)
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", want.URL, ok, err)
		}
		if got.Checksum != want.Checksum {
			t.Fatalf("%s checksum %d, want %d", want.URL, got.Checksum, want.Checksum)
		}
	}
	// A second batch overwrites in slice order.
	if err := c.PutBatch(batchOf(40, 2)); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 40 {
		t.Fatalf("len %d after overwrite batch, want 40", got)
	}
	got, _, err := c.Get(recs[7].URL)
	if err != nil || got.Version != 2 {
		t.Fatalf("overwrite lost: version %d err %v", got.Version, err)
	}
	if err := c.PutBatch([]PageRecord{{URL: ""}}); err == nil {
		t.Fatal("batch with empty URL accepted")
	}
}

func TestMemPutBatch(t *testing.T) {
	c := NewMem()
	testPutBatch(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.PutBatch(batchOf(1, 3)); err != ErrClosed {
		t.Fatalf("closed batch put: %v", err)
	}
}

func TestDiskPutBatch(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	testPutBatch(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Batched frames replay like individual ones.
	re, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 40 {
		t.Fatalf("reopened len %d, want 40", got)
	}
	rec, ok, err := re.Get(batchOf(40, 2)[13].URL)
	if err != nil || !ok || rec.Version != 2 {
		t.Fatalf("reopened get: %+v ok=%v err=%v", rec, ok, err)
	}
	if err := re.PutBatch(batchOf(1, 9)); err != nil {
		t.Fatal(err)
	}
}
