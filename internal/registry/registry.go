// Package registry implements the cluster membership plane: a small
// HTTP/JSON service where shardd and storerd instances register with
// TTL'd heartbeat leases, and crawl clients read a monotonically
// versioned membership epoch to drive consistent-hash routing and live
// shard migration (internal/cluster).
//
// Membership changes to the *store* plane apply immediately — store
// collections are pinned to a member at open time, nothing moves. The
// *shard* plane is different: frontier entries must migrate before the
// routing may change, so shard joins and leaves land in a *pending*
// member set first. The crawl client observes the pending set, exports
// the moved partitions from the old owners, imports them into the new
// ones, and then calls Complete with the pending epoch; only that flip
// makes the pending set active and bumps the membership epoch. Any
// further pending-set change bumps the pending epoch, so a Complete
// computed against a stale pending set is rejected rather than
// committing a half-migrated routing.
//
// Leases are expired lazily on every request. A member whose lease
// expires is force-removed from both the active and pending sets: it
// can no longer serve exports, so there is nothing to wait for. For a
// shard member this can lose the entries it held — the WAL brings them
// back when the member restarts, re-registers and a join migration
// pulls them over; until then the crawl sees a smaller frontier.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Member kinds.
const (
	KindShard = "shard"
	KindStore = "store"
)

// DefaultTTL is the heartbeat lease duration when the server is built
// with ttl <= 0. Daemons heartbeat at a third of the TTL.
const DefaultTTL = 10 * time.Second

// Member is one registered daemon instance.
type Member struct {
	Kind   string `json:"kind"` // KindShard or KindStore
	Addr   string `json:"addr"` // wire-protocol host:port, also the member's identity
	BootID uint64 `json:"boot_id,omitempty"`
	Shards int    `json:"shards,omitempty"` // shard capacity (shard kind only)
}

// Membership is the registry's versioned view of the cluster.
type Membership struct {
	// Epoch is the active membership version; it bumps on every change
	// to the active member set (store changes, completed migrations,
	// lease expiries).
	Epoch uint64 `json:"epoch"`
	// Members is the active set, sorted by address.
	Members []Member `json:"members"`
	// Migrating reports whether a shard migration is pending; Pending
	// and PendingEpoch are meaningful only when it is true.
	Migrating bool `json:"migrating,omitempty"`
	// PendingEpoch versions the pending shard set; pass it to Complete
	// to flip the migration it was read with.
	PendingEpoch uint64 `json:"pending_epoch,omitempty"`
	// Pending is the target shard member set, sorted by address.
	Pending []Member `json:"pending,omitempty"`
}

// Shard returns the active shard members.
func (ms Membership) Shard() []Member { return membersOfKind(ms.Members, KindShard) }

// Store returns the active store members.
func (ms Membership) Store() []Member { return membersOfKind(ms.Members, KindStore) }

func membersOfKind(members []Member, kind string) []Member {
	var out []Member
	for _, m := range members {
		if m.Kind == kind {
			out = append(out, m)
		}
	}
	return out
}

// HasAddr reports whether addr is in the active member set.
func (ms Membership) HasAddr(addr string) bool {
	for _, m := range ms.Members {
		if m.Addr == addr {
			return true
		}
	}
	return false
}

// ErrStaleEpoch is returned by Complete when the pending epoch it was
// called with no longer matches (the pending set changed, or no
// migration is pending). The caller should re-read the membership and
// redo its migration plan.
var ErrStaleEpoch = errors.New("registry: stale pending epoch")

// ErrUnknownMember is returned by Heartbeat for an address without a
// live lease; the member should re-register.
var ErrUnknownMember = errors.New("registry: unknown member")

// Server is the registry state machine plus its HTTP handler. All
// methods are safe for concurrent use.
type Server struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time
	ver     uint64            // bumps on every state change
	epoch   uint64            // ver at the last active-set change
	pendEp  uint64            // ver at the last pending-set change
	shard   map[string]Member // active shard members by addr
	store   map[string]Member // active store members by addr
	pending map[string]Member // target shard set; nil = no migration pending
	lease   map[string]time.Time
}

// NewServer builds a registry with the given lease TTL (<= 0 means
// DefaultTTL).
func NewServer(ttl time.Duration) *Server {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Server{
		ttl:   ttl,
		now:   time.Now,
		shard: map[string]Member{},
		store: map[string]Member{},
		lease: map[string]time.Time{},
	}
}

// TTL returns the lease duration.
func (s *Server) TTL() time.Duration { return s.ttl }

func (s *Server) bumpActiveLocked()  { s.ver++; s.epoch = s.ver }
func (s *Server) bumpPendingLocked() { s.ver++; s.pendEp = s.ver }

func (s *Server) expireLocked() {
	now := s.now()
	for addr, dl := range s.lease {
		if now.Before(dl) {
			continue
		}
		delete(s.lease, addr)
		if _, ok := s.shard[addr]; ok {
			delete(s.shard, addr)
			s.bumpActiveLocked()
		}
		if _, ok := s.store[addr]; ok {
			delete(s.store, addr)
			s.bumpActiveLocked()
		}
		if s.pending != nil {
			if _, ok := s.pending[addr]; ok {
				delete(s.pending, addr)
				s.bumpPendingLocked()
			}
		}
	}
	s.dropNoopPendingLocked()
}

// dropNoopPendingLocked retires a pending set that equals the active
// shard set — there is nothing left to migrate.
func (s *Server) dropNoopPendingLocked() {
	if s.pending == nil || len(s.pending) != len(s.shard) {
		return
	}
	for addr, m := range s.pending {
		if cur, ok := s.shard[addr]; !ok || cur != m {
			return
		}
	}
	s.pending = nil
	s.ver++
	s.pendEp = s.ver
}

func (s *Server) membershipLocked() Membership {
	ms := Membership{Epoch: s.epoch}
	for _, m := range s.shard {
		ms.Members = append(ms.Members, m)
	}
	for _, m := range s.store {
		ms.Members = append(ms.Members, m)
	}
	sort.Slice(ms.Members, func(i, j int) bool { return ms.Members[i].Addr < ms.Members[j].Addr })
	if s.pending != nil {
		ms.Migrating = true
		ms.PendingEpoch = s.pendEp
		ms.Pending = []Member{} // non-nil even when empty: "migrate to nothing"
		for _, m := range s.pending {
			ms.Pending = append(ms.Pending, m)
		}
		sort.Slice(ms.Pending, func(i, j int) bool { return ms.Pending[i].Addr < ms.Pending[j].Addr })
	}
	return ms
}

// Register adds or refreshes a member and renews its lease. A store
// member becomes active immediately. A shard member becomes active
// immediately only when the active shard set is empty (nothing can
// move); otherwise it lands in the pending set and activates when the
// migrating client calls Complete.
func (s *Server) Register(m Member) (Membership, error) {
	if m.Addr == "" {
		return Membership{}, errors.New("registry: register: empty addr")
	}
	if m.Kind != KindShard && m.Kind != KindStore {
		return Membership{}, fmt.Errorf("registry: register: unknown kind %q", m.Kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	s.lease[m.Addr] = s.now().Add(s.ttl)
	switch m.Kind {
	case KindStore:
		if cur, ok := s.store[m.Addr]; !ok || cur != m {
			s.store[m.Addr] = m
			s.bumpActiveLocked()
		}
	case KindShard:
		if cur, ok := s.shard[m.Addr]; ok {
			// Already active: a restart (new boot ID) updates the record
			// in place — the member's partitions did not move.
			if cur != m {
				s.shard[m.Addr] = m
				s.bumpActiveLocked()
			}
			if s.pending != nil {
				if pcur, pok := s.pending[m.Addr]; pok && pcur != m {
					s.pending[m.Addr] = m
					s.bumpPendingLocked()
				}
			}
		} else if s.pending == nil && len(s.shard) == 0 {
			s.shard[m.Addr] = m
			s.bumpActiveLocked()
		} else {
			if s.pending == nil {
				s.pending = make(map[string]Member, len(s.shard)+1)
				for a, sm := range s.shard {
					s.pending[a] = sm
				}
			}
			if cur, ok := s.pending[m.Addr]; !ok || cur != m {
				s.pending[m.Addr] = m
				s.bumpPendingLocked()
			}
		}
		s.dropNoopPendingLocked()
	}
	return s.membershipLocked(), nil
}

// Heartbeat renews addr's lease. ErrUnknownMember means the lease
// already expired (or the member never registered); re-register.
func (s *Server) Heartbeat(addr string) (Membership, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if _, ok := s.lease[addr]; !ok {
		return s.membershipLocked(), ErrUnknownMember
	}
	s.lease[addr] = s.now().Add(s.ttl)
	return s.membershipLocked(), nil
}

// Leave removes addr. A store member leaves immediately. An active
// shard member is only removed from the *pending* set: it must keep
// serving (and heartbeating) until the migrating client has drained it
// and calls Complete — poll Membership until the addr is gone.
func (s *Server) Leave(addr string) Membership {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if _, ok := s.store[addr]; ok {
		delete(s.store, addr)
		delete(s.lease, addr)
		s.bumpActiveLocked()
	}
	if _, ok := s.shard[addr]; ok {
		if s.pending == nil {
			s.pending = make(map[string]Member, len(s.shard))
			for a, sm := range s.shard {
				s.pending[a] = sm
			}
		}
		if _, ok := s.pending[addr]; ok {
			delete(s.pending, addr)
			s.bumpPendingLocked()
		}
	} else if s.pending != nil {
		// A pending joiner changing its mind leaves directly.
		if _, ok := s.pending[addr]; ok {
			delete(s.pending, addr)
			delete(s.lease, addr)
			s.bumpPendingLocked()
		}
	}
	s.dropNoopPendingLocked()
	return s.membershipLocked()
}

// Complete flips the pending shard set into the active set. pendEpoch
// must be the PendingEpoch of the Membership the migration plan was
// computed from; ErrStaleEpoch means the pending set changed under the
// caller (or nothing is pending) and the plan must be redone.
func (s *Server) Complete(pendEpoch uint64) (Membership, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if s.pending == nil || pendEpoch != s.pendEp {
		return s.membershipLocked(), ErrStaleEpoch
	}
	s.shard = s.pending
	s.pending = nil
	s.bumpActiveLocked()
	// Drop leases of members no longer in any set, so their heartbeats
	// answer unknown and a leaver's session knows it may stop.
	for addr := range s.lease {
		_, inShard := s.shard[addr]
		_, inStore := s.store[addr]
		if !inShard && !inStore {
			delete(s.lease, addr)
		}
	}
	return s.membershipLocked(), nil
}

// Membership returns the current versioned view (after lazy expiry).
func (s *Server) Membership() Membership {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	return s.membershipLocked()
}

// registerResponse is the /v1/register body: the membership plus the
// lease TTL the daemon must heartbeat within.
type registerResponse struct {
	TTLMillis int64 `json:"ttl_ms"`
	Membership
}

// Handler returns the HTTP API:
//
//	POST /v1/register  {kind,addr,boot_id,shards} -> {ttl_ms, epoch, ...}
//	POST /v1/heartbeat {addr}                     -> membership (404 if unknown)
//	POST /v1/leave     {addr}                     -> membership
//	POST /v1/complete  {pending_epoch}            -> membership (409 if stale)
//	GET  /v1/membership                           -> membership
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var m Member
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ms, err := s.Register(m)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, registerResponse{TTLMillis: s.ttl.Milliseconds(), Membership: ms})
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Addr string `json:"addr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ms, err := s.Heartbeat(req.Addr)
		if err != nil {
			writeJSON(w, http.StatusNotFound, ms)
			return
		}
		writeJSON(w, http.StatusOK, ms)
	})
	mux.HandleFunc("POST /v1/leave", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Addr string `json:"addr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, s.Leave(req.Addr))
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			PendingEpoch uint64 `json:"pending_epoch"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ms, err := s.Complete(req.PendingEpoch)
		if err != nil {
			writeJSON(w, http.StatusConflict, ms)
			return
		}
		writeJSON(w, http.StatusOK, ms)
	})
	mux.HandleFunc("GET /v1/membership", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Membership())
	})
	return mux
}
