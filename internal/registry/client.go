package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webevolve/internal/obs"
)

// EpochGauge tracks the last membership epoch this process observed,
// whichever side of the registry it sits on (a daemon's heartbeat
// session or a crawl client's poll). Exported so internal/cluster can
// stamp it from membership polls without a second obs family.
var EpochGauge = obs.Default.Gauge("webevolve_membership_epoch",
	"cluster membership epoch last observed by this process")

// Client speaks the registry HTTP API. The zero value is not usable;
// build one with NewClient. All methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the registry at addr — a host:port or
// a full http:// base URL.
func NewClient(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{base: base, hc: &http.Client{Timeout: 10 * time.Second}}
}

func (c *Client) post(path string, req any, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hr, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("registry %s%s: %w", c.base, path, err)
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hr.Body, 4<<20))
	if err != nil {
		return hr.StatusCode, fmt.Errorf("registry %s%s: %w", c.base, path, err)
	}
	if hr.StatusCode == http.StatusBadRequest {
		return hr.StatusCode, fmt.Errorf("registry %s%s: %s", c.base, path, strings.TrimSpace(string(data)))
	}
	if resp != nil {
		if err := json.Unmarshal(data, resp); err != nil {
			return hr.StatusCode, fmt.Errorf("registry %s%s: bad response: %w", c.base, path, err)
		}
	}
	return hr.StatusCode, nil
}

// Register registers m and returns the membership plus the lease TTL
// to heartbeat within.
func (c *Client) Register(m Member) (Membership, time.Duration, error) {
	var resp registerResponse
	if _, err := c.post("/v1/register", m, &resp); err != nil {
		return Membership{}, 0, err
	}
	EpochGauge.Set(int64(resp.Epoch))
	return resp.Membership, time.Duration(resp.TTLMillis) * time.Millisecond, nil
}

// Heartbeat renews addr's lease; ErrUnknownMember means re-register.
func (c *Client) Heartbeat(addr string) (Membership, error) {
	var ms Membership
	code, err := c.post("/v1/heartbeat", map[string]string{"addr": addr}, &ms)
	if err != nil {
		return ms, err
	}
	if code == http.StatusNotFound {
		return ms, ErrUnknownMember
	}
	EpochGauge.Set(int64(ms.Epoch))
	return ms, nil
}

// Leave deregisters addr (see Server.Leave for shard-member
// semantics: active shard members drain via the pending set).
func (c *Client) Leave(addr string) (Membership, error) {
	var ms Membership
	if _, err := c.post("/v1/leave", map[string]string{"addr": addr}, &ms); err != nil {
		return ms, err
	}
	return ms, nil
}

// Complete flips the pending shard set read at pendEpoch; ErrStaleEpoch
// means the plan must be recomputed from a fresh Membership.
func (c *Client) Complete(pendEpoch uint64) error {
	code, err := c.post("/v1/complete", map[string]uint64{"pending_epoch": pendEpoch}, nil)
	if err != nil {
		return err
	}
	if code == http.StatusConflict {
		return ErrStaleEpoch
	}
	return nil
}

// Membership fetches the current versioned view.
func (c *Client) Membership() (Membership, error) {
	hr, err := c.hc.Get(c.base + "/v1/membership")
	if err != nil {
		return Membership{}, fmt.Errorf("registry %s/v1/membership: %w", c.base, err)
	}
	defer hr.Body.Close()
	var ms Membership
	if err := json.NewDecoder(io.LimitReader(hr.Body, 4<<20)).Decode(&ms); err != nil {
		return Membership{}, fmt.Errorf("registry %s/v1/membership: bad response: %w", c.base, err)
	}
	EpochGauge.Set(int64(ms.Epoch))
	return ms, nil
}

// Session keeps a daemon registered: it registers m, heartbeats at a
// third of the lease TTL, and re-registers if the lease ever lapses
// (registry restart, long GC pause). Close leaves immediately;
// CloseWait leaves and then keeps the lease alive until the registry
// confirms the member has drained out of the active set.
type Session struct {
	c       *Client
	m       Member
	ttl     time.Duration
	closing atomic.Bool
	stop    chan struct{}
	once    sync.Once
	done    chan struct{}
}

// StartSession registers m and starts the heartbeat loop.
func StartSession(c *Client, m Member) (*Session, error) {
	_, ttl, err := c.Register(m)
	if err != nil {
		return nil, err
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s := &Session{c: c, m: m, ttl: ttl, stop: make(chan struct{}), done: make(chan struct{})}
	go s.loop()
	return s, nil
}

func (s *Session) loop() {
	defer close(s.done)
	t := time.NewTicker(s.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if _, err := s.c.Heartbeat(s.m.Addr); err == ErrUnknownMember && !s.closing.Load() {
				// Lease lapsed (or the registry restarted): rejoin. For a
				// shard member this lands in the pending set and a join
				// migration pulls our partitions back.
				_, _, _ = s.c.Register(s.m)
			}
		}
	}
}

func (s *Session) stopLoop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Close leaves the registry immediately and stops heartbeating. For an
// active shard member prefer CloseWait, which drains first.
func (s *Session) Close() error {
	s.closing.Store(true)
	s.stopLoop()
	_, err := s.c.Leave(s.m.Addr)
	return err
}

// CloseWait announces the leave and keeps heartbeating until the
// member is out of the active set (the migrating client drained it and
// completed the epoch flip) or the timeout passes. The daemon must
// keep serving its wire listener until CloseWait returns — the drain
// reads its partitions through it.
func (s *Session) CloseWait(timeout time.Duration) error {
	s.closing.Store(true)
	ms, err := s.c.Leave(s.m.Addr)
	if err != nil {
		s.stopLoop()
		return err
	}
	if !ms.HasAddr(s.m.Addr) {
		s.stopLoop()
		return nil
	}
	poll := s.ttl / 4
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			s.stopLoop()
			return fmt.Errorf("registry: leave of %s not completed within %v (no migrating client?)", s.m.Addr, timeout)
		}
		time.Sleep(poll)
		ms, err := s.c.Membership()
		if err != nil {
			continue // registry blip; the heartbeat loop keeps the lease alive
		}
		if !ms.HasAddr(s.m.Addr) {
			s.stopLoop()
			return nil
		}
	}
}
