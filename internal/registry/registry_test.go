package registry

import (
	"net/http/httptest"
	"testing"
	"time"
)

func addrs(members []Member) []string {
	var out []string
	for _, m := range members {
		out = append(out, m.Addr)
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRegisterFlow exercises the core shard-join state machine: first
// join applies directly, later joins pend until Complete.
func TestRegisterFlow(t *testing.T) {
	s := NewServer(time.Minute)
	ms, err := s.Register(Member{Kind: KindShard, Addr: "a:1", Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ms.Migrating || !eq(addrs(ms.Shard()), []string{"a:1"}) {
		t.Fatalf("first join should apply directly: %+v", ms)
	}
	e1 := ms.Epoch

	ms, err = s.Register(Member{Kind: KindShard, Addr: "b:2", Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Migrating {
		t.Fatalf("second join should pend: %+v", ms)
	}
	if ms.Epoch != e1 || !eq(addrs(ms.Shard()), []string{"a:1"}) {
		t.Fatalf("active set changed before Complete: %+v", ms)
	}
	if !eq(addrs(ms.Pending), []string{"a:1", "b:2"}) {
		t.Fatalf("pending set wrong: %+v", ms)
	}

	// Re-registering the same member is a no-op on versions.
	ms2, _ := s.Register(Member{Kind: KindShard, Addr: "b:2", Shards: 8})
	if ms2.PendingEpoch != ms.PendingEpoch || ms2.Epoch != ms.Epoch {
		t.Fatalf("idempotent re-register bumped versions: %+v vs %+v", ms2, ms)
	}

	got, err := s.Complete(ms.PendingEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if got.Migrating || got.Epoch <= e1 || !eq(addrs(got.Shard()), []string{"a:1", "b:2"}) {
		t.Fatalf("complete did not flip: %+v", got)
	}
	// Completing again is stale.
	if _, err := s.Complete(ms.PendingEpoch); err != ErrStaleEpoch {
		t.Fatalf("second Complete: got %v, want ErrStaleEpoch", err)
	}
}

// TestStaleComplete: any pending-set change invalidates an outstanding
// pending epoch.
func TestStaleComplete(t *testing.T) {
	s := NewServer(time.Minute)
	s.Register(Member{Kind: KindShard, Addr: "a:1"})
	ms, _ := s.Register(Member{Kind: KindShard, Addr: "b:2"})
	pe := ms.PendingEpoch
	// A third join changes the pending set.
	ms, _ = s.Register(Member{Kind: KindShard, Addr: "c:3"})
	if ms.PendingEpoch == pe {
		t.Fatal("pending epoch did not move on pending change")
	}
	if _, err := s.Complete(pe); err != ErrStaleEpoch {
		t.Fatalf("stale Complete: got %v", err)
	}
	if ms, err := s.Complete(ms.PendingEpoch); err != nil || !eq(addrs(ms.Shard()), []string{"a:1", "b:2", "c:3"}) {
		t.Fatalf("fresh Complete failed: %v %+v", err, ms)
	}
}

// TestLeave: store members leave immediately; active shard members
// drain through the pending set; a withdrawn pending join cancels the
// migration outright.
func TestLeave(t *testing.T) {
	s := NewServer(time.Minute)
	s.Register(Member{Kind: KindStore, Addr: "st:1"})
	ms := s.Leave("st:1")
	if len(ms.Store()) != 0 || ms.Migrating {
		t.Fatalf("store leave should apply directly: %+v", ms)
	}

	s.Register(Member{Kind: KindShard, Addr: "a:1"})
	ms, _ = s.Register(Member{Kind: KindShard, Addr: "b:2"})
	s.Complete(ms.PendingEpoch)

	ms = s.Leave("a:1")
	if !ms.Migrating || !ms.HasAddr("a:1") {
		t.Fatalf("active shard leave must pend and keep serving: %+v", ms)
	}
	if !eq(addrs(ms.Pending), []string{"b:2"}) {
		t.Fatalf("pending after leave: %+v", ms)
	}
	if ms, err := s.Complete(ms.PendingEpoch); err != nil || ms.HasAddr("a:1") {
		t.Fatalf("drain complete: %v %+v", err, ms)
	}
	// The leaver's lease is dropped on flip: its heartbeat now answers
	// unknown, which tells the session it may stop.
	if _, err := s.Heartbeat("a:1"); err != ErrUnknownMember {
		t.Fatalf("leaver heartbeat after flip: %v", err)
	}

	// A pending joiner that leaves before Complete cancels the pend.
	ms, _ = s.Register(Member{Kind: KindShard, Addr: "c:3"})
	if !ms.Migrating {
		t.Fatal("join should pend")
	}
	ms = s.Leave("c:3")
	if ms.Migrating {
		t.Fatalf("withdrawn join should cancel migration: %+v", ms)
	}
}

// TestExpiry: an expired lease force-removes the member from active
// and pending sets and bumps the epoch.
func TestExpiry(t *testing.T) {
	s := NewServer(time.Minute)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	s.Register(Member{Kind: KindShard, Addr: "a:1"})
	ms, _ := s.Register(Member{Kind: KindShard, Addr: "b:2"})
	s.Complete(ms.PendingEpoch)
	ms = s.Membership()
	e := ms.Epoch

	now = now.Add(30 * time.Second)
	if _, err := s.Heartbeat("b:2"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(45 * time.Second) // a:1's lease (never renewed) lapses
	ms = s.Membership()
	if ms.HasAddr("a:1") || !ms.HasAddr("b:2") {
		t.Fatalf("expiry did not remove a:1: %+v", ms)
	}
	if ms.Epoch <= e {
		t.Fatal("expiry did not bump epoch")
	}
	if ms.Migrating {
		t.Fatalf("expiry removal must not leave a no-op pend: %+v", ms)
	}
	if _, err := s.Heartbeat("a:1"); err != ErrUnknownMember {
		t.Fatalf("expired heartbeat: %v", err)
	}
}

// TestHTTPRoundTrip drives the full client/server HTTP path.
func TestHTTPRoundTrip(t *testing.T) {
	srv := NewServer(time.Minute)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	ms, ttl, err := c.Register(Member{Kind: KindShard, Addr: "a:1", BootID: 7, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ttl != time.Minute {
		t.Fatalf("ttl: %v", ttl)
	}
	if !eq(addrs(ms.Shard()), []string{"a:1"}) || ms.Shard()[0].BootID != 7 {
		t.Fatalf("membership: %+v", ms)
	}
	if _, err := c.Heartbeat("a:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Heartbeat("ghost:9"); err != ErrUnknownMember {
		t.Fatalf("ghost heartbeat: %v", err)
	}
	ms, _, err = c.Register(Member{Kind: KindShard, Addr: "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(ms.PendingEpoch + 999); err != ErrStaleEpoch {
		t.Fatalf("stale complete over HTTP: %v", err)
	}
	if err := c.Complete(ms.PendingEpoch); err != nil {
		t.Fatal(err)
	}
	got, err := c.Membership()
	if err != nil {
		t.Fatal(err)
	}
	if !eq(addrs(got.Shard()), []string{"a:1", "b:2"}) {
		t.Fatalf("membership after complete: %+v", got)
	}
	if _, err := c.Leave("b:2"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Register(Member{Kind: "bogus", Addr: "x:1"}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

// TestSessionLifecycle: StartSession registers, CloseWait drains once
// a migrating client completes the flip.
func TestSessionLifecycle(t *testing.T) {
	srv := NewServer(200 * time.Millisecond) // fast heartbeats for the test
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	s1, err := StartSession(c, Member{Kind: KindShard, Addr: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := StartSession(c, Member{Kind: KindShard, Addr: "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	ms := srv.Membership()
	if !ms.Migrating {
		t.Fatalf("second session should pend: %+v", ms)
	}
	srv.Complete(ms.PendingEpoch)

	// Sessions outlive several TTLs via heartbeats.
	time.Sleep(500 * time.Millisecond)
	if ms := srv.Membership(); !ms.HasAddr("a:1") || !ms.HasAddr("b:2") {
		t.Fatalf("sessions expired despite heartbeats: %+v", ms)
	}

	// CloseWait drains once a "client" completes the pending flip.
	done := make(chan error, 1)
	go func() { done <- s1.CloseWait(5 * time.Second) }()
	deadline := time.Now().Add(3 * time.Second)
	for {
		ms := srv.Membership()
		if ms.Migrating {
			if _, err := srv.Complete(ms.PendingEpoch); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leave never pended")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ms := srv.Membership(); ms.HasAddr("a:1") || !ms.HasAddr("b:2") {
		t.Fatalf("after drain: %+v", ms)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
