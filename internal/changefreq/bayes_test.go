package changefreq

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewBayesValidation(t *testing.T) {
	if _, err := NewBayes(nil); err == nil {
		t.Fatal("empty classes accepted")
	}
	if _, err := NewBayes([]Class{{Name: "x", Rate: 0}}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewBayes([]Class{{Name: "a", Rate: 1}, {Name: "b", Rate: 1}}); err == nil {
		t.Fatal("duplicate rates accepted")
	}
	if _, err := NewBayes(DefaultClasses); err != nil {
		t.Fatalf("default classes rejected: %v", err)
	}
}

func TestBayesUniformPriorInitially(t *testing.T) {
	b, err := NewBayes(DefaultClasses)
	if err != nil {
		t.Fatal(err)
	}
	post := b.Posterior()
	for _, p := range post {
		if math.Abs(p-1/float64(len(post))) > 1e-12 {
			t.Fatalf("prior not uniform: %v", post)
		}
	}
}

func TestBayesConvergesToTrueClass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, want := range []Class{
		{Name: "weekly", Rate: 1.0 / 7},
		{Name: "monthly", Rate: 1.0 / 30},
	} {
		b, err := NewBayes(DefaultClasses)
		if err != nil {
			t.Fatal(err)
		}
		// Daily accesses for a year with the true class's rate.
		nextChange := rng.ExpFloat64() / want.Rate
		_ = b.Record(Observation{Time: 0})
		for d := 1; d <= 365; d++ {
			tt := float64(d)
			changed := false
			for nextChange <= tt {
				changed = true
				nextChange += rng.ExpFloat64() / want.Rate
			}
			if err := b.Record(Observation{Time: tt, Changed: changed}); err != nil {
				t.Fatal(err)
			}
		}
		if got := b.MAP(); got.Name != want.Name {
			t.Errorf("true class %s: MAP %s (%s)", want.Name, got.Name, b)
		}
	}
}

func TestBayesPaperExample(t *testing.T) {
	// Section 5.3: "if the UpdateModule learns that page p1 did not
	// change for one month, it increases P{p1 in CM} and decreases
	// P{p1 in CW}".
	classes := []Class{
		{Name: "CW", Rate: 1.0 / 7},
		{Name: "CM", Rate: 1.0 / 30},
	}
	b, err := NewBayes(classes)
	if err != nil {
		t.Fatal(err)
	}
	_ = b.Record(Observation{Time: 0})
	priorCM := b.Posterior()[1]
	if err := b.Record(Observation{Time: 30, Changed: false}); err != nil {
		t.Fatal(err)
	}
	// Classes are stored in descending rate order: CW first.
	post := b.Posterior()
	if post[1] <= priorCM {
		t.Fatalf("P(CM) did not rise: %v -> %v", priorCM, post[1])
	}
	if post[0] >= post[1] {
		t.Fatalf("P(CW)=%v not below P(CM)=%v after a changeless month", post[0], post[1])
	}
}

func TestBayesPosteriorSumsToOne(t *testing.T) {
	b, _ := NewBayes(DefaultClasses)
	_ = b.Record(Observation{Time: 0})
	rng := rand.New(rand.NewSource(2))
	for d := 1; d <= 100; d++ {
		_ = b.Record(Observation{Time: float64(d), Changed: rng.Intn(3) == 0})
		sum := 0.0
		for _, p := range b.Posterior() {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior sums to %v on day %d", sum, d)
		}
	}
}

func TestBayesRateIsPosteriorMean(t *testing.T) {
	b, _ := NewBayes([]Class{{Name: "fast", Rate: 1}, {Name: "slow", Rate: 0.01}})
	_ = b.Record(Observation{Time: 0})
	// Changes every day: should move the mean rate toward 1.
	for d := 1; d <= 30; d++ {
		_ = b.Record(Observation{Time: float64(d), Changed: true})
	}
	if r := b.Rate(); r < 0.9 {
		t.Fatalf("posterior mean rate %v, want near 1", r)
	}
}

func TestBayesRejectsOutOfOrder(t *testing.T) {
	b, _ := NewBayes(DefaultClasses)
	_ = b.Record(Observation{Time: 10})
	if err := b.Record(Observation{Time: 5}); err == nil {
		t.Fatal("out-of-order accepted")
	}
}

func TestBayesAccessesCounter(t *testing.T) {
	b, _ := NewBayes(DefaultClasses)
	_ = b.Record(Observation{Time: 0})
	_ = b.Record(Observation{Time: 1})
	_ = b.Record(Observation{Time: 2})
	if b.Accesses() != 2 {
		t.Fatalf("accesses %d", b.Accesses())
	}
}

func TestBayesStringLists(t *testing.T) {
	b, _ := NewBayes(DefaultClasses)
	s := b.String()
	if !strings.Contains(s, "daily") || !strings.Contains(s, "yearly") {
		t.Fatalf("String() = %s", s)
	}
}

func TestBayesClassesSortedByRateDesc(t *testing.T) {
	b, _ := NewBayes([]Class{{Name: "slow", Rate: 0.001}, {Name: "fast", Rate: 5}})
	cs := b.Classes()
	if cs[0].Name != "fast" || cs[1].Name != "slow" {
		t.Fatalf("classes %v", cs)
	}
}
