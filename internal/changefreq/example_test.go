package changefreq_test

import (
	"fmt"

	"webevolve/internal/changefreq"
)

// ExampleEP shows the bias-corrected estimator on the paper's Section
// 3.1 arithmetic: a page observed daily for 50 days with 5 detected
// changes. The naive estimate is exactly 5/50 = 0.1 changes/day; EP
// corrects for the chance that some days hid multiple changes.
func ExampleEP() {
	h := &changefreq.History{}
	_ = h.Record(changefreq.Observation{Time: 0})
	for day := 1; day <= 50; day++ {
		_ = h.Record(changefreq.Observation{Time: float64(day), Changed: day%10 == 0})
	}
	naive, _ := changefreq.Naive(h)
	ep, _ := changefreq.EP(h)
	fmt.Printf("naive: interval %.0f days\n", naive.Interval())
	fmt.Printf("EP:    interval %.1f days\n", ep.Interval())
	// EP's interval is slightly shorter: a detected change may hide
	// several real ones, so the corrected rate is a little higher.
	// Output:
	// naive: interval 10 days
	// EP:    interval 9.6 days
}

// ExampleBayes shows EB updating frequency-class beliefs the way
// Section 5.3 describes: after a month without change, "monthly" becomes
// much more likely than "weekly".
func ExampleBayes() {
	b, _ := changefreq.NewBayes([]changefreq.Class{
		{Name: "CW", Rate: 1.0 / 7},
		{Name: "CM", Rate: 1.0 / 30},
	})
	_ = b.Record(changefreq.Observation{Time: 0})
	_ = b.Record(changefreq.Observation{Time: 30, Changed: false})
	fmt.Println(b.MAP().Name)
	// Output:
	// CM
}
