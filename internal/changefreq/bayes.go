package changefreq

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// EB: the Bayesian frequency-class estimator of Section 5.3 ([CGM99a]).
// Instead of a confidence interval, EB maintains a posterior distribution
// over a small set of frequency classes (e.g. "changes every week" CW,
// "changes every month" CM). Each access updates the posterior: if page
// p1 did not change for a month, P{p1 in CM} rises and P{p1 in CW} falls.

// Class is one frequency class hypothesis.
type Class struct {
	// Name labels the class (e.g. "weekly").
	Name string
	// Rate is the class's change rate (changes per unit time).
	Rate float64
}

// DefaultClasses mirrors the paper's examples plus the buckets of
// Figure 2, in changes/day.
var DefaultClasses = []Class{
	{Name: "daily", Rate: 1},
	{Name: "weekly", Rate: 1.0 / 7},
	{Name: "monthly", Rate: 1.0 / 30},
	{Name: "quarterly", Rate: 1.0 / 120},
	{Name: "yearly", Rate: 1.0 / 365},
}

// Bayes is the EB estimator for one page. The zero value is not usable;
// call NewBayes.
type Bayes struct {
	classes []Class
	logPost []float64 // unnormalized log posterior
	n       int
	detect  int
	last    float64
	started bool
}

// NewBayes builds an EB estimator with the given classes and a uniform
// prior. Classes must be non-empty with positive, distinct rates.
func NewBayes(classes []Class) (*Bayes, error) {
	if len(classes) == 0 {
		return nil, errors.New("changefreq: no classes")
	}
	seen := map[float64]bool{}
	for _, c := range classes {
		if c.Rate <= 0 || math.IsInf(c.Rate, 0) || math.IsNaN(c.Rate) {
			return nil, fmt.Errorf("changefreq: class %q has bad rate", c.Name)
		}
		if seen[c.Rate] {
			return nil, fmt.Errorf("changefreq: duplicate class rate %v", c.Rate)
		}
		seen[c.Rate] = true
	}
	cp := append([]Class(nil), classes...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Rate > cp[j].Rate })
	return &Bayes{
		classes: cp,
		logPost: make([]float64, len(cp)),
	}, nil
}

// Record updates the posterior with one access. Accesses must be in time
// order; the first access initializes the clock.
func (b *Bayes) Record(obs Observation) error {
	if !b.started {
		b.started = true
		b.last = obs.Time
		return nil
	}
	if obs.Time < b.last {
		return errors.New("changefreq: observations out of order")
	}
	dt := obs.Time - b.last
	b.last = obs.Time
	b.n++
	if obs.Changed {
		b.detect++
	}
	for i, c := range b.classes {
		// P(changed in dt | rate) = 1 - exp(-rate*dt).
		p := 1 - math.Exp(-c.Rate*dt)
		if !obs.Changed {
			p = 1 - p
		}
		if p < 1e-300 {
			p = 1e-300
		}
		b.logPost[i] += math.Log(p)
	}
	return nil
}

// Posterior returns the normalized posterior probabilities, in the same
// order as Classes.
func (b *Bayes) Posterior() []float64 {
	out := make([]float64, len(b.logPost))
	maxLog := math.Inf(-1)
	for _, lp := range b.logPost {
		if lp > maxLog {
			maxLog = lp
		}
	}
	var sum float64
	for i, lp := range b.logPost {
		out[i] = math.Exp(lp - maxLog)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Classes returns the classes in internal (descending-rate) order.
func (b *Bayes) Classes() []Class { return b.classes }

// MAP returns the maximum-a-posteriori class.
func (b *Bayes) MAP() Class {
	post := b.Posterior()
	best, bi := -1.0, 0
	for i, p := range post {
		if p > best {
			best, bi = p, i
		}
	}
	return b.classes[bi]
}

// Rate returns the posterior-mean change rate: the expected rate under
// the class posterior. Schedulers use it directly as the page's working
// rate estimate.
func (b *Bayes) Rate() float64 {
	post := b.Posterior()
	var r float64
	for i, p := range post {
		r += p * b.classes[i].Rate
	}
	return r
}

// Accesses returns the number of recorded inter-access intervals.
func (b *Bayes) Accesses() int { return b.n }

// String renders the posterior for debugging.
func (b *Bayes) String() string {
	post := b.Posterior()
	var sb strings.Builder
	sb.WriteString("EB{")
	for i, c := range b.classes {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%.3f", c.Name, post[i])
	}
	sb.WriteString("}")
	return sb.String()
}

// SiteAggregate pools change observations across the pages of one site to
// produce a site-level rate estimate (the Section 5.3 note: statistics on
// larger units give tighter confidence intervals when pages on a site
// change at similar frequencies, but mislead when they do not).
type SiteAggregate struct {
	intervals int
	detected  int
	span      float64
}

// Add pools one page's history into the aggregate.
func (s *SiteAggregate) Add(h *History) {
	s.intervals += h.n
	s.detected += h.detected
	s.span += h.Span()
}

// Estimate returns the pooled EP-style estimate. The pooled mean access
// interval is span/intervals.
func (s *SiteAggregate) Estimate() (Estimate, error) {
	if s.intervals == 0 || s.span <= 0 {
		return Estimate{}, ErrNoHistory
	}
	iMean := s.span / float64(s.intervals)
	n := float64(s.intervals)
	x := float64(s.detected)
	rate := -math.Log((n-x+0.5)/(n+0.5)) / iMean
	if rate <= 0 {
		rate = 0
	}
	pLo, pHi := wilson(s.detected, s.intervals, 1.96)
	lo := -math.Log(1-pLo) / iMean
	if lo <= 0 {
		lo = 0
	}
	hi := math.Inf(1)
	if pHi < 1 {
		hi = -math.Log(1-pHi) / iMean
	}
	return Estimate{Rate: rate, Lo: lo, Hi: hi, Samples: s.intervals, Detected: s.detected}, nil
}
