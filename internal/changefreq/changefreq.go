// Package changefreq implements the change-frequency estimators the
// paper's UpdateModule uses to decide revisit frequencies (Section 5.3,
// [CGM99a]):
//
//   - EP, a Poisson-model estimator with a confidence interval, based on
//     the count of *detected* changes over periodic accesses. Because a
//     crawler only detects whether a page changed between visits — not
//     how many times (Figure 1(a)) — the naive count/period ratio
//     underestimates fast pages; EP corrects the bias.
//
//   - EB, a Bayesian estimator that categorizes pages into frequency
//     classes (e.g. "changes weekly" vs "changes monthly") and maintains
//     a posterior over classes from the observed change history.
//
// Both consume the same observation stream: (access time, changed?).
package changefreq

import (
	"errors"
	"math"
)

// Observation records one crawler access to a page.
type Observation struct {
	// Time is the access instant, in days (or any consistent unit).
	Time float64
	// Changed reports whether the page's checksum differed from the
	// previous access. The first access of a page carries Changed=false.
	Changed bool
}

// History accumulates a page's access history in the compact form the
// estimators need: the number of accesses, the number of accesses at
// which a change was detected, and the elapsed monitoring span. It also
// retains per-interval data for the Bayesian estimator.
type History struct {
	n        int     // accesses after the first
	detected int     // accesses that detected a change
	first    float64 // first access time
	last     float64 // most recent access time
	// intervals and changed record, per access after the first, the gap
	// since the previous access and whether a change was detected.
	intervals []float64
	changed   []bool
	valid     bool // true once the first access is recorded
}

// Record appends an access. Accesses must be recorded in time order.
func (h *History) Record(obs Observation) error {
	if !h.valid {
		h.first = obs.Time
		h.last = obs.Time
		h.valid = true
		return nil
	}
	if obs.Time < h.last {
		return errors.New("changefreq: observations out of order")
	}
	dt := obs.Time - h.last
	h.last = obs.Time
	h.n++
	h.intervals = append(h.intervals, dt)
	h.changed = append(h.changed, obs.Changed)
	if obs.Changed {
		h.detected++
	}
	return nil
}

// Accesses returns the number of inter-access intervals observed.
func (h *History) Accesses() int { return h.n }

// Detected returns the number of intervals in which a change was
// detected.
func (h *History) Detected() int { return h.detected }

// Last returns the most recent access time (zero before any access).
func (h *History) Last() (float64, bool) { return h.last, h.valid }

// Span returns the elapsed monitoring time.
func (h *History) Span() float64 {
	if !h.valid {
		return 0
	}
	return h.last - h.first
}

// Trim drops history older than the given window before the most recent
// access, implementing the paper's "changes during, say, the last 6
// months" sliding statistic. Aggregate counters are recomputed.
func (h *History) Trim(window float64) {
	if !h.valid || window <= 0 {
		return
	}
	cutoff := h.last - window
	// Walk forward accumulating time until we reach the cutoff.
	t := h.first
	drop := 0
	for i, dt := range h.intervals {
		if t+dt <= cutoff {
			t += dt
			drop = i + 1
			continue
		}
		break
	}
	if drop == 0 {
		return
	}
	h.first = t
	h.intervals = append([]float64(nil), h.intervals[drop:]...)
	h.changed = append([]bool(nil), h.changed[drop:]...)
	h.n = len(h.intervals)
	h.detected = 0
	for _, c := range h.changed {
		if c {
			h.detected++
		}
	}
}

// Estimate is a point estimate of a page's change rate with a confidence
// interval, in changes per unit time.
type Estimate struct {
	Rate     float64
	Lo, Hi   float64 // confidence interval bounds
	Samples  int     // intervals used
	Detected int     // changes detected
}

// Interval returns the estimated mean change interval (1/Rate), or +Inf
// when no changes were detected.
func (e Estimate) Interval() float64 {
	if e.Rate <= 0 {
		return math.Inf(1)
	}
	return 1 / e.Rate
}

// ErrNoHistory reports an estimate requested before any intervals were
// observed.
var ErrNoHistory = errors.New("changefreq: no access intervals recorded")

// Naive estimates the rate as detected/span — the Section 3.1 method
// ("the page changed 5 times in 50 days: interval 10 days"). It is biased
// low for pages that change faster than the access frequency, since at
// most one change per access is detectable.
func Naive(h *History) (Estimate, error) {
	if h.n == 0 {
		return Estimate{}, ErrNoHistory
	}
	span := h.Span()
	if span <= 0 {
		return Estimate{}, ErrNoHistory
	}
	rate := float64(h.detected) / span
	lo, hi := poissonCountCI(h.detected, span)
	return Estimate{Rate: rate, Lo: lo, Hi: hi, Samples: h.n, Detected: h.detected}, nil
}

// EP is the bias-corrected Poisson estimator of [CGM99a] for regular
// access intervals. With n intervals of mean length I and X detected
// changes, the detection probability per interval is p = 1 - exp(-r*I),
// so the MLE is r = -log(1 - X/n)/I; the bias-reduced form used here is
//
//	r = -log((n - X + 0.5) / (n + 0.5)) / I,
//
// which stays finite when every access detected a change (X = n), the
// common case for hot com pages visited daily (Figure 2's first bar).
func EP(h *History) (Estimate, error) {
	if h.n == 0 {
		return Estimate{}, ErrNoHistory
	}
	span := h.Span()
	if span <= 0 {
		return Estimate{}, ErrNoHistory
	}
	iMean := span / float64(h.n)
	n := float64(h.n)
	x := float64(h.detected)
	rate := -math.Log((n-x+0.5)/(n+0.5)) / iMean
	if rate <= 0 {
		rate = 0 // avoid -0 when no changes were detected
	}
	// Confidence interval: Wilson interval on the detection probability
	// p = X/n, transformed through r = -log(1-p)/I. The transform is
	// monotone increasing in p.
	pLo, pHi := wilson(h.detected, h.n, 1.96)
	lo := -math.Log(1-pLo) / iMean
	if lo <= 0 {
		lo = 0
	}
	hi := math.Inf(1)
	if pHi < 1 {
		hi = -math.Log(1-pHi) / iMean
	}
	return Estimate{Rate: rate, Lo: lo, Hi: hi, Samples: h.n, Detected: h.detected}, nil
}

// EPIrregular generalizes EP to irregular access intervals by maximizing
// the exact likelihood sum over intervals:
//
//	L(r) = sum_{changed i} log(1 - exp(-r*dt_i)) - sum_{unchanged i} r*dt_i.
//
// The incremental crawler's variable-frequency revisits produce exactly
// such irregular histories.
func EPIrregular(h *History) (Estimate, error) {
	if h.n == 0 {
		return Estimate{}, ErrNoHistory
	}
	if h.detected == 0 {
		// MLE is r = 0; report the one-sided interval from Naive.
		return Naive(h)
	}
	allChanged := h.detected == h.n
	// dL/dr = sum_changed dt*exp(-r dt)/(1-exp(-r dt)) - sum_unchanged dt.
	deriv := func(r float64) float64 {
		var d float64
		for i, dt := range h.intervals {
			if dt <= 0 {
				continue
			}
			if h.changed[i] {
				e := math.Exp(-r * dt)
				d += dt * e / (1 - e)
			} else {
				d -= dt
			}
		}
		return d
	}
	var rate float64
	if allChanged {
		// Likelihood increases without bound; fall back to the
		// bias-reduced regular-interval form on the mean interval.
		return EP(h)
	}
	lo, hi := 1e-12, 1.0
	for deriv(hi) > 0 {
		hi *= 2
		if hi > 1e15 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if deriv(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	rate = (lo + hi) / 2
	pLo, pHi := wilson(h.detected, h.n, 1.96)
	iMean := h.Span() / float64(h.n)
	ciLo := -math.Log(1-pLo) / iMean
	ciHi := math.Inf(1)
	if pHi < 1 {
		ciHi = -math.Log(1-pHi) / iMean
	}
	return Estimate{Rate: rate, Lo: ciLo, Hi: ciHi, Samples: h.n, Detected: h.detected}, nil
}

// wilson returns the Wilson score interval for k successes in n trials.
func wilson(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	den := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / den
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// poissonCountCI returns a normal-approximation interval for a Poisson
// rate from an event count over a span.
func poissonCountCI(count int, span float64) (lo, hi float64) {
	if span <= 0 {
		return 0, math.Inf(1)
	}
	c := float64(count)
	half := 1.96 * math.Sqrt(c+0.25) // anscombe-ish stabilization
	lo = (c - half) / span
	if lo < 0 {
		lo = 0
	}
	hi = (c + half) / span
	return lo, hi
}
