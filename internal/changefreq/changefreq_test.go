package changefreq

import (
	"math"
	"math/rand"
	"testing"
)

// observe simulates daily accesses to a page with true Poisson change
// rate for the given number of days, recording detected changes.
func observe(rng *rand.Rand, h *History, rate float64, days int) {
	t := 0.0
	nextChange := rng.ExpFloat64() / rate
	if err := h.Record(Observation{Time: 0}); err != nil {
		panic(err)
	}
	for d := 1; d <= days; d++ {
		t = float64(d)
		changed := false
		for nextChange <= t {
			changed = true
			nextChange += rng.ExpFloat64() / rate
		}
		if err := h.Record(Observation{Time: t, Changed: changed}); err != nil {
			panic(err)
		}
	}
}

func TestHistoryRecordAndCounters(t *testing.T) {
	h := &History{}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(h.Record(Observation{Time: 0}))
	must(h.Record(Observation{Time: 1, Changed: true}))
	must(h.Record(Observation{Time: 2, Changed: false}))
	must(h.Record(Observation{Time: 4, Changed: true}))
	if h.Accesses() != 3 || h.Detected() != 2 || h.Span() != 4 {
		t.Fatalf("n=%d x=%d span=%v", h.Accesses(), h.Detected(), h.Span())
	}
}

func TestHistoryRejectsOutOfOrder(t *testing.T) {
	h := &History{}
	_ = h.Record(Observation{Time: 5})
	if err := h.Record(Observation{Time: 4}); err == nil {
		t.Fatal("out-of-order accepted")
	}
}

func TestHistoryTrim(t *testing.T) {
	h := &History{}
	for d := 0; d <= 10; d++ {
		_ = h.Record(Observation{Time: float64(d), Changed: d%2 == 0})
	}
	h.Trim(3)
	if h.Span() > 3.000001 {
		t.Fatalf("span %v after trim", h.Span())
	}
	if h.Accesses() != len(h.intervals) || h.Detected() > h.Accesses() {
		t.Fatal("counters inconsistent after trim")
	}
}

func TestNaiveEstimate(t *testing.T) {
	h := &History{}
	_ = h.Record(Observation{Time: 0})
	for d := 1; d <= 50; d++ {
		_ = h.Record(Observation{Time: float64(d), Changed: d%10 == 0})
	}
	est, err := Naive(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Rate-0.1) > 1e-9 {
		t.Fatalf("naive rate %v, want 0.1 (5 changes / 50 days)", est.Rate)
	}
	if est.Lo > est.Rate || est.Hi < est.Rate {
		t.Fatalf("CI [%v,%v] excludes point %v", est.Lo, est.Hi, est.Rate)
	}
}

func TestEstimateErrorsWithoutHistory(t *testing.T) {
	h := &History{}
	if _, err := Naive(h); err != ErrNoHistory {
		t.Fatalf("naive: %v", err)
	}
	if _, err := EP(h); err != ErrNoHistory {
		t.Fatalf("EP: %v", err)
	}
	if _, err := EPIrregular(h); err != ErrNoHistory {
		t.Fatalf("EPIrregular: %v", err)
	}
}

func TestEPFiniteWhenAllChanged(t *testing.T) {
	// A page that changed on every visit: naive saturates at 1/interval,
	// EP must stay finite but exceed the naive rate.
	h := &History{}
	_ = h.Record(Observation{Time: 0})
	for d := 1; d <= 30; d++ {
		_ = h.Record(Observation{Time: float64(d), Changed: true})
	}
	est, err := EP(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(est.Rate, 0) || math.IsNaN(est.Rate) {
		t.Fatalf("EP rate %v", est.Rate)
	}
	nv, _ := Naive(h)
	if est.Rate <= nv.Rate {
		t.Fatalf("EP %v should exceed naive %v for saturated detection", est.Rate, nv.Rate)
	}
}

func TestEPBiasCorrectionBeatsNaive(t *testing.T) {
	// For a page changing faster than the access interval, the naive
	// estimator saturates while EP stays closer to the truth.
	rng := rand.New(rand.NewSource(1))
	const rate = 1.5 // changes/day, visited daily
	var epErr, naiveErr float64
	const trials = 300
	for i := 0; i < trials; i++ {
		h := &History{}
		observe(rng, h, rate, 120)
		ep, err := EP(h)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := Naive(h)
		if err != nil {
			t.Fatal(err)
		}
		epErr += math.Abs(ep.Rate - rate)
		naiveErr += math.Abs(nv.Rate - rate)
	}
	if epErr >= naiveErr {
		t.Fatalf("EP mean error %v not better than naive %v", epErr/trials, naiveErr/trials)
	}
}

func TestEPRecoversModerateRates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, rate := range []float64{0.05, 0.1, 0.3} {
		var sum float64
		const trials = 200
		for i := 0; i < trials; i++ {
			h := &History{}
			observe(rng, h, rate, 200)
			est, err := EP(h)
			if err != nil {
				t.Fatal(err)
			}
			sum += est.Rate
		}
		mean := sum / trials
		if math.Abs(mean-rate)/rate > 0.15 {
			t.Errorf("rate %v: EP mean %v", rate, mean)
		}
	}
}

func TestEPIrregularRecoversWithIrregularVisits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const rate = 0.2
	var sum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		h := &History{}
		_ = h.Record(Observation{Time: 0})
		tt := 0.0
		nextChange := rng.ExpFloat64() / rate
		for tt < 300 {
			tt += 0.5 + 9.5*rng.Float64() // gaps 0.5..10 days
			changed := false
			for nextChange <= tt {
				changed = true
				nextChange += rng.ExpFloat64() / rate
			}
			_ = h.Record(Observation{Time: tt, Changed: changed})
		}
		est, err := EPIrregular(h)
		if err != nil {
			t.Fatal(err)
		}
		sum += est.Rate
	}
	mean := sum / trials
	if math.Abs(mean-rate)/rate > 0.15 {
		t.Fatalf("EPIrregular mean %v, want ~%v", mean, rate)
	}
}

func TestEPIrregularNoChangesFallsBack(t *testing.T) {
	h := &History{}
	_ = h.Record(Observation{Time: 0})
	_ = h.Record(Observation{Time: 10})
	est, err := EPIrregular(h)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate != 0 {
		t.Fatalf("rate %v for changeless history", est.Rate)
	}
}

func TestEstimateIntervalHelper(t *testing.T) {
	if iv := (Estimate{Rate: 0.25}).Interval(); iv != 4 {
		t.Fatalf("interval %v", iv)
	}
	if iv := (Estimate{}).Interval(); !math.IsInf(iv, 1) {
		t.Fatalf("zero-rate interval %v", iv)
	}
}

func TestEPConfidenceIntervalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const rate = 0.1
	misses := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		h := &History{}
		observe(rng, h, rate, 150)
		est, err := EP(h)
		if err != nil {
			t.Fatal(err)
		}
		if rate < est.Lo || rate > est.Hi {
			misses++
		}
	}
	// 95% nominal coverage; allow generous slack for discretization.
	if misses > trials/5 {
		t.Fatalf("CI missed truth %d/%d times", misses, trials)
	}
}

func TestSiteAggregateTightensCI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rate = 0.08
	var single Estimate
	agg := &SiteAggregate{}
	for i := 0; i < 30; i++ {
		h := &History{}
		observe(rng, h, rate, 100)
		agg.Add(h)
		if i == 0 {
			var err error
			single, err = EP(h)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	pooled, err := agg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Samples != 30*100 {
		t.Fatalf("pooled samples %d", pooled.Samples)
	}
	if (pooled.Hi - pooled.Lo) >= (single.Hi - single.Lo) {
		t.Fatalf("pooled CI %v not tighter than single %v",
			pooled.Hi-pooled.Lo, single.Hi-single.Lo)
	}
	if math.Abs(pooled.Rate-rate)/rate > 0.3 {
		t.Fatalf("pooled rate %v", pooled.Rate)
	}
}

func TestSiteAggregateEmpty(t *testing.T) {
	if _, err := (&SiteAggregate{}).Estimate(); err != ErrNoHistory {
		t.Fatalf("empty aggregate: %v", err)
	}
}
