// Package daemon carries the few behaviours every webevolve daemon
// (shardd, storerd, webservd) repeats around its actual server: the
// shared -listen/-addr-file/-stats-every flag trio, the
// -metrics-listen debug listener (/metrics, /debug/pprof,
// /debug/trace — see debug.go), atomic address publication for
// orchestration scripts, signal-triggered shutdown, and leak-free
// background tickers. Consolidating them here keeps the
// daemons' main files about their daemons — and keeps the address-file
// protocol (write-then-rename, removed on shutdown) identical across
// all of them, which is what the smoke scripts' wait loops rely on.
package daemon

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Flags is the flag trio common to every daemon. Register with New,
// read after flag.Parse.
type Flags struct {
	// Listen is the host:port to serve on (:0 for a kernel-assigned
	// port).
	Listen string
	// AddrFile, when non-empty, receives the bound address once
	// listening (see PublishAddr).
	AddrFile string
	// StatsEvery is the interval for periodic stats logging (0
	// disables).
	StatsEvery time.Duration
	// MetricsListen is the host:port for the debug listener (/metrics,
	// /debug/pprof, /debug/trace); empty disables it (see ServeDebug).
	MetricsListen string
	// MetricsAddrFile, when non-empty, receives the debug listener's
	// bound address, like AddrFile does for the main listener.
	MetricsAddrFile string
}

// New registers the common daemon flags on the default flag set with
// the given default listen address.
func New(defaultListen string) *Flags {
	f := &Flags{}
	flag.StringVar(&f.Listen, "listen", defaultListen, "host:port to serve on (:0 for an assigned port)")
	flag.StringVar(&f.AddrFile, "addr-file", "", "write the bound address to this file once listening (removed on shutdown)")
	flag.DurationVar(&f.StatsEvery, "stats-every", 0, "log stats at this interval (0 disables)")
	flag.StringVar(&f.MetricsListen, "metrics-listen", "", "host:port for the debug listener serving /metrics, /debug/pprof and /debug/trace (empty disables)")
	flag.StringVar(&f.MetricsAddrFile, "metrics-addr-file", "", "write the debug listener's bound address to this file (removed on shutdown)")
	return f
}

// Publish writes the bound address to the flags' address file, if one
// was requested. The returned cleanup removes the file and must run on
// shutdown (it is safe to call when no file was requested).
func (f *Flags) Publish(addr string) (cleanup func(), err error) {
	return PublishAddr(f.AddrFile, addr)
}

// PublishAddr writes addr to file atomically (write a sibling temp
// file, then rename), so a script waiting on the file never reads a
// partial address. The returned cleanup removes the file, so waiters
// never race onto a stale address from a previous run. An empty file
// name publishes nothing and cleans up nothing.
func PublishAddr(file, addr string) (cleanup func(), err error) {
	if file == "" {
		return func() {}, nil
	}
	tmp := file + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, file); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return func() { os.Remove(file) }, nil
}

// OnShutdown invokes fn (once, in its own goroutine) when the process
// receives SIGINT or SIGTERM. fn typically logs and closes the server,
// which unblocks its Serve loop. The returned stop deregisters the
// handler — call it when shutting down for another reason, so a late
// signal doesn't touch a closed server.
func OnShutdown(fn func(sig os.Signal)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case s := <-ch:
			fn(s)
		case <-done:
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			signal.Stop(ch)
			close(done)
		}
	}
}

// Every runs fn at the given interval until the returned stop is
// called. A non-positive interval runs nothing. The ticker is a
// time.NewTicker stopped on exit — not time.Tick, which would leak and
// keep fn firing after the daemon's server closed.
func Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	t := time.NewTicker(interval)
	done := make(chan struct{})
	go func() {
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// A tick and the stop can race; prefer the stop so a
				// shut-down daemon doesn't log once more.
				select {
				case <-done:
					return
				default:
				}
				fn()
			case <-done:
				return
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}

// Fatal prints "name: err" to stderr and exits 1 — the uniform daemon
// failure path.
func Fatal(name string, err error) {
	fmt.Fprintln(os.Stderr, name+":", err)
	os.Exit(1)
}
