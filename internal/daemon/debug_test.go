package daemon

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"webevolve/internal/obs"
)

// TestDebugMux covers the three surfaces every daemon's debug listener
// shares: /metrics exposition, the /debug/trace JSONL tail, and a live
// pprof endpoint.
func TestDebugMux(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("webevolve_test_ops_total", "test ops").Add(9)
	tr := obs.NewTrace(16)
	tr.Span("fetch", 3, 12, time.Now())

	srv := httptest.NewServer(DebugMux(reg, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "webevolve_test_ops_total 9") {
		t.Errorf("/metrics: status %d, body %q", code, body)
	}
	if code, body := get("/debug/trace"); code != 200 || !strings.Contains(body, `"name":"fetch"`) || !strings.Contains(body, `"round":3`) {
		t.Errorf("/debug/trace: status %d, body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}
}

// TestServeDebug starts the real listener on :0 and checks the addr
// file round trip plus cleanup.
func TestServeDebug(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "metrics.addr")
	stop, err := ServeDebug("testd", "127.0.0.1:0", addrFile)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := os.ReadFile(addrFile)
	if err != nil {
		t.Fatalf("addr file not published: %v", err)
	}
	resp, err := http.Get("http://" + strings.TrimSpace(string(addr)) + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}
	stop()
	if _, err := os.Stat(addrFile); !os.IsNotExist(err) {
		t.Errorf("addr file not removed on stop: %v", err)
	}
}

// TestServeDebugDisabled: an empty listen address is a no-op.
func TestServeDebugDisabled(t *testing.T) {
	stop, err := ServeDebug("testd", "", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
