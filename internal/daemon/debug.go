package daemon

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"webevolve/internal/obs"
	"webevolve/internal/profiles"
)

// DebugMux assembles the debug listener's handler: /metrics (the obs
// registry in Prometheus text format), /debug/trace (the JSONL trace
// tail), and the live pprof endpoints under /debug/pprof/. It is the
// one mux every binary's -metrics-listen serves, so the observability
// surface is identical across shardd, storerd, webservd and webcrawl.
func DebugMux(reg *obs.Registry, tr *obs.Trace) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/trace", tr.Handler())
	profiles.Register(mux)
	return mux
}

// ServeDebug starts the debug listener on listen (empty: no listener,
// a no-op stop) serving DebugMux over the process-wide obs registry
// and trace. The bound address is published to addrFile with the same
// atomic write-then-rename protocol as the main address file, so smoke
// scripts can scrape a :0 listener. name prefixes the startup line.
func ServeDebug(name, listen, addrFile string) (stop func(), err error) {
	if listen == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	cleanup, err := PublishAddr(addrFile, ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(obs.Default, obs.DefaultTrace), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	// Stderr, not stdout: tools like crawlsim diff their stdout
	// byte-for-byte against runs without a debug listener.
	fmt.Fprintf(os.Stderr, "%s: metrics on http://%s/metrics\n", name, ln.Addr())
	var once bool
	return func() {
		if !once {
			once = true
			srv.Close()
			cleanup()
		}
	}, nil
}

// ServeDebug is the Flags-bound form of the package function, reading
// the -metrics-listen/-metrics-addr-file pair.
func (f *Flags) ServeDebug(name string) (stop func(), err error) {
	return ServeDebug(name, f.MetricsListen, f.MetricsAddrFile)
}

// StatsLine renders the -stats-every line every daemon prints: the
// daemon name, then the obs registry's non-zero families as
// "name=value" pairs — one consistent format across shardd, storerd
// and webservd, replacing the per-daemon ad-hoc lines. Values a daemon
// wants in the line (queue depth, open collections) register as
// GaugeFuncs on obs.Default and appear automatically, in /metrics too.
func StatsLine(name string) string {
	pairs := obs.Default.Summary()
	if len(pairs) == 0 {
		return name + ": stats: (no activity yet)"
	}
	return name + ": stats: " + strings.Join(pairs, " ")
}

// EveryStats arranges the periodic stats line for a daemon: at each
// -stats-every tick, StatsLine(name) is printed to stdout. Returns the
// ticker's stop.
func (f *Flags) EveryStats(name string) (stop func()) {
	return Every(f.StatsEvery, func() { fmt.Println(StatsLine(name)) })
}
