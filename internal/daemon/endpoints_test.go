package daemon

import (
	"reflect"
	"testing"
)

func TestParseEndpoints(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
		ok   bool
	}{
		{"", nil, true},
		{"   ", nil, true},
		{"127.0.0.1:7070", []string{"127.0.0.1:7070"}, true},
		{"a:1,b:2 , c:3", []string{"a:1", "b:2", "c:3"}, true},
		{"[::1]:7070", []string{"[::1]:7070"}, true},
		{"b:2,a:1", []string{"b:2", "a:1"}, true}, // order preserved
		{"a:1,,b:2", nil, false},                  // empty element
		{"a:1,a:1", nil, false},                   // duplicate
		{"no-port", nil, false},
		{"host:", nil, false},
		{":7070", nil, false},
	} {
		got, err := ParseEndpoints(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseEndpoints(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseEndpoints(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseEndpoint(t *testing.T) {
	if got, err := ParseEndpoint("h:1"); err != nil || got != "h:1" {
		t.Fatalf("ParseEndpoint(h:1) = %q, %v", got, err)
	}
	if _, err := ParseEndpoint("h:1,h:2"); err == nil {
		t.Fatal("ParseEndpoint accepted a two-element list")
	}
	if _, err := ParseEndpoint(""); err == nil {
		t.Fatal("ParseEndpoint accepted an empty string")
	}
}
