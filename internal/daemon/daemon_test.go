package daemon

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestPublishAddr(t *testing.T) {
	file := filepath.Join(t.TempDir(), "d.addr")
	cleanup, err := PublishAddr(file, "127.0.0.1:1234")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "127.0.0.1:1234\n" {
		t.Fatalf("address file %q", data)
	}
	// No temp file may linger next to the published one.
	if _, err := os.Stat(file + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	cleanup()
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Fatalf("address file survived cleanup: %v", err)
	}
}

func TestPublishAddrEmpty(t *testing.T) {
	cleanup, err := PublishAddr("", "ignored")
	if err != nil {
		t.Fatal(err)
	}
	cleanup() // must be callable
}

func TestEvery(t *testing.T) {
	var n atomic.Int64
	stop := Every(time.Millisecond, func() { n.Add(1) })
	for i := 0; i < 100 && n.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if n.Load() == 0 {
		t.Fatal("ticker never fired")
	}
	stop()
	stop() // idempotent
	// One in-flight call can race the stop; after it drains, the count
	// must hold still.
	time.Sleep(5 * time.Millisecond)
	after := n.Load()
	time.Sleep(10 * time.Millisecond)
	if n.Load() != after {
		t.Fatal("ticker fired after stop")
	}
}

func TestEveryDisabled(t *testing.T) {
	stop := Every(0, func() { t.Error("disabled ticker fired") })
	time.Sleep(2 * time.Millisecond)
	stop()
}

func TestOnShutdownStop(t *testing.T) {
	stop := OnShutdown(func(os.Signal) { t.Error("handler fired without a signal") })
	stop()
	stop() // idempotent
}
