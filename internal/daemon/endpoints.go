package daemon

import (
	"fmt"
	"net"
	"strings"
)

// ParseEndpoints parses a comma-separated endpoint list as daemons and
// tools accept it on their flags (-shard-servers, -store-server,
// -registry): elements are trimmed, must be host:port, and duplicates
// are rejected (a doubled shard server would silently skew routing).
// Order is preserved — for a static shard cluster the list order IS
// the URL routing, so every client must pass the same order. An empty
// string parses to nil (the flag was not set).
func ParseEndpoints(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	parts := strings.Split(list, ",")
	out := make([]string, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty endpoint in %q", list)
		}
		host, port, err := net.SplitHostPort(p)
		if err != nil {
			return nil, fmt.Errorf("endpoint %q: %v", p, err)
		}
		if host == "" || port == "" {
			return nil, fmt.Errorf("endpoint %q: missing host or port", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("duplicate endpoint %q", p)
		}
		seen[p] = true
		out = append(out, p)
	}
	return out, nil
}

// ParseEndpoint parses a single host:port endpoint (one-element list).
func ParseEndpoint(s string) (string, error) {
	eps, err := ParseEndpoints(s)
	if err != nil {
		return "", err
	}
	if len(eps) != 1 {
		return "", fmt.Errorf("want one endpoint, got %d in %q", len(eps), s)
	}
	return eps[0], nil
}
