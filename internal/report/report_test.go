package report

import (
	"strings"
	"testing"
)

func TestTableAligned(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{
		{"alpha", "1"},
		{"b", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	// All rows share the header's width.
	if len(lines[1]) < len("name") {
		t.Fatal("separator too short")
	}
	if !strings.HasPrefix(lines[2], "alpha") || !strings.HasPrefix(lines[3], "b    ") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestBarScaling(t *testing.T) {
	out := Bar([]string{"big", "half"}, []float64{1.0, 0.5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	big := strings.Count(lines[0], "#")
	half := strings.Count(lines[1], "#")
	if big != 10 {
		t.Fatalf("max bar %d, want width 10", big)
	}
	if half != 5 {
		t.Fatalf("half bar %d, want 5", half)
	}
}

func TestBarAllZeros(t *testing.T) {
	out := Bar([]string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar:\n%s", out)
	}
}

func TestGroupedBar(t *testing.T) {
	out := GroupedBar(
		[]string{"b1", "b2"},
		[]string{"com", "edu"},
		map[string][]float64{"com": {0.4, 0.1}, "edu": {0.2, 0.3}},
		20,
	)
	if !strings.Contains(out, "b1") || !strings.Contains(out, "com") {
		t.Fatalf("missing labels:\n%s", out)
	}
	// Largest value (0.4) gets the full width.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "0.400") && strings.Count(line, "#") != 20 {
			t.Fatalf("max bar not full width: %q", line)
		}
	}
}

func TestLines(t *testing.T) {
	s := Series{Name: "f", X: []float64{0, 1, 2}, Y: []float64{0, 1, 0}}
	out := Lines([]Series{s}, 30, 8)
	if !strings.Contains(out, "* = f") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "x: 0 .. 2") {
		t.Fatalf("x range missing:\n%s", out)
	}
	if strings.Count(out, "*") < 3 {
		t.Fatalf("points missing:\n%s", out)
	}
}

func TestLinesEmpty(t *testing.T) {
	if out := Lines(nil, 10, 5); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestLinesDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	s := Series{Name: "c", X: []float64{1, 1}, Y: []float64{2, 2}}
	out := Lines([]Series{s}, 10, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not drawn:\n%s", out)
	}
}

func TestSemilogYDropsNonPositive(t *testing.T) {
	s := Series{Name: "d", X: []float64{1, 2, 3}, Y: []float64{10, 0, -1}}
	out := SemilogY(s)
	if len(out.X) != 1 || out.Y[0] != 1 { // log10(10)
		t.Fatalf("semilog %+v", out)
	}
	if !strings.Contains(out.Name, "log10") {
		t.Fatal("name not annotated")
	}
}

func TestFractions(t *testing.T) {
	out := Fractions([]float64{0.5, 0.123})
	if out[0] != "50.0%" || out[1] != "12.3%" {
		t.Fatalf("fractions %v", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2}
	k := SortedKeys(m)
	if len(k) != 2 || k[0] != "a" {
		t.Fatalf("keys %v", k)
	}
}

func TestF(t *testing.T) {
	if F(0.8848) != "0.885" {
		t.Fatalf("F() = %s", F(0.8848))
	}
}
