// Package report renders experiment results as plain-text tables, bar
// charts and line charts, so each cmd/ binary can print recognizable
// versions of the paper's tables and figures to a terminal.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table renders rows with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders one horizontal bar chart line per (label, value) pair,
// scaled so the largest value spans width characters.
func Bar(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(v / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.3f\n", maxLabel, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// GroupedBar renders a grouped bar chart: for each bucket label, one bar
// per series (e.g. Figure 2(b): buckets = intervals, series = domains).
func GroupedBar(bucketLabels []string, seriesNames []string, values map[string][]float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	for _, vs := range values {
		for _, v := range vs {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	maxName := 0
	for _, n := range seriesNames {
		if len(n) > maxName {
			maxName = len(n)
		}
	}
	var b strings.Builder
	for bi, bl := range bucketLabels {
		fmt.Fprintf(&b, "%s\n", bl)
		for _, name := range seriesNames {
			vs := values[name]
			if bi >= len(vs) {
				continue
			}
			n := 0
			if maxVal > 0 {
				n = int(math.Round(vs[bi] / maxVal * float64(width)))
			}
			fmt.Fprintf(&b, "  %-*s | %s %.3f\n", maxName, name, strings.Repeat("#", n), vs[bi])
		}
	}
	return b.String()
}

// Series is one named line for Lines.
type Series struct {
	Name string
	X, Y []float64
}

// Lines renders an ASCII line chart of the series over a width x height
// character grid. Y is linear; use SemilogY to plot log-scaled data.
func Lines(series []Series, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 18
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+ox#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: %.3g .. %.3g\n", minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "x: %.3g .. %.3g\n", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// SemilogY transforms a series' Y values to log10 for plotting, dropping
// non-positive points (Figure 6's semilog axes).
func SemilogY(s Series) Series {
	out := Series{Name: s.Name + " (log10)"}
	for i := range s.X {
		if s.Y[i] > 0 {
			out.X = append(out.X, s.X[i])
			out.Y = append(out.Y, math.Log10(s.Y[i]))
		}
	}
	return out
}

// Fractions formats a fraction slice as percentages.
func Fractions(fs []float64) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%.1f%%", 100*f)
	}
	return out
}

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.3g", v) }

// SortedKeys returns sorted map keys, for deterministic printing.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
