// Package simweb implements a deterministic synthetic evolving web: the
// experimental substrate that stands in for the live 1999 web the paper
// crawled (720,000 pages on 270 sites, monitored daily for 128 days).
//
// Each simulated page changes according to a Poisson process whose rate is
// drawn from a per-domain mixture calibrated to the paper's measurements
// (Section 3, Figures 2 and 5): commercial pages change fastest (>40%
// change daily), edu and gov pages are mostly static (>50% unchanged over
// 4 months). Pages are born and die with domain-dependent exponential
// lifespans (Figure 4); a dead page is replaced by a fresh one so each
// site's BFS window keeps its size, exactly as pages enter and leave the
// paper's 3,000-page windows.
//
// The simulator is driven by a virtual day counter. All randomness flows
// from a single seed, so every experiment in this repository is exactly
// reproducible.
package simweb

import (
	"errors"
	"fmt"
)

// Domain names the paper's four domain groups (Table 1).
type Domain string

// The paper's domain groups.
const (
	Com    Domain = "com"
	Edu    Domain = "edu"
	NetOrg Domain = "netorg"
	Gov    Domain = "gov"
)

// Domains lists all domain groups in Table 1 order.
var Domains = []Domain{Com, Edu, NetOrg, Gov}

// RateClass is one component of a change-rate mixture: pages in the class
// have a mean change interval drawn log-uniformly from
// [MinIntervalDays, MaxIntervalDays].
type RateClass struct {
	Name            string
	Weight          float64
	MinIntervalDays float64
	MaxIntervalDays float64
}

// Mixture is a change-rate mixture over rate classes.
type Mixture []RateClass

// Validate checks the mixture is usable: positive weights summing to ~1
// and sane interval ranges.
func (m Mixture) Validate() error {
	if len(m) == 0 {
		return errors.New("simweb: empty mixture")
	}
	var sum float64
	for _, c := range m {
		if c.Weight < 0 {
			return fmt.Errorf("simweb: class %q has negative weight", c.Name)
		}
		if c.MinIntervalDays <= 0 || c.MaxIntervalDays < c.MinIntervalDays {
			return fmt.Errorf("simweb: class %q has bad interval range", c.Name)
		}
		sum += c.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("simweb: mixture weights sum to %v, want 1", sum)
	}
	return nil
}

// Default mixtures, calibrated to the paper's Section 3 results. The
// primary calibration targets are the claims stated in the text:
//
//   - more than 20% of all pages changed on every daily visit;
//   - more than 40% of com pages changed every day;
//   - more than 50% of edu and gov pages did not change in 4 months;
//   - 50% of the whole window changed or was replaced in ~50 days;
//   - 50% of com changed in ~11 days, gov needed ~4 months;
//   - overall mean change interval ~4 months under the paper's crude
//     assumptions.
//
// Bucket boundaries follow Figure 2: 1 day, 1 week, 1 month, 4 months.
var (
	// ComMixture: fast-moving commercial content. The distribution is
	// deliberately bimodal — a large daily-changing mass plus a large
	// static mass — which is the only shape consistent with the paper's
	// two com claims: >40% changed on every daily visit, yet 50% of the
	// domain took 11 days to change.
	ComMixture = Mixture{
		{Name: "daily", Weight: 0.40, MinIntervalDays: 0.02, MaxIntervalDays: 0.1},
		{Name: "weekly", Weight: 0.02, MinIntervalDays: 1, MaxIntervalDays: 7},
		{Name: "monthly", Weight: 0.04, MinIntervalDays: 7, MaxIntervalDays: 30},
		{Name: "quarterly", Weight: 0.14, MinIntervalDays: 30, MaxIntervalDays: 120},
		{Name: "static", Weight: 0.40, MinIntervalDays: 240, MaxIntervalDays: 2400},
	}
	// NetOrgMixture sits between com and the static domains.
	NetOrgMixture = Mixture{
		{Name: "daily", Weight: 0.13, MinIntervalDays: 0.02, MaxIntervalDays: 0.1},
		{Name: "weekly", Weight: 0.10, MinIntervalDays: 1, MaxIntervalDays: 7},
		{Name: "monthly", Weight: 0.14, MinIntervalDays: 7, MaxIntervalDays: 30},
		{Name: "quarterly", Weight: 0.21, MinIntervalDays: 30, MaxIntervalDays: 120},
		{Name: "static", Weight: 0.42, MinIntervalDays: 240, MaxIntervalDays: 2400},
	}
	// EduMixture: mostly static academic content.
	EduMixture = Mixture{
		{Name: "daily", Weight: 0.04, MinIntervalDays: 0.02, MaxIntervalDays: 0.1},
		{Name: "weekly", Weight: 0.05, MinIntervalDays: 1, MaxIntervalDays: 7},
		{Name: "monthly", Weight: 0.08, MinIntervalDays: 7, MaxIntervalDays: 30},
		{Name: "quarterly", Weight: 0.23, MinIntervalDays: 30, MaxIntervalDays: 120},
		{Name: "static", Weight: 0.60, MinIntervalDays: 240, MaxIntervalDays: 2400},
	}
	// GovMixture: the most static domain group.
	GovMixture = Mixture{
		{Name: "daily", Weight: 0.03, MinIntervalDays: 0.02, MaxIntervalDays: 0.1},
		{Name: "weekly", Weight: 0.03, MinIntervalDays: 1, MaxIntervalDays: 7},
		{Name: "monthly", Weight: 0.08, MinIntervalDays: 7, MaxIntervalDays: 30},
		{Name: "quarterly", Weight: 0.24, MinIntervalDays: 30, MaxIntervalDays: 120},
		{Name: "static", Weight: 0.62, MinIntervalDays: 240, MaxIntervalDays: 2400},
	}
)

// DefaultMixtures maps each domain to its calibrated mixture.
var DefaultMixtures = map[Domain]Mixture{
	Com:    ComMixture,
	NetOrg: NetOrgMixture,
	Edu:    EduMixture,
	Gov:    GovMixture,
}

// DefaultLifespanMeanDays gives the mean exponential page lifespan per
// domain, calibrated to Figure 4: com pages are the shortest lived, edu
// and gov pages the longest (>50% visible for more than 4 months).
var DefaultLifespanMeanDays = map[Domain]float64{
	Com:    200,
	NetOrg: 300,
	Edu:    500,
	Gov:    600,
}

// PaperSitesPerDomain is Table 1: 132 com, 78 edu, 30 netorg, 30 gov.
var PaperSitesPerDomain = map[Domain]int{
	Com:    132,
	Edu:    78,
	NetOrg: 30,
	Gov:    30,
}

// Config describes a synthetic web.
type Config struct {
	// Seed drives all randomness. The same seed yields the same web and
	// the same evolution, fetch-for-fetch.
	Seed int64

	// SitesPerDomain gives the number of sites in each domain group.
	// Defaults to PaperSitesPerDomain.
	SitesPerDomain map[Domain]int

	// PagesPerSite is the number of pages in each site's visible window.
	// The paper's experiment used 3,000; tests use much smaller webs.
	PagesPerSite int

	// Mixtures gives the change-rate mixture per domain.
	// Defaults to DefaultMixtures.
	Mixtures map[Domain]Mixture

	// LifespanMeanDays gives the mean exponential visible lifespan per
	// domain. Defaults to DefaultLifespanMeanDays. A non-positive value
	// for a domain means pages there never die.
	LifespanMeanDays map[Domain]float64

	// IntraLinksPerPage is the number of same-site links per page, on top
	// of the spanning links that keep the window BFS-connected.
	IntraLinksPerPage int

	// CrossLinksPerPage is the number of links to other sites' roots per
	// page. Cross links are drawn with a popularity skew so that
	// site-level PageRank produces a meaningful ordering (Section 2.2).
	CrossLinksPerPage int

	// PopularitySkew shapes the Zipf-like cross-link preference; larger
	// values concentrate links on a few very popular sites. Defaults to
	// 0.8 when zero.
	PopularitySkew float64
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.SitesPerDomain == nil {
		c.SitesPerDomain = PaperSitesPerDomain
	}
	if c.PagesPerSite == 0 {
		c.PagesPerSite = 50
	}
	if c.Mixtures == nil {
		c.Mixtures = DefaultMixtures
	}
	if c.LifespanMeanDays == nil {
		c.LifespanMeanDays = DefaultLifespanMeanDays
	}
	if c.IntraLinksPerPage == 0 {
		c.IntraLinksPerPage = 3
	}
	if c.CrossLinksPerPage == 0 {
		c.CrossLinksPerPage = 1
	}
	if c.PopularitySkew == 0 {
		c.PopularitySkew = 0.8
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	total := 0
	for d, n := range c.SitesPerDomain {
		if n < 0 {
			return fmt.Errorf("simweb: negative site count for %s", d)
		}
		total += n
	}
	if total == 0 {
		return errors.New("simweb: no sites configured")
	}
	if c.PagesPerSite < 1 {
		return errors.New("simweb: PagesPerSite must be >= 1")
	}
	for d, m := range c.Mixtures {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("simweb: domain %s: %w", d, err)
		}
	}
	if c.IntraLinksPerPage < 0 || c.CrossLinksPerPage < 0 {
		return errors.New("simweb: negative link counts")
	}
	return nil
}

// SmallConfig returns a configuration suitable for unit tests: a handful
// of sites with a few dozen pages each.
func SmallConfig(seed int64) Config {
	return Config{
		Seed: seed,
		SitesPerDomain: map[Domain]int{
			Com: 4, Edu: 3, NetOrg: 2, Gov: 2,
		},
		PagesPerSite: 30,
	}
}

// PaperScaleConfig returns the paper's experimental scale: 270 sites in
// the Table 1 domain mix. PagesPerSite defaults to a reduced window so
// that the full 128-day experiment replays quickly; pass 3000 to match
// the paper exactly.
func PaperScaleConfig(seed int64, pagesPerSite int) Config {
	if pagesPerSite <= 0 {
		pagesPerSite = 300
	}
	return Config{
		Seed:           seed,
		SitesPerDomain: PaperSitesPerDomain,
		PagesPerSite:   pagesPerSite,
	}
}
