package simweb

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"webevolve/internal/webgraph"
)

// ErrNotFound reports a fetch of a URL that does not exist (or no longer
// exists) in the simulated web. A crawler sees it as a 404.
var ErrNotFound = errors.New("simweb: page not found")

// Web is a deterministic simulated evolving web.
type Web struct {
	cfg    Config
	sites  []*Site
	byHost map[string]*Site

	// popCum are cumulative popularity weights indexed by popularity
	// rank; popToSite maps popularity rank -> site index.
	popCum    []float64
	popToSite []int
}

// New builds a synthetic web from the configuration. Day 0 is the start
// of the simulation; pages alive at day 0 have memoryless residual
// lifespans (exponential), matching an observation window opening on an
// already-evolving web.
func New(cfg Config) (*Web, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	w := &Web{cfg: cfg, byHost: make(map[string]*Site)}

	// Create sites in deterministic domain order.
	for _, d := range Domains {
		n := cfg.SitesPerDomain[d]
		for i := 0; i < n; i++ {
			s := &Site{
				web:          w,
				index:        len(w.sites),
				host:         hostFor(d, i, n),
				domain:       d,
				byURL:        make(map[string]*Page),
				lifespanMean: cfg.LifespanMeanDays[d],
			}
			mix := cfg.Mixtures[d]
			s.mixCum = make([]float64, len(mix))
			var cum float64
			for j, c := range mix {
				cum += c.Weight
				s.mixCum[j] = cum
			}
			w.sites = append(w.sites, s)
			w.byHost[s.host] = s
		}
	}

	// Assign intrinsic popularity: a seeded permutation of sites, with
	// Zipf-like weights over ranks. Cross links are drawn from this
	// distribution, so site-level PageRank recovers the ordering.
	wr := newRNG(cfg.Seed, 0xdeadbeef)
	perm := make([]int, len(w.sites))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := wr.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	w.popToSite = perm
	w.popCum = make([]float64, len(perm))
	var cum float64
	for r := range perm {
		cum += 1 / math.Pow(float64(r+1), cfg.PopularitySkew)
		w.popCum[r] = cum
		w.sites[perm[r]].popRank = r
	}

	// Populate windows at day 0.
	for _, s := range w.sites {
		s.pages = make([]*Page, 0, cfg.PagesPerSite)
		for slot := 0; slot < cfg.PagesPerSite; slot++ {
			s.pages = append(s.pages, nil) // placeholder so len() is final
		}
		for slot := 0; slot < cfg.PagesPerSite; slot++ {
			s.pages[slot] = s.newPage(slot, 0)
		}
	}
	return w, nil
}

// hostFor names site i of n in a domain group, reproducing Table 1's
// sub-splits: netorg = 19 org + 11 net, gov = 28 gov + 2 mil (scaled
// proportionally for other n).
func hostFor(d Domain, i, n int) string {
	switch d {
	case Com:
		return fmt.Sprintf("site%03d.com", i)
	case Edu:
		return fmt.Sprintf("univ%03d.edu", i)
	case NetOrg:
		orgs := (n*19 + 15) / 30 // round(n*19/30)
		if i < orgs {
			return fmt.Sprintf("group%03d.org", i)
		}
		return fmt.Sprintf("isp%03d.net", i)
	case Gov:
		mils := (n*2 + 15) / 30 // round(n*2/30)
		if i < mils {
			return fmt.Sprintf("base%03d.mil", i)
		}
		return fmt.Sprintf("agency%03d.gov", i)
	default:
		return fmt.Sprintf("other%03d.example", i)
	}
}

// sampleSite draws a site index with the popularity skew.
func (w *Web) sampleSite(r *rng) int {
	u := r.float64() * w.popCum[len(w.popCum)-1]
	rank := sort.SearchFloat64s(w.popCum, u)
	if rank >= len(w.popToSite) {
		rank = len(w.popToSite) - 1
	}
	return w.popToSite[rank]
}

// Config returns the web's effective configuration.
func (w *Web) Config() Config { return w.cfg }

// Sites returns all sites in creation order.
func (w *Web) Sites() []*Site { return w.sites }

// SiteByHost looks up a site.
func (w *Web) SiteByHost(host string) (*Site, bool) {
	s, ok := w.byHost[host]
	return s, ok
}

// NumPages returns the total number of window slots across all sites.
func (w *Web) NumPages() int {
	n := 0
	for _, s := range w.sites {
		n += len(s.pages)
	}
	return n
}

// AdvanceTo processes births and deaths in all sites up to the given day.
// Fetch advances the target site lazily, so calling AdvanceTo is only
// needed when oracle-scanning the whole web.
func (w *Web) AdvanceTo(day float64) {
	for _, s := range w.sites {
		s.advanceTo(day)
	}
}

// Fetch retrieves the page at url as of the given day, with rendered
// HTML. It returns ErrNotFound for URLs that never existed, are not yet
// born, or have died.
func (w *Web) Fetch(url string, day float64) (Snapshot, error) {
	return w.fetch(url, day, true)
}

// FetchMeta is Fetch without HTML rendering: the links and checksum are
// returned but no content is generated. The daily monitoring experiment
// uses it to replay 100M+ fetches quickly.
func (w *Web) FetchMeta(url string, day float64) (Snapshot, error) {
	return w.fetch(url, day, false)
}

func (w *Web) fetch(url string, day float64, withHTML bool) (Snapshot, error) {
	host := webgraph.SiteOf(url)
	s, ok := w.byHost[host]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: unknown host %q", ErrNotFound, host)
	}
	s.advanceTo(day)
	p, ok := s.byURL[url]
	if !ok || !p.aliveAt(day) {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	p.advanceTo(day)
	return p.snapshot(day, withHTML), nil
}

// PageOracle exposes ground truth about a page for estimator evaluation:
// its true change rate and version at the given day.
func (w *Web) PageOracle(url string, day float64) (rate float64, version int, err error) {
	host := webgraph.SiteOf(url)
	s, ok := w.byHost[host]
	if !ok {
		return 0, 0, ErrNotFound
	}
	s.advanceTo(day)
	p, ok := s.byURL[url]
	if !ok {
		return 0, 0, ErrNotFound
	}
	p.advanceTo(math.Min(day, p.deathDay))
	return p.ratePerDay, p.version, nil
}

// BuildGraph snapshots the live link structure of the whole web at the
// given day into a page-level graph (used by ranking experiments and the
// crawler's RankingModule tests).
func (w *Web) BuildGraph(day float64) *webgraph.Graph {
	g := webgraph.New()
	for _, s := range w.sites {
		s.advanceTo(day)
		for _, p := range s.pages {
			if !p.aliveAt(day) {
				continue
			}
			g.AddPage(p.url)
			for _, l := range s.linksOf(p) {
				g.AddLink(p.url, l)
			}
		}
	}
	return g
}

// SiteGraph builds the site-level hypergraph of Section 2.2 directly from
// the cross-link structure at the given day.
func (w *Web) SiteGraph(day float64) *webgraph.SiteGraph {
	return webgraph.ProjectSites(w.BuildGraph(day))
}

// RootURLs returns every site's root URL; these are the seed URLs for
// crawls of the simulated web.
func (w *Web) RootURLs() []string {
	out := make([]string, 0, len(w.sites))
	for _, s := range w.sites {
		out = append(out, s.RootURL())
	}
	return out
}

// DomainOf returns the domain group of a URL's site, or false when the
// host is unknown.
func (w *Web) DomainOf(url string) (Domain, bool) {
	s, ok := w.byHost[webgraph.SiteOf(url)]
	if !ok {
		return "", false
	}
	return s.domain, true
}
