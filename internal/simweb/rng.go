package simweb

import "math"

// rng is a tiny splitmix64 PRNG. Every page owns one, seeded from the web
// seed and the page's identity, so the evolution of each page is
// deterministic regardless of the order in which pages are queried, and
// the per-page state is only 8 bytes (a math/rand.Rand would cost ~5 KiB
// per page, prohibitive at the paper's 810,000-page scale).
type rng struct{ state uint64 }

// newRNG builds a generator from a seed and a stream of salts.
func newRNG(seed int64, salts ...uint64) rng {
	s := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, salt := range salts {
		s ^= mix64(salt + 0x9e3779b97f4a7c15)
		s = mix64(s)
	}
	return rng{state: s}
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next returns the next raw 64-bit value.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// float64 returns a uniform variate in (0, 1].
func (r *rng) float64() float64 {
	// 53 random bits; add 1 so the result is never 0 (log-safe).
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// exp returns an exponential variate with the given rate (mean 1/rate).
// A non-positive rate yields +Inf, i.e. the event never happens.
func (r *rng) exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return -math.Log(r.float64()) / rate
}

// intn returns a uniform integer in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// logUniform returns a variate drawn log-uniformly from [lo, hi].
func (r *rng) logUniform(lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	u := r.float64()
	return lo * math.Exp(u*math.Log(hi/lo))
}

// pick samples an index according to the given cumulative weights
// (cum[len-1] must be the total weight).
func (r *rng) pick(cum []float64) int {
	u := r.float64() * cum[len(cum)-1]
	for i, c := range cum {
		if u <= c {
			return i
		}
	}
	return len(cum) - 1
}
