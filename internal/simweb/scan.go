package simweb

// ScanWindow visits every page currently in the site's window at the
// given day, in BFS (slot) order, calling fn with the page's URL and
// content checksum. It is the daily-monitoring fast path: no link lists
// or HTML are materialized, so replaying the paper's 104 million
// page-visits (720,000 pages x 128 days) stays cheap.
func (s *Site) ScanWindow(day float64, fn func(url string, checksum uint64)) {
	s.advanceTo(day)
	for _, p := range s.pages {
		if !p.aliveAt(day) {
			continue
		}
		p.advanceTo(day)
		fn(p.url, pageChecksum(p.url, p.version))
	}
}

// ScanAll runs ScanWindow over every site at the given day.
func (w *Web) ScanAll(day float64, fn func(site *Site, url string, checksum uint64)) {
	for _, s := range w.sites {
		site := s
		s.ScanWindow(day, func(url string, sum uint64) { fn(site, url, sum) })
	}
}
