package simweb

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"webevolve/internal/webgraph"
)

func small(t *testing.T, seed int64) *Web {
	t.Helper()
	w, err := New(SmallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SitesPerDomain: map[Domain]int{Com: -1}},
		{SitesPerDomain: map[Domain]int{}, PagesPerSite: 10},
		{SitesPerDomain: map[Domain]int{Com: 1}, PagesPerSite: -3},
		{SitesPerDomain: map[Domain]int{Com: 1}, PagesPerSite: 5,
			Mixtures: map[Domain]Mixture{Com: {{Name: "x", Weight: 0.5, MinIntervalDays: 1, MaxIntervalDays: 2}}}},
		{SitesPerDomain: map[Domain]int{Com: 1}, PagesPerSite: 5, IntraLinksPerPage: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if err := (SmallConfig(1)).Validate(); err != nil {
		t.Fatalf("small config rejected: %v", err)
	}
}

func TestMixtureValidate(t *testing.T) {
	if err := (Mixture{}).Validate(); err == nil {
		t.Fatal("empty mixture accepted")
	}
	m := Mixture{{Name: "a", Weight: -0.1, MinIntervalDays: 1, MaxIntervalDays: 2}}
	if err := m.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	m = Mixture{{Name: "a", Weight: 1, MinIntervalDays: 3, MaxIntervalDays: 2}}
	if err := m.Validate(); err == nil {
		t.Fatal("inverted interval accepted")
	}
	for d, dm := range DefaultMixtures {
		if err := dm.Validate(); err != nil {
			t.Errorf("default mixture %s invalid: %v", d, err)
		}
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	w1 := small(t, 7)
	w2 := small(t, 7)
	for _, day := range []float64{0, 3.5, 20, 90} {
		for _, s := range w1.Sites() {
			urls1 := s.WindowURLs(day)
			s2, ok := w2.SiteByHost(s.Host())
			if !ok {
				t.Fatalf("site %s missing in twin", s.Host())
			}
			urls2 := s2.WindowURLs(day)
			if len(urls1) != len(urls2) {
				t.Fatalf("day %v site %s: window sizes differ", day, s.Host())
			}
			for i := range urls1 {
				if urls1[i] != urls2[i] {
					t.Fatalf("day %v: %s vs %s", day, urls1[i], urls2[i])
				}
				a, err1 := w1.FetchMeta(urls1[i], day)
				b, err2 := w2.FetchMeta(urls2[i], day)
				if err1 != nil || err2 != nil {
					t.Fatalf("fetch errors %v %v", err1, err2)
				}
				if a.Checksum != b.Checksum || a.Version != b.Version {
					t.Fatalf("snapshots diverge for %s at %v", urls1[i], day)
				}
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	w1 := small(t, 1)
	w2 := small(t, 2)
	diff := 0
	for _, s := range w1.Sites() {
		for _, u := range s.WindowURLs(30) {
			a, err1 := w1.FetchMeta(u, 30)
			b, err2 := w2.FetchMeta(u, 30)
			if err1 == nil && err2 == nil && a.Version != b.Version {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical evolution")
	}
}

func TestChecksumChangesIffVersionChanges(t *testing.T) {
	w := small(t, 3)
	root := w.Sites()[0].RootURL()
	var prev Snapshot
	for day := 0.0; day < 40; day++ {
		snap, err := w.FetchMeta(root, day)
		if err != nil {
			t.Fatal(err)
		}
		if day > 0 {
			if (snap.Version != prev.Version) != (snap.Checksum != prev.Checksum) {
				t.Fatalf("day %v: version %d->%d but checksum equal=%v",
					day, prev.Version, snap.Version, snap.Checksum == prev.Checksum)
			}
		}
		prev = snap
	}
}

func TestFetchUnknownsFail(t *testing.T) {
	w := small(t, 4)
	if _, err := w.Fetch("http://nosuchhost.com/", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown host error %v", err)
	}
	if _, err := w.Fetch(w.Sites()[0].RootURL()+"p99999", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown page error %v", err)
	}
}

func TestDeadPageBecomesNotFound(t *testing.T) {
	w := small(t, 5)
	// Find a page that dies within 400 days.
	var victim string
	var death float64
	for _, s := range w.Sites() {
		for _, p := range s.AlivePages(0) {
			if !math.IsInf(p.DeathDay(), 1) && p.DeathDay() < 400 {
				victim, death = p.URL(), p.DeathDay()
				break
			}
		}
		if victim != "" {
			break
		}
	}
	if victim == "" {
		t.Skip("no dying page in horizon")
	}
	if _, err := w.FetchMeta(victim, death-0.5); err != nil {
		t.Fatalf("page dead before death day: %v", err)
	}
	if _, err := w.FetchMeta(victim, death+0.5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dead page still fetchable: %v", err)
	}
}

func TestWindowSizeStableUnderChurn(t *testing.T) {
	w := small(t, 6)
	want := w.Config().PagesPerSite
	for _, day := range []float64{0, 50, 200, 500} {
		for _, s := range w.Sites() {
			if got := len(s.WindowURLs(day)); got != want {
				t.Fatalf("site %s day %v: window %d, want %d", s.Host(), day, got, want)
			}
		}
	}
	// Churn must actually happen over 500 days.
	born, died := w.Sites()[0].Churn()
	if died == 0 || born <= want {
		t.Fatalf("no churn: born=%d died=%d", born, died)
	}
}

func TestRootIsImmortalAndStable(t *testing.T) {
	w := small(t, 8)
	for _, s := range w.Sites() {
		root := s.RootURL()
		for _, day := range []float64{0, 300, 900} {
			if _, err := w.FetchMeta(root, day); err != nil {
				t.Fatalf("root %s gone at %v: %v", root, day, err)
			}
		}
	}
}

func TestWindowReachableFromRootViaLinks(t *testing.T) {
	// Every page in a site's window must be reachable breadth-first from
	// the root following in-window links (the paper's window semantics).
	w := small(t, 9)
	day := 10.0
	for _, s := range w.Sites() {
		window := s.WindowURLs(day)
		inWindow := make(map[string]bool, len(window))
		for _, u := range window {
			inWindow[u] = true
		}
		visited := map[string]bool{s.RootURL(): true}
		queue := []string{s.RootURL()}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			snap, err := w.FetchMeta(u, day)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range snap.Links {
				if inWindow[l] && !visited[l] {
					visited[l] = true
					queue = append(queue, l)
				}
			}
		}
		for _, u := range window {
			if !visited[u] {
				t.Fatalf("site %s: window page %s unreachable from root", s.Host(), u)
			}
		}
	}
}

func TestLinksContainNoDeadPages(t *testing.T) {
	w := small(t, 10)
	day := 120.0
	for _, s := range w.Sites() {
		for _, u := range s.WindowURLs(day) {
			snap, err := w.FetchMeta(u, day)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range snap.Links {
				if _, err := w.FetchMeta(l, day); err != nil {
					t.Fatalf("page %s links to dead %s: %v", u, l, err)
				}
			}
		}
	}
}

func TestHTMLEmbedsLinks(t *testing.T) {
	w := small(t, 11)
	root := w.Sites()[0].RootURL()
	snap, err := w.Fetch(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.HTML == "" {
		t.Fatal("Fetch returned no HTML")
	}
	for _, l := range snap.Links {
		if !strings.Contains(snap.HTML, "\""+l+"\"") {
			t.Fatalf("HTML missing link %s", l)
		}
	}
	lite, err := w.FetchMeta(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lite.HTML != "" {
		t.Fatal("FetchMeta rendered HTML")
	}
	if lite.Checksum != snap.Checksum {
		t.Fatal("FetchMeta checksum differs from Fetch")
	}
}

func TestPageOracle(t *testing.T) {
	w := small(t, 12)
	root := w.Sites()[0].RootURL()
	rate, v0, err := w.PageOracle(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("rate %v", rate)
	}
	_, v1, err := w.PageOracle(root, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v1 < v0 {
		t.Fatalf("version went backwards: %d -> %d", v0, v1)
	}
}

func TestVersionCountMatchesRate(t *testing.T) {
	// Aggregated over many pages, observed change counts should track
	// rate*T.
	w, err := New(Config{
		Seed:           21,
		SitesPerDomain: map[Domain]int{Com: 2},
		PagesPerSite:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 60.0
	var wantSum, gotSum float64
	for _, s := range w.Sites() {
		for _, p := range s.AlivePages(0) {
			if p.DeathDay() < horizon {
				continue
			}
			rate, v, err := w.PageOracle(p.URL(), horizon)
			if err != nil {
				t.Fatal(err)
			}
			if rate > 1 {
				continue // ultra-hot pages dominate variance; skip
			}
			wantSum += rate * horizon
			gotSum += float64(v)
		}
	}
	if wantSum == 0 {
		t.Skip("no moderate pages sampled")
	}
	if math.Abs(gotSum-wantSum)/wantSum > 0.15 {
		t.Fatalf("changes %v, want ~%v", gotSum, wantSum)
	}
}

func TestDomainComposition(t *testing.T) {
	w := small(t, 13)
	counts := map[Domain]int{}
	for _, s := range w.Sites() {
		counts[s.Domain()]++
	}
	cfg := SmallConfig(13)
	for d, n := range cfg.SitesPerDomain {
		if counts[d] != n {
			t.Fatalf("domain %s: %d sites, want %d", d, counts[d], n)
		}
	}
}

func TestHostForSubSplits(t *testing.T) {
	// Table 1 sub-splits: 30 netorg = 19 org + 11 net; 30 gov = 28 gov +
	// 2 mil.
	org, net, gov, mil := 0, 0, 0, 0
	for i := 0; i < 30; i++ {
		if strings.HasSuffix(hostFor(NetOrg, i, 30), ".org") {
			org++
		} else {
			net++
		}
		switch {
		case strings.HasSuffix(hostFor(Gov, i, 30), ".mil"):
			mil++
		default:
			gov++
		}
	}
	if org != 19 || net != 11 {
		t.Fatalf("netorg split %d/%d, want 19/11", org, net)
	}
	if gov != 28 || mil != 2 {
		t.Fatalf("gov split %d/%d, want 28/2", gov, mil)
	}
}

func TestDomainOfURL(t *testing.T) {
	w := small(t, 14)
	for _, s := range w.Sites() {
		d, ok := w.DomainOf(s.RootURL())
		if !ok || d != s.Domain() {
			t.Fatalf("DomainOf(%s) = %v,%v", s.RootURL(), d, ok)
		}
	}
	if _, ok := w.DomainOf("http://unknown.io/"); ok {
		t.Fatal("unknown host classified")
	}
}

func TestBuildGraphMatchesWindows(t *testing.T) {
	w := small(t, 15)
	g := w.BuildGraph(5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range w.Sites() {
		total += len(s.WindowURLs(5))
	}
	if g.NumPages() < total {
		t.Fatalf("graph has %d pages, windows have %d", g.NumPages(), total)
	}
	for _, s := range w.Sites() {
		if !g.HasPage(s.RootURL()) {
			t.Fatalf("graph missing root %s", s.RootURL())
		}
	}
}

func TestSiteGraphHasAllSites(t *testing.T) {
	w := small(t, 16)
	sg := w.SiteGraph(0)
	if len(sg.Sites) != len(w.Sites()) {
		t.Fatalf("site graph has %d sites, want %d", len(sg.Sites), len(w.Sites()))
	}
}

func TestPopularityRanksAreAPermutation(t *testing.T) {
	w := small(t, 17)
	seen := make(map[int]bool)
	for _, s := range w.Sites() {
		r := s.PopularityRank()
		if r < 0 || r >= len(w.Sites()) || seen[r] {
			t.Fatalf("bad popularity rank %d", r)
		}
		seen[r] = true
	}
}

func TestScanWindowMatchesFetchMeta(t *testing.T) {
	w := small(t, 18)
	day := 25.0
	for _, s := range w.Sites()[:3] {
		s.ScanWindow(day, func(url string, sum uint64) {
			snap, err := w.FetchMeta(url, day)
			if err != nil {
				t.Fatalf("scan url %s unfetchable: %v", url, err)
			}
			if snap.Checksum != sum {
				t.Fatalf("scan checksum mismatch for %s", url)
			}
		})
	}
}

func TestMonotoneAdvanceProperty(t *testing.T) {
	// Versions never decrease under arbitrary monotone query sequences.
	if err := quick.Check(func(steps []uint8) bool {
		w, err := New(SmallConfig(20))
		if err != nil {
			return false
		}
		root := w.Sites()[0].RootURL()
		day, prevV := 0.0, -1
		for _, st := range steps {
			day += float64(st%40) / 4
			snap, err := w.FetchMeta(root, day)
			if err != nil {
				return false
			}
			if snap.Version < prevV {
				return false
			}
			prevV = snap.Version
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGLogUniformWithinBounds(t *testing.T) {
	r := newRNG(1, 2, 3)
	for i := 0; i < 10000; i++ {
		v := r.logUniform(2, 50)
		if v < 2 || v > 50 {
			t.Fatalf("logUniform out of bounds: %v", v)
		}
	}
}

func TestRNGExpPositive(t *testing.T) {
	r := newRNG(5)
	for i := 0; i < 10000; i++ {
		if v := r.exp(3); v <= 0 || math.IsInf(v, 0) {
			t.Fatalf("exp variate %v", v)
		}
	}
	if !math.IsInf(r.exp(0), 1) {
		t.Fatal("zero-rate exp must be +Inf")
	}
}

func TestDomainOfMatchesWebgraph(t *testing.T) {
	w := small(t, 22)
	for _, s := range w.Sites() {
		if string(s.Domain()) != webgraph.DomainOf(s.Host()) {
			t.Fatalf("domain mismatch for %s", s.Host())
		}
	}
}
