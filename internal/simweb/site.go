package simweb

import (
	"fmt"
	"math"
)

// branching is the spanning-tree fan-out that keeps every site window
// connected: slot i links to slots branching*i+1 .. branching*i+branching.
// BFS from the root therefore reaches all slots in slot order, exactly the
// "window of pages reachable breadth first from the root" of Section 2.1.
const branching = 8

// Site is one simulated web site: a window of pages rooted at an immortal
// root page.
type Site struct {
	web    *Web
	index  int
	host   string
	domain Domain

	// popRank is the site's intrinsic popularity rank (0 = most popular
	// in the universe); cross links prefer low ranks.
	popRank int

	pages      []*Page          // by slot
	byURL      map[string]*Page // all generations, including dead pages
	uidCounter int
	advancedTo float64

	mixCum       []float64 // cumulative mixture weights
	lifespanMean float64

	// bornCount / diedCount track window churn for diagnostics.
	bornCount, diedCount int
}

// Host returns the site's host name.
func (s *Site) Host() string { return s.host }

// Domain returns the site's domain group.
func (s *Site) Domain() Domain { return s.domain }

// PopularityRank returns the site's intrinsic popularity rank (0 = most
// popular). Oracle access for validating the site-selection experiment.
func (s *Site) PopularityRank() int { return s.popRank }

// RootURL returns the site's root page URL.
func (s *Site) RootURL() string { return "http://" + s.host + "/" }

// urlFor builds the URL for a page uid.
func (s *Site) urlFor(uid int) string {
	if uid == 0 {
		return s.RootURL()
	}
	return fmt.Sprintf("http://%s/p%05d", s.host, uid)
}

// newPage creates the page occupying slot at bornDay.
func (s *Site) newPage(slot int, bornDay float64) *Page {
	uid := s.uidCounter
	s.uidCounter++
	p := &Page{
		site:       s,
		slot:       slot,
		uid:        uid,
		url:        s.urlFor(uid),
		bornDay:    bornDay,
		advancedTo: bornDay,
		lastChange: bornDay,
		rnd:        newRNG(s.web.cfg.Seed, uint64(s.index)<<32|uint64(uid)),
	}
	// Change rate from the domain mixture.
	mix := s.web.cfg.Mixtures[s.domain]
	ci := p.rnd.pick(s.mixCum)
	class := mix[ci]
	interval := p.rnd.logUniform(class.MinIntervalDays, class.MaxIntervalDays)
	p.rateClass = class.Name
	p.ratePerDay = 1 / interval
	p.nextChange = bornDay + p.rnd.exp(p.ratePerDay)
	// Lifespan: roots are immortal so the site stays crawlable, matching
	// the stable root pages of the paper's 270 sites.
	if slot == 0 || s.lifespanMean <= 0 {
		p.deathDay = math.Inf(1)
		p.lifespanDays = math.Inf(1)
	} else {
		p.lifespanDays = p.rnd.exp(1 / s.lifespanMean)
		p.deathDay = bornDay + p.lifespanDays
	}
	// Extra intra-site links.
	n := len(s.pages)
	if n == 0 {
		n = s.web.cfg.PagesPerSite
	}
	for i := 0; i < s.web.cfg.IntraLinksPerPage; i++ {
		p.extraIntra = append(p.extraIntra, p.rnd.intn(n))
	}
	// Cross-site links to popular roots.
	for i := 0; i < s.web.cfg.CrossLinksPerPage; i++ {
		t := s.web.sampleSite(&p.rnd)
		if t != s.index {
			p.crossSites = append(p.crossSites, t)
		}
	}
	s.byURL[p.url] = p
	s.bornCount++
	return p
}

// advanceTo processes page deaths/replacements and nothing else; page
// change state advances lazily at fetch time.
func (s *Site) advanceTo(day float64) {
	if day <= s.advancedTo {
		return
	}
	for slot, p := range s.pages {
		for p.deathDay <= day {
			// Freeze the dying page's change state at its death and
			// replace it in the window.
			p.advanceTo(p.deathDay)
			s.diedCount++
			np := s.newPage(slot, p.deathDay)
			s.pages[slot] = np
			p = np
		}
	}
	s.advancedTo = day
}

// linksOf returns the current out-links of p: spanning-tree children,
// extra intra-site links and cross-site root links. Link targets are the
// *current* occupants of the linked slots.
func (s *Site) linksOf(p *Page) []string {
	var out []string
	seen := map[string]struct{}{p.url: {}}
	add := func(u string) {
		if _, dup := seen[u]; dup {
			return
		}
		seen[u] = struct{}{}
		out = append(out, u)
	}
	lo := branching*p.slot + 1
	for c := lo; c < lo+branching && c < len(s.pages); c++ {
		add(s.pages[c].url)
	}
	for _, slot := range p.extraIntra {
		if slot < len(s.pages) {
			add(s.pages[slot].url)
		}
	}
	for _, si := range p.crossSites {
		add(s.web.sites[si].RootURL())
	}
	return out
}

// WindowURLs returns the URLs currently visible in the site's window at
// the given day, in BFS (slot) order. It advances the site to day first.
func (s *Site) WindowURLs(day float64) []string {
	s.advanceTo(day)
	out := make([]string, 0, len(s.pages))
	for _, p := range s.pages {
		if p.aliveAt(day) {
			out = append(out, p.url)
		}
	}
	return out
}

// AlivePages returns the live pages at the given day in slot order.
// Oracle access for tests and calibration.
func (s *Site) AlivePages(day float64) []*Page {
	s.advanceTo(day)
	out := make([]*Page, 0, len(s.pages))
	for _, p := range s.pages {
		if p.aliveAt(day) {
			out = append(out, p)
		}
	}
	return out
}

// Churn reports how many pages were ever created in this site and how
// many have died.
func (s *Site) Churn() (born, died int) { return s.bornCount, s.diedCount }
