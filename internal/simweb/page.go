package simweb

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
)

// Page is one simulated web page. Its content version advances according
// to a Poisson process with the page's change rate; the page is visible in
// its site's window from BornDay until DeathDay.
type Page struct {
	url  string
	site *Site
	slot int // structural position within the site window
	uid  int // per-site unique id; distinguishes slot generations

	rateClass    string  // mixture class name, for diagnostics
	ratePerDay   float64 // Poisson change rate (changes/day)
	bornDay      float64
	deathDay     float64 // +Inf for immortal pages (site roots)
	lifespanDays float64 // deathDay - bornDay (Inf for roots)

	// Poisson change state, advanced lazily and monotonically.
	version    int
	advancedTo float64
	nextChange float64
	lastChange float64 // day of the most recent change, or bornDay

	// extraIntra are additional random same-site slots this page links to
	// (beyond the spanning-tree children that keep the window connected).
	extraIntra []int
	// crossSites are indexes of other sites whose roots this page links to.
	crossSites []int

	rnd rng
}

// URL returns the page's URL.
func (p *Page) URL() string { return p.url }

// Site returns the owning site.
func (p *Page) Site() *Site { return p.site }

// Rate returns the page's true change rate in changes per day. Oracle
// access for estimator evaluation; a real crawler never sees this.
func (p *Page) Rate() float64 { return p.ratePerDay }

// RateClass returns the mixture class the rate was drawn from.
func (p *Page) RateClass() string { return p.rateClass }

// BornDay returns the day the page entered the window.
func (p *Page) BornDay() float64 { return p.bornDay }

// DeathDay returns the day the page leaves the window (+Inf for roots).
func (p *Page) DeathDay() float64 { return p.deathDay }

// aliveAt reports whether the page is visible at the given day.
func (p *Page) aliveAt(day float64) bool {
	return day >= p.bornDay && day < p.deathDay
}

// advanceTo moves the Poisson change state forward to the given day.
// Calls must be monotone in day, which holds because the web advances
// time monotonically.
func (p *Page) advanceTo(day float64) {
	if day <= p.advancedTo {
		return
	}
	limit := math.Min(day, p.deathDay)
	for p.nextChange <= limit {
		p.version++
		p.lastChange = p.nextChange
		p.nextChange += p.rnd.exp(p.ratePerDay)
	}
	p.advancedTo = day
}

// Snapshot is the observable state of a page at a fetch instant: what a
// crawler sees.
type Snapshot struct {
	URL      string
	Day      float64 // fetch day
	Version  int     // number of content changes since birth
	Checksum uint64  // content checksum; changes iff Version changes
	Links    []string
	HTML     string // synthetic HTML embedding Links as anchors
	Size     int    // length of HTML in bytes
}

// snapshot captures the page's state at the given day. The caller must
// have advanced the page (and processed site deaths) first.
func (p *Page) snapshot(day float64, withHTML bool) Snapshot {
	links := p.site.linksOf(p)
	s := Snapshot{
		URL:      p.url,
		Day:      day,
		Version:  p.version,
		Checksum: pageChecksum(p.url, p.version),
		Links:    links,
	}
	if withHTML {
		s.HTML = renderHTML(p.url, p.version, links)
	} else {
		s.HTML = ""
	}
	s.Size = len(s.HTML)
	if !withHTML {
		// Approximate the size a rendered page would have, so bandwidth
		// accounting works even when callers skip HTML generation.
		s.Size = 256 + 64*len(links)
	}
	return s
}

// pageChecksum derives the content checksum from the page identity and
// version. Deliberately independent of link URLs: a neighbouring page
// being replaced rewrites this page's anchor list but must not register as
// a content change, or the calibrated change statistics would be
// contaminated (see DESIGN.md; the real experiment's checksums hash page
// bodies, whose navigation chrome is similarly stable).
func pageChecksum(url string, version int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(url))
	_, _ = h.Write([]byte{'#'})
	_, _ = fmt.Fprintf(h, "%d", version)
	return h.Sum64()
}

// renderHTML produces deterministic pseudo-content for a page version,
// with all links as anchors. The crawler's HTML parser extracts exactly
// Links back out of it.
func renderHTML(url string, version int, links []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s v%d</title></head><body>\n", url, version)
	fmt.Fprintf(&b, "<h1>Synthetic page %s</h1>\n", url)
	fmt.Fprintf(&b, "<p>revision %d; checksum %016x</p>\n", version, pageChecksum(url, version))
	// A block of version-dependent filler so page size varies with
	// content, as real pages do.
	h := fnv.New32a()
	_, _ = h.Write([]byte(url))
	para := int(h.Sum32()%5) + 1
	for i := 0; i < para; i++ {
		fmt.Fprintf(&b, "<p>section %d of revision %d</p>\n", i, version)
	}
	b.WriteString("<ul>\n")
	for _, l := range links {
		fmt.Fprintf(&b, "  <li><a href=\"%s\">%s</a></li>\n", l, l)
	}
	b.WriteString("</ul>\n</body></html>\n")
	return b.String()
}
