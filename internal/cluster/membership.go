package cluster

// Registry-driven membership for RemoteShards: the client polls a
// MembershipSource (normally a registry.Client) for the versioned
// member set, and when a shard migration is pending it *drives* the
// migration itself — the single crawl client is the only mutator of
// the frontier, so migrating at one of the engine's quiescent round
// boundaries needs no server-to-server coordination:
//
//  1. Read the membership. If a pending shard set exists, build the
//     pending ring and diff it against the installed one: the moved
//     partitions are exactly the keys changing owner.
//  2. Export the moved partitions from EVERY connected member (the
//     union of the installed and pending sets), not just the computed
//     old owners. Members holding nothing return empty — but a client
//     that crashed mid-migration, or a Complete lost to a stale epoch,
//     leaves entries parked on members the new ring does not map them
//     to, and exporting from everyone reclaims them on the next pass.
//     The migration is self-healing by construction.
//  3. Group the exported entries by their pending-ring owner and
//     import them (chunked, with the exporters' recent dedup tails).
//  4. Complete(pendingEpoch) at the registry. Only success installs
//     the pending topology; a stale epoch means the membership moved
//     under us, and the next Rebalance recomputes from scratch.
//
// A registry outage keeps the last-known epoch: Rebalance returns nil
// and the crawl continues against the installed topology (the
// documented failure mode). Transport errors against shard members
// during a migration are different — entries could otherwise be
// extracted but never land — so they go sticky via Err like any other
// frontier op.

import (
	"fmt"
	"net"
	"sort"
	"time"

	"webevolve/internal/frontier"
	"webevolve/internal/registry"
)

// MembershipSource feeds RemoteShards its member set; registry.Client
// implements it.
type MembershipSource interface {
	Membership() (registry.Membership, error)
	Complete(pendEpoch uint64) error
}

// defaultRebalancePoll rate-limits membership polls: Rebalance is
// called at every engine round boundary, which can be tens of
// thousands of times a second for an in-memory simulation.
const defaultRebalancePoll = 100 * time.Millisecond

// DialMembership connects to the shard cluster named by a membership
// source, dialing each member through dialFor. The installed topology
// tracks the source's epoch via Rebalance.
func DialMembership(src MembershipSource, dialFor func(m registry.Member) Dialer, opts Options) (*RemoteShards, error) {
	ms, err := src.Membership()
	if err != nil {
		return nil, fmt.Errorf("cluster: membership: %w", err)
	}
	shard := ms.Shard()
	if len(shard) == 0 {
		return nil, fmt.Errorf("cluster: no shard servers registered (epoch %d)", ms.Epoch)
	}
	rs := &RemoteShards{
		reqBase:    randomReqBase(),
		politeness: opts.PolitenessDays,
		opts:       opts,
		src:        src,
		dialFor:    dialFor,
	}
	helloInit := helloBody(opts.PolitenessDays, true, opts.maxProto())
	names := make([]string, len(shard))
	servers := make([]*serverConns, len(shard))
	sort.Slice(shard, func(i, j int) bool { return shard[i].Addr < shard[j].Addr })
	for i, m := range shard {
		sc := rs.newShardMember(m)
		// The eager first connect clears stale claims; reconnects (the
		// sc.hello body) must not, their own workers hold claims.
		if err := sc.dialEager(helloInit, "member "+m.Addr+" (%v)"); err != nil {
			rs.closeAll()
			return nil, fmt.Errorf("cluster: member %s: %w", m.Addr, err)
		}
		names[i] = m.Addr
		servers[i] = sc
		rs.track(sc)
	}
	rs.installTopology(ms.Epoch, NewRing(names, 0), servers)
	registry.EpochGauge.Set(int64(ms.Epoch))
	// A migration may already be pending (a predecessor crashed
	// mid-flight); adopt it before the first op routes anything.
	rs.lastPoll = time.Time{}
	if err := rs.Rebalance(); err != nil {
		rs.closeAll()
		return nil, err
	}
	return rs, nil
}

// DialRegistry connects to the shard cluster registered at the given
// registry address, dialing members over TCP.
func DialRegistry(registryAddr string, opts Options) (*RemoteShards, error) {
	return DialMembership(registry.NewClient(registryAddr), func(m registry.Member) Dialer {
		addr := m.Addr
		return func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, opts.dialTimeout())
		}
	}, opts)
}

// newShardMember builds the (undialed) pool for one registry member.
func (rs *RemoteShards) newShardMember(m registry.Member) *serverConns {
	sc := newServerConns("member "+m.Addr, rs.dialFor(m), rs.opts, &rs.closed)
	sc.hello = helloBody(rs.politeness, false, rs.opts.maxProto())
	sc.helloOp = opHello
	sc.checkHello = sc.checkShardHello
	return sc
}

// primeLazy fills a fresh pool with empty slots, so every connection
// dials on first use — the lazily-connecting counterpart of dialEager,
// for members joining mid-run (their hello must not clear claims
// anyway, so there is nothing an eager dial would add).
func (sc *serverConns) primeLazy() {
	for i := 0; i < cap(sc.pool); i++ {
		sc.pool <- nil
	}
}

// Rebalance polls the membership source and, when the epoch moved,
// re-resolves the topology — driving a live shard migration if one is
// pending. It must only be called at quiescent round boundaries (no
// in-flight ops, no held claims); core's engines call it at the top of
// their steady/batch loops. Calls are rate-limited to the configured
// poll interval (Options.RebalancePoll); a static client (Dial) and a
// broken or closed one return immediately.
//
// The error is non-nil only for a migration that failed against a
// shard member (also recorded sticky via Err); registry unavailability
// is absorbed — the crawl continues on the last-known epoch.
func (rs *RemoteShards) Rebalance() error {
	if rs.src == nil || rs.closed.Load() || rs.broken() {
		return nil
	}
	rs.rebalMu.Lock()
	defer rs.rebalMu.Unlock()
	poll := rs.opts.RebalancePoll
	if poll == 0 {
		poll = defaultRebalancePoll
	}
	if poll > 0 && !rs.lastPoll.IsZero() && time.Since(rs.lastPoll) < poll {
		return nil
	}
	rs.lastPoll = time.Now()
	ms, err := rs.src.Membership()
	if err != nil {
		return nil // registry outage: keep the last-known epoch
	}
	registry.EpochGauge.Set(int64(ms.Epoch))
	t := rs.t()
	if ms.Migrating {
		return rs.migrateLocked(t, ms)
	}
	if !sameMembers(t.ring.Members(), memberAddrs(ms.Shard())) {
		// The active set changed without a pending migration: a lease
		// expiry force-removed a member (or the registry restarted with
		// a different view). There is no one to export from — the dead
		// member's entries come back via its WAL when it rejoins — so
		// just re-resolve routing against the surviving set.
		if len(ms.Shard()) == 0 {
			return nil // never install an empty ring; keep last-known
		}
		if err := rs.installMembersLocked(t, ms.Epoch, ms.Shard()); err != nil {
			rs.fail(err)
			return err
		}
	}
	return nil
}

// migrateLocked drives one pending migration (rebalMu held).
func (rs *RemoteShards) migrateLocked(t *shardTopology, ms registry.Membership) error {
	target := ms.Pending
	if len(target) == 0 {
		// "Migrate to nothing" cannot be completed while the frontier
		// may hold entries: the last shard server cannot leave under a
		// live crawl. Keep the installed epoch; a joiner unblocks it.
		return nil
	}
	sort.Slice(target, func(i, j int) bool { return target[i].Addr < target[j].Addr })
	nextRing := NewRing(memberAddrs(target), 0)
	moved := t.ring.Moved(nextRing)

	// Assemble the union of installed and pending members, reusing the
	// pools we already hold and dialing the rest lazily (the pool dials
	// on first use; a member that never receives an op is never dialed).
	pools := map[string]*serverConns{}
	for i, name := range t.ring.Members() {
		pools[name] = t.servers[i]
	}
	for _, m := range target {
		if _, ok := pools[m.Addr]; !ok {
			sc := rs.newShardMember(m)
			sc.primeLazy()
			pools[m.Addr] = sc
			rs.track(sc)
		}
	}

	if len(moved) > 0 {
		// Export the moved partitions from every member of the union —
		// see the package comment for why not just the computed owners.
		// Exports are pulled in bounded chunks (the server walks its
		// frontier with a URL cursor and hands back at most
		// pushBatchChunk entries per round trip), and each chunk is
		// grouped by new owner and imported before the next is pulled —
		// so migrating a spilled frontier never materializes it whole on
		// either side of the wire. An older server ignores the cursor
		// and returns everything as one (large) first chunk. The body is
		// rebuilt per request: each pool may have negotiated a different
		// protocol version, so one shared encoding is unsound.
		var dedups []dedupEntry
		// dedupSent tracks how much of the exporters' dedup tails each
		// importer has received: a retry of migrated work may route
		// anywhere on the new ring, so every importer must end up with
		// the full union even though it grows as later members export.
		dedupSent := map[string]int{}
		imp := func(addr string, entries []frontier.Entry) error {
			sc, ok := pools[addr]
			if !ok {
				return fmt.Errorf("cluster: migration: no pool for new owner %s", addr)
			}
			pending := dedups[dedupSent[addr]:]
			ver := sc.wireVer()
			e := newEnc(ver)
			e.fix64(rs.nextReq())
			encodeEntries(&e, entries)
			e.u32(uint32(len(pending)))
			for _, de := range pending {
				e.fix64(de.id).u8(de.status).bytes(de.resp)
			}
			if _, err := sc.roundTrip(ver, opShardImport, e.b); err != nil {
				return err
			}
			dedupSent[addr] = len(dedups)
			return nil
		}
		union := sortedKeys(pools)
		for _, addr := range union {
			sc := pools[addr]
			after := ""
			for {
				ver := sc.wireVer()
				e := newEnc(ver)
				e.fix64(rs.nextReq())
				e.u32(uint32(nextRing.Parts())).u32(uint32(len(moved)))
				for _, p := range moved {
					e.u32(uint32(p))
				}
				e.str(after).u32(uint32(pushBatchChunk))
				resp, err := sc.roundTrip(ver, opShardExport, e.b)
				if err != nil {
					rs.fail(err)
					return err
				}
				d := newDec(ver, resp)
				entries := decodeEntries(d)
				dn := int(d.u32())
				for i := 0; i < dn && d.finish() == nil; i++ {
					id, st, b := d.fix64(), d.u8(), d.bytes()
					if d.finish() == nil {
						dedups = append(dedups, dedupEntry{id: id, status: st, resp: append([]byte(nil), b...)})
					}
				}
				more := false
				if d.finish() == nil && d.off < len(d.b) {
					more = d.bool()
				}
				if d.finish() != nil {
					err := fmt.Errorf("cluster: %s: bad export response", sc.name)
					rs.fail(err)
					return err
				}
				groups := map[string][]frontier.Entry{}
				for _, ent := range entries {
					owner := nextRing.OwnerName(nextRing.PartOf(ent.URL))
					groups[owner] = append(groups[owner], ent)
				}
				for _, gaddr := range sortedKeys(groups) {
					if err := imp(gaddr, groups[gaddr]); err != nil {
						rs.fail(err)
						return err
					}
				}
				if !more || len(entries) == 0 {
					break
				}
				after = entries[len(entries)-1].URL
			}
		}
		// Importers that received entries before later exporters' dedup
		// tails were known get topped up with the remainder.
		for _, addr := range sortedKeys(dedupSent) {
			if dedupSent[addr] < len(dedups) {
				if err := imp(addr, nil); err != nil {
					rs.fail(err)
					return err
				}
			}
		}
	}

	// Entries are placed; flip the epoch. A stale epoch means the
	// membership moved while we migrated — entries are parked where the
	// *attempted* ring put them, and the next Rebalance reclaims them
	// via export-from-all. Keep the installed topology either way until
	// a Complete of ours succeeds.
	if err := rs.src.Complete(ms.PendingEpoch); err != nil {
		rs.lastPoll = time.Time{} // retry on the next Rebalance call
		return nil
	}
	servers := make([]*serverConns, len(target))
	for i, m := range target {
		servers[i] = pools[m.Addr]
	}
	rs.installTopology(ms.PendingEpoch, nextRing, servers)
	migrationsTotal.Inc()
	// Retire pools for members no longer in the ring.
	inNext := map[string]bool{}
	for _, m := range target {
		inNext[m.Addr] = true
	}
	for addr, sc := range pools {
		if !inNext[addr] {
			sc.drainClose()
		}
	}
	return nil
}

// installMembersLocked re-resolves the topology against an active
// member set with no migration to drive (rebalMu held).
func (rs *RemoteShards) installMembersLocked(t *shardTopology, epoch uint64, shard []registry.Member) error {
	sort.Slice(shard, func(i, j int) bool { return shard[i].Addr < shard[j].Addr })
	pools := map[string]*serverConns{}
	for i, name := range t.ring.Members() {
		pools[name] = t.servers[i]
	}
	servers := make([]*serverConns, len(shard))
	keep := map[string]bool{}
	for i, m := range shard {
		sc, ok := pools[m.Addr]
		if !ok {
			sc = rs.newShardMember(m)
			sc.primeLazy()
			rs.track(sc)
		}
		servers[i] = sc
		keep[m.Addr] = true
	}
	rs.installTopology(epoch, NewRing(memberAddrs(shard), 0), servers)
	for addr, sc := range pools {
		if !keep[addr] {
			sc.drainClose()
		}
	}
	return nil
}

func memberAddrs(members []registry.Member) []string {
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.Addr
	}
	return out
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
