package cluster_test

import (
	"strings"
	"testing"

	"webevolve/internal/cluster"
	"webevolve/internal/core"
	"webevolve/internal/frontier"
)

// TestMixedVersionInterop pins the rolling-upgrade contract: a v6
// client against a v5-capped server, and a v5-capped client against a
// v6 server, must both negotiate down at hello and produce a crawl
// bit-identical to in-process shards — the wire encoding is allowed to
// change the bytes, never the results.
func TestMixedVersionInterop(t *testing.T) {
	run := func(fr frontier.ShardSet) (core.Metrics, []string) {
		w, f := testWeb(t, 27)
		cfg := baseConfig(w)
		cfg.Workers = 4
		cfg.Frontier = fr
		c, err := core.New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(12); err != nil {
			t.Fatal(err)
		}
		return c.Metrics(), c.Collection().URLs()
	}
	refM, refU := run(nil)

	for _, tc := range []struct {
		name      string
		capServer bool // old server: refuses v6 frames, ignores the want byte
		capClient bool // old client: never offers v6 at hello
		wantVer   int
	}{
		{"v6 client, v6 server", false, false, cluster.ProtoVersion},
		{"v6 client, v5 server", true, false, 5},
		{"v5 client, v6 server", false, true, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			servers := make([]*cluster.ShardServer, 2)
			for i := range servers {
				servers[i] = cluster.NewShardServer(frontier.NewSharded(8))
				if tc.capServer {
					servers[i].LimitProto(5)
				}
			}
			opts := cluster.Options{PolitenessDays: 0}
			if tc.capClient {
				opts.MaxProtoVersion = 5
			}
			rs, err := cluster.Loopback(servers, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				rs.Close()
				for _, s := range servers {
					s.Close()
				}
			}()

			gotM, gotU := run(rs)
			if err := rs.Err(); err != nil {
				t.Fatal(err)
			}
			for i, v := range rs.WireVersions() {
				if v != tc.wantVer {
					t.Errorf("server %d negotiated v%d, want v%d", i, v, tc.wantVer)
				}
			}
			if gotM != refM {
				t.Fatalf("metrics diverge from local crawl:\nmixed: %+v\nlocal: %+v", gotM, refM)
			}
			if len(gotU) != len(refU) {
				t.Fatalf("collections diverge: %d vs %d URLs", len(gotU), len(refU))
			}
			for i := range gotU {
				if gotU[i] != refU[i] {
					t.Fatalf("collection diverges at %d: %s vs %s", i, gotU[i], refU[i])
				}
			}
		})
	}
}

// TestMixedVersionStickyError: downgrading the wire version must not
// cost error attribution — a sticky error against a v5-capped server
// still names the address and the op.
func TestMixedVersionStickyError(t *testing.T) {
	srv := cluster.NewShardServer(frontier.NewSharded(4))
	srv.LimitProto(5)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck — exits with ErrServerClosed on Close
	addr := srv.Addr().String()
	rs, err := cluster.DialTCP([]string{addr}, cluster.Options{MaxRetries: -1})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer rs.Close()
	rs.Push("https://a.com/x", 0, 1)
	if vs := rs.WireVersions(); len(vs) != 1 || vs[0] != 5 {
		t.Fatalf("WireVersions = %v, want [5] against a capped server", vs)
	}

	srv.Close()
	rs.Push("https://a.com/y", 0, 1)

	serr := rs.Err()
	if serr == nil {
		t.Fatal("no sticky error after ops against a dead server")
	}
	msg := serr.Error()
	if !strings.Contains(msg, addr) {
		t.Errorf("sticky error %q does not name the server address %s", msg, addr)
	}
	if !strings.Contains(msg, "push") {
		t.Errorf("sticky error %q does not name the failed op", msg)
	}
}
