package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"webevolve/internal/frontier"
)

// Frontier persistence for the shard server: an append-only write-ahead
// log of the mutating wire ops, compacted into full-state snapshots.
//
// The WAL reuses the wire protocol's frame discipline (length prefix,
// CRC, version — proto.go), the same torn-write recovery contract as
// store.Disk (replay stops at the first invalid frame and truncates the
// file back to the last valid one), and the server's single mutating
// apply path: a log record is exactly the (op, body) the client sent,
// request ID included. Replaying a log therefore reconstructs not just
// the frontier but the response-dedup cache, so a client retry that
// spans a server crash still gets exactly-once semantics.
//
// Layout of a -wal directory:
//
//	frontier.snap          a chunked snapshot (header, entry chunks,
//	                       dedup chunks, end marker): full state plus
//	                       the dedup cache, stamped with the sequence
//	                       number of the first log file it does NOT
//	                       cover
//	frontier-<seq>.wal     op frames appended since snapshot <seq>
//
// Compaction (periodic, on graceful shutdown, and after every replay)
// rotates to a fresh log file, writes a snapshot covering everything
// before it (tmp + rename, so a crash never leaves a partial
// snapshot), and deletes the covered log files. Appends are written as
// one write(2) each with no userspace buffering, so a SIGKILL loses at
// most the in-flight frame — which was never acknowledged, so the
// client retries it against the restarted server.
const (
	// Snapshot record kinds. A snapshot is a sequence of frames —
	// header, entry chunks, dedup chunks, end marker — so its size is
	// unbounded by maxFrame no matter how large the frontier grows.
	walSnapHeader  = byte(0xF0)
	walSnapEntries = byte(0xF1)
	walSnapDedup   = byte(0xF2)
	walSnapEnd     = byte(0xF3)
	// Log record kinds for the mutations the hello handshake performs
	// (hello itself is a read-only op and carries no request ID).
	walSetPoliteness = byte(0xF8)
	walClearClaims   = byte(0xF9)

	walSnapName  = "frontier.snap"
	walFilePat   = "frontier-%08d.wal"
	walFilePerm  = 0o644
	walSnapPerm  = 0o644
	walDirPerm   = 0o755
	walMaxDedup  = respCacheSize
	walMaxShards = 1 << 20
	walSnapChunk = 4096 // entries (or dedup records) per snapshot frame
)

// wal is the shard server's open write-ahead log.
type wal struct {
	dir    string
	seq    uint64 // sequence of the active log file
	f      *os.File
	broken error // a failed append poisons the log: better to refuse ops than to ack writes a replay would lose
}

func walFilePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf(walFilePat, seq))
}

// walFileSeqs lists the log-file sequence numbers present in dir,
// ascending.
func walFileSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), walFilePat, &seq); n == 1 {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// append logs one mutating op, framed with the version the client's
// request carried so replay decodes it identically. Caller holds
// walMu. The frame is written with a single write call before the
// client's acknowledgement is sent (the hello records before, the
// request path just after, the apply), so an acknowledged op is always
// replayable.
func (w *wal) append(ver, op byte, body []byte) error {
	if w.broken != nil {
		return fmt.Errorf("wal poisoned by earlier failure: %w", w.broken)
	}
	n, err := writeFrame(w.f, ver, op, body)
	if err != nil {
		w.broken = err
		return err
	}
	walAppends.Inc()
	walAppendBytes.Add(int64(n))
	return nil
}

// OpenWAL enables frontier persistence from dir, creating it if needed:
// the latest snapshot is restored, the logs it does not cover are
// replayed through the regular apply path (stopping at — and truncating
// away — a torn final frame), and the recovered state is immediately
// compacted into a fresh snapshot. Must be called before the server
// starts serving.
func (s *ShardServer) OpenWAL(dir string) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal != nil {
		return errors.New("cluster: WAL already open")
	}
	if err := os.MkdirAll(dir, walDirPerm); err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	snapSeq, err := s.loadSnapshotLocked(filepath.Join(dir, walSnapName))
	if err != nil {
		return err
	}
	seqs, err := walFileSeqs(dir)
	if err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	active := snapSeq
	for _, seq := range seqs {
		if seq < snapSeq {
			// Covered by the snapshot; a crash mid-compaction left it.
			if err := os.Remove(walFilePath(dir, seq)); err != nil {
				return fmt.Errorf("cluster: wal: %w", err)
			}
			continue
		}
		if err := s.replayWALFileLocked(walFilePath(dir, seq)); err != nil {
			return err
		}
		active = seq
	}
	f, err := os.OpenFile(walFilePath(dir, active), os.O_CREATE|os.O_WRONLY|os.O_APPEND, walFilePerm)
	if err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	s.wal = &wal{dir: dir, seq: active, f: f}
	// Fold the recovered state into a fresh snapshot right away: it
	// collapses multi-file leftovers and bounds the next replay.
	if err := s.compactWALLocked(); err != nil {
		s.wal.f.Close()
		s.wal = nil
		return err
	}
	return nil
}

// replayWALFileLocked feeds one log file's frames through the mutating
// apply path. The first invalid frame (torn write from a crash, or
// corruption) ends the replay and the file is truncated back to the
// last valid frame.
func (s *ShardServer) replayWALFileLocked(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, walFilePerm)
	if err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var good int64
	for {
		ver, op, body, wire, err := readFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Torn or corrupt tail: sweep back to the last valid frame.
			if terr := f.Truncate(good); terr != nil {
				return fmt.Errorf("cluster: wal: truncating %s: %w", path, terr)
			}
			return nil
		}
		switch {
		case op == walSetPoliteness:
			d := newDec(ver, body)
			gap := d.f64()
			if d.finish() == nil {
				s.shards.SetPoliteness(gap)
			}
		case op == walClearClaims:
			s.shards.ClearClaims()
		case mutatingOp(op):
			d := newDec(ver, body)
			reqID := d.fix64()
			if d.finish() == nil {
				if _, _, ok := s.dedup.get(reqID); !ok {
					status, resp, _ := s.applyMutating(op, d)
					s.dedup.put(reqID, status, resp)
				}
			}
		}
		walReplayedFrames.Inc()
		good += int64(wire)
	}
}

// loadSnapshotLocked restores the snapshot file if present, returning
// the sequence number of the first log file it does not cover (0 when
// absent). A snapshot missing its end marker is corrupt: the writer
// only ever publishes complete files (tmp + rename).
func (s *ShardServer) loadSnapshotLocked(path string) (uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("cluster: wal: %w", err)
	}
	defer f.Close()
	corrupt := func(err error) (uint64, error) {
		if err != nil {
			return 0, fmt.Errorf("cluster: wal: corrupt snapshot %s: %w", path, err)
		}
		return 0, fmt.Errorf("cluster: wal: corrupt snapshot %s", path)
	}
	r := bufio.NewReader(f)
	ver, kind, body, _, err := readFrame(r)
	if err != nil {
		return corrupt(err)
	}
	if kind != walSnapHeader {
		return 0, fmt.Errorf("cluster: wal: %s is not a snapshot (kind %d)", path, kind)
	}
	d := newDec(ver, body)
	seq := d.u64()
	politeness := d.f64()
	nshards := int(d.u32())
	if d.finish() != nil || nshards > walMaxShards {
		return corrupt(d.finish())
	}
	shardStates := make([]frontier.ShardState, 0, nshards)
	for i := 0; i < nshards && d.finish() == nil; i++ {
		shardStates = append(shardStates, frontier.ShardState{NextReady: d.f64(), Claimed: d.bool()})
	}
	if err := d.finish(); err != nil {
		return corrupt(err)
	}
	// Apply the snapshot incrementally: entry chunks are pushed as they
	// are read instead of accumulating into one giant State, so a
	// restart of a spilled frontier never holds it whole in RAM. The
	// frontier is reset first (dropping any pre-existing spill logs); a
	// snapshot that then turns out corrupt fails OpenWAL, so the partial
	// state is never served.
	s.shards.Reset()
	s.shards.SetPoliteness(politeness)
	var dedups []dedupEntry
	done := false
	for !done {
		ver, kind, body, _, err := readFrame(r)
		if err != nil {
			return corrupt(err)
		}
		d := newDec(ver, body)
		switch kind {
		case walSnapEntries:
			chunk := decodeEntries(d)
			if d.finish() == nil {
				s.shards.PushBatch(chunk)
			}
		case walSnapDedup:
			n := int(d.u32())
			if n > walMaxDedup {
				return corrupt(nil)
			}
			for i := 0; i < n && d.finish() == nil; i++ {
				dedups = append(dedups, dedupEntry{id: d.fix64(), status: d.u8(), resp: []byte(d.str())})
			}
		case walSnapEnd:
			done = true
		default:
			return corrupt(fmt.Errorf("unexpected record kind %d", kind))
		}
		if err := d.finish(); err != nil {
			return corrupt(err)
		}
	}
	s.shards.SetShardStates(shardStates)
	for _, de := range dedups {
		s.dedup.put(de.id, de.status, de.resp)
	}
	return seq, nil
}

// writeSnapshotLocked persists the current state (and dedup cache) as
// a snapshot covering every log file with sequence < seq. Entries are
// streamed out of the frontier one chunk frame at a time — never
// materialized whole — so compacting a spilled multi-gigabyte frontier
// neither doubles RSS nor hits a size ceiling. Written to a temp file,
// fsynced, then renamed, so a crash never leaves a partial snapshot in
// place.
func (s *ShardServer) writeSnapshotLocked(seq uint64) error {
	politeness, shardStates := s.shards.SnapshotMeta()

	path := filepath.Join(s.wal.dir, walSnapName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, walSnapPerm)
	if err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		return fmt.Errorf("cluster: wal: %w", err)
	}
	w := bufio.NewWriter(f)

	hdr := newEnc(ProtoVersion)
	hdr.u64(seq)
	hdr.f64(politeness)
	hdr.u32(uint32(len(shardStates)))
	for _, ss := range shardStates {
		hdr.f64(ss.NextReady).bool(ss.Claimed)
	}
	if _, err := writeFrame(w, ProtoVersion, walSnapHeader, hdr.b); err != nil {
		return fail(err)
	}
	if err := s.shards.StreamEntries(walSnapChunk, func(chunk []frontier.Entry) error {
		e := newEnc(ProtoVersion)
		encodeEntries(&e, chunk)
		_, err := writeFrame(w, ProtoVersion, walSnapEntries, e.b)
		return err
	}); err != nil {
		return fail(err)
	}
	dedups := s.dedup.snapshotEntries()
	for off := 0; off < len(dedups); off += walSnapChunk {
		chunk := dedups[off:min(off+walSnapChunk, len(dedups))]
		e := newEnc(ProtoVersion)
		e.u32(uint32(len(chunk)))
		for _, de := range chunk {
			e.fix64(de.id).u8(de.status).str(string(de.resp))
		}
		if _, err := writeFrame(w, ProtoVersion, walSnapDedup, e.b); err != nil {
			return fail(err)
		}
	}
	if _, err := writeFrame(w, ProtoVersion, walSnapEnd, nil); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	return nil
}

// compactWALLocked rotates to a fresh log file, snapshots the current
// state as covering everything before it, and deletes the covered
// logs. Caller holds walMu. Crash-safe at every step: an old snapshot
// plus both log files replays to the same state as the new snapshot
// plus the fresh (empty) log.
func (s *ShardServer) compactWALLocked() error {
	w := s.wal
	if w.broken != nil {
		// A poisoned log means the in-memory state may be ahead of what
		// clients were acknowledged (an apply whose append failed).
		// Snapshotting it would make that phantom state durable; the
		// intact on-disk log is the trustworthy record, so leave it for
		// a restart to replay.
		return fmt.Errorf("cluster: wal: refusing to compact a poisoned log: %w", w.broken)
	}
	newSeq := w.seq + 1
	nf, err := os.OpenFile(walFilePath(w.dir, newSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, walFilePerm)
	if err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	old := w.f
	w.f, w.seq = nf, newSeq
	if err := old.Close(); err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	if err := s.writeSnapshotLocked(newSeq); err != nil {
		return err
	}
	seqs, err := walFileSeqs(w.dir)
	if err != nil {
		return fmt.Errorf("cluster: wal: %w", err)
	}
	for _, seq := range seqs {
		if seq < newSeq {
			if err := os.Remove(walFilePath(w.dir, seq)); err != nil {
				return fmt.Errorf("cluster: wal: %w", err)
			}
		}
	}
	walCompactions.Inc()
	return nil
}

// CompactWAL folds the log into a fresh snapshot and truncates it. The
// shardd daemon runs it periodically; it is a no-op when persistence is
// disabled. Mutating ops are blocked for the duration (reads are not).
func (s *ShardServer) CompactWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.compactWALLocked()
}

// CloseWAL writes a final snapshot — the graceful-shutdown flush that
// keeps every queued entry — and closes the log. The server should be
// closed first so no mutating ops race the final snapshot.
func (s *ShardServer) CloseWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.compactWALLocked()
	if cerr := s.wal.f.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// WALOpen reports whether frontier persistence is enabled.
func (s *ShardServer) WALOpen() bool {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.wal != nil
}
