package cluster

import (
	"fmt"
	"testing"

	"webevolve/internal/store"
)

// TestStoreURLsChunking drives the opStoreURLs handler directly with a
// small max, checking the resume protocol: bounded chunks, sorted,
// complete, done flag only on the last.
func TestStoreURLsChunking(t *testing.T) {
	srv := NewMemStoreServer()
	defer srv.Close()
	const n = 23
	recs := make([]store.PageRecord, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, store.PageRecord{URL: fmt.Sprintf("http://u.com/p%03d", i), Checksum: uint64(i)})
	}
	coll, err := srv.coll("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.PutBatch(recs); err != nil {
		t.Fatal(err)
	}

	var got []string
	after := ""
	for chunks := 0; ; chunks++ {
		if chunks > n {
			t.Fatal("URLs chunking never finished")
		}
		var e enc
		e.str("c").str(after).u32(5)
		status, resp := srv.handle(helloProto, opStoreURLs, e.b)
		if status != statusOK {
			t.Fatalf("chunk after %q: %s", after, resp)
		}
		d := &dec{b: resp}
		cn := int(d.u32())
		if cn > 5 {
			t.Fatalf("chunk of %d exceeds max 5", cn)
		}
		for i := 0; i < cn; i++ {
			got = append(got, d.str())
		}
		done := d.bool()
		if err := d.finish(); err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if cn == 0 {
			t.Fatal("empty chunk without done")
		}
		after = got[len(got)-1]
	}
	if len(got) != n {
		t.Fatalf("chunked URLs returned %d, want %d", len(got), n)
	}
	for i, u := range got {
		if want := fmt.Sprintf("http://u.com/p%03d", i); u != want {
			t.Fatalf("position %d: %s, want %s", i, u, want)
		}
	}
}
