package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"webevolve/internal/frontier"
	"webevolve/internal/webgraph"
)

// The consistent-hash ring that maps work to cluster members. Keys are
// never placed on the ring directly: the key space is first folded into
// a fixed number of partitions (DefaultPartitions), and the ring maps
// each partition to the member owning it. The indirection is what makes
// live migration tractable — a membership change moves whole
// partitions, so the set of keys that change owner is exactly the set
// of moved partitions, enumerable without scanning any key.
//
// Placement is deterministic: members are sorted, every hash is FNV-64
// over stable strings, and ties cannot occur (vnode points are
// deduplicated by first-sorted-member-wins). Two processes that see the
// same member list at the same partition count always agree on every
// owner, which is what lets the single crawl client migrate entries
// while servers stay passive.

// DefaultPartitions is the ring's partition count. 1024 partitions
// over at most a few dozen members keeps the max/min member load ratio
// small (see TestRingBalance) while keeping moved-set enumeration and
// per-partition export cheap.
const DefaultPartitions = 1024

// ringVnodes is the number of virtual points each member contributes.
// More vnodes flatten the load distribution at the cost of a larger
// sorted point slice; 256 holds the measured 1–16 member balance ratio
// at ≤1.53 (the test asserts ≤2).
const ringVnodes = 256

// Ring is an immutable consistent-hash ring over a member set. Build
// one with NewRing; derive the next epoch's ring with NewRing over the
// new member list and diff with Moved.
type Ring struct {
	members []string // sorted, unique
	parts   int
	owner   []int // partition -> index into members
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	// FNV-1a barely diffuses trailing bytes (the last byte sees one
	// multiply), so keys differing only in a numeric suffix — exactly
	// our "part|N" and "member|v" keys — come out nearly sequential.
	// A splitmix64-style finalizer avalanches them across the ring.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type ringPoint struct {
	hash   uint64
	member int
}

// NewRing builds the ring for the given member names (addresses) at
// the given partition count (0 means DefaultPartitions). The member
// list is copied, deduplicated and sorted; order does not matter. An
// empty member list yields a ring whose Owner is -1 everywhere.
func NewRing(members []string, parts int) *Ring {
	if parts <= 0 {
		parts = DefaultPartitions
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, parts: parts, owner: make([]int, parts)}
	if len(uniq) == 0 {
		for p := range r.owner {
			r.owner[p] = -1
		}
		return r
	}
	points := make([]ringPoint, 0, len(uniq)*ringVnodes)
	for mi, m := range uniq {
		for v := 0; v < ringVnodes; v++ {
			points = append(points, ringPoint{hash64(fmt.Sprintf("%s|%d", m, v)), mi})
		}
	}
	// Sort by hash; on the (astronomically unlikely) collision the
	// first sorted member wins, keeping the tiebreak deterministic.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].member < points[j].member
	})
	for p := 0; p < parts; p++ {
		h := hash64(fmt.Sprintf("part|%d", p))
		i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
		if i == len(points) {
			i = 0 // wrap: first point clockwise
		}
		r.owner[p] = points[i].member
	}
	return r
}

// Parts returns the ring's partition count.
func (r *Ring) Parts() int { return r.parts }

// Members returns the sorted member list. Callers must not modify it.
func (r *Ring) Members() []string { return r.members }

// Owner returns the index (into Members) of the member owning
// partition p, or -1 if the ring is empty.
func (r *Ring) Owner(p int) int { return r.owner[p] }

// OwnerName returns the name of the member owning partition p, or ""
// if the ring is empty.
func (r *Ring) OwnerName(p int) string {
	i := r.owner[p]
	if i < 0 {
		return ""
	}
	return r.members[i]
}

// PartOf returns the partition a URL's host falls in. All URLs of one
// site share a partition, so site affinity (politeness, claims) holds
// across membership changes.
func (r *Ring) PartOf(url string) int {
	return frontier.HostShard(webgraph.SiteOf(url), r.parts)
}

// PartOfKey returns the partition an opaque key (for example a store
// collection name) falls in.
func (r *Ring) PartOfKey(key string) int {
	return frontier.HostShard(key, r.parts)
}

// Moved returns the partitions whose owning member *name* differs
// between r and next, in ascending order: exactly the partitions whose
// entries must migrate when the membership changes from r to next.
// Partitions unowned on either side (empty ring) are included whenever
// the names differ, since "" never equals a real member name.
func (r *Ring) Moved(next *Ring) []int {
	if next.parts != r.parts {
		// Partition counts are fixed per cluster; a mismatch means the
		// caller mixed rings from different clusters. Every partition
		// is "moved" — the safe answer — but this should not happen.
		all := make([]int, r.parts)
		for p := range all {
			all[p] = p
		}
		return all
	}
	var moved []int
	for p := 0; p < r.parts; p++ {
		if r.OwnerName(p) != next.OwnerName(p) {
			moved = append(moved, p)
		}
	}
	return moved
}

// PartsOwnedBy returns the partitions owned by the member at index mi,
// in ascending order.
func (r *Ring) PartsOwnedBy(mi int) []int {
	var parts []int
	for p, o := range r.owner {
		if o == mi {
			parts = append(parts, p)
		}
	}
	return parts
}
