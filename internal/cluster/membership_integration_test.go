package cluster_test

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"webevolve/internal/cluster"
	"webevolve/internal/core"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/registry"
)

// memCluster is a registry-driven shard cluster whose members are
// in-process servers reached over net.Pipe, with the registry itself
// behind a real HTTP test server — the full membership stack minus
// TCP.
type memCluster struct {
	reg     *registry.Server
	client  *registry.Client
	servers map[string]*cluster.ShardServer
	// spillRoot, when set, puts every member's frontier on the disk
	// tier (one spill dir per address) with a tiny resident budget.
	spillRoot string
}

func newMemCluster(t testing.TB) *memCluster {
	t.Helper()
	mc := &memCluster{
		reg:     registry.NewServer(0), // default TTL; nothing expires mid-test
		servers: map[string]*cluster.ShardServer{},
	}
	ts := httptest.NewServer(mc.reg.Handler())
	t.Cleanup(ts.Close)
	mc.client = registry.NewClient(ts.URL)
	return mc
}

// addServer starts an in-process shard server under the given fake
// address and registers it. Registration against a non-empty active
// set parks the join as pending — the crawl client completes it.
func (mc *memCluster) addServer(t testing.TB, addr string, shards int) {
	fr := frontier.NewSharded(shards)
	if mc.spillRoot != "" {
		var err error
		fr, err = frontier.OpenSharded(frontier.StoreConfig{
			Shards:         shards,
			SpillDir:       filepath.Join(mc.spillRoot, strings.ReplaceAll(addr, ":", "_")),
			ResidentBudget: 32,
		})
		if err != nil {
			panic(err) // callable from crawl worker goroutines, no t.Fatal
		}
	}
	srv := cluster.NewShardServer(fr)
	mc.servers[addr] = srv
	if t != nil {
		t.Cleanup(func() { srv.Close() })
	}
	if _, _, err := mc.client.Register(registry.Member{
		Kind: registry.KindShard, Addr: addr, Shards: shards,
	}); err != nil {
		panic(err) // callable from crawl worker goroutines, no t.Fatal
	}
}

// dial mounts the cluster through the registry; RebalancePoll < 0
// polls the registry at every round boundary, so membership changes
// are picked up deterministically.
func (mc *memCluster) dial(t testing.TB) *cluster.RemoteShards {
	t.Helper()
	rs, err := cluster.DialMembership(mc.client, func(m registry.Member) cluster.Dialer {
		srv, ok := mc.servers[m.Addr]
		if !ok {
			t.Fatalf("no server for member %s", m.Addr)
		}
		return srv.Pipe
	}, cluster.Options{PolitenessDays: 0, RebalancePoll: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

// runInvariance runs the same simulated crawl twice — once on local
// in-process shards, once on the registry-driven cluster with `mut`
// firing at the fetchAt-th fetch — and requires bit-identical results.
func runInvariance(t *testing.T, mc *memCluster, fetchAt int64, mut func()) {
	t.Helper()
	run := func(fr frontier.ShardSet, wrap func(fetch.Fetcher) fetch.Fetcher) (core.Metrics, []string) {
		w, f := testWeb(t, 29)
		cfg := baseConfig(w)
		cfg.Workers = 4
		cfg.Frontier = fr
		var fetcher fetch.Fetcher = f
		if wrap != nil {
			fetcher = wrap(f)
		}
		c, err := core.New(cfg, fetcher)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(12); err != nil {
			t.Fatal(err)
		}
		return c.Metrics(), c.Collection().URLs()
	}

	lm, lu := run(nil, nil)
	rs := mc.dial(t)
	fired := &crashingFetcher{at: fetchAt, crash: mut}
	rm, ru := run(rs, func(inner fetch.Fetcher) fetch.Fetcher {
		fired.inner = inner
		return fired
	})
	if err := rs.Err(); err != nil {
		t.Fatalf("crawl did not survive the membership change: %v", err)
	}
	if fired.n.Load() < fetchAt {
		t.Fatalf("membership hook never fired: %d fetches < %d", fired.n.Load(), fetchAt)
	}
	if rm != lm {
		t.Fatalf("crawl diverged across membership change:\ncluster: %+v\nlocal:   %+v", rm, lm)
	}
	if len(ru) != len(lu) {
		t.Fatalf("collections diverge: %d vs %d", len(ru), len(lu))
	}
	for i := range ru {
		if ru[i] != lu[i] {
			t.Fatalf("collection diverges at %d: %s vs %s", i, ru[i], lu[i])
		}
	}
	ms, err := mc.client.Membership()
	if err != nil {
		t.Fatal(err)
	}
	if ms.Migrating {
		t.Fatalf("migration never completed: %+v", ms)
	}
}

// TestJoinMidCrawlInvariance is the tentpole acceptance test: a second
// shard server registers mid-crawl, the crawl client migrates the
// moved partitions onto it at its next quiescent round boundary, and
// the crawl finishes bit-identical to the same crawl on an
// uninterrupted local frontier.
func TestJoinMidCrawlInvariance(t *testing.T) {
	mc := newMemCluster(t)
	mc.addServer(t, "shard-1:7070", 8)
	runInvariance(t, mc, 150, func() {
		mc.addServer(nil, "shard-2:7070", 8)
	})
	ms, err := mc.client.Membership()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Shard()) != 2 {
		t.Fatalf("joiner not active after crawl: %+v", ms)
	}
}

// TestLeaveMidCrawlInvariance is the other half: a member of a
// two-server cluster announces a graceful leave mid-crawl; its
// partitions migrate to the survivor and the crawl stays
// bit-identical.
func TestLeaveMidCrawlInvariance(t *testing.T) {
	mc := newMemCluster(t)
	mc.addServer(t, "shard-1:7070", 8)
	mc.addServer(t, "shard-2:7070", 8) // parked pending; adopted at dial
	runInvariance(t, mc, 150, func() {
		if _, err := mc.client.Leave("shard-1:7070"); err != nil {
			panic(err)
		}
	})
	ms, err := mc.client.Membership()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Shard()) != 1 || ms.Shard()[0].Addr != "shard-2:7070" {
		t.Fatalf("leaver still active after crawl: %+v", ms)
	}
}

// TestJoinMidCrawlInvarianceDiskTier repeats the join while every
// member's frontier sits on the disk tier: the chunked partition
// export streams the joiner's entries out of the spill logs without
// materializing the queues, and the crawl must stay bit-identical.
func TestJoinMidCrawlInvarianceDiskTier(t *testing.T) {
	mc := newMemCluster(t)
	mc.spillRoot = t.TempDir()
	mc.addServer(t, "shard-1:7070", 8)
	runInvariance(t, mc, 150, func() {
		mc.addServer(nil, "shard-2:7070", 8)
	})
}

// TestLeaveMidCrawlInvarianceDiskTier repeats the graceful leave on
// disk-backed members.
func TestLeaveMidCrawlInvarianceDiskTier(t *testing.T) {
	mc := newMemCluster(t)
	mc.spillRoot = t.TempDir()
	mc.addServer(t, "shard-1:7070", 8)
	mc.addServer(t, "shard-2:7070", 8) // parked pending; adopted at dial
	runInvariance(t, mc, 150, func() {
		if _, err := mc.client.Leave("shard-1:7070"); err != nil {
			panic(err)
		}
	})
}
