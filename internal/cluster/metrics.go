package cluster

import (
	"fmt"
	"sync/atomic"

	"webevolve/internal/obs"
)

// The cluster's metric families, registered on the process-wide
// registry. Every sample is labeled with the op name, so per-op wire
// latency and bytes (the ROADMAP's "shrink the wire" item needs the
// byte side) are separable at scrape time. Children are cached in
// per-op tables below — a wire op costs atomic updates, never a map
// lookup under the family lock.
var (
	clientOpsVec = obs.Default.CounterVec("webevolve_cluster_client_ops_total",
		"completed client wire ops by op name", "op")
	clientRetriesVec = obs.Default.CounterVec("webevolve_cluster_client_retries_total",
		"client op retries after a transport failure", "op")
	clientRedials = obs.Default.Counter("webevolve_cluster_client_redials_total",
		"reconnects after a broken pooled connection")
	clientOpSecondsVec = obs.Default.HistogramVec("webevolve_cluster_client_op_seconds",
		"client wire op latency (request sent to response read)", obs.LatencyBuckets, "op")
	clientReqBytesVec = obs.Default.HistogramVec("webevolve_cluster_client_request_bytes",
		"client request frame size on the wire", obs.BytesBuckets, "op")
	clientRespBytesVec = obs.Default.HistogramVec("webevolve_cluster_client_response_bytes",
		"client response frame size on the wire", obs.BytesBuckets, "op")

	serverOpsVec = obs.Default.CounterVec("webevolve_cluster_server_ops_total",
		"served wire ops by op name", "op")
	serverErrorsVec = obs.Default.CounterVec("webevolve_cluster_server_errors_total",
		"served wire ops that returned statusError", "op")
	serverOpSecondsVec = obs.Default.HistogramVec("webevolve_cluster_server_op_seconds",
		"server-side op handling latency", obs.LatencyBuckets, "op")
	serverReqBytesVec = obs.Default.HistogramVec("webevolve_cluster_server_request_bytes",
		"request frame size received by the server", obs.BytesBuckets, "op")
	serverRespBytesVec = obs.Default.HistogramVec("webevolve_cluster_server_response_bytes",
		"response frame size sent by the server", obs.BytesBuckets, "op")
	serverConnsGauge = obs.Default.Gauge("webevolve_cluster_server_connections",
		"open server connections")

	walAppends = obs.Default.Counter("webevolve_wal_appends_total",
		"frontier WAL op frames appended")
	walAppendBytes = obs.Default.Counter("webevolve_wal_append_bytes_total",
		"frontier WAL bytes appended (frame overhead included)")
	walReplayedFrames = obs.Default.Counter("webevolve_wal_replayed_frames_total",
		"WAL op frames replayed at startup")
	walCompactions = obs.Default.Counter("webevolve_wal_compactions_total",
		"WAL snapshot compactions")

	// Membership / live-migration families. The entry counters tick in
	// the shared apply path, so a WAL replay of a migration re-counts
	// its entries — the counters measure handoff work performed by this
	// process, not distinct migrations (that is migrationsTotal, which
	// only the migrating client increments).
	migrationExportEntries = obs.Default.Counter("webevolve_membership_export_entries_total",
		"frontier entries extracted by shard-export ops on this server")
	migrationImportEntries = obs.Default.Counter("webevolve_membership_import_entries_total",
		"frontier entries installed by shard-import ops on this server")
	migrationHandoffBytes = obs.Default.HistogramVec("webevolve_membership_handoff_bytes",
		"encoded body bytes per migration export response / import request",
		obs.BytesBuckets, "dir")
	migrationsTotal = obs.Default.Counter("webevolve_membership_migrations_total",
		"shard migrations this client completed (epoch flips it drove)")

	// Wire-compression families (protocol v6): how often the per-frame
	// deflate flag engaged and what it bought. Both histograms tick only
	// for frames that actually shipped compressed, so dividing the sums
	// gives the achieved compression ratio; frames below the threshold
	// or that deflate could not shrink appear in neither.
	framesCompressed = obs.Default.Counter("webevolve_cluster_frames_compressed_total",
		"frames whose body shipped deflate-compressed")
	frameRawBytes = obs.Default.Histogram("webevolve_cluster_frame_raw_bytes",
		"pre-compression body size of compressed frames", obs.BytesBuckets)
	frameCompressedBytes = obs.Default.Histogram("webevolve_cluster_frame_compressed_bytes",
		"on-wire body size of compressed frames", obs.BytesBuckets)
)

// opName renders an opcode for metric labels.
func opName(op byte) string {
	switch op {
	case opHello:
		return "hello"
	case opPush:
		return "push"
	case opPopDue:
		return "pop_due"
	case opClaimDue:
		return "claim_due"
	case opHeadDue:
		return "head_due"
	case opPopDueMatch:
		return "pop_due_match"
	case opRelease:
		return "release"
	case opRemove:
		return "remove"
	case opContains:
		return "contains"
	case opLen:
		return "len"
	case opURLs:
		return "urls"
	case opPeek:
		return "peek"
	case opNextEvent:
		return "next_event"
	case opStats:
		return "stats"
	case opReset:
		return "reset"
	case opPushBatch:
		return "push_batch"
	case opRound:
		return "round"
	case opShardExport:
		return "shard_export"
	case opShardImport:
		return "shard_import"
	case opStoreHello:
		return "store_hello"
	case opStorePutBatch:
		return "store_put_batch"
	case opStoreGet:
		return "store_get"
	case opStoreDelete:
		return "store_delete"
	case opStoreLen:
		return "store_len"
	case opStoreURLs:
		return "store_urls"
	case opStoreScan:
		return "store_scan"
	case opStoreDrop:
		return "store_drop"
	case opStoreReset:
		return "store_reset"
	case opStoreList:
		return "store_list"
	default:
		return fmt.Sprintf("op_%d", op)
	}
}

// opMetrics is one op's resolved children, cached so the wire paths
// never touch the family maps.
type opMetrics struct {
	clientOps, clientRetries        *obs.Counter
	clientSeconds                   *obs.Histogram
	clientReqBytes, clientRespBytes *obs.Histogram
	serverOps, serverErrors         *obs.Counter
	serverSeconds                   *obs.Histogram
	serverReqBytes, serverRespBytes *obs.Histogram
}

var opMetricsTable [256]atomic.Pointer[opMetrics]

// metricsFor resolves (once per op per process) the cached children.
func metricsFor(op byte) *opMetrics {
	if m := opMetricsTable[op].Load(); m != nil {
		return m
	}
	name := opName(op)
	m := &opMetrics{
		clientOps:       clientOpsVec.With(name),
		clientRetries:   clientRetriesVec.With(name),
		clientSeconds:   clientOpSecondsVec.With(name),
		clientReqBytes:  clientReqBytesVec.With(name),
		clientRespBytes: clientRespBytesVec.With(name),
		serverOps:       serverOpsVec.With(name),
		serverErrors:    serverErrorsVec.With(name),
		serverSeconds:   serverOpSecondsVec.With(name),
		serverReqBytes:  serverReqBytesVec.With(name),
		serverRespBytes: serverRespBytesVec.With(name),
	}
	opMetricsTable[op].Store(m) // losing the race stores an equivalent value
	return m
}
