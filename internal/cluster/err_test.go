package cluster

import (
	"strings"
	"testing"

	"webevolve/internal/frontier"
)

// TestStickyErrIdentifiesServerAndOp: a transport failure's sticky
// error must say which server and which op failed — "connection reset"
// alone is undebuggable on a multi-member cluster.
func TestStickyErrIdentifiesServerAndOp(t *testing.T) {
	srv := NewShardServer(frontier.NewSharded(4))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck — exits with ErrServerClosed on Close
	addr := srv.Addr().String()
	rs, err := DialTCP([]string{addr}, Options{MaxRetries: -1})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer rs.Close()
	rs.Push("https://a.com/x", 0, 1)

	// Kill the server; the next op exhausts its (zero) retries and the
	// error goes sticky.
	srv.Close()
	rs.Push("https://a.com/y", 0, 1)

	serr := rs.Err()
	if serr == nil {
		t.Fatal("no sticky error after ops against a dead server")
	}
	msg := serr.Error()
	if !strings.Contains(msg, addr) {
		t.Errorf("sticky error %q does not name the server address %s", msg, addr)
	}
	if !strings.Contains(msg, "push") {
		t.Errorf("sticky error %q does not name the failed op", msg)
	}
}
