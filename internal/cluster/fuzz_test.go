package cluster

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"webevolve/internal/frontier"
)

// validFrame builds a well-formed frame tagged ver for seeding the
// fuzzers.
func validFrame(t testing.TB, ver, kind byte, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, ver, kind, body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// prefixLieBody builds a v6 push-batch body whose single front-coded
// entry claims a 64-byte shared prefix against an empty previous URL.
func prefixLieBody(reqID uint64) []byte {
	e := newEnc(ProtoVersion)
	e.fix64(reqID)
	e.uvarint(1)  // one entry
	e.uvarint(64) // shared prefix longer than prev ("")
	e.uvarint(0)  // empty suffix
	e.fix64(0)    // due
	e.fix64(0)    // priority
	return e.b
}

// rawFrame assembles a frame with a correct length prefix and CRC but
// arbitrary payload bytes — for corpora whose corruption lives *below*
// the checksum (bad flags, lying compression headers), which a
// CRC-valid frame must still reject.
func rawFrame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// FuzzDecodeFrame throws arbitrary byte streams at the frame reader
// and, when a frame decodes, at the request handler: truncated frames,
// flipped bits, oversized lengths, truncated varints, front-coding
// lies, hostile compression headers and unknown ops must all surface
// as errors (or error responses), never as panics or hangs.
func FuzzDecodeFrame(f *testing.F) {
	for _, ver := range []byte{helloProto, ProtoVersion} {
		push := newEnc(ver)
		push.fix64(7).str("http://site001.com/a").f64(1).f64(2)
		f.Add(validFrame(f, ver, opPush, push.b))
		batch := newEnc(ver)
		batch.fix64(8)
		encodeEntries(&batch, []frontier.Entry{
			{URL: "http://site001.com/a", Due: 1},
			{URL: "http://site001.com/b", Due: 2, Priority: 1},
		})
		f.Add(validFrame(f, ver, opPushBatch, batch.b))
	}
	var hello enc
	hello.bool(true).f64(0.5).bool(true)
	f.Add(validFrame(f, helloProto, opHello, hello.b))
	f.Add(validFrame(f, helloProto, opHello, append(hello.b, ProtoVersion)))
	f.Add(validFrame(f, helloProto, opLen, nil))
	f.Add(validFrame(f, ProtoVersion, 0xEE, []byte("unknown op")))

	// A compressed frame (body above compressMin so writeFrame deflates).
	big := newEnc(ProtoVersion)
	big.fix64(9)
	var ents []frontier.Entry
	for i := 0; i < 64; i++ {
		ents = append(ents, frontier.Entry{URL: "http://site000.com/page/000000000000", Due: float64(i)})
	}
	encodeEntries(&big, ents)
	f.Add(validFrame(f, ProtoVersion, opPushBatch, big.b))

	whole := validFrame(f, ProtoVersion, opPush, []byte("x"))
	// Truncated frame.
	f.Add(whole[:len(whole)-3])
	// Flipped payload byte (CRC must object).
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// Oversized length prefix.
	huge := append([]byte(nil), whole...)
	binary.LittleEndian.PutUint32(huge[0:4], maxFrame+1)
	f.Add(huge)

	// Truncated varint: a v6 body ending mid-uvarint (0x80 promises a
	// continuation byte that never comes).
	f.Add(rawFrame([]byte{ProtoVersion, opLen, 0, 0x80}))
	// Front-coding lie: shared-prefix-len 200 against an empty previous
	// URL inside a push-batch entry.
	f.Add(rawFrame(append([]byte{ProtoVersion, opPushBatch, 0}, prefixLieBody(10)...)))
	// Unknown flag bits set.
	f.Add(rawFrame([]byte{ProtoVersion, opLen, 0xFE}))
	// Compressed body declaring an inflated size past maxFrame.
	var lying bytes.Buffer
	lying.Write([]byte{ProtoVersion, opLen, flagCompressed})
	var hdr [binary.MaxVarintLen64]byte
	lying.Write(hdr[:binary.PutUvarint(hdr[:], maxFrame+1)])
	f.Add(rawFrame(lying.Bytes()))
	// Compressed body whose stream inflates to less than it declares.
	var short bytes.Buffer
	short.Write([]byte{ProtoVersion, opLen, flagCompressed})
	deflateBody(&short, []byte("tiny"))
	b := short.Bytes()
	b[3] = 0x60 // declare 96 inflated bytes; the stream holds 4
	f.Add(rawFrame(b))
	// Compression flag on a pre-v6 frame (no flags byte exists there —
	// the byte is body content and must decode as such, not inflate).
	f.Add(rawFrame([]byte{helloProto, opLen, flagCompressed}))

	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		ver, kind, body, _, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		srv := NewShardServer(frontier.NewSharded(2))
		status, resp := srv.handle(ver, kind, body)
		if status != statusOK && status != statusError {
			t.Fatalf("handle returned status %d (resp %q)", status, resp)
		}
	})
}

// FuzzHandleBody drives every opcode with arbitrary bodies directly
// under both encodings: the decode layer's poisoning must turn any
// malformed body into an error response, not a panic.
func FuzzHandleBody(f *testing.F) {
	for _, v6 := range []bool{false, true} {
		ver := byte(helloProto)
		if v6 {
			ver = ProtoVersion
		}
		push := newEnc(ver)
		push.fix64(9).str("http://site001.com/a").f64(1).f64(2)
		f.Add(v6, opPush, push.b)
		batch := newEnc(ver)
		batch.fix64(10)
		encodeEntries(&batch, []frontier.Entry{
			{URL: "http://site001.com/a", Due: 1},
			{URL: "http://site002.com/b", Due: 2, Priority: 1},
		})
		f.Add(v6, opPushBatch, batch.b)
		// Batch claiming 4 billion entries with a 30-byte body.
		lying := newEnc(ver)
		lying.fix64(11).u32(0xFFFFFFFF).str("http://site001.com/a")
		f.Add(v6, opPushBatch, lying.b)
		pop := newEnc(ver)
		pop.fix64(12).f64(3)
		f.Add(v6, opPopDue, pop.b)
		f.Add(v6, opClaimDue, pop.b)
	}
	f.Add(false, opRelease, []byte{1, 2, 3})
	f.Add(false, opHello, []byte{1})
	f.Add(true, byte(0xEE), []byte("unknown"))
	f.Add(true, opRemove, []byte{})
	// Truncated uvarint count.
	f.Add(true, opPushBatch, []byte{1, 2, 3, 4, 5, 6, 7, 8, 0x80})
	// Front-coded entry whose shared prefix exceeds the previous URL.
	f.Add(true, opPushBatch, prefixLieBody(13))

	f.Fuzz(func(t *testing.T, v6 bool, op byte, body []byte) {
		ver := byte(helloProto)
		if v6 {
			ver = ProtoVersion
		}
		srv := NewShardServer(frontier.NewSharded(2))
		status, resp := srv.handle(ver, op, body)
		if status != statusOK && status != statusError {
			t.Fatalf("handle(%d) returned status %d (resp %q)", op, status, resp)
		}
	})
}

// TestCorruptionTable pins the corruption cases the fuzzers seed, so
// the contract is enforced even in runs that skip fuzzing.
func TestCorruptionTable(t *testing.T) {
	var push enc
	push.fix64(7).str("http://site001.com/a").f64(1).f64(2)
	whole := validFrame(t, helloProto, opPush, push.b)

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(whole); cut++ {
			if _, _, _, _, err := readFrame(bytes.NewReader(whole[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		b := append([]byte(nil), whole...)
		binary.LittleEndian.PutUint32(b[0:4], maxFrame+1)
		if _, _, _, _, err := readFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("oversized length accepted")
		}
	})
	t.Run("unknown flag bits", func(t *testing.T) {
		b := rawFrame([]byte{ProtoVersion, opLen, 0xFE})
		if _, _, _, _, err := readFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("unknown flag bits accepted")
		}
	})
	t.Run("compressed size past maxFrame", func(t *testing.T) {
		var p bytes.Buffer
		p.Write([]byte{ProtoVersion, opLen, flagCompressed})
		var hdr [binary.MaxVarintLen64]byte
		p.Write(hdr[:binary.PutUvarint(hdr[:], maxFrame+1)])
		if _, _, _, _, err := readFrame(bytes.NewReader(rawFrame(p.Bytes()))); err == nil {
			t.Fatal("compressed body declaring >maxFrame accepted")
		}
	})
	t.Run("compressed size mismatch", func(t *testing.T) {
		var p bytes.Buffer
		p.Write([]byte{ProtoVersion, opLen, flagCompressed})
		deflateBody(&p, []byte("tiny"))
		b := p.Bytes()
		b[3] = 0x60 // declare 96 inflated bytes; the stream holds 4
		if _, _, _, _, err := readFrame(bytes.NewReader(rawFrame(b))); err == nil {
			t.Fatal("inflated-size mismatch accepted")
		}
	})
	t.Run("unknown op", func(t *testing.T) {
		srv := NewShardServer(frontier.NewSharded(2))
		if status, _ := srv.handle(ProtoVersion, 0xEE, nil); status != statusError {
			t.Fatalf("unknown op status %d, want error", status)
		}
	})
	t.Run("mutating op without request id", func(t *testing.T) {
		srv := NewShardServer(frontier.NewSharded(2))
		if status, _ := srv.handle(helloProto, opPush, []byte{1, 2}); status != statusError {
			t.Fatalf("short mutating body status %d, want error", status)
		}
	})
	t.Run("front-coding prefix lie", func(t *testing.T) {
		srv := NewShardServer(frontier.NewSharded(2))
		if status, _ := srv.handle(ProtoVersion, opPushBatch, prefixLieBody(13)); status != statusError {
			t.Fatalf("prefix lie status %d, want error", status)
		}
		if n := srv.Shards().Len(); n != 0 {
			t.Fatalf("prefix lie half-applied: %d entries", n)
		}
	})
}
