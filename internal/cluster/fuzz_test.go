package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"

	"webevolve/internal/frontier"
)

// validFrame builds a well-formed frame for seeding the fuzzers.
func validFrame(t testing.TB, kind byte, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, kind, body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame throws arbitrary byte streams at the frame reader
// and, when a frame decodes, at the request handler: truncated frames,
// flipped bits, oversized lengths, and unknown ops must all surface as
// errors (or error responses), never as panics or hangs.
func FuzzDecodeFrame(f *testing.F) {
	var push enc
	push.u64(7).str("http://site001.com/a").f64(1).f64(2)
	f.Add(validFrame(f, opPush, push.b))
	var hello enc
	hello.bool(true).f64(0.5).bool(true)
	f.Add(validFrame(f, opHello, hello.b))
	f.Add(validFrame(f, opLen, nil))
	f.Add(validFrame(f, 0xEE, []byte("unknown op")))
	// Truncated frame.
	whole := validFrame(f, opPush, push.b)
	f.Add(whole[:len(whole)-3])
	// Flipped payload byte (CRC must object).
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// Oversized length prefix.
	huge := append([]byte(nil), whole...)
	binary.LittleEndian.PutUint32(huge[0:4], maxFrame+1)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		srv := NewShardServer(frontier.NewSharded(2))
		status, resp := srv.handle(kind, body)
		if status != statusOK && status != statusError {
			t.Fatalf("handle returned status %d (resp %q)", status, resp)
		}
	})
}

// FuzzHandleBody drives every opcode with arbitrary bodies directly:
// the decode layer's poisoning must turn any malformed body into an
// error response, not a panic.
func FuzzHandleBody(f *testing.F) {
	var push enc
	push.u64(9).str("http://site001.com/a").f64(1).f64(2)
	f.Add(opPush, push.b)
	var batch enc
	batch.u64(10).u32(2).
		str("http://site001.com/a").f64(1).f64(0).
		str("http://site002.com/b").f64(2).f64(1)
	f.Add(opPushBatch, batch.b)
	// Batch claiming 4 billion entries with a 30-byte body.
	var lying enc
	lying.u64(11).u32(0xFFFFFFFF).str("http://site001.com/a")
	f.Add(opPushBatch, lying.b)
	var pop enc
	pop.u64(12).f64(3)
	f.Add(opPopDue, pop.b)
	f.Add(opClaimDue, pop.b)
	f.Add(opRelease, []byte{1, 2, 3})
	f.Add(opHello, []byte{1})
	f.Add(byte(0xEE), []byte("unknown"))
	f.Add(opRemove, []byte{})

	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		srv := NewShardServer(frontier.NewSharded(2))
		status, resp := srv.handle(op, body)
		if status != statusOK && status != statusError {
			t.Fatalf("handle(%d) returned status %d (resp %q)", op, status, resp)
		}
	})
}

// TestCorruptionTable pins the corruption cases the fuzzers seed, so
// the contract is enforced even in runs that skip fuzzing.
func TestCorruptionTable(t *testing.T) {
	var push enc
	push.u64(7).str("http://site001.com/a").f64(1).f64(2)
	whole := validFrame(t, opPush, push.b)

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(whole); cut++ {
			if _, _, err := readFrame(bytes.NewReader(whole[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		b := append([]byte(nil), whole...)
		binary.LittleEndian.PutUint32(b[0:4], maxFrame+1)
		if _, _, err := readFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("oversized length accepted")
		}
	})
	t.Run("unknown op", func(t *testing.T) {
		srv := NewShardServer(frontier.NewSharded(2))
		if status, _ := srv.handle(0xEE, nil); status != statusError {
			t.Fatalf("unknown op status %d, want error", status)
		}
	})
	t.Run("mutating op without request id", func(t *testing.T) {
		srv := NewShardServer(frontier.NewSharded(2))
		if status, _ := srv.handle(opPush, []byte{1, 2}); status != statusError {
			t.Fatalf("short mutating body status %d, want error", status)
		}
	})
}
