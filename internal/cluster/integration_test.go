package cluster_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webevolve/internal/cluster"
	"webevolve/internal/core"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/simweb"
	"webevolve/internal/store"
)

func testWeb(t testing.TB, seed int64) (*simweb.Web, *fetch.SimFetcher) {
	t.Helper()
	w, err := simweb.New(simweb.Config{
		Seed: seed,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 3, simweb.Edu: 2, simweb.NetOrg: 1, simweb.Gov: 1,
		},
		PagesPerSite: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, fetch.NewSimFetcher(w)
}

func baseConfig(w *simweb.Web) core.Config {
	return core.Config{
		Seeds:          w.RootURLs(),
		CollectionSize: 120,
		PagesPerDay:    60,
		CycleDays:      4,
		BatchDays:      1,
		RankEveryDays:  2,
		Estimator:      core.EstimatorEP,
	}
}

// loopbackCluster builds n in-process shard servers and a RemoteShards
// client over net.Pipe.
func loopbackCluster(t testing.TB, n, shardsEach int) *cluster.RemoteShards {
	t.Helper()
	servers := make([]*cluster.ShardServer, n)
	for i := range servers {
		servers[i] = cluster.NewShardServer(frontier.NewSharded(shardsEach))
	}
	rs, err := cluster.Loopback(servers, cluster.Options{PolitenessDays: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rs.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return rs
}

// loopbackDiskCluster is loopbackCluster with disk-backed frontiers
// squeezed by a small resident budget, so the wire protocol runs over
// the spill tier.
func loopbackDiskCluster(t testing.TB, n, shardsEach, budget int) *cluster.RemoteShards {
	t.Helper()
	servers := make([]*cluster.ShardServer, n)
	for i := range servers {
		fr, err := frontier.OpenSharded(frontier.StoreConfig{
			Shards: shardsEach, SpillDir: t.TempDir(), ResidentBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fr.Close() })
		servers[i] = cluster.NewShardServer(fr)
	}
	rs, err := cluster.Loopback(servers, cluster.Options{PolitenessDays: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rs.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return rs
}

// TestDistributedWorkerCountInvariance extends the engine's core
// contract to the distributed path: a simulated crawl whose frontier
// lives behind the wire protocol — on one, two, or four shard servers,
// at any worker count — produces bit-identical results to the same
// crawl with in-process shards.
func TestDistributedWorkerCountInvariance(t *testing.T) {
	type outcome struct {
		m    core.Metrics
		urls []string
		all  int
	}
	run := func(workers int, fr frontier.ShardSet) outcome {
		w, f := testWeb(t, 21)
		cfg := baseConfig(w)
		cfg.Workers = workers
		cfg.Frontier = fr
		c, err := core.New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(15); err != nil {
			t.Fatal(err)
		}
		return outcome{m: c.Metrics(), urls: c.Collection().URLs(), all: c.AllUrls().Len()}
	}
	ref := run(1, nil) // in-process shards
	for _, v := range []struct{ workers, servers, shardsEach int }{
		{1, 1, 16},
		{4, 2, 8},
		{8, 4, 4},
	} {
		rs := loopbackCluster(t, v.servers, v.shardsEach)
		got := run(v.workers, rs)
		if err := rs.Err(); err != nil {
			t.Fatalf("workers=%d servers=%d: %v", v.workers, v.servers, err)
		}
		if got.m != ref.m {
			t.Fatalf("workers=%d servers=%d: metrics diverge\nremote: %+v\nlocal:  %+v",
				v.workers, v.servers, got.m, ref.m)
		}
		if got.all != ref.all {
			t.Fatalf("workers=%d servers=%d: AllUrls %d vs %d", v.workers, v.servers, got.all, ref.all)
		}
		if len(got.urls) != len(ref.urls) {
			t.Fatalf("workers=%d servers=%d: collection %d vs %d",
				v.workers, v.servers, len(got.urls), len(ref.urls))
		}
		for i := range got.urls {
			if got.urls[i] != ref.urls[i] {
				t.Fatalf("workers=%d servers=%d: collection diverges at %d: %s vs %s",
					v.workers, v.servers, i, got.urls[i], ref.urls[i])
			}
		}
	}

	// The same contract with the servers' frontiers on the disk tier: a
	// resident budget far below the queue depth keeps the crawl running
	// through the spill logs, and the results must still be bit-identical.
	rsDisk := loopbackDiskCluster(t, 2, 8, 48)
	got := run(4, rsDisk)
	if err := rsDisk.Err(); err != nil {
		t.Fatalf("disk tier: %v", err)
	}
	if got.m != ref.m {
		t.Fatalf("disk tier: metrics diverge\nremote: %+v\nlocal:  %+v", got.m, ref.m)
	}
	if got.all != ref.all {
		t.Fatalf("disk tier: AllUrls %d vs %d", got.all, ref.all)
	}
	if len(got.urls) != len(ref.urls) {
		t.Fatalf("disk tier: collection %d vs %d", len(got.urls), len(ref.urls))
	}
	for i := range got.urls {
		if got.urls[i] != ref.urls[i] {
			t.Fatalf("disk tier: collection diverges at %d: %s vs %s", i, got.urls[i], ref.urls[i])
		}
	}
}

// crashingFetcher triggers a one-shot crash hook at the nth fetch —
// deterministically mid-crawl, unlike a timer.
type crashingFetcher struct {
	inner fetch.Fetcher
	n     atomic.Int64
	at    int64
	crash func()
	once  sync.Once
}

func (c *crashingFetcher) Fetch(url string, day float64) (fetch.Result, error) {
	if c.n.Add(1) == c.at {
		c.once.Do(c.crash)
	}
	return c.inner.Fetch(url, day)
}

// TestKillRestartInvariance is the resilience acceptance test in
// process form: mid-crawl, a WAL-backed shard server is hard-stopped
// (no graceful flush — the SIGKILL case) and a replacement is started
// from the same WAL directory on the same address. The client must
// ride the outage on its retry budget, and the crawl must complete
// bit-identical to the same crawl against an uninterrupted local
// frontier. scripts/cluster_smoke.sh repeats this across real shardd
// processes with a literal SIGKILL.
// The disk subtest runs the same crash with the server's frontier on
// the spill tier under a tiny resident budget — the disk-tier
// crash-safety coverage.
func TestKillRestartInvariance(t *testing.T) {
	t.Run("mem", func(t *testing.T) { testKillRestartInvariance(t, false) })
	t.Run("disk", func(t *testing.T) { testKillRestartInvariance(t, true) })
}

func testKillRestartInvariance(t *testing.T, diskTier bool) {
	dir := t.TempDir()
	spillRoot := t.TempDir()
	starts := 0
	// start returns its error: the crash hook runs it on a crawl worker
	// goroutine, where t.Fatal is not allowed.
	start := func(addr string) (*cluster.ShardServer, error) {
		fr := frontier.NewSharded(8)
		if diskTier {
			// Each incarnation gets a fresh spill dir: the WAL is the
			// durability plane and rebuilds the spill logs through Reset on
			// replay, so a replacement never depends on the crashed
			// process's logs (which may be torn, or on a lost disk).
			starts++
			var err error
			fr, err = frontier.OpenSharded(frontier.StoreConfig{
				Shards:         8,
				SpillDir:       filepath.Join(spillRoot, fmt.Sprintf("gen%d", starts)),
				ResidentBudget: 24,
			})
			if err != nil {
				return nil, err
			}
		}
		srv := cluster.NewShardServer(fr)
		if err := srv.OpenWAL(dir); err != nil {
			return nil, err
		}
		if err := srv.Listen(addr); err != nil {
			return nil, err
		}
		go srv.Serve() //nolint:errcheck — exits with ErrServerClosed on Close
		return srv, nil
	}
	srv, err := start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	var replacement *cluster.ShardServer
	t.Cleanup(func() {
		srv.Close()
		if replacement != nil {
			replacement.Close()
		}
	})

	rs, err := cluster.DialTCP([]string{addr}, cluster.Options{
		PolitenessDays: 0,
		RetryBackoff:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	run := func(workers int, fr frontier.ShardSet, wrap func(fetch.Fetcher) fetch.Fetcher) (core.Metrics, []string) {
		w, f := testWeb(t, 24)
		cfg := baseConfig(w)
		cfg.Workers = workers
		cfg.Frontier = fr
		var fetcher fetch.Fetcher = f
		if wrap != nil {
			fetcher = wrap(f)
		}
		c, err := core.New(cfg, fetcher)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(12); err != nil {
			t.Fatal(err)
		}
		return c.Metrics(), c.Collection().URLs()
	}

	lm, lu := run(4, nil, nil) // uninterrupted, in-process frontier
	restartErr := make(chan error, 1)
	rm, ru := run(4, rs, func(inner fetch.Fetcher) fetch.Fetcher {
		return &crashingFetcher{inner: inner, at: 150, crash: func() {
			srv.Close() // hard stop: no CloseWAL, no final snapshot
			var err error
			replacement, err = start(addr)
			restartErr <- err
		}}
	})
	select {
	case err := <-restartErr:
		if err != nil {
			t.Fatalf("restarting the killed server: %v", err)
		}
	default:
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("crawl did not survive the restart: %v", err)
	}
	if replacement == nil {
		t.Fatal("crash hook never fired; crawl too short to be killed mid-flight")
	}
	if rm != lm {
		t.Fatalf("kill-restart crawl diverged:\nkilled: %+v\nlocal:  %+v", rm, lm)
	}
	if len(ru) != len(lu) {
		t.Fatalf("collections diverge: %d vs %d", len(ru), len(lu))
	}
	for i := range ru {
		if ru[i] != lu[i] {
			t.Fatalf("collection diverges at %d: %s vs %s", i, ru[i], lu[i])
		}
	}
}

// TestDistributedBatchModeInvariance repeats the check for the
// batch-mode loop with a shadowed collection.
func TestDistributedBatchModeInvariance(t *testing.T) {
	run := func(fr frontier.ShardSet) (core.Metrics, []string) {
		w, f := testWeb(t, 22)
		cfg := baseConfig(w)
		cfg.Mode = core.Batch
		cfg.Update = core.Shadow
		cfg.Workers = 4
		cfg.Frontier = fr
		c, err := core.New(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(14); err != nil {
			t.Fatal(err)
		}
		return c.Metrics(), c.Collection().URLs()
	}
	lm, lu := run(nil)
	rm, ru := run(loopbackCluster(t, 2, 8))
	if lm != rm {
		t.Fatalf("batch-mode metrics diverge:\nremote: %+v\nlocal:  %+v", rm, lm)
	}
	if len(lu) != len(ru) {
		t.Fatalf("batch-mode collections diverge: %d vs %d", len(ru), len(lu))
	}
	for i := range lu {
		if lu[i] != ru[i] {
			t.Fatalf("batch-mode collection diverges at %d", i)
		}
	}
}

// TestDistributedUpdatePipeline drives the wall-clock claim/release
// pipeline with its frontier behind the wire protocol, workers
// claiming shards concurrently (the race detector's view of the
// client's pooled connections).
func TestDistributedUpdatePipeline(t *testing.T) {
	w, f := testWeb(t, 23)
	rs := loopbackCluster(t, 2, 4)
	for _, u := range w.RootURLs() {
		rs.Push(u, 0, 0)
	}
	mem := store.NewMem()
	p := &core.UpdatePipeline{
		Fetcher:         f,
		Coll:            rs,
		Store:           mem,
		Policy:          scheduler.Fixed{Every: 5},
		Workers:         6,
		MinIntervalDays: 0.5,
		MaxIntervalDays: 30,
	}
	if err := p.Run(1.0, 40); err != nil {
		t.Fatal(err)
	}
	if p.Processed() == 0 {
		t.Fatal("pipeline processed nothing")
	}
	if mem.Len() == 0 {
		t.Fatal("no records stored")
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
}
