package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"webevolve/internal/frontier"
)

// newWALServer opens a shard server persisting to dir.
func newWALServer(t *testing.T, dir string, shards int) *ShardServer {
	t.Helper()
	srv := NewShardServer(frontier.NewSharded(shards))
	if err := srv.OpenWAL(dir); err != nil {
		t.Fatal(err)
	}
	return srv
}

// pushVia pushes through the wire path (so ops are logged), not the
// frontier directly.
func pushVia(t *testing.T, srv *ShardServer, reqID uint64, url string, due, prio float64) {
	t.Helper()
	var e enc
	e.u64(reqID).str(url).f64(due).f64(prio)
	if st, resp := srv.handle(helloProto, opPush, e.b); st != statusOK {
		t.Fatalf("push: %s", resp)
	}
}

func popVia(t *testing.T, srv *ShardServer, reqID uint64, now float64) (frontier.Entry, bool) {
	t.Helper()
	var e enc
	e.u64(reqID).f64(now)
	st, resp := srv.handle(helloProto, opPopDue, e.b)
	if st != statusOK {
		t.Fatalf("pop: %s", resp)
	}
	d := &dec{b: resp}
	ent, ok := decodeEntry(d)
	return ent, ok
}

// TestWALRecoversAfterCrash: a server abandoned without CloseWAL (the
// crash case — appends are on disk, no final snapshot) must come back
// with the exact frontier: acknowledged pushes present, acknowledged
// pops absent.
func TestWALRecoversAfterCrash(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	urls := testURLs(6, 3)
	for i, u := range urls {
		pushVia(t, srv, uint64(1000+i), u, float64(i%5), float64(i%2))
	}
	var popped []string
	for i := 0; i < 5; i++ {
		e, ok := popVia(t, srv, uint64(2000+i), 10)
		if !ok {
			t.Fatal("pop drained early")
		}
		popped = append(popped, e.URL)
	}
	// Crash: no CloseWAL, no final snapshot.

	srv2 := newWALServer(t, dir, 4)
	if got, want := srv2.Shards().Len(), len(urls)-len(popped); got != want {
		t.Fatalf("recovered Len = %d, want %d", got, want)
	}
	for _, u := range popped {
		if srv2.Shards().Contains(u) {
			t.Fatalf("popped URL %s resurrected by replay", u)
		}
	}
	// The recovered queue keeps popping in the order the original would
	// have.
	mirror := frontier.NewSharded(4)
	for i, u := range urls {
		mirror.Push(u, float64(i%5), float64(i%2))
	}
	for range popped {
		mirror.PopDue(10)
	}
	req := uint64(3000)
	for {
		me, mok := mirror.PopDue(10)
		req++
		se, sok := popVia(t, srv2, req, 10)
		if mok != sok {
			t.Fatalf("recovered pop ok %v vs %v", sok, mok)
		}
		if !mok {
			break
		}
		if !sameEntry(me, se) {
			t.Fatalf("recovered pop %+v vs %+v", se, me)
		}
	}
}

// TestWALGracefulFlush: CloseWAL must persist every queued entry into
// the snapshot (the graceful-shutdown contract), leaving an empty log.
func TestWALGracefulFlush(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	urls := testURLs(4, 4)
	for i, u := range urls {
		pushVia(t, srv, uint64(100+i), u, float64(i), 0)
	}
	if err := srv.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walSnapName)); err != nil {
		t.Fatalf("no snapshot after graceful shutdown: %v", err)
	}
	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Len(); got != len(urls) {
		t.Fatalf("flushed %d entries, recovered %d", len(urls), got)
	}
}

// TestWALTornTailTruncated: garbage appended to the log (a torn write
// from a crash mid-append) must be swept away — the valid prefix
// replays, the op that tore was never acknowledged.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	pushVia(t, srv, 1, "http://site001.com/a", 1, 0)
	pushVia(t, srv, 2, "http://site002.com/b", 2, 0)

	seqs, err := walFileSeqs(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	active := walFilePath(dir, seqs[len(seqs)-1])
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Len(); got != 2 {
		t.Fatalf("recovered Len = %d, want 2", got)
	}
	if !srv2.Shards().Contains("http://site001.com/a") || !srv2.Shards().Contains("http://site002.com/b") {
		t.Fatal("acknowledged pushes lost to torn tail")
	}
}

// TestWALReplaysOlderProtoVersion: a WAL written by a version-2 shardd
// (every frame stamped with the old protocol version) must replay after
// an upgrade. Rejecting old versions at the frame level would make
// recovery mistake the entire log for a torn tail and truncate it to
// nothing — silent loss of the exact state the WAL exists to keep.
func TestWALReplaysOlderProtoVersion(t *testing.T) {
	dir := t.TempDir()
	f, err := os.OpenFile(walFilePath(dir, 0), os.O_CREATE|os.O_WRONLY, walFilePerm)
	if err != nil {
		t.Fatal(err)
	}
	urls := []string{"http://site001.com/a", "http://site002.com/b", "http://site003.com/c"}
	for i, u := range urls {
		var e enc
		e.u64(uint64(100 + i)).str(u).f64(float64(i)).f64(0)
		writeFrameVersion(t, f, minProtoVersion, opPush, e.b)
	}
	f.Close()

	srv := newWALServer(t, dir, 4)
	if got := srv.Shards().Len(); got != len(urls) {
		t.Fatalf("recovered Len = %d, want %d (old-version WAL truncated?)", got, len(urls))
	}
	for _, u := range urls {
		if !srv.Shards().Contains(u) {
			t.Fatalf("entry %s lost replaying an old-version WAL", u)
		}
	}
}

// writeFrameVersion hand-assembles one pre-v6 frame (two-byte payload
// header, no flags byte) stamped with an explicit protocol version —
// what an old shardd build would have written.
func writeFrameVersion(t *testing.T, f *os.File, version, kind byte, body []byte) {
	t.Helper()
	buf := make([]byte, 8+2+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)+2))
	buf[8] = version
	buf[9] = kind
	copy(buf[10:], body)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// walBatchBody builds a v6 push-batch body big enough that writeFrame
// deflates the WAL frame (front-coded URLs, > compressMin bytes raw).
func walBatchBody(reqID uint64, urls []string) []byte {
	e := newEnc(ProtoVersion)
	e.fix64(reqID)
	ents := make([]frontier.Entry, len(urls))
	for i, u := range urls {
		ents[i] = frontier.Entry{URL: u, Due: float64(i)}
	}
	encodeEntries(&e, ents)
	return e.b
}

// TestWALReplaysCompressedFrames: a current-build WAL — v6 frames,
// batch bodies big enough to ride the compression flag — must replay
// exactly after a crash (no CloseWAL, no snapshot).
func TestWALReplaysCompressedFrames(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	urls := testURLs(8, 8)
	if st, resp := srv.handle(ProtoVersion, opPushBatch, walBatchBody(900, urls)); st != statusOK {
		t.Fatalf("batch push: %s", resp)
	}

	// The test is vacuous unless the logged frame really is compressed:
	// find a flags byte with flagCompressed set in the active log.
	seqs, err := walFileSeqs(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	raw, err := os.ReadFile(walFilePath(dir, seqs[len(seqs)-1]))
	if err != nil {
		t.Fatal(err)
	}
	compressed := false
	for off := 0; off+8 <= len(raw); {
		n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		if off+8+n > len(raw) {
			break
		}
		if n >= 3 && raw[off+8] >= protoV6 && raw[off+8+2]&flagCompressed != 0 {
			compressed = true
		}
		off += 8 + n
	}
	if !compressed {
		t.Fatal("batch frame was not compressed in the WAL; test exercises nothing")
	}

	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Len(); got != len(urls) {
		t.Fatalf("recovered Len = %d, want %d", got, len(urls))
	}
	for _, u := range urls {
		if !srv2.Shards().Contains(u) {
			t.Fatalf("entry %s lost replaying a compressed WAL", u)
		}
	}
}

// TestWALTornCompressedTailTruncated: a v6 compressed frame torn
// mid-write must sweep back to the last CRC-valid frame — acknowledged
// ops before the tear survive, and the file is truncated to the valid
// prefix so subsequent appends don't interleave with garbage.
func TestWALTornCompressedTailTruncated(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	pushVia(t, srv, 1, "http://site001.com/a", 1, 0)
	pushVia(t, srv, 2, "http://site002.com/b", 2, 0)

	seqs, err := walFileSeqs(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	active := walFilePath(dir, seqs[len(seqs)-1])

	// A well-formed compressed batch frame, torn 5 bytes short: the
	// length prefix promises more than the file holds.
	var torn bytes.Buffer
	if _, err := writeFrame(&torn, ProtoVersion, opPushBatch, walBatchBody(901, testURLs(8, 8))); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn.Bytes()[:torn.Len()-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Len(); got != 2 {
		t.Fatalf("recovered Len = %d, want 2", got)
	}
	if !srv2.Shards().Contains("http://site001.com/a") || !srv2.Shards().Contains("http://site002.com/b") {
		t.Fatal("acknowledged pushes lost to torn compressed tail")
	}
	// The swept log must stay appendable: a post-recovery push has to
	// survive another restart, proving the tear left no garbage behind.
	pushVia(t, srv2, 3, "http://site003.com/c", 3, 0)
	srv3 := newWALServer(t, dir, 4)
	if got := srv3.Shards().Len(); got != 3 {
		t.Fatalf("post-sweep append lost: Len = %d, want 3", got)
	}
}

// TestWALCompactionBoundsLog: compaction must fold the log into the
// snapshot, delete covered files, and lose nothing.
func TestWALCompactionBoundsLog(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	urls := testURLs(8, 4)
	for i, u := range urls {
		pushVia(t, srv, uint64(10+i), u, float64(i%6), 0)
	}
	if err := srv.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	seqs, err := walFileSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("%d wal files after compaction, want 1", len(seqs))
	}
	pushVia(t, srv, 999, "http://site999.com/late", 0, 0)
	// Crash-reopen: snapshot + post-compaction log must both replay.
	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Len(); got != len(urls)+1 {
		t.Fatalf("recovered Len = %d, want %d", got, len(urls)+1)
	}
}

// TestWALDedupSurvivesRestart: a retry whose original landed in the
// log must be deduped by the *restarted* server — the replay rebuilds
// the response cache, closing the crash window between apply and ack.
func TestWALDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	pushVia(t, srv, 1, "http://site001.com/a", 0, 0)
	pushVia(t, srv, 2, "http://site002.com/b", 0, 1)

	var claim enc
	claim.u64(77).f64(10)
	st1, resp1 := srv.handle(helloProto, opClaimDue, claim.b)
	if st1 != statusOK {
		t.Fatalf("claim: %s", resp1)
	}
	// Crash before the response reached the client; the client retries
	// the identical frame against the restarted server.
	srv2 := newWALServer(t, dir, 4)
	st2, resp2 := srv2.handle(helloProto, opClaimDue, claim.b)
	if st2 != st1 || string(resp2) != string(resp1) {
		t.Fatalf("retry across restart not deduped: (%d,%q) vs (%d,%q)", st2, resp2, st1, resp1)
	}
	if got := srv2.Shards().Len(); got != 1 {
		t.Fatalf("retry across restart re-popped: Len = %d, want 1", got)
	}
}

// TestWALRestoreKeepsPoliteness: politeness set by a client hello is
// captured by compaction and restored on restart.
func TestWALRestoreKeepsPoliteness(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	srv.Shards().SetPoliteness(2.5)
	if err := srv.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Politeness(); got != 2.5 {
		t.Fatalf("restored politeness %v, want 2.5", got)
	}
}

// TestWALShardCountChange: restoring a snapshot into a different shard
// layout keeps every entry (re-hashed) and drops only the per-shard
// scheduling state.
func TestWALShardCountChange(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	urls := testURLs(5, 2)
	for i, u := range urls {
		pushVia(t, srv, uint64(50+i), u, float64(i), 0)
	}
	if err := srv.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	srv2 := newWALServer(t, dir, 8)
	if got := srv2.Shards().Len(); got != len(urls) {
		t.Fatalf("re-sharded recovery Len = %d, want %d", got, len(urls))
	}
}

// TestWALReplayKeepsHelloPoliteness: politeness applied by a client
// hello is a logged mutation — a crash-recovered server must pop with
// the same politeness deadlines the live server used.
func TestWALReplayKeepsHelloPoliteness(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	var hello enc
	hello.bool(true).f64(1.5).bool(true)
	if st, resp := srv.handle(helloProto, opHello, hello.b); st != statusOK {
		t.Fatalf("hello: %s", resp)
	}
	pushVia(t, srv, 1, "http://site001.com/a", 0, 0)
	// Crash: no snapshot since the hello.
	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Politeness(); got != 1.5 {
		t.Fatalf("replayed politeness %v, want 1.5", got)
	}
}

// TestWALSnapshotChunks: a frontier larger than one snapshot chunk
// round-trips through compaction intact (the snapshot has no single-
// frame size ceiling).
func TestWALSnapshotChunks(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	n := walSnapChunk + 123
	entries := make([]frontier.Entry, n)
	for i := range entries {
		entries[i] = frontier.Entry{
			URL: fmt.Sprintf("http://site%03d.com/p%06d", i%50, i),
			Due: float64(i % 11), Priority: float64(i % 3),
		}
	}
	srv.Shards().PushBatch(entries)
	if err := srv.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	srv2 := newWALServer(t, dir, 4)
	if got := srv2.Shards().Len(); got != n {
		t.Fatalf("recovered Len = %d, want %d", got, n)
	}
}

// TestWALSkipsNoOpPops: pops that return nothing must not grow the log
// — an idle worker pool polling an empty frontier would otherwise
// churn it without bound.
func TestWALSkipsNoOpPops(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, 4)
	sizeOf := func() int64 {
		seqs, err := walFileSeqs(dir)
		if err != nil || len(seqs) == 0 {
			t.Fatalf("no wal files: %v", err)
		}
		fi, err := os.Stat(walFilePath(dir, seqs[len(seqs)-1]))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	before := sizeOf()
	for i := 0; i < 10; i++ {
		if _, ok := popVia(t, srv, uint64(100+i), 5); ok {
			t.Fatal("pop on empty frontier returned an entry")
		}
	}
	if after := sizeOf(); after != before {
		t.Fatalf("no-op pops grew the log: %d -> %d bytes", before, after)
	}
	pushVia(t, srv, 999, "http://site001.com/a", 0, 0)
	if after := sizeOf(); after == before {
		t.Fatal("real mutation did not grow the log")
	}
}
