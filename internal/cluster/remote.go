package cluster

import (
	"bufio"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webevolve/internal/frontier"
	"webevolve/internal/registry"
	"webevolve/internal/webgraph"
)

// Dialer opens one connection to a shard server.
type Dialer func() (net.Conn, error)

// Default retry shape: with 6 retries backing off 25ms..1s, a client
// rides out roughly two seconds of server downtime — enough for a
// supervised shardd restart — before the error becomes sticky.
const (
	defaultMaxRetries      = 6
	defaultRetryBackoff    = 25 * time.Millisecond
	defaultMaxRetryBackoff = time.Second
	defaultDialTimeout     = 5 * time.Second
)

// Options configures a cluster client. One option set serves both
// client kinds — the frontier shard client (Dial, DialTCP, Loopback →
// RemoteShards) and the repository store client (DialStore,
// DialStoreTCP, LoopbackStore → RemoteStore) — because they share the
// transport underneath: per-server connection pools, redial with
// capped exponential backoff, and request-ID dedup for exactly-once
// retries. The transport knobs (ConnsPerServer, MaxRetries,
// RetryBackoff, MaxRetryBackoff, DialTimeout) mean the same thing to
// both; PolitenessDays is crawl policy and only the shard client reads
// it.
type Options struct {
	// PolitenessDays, when >= 0, is applied to every shard server at
	// connect time (the client owns the crawl policy). Negative leaves
	// each server's own configuration in place. Store clients ignore
	// it.
	PolitenessDays float64
	// ConnsPerServer sizes the per-server connection pool (default 2):
	// the dispatcher's claims and the workers' releases/pushes can be in
	// flight at once.
	ConnsPerServer int
	// MaxRetries bounds how many times one operation is retried after a
	// transport failure — each retry redials the server with capped
	// exponential backoff — before the error becomes sticky. Every
	// mutating op carries a request ID the server dedups on, so a retry
	// is applied exactly once even if the original was. 0 means the
	// default (6); negative disables retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxRetryBackoff. Defaults 25ms and 1s.
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration
	// DialTimeout bounds each TCP connect attempt (DialTCP and
	// DialStoreTCP; custom Dialers enforce their own). Default 5s.
	DialTimeout time.Duration
	// RebalancePoll rate-limits membership polls from Rebalance, which
	// engines call at every round boundary. 0 means the default
	// (100ms); negative polls on every call (tests want deterministic
	// pickup of registry changes). Ignored without a registry.
	RebalancePoll time.Duration
	// MaxProtoVersion caps the wire protocol version this client offers
	// at hello. 0 means the newest this build speaks (ProtoVersion);
	// setting it to 5 forces the pre-varint framing, which mixed-version
	// tests use to stand in for an old client. Values are clamped to
	// [helloProto, ProtoVersion].
	MaxProtoVersion int
}

// maxProto resolves the configured protocol ceiling.
func (o Options) maxProto() byte {
	v := o.MaxProtoVersion
	if v <= 0 || v > ProtoVersion {
		return ProtoVersion
	}
	if v < helloProto {
		return helloProto
	}
	return byte(v)
}

// dialTimeout resolves the configured timeout against the default.
func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return defaultDialTimeout
}

// RemoteShards implements frontier.ShardSet over a cluster of shard
// servers, so the crawl engines run unchanged with their frontier on
// other machines. URLs are routed by host hash to a server (all pages
// of one site live on one server, preserving shard politeness and
// claim exclusivity), and each server shards by host again internally;
// global shard indices are the concatenation of the servers' local
// index spaces.
//
// Transport failures are retried: the broken connection is closed, the
// server is redialed with capped exponential backoff, and the op is
// resent with its original request ID (the server dedups, so a resend
// of an op the server already applied returns the original response —
// see mutatingOp). Only after the retry budget is spent does the error
// become sticky: every later operation is a no-op returning zero
// values (the engine winds down as if the frontier drained), and
// callers check Err when the crawl ends. A cluster is owned by one
// client at a time; connecting clears stale claims a vanished previous
// client may have held.
type RemoteShards struct {
	// topo is the routing topology of the current membership epoch: the
	// consistent-hash ring plus the per-member connection pools, swapped
	// atomically when a migration completes. Every operation snapshots
	// it once at entry, so one op runs against one coherent epoch even
	// while Rebalance installs the next.
	topo atomic.Pointer[shardTopology]

	// Membership plane; src == nil is a static cluster pinned at Dial
	// (a fixed one-epoch ring), and Rebalance is a no-op.
	src      MembershipSource
	dialFor  func(m registry.Member) Dialer
	opts     Options
	rebalMu  sync.Mutex // serializes Rebalance; guards lastPoll
	lastPoll time.Time

	// all tracks every server pool ever dialed, across topology swaps,
	// so wire accounting survives migrations and Close closes pools a
	// swap retired.
	allMu sync.Mutex
	all   []*serverConns

	// reqBase ^ a per-client counter generates request IDs unique
	// across clients of one cluster with overwhelming probability.
	reqBase uint64
	reqSeq  atomic.Uint64

	// politeness is the gap requested at connect; the batched round
	// protocol (ApplyRound) is only sound at exactly zero.
	politeness float64

	closed atomic.Bool

	failMu sync.Mutex
	failed error
}

// shardTopology is one membership epoch's immutable routing state.
// servers is index-aligned with ring.Members().
type shardTopology struct {
	epoch   uint64
	ring    *Ring
	servers []*serverConns
	// offsets[i] is the global index of server i's local shard 0;
	// counts[i] its local shard count.
	offsets []int
	counts  []int
	total   int
}

// serverOf routes a URL's host to the index of its owning server.
func (t *shardTopology) serverOf(url string) int {
	return t.ring.Owner(t.ring.PartOf(url))
}

// t snapshots the current topology.
func (rs *RemoteShards) t() *shardTopology { return rs.topo.Load() }

// track registers a pool in the lifetime accounting list.
func (rs *RemoteShards) track(sc *serverConns) {
	rs.allMu.Lock()
	rs.all = append(rs.all, sc)
	rs.allMu.Unlock()
}

func (rs *RemoteShards) allServers() []*serverConns {
	rs.allMu.Lock()
	defer rs.allMu.Unlock()
	return append([]*serverConns(nil), rs.all...)
}

// installTopology swaps in a new epoch's routing. servers must be
// aligned with ring.Members().
func (rs *RemoteShards) installTopology(epoch uint64, ring *Ring, servers []*serverConns) {
	t := &shardTopology{epoch: epoch, ring: ring, servers: servers}
	for _, sc := range servers {
		t.offsets = append(t.offsets, t.total)
		t.counts = append(t.counts, sc.wantShards)
		t.total += sc.wantShards
	}
	rs.topo.Store(t)
}

var _ frontier.ShardSet = (*RemoteShards)(nil)

var errClientClosed = errors.New("cluster: client closed")

// clientConn is one pooled connection with its buffered reader.
type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
}

// serverConns is the connection pool for one server. A pool slot holds
// either a live connection or nil — a slot whose connection broke. The
// slot itself is always returned to the pool (even as nil), so waiters
// are never stranded across a redial; the next op taking a nil slot
// dials a fresh connection.
type serverConns struct {
	name  string
	dial  Dialer
	hello []byte // reconnect hello body (politeness, no claim clearing)

	// helloOp and checkHello parameterize the handshake per server
	// kind: opHello with shard-count pinning for shard servers,
	// opStoreHello with a magic check for store servers.
	helloOp    byte
	checkHello func(resp []byte) error

	// pinMu guards the handshake-pinned state below: concurrent
	// reconnects on different pool slots run checkHello concurrently.
	pinMu sync.Mutex
	// wantShards pins the server's shard count from the first hello;
	// a reconnect seeing a different count means the server restarted
	// with a different layout, which silently reroutes URLs — refuse.
	wantShards int
	// storeBoot pins a store server's instance ID from the first hello,
	// so a reconnect can tell a restarted server from the original one
	// (checkStoreHello).
	storeBoot    uint64
	storeBootSet bool
	// maxProto is the highest protocol version this client offers the
	// server (Options.MaxProtoVersion); proto pins the negotiated
	// version after the first hello (0 = not yet negotiated, speak
	// helloProto). A reconnect negotiating a different version means
	// the server changed builds mid-session — refuse, like a shard
	// count change.
	maxProto byte
	proto    atomic.Uint32

	pool chan *clientConn

	maxRetries int
	backoff    time.Duration
	backoffMax time.Duration
	closed     *atomic.Bool
	trips      *atomic.Int64
	sleep      func(time.Duration) // test seam; time.Sleep

	// bytesOut/bytesIn total the wire bytes this pool sent and
	// received (frame overhead included) — the raw material for the
	// bytes-per-page benchmark column (see RemoteShards.WireBytes).
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
}

// wireVer returns the protocol version this pool's frames speak: the
// hello-negotiated version once pinned, else helloProto — safe before
// (and during) the first handshake, since every server understands it.
func (sc *serverConns) wireVer() byte {
	if v := sc.proto.Load(); v != 0 {
		return byte(v)
	}
	return helloProto
}

// exchange sends one request frame and reads its response, accounting
// the real wire bytes both ways (post-compression — the unit WireBytes
// and the bytes-per-page benchmark report). ver must be the version
// body was encoded under.
func (sc *serverConns) exchange(cc *clientConn, ver, op byte, body []byte) (byte, []byte, error) {
	sc.trips.Add(1)
	m := metricsFor(op)
	out, err := writeFrame(cc.conn, ver, op, body)
	if err != nil {
		return 0, nil, err
	}
	sc.bytesOut.Add(int64(out))
	m.clientReqBytes.Observe(float64(out))
	_, status, resp, in, err := readFrame(cc.r)
	if err == nil {
		sc.bytesIn.Add(int64(in))
		m.clientRespBytes.Observe(float64(in))
	}
	return status, resp, err
}

// connect dials a fresh connection and runs the hello handshake over
// it: protocol version check plus the per-kind validation (shard-count
// pinning, or the store server's magic).
func (sc *serverConns) connect(helloBody []byte) (*clientConn, error) {
	if sc.closed.Load() {
		return nil, errClientClosed
	}
	conn, err := sc.dial()
	if err != nil {
		return nil, err
	}
	cc := &clientConn{conn: conn, r: bufio.NewReader(conn)}
	// Hello frames are always tagged helloProto — both sides must be
	// able to decode them before any version has been negotiated.
	status, resp, err := sc.exchange(cc, helloProto, sc.helloOp, helloBody)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if status != statusOK {
		conn.Close()
		return nil, fmt.Errorf("server error: %s", resp)
	}
	if err := sc.checkHello(resp); err != nil {
		conn.Close()
		return nil, err
	}
	return cc, nil
}

// checkShardHello validates a shard server's hello response and pins
// the shard count: a reconnect seeing a different count means the
// server restarted with a different layout, which silently reroutes
// URLs — refuse.
func (sc *serverConns) checkShardHello(resp []byte) error {
	d := newDec(helloProto, resp)
	n := int(d.u32())
	if d.finish() != nil || n < 1 {
		return errors.New("bad hello response")
	}
	neg, err := sc.negotiated(d)
	if err != nil {
		return err
	}
	sc.pinMu.Lock()
	defer sc.pinMu.Unlock()
	if sc.wantShards == 0 {
		sc.wantShards = n
	} else if n != sc.wantShards {
		return fmt.Errorf("shard count changed across reconnect: %d, want %d", n, sc.wantShards)
	}
	return sc.pinProtoLocked(neg)
}

// negotiated parses the optional negotiated-version byte a v6-aware
// server appends to its hello response. A v5 server leaves nothing
// trailing (neg 0: speak helloProto for the connection's lifetime),
// as does a client capped at v5 — it never offered, so it must not
// read a trailing byte that isn't there.
func (sc *serverConns) negotiated(d *dec) (byte, error) {
	if sc.maxProto < protoV6 || d.off >= len(d.b) {
		return 0, nil
	}
	v := d.u8()
	if d.err != nil || v < helloProto || v > sc.maxProto {
		return 0, fmt.Errorf("bad negotiated protocol version %d", v)
	}
	return v, nil
}

// pinProtoLocked records the hello's negotiated version, refusing a
// change across reconnect (the server swapped builds mid-session —
// frames already encoded under the old pin would silently misparse).
// Caller holds pinMu.
func (sc *serverConns) pinProtoLocked(neg byte) error {
	v := uint32(neg)
	if v == 0 {
		v = helloProto
	}
	if prev := sc.proto.Load(); prev == 0 {
		sc.proto.Store(v)
	} else if prev != v {
		return fmt.Errorf("protocol version changed across reconnect: %d, want %d", v, prev)
	}
	return nil
}

// checkStoreHello validates a store server's hello magic — so a client
// pointed at the wrong kind of daemon fails at connect — and pins the
// server's boot ID. A reconnect landing on a *restarted* server is
// accepted only when the server is durable (disk-backed: acknowledged
// writes survived, and retried ops are idempotent); a restarted
// memory-backed server silently lost every collection, so resuming
// against it would corrupt the crawl — refuse and let the error go
// sticky instead.
func (sc *serverConns) checkStoreHello(resp []byte) error {
	d := newDec(helloProto, resp)
	magic := d.u32()
	durable := d.bool()
	boot := d.u64()
	if d.finish() != nil || magic != storeHelloMagic {
		return errors.New("not a store server (bad hello magic)")
	}
	neg, err := sc.negotiated(d)
	if err != nil {
		return err
	}
	sc.pinMu.Lock()
	defer sc.pinMu.Unlock()
	if err := sc.pinProtoLocked(neg); err != nil {
		return err
	}
	if !sc.storeBootSet {
		sc.storeBoot, sc.storeBootSet = boot, true
		return nil
	}
	if boot != sc.storeBoot {
		if !durable {
			return errors.New("store server restarted without -dir: its collections were lost")
		}
		sc.storeBoot = boot
	}
	return nil
}

// roundTrip sends one request and reads its response over a pooled
// connection, retrying across redials on transport failure. The pool
// slot is always returned — holding the live connection on success,
// nil after a failure — so concurrent ops never block on a drained
// pool.
func (sc *serverConns) roundTrip(ver, op byte, body []byte) ([]byte, error) {
	m := metricsFor(op)
	start := time.Now()
	cc := <-sc.pool
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= sc.maxRetries; attempt++ {
		if attempt > 0 {
			m.clientRetries.Inc()
			sc.sleep(sc.backoffFor(attempt))
		}
		attempts++
		if cc == nil {
			var err error
			if attempt > 0 {
				clientRedials.Inc()
			}
			if cc, err = sc.connect(sc.hello); err != nil {
				lastErr = err
				if errors.Is(err, errClientClosed) {
					break
				}
				continue
			}
		}
		status, resp, err := sc.exchange(cc, ver, op, body)
		if err != nil {
			cc.conn.Close()
			cc = nil
			lastErr = err
			continue
		}
		sc.pool <- cc
		m.clientOps.Inc()
		m.clientSeconds.Observe(time.Since(start).Seconds())
		if status != statusOK {
			return nil, fmt.Errorf("cluster: %s: %s: server error: %s", sc.name, opName(op), resp)
		}
		return resp, nil
	}
	sc.pool <- cc // nil: the next op on this slot redials
	return nil, fmt.Errorf("cluster: %s: %s (after %d attempts): %w", sc.name, opName(op), attempts, lastErr)
}

// backoffFor is the capped exponential redial delay before retry n.
func (sc *serverConns) backoffFor(n int) time.Duration {
	d := sc.backoff << (n - 1)
	if d > sc.backoffMax || d <= 0 {
		return sc.backoffMax
	}
	return d
}

// newServerConns builds one server's connection pool from the shared
// retry/backoff options; the caller fills in the handshake fields.
func newServerConns(name string, dial Dialer, opts Options, closed *atomic.Bool) *serverConns {
	conns := opts.ConnsPerServer
	if conns < 1 {
		conns = 2
	}
	retries := opts.MaxRetries
	switch {
	case retries == 0:
		retries = defaultMaxRetries
	case retries < 0:
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	backoffMax := opts.MaxRetryBackoff
	if backoffMax <= 0 {
		backoffMax = defaultMaxRetryBackoff
	}
	if backoffMax < backoff {
		backoffMax = backoff
	}
	return &serverConns{
		name:       name,
		dial:       dial,
		maxProto:   opts.maxProto(),
		pool:       make(chan *clientConn, conns),
		maxRetries: retries,
		backoff:    backoff,
		backoffMax: backoffMax,
		closed:     closed,
		trips:      new(atomic.Int64),
		sleep:      time.Sleep,
	}
}

// dialEager dials the pool's first connection — failing fast on a
// misconfigured address or a daemon of the wrong kind — stamps the
// name with the resolved remote address, and leaves the remaining
// slots to dial lazily on first use. nameFmt carries one %v for the
// address.
func (sc *serverConns) dialEager(helloBody []byte, nameFmt string) error {
	cc, err := sc.connect(helloBody)
	if err != nil {
		return err
	}
	sc.name = fmt.Sprintf(nameFmt, cc.conn.RemoteAddr())
	sc.pool <- cc
	for c := 1; c < cap(sc.pool); c++ {
		sc.pool <- nil
	}
	return nil
}

// drainClose empties one pool, closing live connections. Slots held by
// in-flight ops stay theirs (those ops fail via the closed flag and
// return them). Refilling exactly as many slots as were taken keeps the
// pool's slot count invariant, so neither waiters nor returning ops
// ever block.
func (sc *serverConns) drainClose() {
	taken := 0
	for i := 0; i < cap(sc.pool); i++ {
		select {
		case cc := <-sc.pool:
			taken++
			if cc != nil {
				cc.conn.Close()
			}
		default:
		}
	}
	for i := 0; i < taken; i++ {
		sc.pool <- nil
	}
}

// helloBody encodes the handshake: politeness handover, whether to
// clear stale shard claims (a fresh client session does; a reconnect
// must not, its own workers hold claims), and — from a v6-capable
// client — the highest protocol version it wants. Pre-v6 servers
// tolerate the trailing byte (their hello decode ignores extra body)
// and answer without a negotiated version, so both sides fall back to
// helloProto.
func helloBody(politenessDays float64, clearClaims bool, maxProto byte) []byte {
	e := newEnc(helloProto)
	if politenessDays >= 0 {
		e.bool(true).f64(politenessDays)
	} else {
		e.bool(false)
	}
	e.bool(clearClaims)
	if maxProto >= protoV6 {
		e.u8(maxProto)
	}
	return e.b
}

// Dial connects to a static cluster of shard servers, one Dialer per
// server. The set of dialers is the cluster topology — it is built
// into a fixed one-epoch consistent-hash ring (member names are the
// list positions), so every client of one cluster must list the
// servers in the same order. For registry-driven membership use
// DialMembership or DialRegistry instead.
func Dial(dialers []Dialer, opts Options) (*RemoteShards, error) {
	if len(dialers) == 0 {
		return nil, errors.New("cluster: no shard servers")
	}
	rs := &RemoteShards{reqBase: randomReqBase(), politeness: opts.PolitenessDays, opts: opts}
	helloInit := helloBody(opts.PolitenessDays, true, opts.maxProto())
	helloRe := helloBody(opts.PolitenessDays, false, opts.maxProto())
	names := make([]string, len(dialers))
	servers := make([]*serverConns, len(dialers))
	for i, dial := range dialers {
		// Zero-padded position names sort in list order, so the ring's
		// member indices are exactly the flag-list positions.
		names[i] = fmt.Sprintf("%04d", i)
		sc := newServerConns(fmt.Sprintf("server %d", i), dial, opts, &rs.closed)
		sc.hello = helloRe
		sc.helloOp = opHello
		sc.checkHello = sc.checkShardHello
		// The eager first connect clears stale claims; reconnects (the
		// sc.hello body) must not, their own workers hold claims.
		if err := sc.dialEager(helloInit, fmt.Sprintf("server %d (%%v)", i)); err != nil {
			rs.closeAll()
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		servers[i] = sc
		rs.track(sc)
	}
	rs.installTopology(0, NewRing(names, 0), servers)
	return rs, nil
}

// randomReqBase draws the client's request-ID base. Request IDs only
// key the server's retry-dedup cache, so randomness here does not
// perturb deterministic crawls.
func randomReqBase() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// nextReq returns a fresh request ID (never zero).
func (rs *RemoteShards) nextReq() uint64 {
	id := rs.reqBase + rs.reqSeq.Add(1)
	if id == 0 {
		id = rs.reqBase + rs.reqSeq.Add(1)
	}
	return id
}

// DialTCP connects to shard servers at the given host:port addresses.
func DialTCP(addrs []string, opts Options) (*RemoteShards, error) {
	dialers := make([]Dialer, len(addrs))
	for i, a := range addrs {
		a := a
		dialers[i] = func() (net.Conn, error) {
			return net.DialTimeout("tcp", a, opts.dialTimeout())
		}
	}
	return Dial(dialers, opts)
}

// Loopback connects to in-process servers over net.Pipe — no sockets,
// fully deterministic, used by tests and benchmarks to run distributed
// crawls inside one process.
func Loopback(servers []*ShardServer, opts Options) (*RemoteShards, error) {
	dialers := make([]Dialer, len(servers))
	for i, s := range servers {
		dialers[i] = s.Pipe
	}
	return Dial(dialers, opts)
}

// fail records the first transport error; later operations no-op.
func (rs *RemoteShards) fail(err error) {
	rs.failMu.Lock()
	if rs.failed == nil {
		rs.failed = err
	}
	rs.failMu.Unlock()
}

// broken reports whether a transport error has been recorded.
func (rs *RemoteShards) broken() bool { return rs.Err() != nil }

// Err returns the sticky transport error, if any. Check it when a
// crawl winds down: after a failure the ShardSet methods return zero
// values, which the engines read as a drained frontier.
func (rs *RemoteShards) Err() error {
	rs.failMu.Lock()
	defer rs.failMu.Unlock()
	return rs.failed
}

// RoundTrips returns the total request frames sent across all servers
// (retries included) — the unit the batched-push optimization is
// measured in.
func (rs *RemoteShards) RoundTrips() int64 {
	var n int64
	for _, sc := range rs.allServers() {
		n += sc.trips.Load()
	}
	return n
}

// WireBytes returns the total bytes this client has sent to and
// received from its servers (frame overhead included) — the unit the
// ROADMAP's "shrink the wire" item is measured in; the remote engine
// benchmarks report it per crawled page.
func (rs *RemoteShards) WireBytes() (in, out int64) {
	for _, sc := range rs.allServers() {
		in += sc.bytesIn.Load()
		out += sc.bytesOut.Load()
	}
	return in, out
}

// WireVersions returns the negotiated protocol version per server of
// the current topology (0 for a server whose pool has not completed a
// hello yet). Mixed-version tests use it to assert which encoding a
// crawl actually ran over.
func (rs *RemoteShards) WireVersions() []int {
	t := rs.t()
	out := make([]int, len(t.servers))
	for i, sc := range t.servers {
		out[i] = int(sc.proto.Load())
	}
	return out
}

func (rs *RemoteShards) closeAll() {
	rs.closed.Store(true)
	for _, sc := range rs.allServers() {
		sc.drainClose()
	}
}

// Close closes every pooled connection.
func (rs *RemoteShards) Close() error {
	rs.closeAll()
	return nil
}

// NumServers returns the current epoch's cluster size.
func (rs *RemoteShards) NumServers() int { return len(rs.t().servers) }

// NumShards returns the total shard count across the current epoch's
// servers.
func (rs *RemoteShards) NumShards() int { return rs.t().total }

// Epoch returns the membership epoch of the installed topology (0 for
// a static cluster).
func (rs *RemoteShards) Epoch() uint64 { return rs.t().epoch }

// ShardOf returns the global shard index url hashes to: the owning
// server's offset plus the server's own local shard for the host.
func (rs *RemoteShards) ShardOf(url string) int {
	t := rs.t()
	host := webgraph.SiteOf(url)
	si := t.ring.Owner(frontier.HostShard(host, t.ring.Parts()))
	return t.offsets[si] + frontier.HostShard(host, t.counts[si])
}

// serverOfShard inverts the global shard index to (server, local).
func (t *shardTopology) serverOfShard(shard int) (int, int) {
	for i := len(t.offsets) - 1; i >= 0; i-- {
		if shard >= t.offsets[i] {
			return i, shard - t.offsets[i]
		}
	}
	return 0, shard
}

// Push implements frontier.ShardSet.
func (rs *RemoteShards) Push(url string, due, priority float64) {
	if rs.broken() {
		return
	}
	t := rs.t()
	sc := t.servers[t.serverOf(url)]
	ver := sc.wireVer()
	e := newEnc(ver)
	e.fix64(rs.nextReq()).str(url).f64(due).f64(priority)
	if _, err := sc.roundTrip(ver, opPush, e.b); err != nil {
		rs.fail(err)
	}
}

// pushBatchChunk caps the entries carried by one opPushBatch frame.
// 8192 entries at typical URL lengths is well under a megabyte — far
// from the protocol's maxFrame — so even a full frontier rebuild
// (webcrawl pushes every stored URL in one PushBatch) stays a short
// sequence of valid frames instead of one oversized, unsendable one.
const pushBatchChunk = 8192

// PushBatch implements frontier.ShardSet: entries are grouped by owning
// server and each group ships as a handful of opPushBatch frames — one
// round trip per server per pushBatchChunk entries instead of one per
// URL.
func (rs *RemoteShards) PushBatch(entries []frontier.Entry) {
	if rs.broken() || len(entries) == 0 {
		return
	}
	t := rs.t()
	groups := make([][]frontier.Entry, len(t.servers))
	if len(t.servers) == 1 {
		groups[0] = entries
	} else {
		for _, ent := range entries {
			si := t.serverOf(ent.URL)
			groups[si] = append(groups[si], ent)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(t.servers))
	for si, group := range groups {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, group []frontier.Entry) {
			defer wg.Done()
			sc := t.servers[si]
			for off := 0; off < len(group); off += pushBatchChunk {
				chunk := group[off:min(off+pushBatchChunk, len(group))]
				ver := sc.wireVer()
				e := newEnc(ver)
				e.fix64(rs.nextReq())
				encodeEntries(&e, chunk)
				if _, err := sc.roundTrip(ver, opPushBatch, e.b); err != nil {
					errs[si] = err
					return
				}
			}
		}(si, group)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			rs.fail(err)
			return
		}
	}
}

// ApplyRound implements the crawl engine's batched round protocol
// (core's frontierRounds fast path): the round's pops, drops and
// reschedules are routed to their owning servers and shipped — along
// with the request for the next pop candidates — as one opRound frame
// per server, all servers in parallel. The per-server candidate lists
// come back in queue order and are merged with the in-process
// comparator; bound marks the merge's exactness limit (the earliest
// last-entry among servers that truncated their lists — entries a
// server did not return order strictly after its last returned one).
//
// ok is false only when the fast path is unavailable (non-zero
// politeness gap), with nothing sent. Transport failures follow the
// usual contract: retried with exactly-once dedup, then sticky via
// Err(), with zero values returned — the engine winds down as if the
// frontier drained.
func (rs *RemoteShards) ApplyRound(pops, removes []string, pushes []frontier.Entry, peekMax int) (cands []frontier.Entry, bound frontier.Entry, boundOK, ok bool) {
	if rs.politeness != 0 {
		return nil, frontier.Entry{}, false, false
	}
	if rs.broken() {
		return nil, frontier.Entry{}, false, true
	}
	t := rs.t()
	n := len(t.servers)
	type svrRound struct {
		pops, removes []string
		pushes        []frontier.Entry
	}
	reqs := make([]svrRound, n)
	if n == 1 {
		reqs[0] = svrRound{pops: pops, removes: removes, pushes: pushes}
	} else {
		for _, u := range pops {
			si := t.serverOf(u)
			reqs[si].pops = append(reqs[si].pops, u)
		}
		for _, u := range removes {
			si := t.serverOf(u)
			reqs[si].removes = append(reqs[si].removes, u)
		}
		for _, ent := range pushes {
			si := t.serverOf(ent.URL)
			reqs[si].pushes = append(reqs[si].pushes, ent)
		}
	}

	type svrResp struct {
		cands    []frontier.Entry
		complete bool
		err      error
		sent     bool
	}
	resps := make([]svrResp, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		r := &reqs[si]
		if peekMax <= 0 && len(r.pops)+len(r.removes)+len(r.pushes) == 0 {
			continue // nothing for this server and no peek wanted
		}
		resps[si].sent = true
		wg.Add(1)
		go func(si int, r *svrRound) {
			defer wg.Done()
			sc := t.servers[si]
			ver := sc.wireVer()
			e := newEnc(ver)
			e.fix64(rs.nextReq())
			encodeStrings(&e, "", r.pops)
			encodeStrings(&e, "", r.removes)
			encodeEntries(&e, r.pushes)
			e.u32(uint32(peekMax))
			resp, err := sc.roundTrip(ver, opRound, e.b)
			if err != nil {
				resps[si].err = err
				return
			}
			d := newDec(ver, resp)
			list := decodeEntries(d)
			complete := d.bool()
			if d.finish() != nil {
				resps[si].err = fmt.Errorf("cluster: %s: bad round response", sc.name)
				return
			}
			resps[si].cands, resps[si].complete = list, complete
		}(si, r)
	}
	wg.Wait()

	for si := range resps {
		if resps[si].err != nil {
			rs.fail(resps[si].err)
			return nil, frontier.Entry{}, false, true
		}
	}
	if peekMax <= 0 {
		return nil, frontier.Entry{}, false, true
	}
	for si := range resps {
		sr := &resps[si]
		if !sr.sent {
			continue
		}
		cands = append(cands, sr.cands...)
		if !sr.complete && len(sr.cands) > 0 {
			last := sr.cands[len(sr.cands)-1]
			if !boundOK || frontier.EntryBefore(last, bound) {
				bound, boundOK = last, true
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return frontier.EntryBefore(cands[i], cands[j]) })
	return cands, bound, boundOK, true
}

// fan sends one request to every server of the topology concurrently
// and collects the responses indexed by server, along with the
// protocol version each response is encoded under (the server echoes
// the request frame's version, captured here before the trip — a
// lazily-dialed pool may negotiate a newer version mid-call, so
// re-reading wireVer afterwards could misparse the response). Bodies
// must be version-neutral (f64/bool/fix64/empty encode identically
// under every protocol version) because each server may have
// negotiated a different one.
func fan(servers []*serverConns, op byte, bodies func(i int) []byte) ([][]byte, []byte, error) {
	results := make([][]byte, len(servers))
	vers := make([]byte, len(servers))
	errs := make([]error, len(servers))
	var wg sync.WaitGroup
	for i := range servers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vers[i] = servers[i].wireVer()
			results[i], errs[i] = servers[i].roundTrip(vers[i], op, bodies(i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, vers, nil
}

// fanSame is fan with one shared request body (read-only ops).
func fanSame(servers []*serverConns, op byte, body []byte) ([][]byte, []byte, error) {
	return fan(servers, op, func(int) []byte { return body })
}

// popDue is the distributed form of Sharded.popDue: peek every server's
// poppable head, pick the global minimum with the in-process
// comparator, and commit the pop on the winner, rescanning if the head
// moved (a concurrent Release can wake an earlier shard between peek
// and commit — the same race the in-process scan revalidates).
func (rs *RemoteShards) popDue(now float64, claim bool) (frontier.Entry, int, bool) {
	if rs.broken() {
		return frontier.Entry{}, -1, false
	}
	t := rs.t()
	if len(t.servers) == 1 {
		// One server: its global pop is the cluster's, in one round trip.
		op := opPopDue
		if claim {
			op = opClaimDue
		}
		sc := t.servers[0]
		ver := sc.wireVer()
		e := newEnc(ver)
		e.fix64(rs.nextReq()).f64(now)
		resp, err := sc.roundTrip(ver, op, e.b)
		if err != nil {
			rs.fail(err)
			return frontier.Entry{}, -1, false
		}
		d := newDec(ver, resp)
		ent, ok := decodeEntry(d)
		if !ok {
			return frontier.Entry{}, -1, false
		}
		shard := -1
		if claim {
			shard = int(d.u32())
		}
		if d.finish() != nil {
			rs.fail(fmt.Errorf("cluster: bad pop response"))
			return frontier.Entry{}, -1, false
		}
		return ent, shard, true
	}

	var peek enc
	peek.f64(now).bool(claim) // version-neutral body, shared across servers
	for {
		heads, vers, err := fanSame(t.servers, opHeadDue, peek.b)
		if err != nil {
			rs.fail(err)
			return frontier.Entry{}, -1, false
		}
		best := -1
		var bestE frontier.Entry
		for i, resp := range heads {
			d := newDec(vers[i], resp)
			if ent, ok := decodeEntry(d); ok && d.finish() == nil &&
				(best < 0 || frontier.EntryBefore(ent, bestE)) {
				best, bestE = i, ent
			}
		}
		if best < 0 {
			return frontier.Entry{}, -1, false
		}
		sc := t.servers[best]
		ver := sc.wireVer()
		commit := newEnc(ver)
		commit.fix64(rs.nextReq()).f64(now).str(bestE.URL).bool(claim)
		resp, err := sc.roundTrip(ver, opPopDueMatch, commit.b)
		if err != nil {
			rs.fail(err)
			return frontier.Entry{}, -1, false
		}
		d := newDec(ver, resp)
		if ent, ok := decodeEntry(d); ok {
			local := int(d.u32())
			if d.finish() != nil {
				rs.fail(fmt.Errorf("cluster: bad pop response"))
				return frontier.Entry{}, -1, false
			}
			return ent, t.offsets[best] + local, true
		}
		// The winner's head moved between peek and commit; rescan.
	}
}

// PopDue implements frontier.ShardSet.
func (rs *RemoteShards) PopDue(now float64) (frontier.Entry, bool) {
	e, _, ok := rs.popDue(now, false)
	return e, ok
}

// ClaimDue implements frontier.ShardSet.
func (rs *RemoteShards) ClaimDue(now float64) (frontier.Entry, int, bool) {
	return rs.popDue(now, true)
}

// Release implements frontier.ShardSet.
func (rs *RemoteShards) Release(shard int, nextReady float64) {
	if rs.broken() {
		return
	}
	t := rs.t()
	si, local := t.serverOfShard(shard)
	sc := t.servers[si]
	ver := sc.wireVer()
	e := newEnc(ver)
	e.fix64(rs.nextReq()).u32(uint32(local)).f64(nextReady)
	if _, err := sc.roundTrip(ver, opRelease, e.b); err != nil {
		rs.fail(err)
	}
}

// Remove implements frontier.ShardSet.
func (rs *RemoteShards) Remove(url string) bool {
	if rs.broken() {
		return false
	}
	t := rs.t()
	sc := t.servers[t.serverOf(url)]
	ver := sc.wireVer()
	e := newEnc(ver)
	e.fix64(rs.nextReq()).str(url)
	resp, err := sc.roundTrip(ver, opRemove, e.b)
	if err != nil {
		rs.fail(err)
		return false
	}
	d := newDec(ver, resp)
	return d.bool() && d.finish() == nil
}

// Contains implements frontier.ShardSet.
func (rs *RemoteShards) Contains(url string) bool {
	if rs.broken() {
		return false
	}
	t := rs.t()
	sc := t.servers[t.serverOf(url)]
	ver := sc.wireVer()
	e := newEnc(ver)
	e.str(url)
	resp, err := sc.roundTrip(ver, opContains, e.b)
	if err != nil {
		rs.fail(err)
		return false
	}
	d := newDec(ver, resp)
	return d.bool() && d.finish() == nil
}

// Len implements frontier.ShardSet.
func (rs *RemoteShards) Len() int {
	if rs.broken() {
		return 0
	}
	resps, vers, err := fanSame(rs.t().servers, opLen, nil)
	if err != nil {
		rs.fail(err)
		return 0
	}
	n := 0
	for i, resp := range resps {
		d := newDec(vers[i], resp)
		n += int(d.u32())
	}
	return n
}

// URLs implements frontier.ShardSet.
func (rs *RemoteShards) URLs() []string {
	if rs.broken() {
		return nil
	}
	resps, vers, err := fanSame(rs.t().servers, opURLs, nil)
	if err != nil {
		rs.fail(err)
		return nil
	}
	var out []string
	for i, resp := range resps {
		d := newDec(vers[i], resp)
		out = append(out, decodeStrings(d, "")...)
		if d.finish() != nil {
			rs.fail(fmt.Errorf("cluster: bad URLs response"))
			return nil
		}
	}
	sort.Strings(out)
	return out
}

// Peek implements frontier.ShardSet.
func (rs *RemoteShards) Peek() (frontier.Entry, bool) {
	if rs.broken() {
		return frontier.Entry{}, false
	}
	resps, vers, err := fanSame(rs.t().servers, opPeek, nil)
	if err != nil {
		rs.fail(err)
		return frontier.Entry{}, false
	}
	found := false
	var bestE frontier.Entry
	for i, resp := range resps {
		d := newDec(vers[i], resp)
		if ent, ok := decodeEntry(d); ok && d.finish() == nil &&
			(!found || frontier.EntryBefore(ent, bestE)) {
			found, bestE = true, ent
		}
	}
	return bestE, found
}

// NextEvent implements frontier.ShardSet.
func (rs *RemoteShards) NextEvent() (float64, bool) {
	if rs.broken() {
		return 0, false
	}
	resps, vers, err := fanSame(rs.t().servers, opNextEvent, nil)
	if err != nil {
		rs.fail(err)
		return 0, false
	}
	found := false
	var next float64
	for i, resp := range resps {
		d := newDec(vers[i], resp)
		ok, t := d.bool(), d.f64()
		if d.finish() == nil && ok && (!found || t < next) {
			found, next = true, t
		}
	}
	return next, found
}

// Reset empties every server's shards (claims and politeness deadlines
// included), so sequential experiments over one cluster each start
// from a clean frontier. Not part of frontier.ShardSet: local frontiers
// are simply rebuilt.
func (rs *RemoteShards) Reset() error {
	if err := rs.Err(); err != nil {
		return err
	}
	if _, _, err := fan(rs.t().servers, opReset, func(int) []byte {
		var e enc
		e.fix64(rs.nextReq())
		return e.b
	}); err != nil {
		rs.fail(err)
		return err
	}
	return nil
}

// ShardLens returns every server's per-shard entry counts, concatenated
// in global shard order (observability, mirroring Sharded.ShardLens).
func (rs *RemoteShards) ShardLens() []int {
	if rs.broken() {
		return nil
	}
	resps, vers, err := fanSame(rs.t().servers, opStats, nil)
	if err != nil {
		rs.fail(err)
		return nil
	}
	var out []int
	for i, resp := range resps {
		d := newDec(vers[i], resp)
		n := int(d.u32())
		for j := 0; j < n && d.finish() == nil; j++ {
			out = append(out, int(d.u32()))
		}
	}
	return out
}
