package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"webevolve/internal/frontier"
	"webevolve/internal/webgraph"
)

// Dialer opens one connection to a shard server.
type Dialer func() (net.Conn, error)

// Options configures a RemoteShards client.
type Options struct {
	// PolitenessDays, when >= 0, is applied to every server at connect
	// time (the client owns the crawl policy). Negative leaves each
	// server's own configuration in place.
	PolitenessDays float64
	// ConnsPerServer sizes the per-server connection pool (default 2):
	// the dispatcher's claims and the workers' releases/pushes can be in
	// flight at once.
	ConnsPerServer int
}

// RemoteShards implements frontier.ShardSet over a cluster of shard
// servers, so the crawl engines run unchanged with their frontier on
// other machines. URLs are routed by host hash to a server (all pages
// of one site live on one server, preserving shard politeness and
// claim exclusivity), and each server shards by host again internally;
// global shard indices are the concatenation of the servers' local
// index spaces.
//
// The ShardSet methods carry no errors, so transport failures are
// sticky: the first one is recorded, every later operation becomes a
// no-op returning zero values (the engine winds down as if the
// frontier drained), and callers check Err when the crawl ends. A
// cluster is owned by one client at a time; the peek-then-commit pop
// protocol retries when concurrent releases move a server's head, but
// two independent crawlers popping one cluster would interleave
// schedules.
type RemoteShards struct {
	servers []*serverConns
	// offsets[i] is the global index of server i's local shard 0;
	// counts[i] its local shard count.
	offsets []int
	counts  []int
	total   int

	failMu sync.Mutex
	failed error
}

var _ frontier.ShardSet = (*RemoteShards)(nil)

// clientConn is one pooled connection with its buffered reader.
type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
}

// serverConns is the connection pool for one server.
type serverConns struct {
	pool chan *clientConn
}

// roundTrip sends one request and reads its response over a pooled
// connection. Failed connections go back into the pool closed, so the
// sticky-failure path never strands a waiter on an empty pool.
func (sc *serverConns) roundTrip(op byte, body []byte) ([]byte, error) {
	cc := <-sc.pool
	status, resp, err := func() (byte, []byte, error) {
		if err := writeFrame(cc.conn, op, body); err != nil {
			return 0, nil, err
		}
		return readFrame(cc.r)
	}()
	if err != nil {
		cc.conn.Close()
		sc.pool <- cc
		return nil, fmt.Errorf("cluster: %s: %w", cc.conn.RemoteAddr(), err)
	}
	sc.pool <- cc
	if status != statusOK {
		return nil, fmt.Errorf("cluster: %s: server error: %s", cc.conn.RemoteAddr(), resp)
	}
	return resp, nil
}

// Dial connects to a cluster of shard servers, one Dialer per server.
// The order of dialers is the cluster topology: it determines URL
// routing, so every client of one cluster must list the servers in the
// same order.
func Dial(dialers []Dialer, opts Options) (*RemoteShards, error) {
	if len(dialers) == 0 {
		return nil, errors.New("cluster: no shard servers")
	}
	conns := opts.ConnsPerServer
	if conns < 1 {
		conns = 2
	}
	rs := &RemoteShards{}
	for i, dial := range dialers {
		sc := &serverConns{pool: make(chan *clientConn, conns)}
		for c := 0; c < conns; c++ {
			conn, err := dial()
			if err != nil {
				rs.closeAll()
				return nil, fmt.Errorf("cluster: server %d: %w", i, err)
			}
			sc.pool <- &clientConn{conn: conn, r: bufio.NewReader(conn)}
		}
		rs.servers = append(rs.servers, sc)
	}
	// Hello: version check, optional politeness handover, shard counts.
	var hello enc
	if opts.PolitenessDays >= 0 {
		hello.bool(true).f64(opts.PolitenessDays)
	} else {
		hello.bool(false)
	}
	for i, sc := range rs.servers {
		resp, err := sc.roundTrip(opHello, hello.b)
		if err != nil {
			rs.closeAll()
			return nil, err
		}
		d := &dec{b: resp}
		n := int(d.u32())
		if d.finish() != nil || n < 1 {
			rs.closeAll()
			return nil, fmt.Errorf("cluster: server %d: bad hello response", i)
		}
		rs.offsets = append(rs.offsets, rs.total)
		rs.counts = append(rs.counts, n)
		rs.total += n
	}
	return rs, nil
}

// DialTCP connects to shard servers at the given host:port addresses.
func DialTCP(addrs []string, opts Options) (*RemoteShards, error) {
	dialers := make([]Dialer, len(addrs))
	for i, a := range addrs {
		a := a
		dialers[i] = func() (net.Conn, error) { return net.Dial("tcp", a) }
	}
	return Dial(dialers, opts)
}

// Loopback connects to in-process servers over net.Pipe — no sockets,
// fully deterministic, used by tests and benchmarks to run distributed
// crawls inside one process.
func Loopback(servers []*ShardServer, opts Options) (*RemoteShards, error) {
	dialers := make([]Dialer, len(servers))
	for i, s := range servers {
		dialers[i] = s.Pipe
	}
	return Dial(dialers, opts)
}

// fail records the first transport error; later operations no-op.
func (rs *RemoteShards) fail(err error) {
	rs.failMu.Lock()
	if rs.failed == nil {
		rs.failed = err
	}
	rs.failMu.Unlock()
}

// broken reports whether a transport error has been recorded.
func (rs *RemoteShards) broken() bool { return rs.Err() != nil }

// Err returns the sticky transport error, if any. Check it when a
// crawl winds down: after a failure the ShardSet methods return zero
// values, which the engines read as a drained frontier.
func (rs *RemoteShards) Err() error {
	rs.failMu.Lock()
	defer rs.failMu.Unlock()
	return rs.failed
}

func (rs *RemoteShards) closeAll() {
	for _, sc := range rs.servers {
		for i := 0; i < cap(sc.pool); i++ {
			select {
			case cc := <-sc.pool:
				cc.conn.Close()
			default:
			}
		}
	}
}

// Close closes every pooled connection.
func (rs *RemoteShards) Close() error {
	rs.closeAll()
	return nil
}

// NumServers returns the cluster size.
func (rs *RemoteShards) NumServers() int { return len(rs.servers) }

// NumShards returns the total shard count across all servers.
func (rs *RemoteShards) NumShards() int { return rs.total }

// serverOf routes a URL's host to its owning server.
func (rs *RemoteShards) serverOf(url string) int {
	return frontier.HostShard(webgraph.SiteOf(url), len(rs.servers))
}

// ShardOf returns the global shard index url hashes to: the owning
// server's offset plus the server's own local shard for the host.
func (rs *RemoteShards) ShardOf(url string) int {
	host := webgraph.SiteOf(url)
	si := frontier.HostShard(host, len(rs.servers))
	return rs.offsets[si] + frontier.HostShard(host, rs.counts[si])
}

// serverOfShard inverts the global shard index to (server, local).
func (rs *RemoteShards) serverOfShard(shard int) (int, int) {
	for i := len(rs.offsets) - 1; i >= 0; i-- {
		if shard >= rs.offsets[i] {
			return i, shard - rs.offsets[i]
		}
	}
	return 0, shard
}

// Push implements frontier.ShardSet.
func (rs *RemoteShards) Push(url string, due, priority float64) {
	if rs.broken() {
		return
	}
	var e enc
	e.str(url).f64(due).f64(priority)
	if _, err := rs.servers[rs.serverOf(url)].roundTrip(opPush, e.b); err != nil {
		rs.fail(err)
	}
}

// fan sends one request to every server concurrently and collects the
// responses indexed by server.
func (rs *RemoteShards) fan(op byte, body []byte) ([][]byte, error) {
	results := make([][]byte, len(rs.servers))
	errs := make([]error, len(rs.servers))
	var wg sync.WaitGroup
	for i := range rs.servers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = rs.servers[i].roundTrip(op, body)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// popDue is the distributed form of Sharded.popDue: peek every server's
// poppable head, pick the global minimum with the in-process
// comparator, and commit the pop on the winner, rescanning if the head
// moved (a concurrent Release can wake an earlier shard between peek
// and commit — the same race the in-process scan revalidates).
func (rs *RemoteShards) popDue(now float64, claim bool) (frontier.Entry, int, bool) {
	if rs.broken() {
		return frontier.Entry{}, -1, false
	}
	if len(rs.servers) == 1 {
		// One server: its global pop is the cluster's, in one round trip.
		op := opPopDue
		if claim {
			op = opClaimDue
		}
		var e enc
		e.f64(now)
		resp, err := rs.servers[0].roundTrip(op, e.b)
		if err != nil {
			rs.fail(err)
			return frontier.Entry{}, -1, false
		}
		d := &dec{b: resp}
		ent, ok := decodeEntry(d)
		if !ok {
			return frontier.Entry{}, -1, false
		}
		shard := -1
		if claim {
			shard = int(d.u32())
		}
		if d.finish() != nil {
			rs.fail(fmt.Errorf("cluster: bad pop response"))
			return frontier.Entry{}, -1, false
		}
		return ent, shard, true
	}

	var peek enc
	peek.f64(now).bool(claim)
	for {
		heads, err := rs.fan(opHeadDue, peek.b)
		if err != nil {
			rs.fail(err)
			return frontier.Entry{}, -1, false
		}
		best := -1
		var bestE frontier.Entry
		for i, resp := range heads {
			d := &dec{b: resp}
			if ent, ok := decodeEntry(d); ok && d.finish() == nil &&
				(best < 0 || frontier.EntryBefore(ent, bestE)) {
				best, bestE = i, ent
			}
		}
		if best < 0 {
			return frontier.Entry{}, -1, false
		}
		var commit enc
		commit.f64(now).str(bestE.URL).bool(claim)
		resp, err := rs.servers[best].roundTrip(opPopDueMatch, commit.b)
		if err != nil {
			rs.fail(err)
			return frontier.Entry{}, -1, false
		}
		d := &dec{b: resp}
		if ent, ok := decodeEntry(d); ok {
			local := int(d.u32())
			if d.finish() != nil {
				rs.fail(fmt.Errorf("cluster: bad pop response"))
				return frontier.Entry{}, -1, false
			}
			return ent, rs.offsets[best] + local, true
		}
		// The winner's head moved between peek and commit; rescan.
	}
}

// PopDue implements frontier.ShardSet.
func (rs *RemoteShards) PopDue(now float64) (frontier.Entry, bool) {
	e, _, ok := rs.popDue(now, false)
	return e, ok
}

// ClaimDue implements frontier.ShardSet.
func (rs *RemoteShards) ClaimDue(now float64) (frontier.Entry, int, bool) {
	return rs.popDue(now, true)
}

// Release implements frontier.ShardSet.
func (rs *RemoteShards) Release(shard int, nextReady float64) {
	if rs.broken() {
		return
	}
	si, local := rs.serverOfShard(shard)
	var e enc
	e.u32(uint32(local)).f64(nextReady)
	if _, err := rs.servers[si].roundTrip(opRelease, e.b); err != nil {
		rs.fail(err)
	}
}

// Remove implements frontier.ShardSet.
func (rs *RemoteShards) Remove(url string) bool {
	if rs.broken() {
		return false
	}
	var e enc
	e.str(url)
	resp, err := rs.servers[rs.serverOf(url)].roundTrip(opRemove, e.b)
	if err != nil {
		rs.fail(err)
		return false
	}
	d := &dec{b: resp}
	return d.bool() && d.finish() == nil
}

// Contains implements frontier.ShardSet.
func (rs *RemoteShards) Contains(url string) bool {
	if rs.broken() {
		return false
	}
	var e enc
	e.str(url)
	resp, err := rs.servers[rs.serverOf(url)].roundTrip(opContains, e.b)
	if err != nil {
		rs.fail(err)
		return false
	}
	d := &dec{b: resp}
	return d.bool() && d.finish() == nil
}

// Len implements frontier.ShardSet.
func (rs *RemoteShards) Len() int {
	if rs.broken() {
		return 0
	}
	resps, err := rs.fan(opLen, nil)
	if err != nil {
		rs.fail(err)
		return 0
	}
	n := 0
	for _, resp := range resps {
		d := &dec{b: resp}
		n += int(d.u32())
	}
	return n
}

// URLs implements frontier.ShardSet.
func (rs *RemoteShards) URLs() []string {
	if rs.broken() {
		return nil
	}
	resps, err := rs.fan(opURLs, nil)
	if err != nil {
		rs.fail(err)
		return nil
	}
	var out []string
	for _, resp := range resps {
		d := &dec{b: resp}
		n := int(d.u32())
		for i := 0; i < n && d.finish() == nil; i++ {
			out = append(out, d.str())
		}
		if d.finish() != nil {
			rs.fail(fmt.Errorf("cluster: bad URLs response"))
			return nil
		}
	}
	sort.Strings(out)
	return out
}

// Peek implements frontier.ShardSet.
func (rs *RemoteShards) Peek() (frontier.Entry, bool) {
	if rs.broken() {
		return frontier.Entry{}, false
	}
	resps, err := rs.fan(opPeek, nil)
	if err != nil {
		rs.fail(err)
		return frontier.Entry{}, false
	}
	found := false
	var bestE frontier.Entry
	for _, resp := range resps {
		d := &dec{b: resp}
		if ent, ok := decodeEntry(d); ok && d.finish() == nil &&
			(!found || frontier.EntryBefore(ent, bestE)) {
			found, bestE = true, ent
		}
	}
	return bestE, found
}

// NextEvent implements frontier.ShardSet.
func (rs *RemoteShards) NextEvent() (float64, bool) {
	if rs.broken() {
		return 0, false
	}
	resps, err := rs.fan(opNextEvent, nil)
	if err != nil {
		rs.fail(err)
		return 0, false
	}
	found := false
	var next float64
	for _, resp := range resps {
		d := &dec{b: resp}
		ok, t := d.bool(), d.f64()
		if d.finish() == nil && ok && (!found || t < next) {
			found, next = true, t
		}
	}
	return next, found
}

// Reset empties every server's shards (claims and politeness deadlines
// included), so sequential experiments over one cluster each start
// from a clean frontier. Not part of frontier.ShardSet: local frontiers
// are simply rebuilt.
func (rs *RemoteShards) Reset() error {
	if err := rs.Err(); err != nil {
		return err
	}
	if _, err := rs.fan(opReset, nil); err != nil {
		rs.fail(err)
		return err
	}
	return nil
}

// ShardLens returns every server's per-shard entry counts, concatenated
// in global shard order (observability, mirroring Sharded.ShardLens).
func (rs *RemoteShards) ShardLens() []int {
	if rs.broken() {
		return nil
	}
	resps, err := rs.fan(opStats, nil)
	if err != nil {
		rs.fail(err)
		return nil
	}
	var out []int
	for _, resp := range resps {
		d := &dec{b: resp}
		n := int(d.u32())
		for i := 0; i < n && d.finish() == nil; i++ {
			out = append(out, int(d.u32()))
		}
	}
	return out
}
