package cluster

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"webevolve/internal/frontier"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, ver := range []byte{helloProto, ProtoVersion} {
		var buf bytes.Buffer
		body := []byte("hello shard world")
		wrote, err := writeFrame(&buf, ver, opPush, body)
		if err != nil {
			t.Fatal(err)
		}
		if wrote != buf.Len() {
			t.Fatalf("v%d: writeFrame reported %d bytes, wrote %d", ver, wrote, buf.Len())
		}
		gotVer, kind, got, wire, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotVer != ver || kind != opPush || !bytes.Equal(got, body) {
			t.Fatalf("frame mangled: ver=%d kind=%d body=%q", gotVer, kind, got)
		}
		if wire != wrote {
			t.Fatalf("v%d: readFrame consumed %d bytes, writeFrame wrote %d", ver, wire, wrote)
		}
	}
}

// TestFrameCompression pins the v6 compression flag: a large repetitive
// body ships smaller than raw under v6 and still round-trips, while the
// same body under v5 stays raw.
func TestFrameCompression(t *testing.T) {
	body := bytes.Repeat([]byte("http://site000.com/page "), 200)
	var v6 bytes.Buffer
	n6, err := writeFrame(&v6, ProtoVersion, opPushBatch, body)
	if err != nil {
		t.Fatal(err)
	}
	if n6 >= len(body) {
		t.Fatalf("v6 frame (%dB) did not compress a %dB repetitive body", n6, len(body))
	}
	_, _, got, _, err := readFrame(&v6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("compressed body did not round-trip")
	}
	var v5 bytes.Buffer
	n5, err := writeFrame(&v5, helloProto, opPushBatch, body)
	if err != nil {
		t.Fatal(err)
	}
	if n5 < len(body) {
		t.Fatalf("v5 frame compressed (%dB < %dB body): pre-v6 peers cannot inflate", n5, len(body))
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, helloProto, opPush, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Flipped payload byte: CRC must catch it.
	b := frame()
	b[len(b)-1] ^= 0xff
	if _, _, _, _, err := readFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	// Wrong protocol version.
	b = frame()
	b[8] = ProtoVersion + 1
	// Recompute the CRC so only the version check can object.
	var rewritten bytes.Buffer
	rewritten.Write(b[:4])
	crc := crc32IEEE(b[8:])
	rewritten.Write(crc)
	rewritten.Write(b[8:])
	_, _, _, _, err := readFrame(&rewritten)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
	// Truncated frame.
	b = frame()
	if _, _, _, _, err := readFrame(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestBodyCodecRoundTrip(t *testing.T) {
	var e enc
	e.u32(42).f64(3.25).bool(true).str("http://site000.com/p00001").bool(false)
	d := &dec{b: e.b}
	if v := d.u32(); v != 42 {
		t.Fatalf("u32 = %d", v)
	}
	if v := d.f64(); v != 3.25 {
		t.Fatalf("f64 = %v", v)
	}
	if !d.bool() {
		t.Fatal("bool true lost")
	}
	if v := d.str(); v != "http://site000.com/p00001" {
		t.Fatalf("str = %q", v)
	}
	if d.bool() {
		t.Fatal("bool false lost")
	}
	if err := d.finish(); err != nil {
		t.Fatal(err)
	}
	// Over-read poisons the decoder rather than panicking.
	if d.u32() != 0 || d.finish() == nil {
		t.Fatal("over-read not caught")
	}
}

// newCluster starts n loopback servers with shardsEach shards and dials
// them; callers get the client plus the servers for direct inspection.
func newCluster(t testing.TB, n, shardsEach int, politeness float64) (*RemoteShards, []*ShardServer) {
	t.Helper()
	servers := make([]*ShardServer, n)
	for i := range servers {
		servers[i] = NewShardServer(frontier.NewSharded(shardsEach))
	}
	rs, err := Loopback(servers, Options{PolitenessDays: politeness})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rs.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return rs, servers
}

// sameEntry compares the wire-visible fields (the local Entry also
// carries an unexported heap index).
func sameEntry(a, b frontier.Entry) bool {
	return a.URL == b.URL && a.Due == b.Due && a.Priority == b.Priority
}

// testURLs builds a deterministic URL population across many hosts.
func testURLs(hosts, pagesPerHost int) []string {
	var out []string
	for h := 0; h < hosts; h++ {
		for p := 0; p < pagesPerHost; p++ {
			out = append(out, fmt.Sprintf("http://site%03d.com/p%05d", h, p))
		}
	}
	return out
}

// TestRemoteMatchesLocalPopOrder is the protocol's core contract: with
// zero politeness, the pop sequence through RemoteShards equals the
// local Sharded's regardless of how shards are spread across servers.
func TestRemoteMatchesLocalPopOrder(t *testing.T) {
	urls := testURLs(12, 6)
	for _, topo := range []struct{ servers, shardsEach int }{
		{1, 8}, {2, 4}, {4, 8},
	} {
		local := frontier.NewSharded(8)
		remote, _ := newCluster(t, topo.servers, topo.shardsEach, 0)
		for i, u := range urls {
			due := float64((i * 7) % 13)
			prio := float64(i % 3)
			local.Push(u, due, prio)
			remote.Push(u, due, prio)
		}
		if local.Len() != remote.Len() {
			t.Fatalf("%d servers: Len %d vs %d", topo.servers, remote.Len(), local.Len())
		}
		lu, ru := local.URLs(), remote.URLs()
		if len(lu) != len(ru) {
			t.Fatalf("%d servers: URLs %d vs %d", topo.servers, len(ru), len(lu))
		}
		for i := range lu {
			if lu[i] != ru[i] {
				t.Fatalf("%d servers: URLs diverge at %d: %s vs %s", topo.servers, i, ru[i], lu[i])
			}
		}
		for now := 0.0; now < 14; now++ {
			for {
				le, lok := local.PopDue(now)
				re, rok := remote.PopDue(now)
				if lok != rok {
					t.Fatalf("%d servers: day %v: ok %v vs %v", topo.servers, now, rok, lok)
				}
				if !lok {
					break
				}
				if !sameEntry(le, re) {
					t.Fatalf("%d servers: day %v: pop %+v vs %+v", topo.servers, now, re, le)
				}
				// Reschedule half the pops to exercise Push during drain.
				if int(le.Due)%2 == 0 {
					local.Push(le.URL, le.Due+20, le.Priority)
					remote.Push(re.URL, re.Due+20, re.Priority)
				}
			}
		}
		if err := remote.Err(); err != nil {
			t.Fatalf("%d servers: %v", topo.servers, err)
		}
	}
}

// TestRemoteMatchesLocalWithPoliteness pins the politeness-gap path:
// with one server hosting the same shard layout, remote and local pop
// identical (possibly politeness-deferred) sequences, and NextEvent
// agrees.
func TestRemoteMatchesLocalWithPoliteness(t *testing.T) {
	const gap = 2.0
	local := frontier.NewShardedPolite(4, gap)
	remote, servers := newCluster(t, 1, 4, gap)
	if got := servers[0].Shards().Politeness(); got != gap {
		t.Fatalf("hello did not apply politeness: %v", got)
	}
	urls := testURLs(8, 3)
	for i, u := range urls {
		local.Push(u, float64(i%5), 0)
		remote.Push(u, float64(i%5), 0)
	}
	for now := 0.0; now < 30; now += 0.5 {
		for {
			le, lok := local.PopDue(now)
			re, rok := remote.PopDue(now)
			if lok != rok {
				t.Fatalf("day %v: ok %v vs %v", now, rok, lok)
			}
			if !lok {
				break
			}
			if !sameEntry(le, re) {
				t.Fatalf("day %v: pop %+v vs %+v", now, re, le)
			}
		}
		lt, lok := local.NextEvent()
		rt, rok := remote.NextEvent()
		if lok != rok || (lok && lt != rt) {
			t.Fatalf("day %v: NextEvent (%v,%v) vs (%v,%v)", now, rt, rok, lt, lok)
		}
	}
}

// TestRemoteClaimRelease checks exclusive claims across the wire: a
// claimed shard yields nothing until released, and the global shard
// index maps back to the right server.
func TestRemoteClaimRelease(t *testing.T) {
	remote, _ := newCluster(t, 2, 4, 0)
	urls := testURLs(10, 2)
	for _, u := range urls {
		remote.Push(u, 0, 0)
	}
	claimed := make(map[int]bool)
	var held []int
	for {
		e, sid, ok := remote.ClaimDue(100)
		if !ok {
			break
		}
		if sid < 0 || sid >= remote.NumShards() {
			t.Fatalf("claimed shard %d out of range [0,%d)", sid, remote.NumShards())
		}
		if claimed[sid] {
			t.Fatalf("shard %d claimed twice without release", sid)
		}
		if want := remote.ShardOf(e.URL); want != sid {
			t.Fatalf("entry %s from shard %d, ShardOf says %d", e.URL, sid, want)
		}
		claimed[sid] = true
		held = append(held, sid)
	}
	// All distinct occupied shards are now held; the queue still has
	// entries but nothing is claimable.
	if remote.Len() == 0 {
		t.Fatal("expected entries left behind claimed shards")
	}
	if _, _, ok := remote.ClaimDue(100); ok {
		t.Fatal("claim succeeded with every shard held")
	}
	for _, sid := range held {
		remote.Release(sid, 0)
	}
	if _, _, ok := remote.ClaimDue(100); !ok {
		t.Fatal("claim failed after release")
	}
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteRemoveContainsPeek covers the remaining ops over the wire.
func TestRemoteRemoveContainsPeek(t *testing.T) {
	remote, _ := newCluster(t, 2, 2, 0)
	remote.Push("http://site001.com/a", 5, 1)
	remote.Push("http://site002.com/b", 3, 0)
	if !remote.Contains("http://site001.com/a") {
		t.Fatal("Contains missed a pushed URL")
	}
	if remote.Contains("http://site001.com/zzz") {
		t.Fatal("Contains invented a URL")
	}
	if e, ok := remote.Peek(); !ok || e.URL != "http://site002.com/b" {
		t.Fatalf("Peek = %+v, %v", e, ok)
	}
	if ev, ok := remote.NextEvent(); !ok || ev != 3 {
		t.Fatalf("NextEvent = %v, %v", ev, ok)
	}
	if !remote.Remove("http://site002.com/b") {
		t.Fatal("Remove missed a pushed URL")
	}
	if remote.Remove("http://site002.com/b") {
		t.Fatal("Remove repeated")
	}
	if n := remote.Len(); n != 1 {
		t.Fatalf("Len = %d", n)
	}
	lens := remote.ShardLens()
	if len(lens) != remote.NumShards() {
		t.Fatalf("ShardLens returned %d shards, want %d", len(lens), remote.NumShards())
	}
	total := 0
	for _, n := range lens {
		total += n
	}
	if total != 1 {
		t.Fatalf("ShardLens total = %d", total)
	}
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteOverTCP runs the client against real TCP listeners.
func TestRemoteOverTCP(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := NewShardServer(frontier.NewSharded(4))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go srv.Serve() //nolint:errcheck — exits with ErrServerClosed on Close
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr().String())
	}
	remote, err := DialTCP(addrs, Options{PolitenessDays: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	urls := testURLs(6, 4)
	for i, u := range urls {
		remote.Push(u, float64(i%4), 0)
	}
	if n := remote.Len(); n != len(urls) {
		t.Fatalf("Len = %d, want %d", n, len(urls))
	}
	popped := 0
	for {
		_, ok := remote.PopDue(10)
		if !ok {
			break
		}
		popped++
	}
	if popped != len(urls) {
		t.Fatalf("popped %d, want %d", popped, len(urls))
	}
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteStickyError checks the failure contract: after the cluster
// goes away for good (retries disabled here, so the first failure is
// final), operations return zero values and Err reports the first
// transport error.
func TestRemoteStickyError(t *testing.T) {
	servers := []*ShardServer{NewShardServer(frontier.NewSharded(4))}
	remote, err := Loopback(servers, Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	remote.Push("http://site001.com/a", 0, 0)
	servers[0].Close()
	// The pooled connections are now closed; the next op must fail.
	remote.Push("http://site001.com/b", 0, 0)
	if err := remote.Err(); err == nil {
		t.Fatal("no sticky error after server close")
	}
	if _, ok := remote.PopDue(10); ok {
		t.Fatal("PopDue succeeded on a failed cluster")
	}
	if n := remote.Len(); n != 0 {
		t.Fatalf("Len = %d on a failed cluster", n)
	}
}

// crc32IEEE is a test helper returning the little-endian CRC bytes.
func crc32IEEE(b []byte) []byte {
	var e enc
	e.u32(crc32.ChecksumIEEE(b))
	return e.b
}
