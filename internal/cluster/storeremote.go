package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"webevolve/internal/registry"
	"webevolve/internal/store"
)

// RemoteStore is the client for one or more store servers (StoreServer
// / storerd): it hands out store.Collection implementations whose
// every operation is a wire round trip, reusing the shard client's
// pooled connections and redial/retry/backoff machinery. Mutating ops
// carry request IDs the server dedups, so a retry after a broken
// connection is applied exactly once.
//
// With several members (DialStores / DialStoreRegistry), each
// collection is pinned to one member — the consistent-hash owner of
// its *name* — when it is first opened, and every op on that
// collection goes to the pinned member for the collection's lifetime.
// Store data is NOT migrated on membership change: a collection
// created under one member set may be unreachable under another
// (documented limitation; the store is a cache of the web, and a miss
// re-fetches). Admin ops (ListCollections, Reset, DropCollection) fan
// out to every member.
//
// Unlike the frontier's error-free ShardSet, store.Collection returns
// errors, so transport failures surface directly from each call; the
// first one is also recorded and available from Err for the two
// methods (Len, URLs) whose signatures cannot carry it.
type RemoteStore struct {
	members []*serverConns
	ring    *Ring

	reqBase uint64
	reqSeq  atomic.Uint64

	closed atomic.Bool

	failMu sync.Mutex
	failed error
}

// DialStore connects to a single store server.
func DialStore(dial Dialer, opts Options) (*RemoteStore, error) {
	return DialStores([]string{"store server"}, func(string) Dialer { return dial }, opts)
}

// DialStores connects to the named store servers; collection names are
// consistent-hashed across them (see the RemoteStore doc). Names must
// be unique and sort-stable across clients (addresses are).
func DialStores(names []string, dialFor func(name string) Dialer, opts Options) (*RemoteStore, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: no store servers")
	}
	rs := &RemoteStore{reqBase: randomReqBase(), ring: NewRing(names, 0)}
	for _, name := range rs.ring.Members() {
		sc := newServerConns(name, dialFor(name), opts, &rs.closed)
		// The store hello body is empty pre-v6; a v6-capable client's
		// offer is the single trailing byte (pre-v6 servers ignore it).
		sc.hello = nil
		if mp := opts.maxProto(); mp >= protoV6 {
			sc.hello = []byte{mp}
		}
		sc.helloOp = opStoreHello
		sc.checkHello = sc.checkStoreHello
		if err := sc.dialEager(sc.hello, name+" (%v)"); err != nil {
			rs.closed.Store(true)
			for _, prev := range rs.members {
				prev.drainClose()
			}
			return nil, fmt.Errorf("cluster: %s: %w", name, err)
		}
		rs.members = append(rs.members, sc)
	}
	return rs, nil
}

// DialStoreTCP connects to a store server at a host:port address.
func DialStoreTCP(addr string, opts Options) (*RemoteStore, error) {
	return DialStore(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, opts.dialTimeout())
	}, opts)
}

// DialStoreRegistry connects to every store server registered at the
// given registry address, over TCP. The member set is fixed at dial
// time: stores are not migrated, so a client keeps the pinning it
// resolved (re-dial to pick up joins).
func DialStoreRegistry(registryAddr string, opts Options) (*RemoteStore, error) {
	ms, err := registry.NewClient(registryAddr).Membership()
	if err != nil {
		return nil, fmt.Errorf("cluster: membership: %w", err)
	}
	stores := ms.Store()
	if len(stores) == 0 {
		return nil, fmt.Errorf("cluster: no store servers registered (epoch %d)", ms.Epoch)
	}
	return DialStores(memberAddrs(stores), func(addr string) Dialer {
		return func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, opts.dialTimeout())
		}
	}, opts)
}

// scFor returns the member a collection name is pinned to.
func (rs *RemoteStore) scFor(name string) *serverConns {
	return rs.members[rs.ring.Owner(rs.ring.PartOfKey(name))]
}

// LoopbackStore connects to an in-process store server over net.Pipe —
// no sockets, fully deterministic, for tests and benchmarks.
func LoopbackStore(srv *StoreServer, opts Options) (*RemoteStore, error) {
	return DialStore(srv.Pipe, opts)
}

// nextReq returns a fresh request ID (never zero).
func (rs *RemoteStore) nextReq() uint64 {
	id := rs.reqBase + rs.reqSeq.Add(1)
	if id == 0 {
		id = rs.reqBase + rs.reqSeq.Add(1)
	}
	return id
}

// fail records the first transport error for Err.
func (rs *RemoteStore) fail(err error) error {
	rs.failMu.Lock()
	if rs.failed == nil {
		rs.failed = err
	}
	rs.failMu.Unlock()
	return err
}

// Err returns the first transport error, if any. Collection calls
// return their errors directly; Err additionally catches failures in
// Len and URLs, whose signatures cannot.
func (rs *RemoteStore) Err() error {
	rs.failMu.Lock()
	defer rs.failMu.Unlock()
	return rs.failed
}

// RoundTrips returns the request frames sent (retries included),
// summed across members.
func (rs *RemoteStore) RoundTrips() int64 {
	var n int64
	for _, sc := range rs.members {
		n += sc.trips.Load()
	}
	return n
}

// WireBytes returns the total bytes sent to and received from the
// store servers (frame overhead included) — see RemoteShards.WireBytes.
func (rs *RemoteStore) WireBytes() (in, out int64) {
	for _, sc := range rs.members {
		in += sc.bytesIn.Load()
		out += sc.bytesOut.Load()
	}
	return in, out
}

// Close closes the pooled connections. Server-side collections stay
// open (and, for a disk backend, durable): closing the client of a
// persistent store must not destroy the store.
func (rs *RemoteStore) Close() error {
	rs.closed.Store(true)
	for _, sc := range rs.members {
		sc.drainClose()
	}
	return nil
}

// ListCollections returns the names of every collection on every
// member (open or on disk), merged and sorted.
func (rs *RemoteStore) ListCollections() ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, sc := range rs.members {
		ver := sc.wireVer()
		resp, err := sc.roundTrip(ver, opStoreList, nil)
		if err != nil {
			return nil, rs.fail(err)
		}
		d := newDec(ver, resp)
		for _, name := range decodeStrings(d, "") {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		if err := d.finish(); err != nil {
			return nil, rs.fail(fmt.Errorf("cluster: bad list response: %w", err))
		}
	}
	sort.Strings(out)
	return out, nil
}

// DropCollection closes a named collection server-side and removes its
// backing data — explicit reclamation for collections a vanished
// client left behind. It fans out to every member: after a membership
// change the collection may live on a member the current ring no
// longer pins it to.
func (rs *RemoteStore) DropCollection(name string) error {
	for _, sc := range rs.members {
		ver := sc.wireVer()
		e := newEnc(ver)
		e.fix64(rs.nextReq()).str(name)
		if _, err := sc.roundTrip(ver, opStoreDrop, e.b); err != nil {
			return rs.fail(err)
		}
	}
	return nil
}

// Reset drops every collection on every member, so sequential
// experiments over one store cluster each start from empty. Never
// called on a store being used incrementally (it deletes the data).
func (rs *RemoteStore) Reset() error {
	for _, sc := range rs.members {
		ver := sc.wireVer()
		e := newEnc(ver)
		e.fix64(rs.nextReq())
		if _, err := sc.roundTrip(ver, opStoreReset, e.b); err != nil {
			return rs.fail(err)
		}
	}
	return nil
}

// WireVersions returns the negotiated protocol version per member (0
// for a member whose pool has not completed a hello yet).
func (rs *RemoteStore) WireVersions() []int {
	out := make([]int, len(rs.members))
	for i, sc := range rs.members {
		out[i] = int(sc.proto.Load())
	}
	return out
}

// Collection returns the named collection, created empty on first use
// on the member the name hashes to; the pinning holds for the returned
// handle's lifetime. Its Close is a client-side no-op: the collection
// belongs to the server and survives for the next run (webcrawl's
// incremental contract).
func (rs *RemoteStore) Collection(name string) store.Collection {
	return &remoteColl{rs: rs, sc: rs.scFor(name), name: name}
}

// EphemeralCollection is Collection, except Close drops the collection
// server-side (data included) — the lifecycle of a retired shadow
// generation.
func (rs *RemoteStore) EphemeralCollection(name string) store.Collection {
	return &remoteColl{rs: rs, sc: rs.scFor(name), name: name, dropOnClose: true}
}

// remoteColl implements store.Collection over the wire, pinned to one
// member.
type remoteColl struct {
	rs          *RemoteStore
	sc          *serverConns
	name        string
	dropOnClose bool
}

var _ store.Collection = (*remoteColl)(nil)

// storePutChunk caps the records carried by one opStorePutBatch frame;
// the byte budget (storeChunkBytes) binds first when records carry
// page bodies, so no chunk can assemble an unsendable frame (the
// pushBatchChunk rationale, count- and byte-bounded).
const storePutChunk = 1024

// Put implements store.Collection.
func (c *remoteColl) Put(rec store.PageRecord) error {
	return c.PutBatch([]store.PageRecord{rec})
}

// PutBatch implements store.Collection.
func (c *remoteColl) PutBatch(recs []store.PageRecord) error {
	for _, rec := range recs {
		if rec.URL == "" {
			return errors.New("store: empty URL")
		}
	}
	for off := 0; off < len(recs); {
		// Grow the chunk until the count cap or the byte budget; a
		// single over-budget record still travels alone.
		end, bytes := off, 0
		for end < len(recs) && end-off < storePutChunk {
			sz := approxRecordSize(recs[end])
			if end > off && bytes+sz > storeChunkBytes {
				break
			}
			bytes += sz
			end++
		}
		chunk := recs[off:end]
		off = end
		ver := c.sc.wireVer()
		e := newEnc(ver)
		e.fix64(c.rs.nextReq())
		e.str(c.name)
		e.u32(uint32(len(chunk)))
		prev := ""
		for _, rec := range chunk {
			encodeRecord(&e, prev, rec)
			prev = rec.URL
		}
		if _, err := c.sc.roundTrip(ver, opStorePutBatch, e.b); err != nil {
			return c.rs.fail(err)
		}
	}
	return nil
}

// Get implements store.Collection.
func (c *remoteColl) Get(url string) (store.PageRecord, bool, error) {
	ver := c.sc.wireVer()
	e := newEnc(ver)
	e.str(c.name).str(url)
	resp, err := c.sc.roundTrip(ver, opStoreGet, e.b)
	if err != nil {
		return store.PageRecord{}, false, c.rs.fail(err)
	}
	d := newDec(ver, resp)
	if !d.bool() {
		return store.PageRecord{}, false, d.finish()
	}
	rec := decodeRecord(d, "")
	if err := d.finish(); err != nil {
		return store.PageRecord{}, false, c.rs.fail(fmt.Errorf("cluster: bad get response: %w", err))
	}
	return rec, true, nil
}

// Delete implements store.Collection.
func (c *remoteColl) Delete(url string) error {
	ver := c.sc.wireVer()
	e := newEnc(ver)
	e.fix64(c.rs.nextReq()).str(c.name).str(url)
	if _, err := c.sc.roundTrip(ver, opStoreDelete, e.b); err != nil {
		return c.rs.fail(err)
	}
	return nil
}

// Len implements store.Collection; transport failures are recorded in
// Err and read as empty.
func (c *remoteColl) Len() int {
	ver := c.sc.wireVer()
	e := newEnc(ver)
	e.str(c.name)
	resp, err := c.sc.roundTrip(ver, opStoreLen, e.b)
	if err != nil {
		c.rs.fail(err)
		return 0
	}
	d := newDec(ver, resp)
	return int(d.u32())
}

// URLs implements store.Collection; the sorted list arrives in bounded
// chunks, each resuming after the previous chunk's last URL. Transport
// failures are recorded in Err and read as empty.
func (c *remoteColl) URLs() []string {
	var out []string
	after := ""
	for {
		ver := c.sc.wireVer()
		e := newEnc(ver)
		e.str(c.name).str(after).u32(storeURLsChunk)
		resp, err := c.sc.roundTrip(ver, opStoreURLs, e.b)
		if err != nil {
			c.rs.fail(err)
			return nil
		}
		d := newDec(ver, resp)
		chunk := decodeStrings(d, after)
		done := d.bool()
		if d.finish() != nil {
			c.rs.fail(errors.New("cluster: bad URLs response"))
			return nil
		}
		out = append(out, chunk...)
		if done || len(chunk) == 0 {
			return out
		}
		after = out[len(out)-1]
	}
}

// Scan implements store.Collection: the sorted scan ships as bounded
// chunks, each resuming strictly after the previous chunk's last URL.
// Unlike the local disk scan (one pinned snapshot), records written
// between chunks may or may not be seen — the engines never scan a
// collection they are concurrently writing.
func (c *remoteColl) Scan(fn func(store.PageRecord) bool) error {
	return c.ScanFrom("", fn)
}

// ScanFrom implements store.Collection: the wire scan already resumes
// strictly after a URL per chunk, so a paged consumer's resume point
// simply seeds the first chunk's cursor.
func (c *remoteColl) ScanFrom(after string, fn func(store.PageRecord) bool) error {
	for {
		ver := c.sc.wireVer()
		e := newEnc(ver)
		e.str(c.name).str(after).u32(storeScanChunk)
		resp, err := c.sc.roundTrip(ver, opStoreScan, e.b)
		if err != nil {
			return c.rs.fail(err)
		}
		d := newDec(ver, resp)
		n := int(d.u32())
		for i := 0; i < n; i++ {
			rec := decodeRecord(d, after)
			if err := d.finish(); err != nil {
				return c.rs.fail(fmt.Errorf("cluster: bad scan response: %w", err))
			}
			if !fn(rec) {
				return nil
			}
			after = rec.URL
		}
		done := d.bool()
		if err := d.finish(); err != nil {
			return c.rs.fail(fmt.Errorf("cluster: bad scan response: %w", err))
		}
		if done {
			return nil
		}
	}
}

// Close implements store.Collection. For an ephemeral collection it
// drops the server-side data; otherwise the collection stays on the
// server and this is a no-op (see RemoteStore.Close).
func (c *remoteColl) Close() error {
	if !c.dropOnClose {
		return nil
	}
	ver := c.sc.wireVer()
	e := newEnc(ver)
	e.fix64(c.rs.nextReq()).str(c.name)
	if _, err := c.sc.roundTrip(ver, opStoreDrop, e.b); err != nil {
		return c.rs.fail(err)
	}
	return nil
}
