// Package cluster gives the sharded frontier a serialization boundary,
// so shards can live on other machines: a compact length-prefixed,
// CRC-framed, versioned wire protocol for the frontier.ShardSet
// operations, a ShardServer that hosts a set of in-process shards
// behind any net.Listener, and a RemoteShards client that implements
// frontier.ShardSet over one or more servers — so core.Crawler,
// core.UpdatePipeline and cmd/webcrawl run unchanged whether their
// shards are local or distributed (the paper's Figure 12 anticipates
// exactly this: "multiple CrawlModules may run in parallel").
//
// Distributed pops stay globally deterministic: RemoteShards asks every
// server for its earliest poppable head (OpHeadDue), picks the global
// minimum with the in-process comparator, and commits the pop on the
// winning server (OpPopDueMatch), retrying if the head moved — the same
// scan-then-revalidate dance frontier.Sharded performs over its
// in-process shards. A simulated crawl through RemoteShards is
// therefore bit-identical to the same crawl with local shards.
package cluster

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"sync"
)

// ProtoVersion is the wire protocol version; frames carrying a newer
// version, or one older than minProtoVersion, are rejected. Version 2
// added request IDs on every state-mutating op (exactly-once retry
// semantics), the batched push op, and the clear-claims bit in hello.
// Version 3 added the batched dispatch-round op (opRound), which folds
// a round's pops, drops and reschedules plus the next candidate peek
// into one frame per server. Version 4 added the repository-store op
// family (opStore*), served by StoreServer/storerd. Version 5 added
// the live-migration pair (opShardExport/opShardImport) that moves
// ring partitions between shard servers on a membership change.
// Version 6 changed the body encoding — varint u32/u64 fields,
// front-coded string lists, a per-frame flags byte with an optional
// deflate-compressed body — and is negotiated at hello, so v5 peers
// interoperate unchanged (see helloProto).
const ProtoVersion = 6

// protoV6 marks the first version with varint fields, front-coded
// string lists and the compression flag. Frames tagged below it carry
// the legacy fixed-width encoding and no flags byte.
const protoV6 = 6

// helloProto is the version every hello frame (request and response) is
// tagged with, regardless of what the peers end up speaking: the
// handshake must be decodable before any version has been negotiated.
// A v6-capable client appends its preferred version as a trailing byte
// to the hello body (v5 servers ignore trailing hello bytes); a
// v6-capable server answers with the negotiated version appended to the
// hello response. Every later frame is tagged with the negotiated
// version and is self-describing — the server decodes each request per
// its frame version and answers in kind, so clients pinned to
// different versions can share one server.
const helloProto = 5

// minProtoVersion is the oldest version readFrame still accepts.
// Versions 3 and 4 only added opcodes — every v2 frame body decodes
// unchanged — and WAL files and snapshots written by a v2 shardd must
// replay after an upgrade: rejecting them at the frame level would
// make recovery mistake the whole log for a torn tail and truncate it
// away. Version 6 frames carry their own encoding, so v2–v6 frames can
// interleave in one WAL and each decodes by its own tag.
const minProtoVersion = 2

// maxFrame bounds a frame payload; anything larger is treated as a
// corrupt or hostile stream. A compressed body must also declare an
// inflated size within this bound.
const maxFrame = 64 << 20

// Frame layout (little endian):
//
//	payloadLen uint32 | crc32(payload) uint32 | payload
//	payload := version uint8 | kind uint8 | body             (v2–v5)
//	payload := version uint8 | kind uint8 | flags uint8 | body  (v6+)
//
// For requests, kind is the opcode; for responses it is a status
// (statusOK with an op-specific body, or statusError with a message).
// flags bit 0 set means the body is deflate-compressed, prefixed with
// its inflated length as a uvarint; all other flag bits must be zero.
const (
	opHello byte = iota + 1
	opPush
	opPopDue
	opClaimDue
	opHeadDue
	opPopDueMatch
	opRelease
	opRemove
	opContains
	opLen
	opURLs
	opPeek
	opNextEvent
	opStats
	opReset
	opPushBatch
	// opRound applies one crawl-engine dispatch round — pops, removes,
	// pushes — and returns the server's next pop candidates, all in a
	// single round trip (frontier.Sharded.ApplyRound on the wire).
	opRound
	// opShardExport (version 5) extracts and returns every queued entry
	// whose site falls in the requested ring partitions, plus a capped
	// tail of the server's request-dedup cache — the source half of a
	// live shard migration. opShardImport installs exported entries and
	// dedup pairs on the new owner. Both are mutating (WAL-logged,
	// request-ID memoized), so a migration survives server restarts and
	// client retries like any other frontier mutation.
	opShardExport
	opShardImport
)

// The repository-store op family (version 4), served by StoreServer
// (the storerd daemon): store.Collection over the wire, with named
// collections so one server hosts a crawler's whole collection pair
// (shadow generations included). Numbered from 0x20 to leave the
// frontier family room to grow.
const (
	opStoreHello byte = 0x20 + iota
	opStorePutBatch
	opStoreGet
	opStoreDelete
	opStoreLen
	opStoreURLs
	opStoreScan
	// opStoreDrop closes a named collection and removes its backing
	// data — how a retired shadow generation is reclaimed.
	opStoreDrop
	// opStoreReset drops every collection: sequential experiments over
	// one store server each start from empty.
	opStoreReset
	// opStoreList returns the collection names on the server, open or
	// on disk — how a mounting crawler finds (and reclaims) shadow
	// generations a crashed predecessor left behind.
	opStoreList
)

// storeHelloMagic is opStoreHello's response body: it proves the peer
// is a store server, so a -store-server flag pointed at a shardd (or
// vice versa) fails loudly at connect instead of corrupting a crawl.
const storeHelloMagic = 0x53544F52 // "STOR"

// storeMutatingOp reports whether a store op changes collection state.
// Mutating store ops carry a leading client-generated request ID and
// are memoized by the store server, mirroring mutatingOp for the
// frontier family (they are deliberately separate predicates: the
// frontier WAL replays only frontier mutations).
func storeMutatingOp(op byte) bool {
	switch op {
	case opStorePutBatch, opStoreDelete, opStoreDrop, opStoreReset:
		return true
	}
	return false
}

// mutatingOp reports whether op changes frontier state. Mutating ops
// carry a leading client-generated request ID (a fixed 8-byte field,
// see enc.fix64): the server logs them to its WAL (when enabled) and
// memoizes their responses in a bounded cache keyed by that ID, so a
// client retrying after a broken connection gets the original response
// instead of a second application — exactly-once semantics over an
// at-least-once transport. Read-only ops carry no ID and are never
// logged.
func mutatingOp(op byte) bool {
	switch op {
	case opPush, opPushBatch, opPopDue, opClaimDue, opPopDueMatch,
		opRelease, opRemove, opReset, opRound, opShardExport, opShardImport:
		return true
	}
	return false
}

const (
	statusOK byte = iota
	statusError
)

var (
	errBadFrame = errors.New("cluster: corrupt frame")
	errShort    = errors.New("cluster: truncated body")
)

// negotiateVer resolves a client's wanted version against a server's
// ceiling. 0 means "no negotiation": either side predates v6, and the
// connection stays on the legacy encoding.
func negotiateVer(want, max byte) byte {
	if want < protoV6 || max < protoV6 {
		return 0
	}
	if want < max {
		return want
	}
	return max
}

// frameBufPool recycles writeFrame's assembly buffers: the hot paths
// (engine apply rounds, WAL appends, worker claims) write a frame per
// operation, and the buffer never escapes the write call. Oversized
// buffers (a compaction snapshot chunk, a huge push batch) are not
// returned, so one large frame cannot pin maxFrame-sized memory behind
// the pool while typical frames are a few hundred bytes.
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

// frameBufPoolMax caps the capacity of buffers returned to the pool.
const frameBufPoolMax = 64 << 10

// compressMin is the body size below which writeFrame does not attempt
// compression: small frames are dominated by syscall and header cost,
// and deflate rarely wins on them anyway.
const compressMin = 1 << 9

// flateWriterPool / flateReaderPool recycle deflate state, which is
// expensive to allocate (32KiB windows) relative to the frames it
// compresses. compressBufPool holds the intermediate compressed-body
// buffers; like frameBufPool, oversized ones are dropped.
var (
	flateWriterPool = sync.Pool{New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	}}
	flateReaderPool sync.Pool
	compressBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

const compressBufPoolMax = 1 << 20

func putCompressBuf(buf *bytes.Buffer) {
	if buf.Cap() <= compressBufPoolMax {
		compressBufPool.Put(buf)
	}
}

// deflateBody compresses body into buf as uvarint(len(body)) followed
// by the deflate stream, reporting success.
func deflateBody(buf *bytes.Buffer, body []byte) bool {
	var hdr [binary.MaxVarintLen64]byte
	buf.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(body)))])
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(buf)
	_, werr := fw.Write(body)
	cerr := fw.Close()
	flateWriterPool.Put(fw)
	return werr == nil && cerr == nil
}

// inflateBody decodes a compressed frame body: a uvarint declaring the
// inflated size (validated against maxFrame before any allocation)
// followed by the deflate stream, which must inflate to exactly that
// size.
func inflateBody(comp []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(comp)
	if n <= 0 || rawLen > maxFrame {
		return nil, errBadFrame
	}
	br := bytes.NewReader(comp[n:])
	var fr io.ReadCloser
	if v := flateReaderPool.Get(); v != nil {
		fr = v.(io.ReadCloser)
		if err := fr.(flate.Resetter).Reset(br, nil); err != nil {
			return nil, err
		}
	} else {
		fr = flate.NewReader(br)
	}
	out := make([]byte, rawLen)
	_, err := io.ReadFull(fr, out)
	if err == nil {
		var extra [1]byte
		if k, _ := fr.Read(extra[:]); k != 0 {
			err = errBadFrame // inflates past its declared size
		}
	}
	fr.Close()
	flateReaderPool.Put(fr)
	if err != nil {
		return nil, fmt.Errorf("cluster: corrupt compressed frame: %w", err)
	}
	return out, nil
}

// flagCompressed marks a deflate-compressed v6 frame body.
const flagCompressed = 0x01

// writeFrame assembles and writes one frame tagged with ver as a single
// Write call, so synchronous transports (net.Pipe) cannot interleave
// partial frames. Bodies of v6+ frames at least compressMin long are
// deflated when that shrinks them. It returns the bytes written to w —
// the true wire size, which differs from the body length whenever the
// body compressed.
func writeFrame(w io.Writer, ver, kind byte, body []byte) (int, error) {
	flags := byte(0)
	wireBody := body
	var cbuf *bytes.Buffer
	if ver >= protoV6 && len(body) >= compressMin {
		cbuf = compressBufPool.Get().(*bytes.Buffer)
		cbuf.Reset()
		if deflateBody(cbuf, body) && cbuf.Len() < len(body) {
			flags = flagCompressed
			wireBody = cbuf.Bytes()
			framesCompressed.Inc()
			frameRawBytes.Observe(float64(len(body)))
			frameCompressedBytes.Observe(float64(len(wireBody)))
		}
	}
	hdrLen := 2
	if ver >= protoV6 {
		hdrLen = 3
	}
	payload := len(wireBody) + hdrLen
	if payload > maxFrame {
		if cbuf != nil {
			putCompressBuf(cbuf)
		}
		return 0, fmt.Errorf("cluster: frame too large (%d bytes)", payload)
	}
	bp := frameBufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < 8+payload {
		buf = make([]byte, 8+payload)
	} else {
		buf = buf[:8+payload]
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payload))
	buf[8] = ver
	buf[9] = kind
	if ver >= protoV6 {
		buf[10] = flags
		copy(buf[11:], wireBody)
	} else {
		copy(buf[10:], wireBody)
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	n, err := w.Write(buf)
	if cap(buf) <= frameBufPoolMax {
		*bp = buf
		frameBufPool.Put(bp)
	}
	if cbuf != nil {
		putCompressBuf(cbuf)
	}
	return n, err
}

// readFrame reads one frame, verifying length, CRC and version, and
// inflating a compressed body. It returns the frame's version tag (the
// body must be decoded with a dec of the same version) and the bytes
// consumed from r — the wire size, which differs from len(body) for
// compressed frames.
func readFrame(r io.Reader) (ver, kind byte, body []byte, wire int, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 2 || n > maxFrame {
		return 0, 0, nil, 0, errBadFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, 0, fmt.Errorf("cluster: truncated frame: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, 0, nil, 0, errBadFrame
	}
	ver = payload[0]
	if ver < minProtoVersion || ver > ProtoVersion {
		return 0, 0, nil, 0, fmt.Errorf("cluster: protocol version %d, want %d..%d", ver, minProtoVersion, ProtoVersion)
	}
	kind = payload[1]
	wire = 8 + int(n)
	if ver < protoV6 {
		return ver, kind, payload[2:], wire, nil
	}
	if n < 3 {
		return 0, 0, nil, 0, errBadFrame
	}
	flags := payload[2]
	if flags&^flagCompressed != 0 {
		return 0, 0, nil, 0, errBadFrame
	}
	body = payload[3:]
	if flags&flagCompressed != 0 {
		body, err = inflateBody(body)
		if err != nil {
			return 0, 0, nil, 0, err
		}
	}
	return ver, kind, body, wire, nil
}

// enc is an append-only body encoder. Its version selects the field
// encoding: the zero value (and anything below protoV6) writes the
// legacy fixed-width format; v6 writes uvarint u32/u64 fields and
// front-coded string lists. fix64, u8, f64, bool and the raw length
// prefixes inside str/bytes are identical across versions.
type enc struct {
	b []byte
	v byte
}

// newEnc returns an encoder producing bodies for frames tagged ver.
func newEnc(ver byte) enc { return enc{v: ver} }

func (e *enc) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	e.b = append(e.b, b[:binary.PutUvarint(b[:], v)]...)
}

func (e *enc) u32(v uint32) *enc {
	if e.v >= protoV6 {
		e.uvarint(uint64(v))
		return e
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.b = append(e.b, b[:]...)
	return e
}

func (e *enc) u64(v uint64) *enc {
	if e.v >= protoV6 {
		e.uvarint(v)
		return e
	}
	return e.fix64(v)
}

// fix64 writes a fixed 8-byte little-endian value in every version.
// Request IDs and page checksums are uniformly random 64-bit values, so
// a uvarint would *grow* them (9.2 bytes on average); keeping them
// fixed also lets pre-v6 WAL snapshots and dedup tails decode under
// either version.
func (e *enc) fix64(v uint64) *enc {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.b = append(e.b, b[:]...)
	return e
}

func (e *enc) u8(v byte) *enc {
	e.b = append(e.b, v)
	return e
}

func (e *enc) f64(v float64) *enc {
	return e.fix64(math.Float64bits(v))
}

func (e *enc) bool(v bool) *enc {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
	return e
}

func (e *enc) str(s string) *enc {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
	return e
}

// strDelta appends s front-coded against prev: the length of the shared
// prefix, the suffix length, then the suffix bytes. URL lists travel
// sorted (per shard, per scan chunk), so consecutive entries share long
// prefixes and the shared part costs one or two bytes instead of being
// resent. Legacy encoders fall back to plain str, which keeps the
// pre-v6 byte streams identical.
func (e *enc) strDelta(prev, s string) *enc {
	if e.v < protoV6 {
		return e.str(s)
	}
	shared := commonPrefixLen(prev, s)
	e.uvarint(uint64(shared))
	e.uvarint(uint64(len(s) - shared))
	e.b = append(e.b, s[shared:]...)
	return e
}

// bytes appends a length-prefixed byte slice without an intermediate
// string copy (page bodies ride the hot put/get/scan paths).
func (e *enc) bytes(b []byte) *enc {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
	return e
}

func commonPrefixLen(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// dec is a cursor-based body decoder; the first malformed field poisons
// it and every later read returns the zero value. Its version must
// match the enc (i.e. the frame tag) that produced the body.
type dec struct {
	b   []byte
	off int
	err error
	v   byte
}

// newDec returns a decoder for a body from a frame tagged ver.
func newDec(ver byte, body []byte) *dec { return &dec{b: body, v: ver} }

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = errShort
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = errShort
		return 0
	}
	d.off += n
	return v
}

func (d *dec) u32() uint32 {
	if d.v >= protoV6 {
		v := d.uvarint()
		if v > math.MaxUint32 {
			d.err = errBadFrame
			return 0
		}
		return uint32(v)
	}
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	if d.v >= protoV6 {
		return d.uvarint()
	}
	return d.fix64()
}

// fix64 reads a fixed 8-byte value in every version (enc.fix64's
// inverse).
func (d *dec) fix64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) f64() float64 {
	return math.Float64frombits(d.fix64())
}

func (d *dec) bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || int(n) > len(d.b)-d.off {
		d.err = errShort
		return ""
	}
	return string(d.take(int(n)))
}

// strDelta decodes a front-coded string against prev (enc.strDelta's
// inverse). A prefix length exceeding len(prev) poisons the decoder: it
// can only come from a corrupt or hostile frame.
func (d *dec) strDelta(prev string) string {
	if d.v < protoV6 {
		return d.str()
	}
	shared := d.uvarint()
	if d.err != nil || shared > uint64(len(prev)) {
		d.err = errBadFrame
		return ""
	}
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.err = errShort
		return ""
	}
	suffix := d.take(int(n))
	if shared == 0 {
		return string(suffix)
	}
	var sb strings.Builder
	sb.Grow(int(shared) + len(suffix))
	sb.WriteString(prev[:shared])
	sb.Write(suffix)
	return sb.String()
}

// bytes decodes a length-prefixed byte slice with exactly one copy
// (never retaining the frame buffer); empty decodes as nil.
func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil || int(n) > len(d.b)-d.off {
		d.err = errShort
		return nil
	}
	b := d.take(int(n))
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// finish reports a decoding error, if any.
func (d *dec) finish() error { return d.err }

// encodeStrings appends a counted string list, front-coding each
// element against its predecessor (v6) or writing plain strings
// (legacy). prev seeds the first element's front-coding — both sides
// must agree on it (the empty string, or a resume cursor both already
// know).
func encodeStrings(e *enc, prev string, list []string) {
	e.u32(uint32(len(list)))
	for _, s := range list {
		e.strDelta(prev, s)
		prev = s
	}
}

// decodeStrings decodes a counted string list (encodeStrings's
// inverse). An empty list decodes as nil, so record link lists
// round-trip to the same value the local stores produce.
func decodeStrings(d *dec, prev string) []string {
	n := int(d.u32())
	if n == 0 {
		return nil
	}
	out := make([]string, 0, min(n, 1<<16))
	for i := 0; i < n && d.finish() == nil; i++ {
		s := d.strDelta(prev)
		if d.finish() == nil {
			out = append(out, s)
			prev = s
		}
	}
	return out
}
