// Package cluster gives the sharded frontier a serialization boundary,
// so shards can live on other machines: a compact length-prefixed,
// CRC-framed, versioned wire protocol for the frontier.ShardSet
// operations, a ShardServer that hosts a set of in-process shards
// behind any net.Listener, and a RemoteShards client that implements
// frontier.ShardSet over one or more servers — so core.Crawler,
// core.UpdatePipeline and cmd/webcrawl run unchanged whether their
// shards are local or distributed (the paper's Figure 12 anticipates
// exactly this: "multiple CrawlModules may run in parallel").
//
// Distributed pops stay globally deterministic: RemoteShards asks every
// server for its earliest poppable head (OpHeadDue), picks the global
// minimum with the in-process comparator, and commits the pop on the
// winning server (OpPopDueMatch), retrying if the head moved — the same
// scan-then-revalidate dance frontier.Sharded performs over its
// in-process shards. A simulated crawl through RemoteShards is
// therefore bit-identical to the same crawl with local shards.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// ProtoVersion is the wire protocol version; frames carrying a newer
// version, or one older than minProtoVersion, are rejected. Version 2
// added request IDs on every state-mutating op (exactly-once retry
// semantics), the batched push op, and the clear-claims bit in hello.
// Version 3 added the batched dispatch-round op (opRound), which folds
// a round's pops, drops and reschedules plus the next candidate peek
// into one frame per server. Version 4 added the repository-store op
// family (opStore*), served by StoreServer/storerd. Version 5 added
// the live-migration pair (opShardExport/opShardImport) that moves
// ring partitions between shard servers on a membership change.
const ProtoVersion = 5

// minProtoVersion is the oldest version readFrame still accepts.
// Versions 3 and 4 only added opcodes — every v2 frame body decodes
// unchanged — and WAL files and snapshots written by a v2 shardd must
// replay after an upgrade: rejecting them at the frame level would
// make recovery mistake the whole log for a torn tail and truncate it
// away.
const minProtoVersion = 2

// maxFrame bounds a frame payload; anything larger is treated as a
// corrupt or hostile stream.
const maxFrame = 64 << 20

// Frame layout (little endian):
//
//	payloadLen uint32 | crc32(payload) uint32 | payload
//	payload := version uint8 | kind uint8 | body
//
// For requests, kind is the opcode; for responses it is a status
// (statusOK with an op-specific body, or statusError with a message).
const (
	opHello byte = iota + 1
	opPush
	opPopDue
	opClaimDue
	opHeadDue
	opPopDueMatch
	opRelease
	opRemove
	opContains
	opLen
	opURLs
	opPeek
	opNextEvent
	opStats
	opReset
	opPushBatch
	// opRound applies one crawl-engine dispatch round — pops, removes,
	// pushes — and returns the server's next pop candidates, all in a
	// single round trip (frontier.Sharded.ApplyRound on the wire).
	opRound
	// opShardExport (version 5) extracts and returns every queued entry
	// whose site falls in the requested ring partitions, plus a capped
	// tail of the server's request-dedup cache — the source half of a
	// live shard migration. opShardImport installs exported entries and
	// dedup pairs on the new owner. Both are mutating (WAL-logged,
	// request-ID memoized), so a migration survives server restarts and
	// client retries like any other frontier mutation.
	opShardExport
	opShardImport
)

// The repository-store op family (version 4), served by StoreServer
// (the storerd daemon): store.Collection over the wire, with named
// collections so one server hosts a crawler's whole collection pair
// (shadow generations included). Numbered from 0x20 to leave the
// frontier family room to grow.
const (
	opStoreHello byte = 0x20 + iota
	opStorePutBatch
	opStoreGet
	opStoreDelete
	opStoreLen
	opStoreURLs
	opStoreScan
	// opStoreDrop closes a named collection and removes its backing
	// data — how a retired shadow generation is reclaimed.
	opStoreDrop
	// opStoreReset drops every collection: sequential experiments over
	// one store server each start from empty.
	opStoreReset
	// opStoreList returns the collection names on the server, open or
	// on disk — how a mounting crawler finds (and reclaims) shadow
	// generations a crashed predecessor left behind.
	opStoreList
)

// storeHelloMagic is opStoreHello's response body: it proves the peer
// is a store server, so a -store-server flag pointed at a shardd (or
// vice versa) fails loudly at connect instead of corrupting a crawl.
const storeHelloMagic = 0x53544F52 // "STOR"

// storeMutatingOp reports whether a store op changes collection state.
// Mutating store ops carry a leading client-generated request ID and
// are memoized by the store server, mirroring mutatingOp for the
// frontier family (they are deliberately separate predicates: the
// frontier WAL replays only frontier mutations).
func storeMutatingOp(op byte) bool {
	switch op {
	case opStorePutBatch, opStoreDelete, opStoreDrop, opStoreReset:
		return true
	}
	return false
}

// mutatingOp reports whether op changes frontier state. Mutating ops
// carry a leading client-generated request ID (u64): the server logs
// them to its WAL (when enabled) and memoizes their responses in a
// bounded cache keyed by that ID, so a client retrying after a broken
// connection gets the original response instead of a second
// application — exactly-once semantics over an at-least-once
// transport. Read-only ops carry no ID and are never logged.
func mutatingOp(op byte) bool {
	switch op {
	case opPush, opPushBatch, opPopDue, opClaimDue, opPopDueMatch,
		opRelease, opRemove, opReset, opRound, opShardExport, opShardImport:
		return true
	}
	return false
}

const (
	statusOK byte = iota
	statusError
)

var (
	errBadFrame = errors.New("cluster: corrupt frame")
	errShort    = errors.New("cluster: truncated body")
)

// frameBufPool recycles writeFrame's assembly buffers: the hot paths
// (engine apply rounds, WAL appends, worker claims) write a frame per
// operation, and the buffer never escapes the write call. Oversized
// buffers (a compaction snapshot chunk, a huge push batch) are not
// returned, so one large frame cannot pin maxFrame-sized memory behind
// the pool while typical frames are a few hundred bytes.
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

// frameBufPoolMax caps the capacity of buffers returned to the pool.
const frameBufPoolMax = 64 << 10

// writeFrame assembles and writes one frame as a single Write call, so
// synchronous transports (net.Pipe) cannot interleave partial frames.
func writeFrame(w io.Writer, kind byte, body []byte) error {
	payload := len(body) + 2
	if payload > maxFrame {
		return fmt.Errorf("cluster: frame too large (%d bytes)", payload)
	}
	bp := frameBufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < 8+payload {
		buf = make([]byte, 8+payload)
	} else {
		buf = buf[:8+payload]
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payload))
	buf[8] = ProtoVersion
	buf[9] = kind
	copy(buf[10:], body)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	_, err := w.Write(buf)
	if cap(buf) <= frameBufPoolMax {
		*bp = buf
		frameBufPool.Put(bp)
	}
	return err
}

// readFrame reads one frame, verifying length, CRC and version.
func readFrame(r io.Reader) (kind byte, body []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 2 || n > maxFrame {
		return 0, nil, errBadFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: truncated frame: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, nil, errBadFrame
	}
	if payload[0] < minProtoVersion || payload[0] > ProtoVersion {
		return 0, nil, fmt.Errorf("cluster: protocol version %d, want %d..%d", payload[0], minProtoVersion, ProtoVersion)
	}
	return payload[1], payload[2:], nil
}

// enc is an append-only body encoder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) *enc {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.b = append(e.b, b[:]...)
	return e
}

func (e *enc) u64(v uint64) *enc {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.b = append(e.b, b[:]...)
	return e
}

func (e *enc) u8(v byte) *enc {
	e.b = append(e.b, v)
	return e
}

func (e *enc) f64(v float64) *enc {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.b = append(e.b, b[:]...)
	return e
}

func (e *enc) bool(v bool) *enc {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
	return e
}

func (e *enc) str(s string) *enc {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
	return e
}

// bytes appends a length-prefixed byte slice without an intermediate
// string copy (page bodies ride the hot put/get/scan paths).
func (e *enc) bytes(b []byte) *enc {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
	return e
}

// dec is a cursor-based body decoder; the first malformed field poisons
// it and every later read returns the zero value.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = errShort
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *dec) bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || int(n) > len(d.b)-d.off {
		d.err = errShort
		return ""
	}
	return string(d.take(int(n)))
}

// bytes decodes a length-prefixed byte slice with exactly one copy
// (never retaining the frame buffer); empty decodes as nil.
func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil || int(n) > len(d.b)-d.off {
		d.err = errShort
		return nil
	}
	b := d.take(int(n))
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// finish reports a decoding error, if any.
func (d *dec) finish() error { return d.err }
