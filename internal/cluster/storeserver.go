package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"webevolve/internal/store"
)

// StoreServer hosts named store.Collection instances behind a listener,
// serving the opStore* family of the wire protocol: the repository-side
// counterpart of ShardServer, and the storerd daemon's engine. Named
// collections let one server carry a crawler's whole collection pair —
// webcrawl's persistent "pages" collection, or the engine's rotating
// shadow generations, which a client drops (opStoreDrop) once retired.
//
// Mutating ops (PutBatch, Delete, Drop, Reset) carry client request IDs
// and their responses are memoized, so a client retrying across a
// broken connection gets exactly-once application — the same contract
// as the frontier ops. There is no WAL: the disk-backed collections are
// their own durable log (store.Disk flushes every acknowledged batch),
// and the dedup window is only a nicety here since every store op is
// idempotent.
//
// One crawl engine owns a store server's collections at a time, like a
// frontier cluster: concurrent writers would interleave batches and
// shadow generations unpredictably.
type StoreServer struct {
	connCore

	// open constructs (or reopens) the backing collection for a name;
	// drop removes a closed collection's backing data (nil: nothing to
	// remove, e.g. memory backends); list enumerates the names with
	// backing data on disk, open or not (nil: nothing persists), so
	// Reset can sweep collections left by a previous server process.
	open func(name string) (store.Collection, error)
	drop func(name string) error
	list func() ([]string, error)

	// boot identifies this server instance in the hello response;
	// durable reports whether collections survive a restart. Together
	// they let a client distinguish "reconnected to the same state"
	// from "reconnected to a restarted server whose memory-backed
	// collections are gone" (checkStoreHello).
	boot    uint64
	durable bool

	collMu sync.Mutex
	colls  map[string]store.Collection

	// reqMu serializes mutating requests with their dedup bookkeeping,
	// mirroring ShardServer.walMu. Read-only ops bypass it and rely on
	// the collections' own locking.
	reqMu sync.Mutex
	dedup *respCache
}

// NewStoreServer builds a store server over a collection factory. Most
// callers want NewDiskStoreServer or NewMemStoreServer.
func NewStoreServer(open func(name string) (store.Collection, error), drop func(name string) error, list func() ([]string, error)) *StoreServer {
	s := &StoreServer{
		open:  open,
		drop:  drop,
		list:  list,
		boot:  randomReqBase(),
		colls: make(map[string]store.Collection),
		dedup: newRespCache(respCacheSize),
	}
	s.connCore.handle = s.handle
	s.connCore.conns = make(map[net.Conn]struct{})
	return s
}

// NewDiskStoreServer serves disk-backed collections, one subdirectory
// of dir per collection name; they survive server restarts.
func NewDiskStoreServer(dir string) *StoreServer {
	s := newDiskStoreServer(dir)
	s.durable = true
	return s
}

func newDiskStoreServer(dir string) *StoreServer {
	return NewStoreServer(
		func(name string) (store.Collection, error) {
			return store.OpenDisk(filepath.Join(dir, name))
		},
		func(name string) error {
			return os.RemoveAll(filepath.Join(dir, name))
		},
		func() ([]string, error) {
			entries, err := os.ReadDir(dir)
			if os.IsNotExist(err) {
				return nil, nil
			}
			if err != nil {
				return nil, err
			}
			var names []string
			for _, e := range entries {
				if e.IsDir() && validCollName(e.Name()) {
					names = append(names, e.Name())
				}
			}
			return names, nil
		},
	)
}

// NewMemStoreServer serves in-memory collections (simulations, tests).
func NewMemStoreServer() *StoreServer {
	return NewStoreServer(
		func(string) (store.Collection, error) { return store.NewMem(), nil },
		nil,
		nil,
	)
}

// Close stops serving and closes every open collection (flushing
// disk-backed ones).
func (s *StoreServer) Close() error {
	err := s.connCore.Close()
	if cerr := s.CloseCollections(); err == nil {
		err = cerr
	}
	return err
}

// CloseCollections closes every open collection without touching the
// listener (the daemon's shutdown flush).
func (s *StoreServer) CloseCollections() error {
	s.collMu.Lock()
	defer s.collMu.Unlock()
	var err error
	for name, c := range s.colls {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
		delete(s.colls, name)
	}
	return err
}

// Collections returns the names of the currently open collections,
// sorted (observability; the storerd stats ticker).
func (s *StoreServer) Collections() []string {
	s.collMu.Lock()
	defer s.collMu.Unlock()
	out := make([]string, 0, len(s.colls))
	for name := range s.colls {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// collectionNames returns every collection the server knows about —
// open ones plus any with backing data on disk — sorted.
func (s *StoreServer) collectionNames() ([]string, error) {
	set := make(map[string]struct{})
	s.collMu.Lock()
	for name := range s.colls {
		set[name] = struct{}{}
	}
	s.collMu.Unlock()
	if s.list != nil {
		onDisk, err := s.list()
		if err != nil {
			return nil, err
		}
		for _, n := range onDisk {
			set[n] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// validCollName keeps collection names safe as directory components:
// the disk backend maps a name straight to a subdirectory.
func validCollName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Collection returns the named hosted collection, opening it on first
// use — the in-process view of what the wire ops serve, so a daemon
// embedding a serving plane (storerd -serve) reads the same backing
// store its clients write, without a loopback hop.
func (s *StoreServer) Collection(name string) (store.Collection, error) {
	return s.coll(name)
}

// coll returns the named collection, opening it on first use.
func (s *StoreServer) coll(name string) (store.Collection, error) {
	if !validCollName(name) {
		return nil, fmt.Errorf("bad collection name %q", name)
	}
	s.collMu.Lock()
	defer s.collMu.Unlock()
	if c, ok := s.colls[name]; ok {
		return c, nil
	}
	c, err := s.open(name)
	if err != nil {
		return nil, err
	}
	s.colls[name] = c
	return c, nil
}

// storeScanChunk caps how many records one opStoreScan response
// carries; the client resumes from the last URL of the previous chunk,
// so a scan of any size stays a sequence of bounded frames.
const storeScanChunk = 512

// storeURLsChunk caps the URLs one opStoreURLs response carries (same
// resume protocol, lighter elements).
const storeURLsChunk = 1 << 16

// storeChunkBytes is the soft byte budget for one store frame's
// records (a quarter of maxFrame): records carry page bodies, so
// chunking by count alone could assemble an unsendable frame. A single
// record above the budget still travels alone — only a record whose
// own encoding exceeds maxFrame is truly unsendable.
const storeChunkBytes = 16 << 20

// approxRecordSize estimates a record's encoded size (the variable
// parts plus fixed-field overhead), for byte-bounded chunking.
func approxRecordSize(r store.PageRecord) int {
	n := 64 + len(r.URL) + len(r.Content)
	for _, l := range r.Links {
		n += 4 + len(l)
	}
	return n
}

// handle executes one request against the hosted collections. ver is
// the request frame's protocol version; the response body is encoded
// under the same version (the client decodes with the version it
// sent).
func (s *StoreServer) handle(ver, op byte, body []byte) (status byte, resp []byte) {
	if storeMutatingOp(op) {
		return s.handleMutating(ver, op, body)
	}
	d := newDec(ver, body)
	e := newEnc(ver)
	switch op {
	case opStoreHello:
		// A v6-capable client appends the highest version it wants; the
		// hello body is otherwise empty, so any trailing byte is the
		// offer (a pre-v6 client sends none and gets no answer).
		want := byte(0)
		if d.off < len(d.b) {
			want = d.u8()
		}
		e.u32(storeHelloMagic).bool(s.durable).u64(s.boot)
		if neg := negotiateVer(want, s.maxVer()); neg != 0 {
			e.u8(neg)
		}
	case opStoreList:
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		names, err := s.collectionNames()
		if err != nil {
			return statusError, []byte(err.Error())
		}
		encodeStrings(&e, "", names)
	case opStoreGet:
		name, url := d.str(), d.str()
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		c, err := s.coll(name)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		rec, ok, err := c.Get(url)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		e.bool(ok)
		if ok {
			encodeRecord(&e, "", rec)
		}
	case opStoreLen:
		name := d.str()
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		c, err := s.coll(name)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		e.u32(uint32(c.Len()))
	case opStoreURLs:
		// Chunked like the scan: one bounded frame of sorted URLs
		// strictly after `after`, with a done flag — a URL list of any
		// size stays sendable under maxFrame.
		name, after := d.str(), d.str()
		maxURLs := int(d.u32())
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		if maxURLs <= 0 || maxURLs > storeURLsChunk {
			maxURLs = storeURLsChunk
		}
		c, err := s.coll(name)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		chunk := make([]string, 0, min(maxURLs, 1<<12))
		chunkBytes := 0
		done := true
		collect := func(u string) bool {
			if len(chunk) == maxURLs || (len(chunk) > 0 && chunkBytes+len(u) > storeChunkBytes) {
				done = false
				return false
			}
			chunk = append(chunk, u)
			chunkBytes += 4 + len(u)
			return true
		}
		// Resume lazily when the backend offers it (both built-in ones
		// do) — no full sort of the tail per chunk.
		if uf, ok := c.(interface {
			URLsFrom(after string, fn func(string) bool)
		}); ok {
			uf.URLsFrom(after, collect)
		} else {
			urls := c.URLs()
			start := 0
			if after != "" {
				start = sort.SearchStrings(urls, after)
				if start < len(urls) && urls[start] == after {
					start++
				}
			}
			for _, u := range urls[start:] {
				if !collect(u) {
					break
				}
			}
		}
		// Front-code against the resume cursor: both sides know `after`,
		// and the chunk's sorted URLs usually share its site prefix.
		encodeStrings(&e, after, chunk)
		e.bool(done)
	case opStoreScan:
		// One chunk of the sorted scan, resuming strictly after `after`
		// (empty = from the start). done means the chunk reached the end
		// of the collection.
		name, after := d.str(), d.str()
		maxRecs := int(d.u32())
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		if maxRecs <= 0 || maxRecs > storeScanChunk {
			maxRecs = storeScanChunk
		}
		c, err := s.coll(name)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		recs := make([]store.PageRecord, 0, maxRecs)
		done := true
		chunkBytes := 0
		collect := func(r store.PageRecord) bool {
			sz := approxRecordSize(r)
			if len(recs) > 0 && (len(recs) == maxRecs || chunkBytes+sz > storeChunkBytes) {
				done = false
				return false
			}
			recs = append(recs, r)
			chunkBytes += sz
			return true
		}
		// ScanFrom is part of store.Reader, so a chunked scan of N
		// records costs O(N), not a prefix re-walk per chunk.
		err = c.ScanFrom(after, collect)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		e.u32(uint32(len(recs)))
		prev := after
		for _, r := range recs {
			encodeRecord(&e, prev, r)
			prev = r.URL
		}
		e.bool(done)
	default:
		return statusError, []byte(fmt.Sprintf("unknown opcode %d", op))
	}
	return statusOK, e.b
}

// handleMutating runs one state-mutating store request under reqMu with
// request-ID dedup, mirroring the frontier server's exactly-once retry
// contract.
func (s *StoreServer) handleMutating(ver, op byte, body []byte) (status byte, resp []byte) {
	d := newDec(ver, body)
	reqID := d.fix64()
	if d.finish() != nil {
		return statusError, []byte("missing request id")
	}
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if st, cached, ok := s.dedup.get(reqID); ok {
		return st, cached
	}
	status, resp = s.applyMutating(op, d)
	s.dedup.put(reqID, status, resp)
	return status, resp
}

// applyMutating applies one mutating store op whose request ID has
// already been consumed from d.
func (s *StoreServer) applyMutating(op byte, d *dec) (status byte, resp []byte) {
	e := newEnc(d.v)
	switch op {
	case opStorePutBatch:
		name := d.str()
		recs := decodeRecords(d)
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		c, err := s.coll(name)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		if err := c.PutBatch(recs); err != nil {
			return statusError, []byte(err.Error())
		}
		e.u32(uint32(len(recs)))
	case opStoreDelete:
		name, url := d.str(), d.str()
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		c, err := s.coll(name)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		if err := c.Delete(url); err != nil {
			return statusError, []byte(err.Error())
		}
	case opStoreDrop:
		name := d.str()
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		if !validCollName(name) {
			return statusError, []byte(fmt.Sprintf("bad collection name %q", name))
		}
		if err := s.dropColl(name); err != nil {
			return statusError, []byte(err.Error())
		}
	case opStoreReset:
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		if err := s.reset(); err != nil {
			return statusError, []byte(err.Error())
		}
	default:
		return statusError, []byte(fmt.Sprintf("unknown mutating opcode %d", op))
	}
	return statusOK, e.b
}

// dropColl closes a collection and removes its backing data. Dropping a
// collection that was never opened still removes leftover data from a
// previous server run.
func (s *StoreServer) dropColl(name string) error {
	s.collMu.Lock()
	defer s.collMu.Unlock()
	if c, ok := s.colls[name]; ok {
		delete(s.colls, name)
		if err := c.Close(); err != nil {
			return err
		}
	}
	if s.drop != nil {
		return s.drop(name)
	}
	return nil
}

// reset drops every collection, open or not: the backing directory is
// swept too (via list), so a collection left on disk by a *previous*
// server process goes as well and sequential experiments truly start
// from empty.
func (s *StoreServer) reset() error {
	s.collMu.Lock()
	defer s.collMu.Unlock()
	var err error
	names := make(map[string]struct{})
	for name, c := range s.colls {
		delete(s.colls, name)
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
		names[name] = struct{}{}
	}
	if s.list != nil {
		onDisk, lerr := s.list()
		if lerr != nil && err == nil {
			err = lerr
		}
		for _, n := range onDisk {
			names[n] = struct{}{}
		}
	}
	if s.drop != nil {
		for n := range names {
			if derr := s.drop(n); derr != nil && err == nil {
				err = derr
			}
		}
	}
	return err
}

// encodeRecord appends one store.PageRecord to the body. prev is the
// previous record's URL in the frame (the resume cursor for the first
// record of a chunk; "" when the record stands alone) — under v6 the
// URL is front-coded against it, and the links against the record's
// own URL, which same-site links usually extend. The checksum is a
// uniform 64-bit hash, so it stays fixed-width.
func encodeRecord(e *enc, prev string, r store.PageRecord) {
	e.strDelta(prev, r.URL)
	e.fix64(r.Checksum)
	e.f64(r.FetchedAt)
	e.u64(uint64(int64(r.Version)))
	encodeStrings(e, r.URL, r.Links)
	e.bytes(r.Content)
	e.f64(r.Importance)
}

// decodeRecord is encodeRecord's inverse.
func decodeRecord(d *dec, prev string) store.PageRecord {
	r := store.PageRecord{
		URL:       d.strDelta(prev),
		Checksum:  d.fix64(),
		FetchedAt: d.f64(),
		Version:   int(int64(d.u64())),
	}
	r.Links = decodeStrings(d, r.URL)
	// Empty decodes as nil, so a record round-trips to the same JSON
	// the local disk store would have framed.
	r.Content = d.bytes()
	r.Importance = d.f64()
	return r
}

// decodeRecords decodes a u32-counted record list, front-coded from an
// empty previous URL.
func decodeRecords(d *dec) []store.PageRecord {
	n := int(d.u32())
	out := make([]store.PageRecord, 0, min(n, 1<<16))
	prev := ""
	for i := 0; i < n && d.finish() == nil; i++ {
		r := decodeRecord(d, prev)
		if d.finish() == nil {
			out = append(out, r)
			prev = r.URL
		}
	}
	return out
}
