package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func ringMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return m
}

// TestRingBalance bounds the load skew: across 1..16 members the
// busiest member owns at most twice the partitions of the idlest.
func TestRingBalance(t *testing.T) {
	for n := 1; n <= 16; n++ {
		r := NewRing(ringMembers(n), 0)
		counts := make([]int, n)
		for p := 0; p < r.Parts(); p++ {
			o := r.Owner(p)
			if o < 0 || o >= n {
				t.Fatalf("n=%d: partition %d has owner %d", n, p, o)
			}
			counts[o]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("n=%d: a member owns zero partitions: %v", n, counts)
		}
		if ratio := float64(max) / float64(min); ratio > 2.0 {
			t.Errorf("n=%d: max/min partition load ratio %.2f > 2.0 (%v)", n, ratio, counts)
		}
	}
}

// TestRingDeterminism: same members (any order) at the same partition
// count produce identical ownership.
func TestRingDeterminism(t *testing.T) {
	members := ringMembers(5)
	a := NewRing(members, 0)
	shuffled := []string{members[3], members[0], members[4], members[2], members[1]}
	b := NewRing(shuffled, 0)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member order leaked into ring: %v vs %v", a.Members(), b.Members())
	}
	for p := 0; p < a.Parts(); p++ {
		if a.OwnerName(p) != b.OwnerName(p) {
			t.Fatalf("partition %d: owner %q vs %q", p, a.OwnerName(p), b.OwnerName(p))
		}
	}
	// Rebuilding from scratch agrees too (no hidden per-process state).
	c := NewRing(members, 0)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("rebuilding the ring from the same members differs")
	}
}

// TestRingMinimalMovement: a join steals partitions only (every moved
// partition lands on the joiner) and moves roughly 1/(n+1) of them; a
// leave moves exactly the leaver's partitions.
func TestRingMinimalMovement(t *testing.T) {
	for n := 1; n <= 8; n++ {
		old := NewRing(ringMembers(n), 0)
		joined := append(ringMembers(n), fmt.Sprintf("10.0.1.%d:7070", n))
		next := NewRing(joined, 0)
		moved := old.Moved(next)
		for _, p := range moved {
			if got := next.OwnerName(p); got != joined[n] {
				t.Fatalf("n=%d: moved partition %d went to %q, not the joiner", n, p, got)
			}
		}
		// Expect ~parts/(n+1) moved; allow 2x slack for hash skew.
		want := old.Parts() / (n + 1)
		if len(moved) > 2*want {
			t.Errorf("n=%d: join moved %d partitions, want ≤ %d", n, len(moved), 2*want)
		}
		if len(moved) == 0 {
			t.Errorf("n=%d: join moved nothing", n)
		}

		// Leaving the joiner again moves exactly what it owned.
		back := next.Moved(old)
		if !reflect.DeepEqual(back, moved) {
			t.Fatalf("n=%d: leave moved %v, join moved %v", n, back, moved)
		}
		for _, p := range back {
			if next.OwnerName(p) != joined[n] {
				t.Fatalf("n=%d: leave moved partition %d that the leaver did not own", n, p)
			}
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate rings the static
// fallback and a drained registry produce.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if empty.Owner(0) != -1 || empty.OwnerName(0) != "" {
		t.Fatal("empty ring should own nothing")
	}
	one := NewRing([]string{"a:1"}, 0)
	for p := 0; p < one.Parts(); p++ {
		if one.OwnerName(p) != "a:1" {
			t.Fatal("single-member ring must own every partition")
		}
	}
	if moved := empty.Moved(one); len(moved) != one.Parts() {
		t.Fatalf("empty→single should move every partition, moved %d", len(moved))
	}
	// Duplicate member names collapse.
	dup := NewRing([]string{"a:1", "a:1", "b:2"}, 0)
	if len(dup.Members()) != 2 {
		t.Fatalf("duplicates not collapsed: %v", dup.Members())
	}
}

// TestRingPartOf: URL → partition respects site affinity and stays in
// range.
func TestRingPartOf(t *testing.T) {
	r := NewRing(ringMembers(3), 0)
	a := r.PartOf("http://site0.com/page1")
	b := r.PartOf("http://site0.com/page2")
	if a != b {
		t.Fatalf("same site hashed to partitions %d and %d", a, b)
	}
	if a < 0 || a >= r.Parts() {
		t.Fatalf("partition %d out of range", a)
	}
}
