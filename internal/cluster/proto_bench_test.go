package cluster

import (
	"fmt"
	"testing"

	"webevolve/internal/frontier"
)

// BenchmarkEncodeEntries pins the entry codec's cost and allocation
// profile across wire versions: v5 (fixed-width, whole URLs) vs v6
// (varints, front-coded URLs). The bytes/entry metric is the on-wire
// body size the compression layer then sees.
func BenchmarkEncodeEntries(b *testing.B) {
	const n = 64
	entries := make([]frontier.Entry, n)
	for i := range entries {
		entries[i] = frontier.Entry{
			URL: fmt.Sprintf("http://site%03d.com/p%05d", i%8, i),
			Due: float64(i % 9), Priority: float64(i % 3),
		}
	}
	for _, ver := range []byte{helloProto, ProtoVersion} {
		b.Run(fmt.Sprintf("v%d", ver), func(b *testing.B) {
			b.ReportAllocs()
			var body int
			for i := 0; i < b.N; i++ {
				e := newEnc(ver)
				encodeEntries(&e, entries)
				body = len(e.b)
				d := newDec(ver, e.b)
				if got := decodeEntries(d); len(got) != n {
					b.Fatalf("decoded %d entries, want %d", len(got), n)
				}
			}
			b.ReportMetric(float64(body)/n, "bytes/entry")
		})
	}
}
