package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"webevolve/internal/frontier"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("cluster: server closed")

// ShardServer hosts a set of frontier shards behind a listener: each
// accepted connection runs a synchronous request/response loop over the
// wire protocol, all connections operating on one shared
// frontier.Sharded. It is the shardd daemon's engine, and tests drive
// it directly over net.Pipe loopback connections.
type ShardServer struct {
	shards *frontier.Sharded

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShardServer wraps a sharded frontier for serving. The server takes
// over the queue; local pops alongside remote clients would break the
// clients' peek-then-commit protocol assumptions.
func NewShardServer(shards *frontier.Sharded) *ShardServer {
	return &ShardServer{shards: shards, conns: make(map[net.Conn]struct{})}
}

// Shards exposes the hosted queue (observability; see NewShardServer's
// caveat about concurrent local use).
func (s *ShardServer) Shards() *frontier.Sharded { return s.shards }

// Listen binds addr without serving; Addr is valid afterwards. It lets
// callers bind port 0 and learn the assigned port before blocking in
// Serve.
func (s *ShardServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address, or nil before Listen.
func (s *ShardServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on the listener bound by Listen until
// Close. It always returns a non-nil error; after Close, the error is
// ErrServerClosed.
func (s *ShardServer) Serve() error {
	s.mu.Lock()
	ln := s.ln
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrServerClosed
	}
	if ln == nil {
		return errors.New("cluster: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *ShardServer) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops the listener, closes every open connection, and waits for
// their handlers to drain.
func (s *ShardServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Pipe returns the client end of an in-process loopback connection
// whose server end is handled by this server: the transport that makes
// distributed simulated crawls runnable (and bit-identical to local
// ones) inside a single test process.
func (s *ShardServer) Pipe() (net.Conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	cli, srv := net.Pipe()
	s.conns[srv] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.serveConn(srv)
		s.mu.Lock()
		delete(s.conns, srv)
		s.mu.Unlock()
	}()
	return cli, nil
}

// serveConn runs one connection's request loop until EOF or error.
func (s *ShardServer) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		op, body, err := readFrame(r)
		if err != nil {
			return // EOF, closed conn, or a corrupt stream: drop it
		}
		status, resp := s.handle(op, body)
		if err := writeFrame(conn, status, resp); err != nil {
			return
		}
	}
}

// handle executes one request against the shards.
func (s *ShardServer) handle(op byte, body []byte) (status byte, resp []byte) {
	d := &dec{b: body}
	var e enc
	switch op {
	case opHello:
		if apply := d.bool(); apply {
			gap := d.f64()
			if d.finish() == nil {
				s.shards.SetPoliteness(gap)
			}
		}
		e.u32(uint32(s.shards.NumShards()))
	case opPush:
		url, due, prio := d.str(), d.f64(), d.f64()
		if d.finish() == nil {
			s.shards.Push(url, due, prio)
		}
	case opPopDue:
		now := d.f64()
		if d.finish() == nil {
			ent, ok := s.shards.PopDue(now)
			encodeEntry(&e, ent, ok)
		}
	case opClaimDue:
		now := d.f64()
		if d.finish() == nil {
			ent, shard, ok := s.shards.ClaimDue(now)
			encodeEntry(&e, ent, ok)
			if ok {
				e.u32(uint32(shard))
			}
		}
	case opHeadDue:
		now, skipClaimed := d.f64(), d.bool()
		if d.finish() == nil {
			ent, ok := s.shards.HeadDue(now, skipClaimed)
			encodeEntry(&e, ent, ok)
		}
	case opPopDueMatch:
		now, url, claim := d.f64(), d.str(), d.bool()
		if d.finish() == nil {
			ent, shard, ok := s.shards.PopDueMatch(now, url, claim)
			encodeEntry(&e, ent, ok)
			if ok {
				e.u32(uint32(shard))
			}
		}
	case opRelease:
		shard, nextReady := d.u32(), d.f64()
		if d.finish() == nil {
			if int(shard) >= s.shards.NumShards() {
				return statusError, []byte(fmt.Sprintf("release of unknown shard %d", shard))
			}
			s.shards.Release(int(shard), nextReady)
		}
	case opRemove:
		url := d.str()
		if d.finish() == nil {
			e.bool(s.shards.Remove(url))
		}
	case opContains:
		url := d.str()
		if d.finish() == nil {
			e.bool(s.shards.Contains(url))
		}
	case opLen:
		e.u32(uint32(s.shards.Len()))
	case opURLs:
		urls := s.shards.URLs()
		e.u32(uint32(len(urls)))
		for _, u := range urls {
			e.str(u)
		}
	case opPeek:
		ent, ok := s.shards.Peek()
		encodeEntry(&e, ent, ok)
	case opNextEvent:
		t, ok := s.shards.NextEvent()
		e.bool(ok).f64(t)
	case opReset:
		s.shards.Reset()
	case opStats:
		lens := s.shards.ShardLens()
		e.u32(uint32(len(lens)))
		for _, n := range lens {
			e.u32(uint32(n))
		}
		e.f64(s.shards.Politeness())
	default:
		return statusError, []byte(fmt.Sprintf("unknown opcode %d", op))
	}
	if err := d.finish(); err != nil {
		return statusError, []byte(err.Error())
	}
	return statusOK, e.b
}

// encodeEntry appends ok and, when set, the entry fields.
func encodeEntry(e *enc, ent frontier.Entry, ok bool) {
	e.bool(ok)
	if ok {
		e.str(ent.URL).f64(ent.Due).f64(ent.Priority)
	}
}

// decodeEntry is encodeEntry's inverse.
func decodeEntry(d *dec) (frontier.Entry, bool) {
	if !d.bool() {
		return frontier.Entry{}, false
	}
	ent := frontier.Entry{URL: d.str(), Due: d.f64(), Priority: d.f64()}
	return ent, d.err == nil
}
