package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"webevolve/internal/frontier"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("cluster: server closed")

// connCore is the accept/serve machinery shared by ShardServer and
// StoreServer: a listener, one synchronous request/response loop per
// accepted connection over the frame protocol, net.Pipe loopback for
// tests, and graceful close. The embedding server supplies handle,
// which receives each request frame's protocol version alongside the
// opcode — bodies are decoded per that version, and the response is
// encoded and tagged to match, so clients negotiated to different
// versions can share one server.
type connCore struct {
	handle func(ver, op byte, body []byte) (status byte, resp []byte)

	// maxProto caps the protocol version this server negotiates and
	// accepts; 0 means ProtoVersion. See LimitProto.
	maxProto byte

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// maxVer is the highest frame version this server speaks.
func (s *connCore) maxVer() byte {
	if s.maxProto != 0 {
		return s.maxProto
	}
	return ProtoVersion
}

// LimitProto caps the protocol version the server negotiates at hello
// and accepts on the wire — an operational escape hatch for
// mixed-version rollouts (and the test seam emulating an old server).
// Values are clamped to [helloProto, ProtoVersion]. Call before
// serving.
func (s *connCore) LimitProto(v int) {
	if v < helloProto {
		v = helloProto
	}
	if v > ProtoVersion {
		v = ProtoVersion
	}
	s.maxProto = byte(v)
}

// Listen binds addr without serving; Addr is valid afterwards. It lets
// callers bind port 0 and learn the assigned port before blocking in
// Serve.
func (s *connCore) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address, or nil before Listen.
func (s *connCore) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on the listener bound by Listen until
// Close. It always returns a non-nil error; after Close, the error is
// ErrServerClosed.
func (s *connCore) Serve() error {
	s.mu.Lock()
	ln := s.ln
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrServerClosed
	}
	if ln == nil {
		return errors.New("cluster: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *connCore) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops the listener, closes every open connection, and waits for
// their handlers to drain.
func (s *connCore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Pipe returns the client end of an in-process loopback connection
// whose server end is handled by this server: the transport that makes
// distributed simulated crawls runnable (and bit-identical to local
// ones) inside a single test process.
func (s *connCore) Pipe() (net.Conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	cli, srv := net.Pipe()
	s.conns[srv] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.serveConn(srv)
		s.mu.Lock()
		delete(s.conns, srv)
		s.mu.Unlock()
	}()
	return cli, nil
}

// serveConn runs one connection's request loop until EOF or error,
// recording per-op latency and frame bytes as it goes.
func (s *connCore) serveConn(conn net.Conn) {
	defer conn.Close()
	serverConnsGauge.Add(1)
	defer serverConnsGauge.Add(-1)
	r := bufio.NewReader(conn)
	for {
		ver, op, body, wire, err := readFrame(r)
		if err != nil || ver > s.maxVer() {
			return // EOF, closed conn, a corrupt stream, or a version
			// above this server's cap: drop it
		}
		m := metricsFor(op)
		m.serverReqBytes.Observe(float64(wire))
		start := time.Now()
		status, resp := s.handle(ver, op, body)
		m.serverSeconds.Observe(time.Since(start).Seconds())
		m.serverOps.Inc()
		if status != statusOK {
			m.serverErrors.Inc()
		}
		// Responses ride the request frame's version: the client decodes
		// with the version it encoded with, and the server stays
		// stateless per connection.
		n, err := writeFrame(conn, ver, status, resp)
		if err != nil {
			return
		}
		m.serverRespBytes.Observe(float64(n))
	}
}

// ShardServer hosts a set of frontier shards behind a listener: each
// accepted connection runs a synchronous request/response loop over the
// wire protocol, all connections operating on one shared
// frontier.Sharded. It is the shardd daemon's engine, and tests drive
// it directly over net.Pipe loopback connections.
type ShardServer struct {
	connCore
	shards *frontier.Sharded

	// walMu serializes state-mutating requests: the dedup lookup, the
	// WAL append, and the frontier mutation happen atomically under it,
	// so the log order is exactly the application order and a replay
	// reconstructs both the frontier and the responses bit-for-bit.
	// Read-only ops (the HeadDue peeks of the distributed pop, stats)
	// bypass it and rely on the frontier's own locking.
	walMu sync.Mutex
	wal   *wal       // nil: persistence disabled
	dedup *respCache // response memoization for retried mutating ops
}

// NewShardServer wraps a sharded frontier for serving. The server takes
// over the queue; local pops alongside remote clients would break the
// clients' peek-then-commit protocol assumptions.
func NewShardServer(shards *frontier.Sharded) *ShardServer {
	s := &ShardServer{
		shards: shards,
		dedup:  newRespCache(respCacheSize),
	}
	s.connCore.handle = s.handle
	s.connCore.conns = make(map[net.Conn]struct{})
	return s
}

// Shards exposes the hosted queue (observability; see NewShardServer's
// caveat about concurrent local use).
func (s *ShardServer) Shards() *frontier.Sharded { return s.shards }

// handle executes one request against the shards. ver is the request
// frame's protocol version; the body is decoded and the response
// encoded per it.
func (s *ShardServer) handle(ver, op byte, body []byte) (status byte, resp []byte) {
	if mutatingOp(op) {
		return s.handleMutating(ver, op, body)
	}
	d := newDec(ver, body)
	e := newEnc(ver)
	switch op {
	case opHello:
		apply := d.bool()
		var gap float64
		if apply {
			gap = d.f64()
		}
		clearClaims := d.bool()
		if err := d.finish(); err != nil {
			return statusError, []byte(err.Error())
		}
		// A v6-capable client appends its wanted version; a pre-v6
		// client's hello simply ends here (trailing bytes were always
		// tolerated, which is what makes the negotiation downgrade-safe).
		want := byte(0)
		if d.off < len(d.b) {
			want = d.u8()
		}
		if apply || clearClaims {
			// Hello mutates frontier state, so its effects must be
			// logged too: replayed pops recompute politeness deadlines
			// and consult claims at apply time, and would diverge from
			// the served state if the hello were lost.
			s.walMu.Lock()
			if s.wal != nil {
				if apply {
					we := newEnc(ver)
					we.f64(gap)
					if err := s.wal.append(ver, walSetPoliteness, we.b); err != nil {
						s.walMu.Unlock()
						return statusError, []byte(fmt.Sprintf("wal append: %v", err))
					}
				}
				if clearClaims {
					if err := s.wal.append(ver, walClearClaims, nil); err != nil {
						s.walMu.Unlock()
						return statusError, []byte(fmt.Sprintf("wal append: %v", err))
					}
				}
			}
			if apply {
				s.shards.SetPoliteness(gap)
			}
			if clearClaims {
				// A fresh client session: claims held by a vanished
				// previous client would otherwise wedge their shards
				// forever.
				s.shards.ClearClaims()
			}
			s.walMu.Unlock()
		}
		e.u32(uint32(s.shards.NumShards()))
		if neg := negotiateVer(want, s.maxVer()); neg != 0 {
			// Appended only when both sides speak v6+: a pre-v6 client
			// never sent a want byte and reads a response of the old
			// shape.
			e.u8(neg)
		}
	case opHeadDue:
		now, skipClaimed := d.f64(), d.bool()
		if d.finish() == nil {
			ent, ok := s.shards.HeadDue(now, skipClaimed)
			encodeEntry(&e, ent, ok)
		}
	case opContains:
		url := d.str()
		if d.finish() == nil {
			e.bool(s.shards.Contains(url))
		}
	case opLen:
		e.u32(uint32(s.shards.Len()))
	case opURLs:
		encodeStrings(&e, "", s.shards.URLs())
	case opPeek:
		ent, ok := s.shards.Peek()
		encodeEntry(&e, ent, ok)
	case opNextEvent:
		t, ok := s.shards.NextEvent()
		e.bool(ok).f64(t)
	case opStats:
		lens := s.shards.ShardLens()
		e.u32(uint32(len(lens)))
		for _, n := range lens {
			e.u32(uint32(n))
		}
		e.f64(s.shards.Politeness())
	default:
		return statusError, []byte(fmt.Sprintf("unknown opcode %d", op))
	}
	if err := d.finish(); err != nil {
		return statusError, []byte(err.Error())
	}
	return statusOK, e.b
}

// handleMutating runs one state-mutating request: dedup check, apply,
// WAL append — atomically under walMu, so the log is a faithful
// linearization of the applied mutations. A request ID already in the
// cache is a retry of an op this server (or, via WAL replay, its
// previous incarnation) has applied; it gets the memoized response and
// no second application.
//
// The append happens after the apply but before the acknowledgement,
// and only when the op actually mutated state — an idle worker pool
// polling an empty or politeness-gated frontier must not churn the log
// with no-op pops. Acked-implies-replayable still holds: a crash
// between apply and append loses only an op that was never
// acknowledged, which the client retries against the recovered state
// (where it re-executes deterministically).
func (s *ShardServer) handleMutating(ver, op byte, body []byte) (status byte, resp []byte) {
	d := newDec(ver, body)
	reqID := d.fix64()
	if d.finish() != nil {
		return statusError, []byte("missing request id")
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if st, cached, ok := s.dedup.get(reqID); ok {
		return st, cached
	}
	if s.wal != nil && s.wal.broken != nil {
		// Refuse before applying: mutating in-memory state that can no
		// longer be logged would create phantom state a later snapshot
		// could make durable.
		return statusError, []byte(fmt.Sprintf("wal poisoned: %v", s.wal.broken))
	}
	status, resp, mutated := s.applyMutating(op, d)
	if mutated && s.wal != nil {
		// The log record keeps the request's frame version, so replay
		// decodes each frame by its own tag — v5 and v6 records can
		// interleave in one log across an upgrade.
		if err := s.wal.append(ver, op, body); err != nil {
			// Applied but not durable: refuse the ack rather than let
			// the client trust a write a replay would lose.
			return statusError, []byte(fmt.Sprintf("wal append: %v", err))
		}
	}
	s.dedup.put(reqID, status, resp)
	return status, resp
}

// applyMutating applies one mutating op whose request ID has already
// been consumed from d, reporting whether it changed frontier state.
// It is the single apply path shared by live requests and WAL replay,
// which is what makes replay reconstruct the exact served state and
// responses.
func (s *ShardServer) applyMutating(op byte, d *dec) (status byte, resp []byte, mutated bool) {
	e := newEnc(d.v) // respond in the request frame's encoding
	switch op {
	case opPush:
		url, due, prio := d.str(), d.f64(), d.f64()
		if d.finish() == nil {
			s.shards.Push(url, due, prio)
			mutated = true
		}
	case opPushBatch:
		// Decode fully before applying: a malformed frame must not
		// half-apply a batch.
		batch := decodeEntries(d)
		if d.finish() == nil {
			s.shards.PushBatch(batch)
			e.u32(uint32(len(batch)))
			mutated = len(batch) > 0
		}
	case opPopDue:
		now := d.f64()
		if d.finish() == nil {
			ent, ok := s.shards.PopDue(now)
			encodeEntry(&e, ent, ok)
			mutated = ok
		}
	case opClaimDue:
		now := d.f64()
		if d.finish() == nil {
			ent, shard, ok := s.shards.ClaimDue(now)
			encodeEntry(&e, ent, ok)
			if ok {
				e.u32(uint32(shard))
			}
			mutated = ok
		}
	case opPopDueMatch:
		now, url, claim := d.f64(), d.str(), d.bool()
		if d.finish() == nil {
			ent, shard, ok := s.shards.PopDueMatch(now, url, claim)
			encodeEntry(&e, ent, ok)
			if ok {
				e.u32(uint32(shard))
			}
			mutated = ok
		}
	case opRelease:
		shard, nextReady := d.u32(), d.f64()
		if d.finish() == nil {
			if int(shard) >= s.shards.NumShards() {
				return statusError, []byte(fmt.Sprintf("release of unknown shard %d", shard)), false
			}
			s.shards.Release(int(shard), nextReady)
			mutated = true
		}
	case opRemove:
		url := d.str()
		if d.finish() == nil {
			removed := s.shards.Remove(url)
			e.bool(removed)
			mutated = removed
		}
	case opReset:
		s.shards.Reset()
		mutated = true
	case opRound:
		// One crawl-engine dispatch round: pops (candidate entries the
		// client's engine already consumed), drops, reschedules, and
		// the next candidate peek — decoded fully before applying so a
		// malformed frame cannot half-apply.
		pops := decodeStrings(d, "")
		removes := decodeStrings(d, "")
		pushes := decodeEntries(d)
		peekMax := int(d.u32())
		if d.finish() == nil {
			cands, _, bounded, ok := s.shards.ApplyRound(pops, removes, pushes, peekMax)
			if !ok {
				return statusError, []byte("round ops need a zero politeness gap"), false
			}
			encodeEntries(&e, cands)
			e.bool(!bounded) // complete: cands are the whole queue
			mutated = len(pops)+len(removes)+len(pushes) > 0
		}
	case opShardExport:
		// Extract the queued entries in the requested ring partitions,
		// plus a capped tail of the dedup cache so in-flight retries of
		// migrated work still dedup on the new owner. Extraction order
		// is URL-sorted, so a WAL replay reproduces the entry section
		// bit-for-bit (the dedup tail may differ on replay — harmless,
		// since genuine retries are answered from the memoized original
		// via the dedup-get path, never re-extracted).
		//
		// A client may append a (cursor, max) pair to bound the chunk:
		// the response then carries only the first max matching entries
		// in URL order strictly after the cursor, a dedup tail on the
		// first chunk only, and a trailing more flag. Requests without
		// the pair (older clients) extract everything at once, and older
		// servers ignore the pair — the client then simply receives the
		// full extraction as its first and only chunk.
		parts := int(d.u32())
		n := int(d.u32())
		set := make(map[int]bool, min(n, 1<<16))
		for i := 0; i < n && d.finish() == nil; i++ {
			set[int(d.u32())] = true
		}
		after, maxN, chunked := "", 0, false
		if d.finish() == nil && d.off < len(d.b) {
			after, maxN = d.str(), int(d.u32())
			chunked = true
		}
		if d.finish() == nil {
			if parts <= 0 || parts > 1<<20 {
				return statusError, []byte(fmt.Sprintf("export with bad partition count %d", parts)), false
			}
			entries, more := s.shards.ExtractPartitionsLimit(parts, set, after, maxN)
			encodeEntries(&e, entries)
			if after == "" {
				tail := s.dedup.tail(exportDedupEntries, exportDedupBytes)
				e.u32(uint32(len(tail)))
				for _, de := range tail {
					e.fix64(de.id).u8(de.status).bytes(de.resp)
				}
			} else {
				e.u32(0)
			}
			if chunked {
				e.bool(more)
			}
			migrationExportEntries.Add(int64(len(entries)))
			migrationHandoffBytes.With("export").Observe(float64(len(e.b)))
			mutated = len(entries) > 0
		}
	case opShardImport:
		// Decode fully before applying: a malformed frame must not
		// half-install a migration.
		reqLen := len(d.b)
		entries := decodeEntries(d)
		dn := int(d.u32())
		pairs := make([]dedupEntry, 0, min(dn, 1<<16))
		for i := 0; i < dn && d.finish() == nil; i++ {
			id, st, resp := d.fix64(), d.u8(), d.bytes()
			if d.finish() == nil {
				pairs = append(pairs, dedupEntry{id: id, status: st, resp: append([]byte(nil), resp...)})
			}
		}
		if d.finish() == nil {
			s.shards.PushBatch(entries)
			for _, p := range pairs {
				s.dedup.put(p.id, p.status, p.resp)
			}
			e.u32(uint32(len(entries)))
			migrationImportEntries.Add(int64(len(entries)))
			migrationHandoffBytes.With("import").Observe(float64(reqLen))
			mutated = len(entries) > 0 || len(pairs) > 0
		}
	default:
		return statusError, []byte(fmt.Sprintf("unknown mutating opcode %d", op)), false
	}
	if err := d.finish(); err != nil {
		return statusError, []byte(err.Error()), false
	}
	return statusOK, e.b, mutated
}

// decodeEntries decodes a counted frontier.Entry list, front-coded
// URLs included (encodeEntries's inverse).
func decodeEntries(d *dec) []frontier.Entry {
	n := int(d.u32())
	out := make([]frontier.Entry, 0, min(n, 1<<16))
	prev := ""
	for i := 0; i < n && d.finish() == nil; i++ {
		ent := frontier.Entry{URL: d.strDelta(prev), Due: d.f64(), Priority: d.f64()}
		if d.finish() == nil {
			out = append(out, ent)
			prev = ent.URL
		}
	}
	return out
}

// respCacheSize bounds the retry-dedup window. Every mutating op is
// memoized: re-running a pop would pop a second entry, a re-run
// Release would clear a claim another worker has since taken, a re-run
// Push could re-queue a URL popped in the retry gap. An op awaiting
// retry holds its pool slot for the client's whole backoff budget
// (~2.1s by default), so the entries that can wash through the ring
// before the retry lands are bounded by the throughput of the *other*
// pooled connections: (ConnsPerServer-1) conns x ~30us minimum per
// loopback round trip x 2.1s ≈ 70k ops per stuck slot. 128k covers
// that with margin at the default pool size, and the ring only
// occupies memory for ops actually performed.
const respCacheSize = 1 << 17

// respCache memoizes the responses of mutating requests by request ID,
// evicting the oldest entry once full. It is guarded by the server's
// walMu (replay runs single-threaded before serving).
type respCache struct {
	m    map[uint64]cachedResp
	ring []uint64
	pos  int
}

type cachedResp struct {
	status byte
	resp   []byte
}

func newRespCache(n int) *respCache {
	return &respCache{m: make(map[uint64]cachedResp, n), ring: make([]uint64, n)}
}

func (c *respCache) get(id uint64) (status byte, resp []byte, ok bool) {
	r, ok := c.m[id]
	return r.status, r.resp, ok
}

func (c *respCache) put(id uint64, status byte, resp []byte) {
	if _, ok := c.m[id]; ok {
		return
	}
	if old := c.ring[c.pos]; old != 0 {
		delete(c.m, old)
	}
	c.ring[c.pos] = id
	c.pos = (c.pos + 1) % len(c.ring)
	c.m[id] = cachedResp{status: status, resp: resp}
}

// snapshotEntries returns the cached responses oldest-first, for
// inclusion in a WAL snapshot (so retries spanning a compaction still
// dedup after a restart).
func (c *respCache) snapshotEntries() []dedupEntry {
	out := make([]dedupEntry, 0, len(c.m))
	for i := 0; i < len(c.ring); i++ {
		id := c.ring[(c.pos+i)%len(c.ring)]
		if id == 0 {
			continue
		}
		if r, ok := c.m[id]; ok {
			out = append(out, dedupEntry{id: id, status: r.status, resp: r.resp})
		}
	}
	return out
}

// exportDedupEntries / exportDedupBytes cap the dedup tail shipped in
// a shard-export response. Shipping the whole cache is unsafe — 128k
// memoized opRound responses can exceed maxFrame — and unnecessary:
// only requests still awaiting a retry can arrive at the new owner,
// and those are the most recent ones.
const (
	exportDedupEntries = 1024
	exportDedupBytes   = 1 << 20
)

// tail returns the newest cached responses, bounded by maxEntries and
// a total response-byte budget, oldest-first.
func (c *respCache) tail(maxEntries, maxBytes int) []dedupEntry {
	all := c.snapshotEntries()
	total := 0
	i := len(all)
	for i > 0 && len(all)-i < maxEntries {
		sz := len(all[i-1].resp) + 16
		if total+sz > maxBytes {
			break
		}
		total += sz
		i--
	}
	return all[i:]
}

// dedupEntry is one memoized response as persisted in a snapshot.
type dedupEntry struct {
	id     uint64
	status byte
	resp   []byte
}

// encodeEntries appends a counted frontier.Entry list. Entry lists
// travel sorted (per shard, per batch group), so v6 front-codes each
// URL against the previous entry's; Due/Priority stay fixed f64s.
func encodeEntries(e *enc, list []frontier.Entry) {
	e.u32(uint32(len(list)))
	prev := ""
	for _, ent := range list {
		e.strDelta(prev, ent.URL)
		e.f64(ent.Due).f64(ent.Priority)
		prev = ent.URL
	}
}

// encodeEntry appends ok and, when set, the entry fields.
func encodeEntry(e *enc, ent frontier.Entry, ok bool) {
	e.bool(ok)
	if ok {
		e.str(ent.URL).f64(ent.Due).f64(ent.Priority)
	}
}

// decodeEntry is encodeEntry's inverse.
func decodeEntry(d *dec) (frontier.Entry, bool) {
	if !d.bool() {
		return frontier.Entry{}, false
	}
	ent := frontier.Entry{URL: d.str(), Due: d.f64(), Priority: d.f64()}
	return ent, d.err == nil
}
