package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"webevolve/internal/frontier"
)

// fastRetry keeps retry tests quick without changing the retry logic.
var fastRetry = Options{RetryBackoff: time.Millisecond, MaxRetryBackoff: 4 * time.Millisecond}

// dropPooledConns closes every pooled connection in place (leaving the
// stale conns in the pool), simulating transient drops the client
// discovers mid-operation.
func dropPooledConns(rs *RemoteShards) int {
	dropped := 0
	for _, sc := range rs.t().servers {
		for i := 0; i < cap(sc.pool); i++ {
			select {
			case cc := <-sc.pool:
				if cc != nil {
					cc.conn.Close()
					dropped++
				}
				sc.pool <- cc
			default:
			}
		}
	}
	return dropped
}

// TestRemoteSurvivesConnDrop: a transient connection drop must be
// absorbed by redial + retry, not fail the whole crawl.
func TestRemoteSurvivesConnDrop(t *testing.T) {
	servers := make([]*ShardServer, 2)
	for i := range servers {
		servers[i] = NewShardServer(frontier.NewSharded(4))
	}
	rs, err := Loopback(servers, fastRetry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rs.Close()
		for _, s := range servers {
			s.Close()
		}
	})

	local := frontier.NewSharded(4)
	urls := testURLs(10, 3)
	for i, u := range urls {
		rs.Push(u, float64(i%5), 0)
		local.Push(u, float64(i%5), 0)
	}
	// Drop every pooled conn repeatedly while draining; every op after a
	// drop exercises the redial path, pops included.
	for drained := false; !drained; {
		if n := dropPooledConns(rs); n == 0 {
			t.Fatal("no pooled conns to drop")
		}
		for i := 0; i < 4; i++ {
			le, lok := local.PopDue(10)
			re, rok := rs.PopDue(10)
			if lok != rok || (lok && !sameEntry(le, re)) {
				t.Fatalf("pop diverged after drop: (%+v,%v) vs (%+v,%v)", re, rok, le, lok)
			}
			if !lok {
				drained = true
				break
			}
		}
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("transient drops became sticky: %v", err)
	}
}

// failingDialer wraps a dialer so that a chosen dial attempt fails.
type failingDialer struct {
	inner Dialer
	calls atomic.Int64
	fail  int64 // which call (1-based) returns an error
}

func (f *failingDialer) dial() (net.Conn, error) {
	if f.calls.Add(1) == f.fail {
		return nil, errors.New("injected dial failure")
	}
	return f.inner()
}

// TestRemoteSurvivesFailingDial injects one failing dial into the
// redial path: the client must back off, dial again, and complete the
// op — the acceptance contract that a single transient connection drop
// no longer fails the whole crawl.
func TestRemoteSurvivesFailingDial(t *testing.T) {
	srv := NewShardServer(frontier.NewSharded(4))
	t.Cleanup(func() { srv.Close() })
	// Dial 1 is the client's eager connect; dial 2 — the first redial
	// after the drop below — fails.
	fd := &failingDialer{inner: srv.Pipe, fail: 2}
	opts := fastRetry
	opts.ConnsPerServer = 1
	rs, err := Dial([]Dialer{fd.dial}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	rs.Push("http://site001.com/a", 0, 0)
	if dropPooledConns(rs) != 1 {
		t.Fatal("expected one pooled conn")
	}
	rs.Push("http://site001.com/b", 0, 0)
	if err := rs.Err(); err != nil {
		t.Fatalf("one failing dial became sticky: %v", err)
	}
	if got := fd.calls.Load(); got < 3 {
		t.Fatalf("dialer called %d times, want >= 3 (initial, failed redial, retried redial)", got)
	}
	if n := rs.Len(); n != 2 {
		t.Fatalf("Len = %d after recovery, want 2", n)
	}
	if e, ok := rs.PopDue(1); !ok || e.URL != "http://site001.com/a" {
		t.Fatalf("PopDue after recovery = %+v, %v", e, ok)
	}
}

// flakyConn drops the connection after a fixed number of reads: the
// response of the in-flight op may already be applied server-side, so
// the retry must hit the dedup cache rather than re-apply.
type flakyConn struct {
	net.Conn
	reads atomic.Int64
	limit int64
}

func (c *flakyConn) Read(p []byte) (int, error) {
	if c.reads.Add(1) > c.limit {
		c.Conn.Close()
		return 0, errors.New("injected connection drop")
	}
	return c.Conn.Read(p)
}

// TestFlakyTransportKeepsPopOrder runs a full push/pop sequence over
// connections that die every few reads. Exactly-once request dedup on
// the server must keep the pop sequence bit-identical to a local
// frontier — no lost and no doubled entries — with no sticky error.
func TestFlakyTransportKeepsPopOrder(t *testing.T) {
	srv := NewShardServer(frontier.NewSharded(8))
	t.Cleanup(func() { srv.Close() })
	dial := func() (net.Conn, error) {
		conn, err := srv.Pipe()
		if err != nil {
			return nil, err
		}
		return &flakyConn{Conn: conn, limit: 7}, nil
	}
	rs, err := Dial([]Dialer{dial}, fastRetry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	local := frontier.NewSharded(8)
	urls := testURLs(12, 4)
	for i, u := range urls {
		due, prio := float64((i*7)%13), float64(i%3)
		local.Push(u, due, prio)
		rs.Push(u, due, prio)
	}
	for now := 0.0; now < 14; now++ {
		for {
			le, lok := local.PopDue(now)
			re, rok := rs.PopDue(now)
			if lok != rok {
				t.Fatalf("day %v: ok %v vs %v (err: %v)", now, rok, lok, rs.Err())
			}
			if !lok {
				break
			}
			if !sameEntry(le, re) {
				t.Fatalf("day %v: pop %+v vs %+v", now, re, le)
			}
			if int(le.Due)%2 == 0 {
				local.Push(le.URL, le.Due+20, le.Priority)
				rs.Push(re.URL, re.Due+20, re.Priority)
			}
		}
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("flaky transport became sticky: %v", err)
	}
}

// TestFlakyTransportKeepsRoundPopOrder extends the flaky-transport
// contract to the engine's batched round protocol: a full sequence of
// ApplyRound calls — pops consumed from candidate prefixes, drops,
// reschedules, candidate refreshes — over connections that die every
// few reads must produce bit-identical candidates and final frontier
// state to the same rounds against a local Sharded, with no sticky
// error. Retried opRound frames hit the server's request-ID dedup, so
// a round is applied exactly once even when its response was lost.
func TestFlakyTransportKeepsRoundPopOrder(t *testing.T) {
	srv := NewShardServer(frontier.NewSharded(8))
	t.Cleanup(func() { srv.Close() })
	dial := func() (net.Conn, error) {
		conn, err := srv.Pipe()
		if err != nil {
			return nil, err
		}
		return &flakyConn{Conn: conn, limit: 9}, nil
	}
	rs, err := Dial([]Dialer{dial}, fastRetry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	local := frontier.NewSharded(8)
	urls := testURLs(12, 4)
	entries := make([]frontier.Entry, 0, len(urls))
	for i, u := range urls {
		entries = append(entries, frontier.Entry{URL: u, Due: float64((i * 7) % 13), Priority: float64(i % 3)})
	}
	const peek = 6
	sameCands := func(a, b []frontier.Entry) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !sameEntry(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	// Seed both sides through the round op itself.
	lc, lb, lbok, lok := local.ApplyRound(nil, nil, entries, peek)
	rc, rb, rbok, rok := rs.ApplyRound(nil, nil, entries, peek)
	if !lok || !rok {
		t.Fatalf("ApplyRound refused: local=%v remote=%v", lok, rok)
	}
	for round := 0; len(lc) > 0; round++ {
		if !sameCands(lc, rc) || lbok != rbok || (lbok && !sameEntry(lb, rb)) {
			t.Fatalf("round %d: candidates diverge\nremote: %+v (%v %v)\nlocal:  %+v (%v %v)",
				round, rc, rb, rbok, lc, lb, lbok)
		}
		// Consume up to 3 candidates as pops, reschedule every other
		// one, and drop the rest — one engine dispatch round.
		n := min(3, len(lc))
		pops := make([]string, 0, n)
		var pushes []frontier.Entry
		var removes []string
		for i := 0; i < n; i++ {
			pops = append(pops, lc[i].URL)
			if i%2 == 0 && lc[i].Due < 50 {
				// Reschedule once (past the original due range, so the
				// sequence terminates); drop everything else.
				pushes = append(pushes, frontier.Entry{URL: lc[i].URL, Due: lc[i].Due + 50, Priority: lc[i].Priority})
			} else {
				removes = append(removes, lc[i].URL)
			}
		}
		lc, lb, lbok, lok = local.ApplyRound(pops, removes, pushes, peek)
		rc, rb, rbok, rok = rs.ApplyRound(pops, removes, pushes, peek)
		if !lok || !rok {
			t.Fatalf("round %d refused: local=%v remote=%v", round, lok, rok)
		}
		if round > 100 {
			t.Fatal("rounds did not converge")
		}
	}
	if len(rc) != 0 {
		t.Fatalf("remote still has candidates: %+v", rc)
	}
	lu, ru := local.URLs(), rs.URLs()
	if len(lu) != len(ru) {
		t.Fatalf("final state diverges: %d vs %d URLs", len(lu), len(ru))
	}
	for i := range lu {
		if lu[i] != ru[i] {
			t.Fatalf("final state diverges at %d: %s vs %s", i, lu[i], ru[i])
		}
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("flaky transport became sticky: %v", err)
	}
}

// TestApplyRoundRefusedWithPoliteness: the round protocol is only
// sound with a zero politeness gap; both halves must refuse it rather
// than serve politeness-blind candidates.
func TestApplyRoundRefusedWithPoliteness(t *testing.T) {
	local := frontier.NewShardedPolite(4, 0.5)
	if _, _, _, ok := local.ApplyRound(nil, nil, nil, 4); ok {
		t.Fatal("Sharded.ApplyRound accepted a politeness gap")
	}
	srv := NewShardServer(frontier.NewSharded(4))
	t.Cleanup(func() { srv.Close() })
	rs, err := Loopback([]*ShardServer{srv}, Options{PolitenessDays: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	if _, _, _, ok := rs.ApplyRound(nil, nil, nil, 4); ok {
		t.Fatal("RemoteShards.ApplyRound accepted a politeness gap")
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("refusal must not be sticky: %v", err)
	}
}

// TestMutatingRetryAppliesOnce pins the dedup contract at the protocol
// level: replaying a claim with the same request ID returns the
// memoized response and pops nothing further.
func TestMutatingRetryAppliesOnce(t *testing.T) {
	srv := NewShardServer(frontier.NewSharded(2))
	srv.Shards().Push("http://site001.com/a", 0, 0)
	srv.Shards().Push("http://site002.com/b", 0, 1)

	var body enc
	body.u64(42).f64(10)
	st1, resp1 := srv.handle(helloProto, opClaimDue, body.b)
	if st1 != statusOK {
		t.Fatalf("claim failed: %s", resp1)
	}
	before := srv.Shards().Len()
	st2, resp2 := srv.handle(helloProto, opClaimDue, body.b)
	if st2 != st1 || string(resp2) != string(resp1) {
		t.Fatalf("retried claim not deduped: (%d,%q) vs (%d,%q)", st2, resp2, st1, resp1)
	}
	if after := srv.Shards().Len(); after != before {
		t.Fatalf("retried claim re-applied: Len %d -> %d", before, after)
	}
	// A different request ID is a genuinely new claim.
	var body2 enc
	body2.u64(43).f64(10)
	if st, resp := srv.handle(helloProto, opClaimDue, body2.b); st != statusOK {
		t.Fatalf("fresh claim failed: %s", resp)
	} else if srv.Shards().Len() != before-1 {
		t.Fatal("fresh claim did not pop")
	}
}

// TestBatchedPushRoundTrips is the acceptance check for the batched
// push path: shipping a dispatch round's reschedules as PushBatch must
// cost at least 5x fewer round trips than per-URL pushes, with
// identical resulting frontier state.
func TestBatchedPushRoundTrips(t *testing.T) {
	const n = 64
	entries := make([]frontier.Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, frontier.Entry{
			URL: fmt.Sprintf("http://site%03d.com/p%05d", i%16, i),
			Due: float64(i % 7), Priority: float64(i % 3),
		})
	}
	for _, nServers := range []int{1, 2} {
		batched, _ := newCluster(t, nServers, 4, 0)
		perURL, _ := newCluster(t, nServers, 4, 0)

		t0 := batched.RoundTrips()
		batched.PushBatch(entries)
		batchedTrips := batched.RoundTrips() - t0

		t0 = perURL.RoundTrips()
		for _, e := range entries {
			perURL.Push(e.URL, e.Due, e.Priority)
		}
		perURLTrips := perURL.RoundTrips() - t0

		if batchedTrips > int64(nServers) {
			t.Fatalf("%d servers: PushBatch cost %d round trips, want <= %d", nServers, batchedTrips, nServers)
		}
		if perURLTrips < 5*batchedTrips {
			t.Fatalf("%d servers: batched pushes only %dx cheaper (%d vs %d round trips)",
				nServers, perURLTrips/max(batchedTrips, 1), perURLTrips, batchedTrips)
		}
		bu, pu := batched.URLs(), perURL.URLs()
		if len(bu) != len(pu) {
			t.Fatalf("%d servers: URLs %d vs %d", nServers, len(bu), len(pu))
		}
		for i := range bu {
			if bu[i] != pu[i] {
				t.Fatalf("%d servers: state diverges at %d: %s vs %s", nServers, i, bu[i], pu[i])
			}
		}
		if err := batched.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPushBatchChunksLargeBatches: a batch larger than one frame's
// chunk cap ships as multiple valid frames (a full frontier rebuild
// must never produce an oversized, unsendable frame).
func TestPushBatchChunksLargeBatches(t *testing.T) {
	n := pushBatchChunk + 100
	entries := make([]frontier.Entry, n)
	for i := range entries {
		entries[i] = frontier.Entry{
			URL: fmt.Sprintf("http://site%03d.com/p%06d", i%40, i),
			Due: float64(i % 13), Priority: float64(i % 3),
		}
	}
	rs, _ := newCluster(t, 1, 4, 0)
	t0 := rs.RoundTrips()
	rs.PushBatch(entries)
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if got := rs.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// 2 chunk frames, plus the Len fan and up to two lazy-dial hello
	// handshakes — nowhere near one frame per URL.
	trips := rs.RoundTrips() - t0
	if trips < 2 || trips > 5 {
		t.Fatalf("large batch cost %d round trips, want 2 chunks (+Len/hello slack)", trips)
	}
}
