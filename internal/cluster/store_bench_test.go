package cluster_test

import (
	"fmt"
	"testing"

	"webevolve/internal/cluster"
	"webevolve/internal/store"
)

// benchRecords builds one write batch of plausible page records.
func benchRecords(n int, round int) []store.PageRecord {
	recs := make([]store.PageRecord, n)
	for i := range recs {
		recs[i] = store.PageRecord{
			URL:       fmt.Sprintf("http://site%03d.com/p%05d", i%32, i),
			Checksum:  uint64(round*100000 + i),
			FetchedAt: float64(round),
			Links: []string{
				fmt.Sprintf("http://site%03d.com/p%05d", i%32, (i+1)%n),
				fmt.Sprintf("http://site%03d.com/p%05d", (i+7)%32, (i+13)%n),
			},
		}
	}
	return recs
}

// BenchmarkStorePutBatch measures one engine-sized write batch against
// each store backend: the local disk store, and the same disk store
// behind the loopback wire protocol — the unit the -store-server
// deployment decision is made in (make bench archives the numbers in
// BENCH_engine.json).
func BenchmarkStorePutBatch(b *testing.B) {
	const batch = 64
	b.Run("disk-local", func(b *testing.B) {
		d, err := store.OpenDisk(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.PutBatch(benchRecords(batch, i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "recs/s")
	})
	b.Run("disk-loopback", func(b *testing.B) {
		srv := cluster.NewDiskStoreServer(b.TempDir())
		defer srv.Close()
		rs, err := cluster.LoopbackStore(srv, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer rs.Close()
		c := rs.Collection("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.PutBatch(benchRecords(batch, i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "recs/s")
	})
}

// BenchmarkStoreGet measures point reads local vs loopback.
func BenchmarkStoreGet(b *testing.B) {
	const n = 512
	recs := benchRecords(n, 0)
	b.Run("disk-local", func(b *testing.B) {
		d, err := store.OpenDisk(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		if err := d.PutBatch(recs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := d.Get(recs[i%n].URL); err != nil || !ok {
				b.Fatalf("get: ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("disk-loopback", func(b *testing.B) {
		srv := cluster.NewDiskStoreServer(b.TempDir())
		defer srv.Close()
		rs, err := cluster.LoopbackStore(srv, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer rs.Close()
		c := rs.Collection("bench")
		if err := c.PutBatch(recs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := c.Get(recs[i%n].URL); err != nil || !ok {
				b.Fatalf("get: ok=%v err=%v", ok, err)
			}
		}
	})
}
