package cluster_test

import (
	"fmt"
	"testing"

	"webevolve/internal/cluster"
	"webevolve/internal/core"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/simweb"
)

// BenchmarkClaimReleaseLocal is the in-process baseline for the
// claim/release hot path the distributed benchmarks are measured
// against.
func BenchmarkClaimReleaseLocal(b *testing.B) {
	q := frontier.NewSharded(16)
	for i := 0; i < 512; i++ {
		q.Push(fmt.Sprintf("http://site%03d.com/p%05d", i%32, i), 0, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, sid, ok := q.ClaimDue(1)
		if !ok {
			b.Fatal("nothing claimable")
		}
		q.Release(sid, 0)
		q.Push(e.URL, 0, 0)
	}
}

// BenchmarkClaimReleaseRemote measures the wire-protocol overhead of
// one claim + release + push cycle against 1, 2, and 4 loopback shard
// servers. With one server a claim is a single round trip; with more,
// it is a peek fan-out plus a commit.
func BenchmarkClaimReleaseRemote(b *testing.B) {
	for _, servers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			rs := loopbackCluster(b, servers, 16/servers)
			for i := 0; i < 512; i++ {
				rs.Push(fmt.Sprintf("http://site%03d.com/p%05d", i%32, i), 0, 0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, sid, ok := rs.ClaimDue(1)
				if !ok {
					b.Fatal("nothing claimable")
				}
				rs.Release(sid, 0)
				rs.Push(e.URL, 0, 0)
			}
			b.StopTimer()
			if err := rs.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPushRemote compares the apply path's two push strategies
// against loopback shard servers: per-URL frames vs one opPushBatch
// frame per server per dispatch round. The round-trip ratio is batch
// size / server count; the time ratio tracks it since loopback round
// trips dominate.
func BenchmarkPushRemote(b *testing.B) {
	const batch = 64
	entries := make([]frontier.Entry, batch)
	for i := range entries {
		entries[i] = frontier.Entry{
			URL: fmt.Sprintf("http://site%03d.com/p%05d", i%32, i),
			Due: float64(i % 9), Priority: float64(i % 3),
		}
	}
	for _, servers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("per-url/servers=%d", servers), func(b *testing.B) {
			rs := loopbackCluster(b, servers, 16/servers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, e := range entries {
					rs.Push(e.URL, e.Due, e.Priority)
				}
			}
			b.StopTimer()
			reportTripsPerBatch(b, rs)
		})
		b.Run(fmt.Sprintf("batched/servers=%d", servers), func(b *testing.B) {
			rs := loopbackCluster(b, servers, 16/servers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs.PushBatch(entries)
			}
			b.StopTimer()
			reportTripsPerBatch(b, rs)
		})
	}
}

func reportTripsPerBatch(b *testing.B, rs *cluster.RemoteShards) {
	if err := rs.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rs.RoundTrips())/float64(b.N), "trips/batch")
}

func benchWeb(b *testing.B) *simweb.Web {
	w, err := simweb.New(simweb.Config{
		Seed: 7,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 6, simweb.Edu: 3, simweb.NetOrg: 2, simweb.Gov: 1,
		},
		PagesPerSite: 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkCrawlPagesPerSec runs the full simulated crawl engine and
// reports pages/s with in-process shards vs the frontier behind 1, 2,
// and 4 loopback shard servers — the remote-claim overhead measured
// end to end.
func BenchmarkCrawlPagesPerSec(b *testing.B) {
	run := func(b *testing.B, fr frontier.ShardSet) {
		var pages int64
		for i := 0; i < b.N; i++ {
			w := benchWeb(b)
			cfg := core.Config{
				Seeds:          w.RootURLs(),
				CollectionSize: 300,
				PagesPerDay:    150,
				CycleDays:      4,
				RankEveryDays:  2,
				Workers:        4,
				Frontier:       fr,
			}
			c, err := core.New(cfg, fetch.NewSimFetcher(w))
			if err != nil {
				b.Fatal(err)
			}
			if err := c.RunUntil(10); err != nil {
				b.Fatal(err)
			}
			pages += c.Metrics().Fetches
		}
		b.ReportMetric(float64(pages)/b.Elapsed().Seconds(), "pages/s")
	}
	b.Run("local", func(b *testing.B) { run(b, nil) })
	for _, servers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			var pages int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rs := loopbackCluster(b, servers, 16/servers)
				w := benchWeb(b)
				cfg := core.Config{
					Seeds:          w.RootURLs(),
					CollectionSize: 300,
					PagesPerDay:    150,
					CycleDays:      4,
					RankEveryDays:  2,
					Workers:        4,
					Frontier:       rs,
				}
				c, err := core.New(cfg, fetch.NewSimFetcher(w))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := c.RunUntil(10); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := rs.Err(); err != nil {
					b.Fatal(err)
				}
				pages += c.Metrics().Fetches
				b.StartTimer()
			}
			b.ReportMetric(float64(pages)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}
