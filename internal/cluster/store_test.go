package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"webevolve/internal/frontier"
	"webevolve/internal/store"
)

func storeRec(url string, sum uint64) store.PageRecord {
	return store.PageRecord{
		URL: url, Checksum: sum, FetchedAt: 1.5, Version: 3,
		Links:      []string{"http://x.com/a", "http://x.com/b"},
		Importance: 0.25,
	}
}

// TestRemoteStoreRoundTrip drives every Collection op over loopback and
// checks the results against a local Mem collection.
func TestRemoteStoreRoundTrip(t *testing.T) {
	srv := NewMemStoreServer()
	t.Cleanup(func() { srv.Close() })
	rs, err := LoopbackStore(srv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	remote := rs.Collection("pages")
	local := store.NewMem()
	defer local.Close()

	var batch []store.PageRecord
	for i := 0; i < 40; i++ {
		r := storeRec(fmt.Sprintf("http://s%02d.com/p%03d", i%5, i), uint64(i))
		if i == 7 {
			r.Content = []byte("<html>body</html>")
		}
		batch = append(batch, r)
	}
	for _, c := range []store.Collection{remote, local} {
		if err := c.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := c.Put(storeRec("http://solo.com/", 99)); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(batch[3].URL); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete("http://never.com/"); err != nil {
			t.Fatal(err)
		}
	}

	if remote.Len() != local.Len() {
		t.Fatalf("Len %d vs %d", remote.Len(), local.Len())
	}
	if !reflect.DeepEqual(remote.URLs(), local.URLs()) {
		t.Fatalf("URLs diverge:\n%v\n%v", remote.URLs(), local.URLs())
	}
	for _, u := range local.URLs() {
		lr, lok, lerr := local.Get(u)
		rr, rok, rerr := remote.Get(u)
		if lerr != nil || rerr != nil || lok != rok {
			t.Fatalf("get %s: ok %v/%v err %v/%v", u, lok, rok, lerr, rerr)
		}
		if !reflect.DeepEqual(lr, rr) {
			t.Fatalf("get %s:\n local %+v\nremote %+v", u, lr, rr)
		}
	}
	if _, ok, err := remote.Get("http://missing.com/"); ok || err != nil {
		t.Fatalf("missing get: ok=%v err=%v", ok, err)
	}

	var localScan, remoteScan []store.PageRecord
	if err := local.Scan(func(r store.PageRecord) bool { localScan = append(localScan, r); return true }); err != nil {
		t.Fatal(err)
	}
	if err := remote.Scan(func(r store.PageRecord) bool { remoteScan = append(remoteScan, r); return true }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localScan, remoteScan) {
		t.Fatalf("scan diverges: %d vs %d records", len(remoteScan), len(localScan))
	}
	// Early stop.
	n := 0
	if err := remote.Scan(func(store.PageRecord) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("early-stop scan visited %d", n)
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteStoreScanChunks forces multi-chunk scans (more records than
// storeScanChunk) and checks order and completeness.
func TestRemoteStoreScanChunks(t *testing.T) {
	srv := NewMemStoreServer()
	t.Cleanup(func() { srv.Close() })
	rs, err := LoopbackStore(srv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	c := rs.Collection("big")
	n := storeScanChunk*2 + 17
	batch := make([]store.PageRecord, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, store.PageRecord{URL: fmt.Sprintf("http://big.com/p%06d", i), Checksum: uint64(i)})
	}
	if err := c.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	seen := 0
	prev := ""
	if err := c.Scan(func(r store.PageRecord) bool {
		if r.URL <= prev {
			t.Fatalf("scan out of order: %s after %s", r.URL, prev)
		}
		prev = r.URL
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("chunked scan saw %d records, want %d", seen, n)
	}
}

// TestRemoteStoreDiskPersists round-trips through a disk-backed store
// server: a second server over the same directory must serve what the
// first one stored, and a dropped ephemeral collection must be gone.
func TestRemoteStoreDiskPersists(t *testing.T) {
	dir := t.TempDir()
	srv := NewDiskStoreServer(dir)
	rs, err := LoopbackStore(srv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Collection("pages").Put(storeRec("http://keep.com/", 1)); err != nil {
		t.Fatal(err)
	}
	eph := rs.EphemeralCollection("gen-1")
	if err := eph.Put(storeRec("http://gone.com/", 2)); err != nil {
		t.Fatal(err)
	}
	if err := eph.Close(); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "gen-1")); err != nil {
		t.Fatal(err)
	}

	srv2 := NewDiskStoreServer(dir)
	t.Cleanup(func() { srv2.Close() })
	rs2, err := LoopbackStore(srv2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs2.Close() })
	got, ok, err := rs2.Collection("pages").Get("http://keep.com/")
	if err != nil || !ok || got.Checksum != 1 {
		t.Fatalf("persistent collection lost across restart: %+v ok=%v err=%v", got, ok, err)
	}
	if n := rs2.Collection("gen-1").Len(); n != 0 {
		t.Fatalf("dropped ephemeral collection resurrected with %d records", n)
	}
}

// TestRemoteStoreFlakyTransport runs the op mix over connections that
// die every few reads: redial + request-ID dedup must keep the remote
// contents identical to a local collection, with no sticky error.
func TestRemoteStoreFlakyTransport(t *testing.T) {
	srv := NewMemStoreServer()
	t.Cleanup(func() { srv.Close() })
	dial := func() (net.Conn, error) {
		conn, err := srv.Pipe()
		if err != nil {
			return nil, err
		}
		return &flakyConn{Conn: conn, limit: 7}, nil
	}
	rs, err := DialStore(dial, fastRetry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	remote := rs.Collection("pages")
	local := store.NewMem()
	defer local.Close()
	for i := 0; i < 30; i++ {
		r := storeRec(fmt.Sprintf("http://f.com/p%02d", i%10), uint64(i))
		for _, c := range []store.Collection{remote, local} {
			if err := c.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		if i%4 == 0 {
			u := fmt.Sprintf("http://f.com/p%02d", (i+5)%10)
			for _, c := range []store.Collection{remote, local} {
				if err := c.Delete(u); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if !reflect.DeepEqual(remote.URLs(), local.URLs()) {
		t.Fatalf("URLs diverge over flaky transport:\n%v\n%v", remote.URLs(), local.URLs())
	}
	for _, u := range local.URLs() {
		lr, _, _ := local.Get(u)
		rr, ok, err := remote.Get(u)
		if err != nil || !ok || !reflect.DeepEqual(lr, rr) {
			t.Fatalf("get %s over flaky transport: %+v vs %+v (ok=%v err=%v)", u, rr, lr, ok, err)
		}
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("flaky transport became sticky: %v", err)
	}
}

// TestStoreResetSweepsStaleCollections: Reset must also remove
// collections a *previous* server process left on disk — a restarted
// storerd has an empty open-collection map, but crawlsim's
// per-contender Reset still has to deliver an empty store, or a
// contender silently starts from a previous run's pages.
func TestStoreResetSweepsStaleCollections(t *testing.T) {
	dir := t.TempDir()
	srv := NewDiskStoreServer(dir)
	rs, err := LoopbackStore(srv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Collection("gen-1").Put(storeRec("http://stale.com/", 1)); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh server process over the same directory: gen-1 exists on
	// disk but is not open.
	srv2 := NewDiskStoreServer(dir)
	t.Cleanup(func() { srv2.Close() })
	rs2, err := LoopbackStore(srv2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs2.Close() })
	if err := rs2.Reset(); err != nil {
		t.Fatal(err)
	}
	// Stat before Len: reading the collection would lazily recreate an
	// empty directory.
	if _, err := os.Stat(filepath.Join(dir, "gen-1")); !os.IsNotExist(err) {
		t.Fatalf("stale collection directory survived Reset (stat err: %v)", err)
	}
	if n := rs2.Collection("gen-1").Len(); n != 0 {
		t.Fatalf("stale on-disk collection survived Reset with %d records", n)
	}
}

// TestStoreHelloRejectsWrongDaemon: a store client pointed at a shardd
// (and a shard client pointed at a storerd) must fail at connect, not
// corrupt a crawl later.
func TestStoreHelloRejectsWrongDaemon(t *testing.T) {
	shardSrv := NewShardServer(frontier.NewSharded(4))
	t.Cleanup(func() { shardSrv.Close() })
	if _, err := DialStore(shardSrv.Pipe, Options{}); err == nil {
		t.Fatal("store client accepted a shard server")
	}
	storeSrv := NewMemStoreServer()
	t.Cleanup(func() { storeSrv.Close() })
	if _, err := Dial([]Dialer{storeSrv.Pipe}, Options{}); err == nil {
		t.Fatal("shard client accepted a store server")
	}
}

// TestStoreReconnectRestartSemantics: a reconnect landing on a
// *restarted* store server must be refused when the server is
// memory-backed (its collections are gone; resuming would silently
// corrupt the crawl) and accepted when it is disk-backed (acknowledged
// writes survived).
func TestStoreReconnectRestartSemantics(t *testing.T) {
	t.Run("mem-restart-refused", func(t *testing.T) {
		srv1 := NewMemStoreServer()
		srv2 := NewMemStoreServer()
		t.Cleanup(func() { srv1.Close(); srv2.Close() })
		var target atomic.Pointer[StoreServer]
		target.Store(srv1)
		rs, err := DialStore(func() (net.Conn, error) { return target.Load().Pipe() }, fastRetry)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		c := rs.Collection("pages")
		if err := c.Put(storeRec("http://a.com/", 1)); err != nil {
			t.Fatal(err)
		}
		// "Restart": the original process dies, a fresh one (new boot ID,
		// empty collections) answers on the same address.
		target.Store(srv2)
		srv1.Close()
		if err := c.Put(storeRec("http://a.com/", 2)); err == nil {
			t.Fatal("write accepted against a restarted memory-backed store server")
		}
		if rs.Err() == nil {
			t.Fatal("restart not surfaced via Err")
		}
	})
	t.Run("disk-restart-accepted", func(t *testing.T) {
		dir := t.TempDir()
		srv1 := NewDiskStoreServer(dir)
		var target atomic.Pointer[StoreServer]
		target.Store(srv1)
		rs, err := DialStore(func() (net.Conn, error) { return target.Load().Pipe() }, fastRetry)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		c := rs.Collection("pages")
		if err := c.Put(storeRec("http://a.com/", 1)); err != nil {
			t.Fatal(err)
		}
		if err := srv1.Close(); err != nil {
			t.Fatal(err)
		}
		srv2 := NewDiskStoreServer(dir)
		t.Cleanup(func() { srv2.Close() })
		target.Store(srv2)
		if err := c.Put(storeRec("http://b.com/", 2)); err != nil {
			t.Fatalf("write refused across a durable restart: %v", err)
		}
		if got, ok, err := c.Get("http://a.com/"); err != nil || !ok || got.Checksum != 1 {
			t.Fatalf("pre-restart record lost: %+v ok=%v err=%v", got, ok, err)
		}
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStoreServerRejectsBadNames: names that could escape the backing
// directory are refused.
func TestStoreServerRejectsBadNames(t *testing.T) {
	srv := NewMemStoreServer()
	t.Cleanup(func() { srv.Close() })
	rs, err := LoopbackStore(srv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	for _, name := range []string{"", "..", ".hidden", "a/b", "a\\b", "x y"} {
		if err := rs.Collection(name).Put(storeRec("http://a.com/", 1)); err == nil {
			t.Fatalf("collection name %q accepted", name)
		}
	}
}
