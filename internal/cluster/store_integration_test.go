package cluster_test

import (
	"fmt"
	"reflect"
	"testing"

	"webevolve/internal/cluster"
	"webevolve/internal/core"
	"webevolve/internal/store"
)

// loopbackStore builds an in-process store server (memory- or
// disk-backed) and a RemoteStore client over net.Pipe.
func loopbackStore(t testing.TB, dir string) *cluster.RemoteStore {
	t.Helper()
	var srv *cluster.StoreServer
	if dir == "" {
		srv = cluster.NewMemStoreServer()
	} else {
		srv = cluster.NewDiskStoreServer(dir)
	}
	rs, err := cluster.LoopbackStore(srv, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rs.Close()
		srv.Close()
	})
	return rs
}

// remoteShadowed mirrors what core.New builds from Config.StoreServer:
// a Shadowed pair whose generations are named server-side collections.
func remoteShadowed(t testing.TB, rs *cluster.RemoteStore) *store.Shadowed {
	t.Helper()
	gen := 0
	sh, err := store.NewShadowed(nil, func() (store.Collection, error) {
		gen++
		return rs.EphemeralCollection(fmt.Sprintf("gen-%d", gen)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// TestRemoteStoreMountReclaimsStaleGens: a crawler that died before
// Close leaves its shadow generations on a durable store server; the
// next crawler mounting that server must reclaim them (or its "fresh"
// collection pair silently starts with the predecessor's pages) while
// leaving unrelated collections untouched.
func TestRemoteStoreMountReclaimsStaleGens(t *testing.T) {
	dir := t.TempDir()
	srv := cluster.NewDiskStoreServer(dir)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr().String()

	// The "crashed predecessor": gens with data, plus an unrelated
	// persistent collection.
	seed, err := cluster.DialStoreTCP(addr, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"gen-1", "gen-7"} {
		if err := seed.Collection(n).Put(store.PageRecord{URL: "http://stale.com/", Checksum: 9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Collection("pages").Put(store.PageRecord{URL: "http://keep.com/", Checksum: 1}); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	w, f := testWeb(t, 5)
	cfg := baseConfig(w)
	cfg.StoreServer = addr
	c, err := core.New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Collection().Len(); n != 0 {
		t.Fatalf("fresh crawler mounted %d stale pages", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	check, err := cluster.DialStoreTCP(addr, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { check.Close() })
	names, err := check.ListCollections()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n != "pages" {
			t.Fatalf("stale or leaked collection %q after mount+close (have %v)", n, names)
		}
	}
	if got, ok, err := check.Collection("pages").Get("http://keep.com/"); err != nil || !ok || got.Checksum != 1 {
		t.Fatalf("unrelated collection disturbed: %+v ok=%v err=%v", got, ok, err)
	}
}

// TestRemoteStoreCrawlInvariance extends the engine's determinism
// contract to the repository: a simulated crawl whose collection pair
// lives behind the store wire protocol — memory- or disk-backed, in
// in-place or shadow update style — produces results bit-identical to
// the same crawl with local in-memory collections.
func TestRemoteStoreCrawlInvariance(t *testing.T) {
	type outcome struct {
		m    core.Metrics
		recs []store.PageRecord
		all  int
	}
	run := func(upd core.UpdateStyle, sh *store.Shadowed) outcome {
		w, f := testWeb(t, 33)
		cfg := baseConfig(w)
		cfg.Workers = 4
		cfg.Update = upd
		if sh == nil {
			sh = store.NewShadowedMem()
		}
		c, err := core.NewWithStore(cfg, f, sh)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntil(12); err != nil {
			t.Fatal(err)
		}
		var recs []store.PageRecord
		if err := c.Collection().Scan(func(r store.PageRecord) bool {
			recs = append(recs, r)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return outcome{m: c.Metrics(), recs: recs, all: c.AllUrls().Len()}
	}
	for _, upd := range []core.UpdateStyle{core.InPlace, core.Shadow} {
		ref := run(upd, nil)
		for _, backend := range []string{"mem", "disk"} {
			dir := ""
			if backend == "disk" {
				dir = t.TempDir()
			}
			rs := loopbackStore(t, dir)
			got := run(upd, remoteShadowed(t, rs))
			if err := rs.Err(); err != nil {
				t.Fatalf("%v/%s: store client error: %v", upd, backend, err)
			}
			if got.m != ref.m {
				t.Fatalf("%v/%s: metrics diverge\nremote: %+v\nlocal:  %+v", upd, backend, got.m, ref.m)
			}
			if got.all != ref.all {
				t.Fatalf("%v/%s: AllUrls %d vs %d", upd, backend, got.all, ref.all)
			}
			if len(got.recs) != len(ref.recs) {
				t.Fatalf("%v/%s: collection %d vs %d records", upd, backend, len(got.recs), len(ref.recs))
			}
			for i := range got.recs {
				if !reflect.DeepEqual(got.recs[i], ref.recs[i]) {
					t.Fatalf("%v/%s: record %d diverges\nremote: %+v\nlocal:  %+v",
						upd, backend, i, got.recs[i], ref.recs[i])
				}
			}
		}
	}
}
