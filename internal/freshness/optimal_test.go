package freshness

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptimalAllocationMeetsBudget(t *testing.T) {
	rates := []float64{0.01, 0.1, 0.5, 2, 10}
	const budget = 3.0
	fs, err := OptimalAllocation(rates, budget)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range fs {
		if f < 0 {
			t.Fatalf("negative frequency %v", f)
		}
		sum += f
	}
	if math.Abs(sum-budget) > 1e-6*budget {
		t.Fatalf("allocated %v, budget %v", sum, budget)
	}
}

func TestOptimalAllocationValidation(t *testing.T) {
	if _, err := OptimalAllocation(nil, 1); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := OptimalAllocation([]float64{1}, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := OptimalAllocation([]float64{math.NaN()}, 1); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if _, err := OptimalAllocation([]float64{-1}, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestOptimalAllocationAllImmutable(t *testing.T) {
	fs, err := OptimalAllocation([]float64{0, 0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if math.Abs(f-1) > 1e-9 {
			t.Fatalf("immutable fallback %v", fs)
		}
	}
}

func TestFigure9ShapeUnimodal(t *testing.T) {
	// The optimal frequency as a function of change rate must rise, peak
	// and then fall — Figure 9's defining shape.
	var rates []float64
	r := 0.01
	for i := 0; i < 200; i++ {
		rates = append(rates, r)
		r *= 1.05
	}
	pts, err := Figure9Curve(rates, float64(len(rates)))
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for i, p := range pts {
		if p.F > pts[peak].F {
			peak = i
		}
	}
	if peak == 0 || peak == len(pts)-1 {
		t.Fatalf("no interior peak (peak index %d of %d)", peak, len(pts))
	}
	// Rising before the peak, falling after (allow tiny numeric jitter).
	for i := 1; i <= peak; i++ {
		if pts[i].F < pts[i-1].F-1e-6 {
			t.Fatalf("not rising at %d: %v -> %v", i, pts[i-1].F, pts[i].F)
		}
	}
	for i := peak + 1; i < len(pts); i++ {
		if pts[i].F > pts[i-1].F+1e-6 {
			t.Fatalf("not falling at %d: %v -> %v", i, pts[i-1].F, pts[i].F)
		}
	}
}

func TestVeryFastPagesGetZero(t *testing.T) {
	// The paper's p1/p2 example: with one visit/day of budget for two
	// pages, a page changing every second should be abandoned in favour
	// of the daily-changing page.
	rates := []float64{1, 86400} // changes/day: daily vs every second
	fs, err := OptimalAllocation(rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fs[1] != 0 {
		t.Fatalf("hopeless page got frequency %v", fs[1])
	}
	if math.Abs(fs[0]-1) > 1e-6 {
		t.Fatalf("keepable page got %v, want the whole budget", fs[0])
	}
}

func TestOptimalBeatsUniformAndProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rates := make([]float64, 500)
	for i := range rates {
		// Log-uniform rates across 4 decades.
		rates[i] = math.Pow(10, -2+4*rng.Float64())
	}
	const budget = 500.0
	opt, err := OptimalAllocation(rates, budget)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := UniformAllocation(len(rates), budget)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := ProportionalAllocation(rates, budget)
	if err != nil {
		t.Fatal(err)
	}
	fOpt, _ := ExpectedFreshness(rates, opt)
	fUni, _ := ExpectedFreshness(rates, uni)
	fProp, _ := ExpectedFreshness(rates, prop)
	if fOpt < fUni {
		t.Fatalf("optimal %v below uniform %v", fOpt, fUni)
	}
	if fOpt < fProp {
		t.Fatalf("optimal %v below proportional %v", fOpt, fProp)
	}
	// The paper's deeper point: proportional is WORSE than uniform on
	// skewed workloads (it chases hopeless pages).
	if fProp >= fUni {
		t.Fatalf("proportional %v should trail uniform %v on a skewed workload", fProp, fUni)
	}
}

func TestAllocationGainPositive(t *testing.T) {
	rates := []float64{0.01, 0.02, 0.1, 1, 5, 20}
	opt, uni, gain, err := AllocationGain(rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt < uni || gain <= 0 {
		t.Fatalf("opt %v uni %v gain %v", opt, uni, gain)
	}
}

func TestUniformAllocation(t *testing.T) {
	fs, err := UniformAllocation(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f != 0.5 {
			t.Fatalf("uniform %v", fs)
		}
	}
	if _, err := UniformAllocation(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := UniformAllocation(1, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestProportionalAllocation(t *testing.T) {
	fs, err := ProportionalAllocation([]float64{1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fs[0]-1) > 1e-12 || math.Abs(fs[1]-3) > 1e-12 {
		t.Fatalf("proportional %v", fs)
	}
	// All-zero rates fall back to uniform.
	fs, err = ProportionalAllocation([]float64{0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fs[0] != 2 || fs[1] != 2 {
		t.Fatalf("zero-rate fallback %v", fs)
	}
	if _, err := ProportionalAllocation([]float64{-1}, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestExpectedFreshnessEdgeCases(t *testing.T) {
	// Immutable page with no visits is always fresh; changing page with
	// no visits is eventually always stale.
	got, err := ExpectedFreshness([]float64{0, 1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("edge freshness %v", got)
	}
	if _, err := ExpectedFreshness([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ExpectedFreshness(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestMarginalDecreasingInF(t *testing.T) {
	const l = 0.5
	prev := math.Inf(1)
	for _, f := range []float64{0.01, 0.1, 1, 10, 100} {
		m := marginal(l, f)
		if m > prev {
			t.Fatalf("marginal not decreasing at f=%v", f)
		}
		prev = m
	}
	if marginal(0, 1) != 0 {
		t.Fatal("immutable marginal must be 0")
	}
}

func TestOptimalAllocationMatchesSimulatedFreshness(t *testing.T) {
	// End-to-end: the analytic objective value matches a Monte-Carlo
	// simulation of the allocated schedule.
	rates := []float64{0.05, 0.2, 1}
	fs, err := OptimalAllocation(rates, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedFreshness(rates, fs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// Use many page replicas per rate for variance reduction.
	const reps = 400
	var simRates []float64
	var simFreqs []float64
	for i := range rates {
		for r := 0; r < reps; r++ {
			simRates = append(simRates, rates[i])
			simFreqs = append(simFreqs, fs[i])
		}
	}
	got, err := SimulateAvgFreshness(rng, simRates,
		ScheduleVariableInPlace(simFreqs, 400), 50, 400, 150)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("simulated %v, analytic %v", got, want)
	}
}
