// Package freshness implements the freshness metric of [CGM99b] that
// Section 4 of the paper uses to compare crawler designs, together with
// the closed-form Poisson-model results behind Figures 7 and 8, Table 2
// and the Section 4 sensitivity example, and the optimal revisit-frequency
// allocation behind Figure 9.
//
// # Model
//
// Each page changes according to a Poisson process with rate lambda. A
// page copy synced (re-crawled) at time s is "fresh" at time t >= s with
// probability exp(-lambda*(t-s)) — the Poisson survival function. The
// freshness of a collection at time t is the expected fraction of fresh
// pages; the paper compares designs on freshness averaged over time.
//
// # Closed forms
//
// Let T be the revisit cycle (e.g. one month), w the duration of a batch
// crawl within the cycle, and define
//
//	FBar(x) = (1 - exp(-x)) / x     (with FBar(0) = 1).
//
// A page re-synced every I time units has time-average freshness
// FBar(lambda*I). From this, the four design points of Table 2 are:
//
//	steady, in-place:  FBar(lambda*T)
//	batch,  in-place:  FBar(lambda*T)            (same time average)
//	steady, shadowing: FBar(lambda*T)^2
//	batch,  shadowing: FBar(lambda*w) * FBar(lambda*T)
//
// The shadowing penalty factors neatly: a shadowed collection serves
// copies that were already FBar(...) fresh on average at swap time and
// then decay for a further cycle. As the batch crawl shortens (w -> 0),
// FBar(lambda*w) -> 1 and batch shadowing approaches batch in-place —
// exactly the paper's observation that shadowing costs a batch crawler
// little but costs a steady crawler (w = T) a lot.
//
// With the paper's parameters — pages change every 4 months on average,
// monthly cycle, one-week batch crawl — these give 0.88, 0.88, 0.77, 0.86
// (Table 2), and with the sensitivity example's parameters (monthly
// changes, two-week crawl) 0.63 vs 0.50.
package freshness

import (
	"errors"
	"math"
)

// FBar computes (1-exp(-x))/x, the time-average freshness of a page with
// change rate lambda re-synced every I, at x = lambda*I. FBar(0) = 1.
func FBar(x float64) float64 {
	if x < 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < 1e-8 {
		// Series expansion avoids cancellation: 1 - x/2 + x^2/6.
		return 1 - x/2 + x*x/6
	}
	return (1 - math.Exp(-x)) / x
}

// SteadyInPlace returns the time-average freshness of a steady, in-place
// crawler that revisits every page once per cycle.
func SteadyInPlace(lambda, cycle float64) float64 {
	return FBar(lambda * cycle)
}

// BatchInPlace returns the time-average freshness of a batch-mode,
// in-place crawler with the given cycle. The crawl duration does not
// affect the time average (each page is still synced once per cycle);
// it only shapes the within-cycle curve (Figure 7(a)).
func BatchInPlace(lambda, cycle float64) float64 {
	return FBar(lambda * cycle)
}

// SteadyShadow returns the time-average freshness of the *current*
// collection for a steady crawler with shadowing: the shadow is built
// uniformly over each cycle and swapped in at cycle end (Figure 8(a)).
func SteadyShadow(lambda, cycle float64) float64 {
	f := FBar(lambda * cycle)
	return f * f
}

// BatchShadow returns the time-average freshness of the current
// collection for a batch crawler with shadowing: the shadow is built
// during the first crawlDur of each cycle and swapped in when the crawl
// completes (Figure 8(b)).
func BatchShadow(lambda, cycle, crawlDur float64) float64 {
	if crawlDur > cycle {
		crawlDur = cycle
	}
	return FBar(lambda*crawlDur) * FBar(lambda*cycle)
}

// AvgAge returns the time-average age of a page with change rate lambda
// re-synced every interval I. Age is 0 while the copy is fresh and the
// time since the first unseen change otherwise ([CGM99b]'s second
// metric):
//
//	A(lambda, I) = I/2 - 1/lambda + (1 - exp(-lambda*I)) / (lambda^2 * I).
func AvgAge(lambda, interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	if lambda <= 0 {
		return 0
	}
	x := lambda * interval
	return interval/2 - 1/lambda + (1-math.Exp(-x))/(lambda*lambda*interval)
}

// Design identifies one of the four design points of Table 2.
type Design struct {
	Batch  bool // batch-mode (vs steady)
	Shadow bool // shadowing (vs in-place update)
}

// String names the design as in the paper.
func (d Design) String() string {
	mode := "steady"
	if d.Batch {
		mode = "batch-mode"
	}
	upd := "in-place"
	if d.Shadow {
		upd = "shadowing"
	}
	return mode + "/" + upd
}

// AvgFreshness returns the design's time-average freshness for a page of
// the given rate under the given cycle and batch crawl duration.
func (d Design) AvgFreshness(lambda, cycle, crawlDur float64) float64 {
	switch {
	case !d.Batch && !d.Shadow:
		return SteadyInPlace(lambda, cycle)
	case d.Batch && !d.Shadow:
		return BatchInPlace(lambda, cycle)
	case !d.Batch && d.Shadow:
		return SteadyShadow(lambda, cycle)
	default:
		return BatchShadow(lambda, cycle, crawlDur)
	}
}

// Designs lists the four design points in Table 2 order (rows: in-place,
// shadowing; columns: steady, batch-mode).
var Designs = []Design{
	{Batch: false, Shadow: false},
	{Batch: true, Shadow: false},
	{Batch: false, Shadow: true},
	{Batch: true, Shadow: true},
}

// Table2 computes the Table 2 freshness matrix for a collection whose
// pages all change with the given mean interval, under the given cycle
// and batch crawl duration. The paper's parameters are
// meanChangeInterval = 4 months, cycle = 1 month, crawlDur = 1 week.
func Table2(meanChangeInterval, cycle, crawlDur float64) (map[Design]float64, error) {
	if meanChangeInterval <= 0 || cycle <= 0 || crawlDur <= 0 {
		return nil, errors.New("freshness: parameters must be positive")
	}
	lambda := 1 / meanChangeInterval
	out := make(map[Design]float64, len(Designs))
	for _, d := range Designs {
		out[d] = d.AvgFreshness(lambda, cycle, crawlDur)
	}
	return out, nil
}

// MeanOverRates averages a per-rate freshness function over a set of page
// rates: the collection-level freshness when pages change at different
// speeds.
func MeanOverRates(rates []float64, f func(lambda float64) float64) (float64, error) {
	if len(rates) == 0 {
		return 0, errors.New("freshness: no rates")
	}
	var sum float64
	for _, r := range rates {
		if r < 0 {
			return 0, errors.New("freshness: negative rate")
		}
		sum += f(r)
	}
	return sum / float64(len(rates)), nil
}
