package freshness

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// The age metric ([CGM99b]'s second metric, mentioned in Section 4): the
// age of a page copy is 0 while it is fresh and the time elapsed since
// the first unseen change otherwise. The paper notes that comparing
// crawler designs by age "is not significantly different" from comparing
// by freshness; SimulateAvgAge lets that claim be checked directly
// against this repository's schedules, and AvgAge (freshness.go) gives
// the closed form for periodic in-place sync.

// SimulateAvgAge estimates the time-average age of the current collection
// over [warmup, horizon) under the given schedule, in the schedule's time
// unit. Pages never made visible contribute age t (stale since forever
// bounded by the probe instant).
func SimulateAvgAge(rng *rand.Rand, rates []float64, sched SyncSchedule, warmup, horizon float64, samples int) (float64, error) {
	if len(rates) == 0 {
		return 0, errors.New("freshness: no pages")
	}
	if samples < 1 || horizon <= warmup {
		return 0, errors.New("freshness: bad sampling window")
	}
	var totalAge float64
	var probes int
	for i, rate := range rates {
		syncs, visible := sched(i)
		if len(syncs) != len(visible) {
			return 0, errors.New("freshness: schedule length mismatch")
		}
		changes := poissonTimes(rng, rate, horizon)
		for k := 0; k < samples; k++ {
			t := warmup + (horizon-warmup)*float64(k)/float64(samples)
			j := sort.SearchFloat64s(visible, math.Nextafter(t, math.Inf(1))) - 1
			probes++
			if j < 0 {
				totalAge += t
				continue
			}
			s := syncs[j]
			for m := j - 1; m >= 0; m-- {
				if visible[m] <= t && syncs[m] > s {
					s = syncs[m]
				}
			}
			// First change strictly after the sync.
			ci := sort.SearchFloat64s(changes, s)
			for ci < len(changes) && changes[ci] <= s {
				ci++
			}
			if ci < len(changes) && changes[ci] <= t {
				totalAge += t - changes[ci]
			}
		}
	}
	return totalAge / float64(probes), nil
}

// AgeTable2 computes the Table 2 analog under the age metric by
// Monte-Carlo simulation: the time-average age of the current collection
// for each of the four design points, with the same parameters as
// Table2. Lower is better. The orderings must match Table 2's (the
// paper's "conclusions are not significantly different" remark).
func AgeTable2(rng *rand.Rand, meanChangeInterval, cycle, crawlDur float64, pages int, horizon float64) (map[Design]float64, error) {
	if meanChangeInterval <= 0 || cycle <= 0 || crawlDur <= 0 || pages < 1 {
		return nil, errors.New("freshness: bad age-table parameters")
	}
	lambda := 1 / meanChangeInterval
	rates := make([]float64, pages)
	for i := range rates {
		rates[i] = lambda
	}
	warm := 2 * cycle
	scheds := map[Design]SyncSchedule{
		{false, false}: ScheduleSteadyInPlace(pages, cycle, horizon),
		{true, false}:  ScheduleBatchInPlace(pages, cycle, crawlDur, horizon),
		{false, true}:  ScheduleSteadyShadow(pages, cycle, horizon),
		{true, true}:   ScheduleBatchShadow(pages, cycle, crawlDur, horizon),
	}
	out := make(map[Design]float64, len(scheds))
	for d, sched := range scheds {
		age, err := SimulateAvgAge(rng, rates, sched, warm, horizon, 100)
		if err != nil {
			return nil, err
		}
		out[d] = age
	}
	return out, nil
}
