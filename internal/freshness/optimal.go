package freshness

import (
	"errors"
	"math"
	"sort"
)

// This file implements the variable-revisit-frequency optimization of
// Figure 9 ([CGM99b]): given pages with change rates lambda_i and a total
// revisit-frequency budget B (pages the crawler can fetch per unit time),
// choose per-page revisit frequencies f_i maximizing the collection's
// time-average freshness
//
//	(1/N) * sum_i FBar(lambda_i / f_i)   subject to  sum_i f_i = B.
//
// The objective is concave in each f_i, so the optimum equalizes marginal
// freshness: there is a multiplier mu such that for every visited page
// d/df FBar(lambda_i/f_i) = mu, and pages whose marginal value at f = 0+
// (which is 1/lambda_i) does not reach mu are never visited at all. This
// produces the paper's counter-intuitive Figure 9 shape: optimal revisit
// frequency *rises* with change frequency for slow pages and *falls* for
// fast pages — pages that change too often are not worth refreshing.

// marginal returns d/df of FBar(lambda/f) at the given f > 0:
//
//	(1/lambda)*(1 - exp(-lambda/f)) - (1/f)*exp(-lambda/f).
func marginal(lambda, f float64) float64 {
	if lambda == 0 {
		return 0 // a never-changing page gains nothing from revisits
	}
	x := lambda / f
	e := math.Exp(-x)
	return (1-e)/lambda - e/f
}

// freqForMultiplier inverts the marginal condition: the f > 0 with
// marginal(lambda, f) = mu, or 0 when even f -> 0+ cannot reach mu
// (marginal at 0+ is 1/lambda). The marginal is strictly decreasing in f,
// so bisection applies.
func freqForMultiplier(lambda, mu, fMax float64) float64 {
	if lambda == 0 || mu >= 1/lambda {
		return 0
	}
	lo, hi := 0.0, fMax
	// Grow hi until the marginal falls below mu (it tends to 0 as f
	// grows, so this terminates).
	for marginal(lambda, hi) > mu {
		hi *= 2
		if hi > 1e18 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if marginal(lambda, mid) > mu {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// OptimalAllocation returns per-page revisit frequencies maximizing the
// collection's time-average freshness subject to sum(f) = budget.
// Frequencies and budget share whatever time unit the rates use
// (typically visits/day against changes/day).
func OptimalAllocation(rates []float64, budget float64) ([]float64, error) {
	if len(rates) == 0 {
		return nil, errors.New("freshness: no rates")
	}
	if budget <= 0 {
		return nil, errors.New("freshness: budget must be positive")
	}
	for _, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, errors.New("freshness: rates must be finite and non-negative")
		}
	}
	total := func(mu float64) (float64, []float64) {
		fs := make([]float64, len(rates))
		var sum float64
		for i, r := range rates {
			f := freqForMultiplier(r, mu, budget)
			fs[i] = f
			sum += f
		}
		return sum, fs
	}
	// The total allocated frequency decreases in mu. Bisect mu so the
	// budget is met. Upper bound for mu: max over pages of the marginal
	// at f->0+, i.e. 1/min positive rate.
	muHi := 0.0
	for _, r := range rates {
		if r > 0 && 1/r > muHi {
			muHi = 1 / r
		}
	}
	if muHi == 0 {
		// All pages are immutable; frequencies are irrelevant. Spread the
		// budget uniformly for determinism.
		fs := make([]float64, len(rates))
		for i := range fs {
			fs[i] = budget / float64(len(rates))
		}
		return fs, nil
	}
	muLo := 0.0 // mu -> 0 allocates as much as each page can absorb
	var fs []float64
	for i := 0; i < 200; i++ {
		mu := (muLo + muHi) / 2
		sum, cand := total(mu)
		fs = cand
		if math.Abs(sum-budget) <= 1e-9*budget {
			break
		}
		if sum > budget {
			muLo = mu
		} else {
			muHi = mu
		}
	}
	// Normalize tiny residual error onto visited pages so the budget
	// constraint holds exactly.
	var sum float64
	for _, f := range fs {
		sum += f
	}
	if sum > 0 {
		scale := budget / sum
		for i := range fs {
			fs[i] *= scale
		}
	}
	return fs, nil
}

// UniformAllocation spreads the budget equally: the fixed-frequency
// policy of Section 4, natural for a batch-mode crawler.
func UniformAllocation(n int, budget float64) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("freshness: need at least one page")
	}
	if budget <= 0 {
		return nil, errors.New("freshness: budget must be positive")
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = budget / float64(n)
	}
	return fs, nil
}

// ProportionalAllocation assigns frequency proportional to change rate —
// the intuitive policy the paper warns about. Pages with zero rate get
// zero frequency; if all rates are zero it falls back to uniform.
func ProportionalAllocation(rates []float64, budget float64) ([]float64, error) {
	if len(rates) == 0 {
		return nil, errors.New("freshness: no rates")
	}
	if budget <= 0 {
		return nil, errors.New("freshness: budget must be positive")
	}
	var sum float64
	for _, r := range rates {
		if r < 0 {
			return nil, errors.New("freshness: negative rate")
		}
		sum += r
	}
	if sum == 0 {
		return UniformAllocation(len(rates), budget)
	}
	fs := make([]float64, len(rates))
	for i, r := range rates {
		fs[i] = budget * r / sum
	}
	return fs, nil
}

// ExpectedFreshness returns the collection's time-average freshness under
// the given per-page frequencies: mean over pages of FBar(rate/f), where
// a page with f = 0 contributes its never-refreshed freshness (1 for an
// immutable page, 0 for a changing page, since an unrefreshed copy of a
// changing page is eventually stale forever).
func ExpectedFreshness(rates, freqs []float64) (float64, error) {
	if len(rates) != len(freqs) {
		return 0, errors.New("freshness: length mismatch")
	}
	if len(rates) == 0 {
		return 0, errors.New("freshness: no pages")
	}
	var sum float64
	for i, r := range rates {
		f := freqs[i]
		switch {
		case r == 0:
			sum += 1
		case f <= 0:
			// Never revisited: fresh only until the first change; the
			// long-run time average is 0.
		default:
			sum += FBar(r / f)
		}
	}
	return sum / float64(len(rates)), nil
}

// Figure9Curve solves the allocation for a grid of change rates embedded
// in a reference workload and returns (lambda, f*) pairs sorted by
// lambda: the curve of Figure 9. rates defines the workload (the
// collection's rate distribution); budget is the total revisit
// frequency. The returned points are the workload pages' own optimal
// frequencies, deduplicated and sorted.
func Figure9Curve(rates []float64, budget float64) ([]Point, error) {
	fs, err := OptimalAllocation(rates, budget)
	if err != nil {
		return nil, err
	}
	pts := make([]Point, len(rates))
	for i := range rates {
		pts[i] = Point{T: rates[i], F: fs[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return pts, nil
}

// AllocationGain compares the optimal allocation's freshness to the
// uniform allocation's on the same workload, returning (optimal, uniform,
// relative gain). The paper reports gains of 10%-23% ([CGM99b]).
func AllocationGain(rates []float64, budget float64) (opt, uni, gain float64, err error) {
	of, err := OptimalAllocation(rates, budget)
	if err != nil {
		return 0, 0, 0, err
	}
	uf, err := UniformAllocation(len(rates), budget)
	if err != nil {
		return 0, 0, 0, err
	}
	opt, err = ExpectedFreshness(rates, of)
	if err != nil {
		return 0, 0, 0, err
	}
	uni, err = ExpectedFreshness(rates, uf)
	if err != nil {
		return 0, 0, 0, err
	}
	if uni > 0 {
		gain = (opt - uni) / uni
	}
	return opt, uni, gain, nil
}
