package freshness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFBarBasics(t *testing.T) {
	if FBar(0) != 1 {
		t.Fatal("FBar(0) != 1")
	}
	if !math.IsNaN(FBar(-1)) {
		t.Fatal("FBar(-1) not NaN")
	}
	// Small-x series path agrees with the Taylor expansion (the direct
	// formula suffers catastrophic cancellation down here, which is why
	// the series path exists).
	x := 1e-9
	want := 1 - x/2 + x*x/6
	if !close(FBar(x), want, 1e-15) {
		t.Fatalf("series %v vs taylor %v", FBar(x), want)
	}
	// And at moderate x the two paths agree.
	x = 1e-6
	direct := (1 - math.Exp(-x)) / x
	if !close(FBar(x), direct, 1e-9) {
		t.Fatalf("series %v vs direct %v at x=1e-6", FBar(x), direct)
	}
}

func TestFBarMonotoneDecreasingProperty(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 50))
		b = math.Abs(math.Mod(b, 50))
		if a > b {
			a, b = b, a
		}
		return FBar(a) >= FBar(b)-1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	// Paper parameters: 4-month change interval, monthly cycle, 1-week
	// batch crawl -> 0.88 / 0.88 / 0.77 / 0.86.
	m, err := Table2(4, 1, 7.0/30)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d    Design
		want float64
		tol  float64
	}{
		{Design{false, false}, 0.88, 0.01},
		{Design{true, false}, 0.88, 0.01},
		{Design{false, true}, 0.77, 0.015}, // exact value 0.783
		{Design{true, true}, 0.86, 0.01},
	}
	for _, c := range cases {
		if !close(m[c.d], c.want, c.tol) {
			t.Errorf("%s: %v, want %v +- %v", c.d, m[c.d], c.want, c.tol)
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	// in-place >= batch-shadow >= steady-shadow for any parameters.
	for _, mean := range []float64{1, 4, 12} {
		m, err := Table2(mean, 1, 7.0/30)
		if err != nil {
			t.Fatal(err)
		}
		ip := m[Design{false, false}]
		bs := m[Design{true, true}]
		ss := m[Design{false, true}]
		if !(ip >= bs && bs >= ss) {
			t.Errorf("mean %v: ordering violated: %v %v %v", mean, ip, bs, ss)
		}
	}
}

func TestSensitivityExample(t *testing.T) {
	// Monthly changes, 2-week batch crawl: 0.63 in-place vs 0.50 shadow.
	if got := BatchInPlace(1, 1); !close(got, 0.63, 0.005) {
		t.Fatalf("in-place %v, want 0.63", got)
	}
	if got := BatchShadow(1, 1, 0.5); !close(got, 0.50, 0.005) {
		t.Fatalf("shadow %v, want 0.50", got)
	}
}

func TestSteadyEqualsBatchInPlace(t *testing.T) {
	// The paper: equal average speed implies equal time-average
	// freshness for steady and batch in-place crawlers.
	if err := quick.Check(func(l, c float64) bool {
		l = math.Abs(math.Mod(l, 10)) + 0.01
		c = math.Abs(math.Mod(c, 10)) + 0.01
		return close(SteadyInPlace(l, c), BatchInPlace(l, c), 1e-12)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShadowNeverBeatsInPlace(t *testing.T) {
	if err := quick.Check(func(l, c, w float64) bool {
		l = math.Abs(math.Mod(l, 10)) + 0.01
		c = math.Abs(math.Mod(c, 10)) + 0.01
		w = math.Abs(math.Mod(w, 1))*c + 1e-6
		return SteadyShadow(l, c) <= SteadyInPlace(l, c)+1e-12 &&
			BatchShadow(l, c, w) <= BatchInPlace(l, c)+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchShadowApproachesInPlaceAsCrawlShortens(t *testing.T) {
	const l, c = 0.25, 1.0
	prev := 0.0
	for _, w := range []float64{0.5, 0.25, 0.1, 0.01, 0.001} {
		got := BatchShadow(l, c, w)
		if got < prev {
			t.Fatalf("not monotone as w shrinks: %v after %v", got, prev)
		}
		prev = got
	}
	if !close(prev, BatchInPlace(l, c), 1e-3) {
		t.Fatalf("limit %v, want %v", prev, BatchInPlace(l, c))
	}
}

func TestBatchShadowClampsCrawlToCycle(t *testing.T) {
	if got, want := BatchShadow(1, 1, 5), SteadyShadow(1, 1); !close(got, want, 1e-12) {
		t.Fatalf("over-long crawl %v, want steady-shadow %v", got, want)
	}
}

func TestAvgAge(t *testing.T) {
	// Immutable pages and zero intervals have age 0.
	if AvgAge(0, 10) != 0 || AvgAge(1, 0) != 0 {
		t.Fatal("degenerate ages nonzero")
	}
	// For lambda*I -> infinity, avg age -> I/2 - 1/lambda.
	const l, i = 100.0, 10.0
	if got, want := AvgAge(l, i), i/2-1/l; !close(got, want, 1e-3) {
		t.Fatalf("asymptotic age %v, want %v", got, want)
	}
	// Age decreases as revisits become more frequent.
	if AvgAge(1, 1) >= AvgAge(1, 10) {
		t.Fatal("age not increasing in interval")
	}
}

func TestAvgAgeMatchesSimulation(t *testing.T) {
	// Direct event-driven check of the closed form.
	rng := rand.New(rand.NewSource(42))
	const l, interval = 0.5, 2.0
	const cycles = 20000
	var total float64
	var samples int
	for c := 0; c < cycles; c++ {
		// One sync interval: change times are Poisson(l) on [0,interval).
		var changes []float64
		tt := rng.ExpFloat64() / l
		for tt < interval {
			changes = append(changes, tt)
			tt += rng.ExpFloat64() / l
		}
		// Probe age at a uniform instant.
		u := rng.Float64() * interval
		age := 0.0
		if len(changes) > 0 && changes[0] <= u {
			age = u - changes[0]
		}
		total += age
		samples++
	}
	got := total / float64(samples)
	want := AvgAge(l, interval)
	if !close(got, want, 0.02) {
		t.Fatalf("simulated age %v, formula %v", got, want)
	}
}

func TestDesignStringAndList(t *testing.T) {
	if (Design{}).String() != "steady/in-place" {
		t.Fatal((Design{}).String())
	}
	if (Design{Batch: true, Shadow: true}).String() != "batch-mode/shadowing" {
		t.Fatal("batch/shadow name")
	}
	if len(Designs) != 4 {
		t.Fatal("Designs must enumerate the 2x2 matrix")
	}
}

func TestTable2Validation(t *testing.T) {
	if _, err := Table2(0, 1, 1); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := Table2(4, -1, 1); err == nil {
		t.Fatal("negative cycle accepted")
	}
}

func TestMeanOverRates(t *testing.T) {
	got, err := MeanOverRates([]float64{0.1, 0.3}, func(l float64) float64 { return l })
	if err != nil || !close(got, 0.2, 1e-12) {
		t.Fatalf("mean %v err %v", got, err)
	}
	if _, err := MeanOverRates(nil, nil); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := MeanOverRates([]float64{-1}, func(float64) float64 { return 0 }); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// --- curve tests ---

func TestCurveSteadyIsConstantAtFBar(t *testing.T) {
	const l, c = 2.0, 1.0
	want := FBar(l * c)
	for _, tt := range []float64{0, 0.3, 0.7, 0.999} {
		if got := CurveSteadyInPlace(l, c); !close(got, want, 1e-12) {
			t.Fatalf("steady curve at %v: %v", tt, got)
		}
	}
}

func TestCurveBatchInPlaceContinuity(t *testing.T) {
	const l, c, w = 3.0, 1.0, 0.25
	// Continuity at the crawl boundary t = w.
	a := CurveBatchInPlace(l, c, w, w-1e-9)
	b := CurveBatchInPlace(l, c, w, w+1e-9)
	if !close(a, b, 1e-6) {
		t.Fatalf("discontinuity at w: %v vs %v", a, b)
	}
	// Periodicity.
	if !close(CurveBatchInPlace(l, c, w, 0.1), CurveBatchInPlace(l, c, w, 1.1), 1e-9) {
		t.Fatal("curve not periodic")
	}
	// Immutable pages are always fresh.
	if CurveBatchInPlace(0, c, w, 0.5) != 1 {
		t.Fatal("zero-rate curve != 1")
	}
}

func TestCurveBatchAveragesToClosedForm(t *testing.T) {
	// The time average of the within-cycle curve must equal
	// BatchInPlace's closed form.
	const l, c, w = 3.0, 1.0, 0.25
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += CurveBatchInPlace(l, c, w, c*float64(i)/n)
	}
	avg := sum / n
	if !close(avg, BatchInPlace(l, c), 1e-3) {
		t.Fatalf("curve average %v, closed form %v", avg, BatchInPlace(l, c))
	}
}

func TestCurveShadowCurrentAveragesToClosedForm(t *testing.T) {
	const l, c = 3.0, 1.0
	const n = 20000
	// Steady shadow: current = CurveShadowCurrent(l, c, t), t in [0, c).
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += CurveShadowCurrent(l, c, c*float64(i)/n)
	}
	if avg := sum / n; !close(avg, SteadyShadow(l, c), 1e-3) {
		t.Fatalf("steady shadow average %v, closed form %v", avg, SteadyShadow(l, c))
	}
	// Batch shadow with build w: current decays from FBar(l*w) over a
	// cycle.
	const w = 0.25
	sum = 0
	for i := 0; i < n; i++ {
		sum += CurveShadowCurrent(l, w, c*float64(i)/n)
	}
	if avg := sum / n; !close(avg, BatchShadow(l, c, w), 1e-3) {
		t.Fatalf("batch shadow average %v, closed form %v", avg, BatchShadow(l, c, w))
	}
}

func TestCurveShadowCrawlerRampsFromZero(t *testing.T) {
	const l, b = 2.0, 1.0
	if CurveShadowCrawler(l, b, 0) != 0 {
		t.Fatal("crawler curve must start at 0")
	}
	prev := -1.0
	for _, tt := range []float64{0.1, 0.3, 0.6, 1.0} {
		got := CurveShadowCrawler(l, b, tt)
		if got <= prev {
			t.Fatalf("crawler curve not increasing at %v", tt)
		}
		prev = got
	}
	if got, want := CurveShadowCrawler(l, b, b), FBar(l*b); !close(got, want, 1e-12) {
		t.Fatalf("swap-time freshness %v, want %v", got, want)
	}
}

func TestSeriesHelpers(t *testing.T) {
	pts, err := Series(5, 2, func(t float64) float64 { return t })
	if err != nil || len(pts) != 5 || pts[4].T != 2 {
		t.Fatalf("series %v err %v", pts, err)
	}
	if _, err := Series(1, 1, nil); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Series(5, 0, nil); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestFigure7And8SeriesShapes(t *testing.T) {
	batch, steady, err := Figure7Series(4, 1, 0.25, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 100 || len(steady) != 100 {
		t.Fatalf("lengths %d %d", len(batch), len(steady))
	}
	// Steady is flat; batch oscillates.
	for i := 1; i < len(steady); i++ {
		if steady[i].F != steady[0].F {
			t.Fatal("steady curve not flat")
		}
	}
	minB, maxB := 1.0, 0.0
	for _, p := range batch {
		minB = math.Min(minB, p.F)
		maxB = math.Max(maxB, p.F)
	}
	if maxB-minB < 0.2 {
		t.Fatalf("batch curve too flat: %v..%v", minB, maxB)
	}

	sc, scur, bc, bcur, err := Figure8Series(4, 1, 0.25, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc) != 100 || len(scur) != 100 || len(bc) != 100 || len(bcur) != 100 {
		t.Fatal("figure 8 lengths")
	}
	// The current collection under shadowing is the crawler's collection
	// delayed: its freshness must always lag the in-place value.
	inPlace := FBar(4.0)
	for _, p := range scur {
		if p.F > inPlace+1e-9 {
			t.Fatalf("shadow current %v exceeds in-place average %v", p.F, inPlace)
		}
	}
	if _, _, err := Figure7Series(1, 1, 0.25, 0, 10); err == nil {
		t.Fatal("zero cycles accepted")
	}
}
