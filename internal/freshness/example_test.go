package freshness_test

import (
	"fmt"

	"webevolve/internal/freshness"
)

// ExampleTable2 reproduces the paper's Table 2: expected freshness of
// the current collection when pages change every 4 months on average,
// the crawl cycle is one month, and a batch crawl takes one week.
func ExampleTable2() {
	m, err := freshness.Table2(4, 1, 7.0/30)
	if err != nil {
		panic(err)
	}
	for _, d := range freshness.Designs {
		fmt.Printf("%-20s %.2f\n", d, m[d])
	}
	// Output:
	// steady/in-place      0.88
	// batch-mode/in-place  0.88
	// steady/shadowing     0.78
	// batch-mode/shadowing 0.86
}

// ExampleOptimalAllocation shows the paper's p1/p2 example: with
// bandwidth for one page per day, a page changing every second is not
// worth visiting at all — the whole budget goes to the daily-changing
// page.
func ExampleOptimalAllocation() {
	rates := []float64{1, 86400} // changes/day
	freqs, err := freshness.OptimalAllocation(rates, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("daily page: %.2f visits/day\n", freqs[0])
	fmt.Printf("every-second page: %.2f visits/day\n", freqs[1])
	// Output:
	// daily page: 1.00 visits/day
	// every-second page: 0.00 visits/day
}

// ExampleFBar shows the basic freshness formula: a page changing every
// 4 months, revisited monthly, is up to date 88% of the time.
func ExampleFBar() {
	fmt.Printf("%.2f\n", freshness.FBar(1.0/4))
	// Output:
	// 0.88
}
