package freshness

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimulateAvgAgeMatchesClosedForm(t *testing.T) {
	// Steady in-place sync every I: simulated age must match AvgAge.
	rng := rand.New(rand.NewSource(1))
	const (
		n       = 1500
		lambda  = 0.5
		cycle   = 2.0
		horizon = 60.0
	)
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = lambda
	}
	got, err := SimulateAvgAge(rng, rates, ScheduleSteadyInPlace(n, cycle, horizon), 4, horizon, 60)
	if err != nil {
		t.Fatal(err)
	}
	want := AvgAge(lambda, cycle)
	if math.Abs(got-want) > 0.05*want+0.01 {
		t.Fatalf("simulated age %v, closed form %v", got, want)
	}
}

func TestSimulateAvgAgeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := SimulateAvgAge(rng, nil, nil, 0, 1, 10); err == nil {
		t.Fatal("no pages accepted")
	}
	if _, err := SimulateAvgAge(rng, []float64{1}, ScheduleSteadyInPlace(1, 1, 10), 5, 5, 10); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestAgeImmutablePagesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got, err := SimulateAvgAge(rng, []float64{0, 0},
		ScheduleSteadyInPlace(2, 1, 50), 5, 50, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("immutable age %v", got)
	}
}

func TestAgeTable2OrderingMatchesFreshness(t *testing.T) {
	// The paper: comparing by age yields the same conclusions as by
	// freshness. Under the Table 2 parameters, ages must order inversely
	// to the freshness values: in-place best, steady-shadow worst.
	rng := rand.New(rand.NewSource(4))
	ages, err := AgeTable2(rng, 4, 1, 7.0/30, 1200, 24)
	if err != nil {
		t.Fatal(err)
	}
	steadyIn := ages[Design{false, false}]
	batchIn := ages[Design{true, false}]
	steadySh := ages[Design{false, true}]
	batchSh := ages[Design{true, true}]
	if !(steadySh > batchSh && batchSh > steadyIn*0.8) {
		t.Fatalf("age ordering broken: steadyIn=%v batchIn=%v steadySh=%v batchSh=%v",
			steadyIn, batchIn, steadySh, batchSh)
	}
	// In-place designs are within noise of each other.
	if math.Abs(steadyIn-batchIn) > 0.25*steadyIn+0.02 {
		t.Fatalf("in-place ages diverge: %v vs %v", steadyIn, batchIn)
	}
}

func TestAgeTable2Validation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := AgeTable2(rng, 0, 1, 1, 10, 10); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := AgeTable2(rng, 1, 1, 1, 0, 10); err == nil {
		t.Fatal("zero pages accepted")
	}
}
