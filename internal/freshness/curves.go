package freshness

import (
	"errors"
	"math"
)

// This file derives the within-cycle freshness evolution curves plotted in
// Figures 7 and 8. All curves give the *expected* freshness of a
// collection of pages with change rate lambda at phase t of a cycle of
// length T, assuming the schedule has been running long enough to be in
// steady state.
//
// Batch in-place (Figure 7(a)): pages are synced at times uniform over
// the crawl window [0,w) of each cycle. A page synced at s is fresh at
// phase t with probability exp(-lambda*(t-s)) when t >= s, and its most
// recent sync was last cycle (at s-T relative to t) when t < s.
//
// Steady in-place (Figure 7(b)): the same expression with w = T; the
// curve is the constant FBar(lambda*T) — the paper's "freshness of the
// steady crawler is stable over time".
//
// Shadowing (Figure 8): the crawler's collection starts empty each cycle
// and accrues pages; the current collection is the previous shadow
// decaying exponentially from its swap-time freshness.

// Point is one sample of a curve.
type Point struct{ T, F float64 }

// CurveBatchInPlace returns the expected freshness of a batch-mode
// in-place collection at phase t (0 <= t < cycle), where the crawl
// occupies [0, crawlDur) of each cycle.
func CurveBatchInPlace(lambda, cycle, crawlDur, t float64) float64 {
	if lambda == 0 {
		return 1
	}
	w := math.Min(crawlDur, cycle)
	t = math.Mod(t, cycle)
	lw := lambda * w
	if t < w {
		// Pages synced in [0,t] this cycle plus pages not yet re-synced,
		// whose last sync was one cycle ago.
		a := 1 - math.Exp(-lambda*t)
		b := math.Exp(-lambda*(t+cycle)) * (math.Exp(lw) - math.Exp(lambda*t))
		return (a + b) / lw
	}
	return math.Exp(-lambda*t) * (math.Exp(lw) - 1) / lw
}

// CurveSteadyInPlace returns the (constant) expected freshness of a
// steady in-place collection.
func CurveSteadyInPlace(lambda, cycle float64) float64 {
	return FBar(lambda * cycle)
}

// CurveShadowCrawler returns the expected freshness of the *crawler's*
// (shadow) collection at phase t of its build, where the build occupies
// [0, buildDur). Pages crawled so far are fresh with exponentially
// decaying probability; pages not yet crawled count as absent (freshness
// contribution zero), so the curve climbs from 0 — the sawtooth tops of
// Figure 8.
func CurveShadowCrawler(lambda, buildDur, t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t > buildDur {
		t = buildDur
	}
	if lambda == 0 {
		return t / buildDur
	}
	return (1 - math.Exp(-lambda*t)) / (lambda * buildDur)
}

// CurveShadowCurrent returns the expected freshness of the *current*
// collection at time t since the last swap, for a shadow built over
// buildDur (for a steady crawler buildDur = cycle; for a batch crawler
// buildDur = crawl duration). The current collection starts at the
// shadow's swap-time freshness FBar(lambda*buildDur) and decays
// exponentially until the next swap.
func CurveShadowCurrent(lambda, buildDur, t float64) float64 {
	return math.Exp(-lambda*t) * FBar(lambda*buildDur)
}

// Series samples a curve function at n evenly spaced phases over [0, dur).
func Series(n int, dur float64, f func(t float64) float64) ([]Point, error) {
	if n < 2 {
		return nil, errors.New("freshness: need at least 2 samples")
	}
	if dur <= 0 {
		return nil, errors.New("freshness: non-positive duration")
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		t := dur * float64(i) / float64(n-1)
		out[i] = Point{T: t, F: f(t)}
	}
	return out, nil
}

// Figure7Series returns the batch-mode (a) and steady (b) freshness
// evolution curves over the given number of cycles, sampled at
// samplesPerCycle points per cycle. The paper plots several monthly
// cycles with a high change rate so the trend is visible.
func Figure7Series(lambda, cycle, crawlDur float64, cycles, samplesPerCycle int) (batch, steady []Point, err error) {
	if cycles < 1 || samplesPerCycle < 2 {
		return nil, nil, errors.New("freshness: bad sampling parameters")
	}
	total := cycles * samplesPerCycle
	dur := float64(cycles) * cycle
	batch = make([]Point, total)
	steady = make([]Point, total)
	for i := 0; i < total; i++ {
		t := dur * float64(i) / float64(total-1)
		phase := math.Mod(t, cycle)
		batch[i] = Point{T: t, F: CurveBatchInPlace(lambda, cycle, crawlDur, phase)}
		steady[i] = Point{T: t, F: CurveSteadyInPlace(lambda, cycle)}
	}
	return batch, steady, nil
}

// Figure8Series returns the four curves of Figure 8 over the given number
// of cycles: the crawler's and current collection freshness for a steady
// crawler with shadowing (a) and for a batch crawler with shadowing (b).
// For the batch crawler, the crawler's collection is empty (0) outside
// its build window.
func Figure8Series(lambda, cycle, crawlDur float64, cycles, samplesPerCycle int) (steadyCrawler, steadyCurrent, batchCrawler, batchCurrent []Point, err error) {
	if cycles < 1 || samplesPerCycle < 2 {
		return nil, nil, nil, nil, errors.New("freshness: bad sampling parameters")
	}
	total := cycles * samplesPerCycle
	dur := float64(cycles) * cycle
	steadyCrawler = make([]Point, total)
	steadyCurrent = make([]Point, total)
	batchCrawler = make([]Point, total)
	batchCurrent = make([]Point, total)
	for i := 0; i < total; i++ {
		t := dur * float64(i) / float64(total-1)
		phase := math.Mod(t, cycle)
		steadyCrawler[i] = Point{T: t, F: CurveShadowCrawler(lambda, cycle, phase)}
		steadyCurrent[i] = Point{T: t, F: CurveShadowCurrent(lambda, cycle, phase)}
		if phase < crawlDur {
			batchCrawler[i] = Point{T: t, F: CurveShadowCrawler(lambda, crawlDur, phase)}
		} else {
			batchCrawler[i] = Point{T: t, F: 0}
		}
		// The batch current collection was swapped in at phase crawlDur;
		// before that, it is the previous cycle's shadow still decaying.
		var since float64
		if phase >= crawlDur {
			since = phase - crawlDur
		} else {
			since = phase + cycle - crawlDur
		}
		batchCurrent[i] = Point{T: t, F: CurveShadowCurrent(lambda, crawlDur, since)}
	}
	return steadyCrawler, steadyCurrent, batchCrawler, batchCurrent, nil
}
