package freshness

import (
	"math"
	"math/rand"
	"testing"
)

// TestMonteCarloMatchesClosedForms is the package's central
// cross-validation: the four design points of Table 2 computed two
// independent ways.
func TestMonteCarloMatchesClosedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const (
		n       = 2000
		cycle   = 1.0
		week    = 7.0 / 30
		lambda  = 0.25
		horizon = 24.0
		warm    = 4.0
	)
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = lambda
	}
	cases := []struct {
		name  string
		sched SyncSchedule
		want  float64
	}{
		{"steady/in-place", ScheduleSteadyInPlace(n, cycle, horizon), SteadyInPlace(lambda, cycle)},
		{"batch/in-place", ScheduleBatchInPlace(n, cycle, week, horizon), BatchInPlace(lambda, cycle)},
		{"steady/shadow", ScheduleSteadyShadow(n, cycle, horizon), SteadyShadow(lambda, cycle)},
		{"batch/shadow", ScheduleBatchShadow(n, cycle, week, horizon), BatchShadow(lambda, cycle, week)},
	}
	for _, c := range cases {
		got, err := SimulateAvgFreshness(rng, rates, c.sched, warm, horizon, 100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("%s: simulated %.4f, analytic %.4f", c.name, got, c.want)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := SimulateAvgFreshness(rng, nil, nil, 0, 1, 10); err == nil {
		t.Fatal("no pages accepted")
	}
	if _, err := SimulateAvgFreshness(rng, []float64{1},
		ScheduleSteadyInPlace(1, 1, 10), 5, 5, 10); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := SimulateAvgFreshness(rng, []float64{1},
		ScheduleSteadyInPlace(1, 1, 10), 0, 10, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
	// Mismatched schedule lengths are rejected.
	bad := func(int) (s, v []float64) { return []float64{1}, nil }
	if _, err := SimulateAvgFreshness(rng, []float64{1}, bad, 0, 10, 5); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
}

func TestImmutablePagesAlwaysFreshOnceCrawled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rates := []float64{0, 0, 0}
	got, err := SimulateAvgFreshness(rng, rates,
		ScheduleSteadyInPlace(3, 1, 100), 10, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("immutable freshness %v", got)
	}
}

func TestNeverCrawledPagesAlwaysStale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	none := func(int) (s, v []float64) { return nil, nil }
	got, err := SimulateAvgFreshness(rng, []float64{1, 1}, none, 10, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("uncrawled freshness %v", got)
	}
}

func TestShadowScheduleDelaysVisibility(t *testing.T) {
	// A single page crawled at t=0.5 under steady shadow with cycle 1 is
	// invisible until t=1.
	sched := ScheduleSteadyShadow(2, 1, 10)
	syncs, visible := sched(1) // page 1 of 2: phase 0.5
	if len(syncs) == 0 || syncs[0] != 0.5 || visible[0] != 1 {
		t.Fatalf("syncs %v visible %v", syncs, visible)
	}
	for i := range syncs {
		if visible[i] < syncs[i] {
			t.Fatal("visibility precedes sync")
		}
	}
}

func TestBatchScheduleConfinesSyncsToWindow(t *testing.T) {
	const n, cycle, w, horizon = 10, 1.0, 0.25, 5.0
	sched := ScheduleBatchInPlace(n, cycle, w, horizon)
	for i := 0; i < n; i++ {
		syncs, _ := sched(i)
		for _, s := range syncs {
			phase := math.Mod(s, cycle)
			if phase >= w {
				t.Fatalf("page %d synced at phase %v outside window", i, phase)
			}
		}
	}
}

func TestVariableScheduleRespectsFrequencies(t *testing.T) {
	sched := ScheduleVariableInPlace([]float64{2, 0}, 10)
	syncs, _ := sched(0)
	if len(syncs) < 19 || len(syncs) > 21 {
		t.Fatalf("f=2 over 10 time units: %d syncs", len(syncs))
	}
	if syncs, _ := sched(1); syncs != nil {
		t.Fatalf("f=0 page synced %v", syncs)
	}
}

func TestPoissonTimesRespectHorizonAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	times := poissonTimes(rng, 3, 50)
	prev := 0.0
	for _, x := range times {
		if x < prev || x >= 50 {
			t.Fatalf("bad change time %v", x)
		}
		prev = x
	}
	if poissonTimes(rng, 0, 50) != nil {
		t.Fatal("zero rate produced changes")
	}
}

func TestChangedIn(t *testing.T) {
	changes := []float64{1, 3, 5}
	cases := []struct {
		from, to float64
		want     bool
	}{
		{0, 0.5, false}, {0, 1, true}, {1, 3, true}, {3, 4.9, false},
		{5, 10, false}, {4, 5, true},
	}
	for _, c := range cases {
		if got := changedIn(changes, c.from, c.to); got != c.want {
			t.Errorf("changedIn(%v,%v) = %v", c.from, c.to, got)
		}
	}
}
