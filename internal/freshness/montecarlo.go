package freshness

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Monte-Carlo cross-validation of the closed forms: simulate page change
// processes and sync schedules directly and measure freshness empirically.
// The analytic results in this package were derived by hand (the paper
// omits the derivations, citing space); these simulators are the
// independent check that the algebra is right.

// SyncSchedule yields, for page i, the times at which the crawler syncs
// the page, and the times at which each synced copy becomes visible to
// users (equal for in-place updates; delayed to the swap time under
// shadowing). Both slices are sorted and have equal length.
type SyncSchedule func(i int) (syncs, visible []float64)

// SimulateAvgFreshness estimates the time-average freshness of the
// current collection over [warmup, horizon) for pages with the given
// change rates under the given schedule, probing freshness at the given
// number of evenly spaced sample instants.
//
// At a sample instant t, page i is fresh if its most recent *visible*
// copy was synced at some s <= t and the page has not changed in (s, t].
func SimulateAvgFreshness(rng *rand.Rand, rates []float64, sched SyncSchedule, warmup, horizon float64, samples int) (float64, error) {
	if len(rates) == 0 {
		return 0, errors.New("freshness: no pages")
	}
	if samples < 1 || horizon <= warmup {
		return 0, errors.New("freshness: bad sampling window")
	}
	var totalFresh, totalProbes float64
	for i, rate := range rates {
		syncs, visible := sched(i)
		if len(syncs) != len(visible) {
			return 0, errors.New("freshness: schedule length mismatch")
		}
		changes := poissonTimes(rng, rate, horizon)
		for k := 0; k < samples; k++ {
			t := warmup + (horizon-warmup)*float64(k)/float64(samples)
			// Most recent copy visible at t: the largest j with
			// visible[j] <= t (inclusive — a swap at exactly t counts).
			j := sort.SearchFloat64s(visible, math.Nextafter(t, math.Inf(1))) - 1
			totalProbes++
			if j < 0 {
				continue // nothing visible yet: stale (absent)
			}
			s := syncs[j]
			// Among visible copies, a later-synced copy may become
			// visible earlier under odd schedules; take the freshest
			// visible copy.
			for m := j - 1; m >= 0; m-- {
				if visible[m] <= t && syncs[m] > s {
					s = syncs[m]
				}
			}
			if !changedIn(changes, s, t) {
				totalFresh++
			}
		}
	}
	return totalFresh / totalProbes, nil
}

// poissonTimes samples the change times of a rate-lambda Poisson process
// on [0, horizon).
func poissonTimes(rng *rand.Rand, rate, horizon float64) []float64 {
	if rate <= 0 {
		return nil
	}
	var out []float64
	t := rng.ExpFloat64() / rate
	for t < horizon {
		out = append(out, t)
		t += rng.ExpFloat64() / rate
	}
	return out
}

// changedIn reports whether any change time falls in (from, to].
func changedIn(changes []float64, from, to float64) bool {
	i := sort.SearchFloat64s(changes, from)
	for i < len(changes) && changes[i] <= from {
		i++
	}
	return i < len(changes) && changes[i] <= to
}

// ScheduleSteadyInPlace builds the steady in-place schedule: page i is
// synced every cycle at a fixed per-page phase spread uniformly across
// the cycle, and copies are visible immediately.
func ScheduleSteadyInPlace(n int, cycle, horizon float64) SyncSchedule {
	return func(i int) (syncs, visible []float64) {
		phase := cycle * float64(i) / float64(n)
		for t := phase; t < horizon; t += cycle {
			syncs = append(syncs, t)
		}
		return syncs, syncs
	}
}

// ScheduleBatchInPlace builds the batch in-place schedule: page i is
// synced once per cycle at a phase spread uniformly across the crawl
// window [0, crawlDur), visible immediately.
func ScheduleBatchInPlace(n int, cycle, crawlDur, horizon float64) SyncSchedule {
	return func(i int) (syncs, visible []float64) {
		phase := crawlDur * float64(i) / float64(n)
		for t := phase; t < horizon; t += cycle {
			syncs = append(syncs, t)
		}
		return syncs, syncs
	}
}

// ScheduleSteadyShadow builds the steady shadowing schedule: page i is
// crawled into the shadow at a per-page phase spread across the cycle,
// but becomes visible only at the next cycle boundary (the swap).
func ScheduleSteadyShadow(n int, cycle, horizon float64) SyncSchedule {
	return func(i int) (syncs, visible []float64) {
		phase := cycle * float64(i) / float64(n)
		for k := 0; ; k++ {
			s := float64(k)*cycle + phase
			if s >= horizon {
				break
			}
			syncs = append(syncs, s)
			visible = append(visible, float64(k+1)*cycle)
		}
		return syncs, visible
	}
}

// ScheduleBatchShadow builds the batch shadowing schedule: page i is
// crawled during [0, crawlDur) of each cycle and becomes visible when the
// crawl completes (at phase crawlDur).
func ScheduleBatchShadow(n int, cycle, crawlDur, horizon float64) SyncSchedule {
	return func(i int) (syncs, visible []float64) {
		phase := crawlDur * float64(i) / float64(n)
		for k := 0; ; k++ {
			s := float64(k)*cycle + phase
			if s >= horizon {
				break
			}
			syncs = append(syncs, s)
			visible = append(visible, float64(k)*cycle+crawlDur)
		}
		return syncs, visible
	}
}

// ScheduleVariableInPlace builds a steady in-place schedule with per-page
// frequencies: page i is synced every 1/freqs[i], with phases staggered
// deterministically. Pages with zero frequency are never synced.
func ScheduleVariableInPlace(freqs []float64, horizon float64) SyncSchedule {
	return func(i int) (syncs, visible []float64) {
		f := freqs[i]
		if f <= 0 {
			return nil, nil
		}
		interval := 1 / f
		phase := interval * float64(i%97) / 97
		for t := phase; t < horizon; t += interval {
			syncs = append(syncs, t)
		}
		return syncs, syncs
	}
}
