// Package stats provides the statistical building blocks used by the
// evolution experiment and the freshness analytics: bucketed histograms
// (including the paper's interval buckets), empirical CDFs, confidence
// intervals, exponential fits on semilog axes (Figure 6) and a
// Kolmogorov–Smirnov goodness-of-fit test.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty reports an operation on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the usual moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Var = ss / float64(s.N-1)
	}
	s.Std = math.Sqrt(s.Var)
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Quantile returns the q-quantile of xs using linear interpolation.
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Histogram is a fixed-boundary histogram. Bucket i counts values x with
// Bounds[i-1] < x <= Bounds[i]; an implicit final bucket counts
// x > Bounds[len-1].
type Histogram struct {
	// Bounds are the inclusive upper edges of all but the overflow bucket,
	// in strictly increasing order.
	Bounds []float64
	// Labels optionally names each bucket (len(Bounds)+1 entries).
	Labels []string
	Counts []int
	total  int
}

// NewHistogram builds a histogram with the given upper bounds.
func NewHistogram(bounds []float64, labels []string) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, errors.New("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: bounds not increasing at %d", i)
		}
	}
	if labels != nil && len(labels) != len(bounds)+1 {
		return nil, fmt.Errorf("stats: want %d labels, got %d", len(bounds)+1, len(labels))
	}
	return &Histogram{
		Bounds: bounds,
		Labels: labels,
		Counts: make([]int, len(bounds)+1),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Counts[h.bucket(x)]++
	h.total++
}

func (h *Histogram) bucket(x float64) int {
	// Buckets are few (the paper uses 5); linear scan is clearest.
	for i, b := range h.Bounds {
		if x <= b {
			return i
		}
	}
	return len(h.Bounds)
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bucket's share of the total, or all zeros when
// the histogram is empty.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// PaperIntervalBounds are the change-interval bucket edges of Figure 2,
// in days: one day, one week, one month, four months. The overflow bucket
// is "> 4 months".
var PaperIntervalBounds = []float64{1, 7, 30, 120}

// PaperIntervalLabels label the Figure 2 buckets.
var PaperIntervalLabels = []string{"<=1day", "<=1week", "<=1month", "<=4months", ">4months"}

// NewPaperIntervalHistogram returns the Figure 2 histogram (units: days).
func NewPaperIntervalHistogram() *Histogram {
	h, err := NewHistogram(PaperIntervalBounds, PaperIntervalLabels)
	if err != nil {
		panic(err) // static bounds; cannot fail
	}
	return h
}

// PaperLifespanBounds are the lifespan bucket edges of Figure 4, in days:
// one week, one month, four months; overflow is "> 4 months".
var PaperLifespanBounds = []float64{7, 30, 120}

// PaperLifespanLabels label the Figure 4 buckets.
var PaperLifespanLabels = []string{"<=1week", "<=1month", "<=4months", ">4months"}

// NewPaperLifespanHistogram returns the Figure 4 histogram (units: days).
func NewPaperLifespanHistogram() *Histogram {
	h, err := NewHistogram(PaperLifespanBounds, PaperLifespanLabels)
	if err != nil {
		panic(err)
	}
	return h
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	xs []float64 // sorted
}

// NewECDF builds an ECDF from the sample (copied, then sorted).
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	cp := append([]float64(nil), sample...)
	sort.Float64s(cp)
	return &ECDF{xs: cp}, nil
}

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.xs))
}

// InverseAt returns the smallest sample value v with At(v) >= q.
func (e *ECDF) InverseAt(q float64) float64 {
	if q <= 0 {
		return e.xs[0]
	}
	idx := int(math.Ceil(q*float64(len(e.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.xs) {
		idx = len(e.xs) - 1
	}
	return e.xs[idx]
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.xs) }

// LinearFit holds a least-squares line y = Slope*x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits y = a*x + b by ordinary least squares.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R^2 = 1 - SSres/SStot.
	var ssRes, ssTot float64
	my := sy / n
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// ExponentialFit holds the result of fitting counts to c*exp(-rate*t) by
// log-linear regression — the straight line of Figure 6's semilog plots.
type ExponentialFit struct {
	Rate  float64 // decay rate (positive for decaying data)
	Scale float64 // multiplier c
	R2    float64 // of the log-space linear fit
}

// FitExponential fits ys ~ c*exp(-rate*xs). Points with ys <= 0 are
// skipped (they cannot be log-transformed); at least two positive points
// are required.
func FitExponential(xs, ys []float64) (ExponentialFit, error) {
	if len(xs) != len(ys) {
		return ExponentialFit{}, errors.New("stats: length mismatch")
	}
	var lx, ly []float64
	for i := range xs {
		if ys[i] > 0 {
			lx = append(lx, xs[i])
			ly = append(ly, math.Log(ys[i]))
		}
	}
	lf, err := FitLine(lx, ly)
	if err != nil {
		return ExponentialFit{}, err
	}
	return ExponentialFit{Rate: -lf.Slope, Scale: math.Exp(lf.Intercept), R2: lf.R2}, nil
}

// zFor maps common confidence levels to standard-normal quantiles.
func zFor(confidence float64) float64 {
	switch {
	case confidence >= 0.995:
		return 2.807
	case confidence >= 0.99:
		return 2.576
	case confidence >= 0.95:
		return 1.96
	case confidence >= 0.90:
		return 1.645
	default:
		return 1.0 // ~68%
	}
}

// MeanCI returns a normal-approximation confidence interval for the mean
// of xs at the given confidence level (e.g. 0.95).
func MeanCI(xs []float64, confidence float64) (lo, hi float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	half := zFor(confidence) * s.Std / math.Sqrt(float64(s.N))
	return s.Mean - half, s.Mean + half, nil
}

// ProportionCI returns the Wilson score interval for k successes out of n
// trials at the given confidence level. Wilson behaves well at the extreme
// proportions common in change statistics (e.g. pages that never changed).
func ProportionCI(k, n int, confidence float64) (lo, hi float64, err error) {
	if n <= 0 || k < 0 || k > n {
		return 0, 0, errors.New("stats: bad proportion arguments")
	}
	z := zFor(confidence)
	p := float64(k) / float64(n)
	nn := float64(n)
	den := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / den
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// KSExponential runs a one-sample Kolmogorov–Smirnov test of the sample
// against an exponential distribution with the given rate. It returns the
// KS statistic D and an approximate p-value. Small D / large p indicates a
// good Poisson-interarrival fit (Figure 6).
func KSExponential(sample []float64, rate float64) (d, p float64, err error) {
	if len(sample) == 0 {
		return 0, 0, ErrEmpty
	}
	if rate <= 0 {
		return 0, 0, errors.New("stats: rate must be positive")
	}
	cp := append([]float64(nil), sample...)
	sort.Float64s(cp)
	n := float64(len(cp))
	for i, x := range cp {
		f := 1 - math.Exp(-rate*x)
		upper := float64(i+1)/n - f
		lower := f - float64(i)/n
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	p = ksPValue(d, len(cp))
	return d, p, nil
}

// ksPValue approximates the Kolmogorov distribution tail:
// Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2)
// with lambda = D*(sqrt(n)+0.12+0.11/sqrt(n)) (Stephens' approximation).
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	sn := math.Sqrt(float64(n))
	lambda := d * (sn + 0.12 + 0.11/sn)
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// WeightedMean returns the mean of xs weighted by ws.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) || len(xs) == 0 {
		return 0, errors.New("stats: bad weighted sample")
	}
	var num, den float64
	for i := range xs {
		if ws[i] < 0 {
			return 0, errors.New("stats: negative weight")
		}
		num += xs[i] * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return num / den, nil
}
