package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Var-2.5) > 1e-12 {
		t.Fatalf("variance %v, want 2.5", s.Var)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.25); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("q25 = %v", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram([]float64{1, 7, 30, 120}, PaperIntervalLabels)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want int
	}{
		{0.5, 0}, {1, 0}, {1.0001, 1}, {7, 1}, {8, 2}, {30, 2},
		{31, 3}, {120, 3}, {121, 4}, {100000, 4},
	}
	for _, c := range cases {
		h2 := *h
		h2.Counts = make([]int, len(h.Counts))
		h2.Add(c.x)
		for i, n := range h2.Counts {
			if (i == c.want) != (n == 1) {
				t.Errorf("Add(%v): counts %v, want bucket %d", c.x, h2.Counts, c.want)
				break
			}
		}
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	h := NewPaperIntervalHistogram()
	vals := []float64{0.5, 3, 15, 60, 400, 1, 7}
	for _, v := range vals {
		h.Add(v)
	}
	if h.Total() != len(vals) {
		t.Fatalf("total %d", h.Total())
	}
	sum := 0.0
	for _, f := range h.Fractions() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil, nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{5, 3}, nil); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 2}, []string{"only-one"}); err == nil {
		t.Fatal("wrong label count accepted")
	}
}

func TestPaperHistogramsHaveFiveAndFourBuckets(t *testing.T) {
	if got := len(NewPaperIntervalHistogram().Counts); got != 5 {
		t.Fatalf("interval histogram has %d buckets", got)
	}
	if got := len(NewPaperLifespanHistogram().Counts); got != 4 {
		t.Fatalf("lifespan histogram has %d buckets", got)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestECDFInverse(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40})
	if v := e.InverseAt(0.5); v != 20 {
		t.Fatalf("InverseAt(0.5) = %v", v)
	}
	if v := e.InverseAt(0); v != 10 {
		t.Fatalf("InverseAt(0) = %v", v)
	}
	if v := e.InverseAt(1); v != 40 {
		t.Fatalf("InverseAt(1) = %v", v)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		e, err := NewECDF(raw)
		if err != nil {
			return false
		}
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-5) > 1e-12 || f.R2 < 0.999999 {
		t.Fatalf("fit %+v", f)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLine([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitExponentialRecovers(t *testing.T) {
	const rate, scale = 0.35, 2.0
	var xs, ys []float64
	for x := 0.0; x < 20; x++ {
		xs = append(xs, x)
		ys = append(ys, scale*math.Exp(-rate*x))
	}
	f, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Rate-rate) > 1e-9 || math.Abs(f.Scale-scale) > 1e-9 || f.R2 < 0.999999 {
		t.Fatalf("fit %+v", f)
	}
}

func TestFitExponentialSkipsNonPositive(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 0, math.Exp(-2), -1} // two valid points
	if _, err := FitExponential(xs, ys); err != nil {
		t.Fatalf("fit with skips failed: %v", err)
	}
}

func TestMeanCICoversTrueMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	misses := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		xs := make([]float64, 50)
		for j := range xs {
			xs[j] = rng.NormFloat64() + 10
		}
		lo, hi, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if lo > 10 || hi < 10 {
			misses++
		}
	}
	// ~5% misses expected; allow generous slack.
	if misses > trials/8 {
		t.Fatalf("95%% CI missed %d/%d times", misses, trials)
	}
}

func TestProportionCI(t *testing.T) {
	lo, hi, err := ProportionCI(50, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("CI [%v, %v] excludes p=0.5", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Fatalf("CI [%v, %v] too wide", lo, hi)
	}
	// Extremes stay in [0,1].
	lo, hi, err = ProportionCI(0, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi <= 0 || hi > 1 {
		t.Fatalf("extreme CI [%v, %v]", lo, hi)
	}
	if _, _, err := ProportionCI(5, 0, 0.95); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := ProportionCI(10, 5, 0.95); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestKSExponentialAcceptsExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const rate = 0.5
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / rate
	}
	d, p, err := KSExponential(xs, rate)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("KS rejected true exponential: D=%v p=%v", d, p)
	}
}

func TestKSExponentialRejectsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Float64() // uniform [0,1)
	}
	_, p, err := KSExponential(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Fatalf("KS failed to reject uniform: p=%v", p)
	}
}

func TestKSErrors(t *testing.T) {
	if _, _, err := KSExponential(nil, 1); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := KSExponential([]float64{1}, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("weighted mean %v", got)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero total weight accepted")
	}
}

func TestHistogramFractionsEmptyIsZeros(t *testing.T) {
	h := NewPaperLifespanHistogram()
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Fatal("empty histogram has nonzero fraction")
		}
	}
}
