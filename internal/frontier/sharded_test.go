package frontier

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// urlOn builds a URL on one of nHosts distinct hosts.
func urlOn(host, page int) string {
	return fmt.Sprintf("http://site%03d.com/p%05d", host, page)
}

func TestShardedSameHostSameShard(t *testing.T) {
	q := NewSharded(16)
	for h := 0; h < 20; h++ {
		want := q.ShardOf(urlOn(h, 0))
		for p := 1; p < 10; p++ {
			if got := q.ShardOf(urlOn(h, p)); got != want {
				t.Fatalf("host %d page %d on shard %d, root on %d", h, p, got, want)
			}
		}
	}
}

func TestShardedSpreadsHosts(t *testing.T) {
	q := NewSharded(8)
	for h := 0; h < 64; h++ {
		q.Push(urlOn(h, 0), 0, 0)
	}
	nonEmpty := 0
	for _, n := range q.ShardLens() {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("64 hosts landed on only %d of 8 shards", nonEmpty)
	}
}

// TestShardedMatchesCollUrls drives a Sharded queue and a CollUrls queue
// with the same random operations and demands identical pop sequences:
// sharding must not change the crawl schedule.
func TestShardedMatchesCollUrls(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		q := NewSharded(shards)
		ref := NewCollUrls()
		rng := rand.New(rand.NewSource(int64(shards)))
		for i := 0; i < 500; i++ {
			u := urlOn(rng.Intn(12), rng.Intn(40))
			due := float64(rng.Intn(50))
			pri := float64(rng.Intn(3))
			q.Push(u, due, pri)
			ref.Push(u, due, pri)
		}
		for now := 0.0; now <= 50; now++ {
			for {
				want, wok := ref.PopDue(now)
				got, gok := q.PopDue(now)
				if wok != gok {
					t.Fatalf("shards=%d now=%v: ok %v vs %v", shards, now, gok, wok)
				}
				if !wok {
					break
				}
				if got.URL != want.URL || got.Due != want.Due || got.Priority != want.Priority {
					t.Fatalf("shards=%d now=%v: popped %+v, want %+v", shards, now, got, want)
				}
			}
		}
		if q.Len() != ref.Len() {
			t.Fatalf("shards=%d: %d left vs %d", shards, q.Len(), ref.Len())
		}
	}
}

func TestShardedBasicOps(t *testing.T) {
	q := NewSharded(4)
	if _, err := q.Pop(); err == nil {
		t.Fatal("pop from empty queue succeeded")
	}
	q.Push(urlOn(1, 1), 5, 0)
	q.Push(urlOn(2, 1), 3, 0)
	q.Push(urlOn(3, 1), 4, 0)
	if !q.Contains(urlOn(2, 1)) {
		t.Fatal("pushed URL not contained")
	}
	if head, ok := q.Peek(); !ok || head.URL != urlOn(2, 1) {
		t.Fatalf("peek %+v, want earliest", head)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("len %d, want 3", got)
	}
	urls := q.URLs()
	if len(urls) != 3 || !sort.StringsAreSorted(urls) {
		t.Fatalf("URLs %v not sorted snapshot", urls)
	}
	if !q.Remove(urlOn(3, 1)) || q.Remove(urlOn(3, 1)) {
		t.Fatal("remove semantics wrong")
	}
	e, err := q.Pop()
	if err != nil || e.URL != urlOn(2, 1) {
		t.Fatalf("pop %+v, %v", e, err)
	}
	// Reschedule moves an entry.
	q.Push(urlOn(1, 1), 1, 0)
	if e, ok := q.PopDue(2); !ok || e.Due != 1 {
		t.Fatalf("rescheduled entry not due: %+v ok=%v", e, ok)
	}
}

func TestShardedPoliteness(t *testing.T) {
	q := NewShardedPolite(4, 2.0)
	host := 7
	q.Push(urlOn(host, 1), 0, 0)
	q.Push(urlOn(host, 2), 0, 0)
	if _, ok := q.PopDue(0); !ok {
		t.Fatal("first pop refused")
	}
	if e, ok := q.PopDue(1.9); ok {
		t.Fatalf("second same-site pop allowed inside politeness gap: %+v", e)
	}
	if ev, ok := q.NextEvent(); !ok || ev != 2.0 {
		t.Fatalf("next event %v ok=%v, want politeness deadline 2", ev, ok)
	}
	if _, ok := q.PopDue(2.0); !ok {
		t.Fatal("pop refused after politeness gap elapsed")
	}
	// A different site is not throttled by host 7's gap.
	other := host + 1
	for q.ShardOf(urlOn(other, 1)) == q.ShardOf(urlOn(host, 1)) {
		other++
	}
	q.Push(urlOn(host, 3), 0, 0)
	q.Push(urlOn(other, 1), 0, 0)
	if e, ok := q.PopDue(2.5); !ok || e.URL != urlOn(other, 1) {
		t.Fatalf("cross-shard pop got %+v ok=%v", e, ok)
	}
}

func TestShardedClaimRelease(t *testing.T) {
	q := NewSharded(4)
	host := 3
	q.Push(urlOn(host, 1), 0, 0)
	q.Push(urlOn(host, 2), 1, 0)
	e, sid, ok := q.ClaimDue(5)
	if !ok || e.URL != urlOn(host, 1) {
		t.Fatalf("claim got %+v ok=%v", e, ok)
	}
	if e2, _, ok := q.ClaimDue(5); ok {
		t.Fatalf("claimed shard yielded %+v", e2)
	}
	q.Release(sid, 10)
	if _, _, ok := q.ClaimDue(9); ok {
		t.Fatal("release deadline ignored")
	}
	if e3, _, ok := q.ClaimDue(10); !ok || e3.URL != urlOn(host, 2) {
		t.Fatalf("post-release claim got %+v ok=%v", e3, ok)
	}
}

// TestShardedConcurrentStress hammers one queue from many goroutines;
// the race detector (go test -race) is the real assertion, plus a
// conservation check: every pushed URL is either popped once or still
// queued.
func TestShardedConcurrentStress(t *testing.T) {
	q := NewSharded(8)
	const (
		goroutines = 16
		perG       = 300
	)
	var popped sync.Map
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				u := fmt.Sprintf("http://site%03d.com/g%02d-i%04d", rng.Intn(40), g, i)
				q.Push(u, float64(rng.Intn(10)), 0)
				switch rng.Intn(4) {
				case 0:
					if e, ok := q.PopDue(float64(rng.Intn(12))); ok {
						if _, dup := popped.LoadOrStore(e.URL, true); dup {
							t.Errorf("URL %s popped twice", e.URL)
						}
					}
				case 1:
					if e, sid, ok := q.ClaimDue(float64(rng.Intn(12))); ok {
						if _, dup := popped.LoadOrStore(e.URL, true); dup {
							t.Errorf("URL %s popped twice", e.URL)
						}
						q.Release(sid, 0)
					}
				case 2:
					q.Contains(u)
					q.Len()
				case 3:
					q.Peek()
					q.NextEvent()
				}
			}
		}(g)
	}
	wg.Wait()
	// Conservation: pushed = popped + remaining (removals never raced
	// pops here because each URL is unique per goroutine).
	remaining := q.Len()
	poppedN := 0
	popped.Range(func(_, _ any) bool { poppedN++; return true })
	if total := goroutines * perG; poppedN+remaining != total {
		t.Fatalf("conservation broken: %d popped + %d remaining != %d pushed",
			poppedN, remaining, total)
	}
}

// TestShardedConcurrentDrain has workers drain a prefilled queue through
// ClaimDue/Release and verifies nothing is lost or duplicated.
func TestShardedConcurrentDrain(t *testing.T) {
	q := NewSharded(8)
	const n = 2000
	for i := 0; i < n; i++ {
		q.Push(urlOn(i%50, i), float64(i%7), 0)
	}
	var got sync.Map
	var count int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				e, sid, ok := q.ClaimDue(100)
				if !ok {
					return
				}
				if _, dup := got.LoadOrStore(e.URL, true); dup {
					t.Errorf("URL %s drained twice", e.URL)
				}
				mu.Lock()
				count++
				mu.Unlock()
				q.Release(sid, 0)
			}
		}()
	}
	wg.Wait()
	if count != n || q.Len() != 0 {
		t.Fatalf("drained %d of %d, %d left", count, n, q.Len())
	}
}

// TestShardedPushBatch: a batch insert must be indistinguishable from
// the equivalent sequence of Pushes, including reschedules of queued
// URLs.
func TestShardedPushBatch(t *testing.T) {
	a, b := NewSharded(4), NewSharded(4)
	var batch []Entry
	for i := 0; i < 40; i++ {
		u := urlOn(i%7, i)
		due, prio := float64(i%5), float64(i%3)
		a.Push(u, due, prio)
		batch = append(batch, Entry{URL: u, Due: due, Priority: prio})
	}
	// Reschedule some of the same URLs within the batch.
	for i := 0; i < 10; i++ {
		u := urlOn(i%7, i)
		a.Push(u, 9, 1)
		batch = append(batch, Entry{URL: u, Due: 9, Priority: 1})
	}
	b.PushBatch(batch)
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", b.Len(), a.Len())
	}
	for {
		ae, aok := a.PopDue(100)
		be, bok := b.PopDue(100)
		if aok != bok {
			t.Fatalf("pop ok %v vs %v", bok, aok)
		}
		if !aok {
			return
		}
		if ae.URL != be.URL || ae.Due != be.Due || ae.Priority != be.Priority {
			t.Fatalf("pop %+v vs %+v", be, ae)
		}
	}
}

// TestShardedSnapshotRestore: a snapshot restored into an identical
// layout must reproduce entries, politeness, per-shard deadlines, and
// claims exactly.
func TestShardedSnapshotRestore(t *testing.T) {
	q := NewShardedPolite(4, 1.5)
	for i := 0; i < 30; i++ {
		q.Push(urlOn(i%6, i), float64(i%4), float64(i%2))
	}
	// Disturb per-shard state: pop (sets nextReady) and claim.
	q.PopDue(2)
	_, claimedShard, ok := q.ClaimDue(3)
	if !ok {
		t.Fatal("claim failed")
	}

	st := q.Snapshot()
	r := NewSharded(4)
	r.Restore(st)

	if r.Politeness() != q.Politeness() {
		t.Fatalf("politeness %v vs %v", r.Politeness(), q.Politeness())
	}
	if r.Len() != q.Len() {
		t.Fatalf("Len %v vs %v", r.Len(), q.Len())
	}
	// The claimed shard must still be claimed: both queues' next claims
	// agree and skip it.
	qe2, qs2, qok2 := q.ClaimDue(3)
	re2, rs2, rok2 := r.ClaimDue(3)
	if qok2 != rok2 || qs2 != rs2 || (qok2 && qe2.URL != re2.URL) {
		t.Fatalf("post-restore claim (%+v,%d,%v) vs (%+v,%d,%v)", re2, rs2, rok2, qe2, qs2, qok2)
	}
	if rok2 && rs2 == claimedShard {
		t.Fatalf("restored queue re-claimed shard %d", rs2)
	}
	if qok2 {
		q.Release(qs2, 0)
		r.Release(rs2, 0)
	}
	// Pop sequences must agree from here on.
	for now := 0.0; now < 20; now += 0.5 {
		for {
			qe, qok := q.PopDue(now)
			re, rok := r.PopDue(now)
			if qok != rok {
				t.Fatalf("day %v: ok %v vs %v", now, rok, qok)
			}
			if !qok {
				break
			}
			if qe.URL != re.URL || qe.Due != re.Due {
				t.Fatalf("day %v: %+v vs %+v", now, re, qe)
			}
		}
	}
}

// TestShardedRestoreReshard: restoring into a different shard count
// keeps every entry (re-hashed) and drops only per-shard state.
func TestShardedRestoreReshard(t *testing.T) {
	q := NewSharded(4)
	for i := 0; i < 20; i++ {
		q.Push(urlOn(i%5, i), float64(i), 0)
	}
	st := q.Snapshot()
	r := NewSharded(16)
	r.Restore(st)
	if r.Len() != q.Len() {
		t.Fatalf("Len %d vs %d", r.Len(), q.Len())
	}
	qu, ru := q.URLs(), r.URLs()
	for i := range qu {
		if qu[i] != ru[i] {
			t.Fatalf("URLs diverge at %d", i)
		}
	}
}

// TestShardedClearClaims: claims are released, politeness deadlines and
// entries untouched.
func TestShardedClearClaims(t *testing.T) {
	q := NewShardedPolite(4, 0)
	for i := 0; i < 12; i++ {
		q.Push(urlOn(i, i), 0, 0)
	}
	var held int
	for {
		_, _, ok := q.ClaimDue(10)
		if !ok {
			break
		}
		held++
	}
	if held == 0 {
		t.Fatal("nothing claimed")
	}
	if _, _, ok := q.ClaimDue(10); ok {
		t.Fatal("claim succeeded with all shards held")
	}
	q.ClearClaims()
	if _, _, ok := q.ClaimDue(10); !ok {
		t.Fatal("claim failed after ClearClaims")
	}
}

// TestShardedPeekN: the candidate peek returns exactly the prefix a
// sequence of unconstrained pops would produce, flags completeness,
// and leaves the queue untouched.
func TestShardedPeekN(t *testing.T) {
	q := NewSharded(4)
	const n = 40
	for i := 0; i < n; i++ {
		q.Push(urlOn(i%7, i), float64((i*5)%11), float64(i%3))
	}
	for _, k := range []int{1, 5, n - 1, n, n + 10} {
		cands, complete := q.PeekN(k)
		if wantComplete := k >= n; complete != wantComplete {
			t.Fatalf("PeekN(%d): complete=%v, want %v", k, complete, wantComplete)
		}
		want := k
		if want > n {
			want = n
		}
		if len(cands) != want {
			t.Fatalf("PeekN(%d) returned %d entries, want %d", k, len(cands), want)
		}
		if q.Len() != n {
			t.Fatalf("PeekN(%d) mutated the queue: Len=%d", k, q.Len())
		}
	}
	// The full peek must equal draining the queue by Pop.
	cands, _ := q.PeekN(n)
	for i := 0; i < n; i++ {
		e, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if e.URL != cands[i].URL || e.Due != cands[i].Due || e.Priority != cands[i].Priority {
			t.Fatalf("PeekN[%d] = %+v, Pop yielded %+v", i, cands[i], e)
		}
	}
}

// TestShardedApplyRound: pops and drops leave, pushes land, candidates
// come back in order with a correct bound.
func TestShardedApplyRound(t *testing.T) {
	q := NewSharded(4)
	for i := 0; i < 10; i++ {
		q.Push(urlOn(i, i), float64(i), 0)
	}
	cands, _, _, ok := q.ApplyRound(nil, nil, nil, 4)
	if !ok || len(cands) != 4 {
		t.Fatalf("peek round: ok=%v cands=%v", ok, cands)
	}
	pops := []string{cands[0].URL, cands[1].URL}
	pushes := []Entry{{URL: cands[0].URL, Due: 100}}
	removes := []string{cands[2].URL, "http://nowhere.example/x"}
	next, bound, bounded, ok := q.ApplyRound(pops, removes, pushes, 3)
	if !ok {
		t.Fatal("round refused")
	}
	if q.Len() != 8 { // 10 - 2 pops - 1 real remove + 1 push
		t.Fatalf("Len = %d after round, want 8", q.Len())
	}
	if len(next) != 3 || next[0].URL != cands[3].URL {
		t.Fatalf("candidates after round: %+v (had %+v)", next, cands)
	}
	if !bounded || bound != next[len(next)-1] {
		t.Fatalf("bound = %+v (%v), want last candidate %+v", bound, bounded, next[len(next)-1])
	}
	if q.Contains(cands[2].URL) {
		t.Fatal("removed URL still present")
	}
	if !q.Contains(cands[0].URL) {
		t.Fatal("re-pushed URL missing")
	}
}
