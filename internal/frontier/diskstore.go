package frontier

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// diskStore is the disk-backed shard store: a bitcask-style append-only
// record log with an in-memory fingerprint index, keeping only the
// due-soon head of the shard materialized in RAM.
//
// Layout. Every mutation appends one CRC-framed record to the shard's
// log — a put (URL, due, priority) or a tombstone (URL) — so the log
// alone always reconstructs the live entry set: openDiskStore replays
// it front to back (last record per fingerprint wins, tombstones
// delete) and truncates a torn tail at the first invalid frame, the
// same sweep discipline as the cluster WAL and store.Disk. When dead
// bytes (overwritten puts, tombstones and what they killed) outweigh
// live ones the log is compacted in place: live records are rewritten
// to a temp file that is renamed over the log.
//
// RAM. Per entry the store keeps a fingerprint-keyed index record
// (offset, size, seq, residency bit) and, while the entry is spilled,
// one spillHeap item (due, priority, fingerprint, seq) — no URL string,
// no full Entry. Full entries live in the resident memQueue, which
// holds at most the configured budget of them, filled by direct puts
// while under budget and by promotion from the spill heap when the pop
// order demands it.
//
// Ordering. head/popHead/topN must match memStore bit for bit. The
// resident set is not required to be a prefix of the pop order; instead
// every read promotes spilled entries until the spill minimum orders
// strictly after the resident entry it competes with. Spill items carry
// (due, priority) but not the URL that breaks exact ties, so a tie on
// both keys conservatively promotes the whole tie group and lets the
// resident queue's full comparator decide — a transient overshoot of
// the resident budget bounded by the largest (due, priority) tie group.
//
// Fingerprints are 64-bit FNV-1a over the URL. A collision maps two
// URLs to one index slot and corrupts their entries' bookkeeping; the
// probability is ~n²/2⁶⁴ (about 3·10⁻⁴ at 100M URLs) and the failure
// is confined to the colliding pair, which this design accepts in
// exchange for never holding URL strings for spilled entries.
//
// Error handling. ShardSet has no error returns, so an I/O failure on
// the spill log (disk full, read error, lost file) panics with context.
// The shardd WAL is the durability plane: a restart replays the WAL
// through Reset, which truncates the spill logs and rebuilds them.
type diskStore struct {
	path string
	f    *os.File
	w    *bufio.Writer
	wOff int64 // logical end of the log: offset of the next append
	// dirty marks unflushed writer data; reads flush first.
	dirty bool

	index map[uint64]*idxEnt
	spill spillHeap
	// resident is the in-RAM head; budget caps its steady-state size
	// (tie-group promotion and large topN requests may transiently
	// exceed it — correctness outranks the cap).
	resident *memQueue
	budget   int

	seq       uint64 // per-record monotonic counter; pairs with spill items
	deadBytes int64  // bytes of overwritten/tombstoned records (and tombstones)
}

// idxEnt is the in-memory index record for one stored entry.
type idxEnt struct {
	off      int64
	size     uint32
	seq      uint64
	resident bool
}

// spillItem is the ordering key of one spilled entry. Items are never
// removed on reschedule; a stale item (seq behind the index, or its
// fingerprint gone or resident) is discarded when it reaches the top.
type spillItem struct {
	due, prio float64
	fp, seq   uint64
}

// spillHeap is a min-heap of spill items in pop-order: due ascending,
// then priority descending. Exact ties are broken by fingerprint only
// to keep the heap deterministic; the real URL tie-break happens in the
// resident queue after the whole tie group is promoted.
type spillHeap []spillItem

func (h spillHeap) Len() int { return len(h) }
func (h spillHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	if h[i].fp != h[j].fp {
		return h[i].fp < h[j].fp
	}
	return h[i].seq > h[j].seq
}
func (h spillHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *spillHeap) Push(x any)   { *h = append(*h, x.(spillItem)) }
func (h *spillHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

const (
	recPut  = byte(1)
	recTomb = byte(2)
	// recHeader is the per-record frame: u32 payload length, u32 CRC.
	recHeader = 8
	// maxRecord bounds a single record's payload; anything larger in
	// the log is corruption.
	maxRecord = 1 << 24
	// readAhead is how many entries a head read keeps promoted beyond
	// the strict minimum, so a pop burst doesn't pay one log read per
	// pop.
	readAhead = 16
	// compactMinDead and the dead>live rule gate log compaction.
	compactMinDead = 4 << 20
)

// fpOf is 64-bit FNV-1a over the URL bytes.
func fpOf(url string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(url); i++ {
		h ^= uint64(url[i])
		h *= prime64
	}
	return h
}

// appendRecordBuf appends one framed record to buf and returns it.
func appendRecordBuf(buf []byte, kind byte, url string, due, prio float64) []byte {
	p := make([]byte, 0, 1+binary.MaxVarintLen64+len(url)+16)
	p = append(p, kind)
	p = binary.AppendUvarint(p, uint64(len(url)))
	p = append(p, url...)
	if kind == recPut {
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(due))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(prio))
	}
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p))
	buf = append(buf, hdr[:]...)
	return append(buf, p...)
}

// parseRecord decodes one record payload (the bytes after the frame
// header, CRC already verified).
func parseRecord(p []byte) (kind byte, url string, due, prio float64, err error) {
	if len(p) < 2 {
		return 0, "", 0, 0, fmt.Errorf("record too short (%d bytes)", len(p))
	}
	kind = p[0]
	n, w := binary.Uvarint(p[1:])
	if w <= 0 || n > uint64(len(p)) {
		return 0, "", 0, 0, fmt.Errorf("bad url length")
	}
	rest := p[1+w:]
	if uint64(len(rest)) < n {
		return 0, "", 0, 0, fmt.Errorf("truncated url")
	}
	url = string(rest[:n])
	rest = rest[n:]
	switch kind {
	case recPut:
		if len(rest) != 16 {
			return 0, "", 0, 0, fmt.Errorf("put record with %d trailing bytes", len(rest))
		}
		due = math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
		prio = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	case recTomb:
		if len(rest) != 0 {
			return 0, "", 0, 0, fmt.Errorf("tombstone with %d trailing bytes", len(rest))
		}
	default:
		return 0, "", 0, 0, fmt.Errorf("unknown record kind %d", kind)
	}
	return kind, url, due, prio, nil
}

// openDiskStore opens (or creates) one shard's record log and rebuilds
// the fingerprint index and spill heap from it, truncating a torn tail
// back to the last valid record.
func openDiskStore(path string, budget int) (*diskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("frontier: spill log: %w", err)
	}
	d := &diskStore{
		path:     path,
		f:        f,
		index:    make(map[uint64]*idxEnt),
		resident: newMemQueue(),
		budget:   max(1, budget),
	}
	if err := d.rebuild(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(d.wOff, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("frontier: spill log %s: %w", path, err)
	}
	d.w = bufio.NewWriter(f)
	return d, nil
}

// rebuild scans the log front to back: last record per fingerprint
// wins, tombstones delete, and the first invalid frame (a torn tail
// from a crash, or corruption) ends the scan and is truncated away
// with everything after it.
func (d *diskStore) rebuild() error {
	if _, err := d.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("frontier: spill log %s: %w", d.path, err)
	}
	r := bufio.NewReader(d.f)
	var off int64
	var hdr [recHeader]byte
	torn := false
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			torn = err != io.EOF
			break
		}
		plen := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if plen > maxRecord {
			torn = true
			break
		}
		p := make([]byte, plen)
		if _, err := io.ReadFull(r, p); err != nil {
			torn = true
			break
		}
		if crc32.ChecksumIEEE(p) != crc {
			torn = true
			break
		}
		kind, url, due, prio, err := parseRecord(p)
		if err != nil {
			torn = true
			break
		}
		size := uint32(recHeader + plen)
		d.seq++
		fp := fpOf(url)
		switch kind {
		case recPut:
			if ie, ok := d.index[fp]; ok {
				d.deadBytes += int64(ie.size)
				ie.off, ie.size, ie.seq = off, size, d.seq
			} else {
				d.index[fp] = &idxEnt{off: off, size: size, seq: d.seq}
			}
			d.spill = append(d.spill, spillItem{due: due, prio: prio, fp: fp, seq: d.seq})
		case recTomb:
			if ie, ok := d.index[fp]; ok {
				d.deadBytes += int64(ie.size)
				delete(d.index, fp)
			}
			d.deadBytes += int64(size)
		}
		off += int64(size)
	}
	if torn {
		if err := d.f.Truncate(off); err != nil {
			return fmt.Errorf("frontier: spill log %s: truncating torn tail: %w", d.path, err)
		}
	}
	d.wOff = off
	heap.Init(&d.spill)
	return nil
}

// fatal is the disk tier's I/O failure path: ShardSet has no error
// returns, so a broken spill log aborts the process with context. The
// WAL (when enabled) makes this recoverable: a restart replays it
// through Reset, rebuilding the spill logs from scratch.
func (d *diskStore) fatal(op string, err error) {
	panic(fmt.Sprintf("frontier: spill log %s: %s: %v", d.path, op, err))
}

func (d *diskStore) flush() {
	if !d.dirty {
		return
	}
	if err := d.w.Flush(); err != nil {
		d.fatal("flush", err)
	}
	d.dirty = false
}

// appendRecord writes one framed record, returning its offset and size.
func (d *diskStore) appendRecord(kind byte, url string, due, prio float64) (int64, uint32) {
	rec := appendRecordBuf(nil, kind, url, due, prio)
	if _, err := d.w.Write(rec); err != nil {
		d.fatal("append", err)
	}
	d.dirty = true
	off := d.wOff
	d.wOff += int64(len(rec))
	return off, uint32(len(rec))
}

// readEntry loads the put record at (off, size) back into an Entry.
func (d *diskStore) readEntry(off int64, size uint32) Entry {
	d.flush()
	buf := make([]byte, size)
	if _, err := d.f.ReadAt(buf, off); err != nil {
		d.fatal("read", err)
	}
	plen := binary.LittleEndian.Uint32(buf[:4])
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if int(plen) != len(buf)-recHeader || crc32.ChecksumIEEE(buf[recHeader:]) != crc {
		d.fatal("read", fmt.Errorf("corrupt record at offset %d", off))
	}
	kind, url, due, prio, err := parseRecord(buf[recHeader:])
	if err != nil || kind != recPut {
		d.fatal("read", fmt.Errorf("bad record at offset %d: %v", off, err))
	}
	return Entry{URL: url, Due: due, Priority: prio}
}

func (d *diskStore) size() int { return len(d.index) }

func (d *diskStore) contains(url string) bool {
	_, ok := d.index[fpOf(url)]
	return ok
}

func (d *diskStore) put(e Entry) {
	fp := fpOf(e.URL)
	d.seq++
	off, size := d.appendRecord(recPut, e.URL, e.Due, e.Priority)
	ie, ok := d.index[fp]
	if ok {
		d.deadBytes += int64(ie.size)
		ie.off, ie.size, ie.seq = off, size, d.seq
	} else {
		ie = &idxEnt{off: off, size: size, seq: d.seq}
		d.index[fp] = ie
		// New entries stay resident while the head is under budget —
		// small frontiers never touch the spill read path.
		if d.resident.size() < d.budget {
			ie.resident = true
			d.resident.put(e)
			d.maybeCompact()
			return
		}
	}
	if ie.resident {
		d.resident.put(e)
	} else {
		heap.Push(&d.spill, spillItem{due: e.Due, prio: e.Priority, fp: fp, seq: d.seq})
	}
	d.maybeCompact()
}

func (d *diskStore) remove(url string) bool {
	fp := fpOf(url)
	ie, ok := d.index[fp]
	if !ok {
		return false
	}
	if ie.resident {
		d.resident.remove(url)
	}
	_, size := d.appendRecord(recTomb, url, 0, 0)
	d.deadBytes += int64(ie.size) + int64(size)
	delete(d.index, fp)
	d.maybeCompact()
	return true
}

// spillMin returns the spill heap's first live item, discarding stale
// ones (rescheduled past their seq, removed, or already promoted).
func (d *diskStore) spillMin() (spillItem, bool) {
	for len(d.spill) > 0 {
		it := d.spill[0]
		ie, ok := d.index[it.fp]
		if !ok || ie.seq != it.seq || ie.resident {
			heap.Pop(&d.spill)
			continue
		}
		return it, true
	}
	return spillItem{}, false
}

// promoteMin loads the spill heap's top entry (which spillMin just
// validated) into the resident queue.
func (d *diskStore) promoteMin() {
	it := heap.Pop(&d.spill).(spillItem)
	ie := d.index[it.fp]
	ie.resident = true
	d.resident.put(d.readEntry(ie.off, ie.size))
}

// spillAfter reports whether the spill item orders strictly after the
// resident entry on (due, priority) alone. A tie is not "after": the
// URL that would break it lives only on disk, so the caller promotes.
func spillAfter(it spillItem, e Entry) bool {
	if it.due != e.Due {
		return it.due > e.Due
	}
	return it.prio < e.Priority
}

// ensureHead promotes until the resident head is the store's true pop
// head (plus a little read-ahead so pop bursts batch their log reads).
func (d *diskStore) ensureHead() {
	for d.resident.size() < min(d.budget, readAhead) {
		if _, ok := d.spillMin(); !ok {
			break
		}
		d.promoteMin()
	}
	for {
		it, ok := d.spillMin()
		if !ok {
			return
		}
		if re, rok := d.resident.head(); rok && spillAfter(it, re) {
			return
		}
		d.promoteMin()
	}
}

func (d *diskStore) head() (Entry, bool) {
	d.ensureHead()
	return d.resident.head()
}

func (d *diskStore) popHead() Entry {
	d.ensureHead()
	e := d.resident.popHead()
	fp := fpOf(e.URL)
	if ie, ok := d.index[fp]; ok {
		_, size := d.appendRecord(recTomb, e.URL, 0, 0)
		d.deadBytes += int64(ie.size) + int64(size)
		delete(d.index, fp)
	}
	d.maybeCompact()
	return e
}

func (d *diskStore) topN(n int) []Entry {
	if n <= 0 || len(d.index) == 0 {
		return nil
	}
	// Make the resident set contain the true first n: fill to n off the
	// spill minimum, then pull everything that could order at or before
	// the resident n-th entry. Promotions only lower that boundary, so
	// one pass against the initial boundary is conservative-correct.
	for d.resident.size() < n {
		if _, ok := d.spillMin(); !ok {
			break
		}
		d.promoteMin()
	}
	if top := d.resident.topN(n); len(top) > 0 {
		bound := top[len(top)-1]
		for {
			it, ok := d.spillMin()
			if !ok || (d.resident.size() >= n && spillAfter(it, bound)) {
				break
			}
			d.promoteMin()
		}
	}
	return d.resident.topN(n)
}

// each visits every entry in log-offset order — deterministic for a
// given operation history. Every entry is read back from the log (it is
// always current: puts are appended even for resident entries), so the
// walk needs no URL map over the resident set.
func (d *diskStore) each(fn func(Entry) error) error {
	d.flush()
	ents := make([]*idxEnt, 0, len(d.index))
	for _, ie := range d.index {
		ents = append(ents, ie)
	}
	sortIdxByOff(ents)
	for _, ie := range ents {
		if err := fn(d.readEntry(ie.off, ie.size)); err != nil {
			return err
		}
	}
	return nil
}

func sortIdxByOff(ents []*idxEnt) {
	// Offsets are unique, so a simple sort suffices.
	sort.Slice(ents, func(i, j int) bool { return ents[i].off < ents[j].off })
}

func (d *diskStore) reset() {
	d.flush()
	if err := d.f.Truncate(0); err != nil {
		d.fatal("truncate", err)
	}
	if _, err := d.f.Seek(0, io.SeekStart); err != nil {
		d.fatal("seek", err)
	}
	d.w.Reset(d.f)
	d.wOff = 0
	d.seq = 0
	d.deadBytes = 0
	d.index = make(map[uint64]*idxEnt)
	d.spill = nil
	d.resident.reset()
}

func (d *diskStore) close() error {
	if err := d.w.Flush(); err != nil {
		d.f.Close()
		return fmt.Errorf("frontier: spill log %s: %w", d.path, err)
	}
	return d.f.Close()
}

func (d *diskStore) tier() TierStats {
	return TierStats{
		Resident:   d.resident.size(),
		Spilled:    len(d.index) - d.resident.size(),
		SpillBytes: d.wOff,
	}
}

// maybeCompact rewrites the log down to its live records once dead
// bytes pass a floor and outweigh the live ones. Offsets in the index
// are rewritten; seqs (and with them the spill heap) are untouched.
func (d *diskStore) maybeCompact() {
	if d.deadBytes < compactMinDead || d.deadBytes <= d.wOff-d.deadBytes {
		return
	}
	d.flush()
	tmp := d.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		d.fatal("compact", err)
	}
	w := bufio.NewWriter(nf)
	ents := make([]*idxEnt, 0, len(d.index))
	for _, ie := range d.index {
		ents = append(ents, ie)
	}
	sortIdxByOff(ents)
	var off int64
	buf := make([]byte, 0, 4096)
	for _, ie := range ents {
		if cap(buf) < int(ie.size) {
			buf = make([]byte, ie.size)
		}
		buf = buf[:ie.size]
		if _, err := d.f.ReadAt(buf, ie.off); err != nil {
			nf.Close()
			d.fatal("compact read", err)
		}
		if _, err := w.Write(buf); err != nil {
			nf.Close()
			d.fatal("compact write", err)
		}
		ie.off = off
		off += int64(ie.size)
	}
	if err := w.Flush(); err != nil {
		nf.Close()
		d.fatal("compact flush", err)
	}
	if err := os.Rename(tmp, d.path); err != nil {
		nf.Close()
		d.fatal("compact rename", err)
	}
	if err := d.f.Close(); err != nil {
		d.fatal("compact close", err)
	}
	d.f = nf
	d.w.Reset(nf)
	d.wOff = off
	d.deadBytes = 0
}
